#!/usr/bin/env python3
"""Convert ftnoc bench or sweep/campaign output into per-figure CSV files.

Usage:
    python3 tools/plot_bench.py bench_output.txt [outdir]
    python3 tools/plot_bench.py fig05.jsonl [outdir]
    python3 tools/plot_bench.py shard0.agg.jsonl shard1.agg.jsonl [outdir]

Every argument naming an existing file is an input; a trailing argument
that is not an existing file is the output directory (default
bench_csv).  Multiple inputs are folded into one figure set — the
distributed-campaign recipe (per-shard or merged aggregate JSONL files,
README "Distributed campaigns") lands in the same CSVs as a
single-file run.

Two input flavors, auto-detected per line:

* google-benchmark console rows like

      Fig6/BC/err=0.001/iterations:1  ... latency_cyc=189.517 ... retx_events=28

* JSONL records from ftnoc_sweep (one config point per line) or
  ftnoc_campaign (one aggregate record per point, type="point"; per-replica
  journal lines are skipped — plot the aggregates they back).

Either way a row is keyed by its series (BC) and x value (0.001) taken
from the label, one CSV per figure, ready for any plotting tool.
"""
import collections
import csv
import json
import os
import re
import sys


ROW = re.compile(r"^(\w+)/(\S+?)/iterations:\d+\s")
COUNTER = re.compile(r"([A-Za-z_][\w]*)=([-\d.]+[kmu]?)")

SUFFIX = {"k": 1e3, "m": 1e-3, "u": 1e-6}


def parse_value(text):
    if text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def split_label(figure_and_series):
    """Splits ["BC", "err=0.001"]-style label segments into (series, x)."""
    point = figure_and_series[-1] if len(figure_and_series) > 1 else ""
    series = ("/".join(figure_and_series[:-1])
              if len(figure_and_series) > 1 else figure_and_series[0])
    x = point.split("=", 1)[1] if "=" in point else point
    return series, x


def ingest_bench(line, figures):
    m = ROW.match(line)
    if not m:
        return
    series, x = split_label(m.group(2).split("/"))
    row = {"series": series, "x": x}
    for key, val in COUNTER.findall(line):
        try:
            row[key] = parse_value(val)
        except ValueError:
            pass
    figures[m.group(1)].append(row)


LINK = re.compile(r"(\d+):([NESW])=(\d+)/(\d+)")


def ingest_link_util(rec, figure, series, x, heatmaps):
    """Explodes a packed link_util string ("node:DIR=fwd/stall,...") into
    per-link heatmap rows: one row per directed link, with mesh
    coordinates so a plotting tool can place them without re-deriving the
    node layout."""
    width = rec.get("mesh_width", 0) or 0
    cycles = rec.get("cycles", 0) or 0
    for node, dir_, fwd, stall in LINK.findall(rec["link_util"]):
        node, fwd, stall = int(node), int(fwd), int(stall)
        heatmaps[figure].append({
            "series": series,
            "x": x,
            "node": node,
            "node_x": node % width if width else 0,
            "node_y": node // width if width else 0,
            "dir": dir_,
            "fwd": fwd,
            "stall": stall,
            "fwd_frac": fwd / cycles if cycles else 0.0,
            "stall_frac": stall / cycles if cycles else 0.0,
        })


def ingest_jsonl(line, figures, heatmaps):
    try:
        rec = json.loads(line)
    except json.JSONDecodeError:
        return
    if not isinstance(rec, dict) or not isinstance(rec.get("label"), str):
        return
    if rec.get("type") == "replica":
        return  # Journal replica lines; the type="point" aggregates follow.
    parts = rec["label"].split("/")
    if len(parts) >= 2:
        figure = parts[0]
        series, x = split_label(parts[1:])
    else:
        # Ad-hoc grids ("inj=0.05") have no figure prefix; group them all.
        figure, series, x = "points", rec["label"], ""
    if isinstance(rec.get("link_util"), str):
        ingest_link_util(rec, figure, series, x, heatmaps)
    row = {"series": series, "x": x}
    # The buffer_policy column is gated like the fault counters: default
    # private_vc records omit it. Fill the default in so every row carries
    # its policy and mixed-policy files can be overlaid.
    row["buffer_policy"] = rec.get("buffer_policy", "private_vc")
    for key, val in rec.items():
        if key in ("label", "type", "buffer_policy"):
            continue
        if isinstance(val, bool):
            row[key] = int(val)
        elif isinstance(val, (int, float)):
            row[key] = val
    # Derived column for degradation curves (fault_degradation,
    # fault_storm): the fraction of created packets actually delivered.
    # Whole-run counters, so the ratio is meaningful even on cycle-capped
    # or incomplete points.
    created = row.get("packets_created", 0)
    if created:
        row["delivered_fraction"] = row.get("messages_ejected", 0) / created
    figures[figure].append(row)


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    args = sys.argv[1:]
    # A trailing argument that is not an existing file is the outdir
    # (keeps the historical `plot_bench.py input.jsonl outdir` calls
    # working); everything else is an input file.
    outdir = "bench_csv"
    if len(args) > 1 and not os.path.isfile(args[-1]):
        outdir = args.pop()
    os.makedirs(outdir, exist_ok=True)

    figures = collections.defaultdict(list)
    heatmaps = collections.defaultdict(list)
    for path in args:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line.startswith("{"):
                    ingest_jsonl(line, figures, heatmaps)
                else:
                    ingest_bench(line, figures)

    for figure, rows in figures.items():
        # Overlay mixed buffer policies: when one figure holds records
        # from >= 2 policies, the same label names different curves, so
        # the policy is folded into the series key ("BC[damq]"). A
        # single-policy figure keeps its plain series names and column
        # set, so existing CSVs stay byte-identical. A series that
        # already names its policy (the buffer_ablation preset labels
        # do) is left untagged — "private_vc[private_vc]" helps nobody.
        policies = {r.get("buffer_policy", "private_vc") for r in rows}
        tag = len(policies) >= 2
        for r in rows:
            pol = r.pop("buffer_policy", "private_vc")
            if tag and pol not in r["series"]:
                r["series"] = f"{r['series']}[{pol}]"
        keys = ["series", "x"] + sorted(
            {k for r in rows for k in r} - {"series", "x"})
        out = os.path.join(outdir, figure.lower() + ".csv")
        with open(out, "w", newline="") as f:
            # Mixed-schema inputs are normal: fault-gated counters
            # (packets_rerouted, unreachable_drops, links_escalated, ...)
            # only appear on records from faulted configs. A missing
            # numeric cell means "feature off" = 0, not "unknown" — an
            # empty cell would break numeric parsing downstream.
            w = csv.DictWriter(f, fieldnames=keys, restval=0)
            w.writeheader()
            w.writerows(rows)
        print(f"{out}: {len(rows)} rows")

    # Per-link congestion heatmaps (records with a link_util column):
    # a long-format CSV per figure — (series, x, node_x, node_y, dir) ->
    # fwd/stall counts and per-cycle fractions — ready to pivot into a
    # mesh heatmap.
    for figure, rows in heatmaps.items():
        keys = ["series", "x", "node", "node_x", "node_y", "dir",
                "fwd", "stall", "fwd_frac", "stall_frac"]
        out = os.path.join(outdir, figure.lower() + "_heatmap.csv")
        with open(out, "w", newline="") as f:
            w = csv.DictWriter(f, fieldnames=keys, restval=0)
            w.writeheader()
            w.writerows(rows)
        print(f"{out}: {len(rows)} link rows")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Convert ftnoc bench console output into per-figure CSV files.

Usage:
    python3 tools/plot_bench.py bench_output.txt [outdir]

Each google-benchmark row like

    Fig6/BC/err=0.001/iterations:1  ... latency_cyc=189.517 ... retx_events=28

becomes a CSV row keyed by its series (BC) and x value (0.001), one CSV per
figure, ready for any plotting tool.
"""
import collections
import csv
import os
import re
import sys


ROW = re.compile(r"^(\w+)/(\S+?)/iterations:\d+\s")
COUNTER = re.compile(r"([A-Za-z_][\w]*)=([-\d.]+[kmu]?)")

SUFFIX = {"k": 1e3, "m": 1e-3, "u": 1e-6}


def parse_value(text):
    if text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    path = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    os.makedirs(outdir, exist_ok=True)

    figures = collections.defaultdict(list)
    with open(path) as f:
        for line in f:
            m = ROW.match(line.strip())
            if not m:
                continue
            figure, rest = m.group(1), m.group(2).split("/")
            point = rest[-1] if len(rest) > 1 else ""
            series = "/".join(rest[:-1]) if len(rest) > 1 else rest[0]
            x = point.split("=", 1)[1] if "=" in point else point
            row = {"series": series, "x": x}
            for key, val in COUNTER.findall(line):
                try:
                    row[key] = parse_value(val)
                except ValueError:
                    pass
            figures[figure].append(row)

    for figure, rows in figures.items():
        keys = ["series", "x"] + sorted(
            {k for r in rows for k in r} - {"series", "x"})
        out = os.path.join(outdir, figure.lower() + ".csv")
        with open(out, "w", newline="") as f:
            w = csv.DictWriter(f, fieldnames=keys)
            w.writeheader()
            w.writerows(rows)
        print(f"{out}: {len(rows)} rows")


if __name__ == "__main__":
    main()

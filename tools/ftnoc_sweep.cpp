// ftnoc_sweep: config-grid sweep runner on the parallel SweepEngine.
//
//   ftnoc_sweep [--flags] key=v1,v2,... [key=value ...]
//
// Each positional argument is one grid axis using the regular override
// keys (common/config.hpp); the run is the Cartesian product of all axes,
// emitted as one JSON object per line in point order. Per-point seeds are
// derived from --seed and the point index, so the JSONL output is
// byte-identical for any --threads value.
//
//   ftnoc_sweep link_error_rate=1e-5,1e-4,1e-3 protection=hbh,e2e
//   ftnoc_sweep --preset=fig05 --threads=8 --out=fig05.jsonl
//   ftnoc_sweep --preset=abl_cthres total_messages=5000 warmup_messages=1000
//
// With --preset, positional arguments must be single-valued and act as
// base-config overrides (scale knobs); the preset supplies the axes.
//
// Default run scale matches the benches (30k ejected messages, 10k
// warm-up, 1.5M max cycles per point); override via total_messages= etc.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sweep/grid.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/presets.hpp"
#include "sweep/sweep.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ftnoc_sweep [options] key=v1[,v2,...] ...\n"
    "  --threads=N    worker threads (default 0 = hardware concurrency)\n"
    "  --pin          pin worker threads round-robin to CPUs (Linux)\n"
    "  --seed=S       base seed for per-point seed derivation (default 1)\n"
    "  --fixed-seed   use each config's own seed= instead of deriving\n"
    "  --out=FILE     write JSONL records to FILE (default stdout)\n"
    "  --preset=NAME  canonical paper grid: fig05..fig13b, abl_cthres\n"
    "  --timing       include per-point wall_ms in records\n"
    "  --quiet        suppress the per-point progress on stderr\n"
    "  --help         this text\n";

bool flag_value(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftnoc;

  sweep::SweepOptions opts;
  std::string out_path;
  std::string preset;
  bool timing = false;
  bool quiet = false;
  std::vector<std::string> axis_specs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (flag_value(arg, "--threads", v)) {
      opts.num_threads = std::atoi(v.c_str());
    } else if (std::strcmp(arg, "--pin") == 0) {
      opts.pin_threads = true;
    } else if (flag_value(arg, "--seed", v)) {
      opts.base_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(arg, "--fixed-seed") == 0) {
      opts.seed_policy = sweep::SeedPolicy::kUseConfigSeed;
    } else if (flag_value(arg, "--out", v)) {
      out_path = v;
    } else if (flag_value(arg, "--preset", v)) {
      preset = v;
    } else if (std::strcmp(arg, "--timing") == 0) {
      timing = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n%s", arg, kUsage);
      return 1;
    } else {
      axis_specs.push_back(arg);
    }
  }

  SimConfig base;
  base.total_messages = 30'000;
  base.warmup_messages = 10'000;
  base.max_cycles = 1'500'000;

  std::vector<sweep::SweepPoint> points;
  if (!preset.empty()) {
    // Positional args become base overrides; the preset supplies the axes.
    if (auto err = apply_overrides(base, axis_specs)) {
      std::fprintf(stderr, "config error: %s\n", err->c_str());
      return 1;
    }
    points = sweep::preset_points(preset, base);
    if (points.empty()) {
      std::fprintf(stderr, "unknown preset: %s\nvalid presets: %s\n",
                   preset.c_str(), sweep::preset_names_line().c_str());
      return 1;
    }
    for (const auto& pt : points) {
      if (auto err = pt.config.validate()) {
        std::fprintf(stderr, "invalid point %s: %s\n", pt.label.c_str(),
                     err->c_str());
        return 1;
      }
    }
  } else {
    std::vector<sweep::GridAxis> axes;
    for (const auto& spec : axis_specs) {
      sweep::GridAxis axis;
      if (auto err = sweep::parse_axis(spec, axis)) {
        std::fprintf(stderr, "grid error: %s\n", err->c_str());
        return 1;
      }
      axes.push_back(std::move(axis));
    }
    if (auto err = sweep::expand_grid(base, axes, points)) {
      std::fprintf(stderr, "grid error: %s\n", err->c_str());
      return 1;
    }
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
  }

  sweep::SweepEngine engine(opts);
  if (!quiet) {
    std::fprintf(stderr, "ftnoc_sweep: %zu points on %d thread(s)\n",
                 points.size(), engine.num_threads());
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run(
      points,
      [&](const sweep::PointResult& pr) {
        const std::string line = sweep::to_jsonl(pr, timing);
        std::fprintf(out, "%s\n", line.c_str());
        std::fflush(out);
      },
      [&](std::size_t done, std::size_t total,
          const sweep::PointResult& pr) {
        if (quiet) return;
        std::fprintf(stderr, "[%zu/%zu] %s  %.0f ms%s\n", done, total,
                     pr.label.c_str(), pr.wall_ms,
                     pr.results.completed ? "" : "  (TIMED-OUT)");
      });
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  if (!quiet) {
    std::fprintf(stderr, "ftnoc_sweep: done, %.2f s wall\n", wall_s);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

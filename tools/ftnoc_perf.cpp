// ftnoc_perf: simulator-throughput (cycles/sec) reporter.
//
//   ftnoc_perf [--preset=NAME] [--threads=N] [--repeat=K] [--out=FILE]
//
// Runs a preset grid (default: the pinned-scale "perf" grid) through the
// SweepEngine with per-point timing and reports aggregate simulated
// cycles per wall-clock second — the number the router hot-path work is
// measured by. Point records are emitted in the regular sweep JSONL shape
// (including wall_ms), so tools/plot_bench.py ingests the output as-is.
//
// With --repeat=K the grid runs K times and only the best (max
// cycles/sec) repetition's records are emitted — the usual way to damp
// scheduler noise in before/after comparisons, and it keeps the output
// at one record per point. Per-repetition timings go to stderr.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/presets.hpp"
#include "sweep/sweep.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ftnoc_perf [options] [key=value ...]\n"
    "  --preset=NAME  grid to time (default: perf)\n"
    "  --threads=N    worker threads (default 1: stable timing)\n"
    "  --pin          pin worker threads round-robin to CPUs (Linux)\n"
    "  --seed=S       base seed for per-point derivation (default 1)\n"
    "  --repeat=K     run the grid K times, report the best (default 1)\n"
    "  --out=FILE     write JSONL records to FILE (default stdout)\n"
    "  --help         this text\n"
    "Positional key=value arguments override the base config.\n";

bool flag_value(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftnoc;

  sweep::SweepOptions opts;
  opts.num_threads = 1;
  std::string preset = "perf";
  std::string out_path;
  int repeat = 1;
  std::vector<std::string> overrides;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (flag_value(arg, "--preset", v)) {
      preset = v;
    } else if (flag_value(arg, "--threads", v)) {
      opts.num_threads = std::atoi(v.c_str());
    } else if (std::strcmp(arg, "--pin") == 0) {
      opts.pin_threads = true;
    } else if (flag_value(arg, "--seed", v)) {
      opts.base_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(arg, "--repeat", v)) {
      repeat = std::atoi(v.c_str());
    } else if (flag_value(arg, "--out", v)) {
      out_path = v;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n%s", arg, kUsage);
      return 1;
    } else {
      overrides.push_back(arg);
    }
  }
  if (repeat < 1) repeat = 1;

  SimConfig base;
  base.total_messages = 30'000;
  base.warmup_messages = 10'000;
  base.max_cycles = 1'500'000;
  if (auto err = apply_overrides(base, overrides)) {
    std::fprintf(stderr, "config error: %s\n", err->c_str());
    return 1;
  }

  const std::vector<sweep::SweepPoint> points =
      sweep::preset_points(preset, base);
  if (points.empty()) {
    std::fprintf(stderr, "unknown preset: %s\nvalid presets: %s\n",
                 preset.c_str(), sweep::preset_names_line().c_str());
    return 1;
  }
  for (const auto& pt : points) {
    if (auto err = pt.config.validate()) {
      std::fprintf(stderr, "invalid point %s: %s\n", pt.label.c_str(),
                   err->c_str());
      return 1;
    }
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
  }

  sweep::SweepEngine engine(opts);
  std::fprintf(stderr, "ftnoc_perf: %zu points x %d rep(s) on %d thread(s)\n",
               points.size(), repeat, engine.num_threads());

  double best_cps = 0.0;
  std::string best_lines;
  for (int rep = 0; rep < repeat; ++rep) {
    std::uint64_t total_cycles = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<sweep::PointResult> results = engine.run(points);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::string lines;
    for (const auto& pr : results) {
      total_cycles += pr.results.cycles;
      lines += sweep::to_jsonl(pr, /*include_timing=*/true);
      lines += '\n';
    }
    const double cps = wall_ms > 0.0
                           ? static_cast<double>(total_cycles) * 1e3 / wall_ms
                           : 0.0;
    if (rep == 0 || cps > best_cps) {
      best_cps = cps;
      best_lines = std::move(lines);
    }
    std::fprintf(stderr,
                 "ftnoc_perf: rep %d/%d  cycles=%llu  wall=%.1f ms  "
                 "cycles/sec=%.0f\n",
                 rep + 1, repeat,
                 static_cast<unsigned long long>(total_cycles), wall_ms, cps);
  }
  std::fwrite(best_lines.data(), 1, best_lines.size(), out);
  std::fflush(out);
  std::fprintf(stderr, "ftnoc_perf: best cycles/sec=%.0f\n", best_cps);

  if (out != stdout) std::fclose(out);
  return 0;
}

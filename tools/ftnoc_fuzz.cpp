// Differential fuzz harness: drives the optimized Router and the
// allocation-happy ReferenceRouter in lock-step on randomized
// configurations and compares the full architectural-state digest every
// cycle. Any divergence is a bug in one of the two implementations (or in
// the shared phase contract). The invariant monitor rides along in
// count-and-continue mode, so structural violations are findings too.
//
// On a finding, the harness greedily minimizes the configuration (reset
// each override to its default, keep the reduction if the run still
// fails) and emits a replayable repro file of apply_override-compatible
// key=value assignments.
//
//   ftnoc_fuzz [--runs N] [--cycles N] [--seed S] [--time-budget SEC]
//              [--out FILE] [--plant NAME] [--selftest] [--replay FILE]
//
// --selftest plants a known mutation (optimized router only; the
// reference ignores mutations by construction) and exits 0 iff the
// harness detects the divergence and the emitted repro replays. This is
// the end-to-end proof that the oracle has teeth. The default plant is
// "drop_window"; `--selftest --plant route_into_dead_link` instead
// proves the permanent-fault paths are under the oracle (the optimized
// router routes fault-blind on a topology with a dead link),
// `--selftest --plant damq_credit_leak` proves the DAMQ shared-pool
// credit accounting is (the optimized router leaks a shared_held_
// decrement on credit return), and `--selftest --plant strand_waiter`
// proves the link-drain waiter re-home path is (the optimized router
// reverts the PR 8 fix and strands registered deadlock waiters on a
// draining port, wedging the drain).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/invariants.hpp"
#include "noc/network.hpp"

namespace {

using ftnoc::Cycle;
using ftnoc::Network;
using ftnoc::Rng;
using ftnoc::SimConfig;

struct RunResult {
  bool failed = false;
  Cycle cycle = 0;       // First cycle the digests disagreed (if diverged).
  bool diverged = false; // Digest mismatch (vs invariant violation only).
  std::string what;
};

struct Options {
  int runs = 200;
  Cycle cycles = 1500;
  std::uint64_t seed = 1;
  double time_budget_sec = 240.0;
  std::string out = "fuzz_repro.txt";
  std::string plant;
  bool selftest = false;
  std::string replay;
};

// Runs one configuration (given as override assignments applied to a
// default SimConfig) on both router implementations in lock-step.
RunResult run_pair(const std::vector<std::string>& overrides, Cycle cycles,
                   const std::string& plant) {
  RunResult res;
  SimConfig cfg;
  if (auto err = ftnoc::apply_overrides(cfg, overrides)) {
    res.failed = true;
    res.what = "bad override: " + *err;
    return res;
  }
  cfg.check_invariants = true;
  if (auto err = cfg.validate()) {
    res.failed = true;
    res.what = "invalid config: " + *err;
    return res;
  }

  SimConfig opt_cfg = cfg;
  opt_cfg.use_reference_router = false;
  opt_cfg.test_mutation = plant;
  SimConfig ref_cfg = cfg;
  ref_cfg.use_reference_router = true;
  ref_cfg.test_mutation.clear();

  Network opt(opt_cfg);
  Network ref(ref_cfg);
  if (auto* m = opt.monitor()) m->set_abort_on_violation(false);
  if (auto* m = ref.monitor()) m->set_abort_on_violation(false);

  for (Cycle c = 0; c < cycles; ++c) {
    opt.step();
    ref.step();
    if (opt.state_digest() != ref.state_digest()) {
      res.failed = true;
      res.diverged = true;
      res.cycle = opt.now();
      res.what = "state digests diverged at cycle " +
                 std::to_string(opt.now());
      return res;
    }
  }
  const auto* om = opt.monitor();
  const auto* rm = ref.monitor();
  if (om && om->violations() > 0) {
    res.failed = true;
    res.cycle = opt.now();
    res.what = "optimized router: " + std::to_string(om->violations()) +
               " invariant violation(s); first: " + om->first_violation();
  } else if (rm && rm->violations() > 0) {
    res.failed = true;
    res.cycle = opt.now();
    res.what = "reference router: " + std::to_string(rm->violations()) +
               " invariant violation(s); first: " + rm->first_violation();
  }
  return res;
}

// Fault-topology override keys that define the faulted mesh a finding ran
// on; the selftest asserts minimization preserves at least one of them.
bool is_fault_override(const std::string& o) {
  return o.rfind("dead_link=", 0) == 0 || o.rfind("dead_router=", 0) == 0 ||
         o.rfind("link_escalation_threshold=", 0) == 0 ||
         o.rfind("storm_kill=", 0) == 0 ||
         o.rfind("adaptive_faults=", 0) == 0;
}

// Randomized configuration generation. Every knob is emitted as an
// explicit override so the repro file is self-contained; generation
// retries until validate() accepts the combination.
std::vector<std::string> random_config(Rng& rng) {
  for (;;) {
    std::vector<std::string> ov;
    auto add = [&](const std::string& k, const std::string& v) {
      ov.push_back(k + "=" + v);
    };
    add("seed", std::to_string(rng.next_u64() % 100000));
    const int w = 2 + static_cast<int>(rng.next_below(3));  // 2..4
    const int h = 2 + static_cast<int>(rng.next_below(3));  // 2..4
    add("mesh_width", std::to_string(w));
    add("mesh_height", std::to_string(h));
    if (rng.bernoulli(0.2)) add("torus", "1");
    add("num_vcs", std::to_string(2 + rng.next_below(3)));       // 2..4
    add("vc_buffer_depth", std::to_string(2 + rng.next_below(5)));  // 2..6
    add("pipeline_stages", std::to_string(1 + rng.next_below(4)));  // 1..4
    add("retransmission_depth", std::to_string(3 + rng.next_below(4)));
    add("packet_length", std::to_string(3 + rng.next_below(4)));    // 3..6
    {
      std::ostringstream r;
      r << (0.05 + 0.35 * rng.next_double());
      add("injection_rate", r.str());
    }
    static const char* kProt[] = {"none", "fec", "e2e", "hbh", "hbh"};
    add("protection", kProt[rng.next_below(5)]);
    static const char* kRoute[] = {"xy", "adaptive", "escape"};
    const char* route = kRoute[rng.next_below(3)];
    // Buffer policies under the oracle: damq composes with everything;
    // voq is only admissible under deterministic XY (validate() refuses
    // other routings), so force the pairing rather than redraw.
    static const char* kBufPol[] = {"private_vc", "private_vc", "damq",
                                    "voq"};
    const char* bufpol = kBufPol[rng.next_below(4)];
    if (std::strcmp(bufpol, "voq") == 0) route = "xy";
    add("routing", route);
    if (std::strcmp(bufpol, "private_vc") != 0) {
      add("buffer_policy", bufpol);
    }
    if (std::strcmp(bufpol, "damq") == 0) {
      add("damq_reserve_slots", std::to_string(1 + rng.next_below(3)));
    }
    static const char* kPat[] = {"nr", "bc", "tn"};
    add("pattern", kPat[rng.next_below(3)]);
    if (rng.bernoulli(0.6)) {
      std::ostringstream r;
      r << (0.0005 + 0.01 * rng.next_double());
      add("link_error_rate", r.str());
    }
    if (rng.bernoulli(0.25)) add("rt_error_rate", "0.001");
    if (rng.bernoulli(0.25)) add("va_error_rate", "0.001");
    if (rng.bernoulli(0.25)) add("sa_error_rate", "0.001");
    if (rng.bernoulli(0.2)) add("rtx_error_rate", "0.001");
    if (rng.bernoulli(0.2)) add("handshake_error_rate", "0.0005");
    if (rng.bernoulli(0.3)) add("tmr_handshaking", "0");
    if (rng.bernoulli(0.2)) add("ecc_detect_only", "1");
    if (rng.bernoulli(0.2)) add("duplicate_rtx_buffers", "1");
    if (rng.bernoulli(0.15)) add("enable_ac", "0");
    if (rng.bernoulli(0.5)) {
      add("deadlock_recovery", "1");
      add("probe_threshold", std::to_string(8 + rng.next_below(57)));
      add("probe_backoff", "8");
      add("exit_block_window", "256");
    }
    // Permanent faults: dead links/routers and runtime escalation walk
    // the fault-aware routing, drain and re-home paths through the
    // differential oracle. Partitioning draws are rejected by validate()
    // below, which re-enters the redraw loop.
    const int nodes = w * h;
    if (rng.bernoulli(0.25)) {
      static const char* kDirs[] = {"N", "E", "S", "W"};
      const int k = 1 + static_cast<int>(rng.next_below(2));
      for (int j = 0; j < k; ++j) {
        add("dead_link", std::to_string(rng.next_below(
                             static_cast<std::uint64_t>(nodes))) +
                             ":" + kDirs[rng.next_below(4)]);
      }
    }
    if (rng.bernoulli(0.1)) {
      add("dead_router",
          std::to_string(rng.next_below(static_cast<std::uint64_t>(nodes))));
    }
    if (rng.bernoulli(0.2)) {
      add("link_escalation_threshold",
          std::to_string(1 + rng.next_below(3)));
    }
    // Fault-storm timelines: links die mid-run, walking the online
    // reconfiguration (route-epoch re-home) and drain paths under the
    // oracle. Cycles ascend (validate() requires it); partition-prone
    // draws are fine — the veto trims them at runtime identically in
    // both implementations.
    bool any_faults = false;
    if (rng.bernoulli(0.2)) {
      static const char* kDirs[] = {"N", "E", "S", "W"};
      const int k = 1 + static_cast<int>(rng.next_below(2));
      Cycle at = 100 + rng.next_below(300);
      for (int j = 0; j < k; ++j) {
        add("storm_kill",
            std::to_string(at) + ":" +
                std::to_string(
                    rng.next_below(static_cast<std::uint64_t>(nodes))) +
                ":" + kDirs[rng.next_below(4)]);
        at += 100 + rng.next_below(300);
      }
      any_faults = true;
    }
    for (const auto& o : ov) any_faults = any_faults || is_fault_override(o);
    // The non-minimal escape tier only acts on faulted fabrics; sample it
    // half the time there (and occasionally elsewhere, where it must be
    // behaviour-neutral).
    if (rng.bernoulli(any_faults ? 0.5 : 0.05)) {
      add("adaptive_faults", "1");
    }

    SimConfig probe;
    if (ftnoc::apply_overrides(probe, ov)) continue;
    if (probe.validate()) continue;  // Eq. (1) etc. refused; redraw.
    return ov;
  }
}

// True iff the trial run failed *the same way* as the original finding:
// same kind (divergence vs invariant violation), same cycle and same
// message. Accepting any failure is how fault-topology overrides
// (dead_link / dead_router / link_escalation_threshold) used to vanish
// from minimized repros: dropping the fault override can surface an
// unrelated failure at a different cycle, the greedy pass keeps the
// smaller config, and the emitted repro no longer exercises the faulted
// mesh the fuzzer actually caught.
bool same_failure(const RunResult& trial, const RunResult& orig) {
  return trial.failed && trial.diverged == orig.diverged &&
         trial.cycle == orig.cycle && trial.what == orig.what;
}

// Greedy 1-minimization: drop each override in turn (falling back to the
// SimConfig default for that knob) and keep the smaller set whenever the
// *original* failure signature still reproduces. Matching the signature
// (not just "some failure") trades minimality for faithfulness — every
// override the final repro keeps is one the original finding needs.
std::vector<std::string> minimize(std::vector<std::string> ov,
                                  const RunResult& orig, Cycle cycles,
                                  const std::string& plant,
                                  const std::chrono::steady_clock::time_point
                                      deadline) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < ov.size(); ++i) {
      if (std::chrono::steady_clock::now() > deadline) return ov;
      std::vector<std::string> trial = ov;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
      SimConfig probe;
      if (ftnoc::apply_overrides(probe, trial) || probe.validate()) continue;
      if (same_failure(run_pair(trial, cycles, plant), orig)) {
        ov = std::move(trial);
        shrunk = true;
        break;
      }
    }
  }
  return ov;
}

void write_repro(const std::string& path, const std::vector<std::string>& ov,
                 Cycle cycles, const std::string& plant,
                 const RunResult& res) {
  std::ofstream f(path);
  f << "# ftnoc_fuzz repro — replay with: ftnoc_fuzz --replay " << path
    << "\n";
  f << "# " << res.what << "\n";
  f << "cycles=" << cycles << "\n";
  if (!plant.empty()) f << "plant=" << plant << "\n";
  for (const auto& o : ov) f << o << "\n";
}

// Repro format: one key=value per line; '#' comments; the harness-level
// keys "cycles" and "plant" are consumed here, everything else goes to
// apply_override.
bool read_repro(const std::string& path, std::vector<std::string>& ov,
                Cycle& cycles, std::string& plant) {
  std::ifstream f(path);
  if (!f) return false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("cycles=", 0) == 0) {
      cycles = static_cast<Cycle>(std::stoull(line.substr(7)));
    } else if (line.rfind("plant=", 0) == 0) {
      plant = line.substr(6);
    } else {
      ov.push_back(line);
    }
  }
  return true;
}

int fuzz_main(const Options& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opt.time_budget_sec));
  Rng master(opt.seed);

  for (int i = 0; i < opt.runs; ++i) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::printf("time budget exhausted after %d run(s); no divergence\n",
                  i);
      return opt.selftest ? 1 : 0;
    }
    Rng rng(Rng::derive_seed(opt.seed, static_cast<std::uint64_t>(i)));
    std::vector<std::string> ov;
    if (opt.selftest && opt.plant == "route_into_dead_link") {
      // This plant's habitat: a faulted topology where the fault-blind
      // closed form differs from the fault-aware port set, so the
      // optimized router steers headers at the dead link while the
      // reference detours around it.
      ov = {"seed=" + std::to_string(1000 + i),
            "mesh_width=4",
            "mesh_height=4",
            "num_vcs=3",
            "vc_buffer_depth=4",
            "pipeline_stages=3",
            "packet_length=4",
            "injection_rate=0.25",
            "protection=hbh",
            "routing=adaptive",
            "dead_link=5:E"};
    } else if (opt.selftest && opt.plant == "strand_waiter") {
      // This plant's habitat: heavy adaptive traffic with aggressive
      // deadlock probing (so output VCs carry registered waiters) and a
      // storm timeline that drains central links mid-run. A waiter whose
      // flits have not been absorbed must be re-homed off the draining
      // port; the plant reverts that, so the optimized router's
      // has_waiter/out_work state wedges while the reference re-homes.
      ov = {"seed=" + std::to_string(1000 + i),
            "mesh_width=4",
            "mesh_height=4",
            "num_vcs=2",
            "vc_buffer_depth=4",
            "pipeline_stages=3",
            "packet_length=4",
            "injection_rate=0.4",
            "protection=hbh",
            "routing=adaptive",
            "deadlock_recovery=1",
            "probe_threshold=8",
            "probe_backoff=8",
            "exit_block_window=256",
            "storm_kill=200:5:E",
            "storm_kill=400:6:E",
            "storm_kill=600:9:E"};
    } else if (opt.selftest && opt.plant == "damq_credit_leak") {
      // This plant's habitat: damq shared buffering under enough load
      // that credit returns actually take the shared path (the leak
      // skips the shared_held_ decrement, so the sender's pool ledger
      // drifts from the reference's within a few returns).
      ov = {"seed=" + std::to_string(1000 + i),
            "mesh_width=4",
            "mesh_height=4",
            "num_vcs=3",
            "vc_buffer_depth=4",
            "pipeline_stages=3",
            "packet_length=4",
            "injection_rate=0.3",
            "protection=hbh",
            "routing=xy",
            "buffer_policy=damq",
            "damq_reserve_slots=1"};
    } else if (opt.selftest) {
      // Bias toward the planted bug's habitat: a 4-stage HBH sender with
      // real link errors (the short drop window admits a stale third
      // follower).
      ov = {"seed=" + std::to_string(1000 + i),
            "mesh_width=4",
            "mesh_height=4",
            "num_vcs=3",
            "vc_buffer_depth=4",
            "pipeline_stages=4",
            "retransmission_depth=4",
            "packet_length=4",
            "injection_rate=0.25",
            "protection=hbh",
            "link_error_rate=0.01"};
    } else {
      ov = random_config(rng);
    }
    if (std::getenv("FTNOC_FUZZ_TRACE")) {
      std::fprintf(stderr, "run %d:", i);
      for (const auto& o : ov) std::fprintf(stderr, " %s", o.c_str());
      std::fprintf(stderr, "\n");
    }
    const RunResult res = run_pair(ov, opt.cycles, opt.plant);
    if (!res.failed) continue;

    std::printf("run %d FAILED: %s\n", i, res.what.c_str());
    const Cycle rep_cycles = res.diverged ? res.cycle + 1 : opt.cycles;
    const auto min_ov = minimize(ov, res, rep_cycles, opt.plant, deadline);
    write_repro(opt.out, min_ov, rep_cycles, opt.plant, res);
    std::printf("repro (%zu overrides) written to %s\n", min_ov.size(),
                opt.out.c_str());

    // Prove the repro replays before claiming victory — and replays the
    // same finding, not some other failure the shrinking surfaced.
    const RunResult replayed = run_pair(min_ov, rep_cycles, opt.plant);
    if (!same_failure(replayed, res)) {
      std::printf("WARNING: minimized repro did not replay the finding\n");
      return 2;
    }
    if (opt.selftest && (opt.plant == "route_into_dead_link" ||
                         opt.plant == "strand_waiter")) {
      // These plants only manifest on a faulted (or mid-run faulting)
      // mesh, so a faithful minimizer must keep the fault-topology
      // override. Losing it was exactly the old any-failure acceptance
      // bug.
      bool kept = false;
      for (const auto& o : min_ov) kept = kept || is_fault_override(o);
      if (!kept) {
        std::printf(
            "SELFTEST FAIL: minimized repro lost its fault-topology "
            "override\n");
        return 2;
      }
    }
    return opt.selftest ? 0 : 2;
  }
  std::printf("%d run(s), no divergence\n", opt.runs);
  return opt.selftest ? 1 : 0;
}

int replay_main(const Options& opt) {
  std::vector<std::string> ov;
  Cycle cycles = 1500;
  std::string plant = opt.plant;
  if (!read_repro(opt.replay, ov, cycles, plant)) {
    std::fprintf(stderr, "cannot read repro file: %s\n", opt.replay.c_str());
    return 2;
  }
  const RunResult res = run_pair(ov, cycles, plant);
  if (res.failed) {
    std::printf("reproduced: %s\n", res.what.c_str());
    return 0;
  }
  std::printf("did not reproduce\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
#if !FTNOC_ENABLE_INVARIANTS
  std::fprintf(stderr,
               "ftnoc_fuzz: built with FTNOC_INVARIANTS=OFF; digest "
               "comparison still runs but invariant findings are dark\n");
#endif
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (a == "--runs") {
      opt.runs = std::atoi(next());
    } else if (a == "--cycles") {
      opt.cycles = static_cast<Cycle>(std::atoll(next()));
    } else if (a == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--time-budget") {
      opt.time_budget_sec = std::atof(next());
    } else if (a == "--out") {
      opt.out = next();
    } else if (a == "--plant") {
      opt.plant = next();
    } else if (a == "--selftest") {
      opt.selftest = true;
      if (opt.plant.empty()) opt.plant = "drop_window";
    } else if (a == "--replay") {
      opt.replay = next();
    } else {
      std::fprintf(stderr,
                   "usage: ftnoc_fuzz [--runs N] [--cycles N] [--seed S]\n"
                   "                  [--time-budget SEC] [--out FILE]\n"
                   "                  [--plant NAME] [--selftest]\n"
                   "                  [--replay FILE]\n");
      return 2;
    }
  }
  if (!opt.replay.empty()) return replay_main(opt);
  return fuzz_main(opt);
}

// ftnoc_campaign: Monte-Carlo reliability campaign runner.
//
//   ftnoc_campaign [--flags] key=v1,v2,... [key=value ...]
//
// For every config point (a --preset grid or a Cartesian product of
// key=v1,v2 axes, exactly like ftnoc_sweep) the campaign fans out R
// replicas with seeds derived from (--seed, point, replica) through the
// shared worker pool and streams one aggregate JSON record per point:
// mean/stddev/95% CI for latency, energy and throughput, plus
// Wilson-score intervals for silent corruption, packet loss and
// deadlock-recovery success. With a CI target (--ci-abs / --ci-rel)
// replicas run in adaptive waves and a point stops as soon as its latency
// CI half-width meets the target, so cheap points don't burn the budget
// the hard points need.
//
//   ftnoc_campaign --preset=fig05 --replicas=16
//   ftnoc_campaign --preset=fig05 --replicas=64 --ci-rel=0.05
//       --journal=fig05.journal --out=fig05.agg.jsonl
//   ftnoc_campaign --preset=fig05 --replicas=64 --ci-rel=0.05
//       --resume=fig05.journal --out=fig05.agg.jsonl   # after a crash
//
// Output is byte-identical for any --threads value, and a run resumed
// from an interrupted journal reproduces the uninterrupted output (and
// journal) byte for byte.

#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/config.hpp"
#include "sweep/grid.hpp"
#include "sweep/presets.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ftnoc_campaign [options] key=v1[,v2,...] ...\n"
    "  --preset=NAME     canonical paper grid (see --preset=help)\n"
    "  --replicas=N      per-point replica cap (default 16)\n"
    "  --min-replicas=N  replicas before the stop rule may fire (default 4)\n"
    "  --wave=N          replicas per adaptive wave (default: min-replicas)\n"
    "  --ci-abs=X        stop once the 95%% CI half-width of mean latency\n"
    "                    is <= X cycles\n"
    "  --ci-rel=X        ... is <= X * |mean latency|\n"
    "  --threads=N       worker threads (default 0 = hardware concurrency)\n"
    "  --pin             pin worker threads round-robin to CPUs (Linux)\n"
    "  --seed=S          campaign seed (default 1)\n"
    "  --shard=I/N       run only shard I of N (0 <= I < N): the\n"
    "                    deterministic 1/N slice of the (point, replica)\n"
    "                    space. Requires a fixed replica quota (no\n"
    "                    --ci-abs/--ci-rel); merge the N journals with\n"
    "                    ftnoc_merge\n"
    "  --out=FILE        aggregate JSONL (default stdout)\n"
    "  --journal=FILE    write the per-replica journal to FILE (truncates)\n"
    "  --resume=FILE     resume from FILE's valid prefix and append to it\n"
    "  --quiet           suppress per-wave progress on stderr\n"
    "  --help            this text\n";

bool flag_value(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

void list_presets(std::FILE* to) {
  std::fprintf(to, "valid presets: %s\n",
               ftnoc::sweep::preset_names_line().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftnoc;

  campaign::CampaignOptions opts;
  std::string out_path;
  std::string journal_path;
  std::string resume_path;
  std::string preset;
  bool quiet = false;
  std::vector<std::string> axis_specs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (flag_value(arg, "--threads", v)) {
      opts.num_threads = std::atoi(v.c_str());
    } else if (std::strcmp(arg, "--pin") == 0) {
      opts.pin_threads = true;
    } else if (flag_value(arg, "--seed", v)) {
      opts.campaign_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(arg, "--shard", v)) {
      int index = -1;
      int count = 0;
      if (std::sscanf(v.c_str(), "%d/%d", &index, &count) != 2 ||
          count < 1 || index < 0 || index >= count) {
        std::fprintf(stderr,
                     "--shard wants I/N with 0 <= I < N, got \"%s\"\n",
                     v.c_str());
        return 1;
      }
      opts.shard.index = index;
      opts.shard.count = count;
    } else if (flag_value(arg, "--replicas", v)) {
      opts.stop.max_replicas = std::atoi(v.c_str());
    } else if (flag_value(arg, "--min-replicas", v)) {
      opts.stop.min_replicas = std::atoi(v.c_str());
    } else if (flag_value(arg, "--wave", v)) {
      opts.stop.wave = std::atoi(v.c_str());
    } else if (flag_value(arg, "--ci-abs", v)) {
      opts.stop.ci_abs = std::atof(v.c_str());
    } else if (flag_value(arg, "--ci-rel", v)) {
      opts.stop.ci_rel = std::atof(v.c_str());
    } else if (flag_value(arg, "--out", v)) {
      out_path = v;
    } else if (flag_value(arg, "--journal", v)) {
      journal_path = v;
    } else if (flag_value(arg, "--resume", v)) {
      resume_path = v;
    } else if (flag_value(arg, "--preset", v)) {
      preset = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      list_presets(stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n%s", arg, kUsage);
      return 1;
    } else {
      axis_specs.push_back(arg);
    }
  }

  if (opts.stop.max_replicas < 1 || opts.stop.min_replicas < 1) {
    std::fprintf(stderr, "--replicas and --min-replicas must be >= 1\n");
    return 1;
  }
  if (opts.stop.min_replicas > opts.stop.max_replicas) {
    opts.stop.min_replicas = opts.stop.max_replicas;
  }
  if (opts.shard.sharded() && opts.stop.adaptive()) {
    std::fprintf(stderr,
                 "--shard runs in quota mode: adaptive stopping "
                 "(--ci-abs/--ci-rel) needs every replica of a point, which "
                 "no single shard has. Drop the CI target and pick "
                 "--replicas as the fixed per-point quota.\n");
    return 1;
  }
  if (!resume_path.empty() && !journal_path.empty() &&
      resume_path != journal_path) {
    std::fprintf(stderr,
                 "--journal and --resume name different files; --resume "
                 "already appends to the resumed journal\n");
    return 1;
  }
  if (!resume_path.empty()) journal_path = resume_path;

  SimConfig base;
  base.total_messages = 30'000;
  base.warmup_messages = 10'000;
  base.max_cycles = 1'500'000;

  std::vector<sweep::SweepPoint> points;
  if (!preset.empty()) {
    if (preset == "help") {
      list_presets(stdout);
      return 0;
    }
    // Positional args become base overrides; the preset supplies the axes.
    if (auto err = apply_overrides(base, axis_specs)) {
      std::fprintf(stderr, "config error: %s\n", err->c_str());
      return 1;
    }
    points = sweep::preset_points(preset, base);
    if (points.empty()) {
      std::fprintf(stderr, "unknown preset: %s\n", preset.c_str());
      list_presets(stderr);
      return 1;
    }
    for (const auto& pt : points) {
      if (auto err = pt.config.validate()) {
        std::fprintf(stderr, "invalid point %s: %s\n", pt.label.c_str(),
                     err->c_str());
        return 1;
      }
    }
  } else {
    std::vector<sweep::GridAxis> axes;
    for (const auto& spec : axis_specs) {
      sweep::GridAxis axis;
      if (auto err = sweep::parse_axis(spec, axis)) {
        std::fprintf(stderr, "grid error: %s\n", err->c_str());
        return 1;
      }
      axes.push_back(std::move(axis));
    }
    if (auto err = sweep::expand_grid(base, axes, points)) {
      std::fprintf(stderr, "grid error: %s\n", err->c_str());
      return 1;
    }
  }

  // Resume: load the journal's valid prefix, truncate any torn tail, and
  // skip re-emitting the lines already on disk.
  std::vector<std::uint64_t> hashes;
  hashes.reserve(points.size());
  for (const auto& pt : points) {
    hashes.push_back(campaign::config_hash(pt.config));
  }
  campaign::Journal journal;
  std::size_t skip_lines = 0;
  if (!resume_path.empty()) {
    journal =
        campaign::Journal::load(resume_path, opts.campaign_seed, hashes);
    if (!journal.mismatch().empty()) {
      std::fprintf(stderr, "cannot resume from %s: %s\n", resume_path.c_str(),
                   journal.mismatch().c_str());
      return 1;
    }
    skip_lines = journal.valid_lines();
    if (journal.file_existed()) {
      if (truncate(resume_path.c_str(),
                   static_cast<off_t>(journal.valid_bytes())) != 0) {
        std::fprintf(stderr, "cannot truncate %s to its valid prefix\n",
                     resume_path.c_str());
        return 1;
      }
    }
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
  }
  std::FILE* jf = nullptr;
  if (!journal_path.empty()) {
    jf = std::fopen(journal_path.c_str(),
                    resume_path.empty() ? "w" : "a");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   journal_path.c_str());
      return 1;
    }
  }

  campaign::CampaignEngine engine(opts);
  if (!quiet) {
    std::string shard_note;
    if (opts.shard.sharded()) {
      shard_note = ", shard " + std::to_string(opts.shard.index) + "/" +
                   std::to_string(opts.shard.count);
    }
    std::fprintf(stderr,
                 "ftnoc_campaign: %zu points x <=%d replicas on %d "
                 "thread(s)%s%s%s\n",
                 points.size(), opts.stop.max_replicas, engine.num_threads(),
                 opts.stop.adaptive() ? ", adaptive stopping" : "",
                 shard_note.c_str(),
                 skip_lines != 0 ? ", resuming" : "");
    if (skip_lines != 0) {
      std::fprintf(stderr, "ftnoc_campaign: journal holds %zu line(s), %zu "
                           "replica(s) will be replayed\n",
                   skip_lines, journal.replica_count());
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t lines_emitted = 0;
  std::uint64_t simulated = 0;
  engine.run(
      points, resume_path.empty() ? nullptr : &journal,
      [&](const std::string& line) {
        if (jf == nullptr) return;
        // The engine re-emits the whole deterministic line sequence; the
        // first `skip_lines` of it are already on disk.
        if (lines_emitted++ < skip_lines) return;
        std::fprintf(jf, "%s\n", line.c_str());
        std::fflush(jf);
      },
      [&](const campaign::PointAggregate& agg) {
        const std::string line =
            campaign::aggregate_line(agg, opts.campaign_seed);
        std::fprintf(out, "%s\n", line.c_str());
        std::fflush(out);
      },
      [&](const campaign::PointAggregate& agg, int fresh) {
        simulated += static_cast<std::uint64_t>(fresh);
        if (quiet) return;
        const double hw = agg.latency_ci();
        std::fprintf(stderr, "[%s r=%d] latency=%.2f +-%.2f cyc%s\n",
                     agg.label.c_str(), agg.replicas, agg.latency.mean(),
                     agg.replicas > 1 ? hw : 0.0,
                     agg.completed_replicas == agg.replicas ? ""
                                                            : "  (TIMED-OUT)");
      });
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  if (!quiet) {
    std::fprintf(stderr,
                 "ftnoc_campaign: done, %llu replica(s) simulated, %.2f s "
                 "wall\n",
                 static_cast<unsigned long long>(simulated), wall_s);
  }
  if (jf != nullptr) std::fclose(jf);
  if (out != stdout) std::fclose(out);
  return 0;
}

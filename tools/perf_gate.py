#!/usr/bin/env python3
"""Ratcheted perf gate for the CI perf-smoke job.

Reads the JSONL emitted by `ftnoc_perf` (one line per preset point;
with --repeat=K the tool already keeps only the best repetition's
lines), recomputes the aggregate cycles/sec the same way the tool's
stderr summary does — concatenated multi-run files are grouped at each
point-index reset and the best group wins — and compares it against
the checked-in baseline (`bench/perf_baseline.json`):

    floor = baseline_best_cycles_per_sec * (1 - tolerance)

The run FAILS (exit 1) only if the measured best falls below the floor
— a real regression has to eat the whole tolerance margin, which keeps
shared-runner noise from flapping the job while still catching the
"accidentally quadratic" class of slowdown the old crash-only gate let
through.  A before/after comparison JSON is always written for the CI
artifact, pass or fail.

Ratcheting: after a deliberate perf improvement, re-pin with

    tools/perf_gate.py --jsonl perf.jsonl --baseline bench/perf_baseline.json \
        --preset perf --update --note "<what changed>"

and commit the refreshed baseline.  The baseline records the machine it
was measured on; the gate compares ratios, not absolute equality, so a
slower runner only trips it if it is >tolerance slower than the pinned
machine — set FTNOC_PERF_GATE_TOLERANCE (or --tolerance) in CI if the
runner pool is known to be weaker.

The baseline file carries one entry per gated preset (currently `perf`,
the 4x4 hot-path grid, and `perf_large`, the 16x16 fabric):

    {"presets": {"perf": {...}, "perf_large": {...}}}

--preset selects which entry to gate or re-pin; --update rewrites only
that entry and preserves the rest.  A legacy flat baseline (one
top-level entry, the pre-multi-preset format) is read as its single
preset's entry.
"""

import argparse
import json
import os
import platform
import sys


def parse_reps(path):
    """Group JSONL lines into repetitions (the point index resets to 0 at
    each new rep) and return per-rep (total_cycles, total_wall_ms)."""
    reps = []
    cur_cycles = 0
    cur_wall = 0.0
    prev_point = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            point = row.get("point", 0)
            if prev_point is not None and point <= prev_point:
                reps.append((cur_cycles, cur_wall))
                cur_cycles, cur_wall = 0, 0.0
            prev_point = point
            cur_cycles += int(row["cycles"])
            cur_wall += float(row["wall_ms"])
    if prev_point is not None:
        reps.append((cur_cycles, cur_wall))
    return reps


def best_cycles_per_sec(reps):
    best = 0.0
    for cycles, wall_ms in reps:
        if wall_ms > 0:
            best = max(best, cycles / (wall_ms / 1000.0))
    return best


def load_baselines(path):
    """The {"presets": {...}} map, upgrading a legacy flat baseline (one
    top-level entry) to a single-preset map on the fly."""
    with open(path) as f:
        data = json.load(f)
    if "presets" in data:
        return data["presets"]
    return {data.get("preset", "perf"): data}


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jsonl", required=True, help="ftnoc_perf output JSONL")
    ap.add_argument("--baseline", required=True,
                    help="checked-in baseline JSON (bench/perf_baseline.json)")
    ap.add_argument("--preset", default="perf",
                    help="baseline entry to gate or re-pin (default: perf)")
    ap.add_argument("--out", default=None,
                    help="write the before/after comparison JSON here")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get(
                        "FTNOC_PERF_GATE_TOLERANCE", "0.20")),
                    help="allowed fractional drop below baseline "
                         "(default 0.20 = -20%% floor)")
    ap.add_argument("--update", action="store_true",
                    help="re-pin the baseline from this run instead of gating")
    ap.add_argument("--note", default="",
                    help="with --update: why the baseline moved")
    args = ap.parse_args(argv)

    reps = parse_reps(args.jsonl)
    if not reps:
        print(f"perf_gate: no data rows in {args.jsonl}", file=sys.stderr)
        return 2
    measured = best_cycles_per_sec(reps)
    if measured <= 0:
        print("perf_gate: zero wall time in every rep", file=sys.stderr)
        return 2

    if args.update:
        try:
            presets = load_baselines(args.baseline)
        except FileNotFoundError:
            presets = {}
        presets[args.preset] = {
            "preset": args.preset,
            "best_cycles_per_sec": round(measured, 1),
            "reps": len(reps),
            "machine": platform.platform(),
            "note": args.note,
        }
        with open(args.baseline, "w") as f:
            json.dump({"presets": presets}, f, indent=2)
            f.write("\n")
        print(f"perf_gate: {args.preset} baseline re-pinned at "
              f"{measured:,.0f} cycles/sec")
        return 0

    presets = load_baselines(args.baseline)
    baseline = presets.get(args.preset)
    if baseline is None:
        print(f"perf_gate: no baseline entry for preset {args.preset!r} in "
              f"{args.baseline} (pin one with --update)", file=sys.stderr)
        return 2
    base = float(baseline["best_cycles_per_sec"])
    floor = base * (1.0 - args.tolerance)
    ok = measured >= floor

    comparison = {
        "preset": args.preset,
        "baseline_cycles_per_sec": base,
        "measured_cycles_per_sec": round(measured, 1),
        "ratio": round(measured / base, 4),
        "floor_cycles_per_sec": round(floor, 1),
        "tolerance": args.tolerance,
        "reps": len(reps),
        "pass": ok,
        "baseline_machine": baseline.get("machine", ""),
        "baseline_note": baseline.get("note", ""),
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(comparison, f, indent=2)
            f.write("\n")

    verdict = "PASS" if ok else "FAIL"
    print(f"perf_gate: [{args.preset}] {verdict}  "
          f"measured={measured:,.0f} c/s  "
          f"baseline={base:,.0f} c/s  ratio={measured / base:.2f}  "
          f"floor={floor:,.0f} c/s (-{args.tolerance:.0%})")
    if not ok:
        print("perf_gate: perf regression past the tolerance floor — if the "
              "slowdown is intentional, re-pin with --update", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

// ftnoc_merge: fold sharded campaign journals back into the unsharded
// byte stream.
//
//   ftnoc_merge [--flags] key=v1,v2,... shard0.journal shard1.journal ...
//
// The campaign definition (preset or axes, --replicas, --seed, --wave,
// --min-replicas) must repeat the exact arguments the shards ran with —
// the journal validates the config of every point against it
// (config_hash), so a mismatch is caught, not silently merged. The tool
// validates the shard set (no overlap, no gap, no foreign lines, torn
// tails truncated on load) and then replays the combined journal through
// the unsharded schedule: the merged journal (--journal) and aggregate
// JSONL (--out) are byte-identical to what one unsharded run would have
// produced.
//
//   ftnoc_campaign --preset=fig06 --replicas=8 --shard=0/3 --journal=s0.journal
//   ftnoc_campaign --preset=fig06 --replicas=8 --shard=1/3 --journal=s1.journal
//   ftnoc_campaign --preset=fig06 --replicas=8 --shard=2/3 --journal=s2.journal
//   ftnoc_merge    --preset=fig06 --replicas=8 --journal=merged.journal
//       --out=merged.agg.jsonl s0.journal s1.journal s2.journal
//
// Sharded campaigns run in quota mode (fixed --replicas per point);
// adaptive CI stopping cannot be sharded or merged (DESIGN.md §4.13).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/merge.hpp"
#include "common/config.hpp"
#include "sweep/grid.hpp"
#include "sweep/presets.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ftnoc_merge [options] [key=v1[,v2,...] ...] SHARD.journal ...\n"
    "  --preset=NAME     canonical paper grid (see --preset=help)\n"
    "  --replicas=N      per-point replica quota the shards ran (default 16)\n"
    "  --min-replicas=N  must match the shards' value (default 4)\n"
    "  --wave=N          must match the shards' value (default: min-replicas)\n"
    "  --seed=S          campaign seed the shards ran (default 1)\n"
    "  --in=FILE         shard journal (repeatable; positional arguments\n"
    "                    without '=' are shard journals too)\n"
    "  --shards=N        expect exactly N shard journals (optional check)\n"
    "  --out=FILE        merged aggregate JSONL (default stdout)\n"
    "  --journal=FILE    write the merged journal to FILE (truncates)\n"
    "  --quiet           suppress progress on stderr\n"
    "  --help            this text\n";

bool flag_value(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

void list_presets(std::FILE* to) {
  std::fprintf(to, "valid presets: %s\n",
               ftnoc::sweep::preset_names_line().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftnoc;

  campaign::CampaignOptions opts;
  std::string out_path;
  std::string journal_path;
  std::string preset;
  int expected_shards = 0;
  bool quiet = false;
  std::vector<std::string> axis_specs;
  std::vector<std::string> shard_paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (flag_value(arg, "--seed", v)) {
      opts.campaign_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(arg, "--replicas", v)) {
      opts.stop.max_replicas = std::atoi(v.c_str());
    } else if (flag_value(arg, "--min-replicas", v)) {
      opts.stop.min_replicas = std::atoi(v.c_str());
    } else if (flag_value(arg, "--wave", v)) {
      opts.stop.wave = std::atoi(v.c_str());
    } else if (flag_value(arg, "--in", v)) {
      shard_paths.push_back(v);
    } else if (flag_value(arg, "--shards", v)) {
      expected_shards = std::atoi(v.c_str());
    } else if (flag_value(arg, "--out", v)) {
      out_path = v;
    } else if (flag_value(arg, "--journal", v)) {
      journal_path = v;
    } else if (flag_value(arg, "--preset", v)) {
      preset = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      list_presets(stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n%s", arg, kUsage);
      return 1;
    } else if (std::strchr(arg, '=') != nullptr) {
      axis_specs.push_back(arg);  // key=value config override.
    } else {
      shard_paths.push_back(arg);  // A shard journal.
    }
  }

  if (opts.stop.max_replicas < 1 || opts.stop.min_replicas < 1) {
    std::fprintf(stderr, "--replicas and --min-replicas must be >= 1\n");
    return 1;
  }
  if (opts.stop.min_replicas > opts.stop.max_replicas) {
    opts.stop.min_replicas = opts.stop.max_replicas;
  }
  if (shard_paths.empty()) {
    std::fprintf(stderr, "no shard journals given\n%s", kUsage);
    return 1;
  }
  if (expected_shards > 0 &&
      shard_paths.size() != static_cast<std::size_t>(expected_shards)) {
    std::fprintf(stderr, "--shards=%d but %zu shard journal(s) given\n",
                 expected_shards, shard_paths.size());
    return 1;
  }

  // Rebuild the campaign's point grid exactly as ftnoc_campaign does.
  SimConfig base;
  base.total_messages = 30'000;
  base.warmup_messages = 10'000;
  base.max_cycles = 1'500'000;

  std::vector<sweep::SweepPoint> points;
  if (!preset.empty()) {
    if (preset == "help") {
      list_presets(stdout);
      return 0;
    }
    if (auto err = apply_overrides(base, axis_specs)) {
      std::fprintf(stderr, "config error: %s\n", err->c_str());
      return 1;
    }
    points = sweep::preset_points(preset, base);
    if (points.empty()) {
      std::fprintf(stderr, "unknown preset: %s\n", preset.c_str());
      list_presets(stderr);
      return 1;
    }
    for (const auto& pt : points) {
      if (auto err = pt.config.validate()) {
        std::fprintf(stderr, "invalid point %s: %s\n", pt.label.c_str(),
                     err->c_str());
        return 1;
      }
    }
  } else {
    std::vector<sweep::GridAxis> axes;
    for (const auto& spec : axis_specs) {
      sweep::GridAxis axis;
      if (auto err = sweep::parse_axis(spec, axis)) {
        std::fprintf(stderr, "grid error: %s\n", err->c_str());
        return 1;
      }
      axes.push_back(std::move(axis));
    }
    if (auto err = sweep::expand_grid(base, axes, points)) {
      std::fprintf(stderr, "grid error: %s\n", err->c_str());
      return 1;
    }
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
  }
  std::FILE* jf = nullptr;
  if (!journal_path.empty()) {
    jf = std::fopen(journal_path.c_str(), "w");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   journal_path.c_str());
      return 1;
    }
  }

  campaign::MergeStats stats;
  const auto err = campaign::merge_journals(
      points, opts, shard_paths,
      [&](const std::string& line) {
        if (jf != nullptr) std::fprintf(jf, "%s\n", line.c_str());
      },
      [&](const campaign::PointAggregate& agg) {
        const std::string line =
            campaign::aggregate_line(agg, opts.campaign_seed);
        std::fprintf(out, "%s\n", line.c_str());
      },
      &stats);
  if (jf != nullptr) std::fclose(jf);
  if (out != stdout) std::fclose(out);
  if (err.has_value()) {
    std::fprintf(stderr, "ftnoc_merge: %s\n", err->c_str());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "ftnoc_merge: %zu shard journal(s), %zu replica(s), "
                 "%zu point(s) merged\n",
                 stats.shard_journals, stats.replicas, points.size());
  }
  return 0;
}

# Empty compiler generated dependencies file for abl_deadlock_recovery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_deadlock_recovery.dir/abl_deadlock_recovery.cpp.o"
  "CMakeFiles/abl_deadlock_recovery.dir/abl_deadlock_recovery.cpp.o.d"
  "abl_deadlock_recovery"
  "abl_deadlock_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_deadlock_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig13a_corrected_errors.dir/fig13a_corrected_errors.cpp.o"
  "CMakeFiles/fig13a_corrected_errors.dir/fig13a_corrected_errors.cpp.o.d"
  "fig13a_corrected_errors"
  "fig13a_corrected_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_corrected_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig13a_corrected_errors.
# This may be replaced when dependencies are built.

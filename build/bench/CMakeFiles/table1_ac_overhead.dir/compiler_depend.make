# Empty compiler generated dependencies file for table1_ac_overhead.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_ac_overhead.cpp" "bench/CMakeFiles/table1_ac_overhead.dir/table1_ac_overhead.cpp.o" "gcc" "bench/CMakeFiles/table1_ac_overhead.dir/table1_ac_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/ftnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ftnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftnoc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

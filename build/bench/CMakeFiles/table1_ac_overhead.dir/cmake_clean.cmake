file(REMOVE_RECURSE
  "CMakeFiles/table1_ac_overhead.dir/table1_ac_overhead.cpp.o"
  "CMakeFiles/table1_ac_overhead.dir/table1_ac_overhead.cpp.o.d"
  "table1_ac_overhead"
  "table1_ac_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ac_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig08_txbuf_util.
# This may be replaced when dependencies are built.

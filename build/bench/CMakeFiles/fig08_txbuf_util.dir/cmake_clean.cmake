file(REMOVE_RECURSE
  "CMakeFiles/fig08_txbuf_util.dir/fig08_txbuf_util.cpp.o"
  "CMakeFiles/fig08_txbuf_util.dir/fig08_txbuf_util.cpp.o.d"
  "fig08_txbuf_util"
  "fig08_txbuf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_txbuf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig13b_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig13b_energy.dir/fig13b_energy.cpp.o"
  "CMakeFiles/fig13b_energy.dir/fig13b_energy.cpp.o.d"
  "fig13b_energy"
  "fig13b_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_rtx_depth.
# This may be replaced when dependencies are built.

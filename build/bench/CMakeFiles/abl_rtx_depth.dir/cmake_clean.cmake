file(REMOVE_RECURSE
  "CMakeFiles/abl_rtx_depth.dir/abl_rtx_depth.cpp.o"
  "CMakeFiles/abl_rtx_depth.dir/abl_rtx_depth.cpp.o.d"
  "abl_rtx_depth"
  "abl_rtx_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rtx_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_cthres.
# This may be replaced when dependencies are built.

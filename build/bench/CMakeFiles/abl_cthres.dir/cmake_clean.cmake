file(REMOVE_RECURSE
  "CMakeFiles/abl_cthres.dir/abl_cthres.cpp.o"
  "CMakeFiles/abl_cthres.dir/abl_cthres.cpp.o.d"
  "abl_cthres"
  "abl_cthres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cthres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abl_pipeline_recovery.dir/abl_pipeline_recovery.cpp.o"
  "CMakeFiles/abl_pipeline_recovery.dir/abl_pipeline_recovery.cpp.o.d"
  "abl_pipeline_recovery"
  "abl_pipeline_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipeline_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

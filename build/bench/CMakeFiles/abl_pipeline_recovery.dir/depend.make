# Empty dependencies file for abl_pipeline_recovery.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig07_hbh_energy.
# This may be replaced when dependencies are built.

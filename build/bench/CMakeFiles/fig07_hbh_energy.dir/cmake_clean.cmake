file(REMOVE_RECURSE
  "CMakeFiles/fig07_hbh_energy.dir/fig07_hbh_energy.cpp.o"
  "CMakeFiles/fig07_hbh_energy.dir/fig07_hbh_energy.cpp.o.d"
  "fig07_hbh_energy"
  "fig07_hbh_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hbh_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig06_hbh_latency.dir/fig06_hbh_latency.cpp.o"
  "CMakeFiles/fig06_hbh_latency.dir/fig06_hbh_latency.cpp.o.d"
  "fig06_hbh_latency"
  "fig06_hbh_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_hbh_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

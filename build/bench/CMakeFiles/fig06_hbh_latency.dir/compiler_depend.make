# Empty compiler generated dependencies file for fig06_hbh_latency.
# This may be replaced when dependencies are built.

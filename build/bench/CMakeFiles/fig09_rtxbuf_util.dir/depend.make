# Empty dependencies file for fig09_rtxbuf_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_rtxbuf_util.dir/fig09_rtxbuf_util.cpp.o"
  "CMakeFiles/fig09_rtxbuf_util.dir/fig09_rtxbuf_util.cpp.o.d"
  "fig09_rtxbuf_util"
  "fig09_rtxbuf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rtxbuf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

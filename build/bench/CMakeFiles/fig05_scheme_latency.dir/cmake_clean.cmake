file(REMOVE_RECURSE
  "CMakeFiles/fig05_scheme_latency.dir/fig05_scheme_latency.cpp.o"
  "CMakeFiles/fig05_scheme_latency.dir/fig05_scheme_latency.cpp.o.d"
  "fig05_scheme_latency"
  "fig05_scheme_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_scheme_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig05_scheme_latency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for deadlock_rescue.
# This may be replaced when dependencies are built.

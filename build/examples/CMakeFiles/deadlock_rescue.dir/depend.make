# Empty dependencies file for deadlock_rescue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deadlock_rescue.dir/deadlock_rescue.cpp.o"
  "CMakeFiles/deadlock_rescue.dir/deadlock_rescue.cpp.o.d"
  "deadlock_rescue"
  "deadlock_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

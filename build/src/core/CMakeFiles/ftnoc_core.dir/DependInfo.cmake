
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation_comparator.cpp" "src/core/CMakeFiles/ftnoc_core.dir/allocation_comparator.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/allocation_comparator.cpp.o.d"
  "/root/repo/src/core/deadlock.cpp" "src/core/CMakeFiles/ftnoc_core.dir/deadlock.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/deadlock.cpp.o.d"
  "/root/repo/src/core/error_check_unit.cpp" "src/core/CMakeFiles/ftnoc_core.dir/error_check_unit.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/error_check_unit.cpp.o.d"
  "/root/repo/src/core/fault_injector.cpp" "src/core/CMakeFiles/ftnoc_core.dir/fault_injector.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/fault_injector.cpp.o.d"
  "/root/repo/src/core/flit.cpp" "src/core/CMakeFiles/ftnoc_core.dir/flit.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/flit.cpp.o.d"
  "/root/repo/src/core/logic_error_model.cpp" "src/core/CMakeFiles/ftnoc_core.dir/logic_error_model.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/logic_error_model.cpp.o.d"
  "/root/repo/src/core/retransmission_buffer.cpp" "src/core/CMakeFiles/ftnoc_core.dir/retransmission_buffer.cpp.o" "gcc" "src/core/CMakeFiles/ftnoc_core.dir/retransmission_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftnoc_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ftnoc_core.dir/allocation_comparator.cpp.o"
  "CMakeFiles/ftnoc_core.dir/allocation_comparator.cpp.o.d"
  "CMakeFiles/ftnoc_core.dir/deadlock.cpp.o"
  "CMakeFiles/ftnoc_core.dir/deadlock.cpp.o.d"
  "CMakeFiles/ftnoc_core.dir/error_check_unit.cpp.o"
  "CMakeFiles/ftnoc_core.dir/error_check_unit.cpp.o.d"
  "CMakeFiles/ftnoc_core.dir/fault_injector.cpp.o"
  "CMakeFiles/ftnoc_core.dir/fault_injector.cpp.o.d"
  "CMakeFiles/ftnoc_core.dir/flit.cpp.o"
  "CMakeFiles/ftnoc_core.dir/flit.cpp.o.d"
  "CMakeFiles/ftnoc_core.dir/logic_error_model.cpp.o"
  "CMakeFiles/ftnoc_core.dir/logic_error_model.cpp.o.d"
  "CMakeFiles/ftnoc_core.dir/retransmission_buffer.cpp.o"
  "CMakeFiles/ftnoc_core.dir/retransmission_buffer.cpp.o.d"
  "libftnoc_core.a"
  "libftnoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftnoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftnoc_core.a"
)

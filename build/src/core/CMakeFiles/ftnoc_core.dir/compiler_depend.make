# Empty compiler generated dependencies file for ftnoc_core.
# This may be replaced when dependencies are built.

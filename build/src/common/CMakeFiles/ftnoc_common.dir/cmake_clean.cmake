file(REMOVE_RECURSE
  "CMakeFiles/ftnoc_common.dir/config.cpp.o"
  "CMakeFiles/ftnoc_common.dir/config.cpp.o.d"
  "CMakeFiles/ftnoc_common.dir/log.cpp.o"
  "CMakeFiles/ftnoc_common.dir/log.cpp.o.d"
  "CMakeFiles/ftnoc_common.dir/rng.cpp.o"
  "CMakeFiles/ftnoc_common.dir/rng.cpp.o.d"
  "CMakeFiles/ftnoc_common.dir/stats_util.cpp.o"
  "CMakeFiles/ftnoc_common.dir/stats_util.cpp.o.d"
  "libftnoc_common.a"
  "libftnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftnoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ftnoc_common.
# This may be replaced when dependencies are built.

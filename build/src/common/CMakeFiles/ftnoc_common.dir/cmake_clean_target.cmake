file(REMOVE_RECURSE
  "libftnoc_common.a"
)

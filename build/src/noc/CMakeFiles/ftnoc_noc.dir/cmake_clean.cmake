file(REMOVE_RECURSE
  "CMakeFiles/ftnoc_noc.dir/arbiter.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/arbiter.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/network.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/network.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/router.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/router.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/routing.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/routing.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/simulator.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/simulator.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/topology.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/topology.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/trace.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/trace.cpp.o.d"
  "CMakeFiles/ftnoc_noc.dir/traffic.cpp.o"
  "CMakeFiles/ftnoc_noc.dir/traffic.cpp.o.d"
  "libftnoc_noc.a"
  "libftnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

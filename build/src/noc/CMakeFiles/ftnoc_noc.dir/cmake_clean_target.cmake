file(REMOVE_RECURSE
  "libftnoc_noc.a"
)

# Empty dependencies file for ftnoc_noc.
# This may be replaced when dependencies are built.

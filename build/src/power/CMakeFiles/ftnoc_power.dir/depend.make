# Empty dependencies file for ftnoc_power.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ftnoc_power.dir/area_power_model.cpp.o"
  "CMakeFiles/ftnoc_power.dir/area_power_model.cpp.o.d"
  "CMakeFiles/ftnoc_power.dir/energy_model.cpp.o"
  "CMakeFiles/ftnoc_power.dir/energy_model.cpp.o.d"
  "libftnoc_power.a"
  "libftnoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftnoc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftnoc_power.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ftnoc_ecc.dir/hamming.cpp.o"
  "CMakeFiles/ftnoc_ecc.dir/hamming.cpp.o.d"
  "libftnoc_ecc.a"
  "libftnoc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftnoc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftnoc_ecc.a"
)

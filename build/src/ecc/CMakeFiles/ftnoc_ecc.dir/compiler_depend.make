# Empty compiler generated dependencies file for ftnoc_ecc.
# This may be replaced when dependencies are built.

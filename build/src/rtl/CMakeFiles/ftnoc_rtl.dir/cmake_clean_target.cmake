file(REMOVE_RECURSE
  "libftnoc_rtl.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ftnoc_rtl.dir/ac_circuit.cpp.o"
  "CMakeFiles/ftnoc_rtl.dir/ac_circuit.cpp.o.d"
  "CMakeFiles/ftnoc_rtl.dir/netlist.cpp.o"
  "CMakeFiles/ftnoc_rtl.dir/netlist.cpp.o.d"
  "libftnoc_rtl.a"
  "libftnoc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftnoc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

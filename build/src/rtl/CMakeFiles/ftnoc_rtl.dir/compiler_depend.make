# Empty compiler generated dependencies file for ftnoc_rtl.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation_comparator.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_allocation_comparator.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_allocation_comparator.cpp.o.d"
  "/root/repo/tests/test_arbiter.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_arbiter.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_arbiter.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_config_space_sweep.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_config_space_sweep.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_config_space_sweep.cpp.o.d"
  "/root/repo/tests/test_deadlock_agent.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_deadlock_agent.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_deadlock_agent.cpp.o.d"
  "/root/repo/tests/test_deadlock_hardening.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_deadlock_hardening.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_deadlock_hardening.cpp.o.d"
  "/root/repo/tests/test_fault_injector.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_fault_injector.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_fault_injector.cpp.o.d"
  "/root/repo/tests/test_flit_traffic.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_flit_traffic.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_flit_traffic.cpp.o.d"
  "/root/repo/tests/test_hamming.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_hamming.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_hamming.cpp.o.d"
  "/root/repo/tests/test_integration_basic.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_basic.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_basic.cpp.o.d"
  "/root/repo/tests/test_integration_deadlock.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_deadlock.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_deadlock.cpp.o.d"
  "/root/repo/tests/test_integration_extensions.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_extensions.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_extensions.cpp.o.d"
  "/root/repo/tests/test_integration_faults.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_faults.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_faults.cpp.o.d"
  "/root/repo/tests/test_integration_pipeline.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_pipeline.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_pipeline.cpp.o.d"
  "/root/repo/tests/test_integration_routing_modes.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_routing_modes.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_integration_routing_modes.cpp.o.d"
  "/root/repo/tests/test_logic_error_model.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_logic_error_model.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_logic_error_model.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_power_models.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_power_models.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_power_models.cpp.o.d"
  "/root/repo/tests/test_retransmission_buffer.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_retransmission_buffer.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_retransmission_buffer.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_router_unit.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_router_unit.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_router_unit.cpp.o.d"
  "/root/repo/tests/test_rtl_ac.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_rtl_ac.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_rtl_ac.cpp.o.d"
  "/root/repo/tests/test_rtx_buffer_property.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_rtx_buffer_property.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_rtx_buffer_property.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_topology_routing.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_topology_routing.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_topology_routing.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ftnoc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ftnoc_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/ftnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ftnoc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ftnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftnoc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

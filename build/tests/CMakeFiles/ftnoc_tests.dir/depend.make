# Empty dependencies file for ftnoc_tests.
# This may be replaced when dependencies are built.

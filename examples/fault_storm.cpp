// fault_storm: an SoC interconnect riding out every fault class at once.
//
// Models a noisy deep-sub-micron die: link upsets from crosstalk, logic
// upsets in the routing unit and both allocators, retransmission-buffer
// upsets and handshake-line glitches — all active simultaneously, swept
// over increasing severity. The full protection stack (SEC/DED + HBH
// retransmission, Allocation Comparator, duplicate retransmission buffers,
// TMR handshaking) keeps every message intact; the final sweep step
// re-runs the harshest level with all protection stripped to show the
// contrast.
//
//   ./fault_storm [key=value ...]

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"

namespace {

ftnoc::SimResults run_level(ftnoc::SimConfig cfg, double severity,
                            bool protect) {
  cfg.faults.link_error_rate = severity;
  cfg.faults.rt_error_rate = severity / 10;
  cfg.faults.va_error_rate = severity / 10;
  cfg.faults.sa_error_rate = severity / 10;
  cfg.faults.rtx_error_rate = severity / 10;
  cfg.faults.handshake_error_rate = severity / 10;
  if (protect) {
    cfg.protection = ftnoc::LinkProtection::kHbh;
    cfg.enable_ac = true;
    cfg.duplicate_rtx_buffers = true;
    cfg.tmr_handshaking = true;
  } else {
    cfg.protection = ftnoc::LinkProtection::kNone;
    cfg.enable_ac = false;
    cfg.duplicate_rtx_buffers = false;
    cfg.tmr_handshaking = false;
  }
  return ftnoc::run_simulation(cfg);
}

void print_row(const char* label, double severity, const ftnoc::SimResults& r) {
  std::printf("%-12s %8.0e %10.2f %11.4f %9llu %9llu %9llu %10llu  %s\n",
              label, severity, r.avg_latency_cycles, r.energy_per_message_nj,
              static_cast<unsigned long long>(r.link_errors_corrected),
              static_cast<unsigned long long>(r.rt_errors_recovered +
                                              r.va_errors_recovered +
                                              r.sa_errors_recovered),
              static_cast<unsigned long long>(r.rtx_errors_corrected +
                                              r.handshake_errors_corrected),
              static_cast<unsigned long long>(r.corrupted_delivered),
              r.completed ? "ok" : "WEDGED");
}

}  // namespace

int main(int argc, char** argv) {
  ftnoc::SimConfig cfg;
  cfg.injection_rate = 0.2;
  cfg.warmup_messages = 2'000;
  cfg.total_messages = 12'000;
  cfg.max_cycles = 500'000;

  std::vector<std::string> overrides(argv + 1, argv + argc);
  if (auto err = ftnoc::apply_overrides(cfg, overrides)) {
    std::fprintf(stderr, "config error: %s\n", err->c_str());
    return 1;
  }
  if (auto err = cfg.validate()) {
    std::fprintf(stderr, "invalid config: %s\n", err->c_str());
    return 1;
  }

  std::printf("fault storm on a %dx%d mesh, inj=%.2f flits/node/cycle\n",
              cfg.mesh_width, cfg.mesh_height, cfg.injection_rate);
  std::printf("%-12s %8s %10s %11s %9s %9s %9s %10s\n", "mode", "severity",
              "latency", "nJ/msg", "link_fix", "logic_fix", "hw_fix",
              "corrupted");

  for (double severity : {1e-4, 1e-3, 1e-2, 5e-2}) {
    print_row("protected", severity, run_level(cfg, severity, true));
  }
  // The unprotected contrast at the harshest level.
  ftnoc::SimConfig naked = cfg;
  naked.total_messages = 6'000;
  naked.max_cycles = 200'000;
  print_row("unprotected", 5e-2, run_level(naked, 5e-2, false));

  std::printf("\nThe protected stack corrects every fault class in flight; "
              "the unprotected run delivers corrupt packets (or wedges).\n");
  return 0;
}

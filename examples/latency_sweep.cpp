// latency_sweep: the classic NoC characterization — average message
// latency vs offered load, printed as CSV (one row per injection rate),
// optionally for several configurations side by side.
//
//   ./latency_sweep [key=value ...]            # sweep the given config
//   ./latency_sweep compare=1 [key=value ...]  # DT vs AD vs escape
//
// Useful env-free knobs: sweep_from / sweep_to / sweep_step (flits/node/
// cycle) and threads=N ride on the regular override syntax.
//
// The points run batch-parallel through the SweepEngine (each worker owns
// its Simulator); rows still stream in sweep order. Per-label rows past
// the first saturated rate are suppressed, as before — they are computed
// (the pool does not know in advance) but add nothing to the curve.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"
#include "sweep/sweep.hpp"

namespace {

struct SweepArgs {
  double from = 0.05;
  double to = 0.45;
  double step = 0.05;
  bool compare = false;
  int threads = 0;  // 0 = hardware concurrency.
};

void add_points(std::vector<ftnoc::sweep::SweepPoint>& points,
                const char* label, const ftnoc::SimConfig& cfg,
                const SweepArgs& args) {
  for (double rate = args.from; rate <= args.to + 1e-9; rate += args.step) {
    ftnoc::sweep::SweepPoint pt;
    pt.label = label;
    pt.config = cfg;
    pt.config.injection_rate = rate;
    points.push_back(std::move(pt));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ftnoc::SimConfig cfg;
  cfg.warmup_messages = 2'000;
  cfg.total_messages = 10'000;
  cfg.max_cycles = 300'000;

  SweepArgs args;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("sweep_from=", 0) == 0) {
      args.from = std::stod(a.substr(11));
    } else if (a.rfind("sweep_to=", 0) == 0) {
      args.to = std::stod(a.substr(9));
    } else if (a.rfind("sweep_step=", 0) == 0) {
      args.step = std::stod(a.substr(11));
    } else if (a.rfind("threads=", 0) == 0) {
      args.threads = std::stoi(a.substr(8));
    } else if (a == "compare=1") {
      args.compare = true;
    } else {
      overrides.push_back(a);
    }
  }
  if (auto err = ftnoc::apply_overrides(cfg, overrides)) {
    std::fprintf(stderr, "config error: %s\n", err->c_str());
    return 1;
  }
  if (auto err = cfg.validate()) {
    std::fprintf(stderr, "invalid config: %s\n", err->c_str());
    return 1;
  }

  std::vector<ftnoc::sweep::SweepPoint> points;
  if (!args.compare) {
    add_points(points, to_string(cfg.routing), cfg, args);
  } else {
    ftnoc::SimConfig dt = cfg;
    dt.routing = ftnoc::RoutingAlgorithm::kXY;
    add_points(points, "dt-xy", dt, args);

    ftnoc::SimConfig ad = cfg;
    ad.routing = ftnoc::RoutingAlgorithm::kMinimalAdaptive;
    ad.deadlock.enable_recovery = true;
    add_points(points, "ad-recovery", ad, args);

    ftnoc::SimConfig esc = cfg;
    esc.routing = ftnoc::RoutingAlgorithm::kAdaptiveEscape;
    esc.num_vcs = std::max(esc.num_vcs, 2);
    add_points(points, "escape-vc", esc, args);
  }

  std::printf("config,inj_rate,avg_latency,p99_latency,"
              "throughput_mflits,energy_nj,tx_util,status\n");

  ftnoc::sweep::SweepOptions opts;
  opts.num_threads = args.threads;
  // The configs carry the seed (default or seed= override); keep it so the
  // curves match a sequential run of the same command exactly.
  opts.seed_policy = ftnoc::sweep::SeedPolicy::kUseConfigSeed;

  std::map<std::string, bool> saturated;
  ftnoc::sweep::SweepEngine(opts).run(
      points, [&](const ftnoc::sweep::PointResult& pr) {
        if (saturated[pr.label]) return;  // Past saturation; adds nothing.
        const ftnoc::SimResults& r = pr.results;
        std::printf("%s,%.3f,%.2f,%.2f,%.2f,%.4f,%.4f,%s\n",
                    pr.label.c_str(), pr.config.injection_rate,
                    r.avg_latency_cycles, r.p99_latency_cycles,
                    r.throughput_flits_node_cycle * 1000.0,
                    r.energy_per_message_nj, r.tx_buffer_utilization,
                    r.completed ? "ok" : "saturated");
        std::fflush(stdout);
        if (!r.completed) saturated[pr.label] = true;
      });
  return 0;
}

// deadlock_rescue: watch the probing protocol catch a real wormhole
// deadlock and the retransmission buffers break it (paper §3.2).
//
// Builds the canonical 2x2 single-VC scenario: four adaptive streams whose
// minimal paths close a cyclic channel dependency (E->S->W->N). The run
// first demonstrates the wedge with recovery disabled, then replays it
// with the probing detector + absorption recovery enabled, printing the
// protocol milestones as they happen.
//
//   ./deadlock_rescue            # summary
//   FTNOC_DBG=1 ./deadlock_rescue   # plus per-hop probe/activation trace

#include <cstdio>

#include "noc/simulator.hpp"

namespace {

ftnoc::SimConfig scenario(bool recovery) {
  ftnoc::SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.num_vcs = 1;
  cfg.vc_buffer_depth = 4;
  cfg.packet_length = 4;
  cfg.routing = ftnoc::RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 32;
  cfg.max_cycles = 20'000;
  cfg.deadlock.enable_recovery = recovery;
  cfg.deadlock.probe_threshold = 24;
  cfg.deadlock.probe_backoff = 16;
  return cfg;
}

void inject_streams(ftnoc::Network& net) {
  for (int i = 0; i < 8; ++i) {
    net.inject_packet(0, 3, 4);  // E then S
    net.inject_packet(1, 2, 4);  // S then W
    net.inject_packet(3, 0, 4);  // W then N
    net.inject_packet(2, 1, 4);  // N then E
  }
}

}  // namespace

int main() {
  std::printf("2x2 mesh, 1 VC, minimal-adaptive routing, four cyclic "
              "streams of 8 packets each\n\n");

  {
    ftnoc::Simulator sim(scenario(/*recovery=*/false));
    inject_streams(sim.network());
    const ftnoc::SimResults r = sim.run();
    std::printf("[recovery OFF] %llu/32 messages delivered in %llu cycles "
                "-> %s\n",
                static_cast<unsigned long long>(
                    sim.network().stats().messages_ejected()),
                static_cast<unsigned long long>(r.cycles),
                r.completed ? "completed (got lucky)" : "DEADLOCKED");
    if (!r.completed) {
      int blocked = 0;
      for (ftnoc::NodeId n = 0; n < 4; ++n) {
        if (sim.network().router(n).tx_buffer_occupancy() > 0) ++blocked;
      }
      std::printf("               %d/4 routers left holding stuck flits\n",
                  blocked);
    }
  }

  {
    ftnoc::Simulator sim(scenario(/*recovery=*/true));
    inject_streams(sim.network());
    ftnoc::Network& net = sim.network();
    net.stats().begin_measurement(0);  // Count protocol events from cycle 0.

    ftnoc::Cycle detected_at = 0;
    ftnoc::Cycle recovered_at = 0;
    while (net.stats().messages_ejected() <
               sim.config().total_messages &&
           net.now() < sim.config().max_cycles) {
      net.step();
      if (detected_at == 0 && net.stats().deadlocks_confirmed() > 0) {
        detected_at = net.now();
        std::printf("[recovery ON ] cycle %5llu: probe returned to its "
                    "origin -> deadlock CONFIRMED\n",
                    static_cast<unsigned long long>(detected_at));
      }
      if (recovered_at == 0 && detected_at != 0) {
        bool any = false;
        for (ftnoc::NodeId n = 0; n < 4; ++n) {
          any = any || net.router(n).in_recovery();
        }
        if (!any && net.stats().recoveries_entered() > 0) {
          recovered_at = net.now();
          std::printf("[recovery ON ] cycle %5llu: all routers back to "
                      "normal operation\n",
                      static_cast<unsigned long long>(recovered_at));
        }
      }
    }
    const auto& s = net.stats();
    std::printf("[recovery ON ] %llu/32 messages delivered in %llu cycles\n",
                static_cast<unsigned long long>(s.messages_ejected()),
                static_cast<unsigned long long>(net.now()));
    std::printf("               probes=%llu confirmed=%llu recoveries=%llu "
                "flits_absorbed=%llu\n",
                static_cast<unsigned long long>(s.probes_sent()),
                static_cast<unsigned long long>(s.deadlocks_confirmed()),
                static_cast<unsigned long long>(s.recoveries_entered()),
                static_cast<unsigned long long>(s.flits_absorbed()));
    std::printf("\nSet FTNOC_DBG=1 to trace every probe hop, Rule-2 "
                "forwarding decision and activation.\n");
    return s.messages_ejected() == sim.config().total_messages ? 0 : 2;
  }
}

// scheme_shootout: compare the link-protection schemes head to head on one
// configuration — the interactive companion to the Figure 5 bench.
//
// For each scheme (none / FEC / E2E / HBH) at the chosen error rate, the
// table shows what a designer actually trades off: latency, energy,
// retransmission traffic, and whether data survives intact.
//
//   ./scheme_shootout [key=value ...]
//   ./scheme_shootout link_error_rate=0.05 multi_bit_fraction=0.2

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"

int main(int argc, char** argv) {
  ftnoc::SimConfig cfg;
  cfg.injection_rate = 0.25;  // The paper's Figure 5 operating point.
  cfg.faults.link_error_rate = 0.01;
  cfg.warmup_messages = 2'000;
  cfg.total_messages = 12'000;
  cfg.max_cycles = 2'000'000;

  std::vector<std::string> overrides(argv + 1, argv + argc);
  if (auto err = ftnoc::apply_overrides(cfg, overrides)) {
    std::fprintf(stderr, "config error: %s\n", err->c_str());
    return 1;
  }
  if (auto err = cfg.validate()) {
    std::fprintf(stderr, "invalid config: %s\n", err->c_str());
    return 1;
  }

  std::printf("link-protection shootout: %dx%d mesh, inj=%.2f, "
              "error rate=%g (multi-bit fraction %g)\n\n",
              cfg.mesh_width, cfg.mesh_height, cfg.injection_rate,
              cfg.faults.link_error_rate, cfg.faults.multi_bit_fraction);
  std::printf("%-6s %10s %10s %9s %9s %10s %10s  %s\n", "scheme", "latency",
              "nJ/msg", "SEC_fix", "retx", "e2e_retx", "corrupted", "run");

  const ftnoc::LinkProtection schemes[] = {
      ftnoc::LinkProtection::kNone, ftnoc::LinkProtection::kFec,
      ftnoc::LinkProtection::kE2e, ftnoc::LinkProtection::kHbh};
  for (const auto scheme : schemes) {
    ftnoc::SimConfig c = cfg;
    c.protection = scheme;
    const ftnoc::SimResults r = ftnoc::run_simulation(c);
    std::printf("%-6s %10.2f %10.4f %9llu %9llu %10llu %10llu  %s\n",
                to_string(scheme), r.avg_latency_cycles,
                r.energy_per_message_nj,
                static_cast<unsigned long long>(r.link_single_corrected),
                static_cast<unsigned long long>(r.link_flits_retransmitted
                                                    ? r.link_flits_retransmitted
                                                    : r.link_retransmission_events),
                static_cast<unsigned long long>(r.e2e_retransmits),
                static_cast<unsigned long long>(r.corrupted_delivered),
                r.completed ? "ok" : "TIMED-OUT");
  }

  std::printf("\nHBH keeps latency and energy flat while delivering every "
              "message intact; FEC leaks corrupt packets; E2E pays "
              "round-trip retransmissions; 'none' is what the paper is "
              "arguing against.\n");
  return 0;
}

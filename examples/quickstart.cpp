// Quickstart: build a fault-tolerant 8x8 mesh NoC, inject uniform traffic
// with link errors, and print the headline metrics.
//
//   ./quickstart [key=value ...]
//
// e.g.  ./quickstart injection_rate=0.25 link_error_rate=0.001 pattern=bc

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"

int main(int argc, char** argv) {
  ftnoc::SimConfig cfg;
  // A laptop-friendly default run; override on the command line.
  cfg.injection_rate = 0.2;
  cfg.faults.link_error_rate = 0.001;
  cfg.protection = ftnoc::LinkProtection::kHbh;
  cfg.warmup_messages = 2'000;
  cfg.total_messages = 10'000;

  std::vector<std::string> overrides(argv + 1, argv + argc);
  if (auto err = ftnoc::apply_overrides(cfg, overrides)) {
    std::fprintf(stderr, "config error: %s\n", err->c_str());
    return 1;
  }
  if (auto err = cfg.validate()) {
    std::fprintf(stderr, "invalid config: %s\n", err->c_str());
    return 1;
  }

  std::printf("ftnoc quickstart: %dx%d mesh, %s routing, %s protection, "
              "inj=%.3f flits/node/cycle, link_err=%g\n",
              cfg.mesh_width, cfg.mesh_height, to_string(cfg.routing),
              to_string(cfg.protection), cfg.injection_rate,
              cfg.faults.link_error_rate);

  ftnoc::Simulator sim(cfg);
  const ftnoc::SimResults r = sim.run();

  std::printf("\n--- results (%llu measured messages, %llu cycles) ---\n",
              static_cast<unsigned long long>(r.measured_messages),
              static_cast<unsigned long long>(r.cycles));
  std::printf("avg message latency : %8.2f cycles\n", r.avg_latency_cycles);
  std::printf("avg incl. queueing  : %8.2f cycles\n",
              r.avg_total_latency_cycles);
  std::printf("p50 / p99 / max     : %8.2f / %.2f / %.2f cycles\n",
              r.p50_latency_cycles, r.p99_latency_cycles,
              r.max_latency_cycles);
  std::printf("throughput          : %8.4f flits/node/cycle\n",
              r.throughput_flits_node_cycle);
  std::printf("energy per message  : %8.4f nJ\n", r.energy_per_message_nj);
  std::printf("tx buffer util      : %8.4f\n", r.tx_buffer_utilization);
  std::printf("rtx buffer util     : %8.4f\n", r.rtx_buffer_utilization);
  std::printf("link errors fixed   : %8llu (SEC %llu + retransmit %llu)\n",
              static_cast<unsigned long long>(r.link_errors_corrected),
              static_cast<unsigned long long>(r.link_single_corrected),
              static_cast<unsigned long long>(r.link_retransmission_events));
  std::printf("corrupted delivered : %8llu\n",
              static_cast<unsigned long long>(r.corrupted_delivered));
  std::printf("\n--- energy composition (measurement window) ---\n%s",
              ftnoc::power::energy_report(sim.network().meter()).c_str());
  std::printf("\n%s\n", r.completed ? "run completed" : "run TIMED OUT");
  return r.completed ? 0 : 2;
}
// (Use scheme_shootout / fault_storm for comparisons, and the bench/
// binaries to regenerate the paper's tables and figures.)

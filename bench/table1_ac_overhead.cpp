// Table 1: power and area overhead of the Allocation Comparator unit,
// computed from the component-level area/power model (the synthesis
// substitute) for the paper's reference router: 5 PCs, 4 VCs per PC,
// 90 nm, 1 V, 500 MHz.
//
// Expected values (paper): generic router 119.55 mW / 0.374862 mm2;
// AC unit 2.02 mW (+1.69%) / 0.004474 mm2 (+1.19%).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "power/area_power_model.hpp"

namespace {

void table1_point(benchmark::State& state, int vcs) {
  ftnoc::power::RouterParams p;
  p.vcs = vcs;
  ftnoc::power::AcOverheadReport r{};
  for (auto _ : state) {
    r = ftnoc::power::ac_overhead(p);
    benchmark::DoNotOptimize(r);
  }
  state.counters["router_mW"] = r.router_power_mw;
  state.counters["router_mm2"] = r.router_area_mm2;
  state.counters["ac_mW"] = r.ac_power_mw;
  state.counters["ac_mm2"] = r.ac_area_mm2;
  state.counters["power_ovh_pct"] = r.power_overhead_pct;
  state.counters["area_ovh_pct"] = r.area_overhead_pct;
}

void register_all() {
  // The paper's Table 1 point (4 VCs/PC) plus neighbouring configurations
  // to show the overhead stays marginal.
  for (int vcs : {2, 3, 4, 6}) {
    const std::string name = "Table1/AcOverhead/vcs=" + std::to_string(vcs);
    benchmark::RegisterBenchmark(
        name.c_str(), [vcs](benchmark::State& st) { table1_point(st, vcs); })
        ->Iterations(1);
  }
}

const int registered = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();

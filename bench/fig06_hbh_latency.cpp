// Figure 6: average message latency vs link error rate for the proposed
// hybrid HBH retransmission scheme (SEC corrects single-bit upsets in
// place, multi-bit upsets are NACKed and replayed from the 3-deep barrel
// shifter) under the three destination distributions NR / BC / TN at
// injection rate 0.25 flits/node/cycle on the 8x8 mesh.
//
// Expected shape (paper): latency stays almost constant up to a 10% error
// rate for all three patterns; the curves are ordered by average hop count
// / load imbalance (BC highest, NR lowest).

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_pattern(benchmark::State& state, TrafficPattern pattern,
                 double error_rate) {
  SimConfig cfg = paper_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.pattern = pattern;
  cfg.faults.link_error_rate = error_rate;
  const SimResults r = run_point(state, cfg);
  state.counters["retx_events"] =
      static_cast<double>(r.link_retransmission_events);
  state.counters["sec_corrected"] =
      static_cast<double>(r.link_single_corrected);
}

void register_all() {
  struct Pattern {
    const char* name;
    TrafficPattern p;
  };
  const Pattern patterns[] = {{"NR", TrafficPattern::kUniformRandom},
                              {"BC", TrafficPattern::kBitComplement},
                              {"TN", TrafficPattern::kTornado}};
  for (const auto& pat : patterns) {
    for (const double rate : error_rates()) {
      const std::string name =
          std::string("Fig6/") + pat.name + "/err=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [p = pat.p, rate](benchmark::State& st) { run_pattern(st, p, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Figure 13(b): energy per packet vs error rate under the three
// independently-simulated error mechanisms (LINK-HBH, RT-Logic, SA-Logic).
//
// Expected shape (paper): all three curves are essentially flat; LINK-HBH
// sits slightly above the logic-error schemes at high error rates because
// a link retransmission repeats buffer/crossbar/link work, while a caught
// logic upset only costs one extra arbitration.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

enum class Mechanism { kLink, kRt, kSa };

void run_mechanism(benchmark::State& state, Mechanism m, double error_rate) {
  SimConfig cfg = paper_config();
  cfg.protection = LinkProtection::kHbh;
  switch (m) {
    case Mechanism::kLink:
      cfg.faults.link_error_rate = error_rate;
      break;
    case Mechanism::kRt:
      cfg.faults.rt_error_rate = error_rate;
      break;
    case Mechanism::kSa:
      cfg.faults.sa_error_rate = error_rate;
      break;
  }
  const SimResults r = run_point(state, cfg);
  state.counters["energy_total_uJ"] = r.total_energy_uj;
}

void register_all() {
  struct Series {
    const char* name;
    Mechanism m;
  };
  const Series series[] = {{"LINK-HBH", Mechanism::kLink},
                           {"RT-Logic", Mechanism::kRt},
                           {"SA-Logic", Mechanism::kSa}};
  const double rates[] = {1e-5, 1e-4, 1e-3, 1e-2};
  for (const auto& s : series) {
    for (const double rate : rates) {
      const std::string name =
          std::string("Fig13b/") + s.name + "/err=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [m = s.m, rate](benchmark::State& st) { run_mechanism(st, m, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Ablation: graceful degradation under permanent link faults.
//
// DESIGN.md §4.9: with k statically dead links, adaptive routing detours
// around the holes and the network keeps delivering every packet whose
// source and destination stay connected. Each point is one rung of the
// fault_degradation preset (k = 0..4 dead links on the paper's 8x8 mesh);
// the series to read is delivered_frac (messages_ejected /
// packets_created), which must be monotone non-increasing in k and stay at
// 1.0 while no source-destination pair is disconnected — degradation shows
// up as latency and reroute counts, not as loss.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

SweepCache& cache() {
  static SweepCache c = [] {
    SimConfig base = paper_config();
    return SweepCache(sweep::fault_degradation_points(base));
  }();
  return c;
}

void extra_counters(benchmark::State& state, const SimResults& r) {
  const double created = static_cast<double>(r.packets_created);
  state.counters["delivered_frac"] =
      created > 0.0 ? static_cast<double>(r.messages_ejected) / created : 1.0;
  state.counters["rerouted"] = static_cast<double>(r.packets_rerouted);
  state.counters["unreachable"] = static_cast<double>(r.unreachable_drops);
  state.counters["hard_reroutes"] = static_cast<double>(r.hard_fault_reroutes);
}

const int registered = (register_sweep(cache(), extra_counters), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

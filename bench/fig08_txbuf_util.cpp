// Figure 8: transmission-buffer (input VC FIFO) utilization vs injection
// rate for the adaptive (AD) and deterministic (DT) routing algorithms.
//
// Expected shape (paper): utilization climbs with offered load and levels
// off near saturation (~0.8+); AD sustains slightly higher utilization
// because it spreads load over both productive dimensions.
//
// Runs past the saturation point never eject the full message budget; the
// bench caps them by cycles and reports the utilization measured in steady
// state (completed=0 marks those points).

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_util(benchmark::State& state, RoutingAlgorithm algo,
              double injection_rate) {
  SimConfig cfg = paper_config();
  cfg.routing = algo;
  cfg.injection_rate = injection_rate;
  // Saturated runs can't reach the ejection target; bound them in time.
  cfg.max_cycles = env_u64("FTNOC_BENCH_MAX_CYCLES", 60'000);
  // Deep saturation with pure minimal-adaptive routing can deadlock (the
  // paper pairs AD with the recovery scheme).
  cfg.deadlock.enable_recovery = algo == RoutingAlgorithm::kMinimalAdaptive;
  // Early detection is protective under heavy load (see DESIGN.md 4.4):
  // an aggressive Cthres keeps the deep-saturation points drainable.
  cfg.deadlock.probe_threshold = 16;
  cfg.deadlock.probe_backoff = 9;
  const SimResults r = run_point(state, cfg);
  state.counters["tx_util"] = r.tx_buffer_utilization;
  state.counters["throughput"] = r.throughput_flits_node_cycle;
}

void register_all() {
  struct Algo {
    const char* name;
    RoutingAlgorithm a;
  };
  const Algo algos[] = {{"AD", RoutingAlgorithm::kMinimalAdaptive},
                        {"DT", RoutingAlgorithm::kXY}};
  for (const auto& algo : algos) {
    for (int i = 1; i <= 10; ++i) {
      const double rate = 0.1 * i;
      const std::string name = std::string("Fig8/") + algo.name +
                               "/inj=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [a = algo.a, rate](benchmark::State& st) { run_util(st, a, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Ablation: probe threshold (Cthres) sensitivity.
//
// The paper's claim (§3.2.2): because the probe verifies a suspected
// deadlock before any action is taken, Cthres "need not be precisely
// calculated; its effect on overall network performance will be minimal as
// long as the value chosen is not excessively high". This bench sweeps
// Cthres over two orders of magnitude under congested adaptive traffic and
// reports latency and probe/recovery activity: latency should stay nearly
// flat, with only probe counts changing.
//
// The grid lives in sweep/presets.hpp (shared with ftnoc_sweep) and runs
// batch-parallel through the SweepEngine.

#include "bench_common.hpp"
#include "sweep/presets.hpp"

namespace ftnoc::bench {
namespace {

SweepCache& cache() {
  static SweepCache c(sweep::abl_cthres_points(paper_config()));
  return c;
}

void extra_counters(benchmark::State& state, const SimResults& r) {
  state.counters["probes"] = static_cast<double>(r.probes_sent);
  state.counters["confirmed"] = static_cast<double>(r.deadlocks_confirmed);
  state.counters["recoveries"] = static_cast<double>(r.recoveries_entered);
}

const int registered = (register_sweep(cache(), extra_counters), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Ablation: probe threshold (Cthres) sensitivity.
//
// The paper's claim (§3.2.2): because the probe verifies a suspected
// deadlock before any action is taken, Cthres "need not be precisely
// calculated; its effect on overall network performance will be minimal as
// long as the value chosen is not excessively high". This bench sweeps
// Cthres over two orders of magnitude under congested adaptive traffic and
// reports latency and probe/recovery activity: latency should stay nearly
// flat, with only probe counts changing.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_cthres(benchmark::State& state, Cycle cthres) {
  SimConfig cfg = paper_config();
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.num_vcs = 2;             // Fewer VCs: more blocking pressure.
  cfg.injection_rate = 0.28;   // Congested, just below AD saturation.
  cfg.total_messages = std::min<std::uint64_t>(cfg.total_messages, 20'000);
  cfg.warmup_messages = std::min<std::uint64_t>(cfg.warmup_messages, 5'000);
  cfg.max_cycles = 200'000;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = cthres;
  cfg.deadlock.probe_backoff = cthres / 2 + 1;
  cfg.deadlock.probe_timeout = cthres * 2 + 64;
  const SimResults r = run_point(state, cfg);
  state.counters["probes"] = static_cast<double>(r.probes_sent);
  state.counters["confirmed"] = static_cast<double>(r.deadlocks_confirmed);
  state.counters["recoveries"] = static_cast<double>(r.recoveries_entered);
}

void register_all() {
  for (Cycle cthres : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const std::string name = "AblCthres/cthres=" + std::to_string(cthres);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [cthres](benchmark::State& st) { run_cthres(st, cthres); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

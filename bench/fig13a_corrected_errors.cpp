// Figure 13(a): number of errors corrected vs error rate for the three
// protection mechanisms, each simulated independently (paper §4.3):
//
//   LINK-HBH : link soft faults handled by SEC + HBH retransmission
//   RT-Logic : routing-unit logic upsets caught by the VA/receiving router
//   SA-Logic : switch-allocator upsets caught by the Allocation Comparator
//
// Expected shape (paper): counts scale linearly with the error rate;
// SA-Logic > LINK-HBH > RT-Logic, because the SA arbitrates every flit
// (often repeatedly, under contention), each flit traverses each link only
// once per hop, and the RT runs only on header flits.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

enum class Mechanism { kLink, kRt, kSa };

void run_mechanism(benchmark::State& state, Mechanism m, double error_rate) {
  SimConfig cfg = paper_config();
  cfg.protection = LinkProtection::kHbh;
  switch (m) {
    case Mechanism::kLink:
      cfg.faults.link_error_rate = error_rate;
      break;
    case Mechanism::kRt:
      cfg.faults.rt_error_rate = error_rate;
      break;
    case Mechanism::kSa:
      cfg.faults.sa_error_rate = error_rate;
      break;
  }
  const SimResults r = run_point(state, cfg);
  double corrected = 0.0;
  switch (m) {
    case Mechanism::kLink:
      corrected = static_cast<double>(r.link_errors_corrected);
      break;
    case Mechanism::kRt:
      corrected = static_cast<double>(r.rt_errors_recovered);
      break;
    case Mechanism::kSa:
      corrected = static_cast<double>(r.sa_errors_recovered);
      break;
  }
  state.counters["corrected"] = corrected;
  state.counters["corrupted"] = static_cast<double>(r.corrupted_delivered);
}

void register_all() {
  struct Series {
    const char* name;
    Mechanism m;
  };
  const Series series[] = {{"LINK-HBH", Mechanism::kLink},
                           {"RT-Logic", Mechanism::kRt},
                           {"SA-Logic", Mechanism::kSa}};
  // Paper sweeps 1e-5 .. 1e-2 for this experiment.
  const double rates[] = {1e-5, 1e-4, 1e-3, 1e-2};
  for (const auto& s : series) {
    for (const double rate : rates) {
      const std::string name =
          std::string("Fig13a/") + s.name + "/err=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [m = s.m, rate](benchmark::State& st) { run_mechanism(st, m, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

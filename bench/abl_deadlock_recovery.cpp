// Ablation: deadlock recovery via retransmission buffers (§3.2) exercised
// end-to-end on the canonical 2x2 single-VC cyclic scenario plus congested
// adaptive traffic, including the Eq. (1) buffer lower bound.
//
// Series:
//  * cycle2x2/recovery={on,off}: four streams forming a cyclic channel
//    dependency. Without recovery the run wedges (completed=0); with
//    recovery it drains (completed=1, time_to_drain reported).
//  * adaptive4x4: congested minimal-adaptive traffic with recovery on —
//    the sustained-operation view (probes/recoveries reported).
//  * eq1: the Eq. (1) bound computed for the paper's Figure 10/11
//    configurations.

#include "bench_common.hpp"
#include "core/deadlock.hpp"

namespace ftnoc::bench {
namespace {

SimConfig cycle_config(bool recovery) {
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.num_vcs = 1;
  cfg.vc_buffer_depth = 4;
  cfg.packet_length = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 32;
  cfg.max_cycles = 50'000;
  cfg.deadlock.enable_recovery = recovery;
  cfg.deadlock.probe_threshold = 24;
  cfg.deadlock.probe_backoff = 16;
  return cfg;
}

void run_cycle2x2(benchmark::State& state, bool recovery) {
  SimResults r;
  for (auto _ : state) {
    Simulator sim(cycle_config(recovery));
    Network& net = sim.network();
    for (int i = 0; i < 8; ++i) {
      net.inject_packet(0, 3, 4);
      net.inject_packet(1, 2, 4);
      net.inject_packet(3, 0, 4);
      net.inject_packet(2, 1, 4);
    }
    r = sim.run();
  }
  state.counters["completed"] = r.completed ? 1.0 : 0.0;
  state.counters["time_to_drain"] = static_cast<double>(r.cycles);
  state.counters["probes"] = static_cast<double>(r.probes_sent);
  state.counters["confirmed"] = static_cast<double>(r.deadlocks_confirmed);
  state.counters["absorbed"] = static_cast<double>(r.flits_absorbed);
}

void run_adaptive4x4(benchmark::State& state, bool escape) {
  // Recovery (the paper's proposal: every VC fully adaptive, deadlocks
  // broken through the retransmission buffers) vs avoidance (a reserved
  // deterministic escape VC — the [28]-style alternative the paper argues
  // against because it "limits adaptivity").
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.routing = escape ? RoutingAlgorithm::kAdaptiveEscape
                       : RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.4;
  cfg.warmup_messages = 1'000;
  cfg.total_messages = 8'000;
  cfg.max_cycles = 600'000;
  cfg.deadlock.enable_recovery = !escape;
  const SimResults r = run_point(state, cfg);
  state.counters["throughput"] = r.throughput_flits_node_cycle;
  state.counters["probes"] = static_cast<double>(r.probes_sent);
  state.counters["confirmed"] = static_cast<double>(r.deadlocks_confirmed);
  state.counters["recoveries"] = static_cast<double>(r.recoveries_entered);
}

void run_eq1(benchmark::State& state, int tx, int rtx, int nodes, int m) {
  bool ok = false;
  for (auto _ : state) {
    ok = recovery_buffer_bound_ok(std::vector<int>(nodes, tx),
                                  std::vector<int>(nodes, rtx), m);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["bound_holds"] = ok ? 1.0 : 0.0;
}

void register_all() {
  benchmark::RegisterBenchmark(
      "AblDeadlock/cycle2x2/recovery=off",
      [](benchmark::State& st) { run_cycle2x2(st, false); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "AblDeadlock/cycle2x2/recovery=on",
      [](benchmark::State& st) { run_cycle2x2(st, true); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "AblDeadlock/adaptive4x4/recovery",
      [](benchmark::State& st) { run_adaptive4x4(st, /*escape=*/false); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "AblDeadlock/adaptive4x4/escape_vc_baseline",
      [](benchmark::State& st) { run_adaptive4x4(st, /*escape=*/true); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "AblDeadlock/eq1/figure10",
      [](benchmark::State& st) { run_eq1(st, 4, 3, 3, 4); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "AblDeadlock/eq1/figure11",
      [](benchmark::State& st) { run_eq1(st, 6, 3, 4, 4); })
      ->Iterations(1);
  benchmark::RegisterBenchmark(
      "AblDeadlock/eq1/no_rtx_buffers",
      [](benchmark::State& st) { run_eq1(st, 4, 0, 3, 4); })
      ->Iterations(1);
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Figure 7: energy per message vs link error rate for the proposed HBH
// retransmission scheme under NR / BC / TN traffic at injection rate 0.25.
//
// Expected shape (paper): essentially flat across five decades of error
// rate — a retransmission only repeats a single-hop flit transfer, which
// is negligible against the full source-to-destination traversal energy.
// Series are ordered by average hop count (BC > TN > NR on the 8x8 mesh).

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_pattern(benchmark::State& state, TrafficPattern pattern,
                 double error_rate) {
  SimConfig cfg = paper_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.pattern = pattern;
  cfg.faults.link_error_rate = error_rate;
  const SimResults r = run_point(state, cfg);
  state.counters["energy_total_uJ"] = r.total_energy_uj;
  state.counters["retx_events"] =
      static_cast<double>(r.link_retransmission_events);
}

void register_all() {
  struct Pattern {
    const char* name;
    TrafficPattern p;
  };
  const Pattern patterns[] = {{"NR", TrafficPattern::kUniformRandom},
                              {"BC", TrafficPattern::kBitComplement},
                              {"TN", TrafficPattern::kTornado}};
  for (const auto& pat : patterns) {
    for (const double rate : error_rates()) {
      const std::string name =
          std::string("Fig7/") + pat.name + "/err=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [p = pat.p, rate](benchmark::State& st) { run_pattern(st, p, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

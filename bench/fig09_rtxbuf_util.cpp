// Figure 9: retransmission-buffer utilization vs injection rate for the
// adaptive (AD) and deterministic (DT) routing algorithms.
//
// Expected shape (paper): much lower than the transmission buffers
// (peaking below ~0.2): a retransmission-buffer slot is only occupied for
// the 3-cycle NACK window after each flit transmission, so its occupancy
// tracks *link throughput*, not blocking. It rises with offered load up to
// saturation and then flattens/declines as blocking throttles flit
// transmissions — the paper's motivation for reusing these mostly-idle
// buffers for deadlock recovery.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_util(benchmark::State& state, RoutingAlgorithm algo,
              double injection_rate) {
  SimConfig cfg = paper_config();
  cfg.routing = algo;
  cfg.injection_rate = injection_rate;
  cfg.max_cycles = env_u64("FTNOC_BENCH_MAX_CYCLES", 60'000);
  cfg.deadlock.enable_recovery = algo == RoutingAlgorithm::kMinimalAdaptive;
  // Early detection is protective under heavy load (see DESIGN.md 4.4):
  // an aggressive Cthres keeps the deep-saturation points drainable.
  cfg.deadlock.probe_threshold = 16;
  cfg.deadlock.probe_backoff = 9;
  const SimResults r = run_point(state, cfg);
  state.counters["rtx_util"] = r.rtx_buffer_utilization;
  state.counters["tx_util"] = r.tx_buffer_utilization;
}

void register_all() {
  struct Algo {
    const char* name;
    RoutingAlgorithm a;
  };
  const Algo algos[] = {{"AD", RoutingAlgorithm::kMinimalAdaptive},
                        {"DT", RoutingAlgorithm::kXY}};
  for (const auto& algo : algos) {
    for (int i = 1; i <= 10; ++i) {
      const double rate = 0.1 * i;
      const std::string name = std::string("Fig9/") + algo.name +
                               "/inj=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [a = algo.a, rate](benchmark::State& st) { run_util(st, a, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Ablation: router pipeline depth vs logic-error recovery cost (§4).
//
// Two views:
//  1. The analytical recovery-penalty table (logic_error_model) for every
//     component x pipeline depth — the paper's §4.1-4.3 numbers.
//  2. Whole-network simulations at each pipeline depth with RT+SA logic
//     faults injected, showing baseline latency (pipeline depth dominates)
//     and that the recovery overhead stays in the noise at realistic error
//     rates.

#include "bench_common.hpp"
#include "core/logic_error_model.hpp"

namespace ftnoc::bench {
namespace {

void penalty_table(benchmark::State& state, int stages) {
  int total = 0;
  for (auto _ : state) {
    total = va_recovery_penalty(stages) + sa_recovery_penalty(stages) +
            rt_recovery_penalty(stages, stages <= 2,
                                RtMisrouteKind::kBlockedOrInvalid) +
            rt_recovery_penalty(stages, stages <= 2,
                                RtMisrouteKind::kFunctionalDeterministic);
    benchmark::DoNotOptimize(total);
  }
  state.counters["va_penalty"] = va_recovery_penalty(stages);
  state.counters["sa_penalty"] = sa_recovery_penalty(stages);
  state.counters["rt_blocked_penalty"] = rt_recovery_penalty(
      stages, stages <= 2, RtMisrouteKind::kBlockedOrInvalid);
  state.counters["rt_functional_penalty"] = rt_recovery_penalty(
      stages, stages <= 2, RtMisrouteKind::kFunctionalDeterministic);
  state.counters["needs_neighbor_nack"] =
      ac_requires_neighbor_nack(stages) ? 1.0 : 0.0;
}

void sim_at_depth(benchmark::State& state, int stages, double err) {
  SimConfig cfg = paper_config();
  cfg.pipeline_stages = stages;
  cfg.retransmission_depth = 4;  // 4-stage routers need a deeper barrel.
  cfg.faults.rt_error_rate = err;
  cfg.faults.sa_error_rate = err;
  const SimResults r = run_point(state, cfg);
  state.counters["rt_recovered"] = static_cast<double>(r.rt_errors_recovered);
  state.counters["sa_recovered"] = static_cast<double>(r.sa_errors_recovered);
}

void register_all() {
  for (int stages : {1, 2, 3, 4}) {
    const std::string tname =
        "AblPipeline/penalties/stages=" + std::to_string(stages);
    benchmark::RegisterBenchmark(
        tname.c_str(),
        [stages](benchmark::State& st) { penalty_table(st, stages); })
        ->Iterations(1);
    for (double err : {0.0, 1e-3}) {
      const std::string sname = "AblPipeline/sim/stages=" +
                                std::to_string(stages) +
                                "/logic_err=" + rate_label(err);
      benchmark::RegisterBenchmark(
          sname.c_str(),
          [stages, err](benchmark::State& st) { sim_at_depth(st, stages, err); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

#pragma once
// Shared plumbing for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: every
// registered benchmark is one data point (one simulator run), and the
// paper's metric is exported through google-benchmark counters, so the
// printed table *is* the figure's series.
//
// Scale: the paper runs 300k ejected messages (100k warm-up) per point.
// The default here is 30k/10k so the full harness finishes in minutes on a
// laptop; the shapes are insensitive to this. Set FTNOC_BENCH_MESSAGES /
// FTNOC_BENCH_WARMUP to reproduce at full scale.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"
#include "sweep/presets.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// The paper's evaluation platform (§2.2): 8x8 mesh, 3-stage routers,
/// 5 PCs, 3 VCs/PC, 4-flit packets, uniform injection.
inline SimConfig paper_config() {
  SimConfig cfg;
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.num_vcs = 3;
  cfg.pipeline_stages = 3;
  cfg.packet_length = 4;
  cfg.injection_rate = 0.25;
  cfg.total_messages = env_u64("FTNOC_BENCH_MESSAGES", 30'000);
  cfg.warmup_messages = env_u64("FTNOC_BENCH_WARMUP", 10'000);
  cfg.max_cycles = env_u64("FTNOC_BENCH_MAX_CYCLES", 1'500'000);
  return cfg;
}

/// Exports the standard counter set every figure shares.
inline void export_counters(benchmark::State& state, const SimResults& r) {
  state.counters["latency_cyc"] = r.avg_latency_cycles;
  state.counters["energy_nJ"] = r.energy_per_message_nj;
  state.counters["messages"] = static_cast<double>(r.measured_messages);
  state.counters["completed"] = r.completed ? 1.0 : 0.0;
}

/// Runs one simulation inside the benchmark loop and exports the standard
/// counter set.
inline SimResults run_point(benchmark::State& state, const SimConfig& cfg) {
  SimResults r;
  for (auto _ : state) {
    r = run_simulation(cfg);
  }
  export_counters(state, r);
  return r;
}

/// The error-rate sweep used by Figures 5-7 and 13.
inline const std::vector<double>& error_rates() {
  return sweep::fig_error_rates();
}

inline std::string rate_label(double r) { return sweep::rate_label(r); }

/// Runs a whole grid through the parallel SweepEngine once (on first
/// access) and hands out per-point results. A bench ported onto the cache
/// registers one benchmark per point as before, but the points execute
/// concurrently on FTNOC_BENCH_THREADS workers (default: all cores); each
/// benchmark reports its point's wall-clock on its worker as manual time,
/// so the printed table is unchanged while the binary's wall-clock shrinks
/// to the longest chain on the pool.
class SweepCache {
 public:
  explicit SweepCache(std::vector<sweep::SweepPoint> points)
      : points_(std::move(points)) {}

  const std::vector<sweep::SweepPoint>& points() const { return points_; }

  const sweep::PointResult& result(std::size_t index) {
    ensure_ran();
    return results_.at(index);
  }

 private:
  void ensure_ran() {
    if (!results_.empty()) return;
    sweep::SweepOptions opts;
    opts.num_threads = static_cast<int>(env_u64("FTNOC_BENCH_THREADS", 0));
    // Bench grids pin their seeds in the configs; keep them so the series
    // match the historical sequential runs bit for bit.
    opts.seed_policy = sweep::SeedPolicy::kUseConfigSeed;
    results_ = sweep::SweepEngine(opts).run(points_);
  }

  std::vector<sweep::SweepPoint> points_;
  std::vector<sweep::PointResult> results_;
};

/// Registers one manual-time benchmark per cached point; `extra` lets each
/// figure add its own counters from the point's results.
inline void register_sweep(
    SweepCache& cache,
    void (*extra)(benchmark::State&, const SimResults&) = nullptr) {
  const auto& pts = cache.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    benchmark::RegisterBenchmark(
        pts[i].label.c_str(),
        [&cache, i, extra](benchmark::State& state) {
          const sweep::PointResult& pr = cache.result(i);
          for (auto _ : state) {
            state.SetIterationTime(pr.wall_ms / 1000.0);
          }
          export_counters(state, pr.results);
          if (extra != nullptr) extra(state, pr.results);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace ftnoc::bench

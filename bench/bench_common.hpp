#pragma once
// Shared plumbing for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: every
// registered benchmark is one data point (one simulator run), and the
// paper's metric is exported through google-benchmark counters, so the
// printed table *is* the figure's series.
//
// Scale: the paper runs 300k ejected messages (100k warm-up) per point.
// The default here is 30k/10k so the full harness finishes in minutes on a
// laptop; the shapes are insensitive to this. Set FTNOC_BENCH_MESSAGES /
// FTNOC_BENCH_WARMUP to reproduce at full scale.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "common/config.hpp"
#include "noc/simulator.hpp"

namespace ftnoc::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// The paper's evaluation platform (§2.2): 8x8 mesh, 3-stage routers,
/// 5 PCs, 3 VCs/PC, 4-flit packets, uniform injection.
inline SimConfig paper_config() {
  SimConfig cfg;
  cfg.mesh_width = 8;
  cfg.mesh_height = 8;
  cfg.num_vcs = 3;
  cfg.pipeline_stages = 3;
  cfg.packet_length = 4;
  cfg.injection_rate = 0.25;
  cfg.total_messages = env_u64("FTNOC_BENCH_MESSAGES", 30'000);
  cfg.warmup_messages = env_u64("FTNOC_BENCH_WARMUP", 10'000);
  cfg.max_cycles = env_u64("FTNOC_BENCH_MAX_CYCLES", 1'500'000);
  return cfg;
}

/// Runs one simulation inside the benchmark loop and exports the standard
/// counter set.
inline SimResults run_point(benchmark::State& state, const SimConfig& cfg) {
  SimResults r;
  for (auto _ : state) {
    r = run_simulation(cfg);
  }
  state.counters["latency_cyc"] = r.avg_latency_cycles;
  state.counters["energy_nJ"] = r.energy_per_message_nj;
  state.counters["messages"] = static_cast<double>(r.measured_messages);
  state.counters["completed"] = r.completed ? 1.0 : 0.0;
  return r;
}

/// The error-rate sweep used by Figures 5-7 and 13.
inline const std::vector<double>& error_rates() {
  static const std::vector<double> rates = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  return rates;
}

inline std::string rate_label(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", r);
  return buf;
}

}  // namespace ftnoc::bench

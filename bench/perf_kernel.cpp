// perf_kernel: microbenchmarks of the per-cycle simulation kernel.
//
// Unlike the fig*/table* benches (one simulator run per data point), these
// time the cycle loop itself: cycles/sec through Network::step() on the
// paper's platform, the idle-router fast path, and the SEC/DED codec that
// sits on every hop's receive path. Use before/after pairs of this binary
// to judge hot-path changes; the golden byte-identity tests pin that such
// changes stay behaviour-preserving.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ecc/hamming.hpp"
#include "noc/simulator.hpp"

namespace ftnoc::bench {
namespace {

// Steady-state cycle throughput: warm the network into its operating
// point once, then time raw Network::step() iterations.
void BM_CycleKernelBusy(benchmark::State& state) {
  SimConfig cfg = paper_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 1e-3;
  Simulator sim(cfg);
  Network& net = sim.network();
  for (int i = 0; i < 2'000; ++i) net.step();
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());  // items/sec == cycles/sec.
}
BENCHMARK(BM_CycleKernelBusy)->Unit(benchmark::kMicrosecond);

// The quiescent fast path: an idle network's cycle must cost almost
// nothing (work masks empty, wires silent — step() returns immediately).
void BM_CycleKernelIdle(benchmark::State& state) {
  SimConfig cfg = paper_config();
  cfg.injection_rate = 0.0;
  Simulator sim(cfg);
  Network& net = sim.network();
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleKernelIdle)->Unit(benchmark::kMicrosecond);

// SEC/DED codec: one encode + decode round trip (every hop's receive path
// under HBH/FEC runs the decode half).
void BM_HammingRoundTrip(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const ecc::Codeword cw = ecc::encode(x);
    const ecc::DecodeResult r = ecc::decode(cw);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HammingRoundTrip);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Figure 5: average message latency vs link error rate for the three link
// error-handling techniques (HBH retransmission, E2E retransmission,
// FEC-only) at injection rate 0.25 flits/node/cycle.
//
// Expected shape (paper): HBH stays essentially flat across the whole
// sweep; E2E latency explodes as the error rate grows (round trips +
// whole-packet retransmissions); FEC is flat but delivers silently corrupt
// packets at high error rates (it has no retransmission path) — the
// corrupted counter makes that visible.
//
// The grid itself lives in sweep/presets.hpp (shared with ftnoc_sweep) and
// runs batch-parallel through the SweepEngine; each printed row reports
// its point's wall-clock on its worker.

#include "bench_common.hpp"
#include "sweep/presets.hpp"

namespace ftnoc::bench {
namespace {

SweepCache& cache() {
  static SweepCache c(sweep::fig05_points(paper_config()));
  return c;
}

void extra_counters(benchmark::State& state, const SimResults& r) {
  state.counters["corrupted"] = static_cast<double>(r.corrupted_delivered);
  state.counters["retx_events"] =
      static_cast<double>(r.link_retransmission_events);
  state.counters["e2e_retx"] = static_cast<double>(r.e2e_retransmits);
}

const int registered = (register_sweep(cache(), extra_counters), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

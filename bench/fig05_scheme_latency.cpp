// Figure 5: average message latency vs link error rate for the three link
// error-handling techniques (HBH retransmission, E2E retransmission,
// FEC-only) at injection rate 0.25 flits/node/cycle.
//
// Expected shape (paper): HBH stays essentially flat across the whole
// sweep; E2E latency explodes as the error rate grows (round trips +
// whole-packet retransmissions); FEC is flat but delivers silently corrupt
// packets at high error rates (it has no retransmission path) — the
// corrupted counter makes that visible.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_scheme(benchmark::State& state, LinkProtection scheme,
                double error_rate) {
  SimConfig cfg = paper_config();
  cfg.protection = scheme;
  cfg.faults.link_error_rate = error_rate;
  // The Figure 5 comparison pits *pure* techniques against each other:
  // the retransmission schemes (HBH, E2E) resend on any detected error,
  // while FEC corrects what it can and silently passes the rest. The
  // paper's proposed hybrid (SEC + HBH retransmission of multi-bit upsets)
  // is what Figures 6/7 sweep.
  cfg.ecc_detect_only = scheme != LinkProtection::kFec;
  // E2E at high error rates saturates; cap the run so the sweep finishes.
  const SimResults r = run_point(state, cfg);
  state.counters["corrupted"] = static_cast<double>(r.corrupted_delivered);
  state.counters["retx_events"] =
      static_cast<double>(r.link_retransmission_events);
  state.counters["e2e_retx"] = static_cast<double>(r.e2e_retransmits);
}

void register_all() {
  struct Scheme {
    const char* name;
    LinkProtection p;
  };
  const Scheme schemes[] = {{"HBH", LinkProtection::kHbh},
                            {"E2E", LinkProtection::kE2e},
                            {"FEC", LinkProtection::kFec}};
  for (const auto& s : schemes) {
    for (const double rate : error_rates()) {
      const std::string name =
          std::string("Fig5/") + s.name + "/err=" + rate_label(rate);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [p = s.p, rate](benchmark::State& st) { run_scheme(st, p, rate); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

// Ablation: retransmission-buffer depth.
//
// The paper argues 3 slots per VC is the minimum: a flit must survive in
// the barrel shifter for link(1) + check(1) + NACK(1) cycles. This bench
// sweeps deeper buffers at a high error rate to show that extra depth buys
// nothing (latency and retransmission behaviour are unchanged) — i.e. the
// paper's minimal sizing is the right design point, and any additional
// area spent on the barrel would be wasted.

#include "bench_common.hpp"

namespace ftnoc::bench {
namespace {

void run_depth(benchmark::State& state, int depth) {
  SimConfig cfg = paper_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.retransmission_depth = depth;
  cfg.faults.link_error_rate = 0.05;  // Stress the retransmission path.
  const SimResults r = run_point(state, cfg);
  state.counters["retx_events"] =
      static_cast<double>(r.link_retransmission_events);
  state.counters["rtx_util"] = r.rtx_buffer_utilization;
}

void register_all() {
  for (int depth : {3, 4, 6, 8}) {
    const std::string name = "AblRtxDepth/depth=" + std::to_string(depth);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [depth](benchmark::State& st) { run_depth(st, depth); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace ftnoc::bench

BENCHMARK_MAIN();

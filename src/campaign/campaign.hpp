#pragma once
// Monte-Carlo reliability campaign engine.
//
// A campaign turns every sweep point into R independent replicas: the same
// config simulated under unrelated seeds
// Rng::derive_seed(campaign_seed, point * kReplicaStride + replica), so a
// replica's stream depends only on the campaign definition — never on the
// thread count, scheduling order, or whether it was replayed from a
// journal. Replicas are scheduled in waves across all still-active points
// through the SweepEngine worker pool (SweepEngine::for_each); after each
// wave the adaptive stop rule retires points whose latency CI half-width
// met its target, so cheap low-variance points stop at min_replicas while
// hard points keep their budget.
//
// Determinism guarantee: wave composition, stop decisions, journal-line
// order and aggregate emission order are all pure functions of
// (points, campaign_seed, StopRule) — a campaign's outputs are
// byte-identical for any thread count, and byte-identical again when
// resumed from any prefix of its own journal.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/estimators.hpp"
#include "campaign/journal.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc::campaign {

/// Seed-space stride between points: replica r of point p draws seed
/// derive_seed(campaign_seed, p * kReplicaStride + r). Bounds the replica
/// cap (enforced), and keeps every point's replica block disjoint.
inline constexpr std::uint64_t kReplicaStride = 1ull << 20;

struct CampaignOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  std::uint64_t campaign_seed = 1;
  StopRule stop;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignOptions opts = {});

  /// One finished journal line (no trailing newline), emitted in the
  /// deterministic campaign order: per wave, every replica record in
  /// (point, replica) order, then the aggregate record of every point the
  /// wave retired, in point order. Resuming callers count lines and skip
  /// the prefix already on disk.
  using LineCallback = std::function<void(const std::string&)>;

  /// Invoked in point order (0, 1, 2, ...) as soon as a prefix of the
  /// campaign's points has finished — the streaming aggregate output.
  using AggregateCallback = std::function<void(const PointAggregate&)>;

  /// Invoked after each wave for every point that gained replicas, with
  /// the point's cumulative aggregate and how many of the wave's replicas
  /// were fresh simulations (the rest were replayed from the journal).
  using ProgressCallback = std::function<void(const PointAggregate& agg,
                                              int fresh_in_wave)>;

  /// Runs the campaign and returns per-point aggregates in point order.
  /// `resume` (optional) supplies journaled replica results to replay
  /// instead of re-simulating. Each config must satisfy
  /// SimConfig::validate(); violations abort.
  std::vector<PointAggregate> run(
      const std::vector<sweep::SweepPoint>& points,
      const Journal* resume = nullptr,
      const LineCallback& on_journal_line = nullptr,
      const AggregateCallback& on_point = nullptr,
      const ProgressCallback& on_progress = nullptr);

  /// The pool size the engine resolved to.
  int num_threads() const { return engine_.num_threads(); }

 private:
  CampaignOptions opts_;
  sweep::SweepEngine engine_;
};

}  // namespace ftnoc::campaign

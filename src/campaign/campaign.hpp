#pragma once
// Monte-Carlo reliability campaign engine.
//
// A campaign turns every sweep point into R independent replicas: the same
// config simulated under unrelated seeds
// Rng::derive_seed(campaign_seed, point * kReplicaStride + replica), so a
// replica's stream depends only on the campaign definition — never on the
// thread count, scheduling order, or whether it was replayed from a
// journal. Replicas are scheduled in waves across all still-active points
// through the SweepEngine worker pool (SweepEngine::for_each); after each
// wave the adaptive stop rule retires points whose latency CI half-width
// met its target, so cheap low-variance points stop at min_replicas while
// hard points keep their budget.
//
// Determinism guarantee: wave composition, stop decisions, journal-line
// order and aggregate emission order are all pure functions of
// (points, campaign_seed, StopRule, ShardSpec) — a campaign's outputs are
// byte-identical for any thread count, and byte-identical again when
// resumed from any prefix of its own journal. A sharded campaign
// (ShardSpec::count > 1) runs the same wave schedule restricted to the
// pairs it owns, so the union of the shards' journals holds exactly the
// unsharded run's replica records — merge_journals() (merge.hpp) folds
// them back into the unsharded byte stream.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/estimators.hpp"
#include "campaign/journal.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc::campaign {

/// Seed-space stride between points under the legacy packing: replica r
/// of point p draws seed derive_seed(campaign_seed, p * kReplicaStride + r).
/// Bounds the replica cap (enforced by the packing gate), and keeps every
/// point's replica block disjoint — but only while both the point count
/// and the replica cap fit the 2^20 budget: p * 2^20 + r wraps mod 2^64
/// once p reaches 2^44, at which point distinct (point, replica) pairs
/// alias the same seed index (see SeedPacking::kWide).
inline constexpr std::uint64_t kReplicaStride = 1ull << 20;

/// How (point, replica) is packed into the derive_seed index space.
enum class SeedPacking : std::uint8_t {
  /// index = point * 2^20 + replica. The PR 2 scheme; kept bit-for-bit for
  /// every campaign that fits it, so existing journals resume and existing
  /// outputs stay byte-identical.
  kLegacy,
  /// seed = derive_seed(derive_seed(campaign_seed, point), replica): a
  /// two-level derivation whose index space is (2^64)^2 — no stride to
  /// outgrow, no wraparound, no cross-point aliasing at any grid size.
  kWide,
};

/// The packing a campaign of `num_points` points with replica cap
/// `max_replicas` uses: legacy exactly when both fit the 2^20 stride
/// budget (every campaign shipped before the wide packing existed did),
/// wide otherwise. A pure function of the campaign definition, so
/// shards, resumes and the merge tool always agree on it.
SeedPacking seed_packing(std::size_t num_points, int max_replicas);

/// The seed replica `replica` of point `point` simulates under.
std::uint64_t replica_seed(std::uint64_t campaign_seed, SeedPacking packing,
                           std::size_t point, int replica);

/// One shard of a distributed campaign (--shard=i/N): shard i of N owns
/// the (point, replica) pairs whose global replica index
/// point * max_replicas + replica is congruent to i mod N. Interleaved
/// ownership balances both axes (a shard never owns a whole expensive
/// point), and seeds derive from (campaign_seed, point, replica) alone,
/// so shards need no coordination — each simulates exactly its own pairs
/// and journals them in the campaign's deterministic order.
struct ShardSpec {
  int index = 0;
  int count = 1;

  bool sharded() const { return count > 1; }
};

/// True when `shard` owns (point, replica) under replica cap
/// `max_replicas`. Every pair is owned by exactly one shard index in
/// [0, count): the ownership classes partition the global index space.
bool shard_owns(const ShardSpec& shard, std::size_t point, int replica,
                int max_replicas);

struct CampaignOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Pin worker threads round-robin to CPUs (sweep::SweepOptions::pin_threads).
  bool pin_threads = false;
  std::uint64_t campaign_seed = 1;
  StopRule stop;
  /// Which slice of the (point, replica) space this process runs. The
  /// default {0, 1} is the whole campaign. Sharded campaigns (count > 1)
  /// must run in quota mode — a non-adaptive StopRule — because the
  /// wave-based CI stop decision needs every replica of a point, which no
  /// single shard has (DESIGN.md §4.13); run() aborts otherwise.
  ShardSpec shard;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignOptions opts = {});

  /// One finished journal line (no trailing newline), emitted in the
  /// deterministic campaign order: per wave, every replica record in
  /// (point, replica) order, then the aggregate record of every point the
  /// wave retired, in point order. Resuming callers count lines and skip
  /// the prefix already on disk.
  using LineCallback = std::function<void(const std::string&)>;

  /// Invoked in point order (0, 1, 2, ...) as soon as a prefix of the
  /// campaign's points has finished — the streaming aggregate output.
  using AggregateCallback = std::function<void(const PointAggregate&)>;

  /// Invoked after each wave for every point that gained replicas, with
  /// the point's cumulative aggregate and how many of the wave's replicas
  /// were fresh simulations (the rest were replayed from the journal).
  using ProgressCallback = std::function<void(const PointAggregate& agg,
                                              int fresh_in_wave)>;

  /// Runs the campaign and returns per-point aggregates in point order.
  /// `resume` (optional) supplies journaled replica results to replay
  /// instead of re-simulating. Each config must satisfy
  /// SimConfig::validate(); violations abort.
  std::vector<PointAggregate> run(
      const std::vector<sweep::SweepPoint>& points,
      const Journal* resume = nullptr,
      const LineCallback& on_journal_line = nullptr,
      const AggregateCallback& on_point = nullptr,
      const ProgressCallback& on_progress = nullptr);

  /// The pool size the engine resolved to.
  int num_threads() const { return engine_.num_threads(); }

 private:
  CampaignOptions opts_;
  sweep::SweepEngine engine_;
};

}  // namespace ftnoc::campaign

#pragma once
// Per-point statistical aggregation for Monte-Carlo reliability campaigns.
//
// A campaign runs R independent replicas (same config, unrelated seeds) of
// every sweep point. Each replica contributes one sample per continuous
// metric (its run mean) and its raw event counts per reliability metric;
// the point-level estimate is then a mean with a normal 95% CI over the
// replica samples, and a Wilson score interval over the pooled Bernoulli
// counts. Replica-level means are iid by construction (disjoint seed
// streams), which is what makes the plain CI valid.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/stats_util.hpp"
#include "noc/simulator.hpp"

namespace ftnoc::campaign {

/// Adaptive sequential stopping rule. Replicas are scheduled in waves of
/// `wave_size()`; after each wave a point stops early once the 95% CI
/// half-width of its mean latency satisfies *any* configured target
/// (absolute cycles, or relative to the mean), with `min_replicas` as the
/// earliest decision and `max_replicas` as the hard budget. With no
/// target configured (ci_abs == ci_rel == 0) every point runs exactly
/// `max_replicas` replicas.
struct StopRule {
  double ci_abs = 0.0;   ///< Half-width target in cycles (0 = off).
  double ci_rel = 0.0;   ///< Half-width / |mean| target (0 = off).
  int min_replicas = 4;  ///< Never judge a point on fewer replicas.
  int max_replicas = 16; ///< Hard per-point replica cap.
  int wave = 0;          ///< Replicas per scheduling wave (0 = min_replicas).

  bool adaptive() const { return ci_abs > 0.0 || ci_rel > 0.0; }
  int wave_size() const { return wave > 0 ? wave : min_replicas; }
};

/// Everything a campaign knows about one point. Built wave by wave: each
/// wave accumulates its replicas (in replica order) into a fresh aggregate
/// which is then folded into the point's cumulative one via merge()
/// (RunningStat::merge underneath) — the fold order is deterministic, so
/// aggregates are byte-identical for any thread count.
struct PointAggregate {
  std::size_t point = 0;
  std::string label;
  std::uint64_t config_hash = 0;

  int replicas = 0;
  int completed_replicas = 0;  ///< Replicas that ejected the full budget.
  bool stopped_early = false;  ///< Stop rule fired before max_replicas.

  // Continuous metrics: one sample per replica (the replica's run mean).
  RunningStat latency;      ///< avg_latency_cycles
  RunningStat p99_latency;  ///< p99_latency_cycles
  RunningStat energy;       ///< energy_per_message_nj
  RunningStat throughput;   ///< throughput_flits_node_cycle

  // Reliability counts, pooled across replicas (Bernoulli trials).
  std::uint64_t measured_messages = 0;
  std::uint64_t corrupted_delivered = 0;  ///< The FEC silent-corruption hazard.
  std::uint64_t packets_created = 0;
  std::uint64_t messages_ejected = 0;
  std::uint64_t recoveries_entered = 0;
  std::uint64_t recoveries_exited = 0;

  /// Folds one replica's results in (used on the wave-local aggregate).
  void add_replica(const SimResults& r);

  /// Folds a finished wave into this cumulative aggregate.
  void merge(const PointAggregate& wave);

  /// 95% CI half-width of the mean latency (+inf below 2 replicas).
  double latency_ci() const { return mean_ci_halfwidth(latency); }

  /// Silent-corruption probability per delivered message.
  RateInterval corruption() const {
    return wilson_interval(corrupted_delivered, measured_messages);
  }
  /// Packet-loss rate: packets created but never ejected (drained by an
  /// unrecovered upset, or still stuck when the run stopped). Ejections can
  /// transiently exceed creations (a replica stopped mid-E2E-retransmit
  /// double-delivers), so the difference is clamped at zero rather than
  /// wrapping the unsigned subtraction.
  RateInterval loss() const {
    const std::uint64_t lost = packets_created > messages_ejected
                                   ? packets_created - messages_ejected
                                   : 0;
    return wilson_interval(lost, packets_created);
  }
  /// Deadlock-recovery success: recovery episodes that drained and exited.
  RateInterval recovery_success() const {
    return wilson_interval(recoveries_exited, recoveries_entered);
  }
  /// Fraction of replicas that completed (ejected their full budget).
  RateInterval completion() const {
    return wilson_interval(static_cast<std::uint64_t>(completed_replicas),
                           static_cast<std::uint64_t>(replicas));
  }

  /// True once the rule's CI target is satisfied (never before
  /// min_replicas; always false for a non-adaptive rule).
  bool meets(const StopRule& rule) const;
};

/// Serializes a finished point as a single-line JSON aggregate record
/// (type="point"): identity, replica counts, mean/stddev/95% CI for the
/// continuous metrics, and Wilson intervals for the reliability rates.
/// Shared by the campaign output stream and the journal (which uses it as
/// the per-point replica-count record).
std::string aggregate_line(const PointAggregate& agg,
                           std::uint64_t campaign_seed);

}  // namespace ftnoc::campaign

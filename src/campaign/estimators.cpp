#include "campaign/estimators.hpp"

#include <cmath>

#include "sweep/jsonl.hpp"

namespace ftnoc::campaign {

void PointAggregate::add_replica(const SimResults& r) {
  ++replicas;
  if (r.completed) ++completed_replicas;

  latency.add(r.avg_latency_cycles);
  p99_latency.add(r.p99_latency_cycles);
  energy.add(r.energy_per_message_nj);
  throughput.add(r.throughput_flits_node_cycle);

  measured_messages += r.measured_messages;
  corrupted_delivered += r.corrupted_delivered;
  packets_created += r.packets_created;
  messages_ejected += r.messages_ejected;
  recoveries_entered += r.recoveries_entered;
  recoveries_exited += r.recoveries_exited;
}

void PointAggregate::merge(const PointAggregate& wave) {
  replicas += wave.replicas;
  completed_replicas += wave.completed_replicas;

  latency.merge(wave.latency);
  p99_latency.merge(wave.p99_latency);
  energy.merge(wave.energy);
  throughput.merge(wave.throughput);

  measured_messages += wave.measured_messages;
  corrupted_delivered += wave.corrupted_delivered;
  packets_created += wave.packets_created;
  messages_ejected += wave.messages_ejected;
  recoveries_entered += wave.recoveries_entered;
  recoveries_exited += wave.recoveries_exited;
}

bool PointAggregate::meets(const StopRule& rule) const {
  if (!rule.adaptive() || replicas < rule.min_replicas) return false;
  const double hw = latency_ci();  // +inf below 2 replicas: never met.
  if (rule.ci_abs > 0.0 && hw <= rule.ci_abs) return true;
  if (rule.ci_rel > 0.0 && hw <= rule.ci_rel * std::fabs(latency.mean())) {
    return true;
  }
  return false;
}

namespace {

void append_metric(sweep::JsonRecord& o, const char* name,
                   const RunningStat& s) {
  std::string key = name;
  const std::size_t base = key.size();
  key += "_mean";
  o.real(key.c_str(), s.mean());
  key.resize(base);
  key += "_stddev";
  o.real(key.c_str(), s.stddev());
  key.resize(base);
  key += "_ci95";
  // A 1-replica point has no CI; emit 0 rather than inf (not valid JSON).
  o.real(key.c_str(), s.count() < 2 ? 0.0 : mean_ci_halfwidth(s));
}

void append_rate(sweep::JsonRecord& o, const char* name,
                 std::uint64_t successes, std::uint64_t trials) {
  const RateInterval w = wilson_interval(successes, trials);
  std::string key = name;
  const std::size_t base = key.size();
  key += "_events";
  o.u64(key.c_str(), successes);
  key.resize(base);
  key += "_trials";
  o.u64(key.c_str(), trials);
  key.resize(base);
  key += "_rate";
  o.real(key.c_str(), w.rate);
  key.resize(base);
  key += "_lo";
  o.real(key.c_str(), w.low);
  key.resize(base);
  key += "_hi";
  o.real(key.c_str(), w.high);
}

}  // namespace

std::string aggregate_line(const PointAggregate& agg,
                           std::uint64_t campaign_seed) {
  sweep::JsonRecord o;
  o.str("type", "point");
  o.u64("point", agg.point);
  o.str("label", agg.label);
  o.u64("campaign_seed", campaign_seed);
  o.u64("config_hash", agg.config_hash);
  o.u64("replicas", static_cast<std::uint64_t>(agg.replicas));
  o.boolean("stopped_early", agg.stopped_early);
  o.u64("completed_replicas",
        static_cast<std::uint64_t>(agg.completed_replicas));

  append_metric(o, "latency", agg.latency);
  append_metric(o, "p99_latency", agg.p99_latency);
  append_metric(o, "energy", agg.energy);
  append_metric(o, "throughput", agg.throughput);

  append_rate(o, "corrupt", agg.corrupted_delivered, agg.measured_messages);
  // Same zero-clamp as PointAggregate::loss(): ejections can transiently
  // exceed creations when a replica stops mid-E2E-retransmit.
  append_rate(o, "loss",
              agg.packets_created > agg.messages_ejected
                  ? agg.packets_created - agg.messages_ejected
                  : 0,
              agg.packets_created);
  append_rate(o, "recovery", agg.recoveries_exited, agg.recoveries_entered);
  append_rate(o, "replica_completed",
              static_cast<std::uint64_t>(agg.completed_replicas),
              static_cast<std::uint64_t>(agg.replicas));
  return o.close();
}

}  // namespace ftnoc::campaign

#pragma once
// Deterministic merge of sharded campaign journals (DESIGN.md §4.13).
//
// A campaign sharded with --shard=i/N writes one journal per shard
// holding exactly the replica records that shard owns. merge_journals()
// validates the shard set against the campaign definition — config_hash
// agreement per point, no (point, replica) owned twice, no pair missing —
// and then replays the combined journal through the CampaignEngine with
// the whole-campaign shard {0, 1}. Because the engine re-derives the
// unsharded wave schedule and finds every replica already journaled, the
// replay simulates nothing and re-emits the exact line sequence (replica
// records in wave order, aggregate records at retirement, PointAggregate
// folds in wave order) an unsharded run would have written: the merged
// journal and aggregate JSONL are byte-identical to the unsharded run's.
//
// Sharded campaigns must run in quota mode (a non-adaptive StopRule): the
// wave-based CI stop decision reads a point's full replica set, which no
// single shard has, so under sharding every point runs exactly
// max_replicas replicas and the schedule is static. merge_journals()
// refuses adaptive rules for the same reason.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace ftnoc::campaign {

/// Merge statistics for caller diagnostics.
struct MergeStats {
  std::size_t shard_journals = 0;  ///< Journals read.
  std::size_t replicas = 0;        ///< Replica records merged.
};

/// Validates `shard_paths` (each a journal written by a --shard=i/N run
/// of the campaign defined by `points` + `opts`) and streams the merged
/// unsharded journal lines / point aggregates through the callbacks.
/// Returns an error description — and emits nothing — if the shard set
/// does not reassemble the campaign:
///   - `opts.stop` is adaptive (sharded campaigns run in quota mode);
///   - a journal is missing, unreadable, or fails Journal::load
///     validation (foreign campaign seed, mismatched config_hash);
///   - two journals both hold some (point, replica) — overlapping shards
///     (e.g. the same shard index merged twice);
///   - some (point, replica) is in no journal — a missing shard or a
///     shard that crashed before finishing (torn tails are truncated to
///     the valid prefix on load, so a crashed shard surfaces as a gap).
/// On success returns std::nullopt after all callbacks have fired.
std::optional<std::string> merge_journals(
    const std::vector<sweep::SweepPoint>& points, const CampaignOptions& opts,
    const std::vector<std::string>& shard_paths,
    const CampaignEngine::LineCallback& on_journal_line,
    const CampaignEngine::AggregateCallback& on_point,
    MergeStats* stats = nullptr);

}  // namespace ftnoc::campaign

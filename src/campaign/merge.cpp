#include "campaign/merge.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace ftnoc::campaign {

std::optional<std::string> merge_journals(
    const std::vector<sweep::SweepPoint>& points, const CampaignOptions& opts,
    const std::vector<std::string>& shard_paths,
    const CampaignEngine::LineCallback& on_journal_line,
    const CampaignEngine::AggregateCallback& on_point, MergeStats* stats) {
  if (opts.stop.adaptive()) {
    return "sharded campaigns run in quota mode; an adaptive stop rule "
           "(--ci-abs/--ci-rel) cannot be merged";
  }
  if (shard_paths.empty()) {
    return "no shard journals given";
  }

  std::vector<std::uint64_t> hashes;
  hashes.reserve(points.size());
  for (const auto& pt : points) {
    hashes.push_back(config_hash(pt.config));
  }

  // Load every shard journal and fold it into one combined journal,
  // flagging the first (point, replica) two shards both claim.
  Journal combined;
  for (const auto& path : shard_paths) {
    const Journal shard =
        Journal::load(path, opts.campaign_seed, hashes);
    if (!shard.file_existed()) {
      return "shard journal " + path + ": no such file";
    }
    if (!shard.mismatch().empty()) {
      return "shard journal " + path + ": " + shard.mismatch();
    }
    for (const auto& [key, results] : shard.entries()) {
      if (!combined.insert(key.first, key.second, results)) {
        return "shard journal " + path +
               " overlaps an earlier shard: point " +
               std::to_string(key.first) + " replica " +
               std::to_string(key.second) +
               " is journaled twice (same --shard index merged twice?)";
      }
    }
  }

  // Coverage: the shards must reassemble the full quota-mode replica
  // space — every (point, replica) in [0, points) x [0, max_replicas)
  // exactly once. A gap means a shard journal is missing, was run with a
  // different --shard=i/N split, or crashed before finishing (its torn
  // tail truncates to a valid prefix, leaving its later pairs unwritten).
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int r = 0; r < opts.stop.max_replicas; ++r) {
      if (combined.find(p, r) == nullptr) {
        return "shard journals are incomplete: point " + std::to_string(p) +
               " replica " + std::to_string(r) +
               " is in no journal (missing shard, or a different "
               "--shard split?)";
      }
    }
  }

  if (stats != nullptr) {
    stats->shard_journals = shard_paths.size();
    stats->replicas = combined.entries().size();
  }

  // Replay the combined journal through the unsharded schedule. Every
  // replica is journaled, so nothing simulates and the emitted line
  // sequence is byte-identical to the unsharded run's.
  CampaignOptions replay = opts;
  replay.num_threads = 1;  // Pure replay; a pool would only add overhead.
  replay.shard = ShardSpec{};
  CampaignEngine engine(replay);
  int fresh_replicas = 0;
  engine.run(points, &combined, on_journal_line, on_point,
             [&](const PointAggregate&, int fresh) {
               fresh_replicas += fresh;
             });
  FTNOC_CHECK(fresh_replicas == 0);  // Coverage was verified above.
  return std::nullopt;
}

}  // namespace ftnoc::campaign

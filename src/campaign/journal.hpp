#pragma once
// Crash-resumable campaign journal.
//
// Every completed replica is appended to a JSONL journal as one flushed
// line keyed by (campaign_seed, point, replica, config_hash); when a point
// finishes, its aggregate record (with the replica count the stop rule
// settled on) is appended too. Because the engine emits journal lines in a
// deterministic order, a journal written by an interrupted run is exactly
// a prefix of the uninterrupted journal — so resuming is: load the valid
// prefix, replay its replica results instead of re-simulating them, and
// append only the lines past the prefix. A torn final line (the crash
// landed mid-write) is truncated away before appending.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"

namespace ftnoc::campaign {

/// Stable fingerprint of the config that defines a point (seed excluded —
/// replicas of one point differ only in seed). FNV-1a over the canonical
/// JSONL config serialization, so it changes exactly when a knob that is
/// part of the point's identity changes.
std::uint64_t config_hash(const SimConfig& cfg);

/// One replica journal line (type="replica"): the key fields followed by
/// every SimResults metric, %.17g doubles — parsing them back is
/// bit-exact, which is what makes resumed aggregates byte-identical.
std::string replica_line(std::uint64_t campaign_seed, std::size_t point,
                         int replica, std::uint64_t cfg_hash,
                         std::uint64_t seed, const SimResults& r);

/// A journal parsed for resumption.
class Journal {
 public:
  /// Reads `path` and validates lines in order against this campaign's
  /// identity: a replica line must match `campaign_seed` and its point's
  /// entry in `point_hashes`; a point line must match `campaign_seed`.
  /// The valid prefix ends at the first malformed or mismatched line (or
  /// a torn final line); everything after it is ignored and should be
  /// truncated before appending. A missing file yields an empty journal.
  static Journal load(const std::string& path, std::uint64_t campaign_seed,
                      const std::vector<std::uint64_t>& point_hashes);

  /// The journaled results for (point, replica), or nullptr.
  const SimResults* find(std::size_t point, int replica) const {
    const auto it = replicas_.find({point, replica});
    return it == replicas_.end() ? nullptr : &it->second;
  }

  /// Every journaled replica, keyed by (point, replica) in ascending
  /// order. The merge tool walks this to validate shard coverage.
  const std::map<std::pair<std::size_t, int>, SimResults>& entries() const {
    return replicas_;
  }

  /// Adds one replica record (the merge tool builds the combined journal
  /// this way). Returns false — and leaves the journal unchanged — if
  /// (point, replica) is already present: an overlap between shards.
  bool insert(std::size_t point, int replica, const SimResults& r) {
    return replicas_.emplace(std::make_pair(point, replica), r).second;
  }

  bool file_existed() const { return existed_; }
  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t valid_lines() const { return valid_lines_; }
  std::size_t valid_bytes() const { return valid_bytes_; }
  /// Non-empty if the file held lines that do not belong to this campaign
  /// (wrong seed or config hash) — resuming would silently discard them,
  /// so callers should refuse instead.
  const std::string& mismatch() const { return mismatch_; }

 private:
  std::map<std::pair<std::size_t, int>, SimResults> replicas_;
  bool existed_ = false;
  std::size_t valid_lines_ = 0;
  std::size_t valid_bytes_ = 0;
  std::string mismatch_;
};

}  // namespace ftnoc::campaign

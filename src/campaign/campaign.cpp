#include "campaign/campaign.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ftnoc::campaign {

SeedPacking seed_packing(std::size_t num_points, int max_replicas) {
  const bool fits =
      num_points <= kReplicaStride &&
      static_cast<std::uint64_t>(max_replicas) <= kReplicaStride;
  return fits ? SeedPacking::kLegacy : SeedPacking::kWide;
}

std::uint64_t replica_seed(std::uint64_t campaign_seed, SeedPacking packing,
                           std::size_t point, int replica) {
  const auto p = static_cast<std::uint64_t>(point);
  const auto r = static_cast<std::uint64_t>(replica);
  if (packing == SeedPacking::kLegacy) {
    return Rng::derive_seed(campaign_seed, p * kReplicaStride + r);
  }
  return Rng::derive_seed(Rng::derive_seed(campaign_seed, p), r);
}

bool shard_owns(const ShardSpec& shard, std::size_t point, int replica,
                int max_replicas) {
  FTNOC_CHECK(shard.count >= 1 && shard.index >= 0 &&
              shard.index < shard.count);
  const std::uint64_t global =
      static_cast<std::uint64_t>(point) *
          static_cast<std::uint64_t>(max_replicas) +
      static_cast<std::uint64_t>(replica);
  return global % static_cast<std::uint64_t>(shard.count) ==
         static_cast<std::uint64_t>(shard.index);
}

CampaignEngine::CampaignEngine(CampaignOptions opts)
    : opts_(opts),
      engine_(sweep::SweepOptions{opts.num_threads, /*base_seed=*/0,
                                  sweep::SeedPolicy::kUseConfigSeed,
                                  opts.pin_threads}) {
  FTNOC_CHECK(opts_.stop.max_replicas >= 1);
  FTNOC_CHECK(opts_.stop.min_replicas >= 1);
  FTNOC_CHECK(opts_.shard.count >= 1);
  FTNOC_CHECK(opts_.shard.index >= 0 && opts_.shard.index < opts_.shard.count);
  // Sharded campaigns run in quota mode: a CI-based stop decision needs
  // every replica of a point, which no single shard has. The CLI rejects
  // the combination with a diagnostic before this check can fire.
  FTNOC_CHECK(!opts_.shard.sharded() || !opts_.stop.adaptive());
}

std::vector<PointAggregate> CampaignEngine::run(
    const std::vector<sweep::SweepPoint>& points, const Journal* resume,
    const LineCallback& on_journal_line, const AggregateCallback& on_point,
    const ProgressCallback& on_progress) {
  const std::size_t total = points.size();
  const StopRule& stop = opts_.stop;
  const ShardSpec& shard = opts_.shard;
  const SeedPacking packing = seed_packing(total, stop.max_replicas);

  std::vector<PointAggregate> aggs(total);
  std::vector<char> finished(total, 0);
  // Replicas scheduled so far per point (the wave cursor). Distinct from
  // aggs[p].replicas: a shard schedules every wave position but only
  // simulates (and folds) the pairs it owns, so the cursor — not the
  // owned-replica count — is what the stop rule's cap reads.
  std::vector<int> scheduled(total, 0);
  for (std::size_t p = 0; p < total; ++p) {
    FTNOC_CHECK(!points[p].config.validate().has_value());
    aggs[p].point = p;
    aggs[p].label = points[p].label;
    aggs[p].config_hash = config_hash(points[p].config);
  }

  // One scheduled (point, replica) pair. `journaled` points into the
  // resume journal for replayed replicas; `fresh` holds simulated results.
  struct Task {
    std::size_t point = 0;
    int replica = 0;
    const SimResults* journaled = nullptr;
    SimResults fresh;
  };

  std::size_t emitted = 0;  // In-order aggregate emission cursor.
  std::size_t active = total;
  while (active > 0) {
    // Schedule one wave: the next wave_size() replicas of every active
    // point, in (point, replica) order. All active points have run the
    // same number of waves, so wave composition is deterministic.
    std::vector<Task> tasks;
    for (std::size_t p = 0; p < total; ++p) {
      if (finished[p]) continue;
      const int from = scheduled[p];
      const int to = std::min(from + stop.wave_size(), stop.max_replicas);
      for (int r = from; r < to; ++r) {
        if (!shard_owns(shard, p, r, stop.max_replicas)) continue;
        Task t;
        t.point = p;
        t.replica = r;
        if (resume != nullptr) t.journaled = resume->find(p, r);
        tasks.push_back(t);
      }
      scheduled[p] = to;
    }

    // Simulate the replicas the journal does not already hold, on the
    // shared pool. Task slots are disjoint; no locking needed.
    std::vector<std::size_t> to_run;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].journaled == nullptr) to_run.push_back(i);
    }
    engine_.for_each(to_run.size(), [&](std::size_t i) {
      Task& t = tasks[to_run[i]];
      SimConfig cfg = points[t.point].config;
      cfg.seed =
          replica_seed(opts_.campaign_seed, packing, t.point, t.replica);
      t.fresh = run_simulation(cfg);
    });

    // Fold the wave in deterministic task order: wave-local aggregates
    // first (RunningStat::add per replica), then one merge per point.
    std::vector<PointAggregate> wave(total);
    std::vector<int> fresh_count(total, 0);
    for (const Task& t : tasks) {
      const SimResults& r =
          t.journaled != nullptr ? *t.journaled : t.fresh;
      wave[t.point].add_replica(r);
      if (t.journaled == nullptr) ++fresh_count[t.point];
      if (on_journal_line) {
        const std::uint64_t seed =
            replica_seed(opts_.campaign_seed, packing, t.point, t.replica);
        on_journal_line(replica_line(opts_.campaign_seed, t.point, t.replica,
                                     aggs[t.point].config_hash, seed, r));
      }
    }
    for (std::size_t p = 0; p < total; ++p) {
      if (finished[p] || wave[p].replicas == 0) continue;
      aggs[p].merge(wave[p]);
      if (on_progress) on_progress(aggs[p], fresh_count[p]);
    }

    // Retire points: CI target met (early) or replica cap reached. The
    // cap reads the wave cursor, not the owned-replica count — on a shard
    // the two differ, but every unsharded campaign keeps them equal.
    for (std::size_t p = 0; p < total; ++p) {
      if (finished[p]) continue;
      const bool met = aggs[p].meets(stop);
      const bool capped = scheduled[p] >= stop.max_replicas;
      if (!met && !capped) continue;
      aggs[p].stopped_early = met && !capped;
      finished[p] = 1;
      --active;
      if (on_journal_line) {
        on_journal_line(aggregate_line(aggs[p], opts_.campaign_seed));
      }
    }

    // Stream finished aggregates in point order.
    if (on_point) {
      while (emitted < total && finished[emitted]) {
        on_point(aggs[emitted]);
        ++emitted;
      }
    }
  }
  return aggs;
}

}  // namespace ftnoc::campaign

#include "campaign/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sweep/jsonl.hpp"

namespace ftnoc::campaign {
namespace {

// --- Flat-JSON field extraction -----------------------------------------
// The journal is written by JsonRecord (flat, fixed key order, no nesting,
// %.17g doubles), so a positional key scan is a faithful parser for it.
// Each getter fails (returns false) on a missing key, which ends the
// journal's valid prefix.

const char* find_value(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + needle.size();
}

bool get_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const char* v = find_value(line, key);
  if (v == nullptr || !(*v >= '0' && *v <= '9')) return false;
  out = std::strtoull(v, nullptr, 10);
  return true;
}

bool get_real(const std::string& line, const char* key, double& out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  char* end = nullptr;
  out = std::strtod(v, &end);
  return end != v;
}

bool get_bool(const std::string& line, const char* key, bool& out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  if (std::strncmp(v, "true", 4) == 0) {
    out = true;
    return true;
  }
  if (std::strncmp(v, "false", 5) == 0) {
    out = false;
    return true;
  }
  return false;
}

bool get_type(const std::string& line, std::string& out) {
  const char* v = find_value(line, "type");
  if (v == nullptr || *v != '"') return false;
  const char* end = std::strchr(v + 1, '"');
  if (end == nullptr) return false;
  out.assign(v + 1, end);
  return true;
}

/// Parses every SimResults field of a replica line (the mirror of
/// sweep::append_result_fields). Any missing field fails the line.
bool parse_results(const std::string& line, SimResults& r) {
  bool ok = true;
  ok = ok && get_bool(line, "completed", r.completed);
  ok = ok && get_u64(line, "cycles", r.cycles);
  ok = ok && get_real(line, "avg_latency_cycles", r.avg_latency_cycles);
  ok = ok &&
       get_real(line, "avg_total_latency_cycles", r.avg_total_latency_cycles);
  ok = ok && get_real(line, "p50_latency_cycles", r.p50_latency_cycles);
  ok = ok && get_real(line, "p99_latency_cycles", r.p99_latency_cycles);
  ok = ok && get_real(line, "max_latency_cycles", r.max_latency_cycles);
  ok = ok && get_u64(line, "measured_messages", r.measured_messages);
  ok = ok && get_real(line, "throughput_flits_node_cycle",
                      r.throughput_flits_node_cycle);
  ok = ok && get_u64(line, "packets_created", r.packets_created);
  ok = ok && get_u64(line, "messages_ejected", r.messages_ejected);
  ok = ok && get_real(line, "energy_per_message_nj", r.energy_per_message_nj);
  ok = ok && get_real(line, "total_energy_uj", r.total_energy_uj);
  ok = ok && get_real(line, "tx_buffer_utilization", r.tx_buffer_utilization);
  ok = ok &&
       get_real(line, "rtx_buffer_utilization", r.rtx_buffer_utilization);
  ok = ok && get_u64(line, "link_errors_corrected", r.link_errors_corrected);
  ok = ok && get_u64(line, "link_single_corrected", r.link_single_corrected);
  ok = ok && get_u64(line, "link_retransmission_events",
                     r.link_retransmission_events);
  ok = ok &&
       get_u64(line, "link_flits_retransmitted", r.link_flits_retransmitted);
  ok = ok && get_u64(line, "flits_dropped", r.flits_dropped);
  ok = ok && get_u64(line, "nacks_sent", r.nacks_sent);
  ok = ok && get_u64(line, "rt_errors_recovered", r.rt_errors_recovered);
  ok = ok && get_u64(line, "va_errors_recovered", r.va_errors_recovered);
  ok = ok && get_u64(line, "sa_errors_recovered", r.sa_errors_recovered);
  ok = ok && get_u64(line, "unprotected_errors", r.unprotected_errors);
  ok = ok && get_u64(line, "corrupted_delivered", r.corrupted_delivered);
  ok = ok && get_u64(line, "e2e_retransmits", r.e2e_retransmits);
  ok = ok && get_u64(line, "rtx_errors_corrected", r.rtx_errors_corrected);
  ok = ok && get_u64(line, "handshake_errors_corrected",
                     r.handshake_errors_corrected);
  ok = ok && get_u64(line, "hard_fault_reroutes", r.hard_fault_reroutes);
  ok = ok && get_u64(line, "probes_sent", r.probes_sent);
  ok = ok && get_u64(line, "probes_discarded", r.probes_discarded);
  ok = ok && get_u64(line, "deadlocks_confirmed", r.deadlocks_confirmed);
  ok = ok && get_u64(line, "recoveries_entered", r.recoveries_entered);
  ok = ok && get_u64(line, "recoveries_exited", r.recoveries_exited);
  ok = ok && get_u64(line, "fallback_recoveries", r.fallback_recoveries);
  ok = ok && get_u64(line, "flits_absorbed", r.flits_absorbed);
  return ok;
}

}  // namespace

std::uint64_t config_hash(const SimConfig& cfg) {
  SimConfig canonical = cfg;
  canonical.seed = 0;  // Replicas of one point differ only in seed.
  sweep::JsonRecord rec;
  sweep::append_config_fields(rec, canonical);
  const std::string s = rec.close();

  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64.
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string replica_line(std::uint64_t campaign_seed, std::size_t point,
                         int replica, std::uint64_t cfg_hash,
                         std::uint64_t seed, const SimResults& r) {
  sweep::JsonRecord o;
  o.str("type", "replica");
  o.u64("campaign_seed", campaign_seed);
  o.u64("point", point);
  o.u64("replica", static_cast<std::uint64_t>(replica));
  o.u64("config_hash", cfg_hash);
  o.u64("seed", seed);
  sweep::append_result_fields(o, r);
  return o.close();
}

Journal Journal::load(const std::string& path, std::uint64_t campaign_seed,
                      const std::vector<std::uint64_t>& point_hashes) {
  Journal j;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return j;
  j.existed_ = true;

  std::string line;
  char buf[4096];
  std::size_t offset = 0;  // Byte offset of the start of `line`.
  bool stop = false;
  while (!stop && std::fgets(buf, sizeof(buf), f) != nullptr) {
    line += buf;
    if (line.empty() || line.back() != '\n') continue;  // Partial read.

    // Validate one complete line.
    const std::string record = line.substr(0, line.size() - 1);
    std::string type;
    std::uint64_t seed = 0;
    std::uint64_t point = 0;
    bool valid = get_type(record, type) &&
                 get_u64(record, "campaign_seed", seed) &&
                 get_u64(record, "point", point);
    if (valid && (seed != campaign_seed || point >= point_hashes.size())) {
      j.mismatch_ = "journal line " + std::to_string(j.valid_lines_ + 1) +
                    " belongs to a different campaign (seed or point range)";
      valid = false;
    }
    if (valid && type == "replica") {
      std::uint64_t replica = 0;
      std::uint64_t hash = 0;
      SimResults r;
      valid = get_u64(record, "replica", replica) &&
              get_u64(record, "config_hash", hash) &&
              parse_results(record, r);
      if (valid && hash != point_hashes[point]) {
        j.mismatch_ = "journal line " + std::to_string(j.valid_lines_ + 1) +
                      " has a different config hash for point " +
                      std::to_string(point);
        valid = false;
      }
      if (valid) {
        j.replicas_[{static_cast<std::size_t>(point),
                     static_cast<int>(replica)}] = r;
      }
    } else if (valid && type != "point") {
      valid = false;  // Unknown record type.
    }

    if (!valid) {
      stop = true;  // The valid prefix ends before this line.
    } else {
      ++j.valid_lines_;
      offset += line.size();
      j.valid_bytes_ = offset;
    }
    line.clear();
  }
  std::fclose(f);
  return j;
}

}  // namespace ftnoc::campaign

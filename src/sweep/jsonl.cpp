#include "sweep/jsonl.hpp"

#include <cstdio>

namespace ftnoc::sweep {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void JsonRecord::str(const char* key, std::string_view v) {
  open(key);
  out_ += '"';
  append_escaped(out_, v);
  out_ += '"';
}

void JsonRecord::u64(const char* key, std::uint64_t v) {
  open(key);
  out_ += std::to_string(v);
}

void JsonRecord::boolean(const char* key, bool v) {
  open(key);
  out_ += v ? "true" : "false";
}

void JsonRecord::real(const char* key, double v) {
  open(key);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

std::string JsonRecord::close() {
  out_ += '}';
  return std::move(out_);
}

void JsonRecord::open(const char* key) {
  out_ += out_.empty() ? '{' : ',';
  out_ += '"';
  out_ += key;
  out_ += "\":";
}

void append_config_fields(JsonRecord& o, const SimConfig& c) {
  o.u64("mesh_width", static_cast<std::uint64_t>(c.mesh_width));
  o.u64("mesh_height", static_cast<std::uint64_t>(c.mesh_height));
  o.boolean("torus", c.torus);
  o.u64("num_vcs", static_cast<std::uint64_t>(c.num_vcs));
  o.u64("vc_buffer_depth", static_cast<std::uint64_t>(c.vc_buffer_depth));
  o.u64("pipeline_stages", static_cast<std::uint64_t>(c.pipeline_stages));
  o.u64("retransmission_depth",
        static_cast<std::uint64_t>(c.retransmission_depth));
  o.real("injection_rate", c.injection_rate);
  o.u64("packet_length", static_cast<std::uint64_t>(c.packet_length));
  o.str("pattern", to_string(c.pattern));
  o.str("routing", to_string(c.routing));
  o.str("protection", to_string(c.protection));
  o.boolean("ecc_detect_only", c.ecc_detect_only);
  o.boolean("enable_ac", c.enable_ac);
  o.boolean("duplicate_rtx_buffers", c.duplicate_rtx_buffers);
  o.boolean("tmr_handshaking", c.tmr_handshaking);
  o.real("link_error_rate", c.faults.link_error_rate);
  o.real("multi_bit_fraction", c.faults.multi_bit_fraction);
  o.real("rt_error_rate", c.faults.rt_error_rate);
  o.real("va_error_rate", c.faults.va_error_rate);
  o.real("sa_error_rate", c.faults.sa_error_rate);
  o.real("rtx_error_rate", c.faults.rtx_error_rate);
  o.real("handshake_error_rate", c.faults.handshake_error_rate);
  o.boolean("deadlock_recovery", c.deadlock.enable_recovery);
  o.u64("probe_threshold", c.deadlock.probe_threshold);
  o.u64("warmup_messages", c.warmup_messages);
  o.u64("total_messages", c.total_messages);
  o.u64("max_cycles", c.max_cycles);
  // Permanent-fault columns only appear for configs that can carry hard
  // faults, so fault-free sweeps (and their config hashes / golden
  // digests) stay byte-identical to the pre-fault-model output.
  if (c.has_permanent_faults()) {
    std::string links;
    for (const auto& [node, dir] : c.dead_links) {
      if (!links.empty()) links += ',';
      links += std::to_string(node);
      links += ':';
      links += to_string(dir);
    }
    std::string routers;
    for (const NodeId node : c.dead_routers) {
      if (!routers.empty()) routers += ',';
      routers += std::to_string(node);
    }
    o.str("dead_links", links);
    o.str("dead_routers", routers);
    o.u64("link_escalation_threshold",
          static_cast<std::uint64_t>(c.faults.link_escalation_threshold));
  }
  // Same gating idea for the buffer-policy columns: default private_vc
  // lines keep the pre-policy key set byte-for-byte (golden digests), and
  // damq_reserve_slots only means anything under damq.
  if (c.buffer_policy != BufferPolicyKind::kPrivateVc) {
    o.str("buffer_policy", to_string(c.buffer_policy));
    if (c.buffer_policy == BufferPolicyKind::kDamq) {
      o.u64("damq_reserve_slots",
            static_cast<std::uint64_t>(c.damq_reserve_slots));
    }
  }
  // Fault-storm / adaptive-escape columns (PR 8), gated separately from
  // the has_permanent_faults() block above so pre-existing faulted presets
  // (fault_degradation) keep their exact key set and golden digests.
  if (!c.storm_kills.empty()) {
    std::string kills;
    for (const auto& k : c.storm_kills) {
      if (!kills.empty()) kills += ',';
      kills += std::to_string(k.at);
      kills += ':';
      kills += std::to_string(k.node);
      kills += ':';
      kills += to_string(k.dir);
    }
    o.str("storm_kills", kills);
  }
  if (c.adaptive_faults) o.boolean("adaptive_faults", true);
  // Workload / analytics columns (DESIGN.md §4.14): gated on their own
  // flags so every pre-existing output keeps its exact key set. An inline
  // workload is identified by a content hash — embedding the full text
  // would bloat every row, but the identity must still pin the run.
  if (c.has_workload()) {
    if (!c.workload_file.empty()) {
      o.str("workload", c.workload_file);
    } else {
      std::uint64_t h = 0xcbf29ce484222325ull;
      for (const char ch : c.workload_text) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "inline:%016llx",
                    static_cast<unsigned long long>(h));
      o.str("workload", buf);
    }
  }
  if (c.run_to_drain) o.boolean("run_to_drain", true);
  if (c.link_stats) o.boolean("link_stats", true);
}

void append_result_fields(JsonRecord& o, const SimResults& r) {
  o.boolean("completed", r.completed);
  o.u64("cycles", r.cycles);
  o.real("avg_latency_cycles", r.avg_latency_cycles);
  o.real("avg_total_latency_cycles", r.avg_total_latency_cycles);
  o.real("p50_latency_cycles", r.p50_latency_cycles);
  o.real("p99_latency_cycles", r.p99_latency_cycles);
  o.real("max_latency_cycles", r.max_latency_cycles);
  o.u64("measured_messages", r.measured_messages);
  o.real("throughput_flits_node_cycle", r.throughput_flits_node_cycle);
  o.u64("packets_created", r.packets_created);
  o.u64("messages_ejected", r.messages_ejected);
  o.real("energy_per_message_nj", r.energy_per_message_nj);
  o.real("total_energy_uj", r.total_energy_uj);
  o.real("tx_buffer_utilization", r.tx_buffer_utilization);
  o.real("rtx_buffer_utilization", r.rtx_buffer_utilization);
  o.u64("link_errors_corrected", r.link_errors_corrected);
  o.u64("link_single_corrected", r.link_single_corrected);
  o.u64("link_retransmission_events", r.link_retransmission_events);
  o.u64("link_flits_retransmitted", r.link_flits_retransmitted);
  o.u64("flits_dropped", r.flits_dropped);
  o.u64("nacks_sent", r.nacks_sent);
  o.u64("rt_errors_recovered", r.rt_errors_recovered);
  o.u64("va_errors_recovered", r.va_errors_recovered);
  o.u64("sa_errors_recovered", r.sa_errors_recovered);
  o.u64("unprotected_errors", r.unprotected_errors);
  o.u64("corrupted_delivered", r.corrupted_delivered);
  o.u64("e2e_retransmits", r.e2e_retransmits);
  o.u64("rtx_errors_corrected", r.rtx_errors_corrected);
  o.u64("handshake_errors_corrected", r.handshake_errors_corrected);
  o.u64("hard_fault_reroutes", r.hard_fault_reroutes);
  o.u64("probes_sent", r.probes_sent);
  o.u64("probes_discarded", r.probes_discarded);
  o.u64("deadlocks_confirmed", r.deadlocks_confirmed);
  o.u64("recoveries_entered", r.recoveries_entered);
  o.u64("recoveries_exited", r.recoveries_exited);
  o.u64("fallback_recoveries", r.fallback_recoveries);
  o.u64("flits_absorbed", r.flits_absorbed);
}

std::string to_jsonl(const PointResult& pr, bool include_timing) {
  JsonRecord o;

  // Identity.
  o.u64("point", pr.index);
  o.str("label", pr.label);
  o.u64("seed", pr.config.seed);

  append_config_fields(o, pr.config);
  append_result_fields(o, pr.results);

  // Same gate as the config columns: fault-free lines keep the exact
  // pre-fault-model key set (append_result_fields itself must not grow —
  // the campaign journal's replica lines depend on its key order).
  if (pr.config.has_permanent_faults()) {
    o.u64("packets_rerouted", pr.results.packets_rerouted);
    o.u64("unreachable_drops", pr.results.unreachable_drops);
    o.u64("links_escalated", pr.results.links_escalated);
  }
  // Storm runs additionally report how many timeline kills were accepted
  // (gated on the storm config itself, so nothing else gains the column).
  if (!pr.config.storm_kills.empty()) {
    o.u64("links_storm_killed", pr.results.links_storm_killed);
  }
  // Workload runs report drops at dead sources; link_stats runs carry the
  // per-link heatmap rows, packed "node:DIR=fwd/stall" so one JSONL line
  // stays one row for the CSV/plot layer to explode.
  if (pr.config.has_workload()) {
    o.u64("dead_source_drops", pr.results.dead_source_drops);
  }
  if (pr.config.link_stats) {
    std::string rows;
    for (const auto& lu : pr.results.link_util) {
      if (!rows.empty()) rows += ',';
      rows += std::to_string(lu.node);
      rows += ':';
      rows += to_string(static_cast<Direction>(lu.dir));
      rows += '=';
      rows += std::to_string(lu.fwd);
      rows += '/';
      rows += std::to_string(lu.stall);
    }
    o.str("link_util", rows);
  }

  if (include_timing) o.real("wall_ms", pr.wall_ms);
  return o.close();
}

}  // namespace ftnoc::sweep

#include "sweep/sweep.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ftnoc::sweep {
namespace {

/// Pins the calling thread to one CPU (round-robin over the online set).
/// Best-effort: a failed affinity call (restricted cpuset, exotic
/// platform) is ignored — pinning is a measurement aid, never a
/// correctness requirement.
void pin_to_cpu(int worker_index) {
#ifdef __linux__
  const unsigned ncpus = std::thread::hardware_concurrency();
  if (ncpus == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(worker_index) % ncpus, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions opts) : opts_(opts) {
  threads_ = opts_.num_threads;
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void SweepEngine::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  std::atomic<std::size_t> next{0};
  auto worker = [&](int worker_index) {
    // Only spawned workers pin (worker_index >= 0): mutating the caller's
    // thread affinity would outlive the sweep.
    if (opts_.pin_threads && worker_index >= 0) pin_to_cpu(worker_index);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };

  const auto pool_size = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count));
  if (pool_size <= 1) {
    worker(-1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (int t = 0; t < pool_size; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
}

std::vector<PointResult> SweepEngine::run(const std::vector<SweepPoint>& points,
                                          const ResultCallback& on_result,
                                          const ProgressCallback& on_progress) {
  const std::size_t total = points.size();
  std::vector<PointResult> results(total);
  if (total == 0) return results;

  std::mutex mu;  // Guards `done`, the callbacks and the emit cursor.
  std::vector<char> done(total, 0);
  std::size_t emitted = 0;
  std::size_t completed = 0;

  for_each(total, [&](std::size_t i) {
    PointResult pr;
    pr.index = i;
    pr.label = points[i].label;
    pr.config = points[i].config;
    if (opts_.seed_policy == SeedPolicy::kDerivePerPoint) {
      pr.config.seed = Rng::derive_seed(opts_.base_seed, i);
    }
    FTNOC_CHECK(!pr.config.validate().has_value());

    const auto t0 = std::chrono::steady_clock::now();
    pr.results = run_simulation(pr.config);
    pr.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();

    std::lock_guard<std::mutex> lock(mu);
    results[i] = std::move(pr);
    done[i] = 1;
    ++completed;
    if (on_progress) on_progress(completed, total, results[i]);
    if (on_result) {
      while (emitted < total && done[emitted]) {
        on_result(results[emitted]);
        ++emitted;
      }
    }
  });
  return results;
}

}  // namespace ftnoc::sweep

#pragma once
// JSON-lines serialization of sweep results.
//
// One record per line, keys in a fixed order, doubles printed with %.17g
// (round-trip exact): two runs of the same sweep produce byte-identical
// output regardless of thread count. Wall-clock is excluded unless asked
// for, precisely so that byte-diffing two runs is meaningful.

#include <cstdint>
#include <string>
#include <string_view>

#include "sweep/sweep.hpp"

namespace ftnoc::sweep {

/// Flat single-line JSON object builder (no nesting — none of our records
/// need it). Keys are emitted in call order; doubles use %.17g so parsing
/// them back yields bit-identical values (the campaign journal relies on
/// this for byte-identical resume).
class JsonRecord {
 public:
  void str(const char* key, std::string_view v);
  void u64(const char* key, std::uint64_t v);
  void boolean(const char* key, bool v);
  void real(const char* key, double v);
  /// Finalizes and returns the record ("{...}"); the builder is spent.
  std::string close();

 private:
  void open(const char* key);
  std::string out_;
};

/// Appends every config knob that defines a point (everything except the
/// seed and identity fields) in the canonical key order.
void append_config_fields(JsonRecord& rec, const SimConfig& c);

/// Appends every SimResults metric in the canonical key order.
void append_result_fields(JsonRecord& rec, const SimResults& r);

/// Serializes one finished point as a single-line JSON object (no trailing
/// newline): identity fields, the config knobs that define the point, then
/// every SimResults metric. `include_timing` appends the wall_ms field.
std::string to_jsonl(const PointResult& pr, bool include_timing = false);

}  // namespace ftnoc::sweep

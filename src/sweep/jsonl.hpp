#pragma once
// JSON-lines serialization of sweep results.
//
// One record per line, keys in a fixed order, doubles printed with %.17g
// (round-trip exact): two runs of the same sweep produce byte-identical
// output regardless of thread count. Wall-clock is excluded unless asked
// for, precisely so that byte-diffing two runs is meaningful.

#include <string>

#include "sweep/sweep.hpp"

namespace ftnoc::sweep {

/// Serializes one finished point as a single-line JSON object (no trailing
/// newline): identity fields, the config knobs that define the point, then
/// every SimResults metric. `include_timing` appends the wall_ms field.
std::string to_jsonl(const PointResult& pr, bool include_timing = false);

}  // namespace ftnoc::sweep

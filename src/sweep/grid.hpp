#pragma once
// Config-grid specification for sweeps.
//
// Each axis is a `key=v1,v2,...` string using the regular override keys of
// common/config.hpp; the grid is the Cartesian product of all axes applied
// to a base config via apply_override. A single-valued axis simply pins a
// knob. Axis order is preserved: the first axis varies slowest, so the
// expansion order (and therefore point indices, labels and derived seeds)
// is a deterministic function of the spec.

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc::sweep {

struct GridAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Splits `key=v1,v2,...` into an axis. Returns an error description on a
/// missing '=' or an empty value; nullopt on success.
std::optional<std::string> parse_axis(const std::string& spec, GridAxis& out);

/// Expands the Cartesian product of `axes` over `base` into `out`. Each
/// point's label joins the multi-valued axes as "key=value key2=value2"
/// (single-valued axes pin config knobs and stay out of the label); a grid
/// with no multi-valued axis yields one point labelled "base". Every
/// expanded config is validated. Returns the first override/validation
/// error, or nullopt on success.
std::optional<std::string> expand_grid(const SimConfig& base,
                                       const std::vector<GridAxis>& axes,
                                       std::vector<SweepPoint>& out);

}  // namespace ftnoc::sweep

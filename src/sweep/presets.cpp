#include "sweep/presets.hpp"

#include <algorithm>
#include <cstdio>

namespace ftnoc::sweep {

const std::vector<double>& fig_error_rates() {
  static const std::vector<double> rates = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  return rates;
}

std::string rate_label(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

std::vector<SweepPoint> fig05_points(const SimConfig& base) {
  struct Scheme {
    const char* name;
    LinkProtection p;
  };
  static constexpr Scheme kSchemes[] = {{"HBH", LinkProtection::kHbh},
                                        {"E2E", LinkProtection::kE2e},
                                        {"FEC", LinkProtection::kFec}};
  std::vector<SweepPoint> points;
  for (const auto& s : kSchemes) {
    for (const double rate : fig_error_rates()) {
      SweepPoint pt;
      pt.label = std::string("Fig5/") + s.name + "/err=" + rate_label(rate);
      pt.config = base;
      pt.config.injection_rate = 0.25;  // The figure's operating point.
      pt.config.protection = s.p;
      pt.config.faults.link_error_rate = rate;
      // The Figure 5 comparison pits *pure* techniques against each other:
      // the retransmission schemes (HBH, E2E) resend on any detected
      // error, while FEC corrects what it can and silently passes the
      // rest. The paper's proposed hybrid (SEC + HBH retransmission of
      // multi-bit upsets) is what Figures 6/7 sweep.
      pt.config.ecc_detect_only = s.p != LinkProtection::kFec;
      points.push_back(std::move(pt));
    }
  }
  return points;
}

std::vector<SweepPoint> abl_cthres_points(const SimConfig& base) {
  std::vector<SweepPoint> points;
  for (const Cycle cthres : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    SweepPoint pt;
    pt.label = "AblCthres/cthres=" + std::to_string(cthres);
    pt.config = base;
    pt.config.routing = RoutingAlgorithm::kMinimalAdaptive;
    pt.config.num_vcs = 2;            // Fewer VCs: more blocking pressure.
    pt.config.injection_rate = 0.28;  // Congested, just below AD saturation.
    pt.config.total_messages =
        std::min<std::uint64_t>(pt.config.total_messages, 20'000);
    pt.config.warmup_messages =
        std::min<std::uint64_t>(pt.config.warmup_messages, 5'000);
    pt.config.max_cycles = 200'000;
    pt.config.deadlock.enable_recovery = true;
    pt.config.deadlock.probe_threshold = cthres;
    pt.config.deadlock.probe_backoff = cthres / 2 + 1;
    pt.config.deadlock.probe_timeout = cthres * 2 + 64;
    points.push_back(std::move(pt));
  }
  return points;
}

std::vector<SweepPoint> preset_points(const std::string& name,
                                      const SimConfig& base) {
  if (name == "fig05") return fig05_points(base);
  if (name == "abl_cthres") return abl_cthres_points(base);
  return {};
}

}  // namespace ftnoc::sweep

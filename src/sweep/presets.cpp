#include "sweep/presets.hpp"

#include <algorithm>
#include <cstdio>

namespace ftnoc::sweep {

const std::vector<double>& fig_error_rates() {
  static const std::vector<double> rates = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  return rates;
}

std::string rate_label(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

std::vector<SweepPoint> fig05_points(const SimConfig& base) {
  struct Scheme {
    const char* name;
    LinkProtection p;
  };
  static constexpr Scheme kSchemes[] = {{"HBH", LinkProtection::kHbh},
                                        {"E2E", LinkProtection::kE2e},
                                        {"FEC", LinkProtection::kFec}};
  std::vector<SweepPoint> points;
  for (const auto& s : kSchemes) {
    for (const double rate : fig_error_rates()) {
      SweepPoint pt;
      pt.label = std::string("Fig5/") + s.name + "/err=" + rate_label(rate);
      pt.config = base;
      pt.config.injection_rate = 0.25;  // The figure's operating point.
      pt.config.protection = s.p;
      pt.config.faults.link_error_rate = rate;
      // The Figure 5 comparison pits *pure* techniques against each other:
      // the retransmission schemes (HBH, E2E) resend on any detected
      // error, while FEC corrects what it can and silently passes the
      // rest. The paper's proposed hybrid (SEC + HBH retransmission of
      // multi-bit upsets) is what Figures 6/7 sweep.
      pt.config.ecc_detect_only = s.p != LinkProtection::kFec;
      points.push_back(std::move(pt));
    }
  }
  return points;
}

std::vector<SweepPoint> abl_cthres_points(const SimConfig& base) {
  std::vector<SweepPoint> points;
  for (const Cycle cthres : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    SweepPoint pt;
    pt.label = "AblCthres/cthres=" + std::to_string(cthres);
    pt.config = base;
    pt.config.routing = RoutingAlgorithm::kMinimalAdaptive;
    pt.config.num_vcs = 2;            // Fewer VCs: more blocking pressure.
    pt.config.injection_rate = 0.28;  // Congested, just below AD saturation.
    pt.config.total_messages =
        std::min<std::uint64_t>(pt.config.total_messages, 20'000);
    pt.config.warmup_messages =
        std::min<std::uint64_t>(pt.config.warmup_messages, 5'000);
    pt.config.max_cycles = 200'000;
    pt.config.deadlock.enable_recovery = true;
    pt.config.deadlock.probe_threshold = cthres;
    pt.config.deadlock.probe_backoff = cthres / 2 + 1;
    pt.config.deadlock.probe_timeout = cthres * 2 + 64;
    points.push_back(std::move(pt));
  }
  return points;
}

namespace {

struct Pattern {
  const char* name;
  TrafficPattern p;
};
constexpr Pattern kPatterns[] = {{"NR", TrafficPattern::kUniformRandom},
                                 {"BC", TrafficPattern::kBitComplement},
                                 {"TN", TrafficPattern::kTornado}};

/// Shared grid behind Figures 6 and 7 (latency and energy columns of the
/// same runs): hybrid HBH x NR/BC/TN x the five error-rate decades.
std::vector<SweepPoint> hbh_pattern_points(const SimConfig& base,
                                           const char* figure) {
  std::vector<SweepPoint> points;
  for (const auto& pat : kPatterns) {
    for (const double rate : fig_error_rates()) {
      SweepPoint pt;
      pt.label = std::string(figure) + "/" + pat.name +
                 "/err=" + rate_label(rate);
      pt.config = base;
      pt.config.injection_rate = 0.25;
      pt.config.protection = LinkProtection::kHbh;
      pt.config.pattern = pat.p;
      pt.config.faults.link_error_rate = rate;
      points.push_back(std::move(pt));
    }
  }
  return points;
}

/// Shared grid behind Figures 8 and 9: buffer utilization vs offered load
/// for adaptive (AD) and deterministic (DT) routing. Deep-saturation
/// points are cycle-capped (they can never eject the full budget) and AD
/// pairs with deadlock recovery, as in the paper and the benches.
std::vector<SweepPoint> buf_util_points(const SimConfig& base,
                                        const char* figure) {
  struct Algo {
    const char* name;
    RoutingAlgorithm a;
  };
  static constexpr Algo kAlgos[] = {{"AD", RoutingAlgorithm::kMinimalAdaptive},
                                    {"DT", RoutingAlgorithm::kXY}};
  std::vector<SweepPoint> points;
  for (const auto& algo : kAlgos) {
    for (int i = 1; i <= 10; ++i) {
      const double rate = 0.1 * i;
      SweepPoint pt;
      pt.label = std::string(figure) + "/" + algo.name +
                 "/inj=" + rate_label(rate);
      pt.config = base;
      pt.config.routing = algo.a;
      pt.config.injection_rate = rate;
      pt.config.max_cycles = std::min<Cycle>(base.max_cycles, 60'000);
      pt.config.deadlock.enable_recovery =
          algo.a == RoutingAlgorithm::kMinimalAdaptive;
      // Early detection is protective under heavy load (DESIGN.md 4.4).
      pt.config.deadlock.probe_threshold = 16;
      pt.config.deadlock.probe_backoff = 9;
      points.push_back(std::move(pt));
    }
  }
  return points;
}

/// Shared grid behind Figures 13(a)/(b): one fault mechanism active per
/// series, swept over 1e-5..1e-2.
std::vector<SweepPoint> mechanism_points(const SimConfig& base,
                                         const char* figure) {
  enum class Mechanism { kLink, kRt, kSa };
  struct Series {
    const char* name;
    Mechanism m;
  };
  static constexpr Series kSeries[] = {{"LINK-HBH", Mechanism::kLink},
                                       {"RT-Logic", Mechanism::kRt},
                                       {"SA-Logic", Mechanism::kSa}};
  static constexpr double kRates[] = {1e-5, 1e-4, 1e-3, 1e-2};
  std::vector<SweepPoint> points;
  for (const auto& s : kSeries) {
    for (const double rate : kRates) {
      SweepPoint pt;
      pt.label =
          std::string(figure) + "/" + s.name + "/err=" + rate_label(rate);
      pt.config = base;
      pt.config.injection_rate = 0.25;
      pt.config.protection = LinkProtection::kHbh;
      switch (s.m) {
        case Mechanism::kLink:
          pt.config.faults.link_error_rate = rate;
          break;
        case Mechanism::kRt:
          pt.config.faults.rt_error_rate = rate;
          break;
        case Mechanism::kSa:
          pt.config.faults.sa_error_rate = rate;
          break;
      }
      points.push_back(std::move(pt));
    }
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> fig06_points(const SimConfig& base) {
  return hbh_pattern_points(base, "Fig6");
}

std::vector<SweepPoint> fig07_points(const SimConfig& base) {
  return hbh_pattern_points(base, "Fig7");
}

std::vector<SweepPoint> fig08_points(const SimConfig& base) {
  return buf_util_points(base, "Fig8");
}

std::vector<SweepPoint> fig09_points(const SimConfig& base) {
  return buf_util_points(base, "Fig9");
}

std::vector<SweepPoint> fig13a_points(const SimConfig& base) {
  return mechanism_points(base, "Fig13a");
}

std::vector<SweepPoint> fig13b_points(const SimConfig& base) {
  return mechanism_points(base, "Fig13b");
}

namespace {

/// Shared grid behind fault_degradation and fault_degradation_16:
/// graceful-degradation curve, k = 0..kcap statically dead links under
/// adaptive routing with deadlock recovery. The k-th fault cuts the East
/// link at (x, y) = (1 + k % (W-2), row k), staggering the cut column
/// row by row so every adjacent column pair keeps an intact row edge —
/// the set never partitions any mesh with W >= 4 (validate() re-checks).
std::vector<SweepPoint> fault_degradation_grid(const SimConfig& base,
                                               const char* figure,
                                               int kcap) {
  std::vector<SweepPoint> points;
  const int w = base.mesh_width;
  const int max_k = w >= 4 ? std::min(kcap, base.mesh_height) : 0;
  for (int k = 0; k <= max_k; ++k) {
    SweepPoint pt;
    pt.label = std::string(figure) + "/k=" + std::to_string(k);
    pt.config = base;
    pt.config.routing = RoutingAlgorithm::kMinimalAdaptive;
    pt.config.injection_rate = 0.2;
    pt.config.deadlock.enable_recovery = true;
    pt.config.deadlock.probe_threshold = 32;
    pt.config.deadlock.probe_backoff = 17;
    pt.config.total_messages =
        std::min<std::uint64_t>(pt.config.total_messages, 20'000);
    pt.config.warmup_messages =
        std::min<std::uint64_t>(pt.config.warmup_messages, 5'000);
    pt.config.max_cycles = std::min<Cycle>(pt.config.max_cycles, 400'000);
    for (int j = 0; j < k; ++j) {
      const int x = 1 + j % (w - 2);
      const NodeId node = static_cast<NodeId>(j * w + x);
      pt.config.dead_links.emplace_back(node, Direction::kEast);
    }
    points.push_back(std::move(pt));
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> fault_degradation_points(const SimConfig& base) {
  return fault_degradation_grid(base, "FaultDeg", 4);
}

std::vector<SweepPoint> fault_degradation_16_points(const SimConfig& base) {
  // The 256-router fabric absorbs more cuts before the delivered fraction
  // moves, so the curve sweeps twice as many kills as the 8x8 grid.
  SimConfig big = base;
  big.mesh_width = 16;
  big.mesh_height = 16;
  return fault_degradation_grid(big, "FaultDeg16", 8);
}

std::vector<SweepPoint> fault_storm_points(const SimConfig& base) {
  // Self-healing under a progressive fault storm (DESIGN.md §4.12): links
  // die on a timeline *during* the run — one kill every 250 cycles from
  // cycle 250 — instead of being dead from the start. Point k suffers the
  // first k kills of a shared schedule, so the delivered fraction
  // (messages_ejected / packets_created) read across points is a
  // degradation curve. The kill sites reuse the fault_degradation stagger
  // (East cut at column 1 + j % (W-2), row j % H), which never partitions
  // a W >= 4 mesh — so with the non-minimal escape tier enabled every
  // destination stays reachable and unreachable_drops must end at 0.
  std::vector<SweepPoint> points;
  const int w = base.mesh_width;
  const int h = base.mesh_height;
  const int max_k = w >= 4 ? 4 : 0;
  for (int k = 0; k <= max_k; ++k) {
    SweepPoint pt;
    pt.label = "FaultStorm/adaptive/k=" + std::to_string(k);
    pt.config = base;
    pt.config.routing = RoutingAlgorithm::kMinimalAdaptive;
    pt.config.adaptive_faults = true;
    pt.config.injection_rate = 0.2;
    pt.config.deadlock.enable_recovery = true;
    pt.config.deadlock.probe_threshold = 32;
    pt.config.deadlock.probe_backoff = 17;
    // Escalation machinery armed so storm kills and organic escalations
    // share the drain path (no error process here, so only storms fire).
    pt.config.total_messages =
        std::min<std::uint64_t>(pt.config.total_messages, 20'000);
    pt.config.warmup_messages =
        std::min<std::uint64_t>(pt.config.warmup_messages, 5'000);
    pt.config.max_cycles = std::min<Cycle>(pt.config.max_cycles, 400'000);
    for (int j = 0; j < k; ++j) {
      const int x = 1 + j % (w - 2);
      SimConfig::LinkKill kill;
      kill.at = 250 + static_cast<Cycle>(j) * 250;
      kill.node = static_cast<NodeId>((j % h) * w + x);
      kill.dir = Direction::kEast;
      pt.config.storm_kills.push_back(kill);
    }
    points.push_back(std::move(pt));
  }
  return points;
}

std::vector<SweepPoint> buffer_ablation_points(const SimConfig& base) {
  // Each policy runs the same two sub-grids: the Fig. 6 operating points
  // (error-rate decades at injection 0.25, hybrid HBH) stress retransmit
  // pressure where shared buffering should help; the Fig. 8 load sweep
  // (DT routing, cycle-capped past saturation) reads the buffer
  // utilization columns the policies exist to move. routing=xy throughout
  // so the voq variant is admissible (validate() requires it).
  static constexpr BufferPolicyKind kPolicies[] = {
      BufferPolicyKind::kPrivateVc, BufferPolicyKind::kDamq,
      BufferPolicyKind::kVoq};
  std::vector<SweepPoint> points;
  for (const BufferPolicyKind policy : kPolicies) {
    const std::string pname = to_string(policy);
    for (const double rate : fig_error_rates()) {
      SweepPoint pt;
      pt.label = "BufAbl/" + pname + "/err=" + rate_label(rate);
      pt.config = base;
      pt.config.buffer_policy = policy;
      pt.config.routing = RoutingAlgorithm::kXY;
      pt.config.injection_rate = 0.25;
      pt.config.protection = LinkProtection::kHbh;
      pt.config.faults.link_error_rate = rate;
      pt.config.total_messages =
          std::min<std::uint64_t>(pt.config.total_messages, 10'000);
      pt.config.warmup_messages =
          std::min<std::uint64_t>(pt.config.warmup_messages, 2'500);
      points.push_back(std::move(pt));
    }
    for (int i = 1; i <= 5; ++i) {
      const double inj = 0.2 * i;
      SweepPoint pt;
      pt.label = "BufAblLoad/" + pname + "/inj=" + rate_label(inj);
      pt.config = base;
      pt.config.buffer_policy = policy;
      pt.config.routing = RoutingAlgorithm::kXY;
      pt.config.injection_rate = inj;
      pt.config.protection = LinkProtection::kHbh;
      pt.config.faults.link_error_rate = 1e-4;
      pt.config.total_messages =
          std::min<std::uint64_t>(pt.config.total_messages, 10'000);
      pt.config.warmup_messages =
          std::min<std::uint64_t>(pt.config.warmup_messages, 2'500);
      pt.config.max_cycles = std::min<Cycle>(base.max_cycles, 60'000);
      points.push_back(std::move(pt));
    }
  }
  return points;
}

namespace {

/// The hot-path variants shared by perf and perf_large: one point per
/// distinct router fast path.
struct PerfVariant {
  const char* name;
  void (*tweak)(SimConfig&);
};

constexpr PerfVariant kPerfVariants[] = {
      {"HBH", [](SimConfig& c) {
         c.protection = LinkProtection::kHbh;
         c.faults.link_error_rate = 1e-3;
       }},
      {"FEC", [](SimConfig& c) {
         c.protection = LinkProtection::kFec;
         c.faults.link_error_rate = 1e-3;
       }},
      {"E2E", [](SimConfig& c) {
         c.protection = LinkProtection::kE2e;
         c.faults.link_error_rate = 1e-3;
       }},
      {"AD-recovery", [](SimConfig& c) {
         c.routing = RoutingAlgorithm::kMinimalAdaptive;
         c.num_vcs = 2;
         c.deadlock.enable_recovery = true;
         c.deadlock.probe_threshold = 64;
       }},
    {"4-stage", [](SimConfig& c) {
       c.protection = LinkProtection::kHbh;
       c.pipeline_stages = 4;
       c.retransmission_depth = 4;
       c.faults.link_error_rate = 1e-3;
     }},
};

std::vector<SweepPoint> perf_grid(const SimConfig& base, const char* figure,
                                  std::uint64_t total_messages,
                                  std::uint64_t warmup_messages) {
  std::vector<SweepPoint> points;
  for (const auto& v : kPerfVariants) {
    SweepPoint pt;
    pt.label = std::string(figure) + "/" + v.name;
    pt.config = base;
    pt.config.injection_rate = 0.25;
    pt.config.total_messages = total_messages;
    pt.config.warmup_messages = warmup_messages;
    pt.config.max_cycles = 300'000;
    v.tweak(pt.config);
    points.push_back(std::move(pt));
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> perf_points(const SimConfig& base) {
  // The scale is pinned here (not taken from the base config) so
  // cycles/sec measurements compare like for like across builds; the
  // mesh/topology knobs still follow `base`.
  return perf_grid(base, "Perf", 2'000, 500);
}

std::vector<SweepPoint> perf_large_points(const SimConfig& base) {
  // The same hot paths on a pinned 16x16 mesh: 16x the routers stepped
  // per cycle and twice the diameter, so radix- and scale-dependent
  // regressions move this number even when the 4x4 `perf` grid is flat.
  // The message budget is smaller per node but larger in aggregate —
  // sized so the whole grid stays a CI-smoke-friendly few seconds.
  SimConfig big = base;
  big.mesh_width = 16;
  big.mesh_height = 16;
  return perf_grid(big, "PerfL", 4'000, 1'000);
}

std::vector<SweepPoint> large_mesh_points(const SimConfig& base) {
  // Production-fabric grid (ROADMAP: scale-out). Mesh dimensions and
  // scale knobs are pinned by the preset — like `perf` — so the output
  // byte stream has a stable golden digest regardless of the caller's
  // base scale. The points cover the hot paths whose cost or behaviour
  // is topology-dependent: XY vs adaptive routing (diameter 30 on the
  // mesh), torus wrap-around channels under tornado traffic, hybrid HBH
  // retransmission at scale, and static dead links forcing detours
  // across a large fabric. One 32x32 torus point (1024 routers) rides
  // along with a reduced budget as the biggest-fabric smoke.
  std::vector<SweepPoint> points;
  const auto add = [&](const char* name, bool torus, int width,
                       std::uint64_t messages, auto tweak) {
    SweepPoint pt;
    pt.label = std::string("LargeMesh/") + name;
    pt.config = base;
    pt.config.mesh_width = width;
    pt.config.mesh_height = width;
    pt.config.torus = torus;
    pt.config.injection_rate = 0.25;
    pt.config.total_messages = messages;
    pt.config.warmup_messages = messages / 4;
    pt.config.max_cycles = 200'000;
    tweak(pt.config);
    points.push_back(std::move(pt));
  };
  add("mesh16/HBH", false, 16, 4'000, [](SimConfig& c) {
    c.protection = LinkProtection::kHbh;
    c.faults.link_error_rate = 1e-4;
  });
  add("mesh16/AD-recovery", false, 16, 4'000, [](SimConfig& c) {
    c.routing = RoutingAlgorithm::kMinimalAdaptive;
    c.num_vcs = 2;
    c.deadlock.enable_recovery = true;
    c.deadlock.probe_threshold = 64;
  });
  add("mesh16/deadlinks", false, 16, 4'000, [](SimConfig& c) {
    c.routing = RoutingAlgorithm::kMinimalAdaptive;
    c.deadlock.enable_recovery = true;
    // The fault_degradation stagger at k=4, scaled to the 16-wide mesh.
    for (int j = 0; j < 4; ++j) {
      const int x = 1 + j % 14;
      c.dead_links.emplace_back(static_cast<NodeId>(j * 16 + x),
                                Direction::kEast);
    }
  });
  add("torus16/TN", true, 16, 4'000, [](SimConfig& c) {
    c.pattern = TrafficPattern::kTornado;
    c.protection = LinkProtection::kHbh;
    c.faults.link_error_rate = 1e-4;
    // Tornado loads every ring channel with k/2 upstream injectors, so a
    // 16-ary torus sees 8x the injection rate per link: 0.05 keeps the
    // wrap channels at 40% load (the regime the 8x8 tornado study runs
    // in), and the cycle cap bounds the point if that ever drifts.
    c.injection_rate = 0.05;
    c.max_cycles = 60'000;
  });
  add("torus32/HBH", true, 32, 2'000, [](SimConfig& c) {
    c.protection = LinkProtection::kHbh;
    c.faults.link_error_rate = 1e-4;
  });
  return points;
}

namespace {

/// The shared workload behind workload_hotspot, generated for the base
/// mesh: a memory-controller hotspot (every node streams bursts at the
/// central "controller" node) over a background all-to-all collective.
/// packet_flits matches the default packet_length so Eq. (1)'s recovery
/// guarantee applies unchanged.
std::string hotspot_workload_text(int w, int h) {
  const int dest = (h / 2) * w + w / 2;
  std::string t;
  t += "packet_flits 4\n";
  t += "many_to_one memstream start=0 dest=" + std::to_string(dest) +
       " flits=32 count=6 period=200 stagger=7\n";
  t += "all_to_all exchange start=300 flits=4 stagger=3\n";
  return t;
}

}  // namespace

std::vector<SweepPoint> workload_hotspot_points(const SimConfig& base) {
  // Fault-under-real-load (DESIGN.md §4.14): the same workload replayed
  // against k = 0..4 statically dead links (the fault_degradation stagger,
  // which never partitions a W >= 4 mesh), pure trace-driven
  // (injection_rate = 0) and run to drain. link_stats is on, so each point
  // carries the per-link heatmap row showing how the hotspot's congestion
  // ridge shifts as links die. Scale knobs are pinned by the preset — the
  // workload fixes the offered traffic, so the byte stream has a stable
  // golden digest regardless of the caller's base scale; the mesh still
  // follows `base` like fault_degradation.
  std::vector<SweepPoint> points;
  const int w = base.mesh_width;
  const int h = base.mesh_height;
  const int max_k = w >= 4 ? std::min(4, h) : 0;
  for (int k = 0; k <= max_k; ++k) {
    SweepPoint pt;
    pt.label = "WorkloadHotspot/memhot/k=" + std::to_string(k);
    pt.config = base;
    pt.config.workload_text = hotspot_workload_text(w, h);
    pt.config.injection_rate = 0.0;
    pt.config.link_stats = true;
    pt.config.run_to_drain = true;
    pt.config.routing = RoutingAlgorithm::kMinimalAdaptive;
    pt.config.adaptive_faults = true;
    pt.config.deadlock.enable_recovery = true;
    pt.config.deadlock.probe_threshold = 32;
    pt.config.deadlock.probe_backoff = 17;
    pt.config.warmup_messages = 0;
    pt.config.total_messages = 10'000;
    pt.config.max_cycles = 200'000;
    for (int j = 0; j < k; ++j) {
      const int x = 1 + j % (w - 2);
      pt.config.dead_links.emplace_back(static_cast<NodeId>(j * w + x),
                                        Direction::kEast);
    }
    points.push_back(std::move(pt));
  }
  return points;
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names = {
      "fig05",      "fig06",  "fig07",
      "fig08",      "fig09",  "fig13a",
      "fig13b",     "abl_cthres", "buffer_ablation",
      "fault_degradation",    "fault_degradation_16",
      "fault_storm",    "large_mesh",    "perf",    "perf_large",
      "workload_hotspot"};
  return names;
}

std::string preset_names_line() {
  std::string line;
  for (const auto& name : preset_names()) {
    if (!line.empty()) line += ' ';
    line += name;
  }
  return line;
}

std::vector<SweepPoint> preset_points(const std::string& name,
                                      const SimConfig& base) {
  if (name == "fig05") return fig05_points(base);
  if (name == "fig06") return fig06_points(base);
  if (name == "fig07") return fig07_points(base);
  if (name == "fig08") return fig08_points(base);
  if (name == "fig09") return fig09_points(base);
  if (name == "fig13a") return fig13a_points(base);
  if (name == "fig13b") return fig13b_points(base);
  if (name == "abl_cthres") return abl_cthres_points(base);
  if (name == "buffer_ablation") return buffer_ablation_points(base);
  if (name == "fault_degradation") return fault_degradation_points(base);
  if (name == "fault_degradation_16") return fault_degradation_16_points(base);
  if (name == "fault_storm") return fault_storm_points(base);
  if (name == "large_mesh") return large_mesh_points(base);
  if (name == "perf") return perf_points(base);
  if (name == "perf_large") return perf_large_points(base);
  if (name == "workload_hotspot") return workload_hotspot_points(base);
  return {};
}

}  // namespace ftnoc::sweep

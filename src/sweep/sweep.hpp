#pragma once
// Batch-parallel evaluation of independent simulation points.
//
// A sweep is a list of (label, SimConfig) points — the shape of every
// paper figure, ablation and characterization study. The engine runs the
// points on a fixed-size worker pool: each worker owns its Simulator, so
// the only shared mutable state is the work queue (an atomic index) and
// the per-point result slots (disjoint).
//
// Determinism guarantee: the seed of point i depends only on
// (base_seed, i) — never on which worker picks the point or in what order
// the pool schedules it — so a sweep produces bit-identical SimResults for
// any thread count. Streaming output (`on_result`) is delivered in point
// order for the same reason: two runs of the same sweep are diffable.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/simulator.hpp"

namespace ftnoc::sweep {

/// One point of a sweep: a human-readable series label plus the full
/// configuration to simulate.
struct SweepPoint {
  std::string label;
  SimConfig config;
};

/// How the engine seeds each point.
enum class SeedPolicy : std::uint8_t {
  /// config.seed is replaced with Rng::derive_seed(base_seed, index):
  /// every point gets an unrelated stream, stable across thread counts.
  kDerivePerPoint,
  /// config.seed is used exactly as given (for reproducing runs whose
  /// configs already pin their seeds, e.g. the bench grids).
  kUseConfigSeed,
};

struct SweepOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  std::uint64_t base_seed = 1;
  SeedPolicy seed_policy = SeedPolicy::kDerivePerPoint;
  /// Pin worker thread t to CPU t mod hardware_concurrency (Linux only;
  /// silently ignored elsewhere and on single-worker pools, which run on
  /// the caller's thread). Affinity changes scheduling, never results:
  /// output bytes are identical either way. Pinning removes the
  /// cross-core migration noise that otherwise dominates scaling
  /// measurements on large-fabric sweeps — scaling should be measured,
  /// not assumed (ftnoc_perf --pin).
  bool pin_threads = false;
};

/// One finished point. `config` carries the seed the engine actually used.
struct PointResult {
  std::size_t index = 0;
  std::string label;
  SimConfig config;
  SimResults results;
  double wall_ms = 0.0;  ///< Wall-clock of this point on its worker.
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions opts = {});

  /// Invoked in point order (0, 1, 2, ...) as soon as a prefix of the
  /// sweep is complete — use for streaming output. The order is a property
  /// of the sweep, not of the scheduling.
  using ResultCallback = std::function<void(const PointResult&)>;

  /// Invoked once per completed point, in completion order, with the
  /// number of points done so far — use for progress display.
  using ProgressCallback = std::function<void(
      std::size_t done, std::size_t total, const PointResult&)>;

  /// Runs every point and returns the results in point order. Callbacks
  /// are serialized under one lock (never invoked concurrently). Each
  /// config must satisfy SimConfig::validate(); violations abort.
  std::vector<PointResult> run(const std::vector<SweepPoint>& points,
                               const ResultCallback& on_result = nullptr,
                               const ProgressCallback& on_progress = nullptr);

  /// Generic parallel-for over `count` independent tasks on the engine's
  /// pool (the primitive run() is built on). `fn(i)` is invoked exactly
  /// once per index, from whichever worker claims it; fn must be
  /// thread-safe across distinct indices. The campaign engine schedules
  /// its replica waves through this hook.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& fn);

  /// The pool size this engine resolved to (after the 0 = hardware rule).
  int num_threads() const { return threads_; }

 private:
  SweepOptions opts_;
  int threads_;
};

}  // namespace ftnoc::sweep

#pragma once
// Canonical paper grids, shared by the bench binaries and the ftnoc_sweep
// CLI so "the Fig. 5 sweep" means the same list of points everywhere.
//
// Each builder takes a base config (scale knobs: message counts,
// max_cycles, mesh) and overlays the figure's defining axes on top.

#include <string>
#include <vector>

#include "sweep/sweep.hpp"

namespace ftnoc::sweep {

/// The link error rates swept by Figures 5-7 and 13.
const std::vector<double>& fig_error_rates();

/// Formats an error rate the way the figure labels do ("1e-05").
std::string rate_label(double rate);

/// Figure 5 grid: {HBH, E2E, FEC} x fig_error_rates() at 0.25
/// flits/node/cycle. The retransmission schemes run detection-only link
/// codes (pure techniques, resend on any detected error); FEC corrects
/// what it can and silently passes the rest.
std::vector<SweepPoint> fig05_points(const SimConfig& base);

/// Cthres ablation grid: the probe threshold swept over two orders of
/// magnitude under congested adaptive traffic (the paper's §3.2.2 claim is
/// that latency stays flat while only probe activity changes).
std::vector<SweepPoint> abl_cthres_points(const SimConfig& base);

/// Maps a preset name ("fig05", "abl_cthres") to its grid; returns an
/// empty vector for an unknown name.
std::vector<SweepPoint> preset_points(const std::string& name,
                                      const SimConfig& base);

}  // namespace ftnoc::sweep

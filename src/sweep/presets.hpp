#pragma once
// Canonical paper grids, shared by the bench binaries and the ftnoc_sweep
// CLI so "the Fig. 5 sweep" means the same list of points everywhere.
//
// Each builder takes a base config (scale knobs: message counts,
// max_cycles, mesh) and overlays the figure's defining axes on top.

#include <string>
#include <vector>

#include "sweep/sweep.hpp"

namespace ftnoc::sweep {

/// The link error rates swept by Figures 5-7 and 13.
const std::vector<double>& fig_error_rates();

/// Formats an error rate the way the figure labels do ("1e-05").
std::string rate_label(double rate);

/// Figure 5 grid: {HBH, E2E, FEC} x fig_error_rates() at 0.25
/// flits/node/cycle. The retransmission schemes run detection-only link
/// codes (pure techniques, resend on any detected error); FEC corrects
/// what it can and silently passes the rest.
std::vector<SweepPoint> fig05_points(const SimConfig& base);

/// Cthres ablation grid: the probe threshold swept over two orders of
/// magnitude under congested adaptive traffic (the paper's §3.2.2 claim is
/// that latency stays flat while only probe activity changes).
std::vector<SweepPoint> abl_cthres_points(const SimConfig& base);

/// Figures 6/7 grid: the proposed hybrid HBH scheme (SEC in place +
/// retransmission of multi-bit upsets) under the three destination
/// distributions NR / BC / TN x fig_error_rates() at injection 0.25.
/// Figure 6 reads the latency columns, Figure 7 the energy columns; the
/// grids differ only in their labels.
std::vector<SweepPoint> fig06_points(const SimConfig& base);
std::vector<SweepPoint> fig07_points(const SimConfig& base);

/// Figures 8/9 grid: {AD, DT} routing x injection rate 0.1..1.0. Points
/// past saturation never eject the full budget; they are capped in cycles
/// (like the benches) and report steady-state buffer utilizations
/// (completed=false marks them). Figure 8 reads tx_buffer_utilization,
/// Figure 9 rtx_buffer_utilization.
std::vector<SweepPoint> fig08_points(const SimConfig& base);
std::vector<SweepPoint> fig09_points(const SimConfig& base);

/// Figure 13 grid: the three independently-simulated error mechanisms
/// (LINK-HBH / RT-Logic / SA-Logic) x error rate 1e-5..1e-2 (the paper
/// stops a decade earlier than Figures 5-7 here). 13(a) reads the
/// corrected-error counters, 13(b) the energy columns.
std::vector<SweepPoint> fig13a_points(const SimConfig& base);
std::vector<SweepPoint> fig13b_points(const SimConfig& base);

/// Graceful-degradation grid (DESIGN.md §4.9): adaptive routing with
/// deadlock recovery over k = 0..4 statically dead links, staggered so no
/// set partitions the mesh. Reads delivered fraction
/// (messages_ejected / packets_created), latency and the permanent-fault
/// columns (packets_rerouted / unreachable_drops).
std::vector<SweepPoint> fault_degradation_points(const SimConfig& base);

/// Fault-storm scenario (DESIGN.md §4.12): point k kills the first k links
/// of a shared timeline *mid-run* (one every 250 cycles) under adaptive
/// routing with the non-minimal escape tier enabled. Reads the delivered
/// fraction as a degradation curve; the kill set never partitions, so
/// unreachable_drops must end at 0 on every point.
std::vector<SweepPoint> fault_storm_points(const SimConfig& base);

/// Buffer-policy ablation grid (DESIGN.md §4.11): the three input-buffer
/// organizations (private_vc / damq / voq) compared on two axes — a
/// Fig. 6-style error-rate sweep at injection 0.25 under hybrid HBH, and
/// a Fig. 8-style offered-load sweep under deterministic routing. Both
/// halves pin routing=xy so voq is admissible; message counts are reduced
/// to campaign scale.
std::vector<SweepPoint> buffer_ablation_points(const SimConfig& base);

/// Performance-smoke grid for ftnoc_perf / CI: a handful of short,
/// deterministic points spanning the simulator's distinct hot paths
/// (each protection scheme, adaptive routing with deadlock recovery, a
/// 4-stage pipeline). Scale knobs are pinned by the preset itself so two
/// builds' cycles/sec numbers compare like for like.
std::vector<SweepPoint> perf_points(const SimConfig& base);

/// Production-fabric grid: the simulator's hot paths on a 16x16 mesh and
/// torus (256 routers) plus one 32x32 torus point (1024 routers) with a
/// reduced budget. Mesh dimensions and scale knobs are pinned by the
/// preset itself — like `perf` — so the byte stream (and its golden
/// digest) is independent of the caller's base scale.
std::vector<SweepPoint> large_mesh_points(const SimConfig& base);

/// The graceful-degradation grid rebuilt on a 16x16 mesh: k = 0..8 dead
/// links (twice the 8x8 grid's reach — a 256-router fabric absorbs more
/// cuts before the curve moves) with the same staggered, never-
/// partitioning kill sites. Scale knobs follow `base`; the mesh is pinned.
std::vector<SweepPoint> fault_degradation_16_points(const SimConfig& base);

/// The perf grid's hot-path variants re-pinned to a 16x16 mesh with a
/// budget sized for CI: tracks how router-cycle cost scales with fabric
/// size (the 4x4 `perf` grid can't see radix- or diameter-dependent
/// regressions). Gated by the perf ratchet as preset "perf_large".
std::vector<SweepPoint> perf_large_points(const SimConfig& base);

/// Fault-under-real-load grid (DESIGN.md §4.14): a memory-controller
/// hotspot workload (many-to-one bursts over a background all-to-all),
/// pure trace-driven and run to drain, replayed against k = 0..4 dead
/// links with per-link heatmap accounting on. Scale knobs are pinned by
/// the preset; the mesh follows `base`.
std::vector<SweepPoint> workload_hotspot_points(const SimConfig& base);

/// Every preset name preset_points() accepts, in display order (for
/// "unknown preset" diagnostics and --help text).
const std::vector<std::string>& preset_names();

/// preset_names() joined with spaces — the one shared "valid presets:"
/// diagnostic line, so every CLI lists the same (complete) set and a new
/// preset can't be forgotten in one tool's copy of the loop.
std::string preset_names_line();

/// Maps a preset name ("fig05" ... "fig13b", "abl_cthres") to its grid;
/// returns an empty vector for an unknown name (callers should then list
/// preset_names()).
std::vector<SweepPoint> preset_points(const std::string& name,
                                      const SimConfig& base);

}  // namespace ftnoc::sweep

#include "sweep/grid.hpp"

namespace ftnoc::sweep {

std::optional<std::string> parse_axis(const std::string& spec, GridAxis& out) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return "expected key=value[,value...], got: " + spec;
  }
  out.key = spec.substr(0, eq);
  out.values.clear();
  std::size_t start = eq + 1;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    if (end == start) return "empty value in axis: " + spec;
    out.values.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.values.empty()) return "empty value in axis: " + spec;
  return std::nullopt;
}

std::optional<std::string> expand_grid(const SimConfig& base,
                                       const std::vector<GridAxis>& axes,
                                       std::vector<SweepPoint>& out) {
  for (const auto& axis : axes) {
    if (axis.values.empty()) return "axis has no values: " + axis.key;
  }

  // Odometer over the axis value indices, first axis slowest.
  std::vector<std::size_t> cursor(axes.size(), 0);
  for (;;) {
    SweepPoint pt;
    pt.config = base;
    std::string label;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::string& value = axes[a].values[cursor[a]];
      if (auto err = apply_override(pt.config, axes[a].key + "=" + value)) {
        return err;
      }
      if (axes[a].values.size() > 1) {
        if (!label.empty()) label += ' ';
        label += axes[a].key + "=" + value;
      }
    }
    if (auto err = pt.config.validate()) {
      return "invalid point (" + (label.empty() ? "base" : label) +
             "): " + *err;
    }
    pt.label = label.empty() ? "base" : label;
    out.push_back(std::move(pt));

    // Advance the odometer; the last axis spins fastest.
    std::size_t a = axes.size();
    for (;;) {
      if (a == 0) return std::nullopt;  // Rolled over: product complete.
      --a;
      if (++cursor[a] < axes[a].values.size()) break;
      cursor[a] = 0;
    }
  }
}

}  // namespace ftnoc::sweep

#include "noc/arbiter.hpp"

#include "common/check.hpp"

namespace ftnoc {

RoundRobinArbiter::RoundRobinArbiter(int num_requesters)
    : n_(num_requesters) {
  FTNOC_CHECK(num_requesters >= 1 && num_requesters <= 32);
}

int RoundRobinArbiter::pick(std::uint32_t requests) const {
  if (requests == 0) return -1;
  // Scan from last_grant_+1 wrapping around: oldest-priority-first.
  for (int off = 1; off <= n_; ++off) {
    const int i = (last_grant_ + off) % n_;
    if (requests & (1u << i)) return i;
  }
  return -1;
}

int RoundRobinArbiter::arbitrate(std::uint32_t requests) {
  const int g = pick(requests);
  if (g >= 0) last_grant_ = g;
  return g;
}

int RoundRobinArbiter::peek(std::uint32_t requests) const {
  return pick(requests);
}

ArbiterBank::ArbiterBank(int num_arbiters, int num_requesters) {
  FTNOC_CHECK(num_arbiters >= 1);
  arbiters_.reserve(static_cast<std::size_t>(num_arbiters));
  for (int i = 0; i < num_arbiters; ++i) {
    arbiters_.emplace_back(num_requesters);
  }
}

}  // namespace ftnoc

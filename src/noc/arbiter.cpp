#include "noc/arbiter.hpp"

#include "common/check.hpp"

namespace ftnoc {

RoundRobinArbiter::RoundRobinArbiter(int num_requesters)
    : n_(num_requesters), mask_(0) {
  FTNOC_CHECK(num_requesters >= 1 && num_requesters <= 32);
  mask_ = num_requesters == 32 ? ~0u : (1u << num_requesters) - 1u;
}

ArbiterBank::ArbiterBank(int num_arbiters, int num_requesters) {
  FTNOC_CHECK(num_arbiters >= 1);
  arbiters_.reserve(static_cast<std::size_t>(num_arbiters));
  for (int i = 0; i < num_arbiters; ++i) {
    arbiters_.emplace_back(num_requesters);
  }
}

}  // namespace ftnoc

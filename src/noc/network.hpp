#pragma once
// The assembled on-chip network: routers, inter-router wires, processing
// elements (traffic sources/sinks), the shared fault injector and energy
// meter, and the end-to-end (E2E) retransmission machinery that lives at
// the network edge.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/fault_injector.hpp"
#include "core/flit.hpp"
#include "core/invariants.hpp"
#include "noc/router.hpp"
#include "noc/router_iface.hpp"
#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "noc/trace.hpp"
#include "noc/traffic.hpp"
#include "power/energy_model.hpp"

namespace ftnoc {

/// A processing element: generates packets, injects flits into its router's
/// local port under credit flow control, and (for E2E) buffers sent packets
/// until the destination acknowledges them.
class ProcessingElement {
 public:
  ProcessingElement(NodeId self, const SimConfig& cfg, const Topology& topo,
                    Wire* to_router, StatsCollector* stats, Rng rng);

  /// One cycle: read credits, maybe generate a packet, move packets into
  /// free local-VC lanes, send at most one flit. `router_in_recovery`
  /// back-pressures *new* packets while the attached router runs deadlock
  /// recovery ("no new packets are allowed to enter the transmission
  /// buffers involved in the deadlock recovery", §3.2.1); flits of packets
  /// already in flight keep streaming. Returns true when a flit was driven
  /// onto the PE-to-router wire — the event kernel wakes the router and
  /// marks the wire live.
  bool step(Cycle now, PacketId& next_packet_id, bool router_in_recovery);

  /// Queues a pre-built packet for injection (tests / examples). Front
  /// insertion is used by the E2E retransmission path.
  void enqueue_packet(std::vector<Flit> flits, bool front = false);

  /// E2E: hold a clean copy of the packet until acknowledged.
  void hold_for_e2e(const std::vector<Flit>& flits);
  /// E2E: destination acknowledged — drop the copy.
  void e2e_ack(PacketId pid);
  /// E2E: destination reported corruption — retransmit a clean copy.
  void e2e_nack(PacketId pid);

  std::size_t pending_packets() const { return pending_.size(); }
  std::size_t e2e_buffer_occupancy() const { return e2e_buffer_.size(); }

  /// Free injection credits of one local-VC lane (credit-conservation walk).
  int lane_credits(VcId v) const { return lanes_.at(v).credits; }

  /// Architectural-state hash (lock-step differential comparison).
  std::uint64_t state_digest() const;

 private:
  struct Lane {
    bool busy = false;
    int credits;
    std::deque<Flit> flits;
  };

  NodeId self_;
  const SimConfig& cfg_;
  Wire* wire_;
  StatsCollector* stats_;
  std::optional<TrafficSource> source_;
  std::deque<std::vector<Flit>> pending_;
  std::vector<Lane> lanes_;
  int send_rotation_ = 0;
  std::unordered_map<PacketId, std::vector<Flit>> e2e_buffer_;
};

/// Observer invoked for every delivered (clean) message:
/// (dest, tail flit, delivery cycle).
using DeliveryListener =
    std::function<void(NodeId, const Flit&, Cycle)>;

class Network {
 public:
  explicit Network(const SimConfig& cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Advances the whole network one clock cycle.
  void step();

  Cycle now() const { return now_; }
  const Topology& topology() const { return topo_; }
  const SimConfig& config() const { return cfg_; }

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }
  power::EnergyMeter& meter() { return meter_; }
  FaultInjector& faults() { return faults_; }

  /// The concrete optimized router (tests poking kernel internals). Only
  /// legal when the network was not built with `use_reference_router`.
  Router& router(NodeId n);
  const Router& router(NodeId n) const;
  /// Implementation-agnostic view (fuzz harness, generic instrumentation).
  RouterIface& router_base(NodeId n) { return *routers_.at(n); }
  const RouterIface& router_base(NodeId n) const { return *routers_.at(n); }
  ProcessingElement& pe(NodeId n) { return *pes_.at(n); }

  /// Null unless the config asked for invariant checking (and the hooks
  /// were compiled in).
  InvariantMonitor* monitor() { return monitor_.get(); }

  /// Architectural-state hash over routers, wires and PEs — the lock-step
  /// comparison point of the differential fuzz harness.
  std::uint64_t state_digest() const;

  /// Builds and queues a packet for injection at `src` (tests/examples).
  PacketId inject_packet(NodeId src, NodeId dest, int length);

  /// Schedules a packet trace for replay: each record is injected at its
  /// cycle (on top of any synthetic sources; set injection_rate = 0 for a
  /// pure trace-driven run). Records must be sorted by cycle and at or
  /// after the current cycle.
  void load_trace(std::vector<TraceRecord> records);

  /// True when a trace/workload was loaded (possibly already drained).
  bool trace_loaded() const { return !trace_.empty(); }
  /// True when every loaded record has been released (or dropped).
  bool trace_drained() const { return trace_next_ >= trace_.size(); }

  /// Per-directed-link counters (cfg.link_stats only; empty otherwise).
  /// Index = node * 4 + direction, matching link_wires_.
  const std::vector<std::uint64_t>& link_fwd_counts() const {
    return link_fwd_;
  }
  const std::vector<std::uint64_t>& link_stall_counts() const {
    return link_stall_;
  }

  void set_delivery_listener(DeliveryListener fn) {
    delivery_listener_ = std::move(fn);
  }

  /// Network-wide buffer occupancy fractions this instant (Figures 8/9).
  double tx_buffer_fraction() const;
  double rtx_buffer_fraction() const;

 private:
  void on_eject(NodeId dest, const Flit& f, Cycle now);
  void fire_due_events();
  /// Releases every trace record due this cycle into its source PE's
  /// queue. Records whose source router is hard-dead are counted as
  /// dead-source drops instead of being queued at a PE that can never
  /// drain (the packet would otherwise silently wedge the drain
  /// condition). Shared by both kernels so the schedules coincide.
  void release_due_trace();
  /// Accumulates the per-link forwarded/stalled counters from the settled
  /// post-tick wire state (cfg_.link_stats only, measurement window only).
  /// Reading architectural state that is byte-identical across kernels and
  /// router implementations keeps the counters identical too.
  void accumulate_link_stats();
  int hop_distance(NodeId a, NodeId b) const;
  /// End-of-cycle structural walks: per-router local checks, the
  /// network-wide flit-conservation ledger and the per-link credit sums.
  void run_invariant_walks();

  // --- Event-queue kernel (DESIGN.md §4.10) -------------------------------
  /// The classic kernel: step every live PE, every router and tick every
  /// wire each cycle. Always used for reference-router networks and under
  /// the `kernel=scan` override.
  void step_scan();
  /// The event kernel: routers are stepped only when scheduled (wire
  /// traffic written toward them last cycle, a self-requested re-tick, or
  /// an exact timer); only live wires are ticked. Byte-identical to
  /// step_scan() — the golden digests and the differential fuzzer pin it.
  void step_event();
  /// Schedules router `n` to be stepped at cycle `due` (> now_). Within
  /// the wheel horizon this sets a bit in the due slot's node mask;
  /// farther timers spill to the sorted overflow map.
  void schedule(NodeId n, Cycle due);
  /// Adds a wire to the tick list (dedup'd); it stays until it settles.
  void mark_wire_live(std::uint32_t wid);
  /// Kills link (`n`, `dir`) unless the kill would partition the live
  /// mesh: fails it in the topology (bumping the route epoch), counts it
  /// (escalation or storm), and starts draining both endpoint routers.
  /// Same-cycle kills compose sequentially — the topology already holds
  /// every previously accepted kill when the next veto is evaluated, so a
  /// batch of requests that are individually safe but jointly partitioning
  /// is trimmed to a safe prefix (tests/test_fault_model.cpp pins this).
  /// Returns whether the kill was accepted.
  bool try_kill_link(NodeId n, Direction dir, bool storm);
  /// Fires every cfg_.storm_kills entry due by now_ (single cursor; both
  /// kernels call this every cycle, so the timelines coincide exactly).
  void fire_storm_kills();
  std::uint32_t local_wire_id(NodeId n) const {
    return static_cast<std::uint32_t>(link_wires_.size()) +
           static_cast<std::uint32_t>(n);
  }
  Wire* wire_by_id(std::uint32_t wid) {
    const auto nlinks = static_cast<std::uint32_t>(link_wires_.size());
    return wid < nlinks ? link_wires_[wid].get()
                        : local_wires_[wid - nlinks].get();
  }

  struct EdgeEvent {
    NodeId target;      ///< PE that receives the control message (source).
    PacketId pid;
    bool is_nack;       ///< NACK = retransmit request; otherwise ACK.
  };

  SimConfig cfg_;
  Topology topo_;
  StatsCollector stats_;
  power::EnergyMeter meter_;
  Rng root_rng_;
  FaultInjector faults_;
  Cycle now_ = 0;
  PacketId next_packet_id_ = 1;

  std::vector<std::unique_ptr<RouterIface>> routers_;
  std::vector<std::unique_ptr<ProcessingElement>> pes_;
  std::unique_ptr<InvariantMonitor> monitor_;
  // Directed inter-router wires: index = node * 4 + direction.
  std::vector<std::unique_ptr<Wire>> link_wires_;
  // PE -> router wires (local injection channel), one per node.
  std::vector<std::unique_ptr<Wire>> local_wires_;

  // Per-destination, per-packet delivery record maintained between head
  // and tail ejection: corruption flag + flit count (a lost NACK or
  // dropped flit shows up as an incomplete message).
  struct EjectRecord {
    bool bad = false;
    int flits = 0;
  };
  std::vector<std::unordered_map<PacketId, EjectRecord>> eject_state_;

  // Delayed E2E control messages (ACK/NACK back to the source PE).
  std::multimap<Cycle, EdgeEvent> edge_events_;

  // Trace replay: sorted records not yet injected.
  std::vector<TraceRecord> trace_;
  std::size_t trace_next_ = 0;

  // Per-link analytics (cfg.link_stats): flits forwarded / stall cycles
  // per directed wire, and the receiver node of each wire (-1 = no wire).
  std::vector<std::uint64_t> link_fwd_;
  std::vector<std::uint64_t> link_stall_;
  std::vector<std::int32_t> link_stats_nbr_;

  // Fault-storm timeline (sorted by cycle; validate() enforces): next
  // cfg_.storm_kills entry to fire. A vetoed kill is skipped, not retried.
  std::size_t next_storm_kill_ = 0;

  DeliveryListener delivery_listener_;
  /// Chip-wide wired-OR "deadlock recovery in progress" line (sampled at
  /// the end of each cycle; gates new-packet injection the next cycle).
  bool recovery_line_ = false;

  // --- Event-queue kernel state -------------------------------------------
  /// True when this network runs the per-cycle full scan (reference
  /// routers, or the `kernel=scan` override).
  bool scan_kernel_ = false;
  /// Devirtualized view of routers_ for the event kernel's hot loop
  /// (only populated for optimized-router networks).
  std::vector<Router*> fast_routers_;
  /// Geometric neighbour of node i in direction d at [i*4+d], -1 at a mesh
  /// edge. Constant after construction (link death does not move geometry).
  std::vector<std::int32_t> nbr_gid_;
  static constexpr std::size_t kWheelSize = 256;  // Power of two.
  /// Bucket wheel: slot (cycle & 255) holds a node bitmask of routers due
  /// that cycle. Spurious entries are harmless (a quiescent step is a
  /// pinned no-op), so duplicate schedules need no dedup.
  std::array<std::vector<std::uint64_t>, kWheelSize> wheel_;
  /// Timers beyond the wheel horizon, spilled back in as now_ approaches.
  std::map<Cycle, std::vector<NodeId>> far_due_;
  /// Routers stepped this cycle, ascending — feeds the escalation poll and
  /// the recovery-line OR (both order- or membership-sensitive).
  std::vector<NodeId> stepped_;
  /// Wires with signals in flight: id < link_wires_.size() is a link wire,
  /// else a local (PE) wire. Mask is the dedup bitset for the list.
  std::vector<std::uint32_t> live_wires_;
  std::vector<std::uint64_t> live_wire_mask_;
  /// Incrementally maintained buffer-occupancy totals (the sampling scan
  /// only stepped routers can change their term). Slot totals are constant
  /// after construction and cached on first use.
  std::vector<int> tx_occ_cache_;
  std::vector<int> rtx_occ_cache_;
  long long tx_occ_total_ = 0;
  long long rtx_occ_total_ = 0;
  long long tx_slots_total_ = -1;
  long long rtx_slots_total_ = -1;
};

}  // namespace ftnoc

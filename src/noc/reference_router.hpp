#pragma once
// The allocation-happy reference router: a deliberately simple, from-scratch
// implementation of exactly the same pipeline, fault-tolerance and deadlock
// machinery as Router, used as the oracle of the differential fuzz harness
// (tools/ftnoc_fuzz).
//
// What it deliberately does NOT have is every piece of derived state PR 3's
// optimized cycle kernel introduced:
//   * no in_work_/out_work_ bitmasks — every phase is a full ascending scan
//     over all (port, VC) pairs with the eligibility predicates inlined;
//   * no tx_occ_ running counter, no staged_count_, no slot caches —
//     occupancies are recounted on demand;
//   * no quiescent idle fast path — phases always run (on a truly idle
//     router they are provable no-ops, which is exactly the property the
//     differential comparison verifies);
//   * plain std::deque/std::vector/std::map instead of RingQueue/InlineVec.
//
// Because the optimized kernel iterates work-mask bits in ascending gid
// order — the same order as these full scans — the two implementations make
// identical arbiter, RNG and energy-charge sequences whenever the masks are
// correct. Any disagreement in per-cycle state digests is a bug in one of
// them.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/allocation_comparator.hpp"
#include "core/buffer_policy.hpp"
#include "core/deadlock.hpp"
#include "core/error_check_unit.hpp"
#include "core/fault_injector.hpp"
#include "core/flit.hpp"
#include "core/invariants.hpp"
#include "core/retransmission_buffer.hpp"
#include "noc/arbiter.hpp"
#include "noc/router_iface.hpp"
#include "noc/routing.hpp"
#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "power/energy_model.hpp"

namespace ftnoc {

class ReferenceRouter final : public RouterIface {
 public:
  ReferenceRouter(NodeId id, const SimConfig& cfg, const Topology& topo,
                  FaultInjector* faults, power::EnergyMeter* meter,
                  StatsCollector* stats);

  void connect(PortId p, Wire* in, Wire* out) override;
  void set_eject_fn(EjectFn fn) override { eject_ = std::move(fn); }
  void fail_link(PortId p) override;
  void step(Cycle now) override;

  NodeId id() const override { return id_; }

  int tx_buffer_occupancy() const override;
  int tx_buffer_slots() const override;
  int rtx_buffer_occupancy() const override;
  int rtx_buffer_slots() const override;
  bool in_recovery() const override { return agent_.in_recovery(); }
  int input_buffer_size(PortId p, VcId v) const override;
  std::string debug_dump(Cycle now) const override;
  std::uint64_t state_digest() const override;

  void set_monitor(InvariantMonitor* mon) override { mon_ = mon; }
  long long live_flit_count() const override;
  int held_credits(PortId p, VcId v) const override;
  int credit_budget(PortId p, VcId v) const override;

  bool link_failed(PortId p) const override { return link_dead_[p]; }
  std::uint8_t take_escalation_requests() override {
    const std::uint8_t r = escalation_requests_;
    escalation_requests_ = 0;
    return r;
  }
  void begin_link_drain(PortId p, Cycle now) override;
  void request_escalation(PortId p) override {
    escalation_requests_ |= port_bit(p);
  }

 private:
  enum class VcState : std::uint8_t {
    kRouting,
    kVaWait,
    kActive,
    kVaReserved,
    kDraining,
  };

  struct InputVc {
    std::deque<Flit> buf;
    VcState state = VcState::kRouting;
    PortMask candidates = 0;
    PortId out_port = kInvalidPort;
    VcId out_vc = kInvalidVc;
    Cycle last_advance = 0;
    Cycle stall_until = 0;
    Cycle state_since = 0;
  };

  struct OutputVc {
    bool allocated = false;
    std::uint16_t owner_gid = 0;
    PacketId owner_pid = 0;
    bool tail_sent = false;
    int credits = 0;
    std::optional<RetransmissionBuffer> rtx;
    bool has_waiter = false;
    std::uint16_t waiter_gid = 0;
    PacketId waiter_pid = 0;
  };

  struct PendingNack {
    PortId port;
    VcId vc;
    Cycle send_at;
  };

  struct OutboxItem {
    PortId port;
    bool is_probe;
    ProbeSignal probe;
    ActivationSignal activation;
  };

  struct ProbeRoute {
    PortId port = kInvalidPort;
    Cycle sent_at = 0;
  };

  struct StagedFlit {
    Flit wire;
    Flit stored;
    VcId vc;
  };

  void phase_maintenance(Cycle now);
  void phase_receive(Cycle now);
  void phase_replay_and_switch(Cycle now);
  void phase_va(Cycle now);
  void phase_rt(Cycle now);
  void phase_deadlock(Cycle now);

  InputVc& ivc(PortId p, VcId v) { return inputs_[gid(p, v)]; }
  const InputVc& ivc(PortId p, VcId v) const { return inputs_[gid(p, v)]; }
  OutputVc& ovc(PortId p, VcId v) { return outputs_[gid(p, v)]; }
  const OutputVc& ovc(PortId p, VcId v) const { return outputs_[gid(p, v)]; }
  int gid(PortId p, VcId v) const { return p * num_vcs_ + v; }

  bool port_has_neighbor(PortId p) const;
  bool port_usable(PortId p) const;
  /// Under damq, whether output VC (`p`, `v`) can source a credit for one
  /// more flit: a free reserved credit or a free slot in the port's shared
  /// region (DESIGN.md §4.11). Under other policies, plain credits > 0.
  bool can_consume_credit(PortId p, VcId v) const {
    return ovc(p, v).credits > 0 || (damq_ && shared_credits_[p] > 0);
  }
  /// The VC class a VOQ packet is pinned to, or -1 outside voq.
  int voq_lane(const Flit& f) const {
    return voq_ ? voq_class(f.dest, cfg_.mesh_width, num_vcs_) : -1;
  }
  bool port_allocatable(PortId p) const {
    return port_usable(p) && (draining_ & port_bit(p)) == 0;
  }
  void accept_flit(PortId p, Flit f, Cycle now);
  void handle_incoming_flit(PortId p, Flit f, Cycle now);
  void handle_probe(PortId p, const ProbeSignal& probe, Cycle now);
  void handle_activation(const ActivationSignal& act, Cycle now);
  void transmit(PortId out_port, VcId out_vc, Flit f, Cycle now,
                bool consume_credit, bool corrupt_on_wire = false);
  void finalize_transmission(PortId o, VcId v, const Flit& f, Cycle now);
  void eject(const Flit& f, PortId in_port, VcId in_vc, Cycle now);
  void send_credit(PortId p, VcId v);
  void release_input_after_tail(PortId p, VcId v, Cycle now);
  void maybe_release_outputs(Cycle now);
  /// Online reconfiguration (DESIGN.md §4.12), mirrored from Router.
  void rehome_stale_routes(Cycle now);
  bool vc_blocked(const InputVc& vc, Cycle now) const;
  std::optional<std::pair<PortId, VcId>> resolve_chain(const InputVc& vc) const;
  void run_ac_on_va(std::size_t new_entry, Cycle now);
  void queue_control(PortId port, const ProbeSignal& p);
  void queue_control(PortId port, const ActivationSignal& a);
  void flush_outbox();
  void charge(power::EnergyEvent e, std::uint64_t times = 1);
  std::optional<std::pair<PortId, VcId>> pick_va_request(InputVc& vc,
                                                         PortId in_port,
                                                         VcId in_vc,
                                                         int rotation);
  PortMask apply_rt_fault(InputVc& vc, PortMask correct, Cycle now);

  NodeId id_;
  const SimConfig& cfg_;
  const Topology& topo_;
  int num_vcs_;
  int num_ports_ = kNumDirections;

  FaultInjector* faults_;
  power::EnergyMeter* meter_;
  StatsCollector* stats_;
  EjectFn eject_;
  InvariantMonitor* mon_ = nullptr;

  std::array<Wire*, kNumDirections> in_wires_{};
  std::array<Wire*, kNumDirections> out_wires_{};

  std::vector<InputVc> inputs_;
  std::vector<OutputVc> outputs_;
  std::vector<Cycle> drop_until_;
  // DAMQ sender-side shared-credit state (DESIGN.md §4.11). Zero-sized
  // semantics under other policies: shared_credits_ stays all-zero and
  // can_consume_credit() degenerates to credits > 0.
  bool damq_ = false;
  bool voq_ = false;
  std::vector<int> shared_credits_;  ///< Per port: free shared credits.
  std::vector<int> shared_held_;     ///< Per output gid: borrowed shared.
  ErrorCheckUnit checker_;
  AllocationComparator ac_;
  DeadlockAgent agent_;

  ArbiterBank va_arbs_;
  ArbiterBank sa_in_arbs_;
  ArbiterBank sa_out_arbs_;
  ArbiterBank replay_arbs_;
  std::vector<int> va_rotation_;

  std::array<bool, kNumDirections> port_busy_{};
  std::array<bool, kNumDirections> link_dead_{};

  std::uint8_t draining_ = 0;
  std::array<std::uint32_t, kNumDirections> uncorrectable_streak_{};
  std::uint8_t escalation_requests_ = 0;
  /// Last Topology::route_epoch() reconciled (mirrors Router; not part of
  /// state_digest for the same observability reasons).
  std::uint32_t route_epoch_seen_ = 0;

  std::array<std::optional<StagedFlit>, kNumDirections> staged_;
  std::vector<PendingNack> pending_nacks_;
  std::vector<OutboxItem> outbox_;
  std::map<std::uint32_t, ProbeRoute> own_probe_route_;
  bool progress_this_cycle_ = false;
  std::uint32_t probe_ttl_ = 0;
};

}  // namespace ftnoc

#pragma once
// 2-D mesh / torus topology: node numbering, coordinates and neighbour
// resolution. The paper evaluates an 8x8 MESH (§2.2); the torus option
// exists because the tornado pattern (borrowed from torus studies) and the
// ablation benches benefit from it.
//
// The topology also carries the permanent-fault state of the fabric: a
// link/router fault mask (static dead_links/dead_routers, plus links the
// network escalates at runtime after repeated uncorrectable errors) and a
// BFS distance table over the live links that route() consults to steer
// around faults. Fault-free topologies keep the mask empty and pay
// nothing.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ftnoc {

class Topology {
 public:
  Topology(int width, int height, bool torus);

  int width() const { return width_; }
  int height() const { return height_; }
  bool torus() const { return torus_; }
  int num_nodes() const { return width_ * height_; }

  Coord coord_of(NodeId n) const;
  NodeId node_at(Coord c) const;
  bool contains(Coord c) const;

  /// The neighbour reached by leaving `n` through `d`, or nullopt at a mesh
  /// edge. kLocal never has a neighbour. Ignores the fault mask (the
  /// physical channel still exists; it just must not be used).
  std::optional<NodeId> neighbor(NodeId n, Direction d) const;

  /// True if `d` is a usable network direction at node `n`.
  bool has_neighbor(NodeId n, Direction d) const {
    return neighbor(n, d).has_value();
  }

  // --- Permanent-fault mask -----------------------------------------------
  /// Marks both directions of the physical channel leaving `n` through `d`
  /// as hard-dead and advances the route epoch; distance rows rebuild
  /// lazily on the next query that touches them.
  void fail_link(NodeId n, Direction d);
  /// Marks router `n` dead: all four of its links fail and it stops being
  /// a legal destination (fault_distance to it becomes kUnreachable).
  void fail_router(NodeId n);
  /// Any link or router faulted so far (static or escalated).
  bool has_faults() const { return has_faults_; }
  /// True if `d` leads to an existing neighbour over a non-faulted link.
  bool link_alive(NodeId n, Direction d) const;
  bool router_alive(NodeId n) const;
  /// Would additionally failing this link disconnect any pair of still-live
  /// routers? The network consults this before escalating a flaky link so
  /// graceful degradation never partitions the fabric.
  bool would_partition(NodeId n, Direction d) const;

  /// Minimum hop count from `from` to `to` over live links only, or
  /// kUnreachable. Exact (BFS) — route() picks ports that strictly decrease
  /// it, which guarantees delivery between connected pairs.
  std::uint16_t fault_distance(NodeId from, NodeId to) const;
  static constexpr std::uint16_t kUnreachable = 0xFFFF;

  /// Route-table version: bumped by every fail_link()/fail_router().
  /// Routers compare it against the epoch their in-flight routing
  /// decisions were made under and re-home kVaWait candidate sets when it
  /// moves (DESIGN.md §4.12) instead of steering packets into a region
  /// that just went dark.
  std::uint32_t route_epoch() const { return epoch_; }

 private:
  /// Lazily (re)builds the single-destination BFS row for `dest` if its
  /// stamp is older than the current epoch. Replaces the all-pairs rebuild
  /// that used to run on *every* escalation: a fault storm of S kills on an
  /// N-node mesh paid O(S * N^2) on the hot path; now each kill is O(1) and
  /// only rows that routing actually consults are recomputed, at most once
  /// per epoch each. Row values are identical to the eager build (BFS
  /// levels are queue-order independent), which the fault_degradation
  /// golden digest pins.
  void ensure_row(NodeId dest) const;
  bool dead_port(NodeId n, Direction d) const;

  int width_;
  int height_;
  bool torus_;
  bool has_faults_ = false;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint8_t> dead_ports_;    ///< Per node, bit per direction.
  std::vector<std::uint8_t> dead_routers_;  ///< Per node.
  /// dist_[dest * num_nodes + cur]; allocated on the first fault, each row
  /// filled on demand. Mutable: rows are a cache of pure-function values.
  mutable std::vector<std::uint16_t> dist_;
  /// Epoch each dist_ row was built at; 0 = never (epoch_ >= 1 once any
  /// fault exists, so a zero stamp is always stale).
  mutable std::vector<std::uint32_t> row_stamp_;
};

}  // namespace ftnoc

#pragma once
// 2-D mesh / torus topology: node numbering, coordinates and neighbour
// resolution. The paper evaluates an 8x8 MESH (§2.2); the torus option
// exists because the tornado pattern (borrowed from torus studies) and the
// ablation benches benefit from it.

#include <optional>

#include "common/types.hpp"

namespace ftnoc {

class Topology {
 public:
  Topology(int width, int height, bool torus);

  int width() const { return width_; }
  int height() const { return height_; }
  bool torus() const { return torus_; }
  int num_nodes() const { return width_ * height_; }

  Coord coord_of(NodeId n) const;
  NodeId node_at(Coord c) const;
  bool contains(Coord c) const;

  /// The neighbour reached by leaving `n` through `d`, or nullopt at a mesh
  /// edge. kLocal never has a neighbour.
  std::optional<NodeId> neighbor(NodeId n, Direction d) const;

  /// True if `d` is a usable network direction at node `n`.
  bool has_neighbor(NodeId n, Direction d) const {
    return neighbor(n, d).has_value();
  }

 private:
  int width_;
  int height_;
  bool torus_;
};

}  // namespace ftnoc

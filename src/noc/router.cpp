#include "noc/router.hpp"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "core/logic_error_model.hpp"
#include "noc/digest.hpp"


namespace ftnoc {
namespace {
constexpr PortId kLocalPort = static_cast<PortId>(Direction::kLocal);

// Formats a deadlock-protocol trace line. Only ever called inside the
// FTNOC_TRACE guard, so the formatting work vanishes when tracing is off.
std::string trace_fmt(const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}
}

Router::Router(NodeId id, const SimConfig& cfg, const Topology& topo,
               FaultInjector* faults, power::EnergyMeter* meter,
               StatsCollector* stats)
    : id_(id),
      cfg_(cfg),
      topo_(topo),
      num_vcs_(cfg.num_vcs),
      faults_(faults),
      meter_(meter),
      stats_(stats),
      ac_(kNumDirections, cfg.num_vcs),
      agent_(id, cfg.deadlock.probe_threshold, cfg.deadlock.probe_backoff,
             cfg.deadlock.probe_timeout),
      va_arbs_(kNumDirections * cfg.num_vcs, kNumDirections * cfg.num_vcs),
      sa_in_arbs_(kNumDirections, cfg.num_vcs),
      sa_out_arbs_(kNumDirections, kNumDirections),
      replay_arbs_(kNumDirections, cfg.num_vcs) {
  const int pv = num_ports_ * num_vcs_;
  FTNOC_CHECK(pv <= 32);  // Work masks are 32-bit (5 ports x <= 6 VCs).
  const std::size_t depth = static_cast<std::size_t>(cfg_.vc_buffer_depth);
  in_flit_slab_.resize(static_cast<std::size_t>(pv) * depth);
  inputs_.resize(static_cast<std::size_t>(pv));
  for (int g = 0; g < pv; ++g) {
    inputs_[static_cast<std::size_t>(g)].buf.bind(
        in_flit_slab_.data() + static_cast<std::size_t>(g) * depth,
        static_cast<std::uint16_t>(depth));
  }
  outputs_.resize(static_cast<std::size_t>(pv));
  out_rtx_.resize(static_cast<std::size_t>(pv));
  rtx_retire_at_.assign(static_cast<std::size_t>(pv), 0);
  drop_until_.assign(static_cast<std::size_t>(pv), 0);
  va_rotation_.assign(static_cast<std::size_t>(pv), 0);
  va_reqs_.assign(static_cast<std::size_t>(pv), 0);
  va_want_.assign(static_cast<std::size_t>(pv),
                  {kInvalidPort, kInvalidVc});

  // Retransmission buffers exist on network output VCs when the link
  // protection scheme is HBH or when deadlock recovery (which reuses them)
  // is enabled — mirroring the paper's observation that forgoing deadlock
  // recovery support needs only the 3-deep link-error buffers.
  damq_ = cfg_.buffer_policy == BufferPolicyKind::kDamq;
  voq_ = cfg_.buffer_policy == BufferPolicyKind::kVoq;
  shared_credits_.assign(static_cast<std::size_t>(num_ports_), 0);
  shared_held_.assign(static_cast<std::size_t>(pv), 0);
  if (damq_) {
    // Link input ports store through the per-port shared pool; the local
    // injection port keeps its private slab rings (DESIGN.md §4.11).
    for (PortId p = 0; p < num_ports_; ++p) {
      if (p == kLocalPort) continue;
      in_pools_[p].reset(num_vcs_, cfg_.vc_buffer_depth,
                         cfg_.damq_reserve_slots);
      for (VcId v = 0; v < num_vcs_; ++v) {
        ivc(p, v).buf.use_pool(&in_pools_[p], v);
      }
    }
  }

  const bool use_rtx =
      cfg_.protection == LinkProtection::kHbh || cfg_.deadlock.enable_recovery;
  for (PortId p = 0; p < num_ports_; ++p) {
    if (damq_ && p != kLocalPort) {
      shared_credits_[p] =
          num_vcs_ * (cfg_.vc_buffer_depth - cfg_.damq_reserve_slots);
    }
    for (VcId v = 0; v < num_vcs_; ++v) {
      auto& out = ovc(p, v);
      if (p == kLocalPort) {
        // Ejection channel: the PE always sinks flits; model as unbounded
        // credit and no retransmission buffer.
        out.credits = 1 << 28;
      } else {
        out.credits =
            damq_ ? cfg_.damq_reserve_slots : cfg_.vc_buffer_depth;
        if (use_rtx) orx(gid(p, v)).emplace(cfg_.retransmission_depth);
      }
    }
  }
  probe_ttl_ = cfg_.deadlock.probe_ttl
                   ? cfg_.deadlock.probe_ttl
                   : static_cast<std::uint32_t>(4 * topo_.num_nodes());
  f_rt_live_ = faults_ != nullptr && cfg_.faults.rt_error_rate > 0.0;
  f_va_live_ = faults_ != nullptr && cfg_.faults.va_error_rate > 0.0;
  f_sa_live_ = faults_ != nullptr && cfg_.faults.sa_error_rate > 0.0;
  f_rtx_live_ = faults_ != nullptr && cfg_.faults.rtx_error_rate > 0.0;
  f_hs_live_ = faults_ != nullptr && cfg_.faults.handshake_error_rate > 0.0;
}

void Router::connect(PortId p, Wire* in, Wire* out) {
  FTNOC_CHECK(p < num_ports_);
  in_wires_[p] = in;
  out_wires_[p] = out;
  if (in != nullptr) in->fwd_sig = &in_sig_[p];
  if (out != nullptr) out->back_sig = &out_sig_[p];
  tx_slots_cache_ = rtx_slots_cache_ = -1;
}

bool Router::port_has_neighbor(PortId p) const {
  if (p == kLocalPort) return false;
  return topo_.has_neighbor(id_, static_cast<Direction>(p));
}

bool Router::port_usable(PortId p) const {
  return port_has_neighbor(p) && !link_dead_[p];
}

void Router::fail_link(PortId p) {
  FTNOC_CHECK(p < num_ports_ && p != kLocalPort);
  link_dead_[p] = true;
}

void Router::begin_link_drain(PortId p, Cycle now) {
  FTNOC_CHECK(p < num_ports_ && p != kLocalPort);
  if (link_dead_[p] || (draining_ & port_bit(p)) != 0) return;
  draining_ |= port_bit(p);
  uncorrectable_streak_[p] = 0;
  escalation_requests_ &= static_cast<std::uint8_t>(~port_bit(p));
  // Re-home heads still waiting for an output VC on the dying port: strip
  // it from their candidate sets; a head left with no candidates goes back
  // to RT, where the (now fault-aware) route detours it. Established
  // wormholes, replays and registered waiters keep the port until their
  // tails retire — the drain completes only once they have.
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const int g = std::countr_zero(m);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.state != VcState::kVaWait) continue;
    if (!mask_has(vc.candidates, p)) continue;
    vc.candidates &= static_cast<PortMask>(~port_bit(p));
    if (vc.candidates == 0) {
      vc.state = VcState::kRouting;
      vc.state_since = now;
      update_input_work(g);
      if (stats_) stats_->on_packet_rerouted();
    }
  }
  // A packet already *holding* this port as a registered deadlock waiter
  // would pin out.has_waiter — and with it out_work_ — until its owner
  // retires, and the owner may itself be wedged behind the dying link: the
  // drain then never completes and the packet is stranded in kVaReserved.
  // A waiter none of whose flits have been absorbed into the barrel is a
  // pure reservation: cancel it and re-home the packet exactly like the
  // kVaWait case above. A waiter with absorbed flits is a committed
  // stream; it keeps the port until replayed, like an in-flight wormhole.
  // (The strand_waiter mutation reverts this fix for the fuzz self-test.)
  if (cfg_.test_mutation != "strand_waiter") {
    for (int v = 0; v < num_vcs_; ++v) {
      const int og = gid(p, static_cast<VcId>(v));
      auto& out = outputs_[static_cast<std::size_t>(og)];
      if (!out.has_waiter) continue;
      const auto& rtx = out_rtx_[static_cast<std::size_t>(og)];
      if (rtx && rtx->contains_packet(out.waiter_pid)) continue;
      const int wg = out.waiter_gid;
      out.has_waiter = false;
      update_output_work(og);
      auto& wvc = inputs_[static_cast<std::size_t>(wg)];
      if (wvc.state == VcState::kVaReserved && wvc.out_port == p &&
          wvc.out_vc == static_cast<VcId>(v)) {
        wvc.state = VcState::kRouting;
        wvc.candidates = 0;
        wvc.out_port = kInvalidPort;
        wvc.out_vc = kInvalidVc;
        wvc.state_since = now;
        update_input_work(wg);
        if (stats_) stats_->on_packet_rerouted();
      }
    }
  }
}

void Router::rehome_stale_routes(Cycle now) {
  const std::uint32_t e = topo_.route_epoch();
  if (e == route_epoch_seen_) return;
  route_epoch_seen_ = e;
  // Every kVaWait head re-routes against the rebuilt distance tables
  // instead of allocating on a stale candidate set. Sets that merely
  // shift keep waiting (the VA re-filters them next cycle); a set that
  // collapses to empty goes back to kRouting, where phase_rt drops the
  // packet with the usual unreachable accounting. kVaWait implies the
  // in_work_ bit, which both kernels treat as a mandatory re-tick — so
  // scan and event runs observe every epoch at the same cycle.
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const int g = std::countr_zero(m);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.state != VcState::kVaWait || vc.buf.empty()) continue;
    const PortMask fresh =
        route(topo_, cfg_.routing, id_, vc.buf.front().dest);
    if (fresh == vc.candidates) continue;
    vc.candidates = fresh;
    if (fresh == 0) {
      vc.state = VcState::kRouting;
      vc.state_since = now;
      update_input_work(g);
    }
  }
}

void Router::charge(power::EnergyEvent e, std::uint64_t times) {
  if (meter_) meter_->charge(e, times);
}

bool Router::quiescent() const {
  // Internal state: no buffered or stateful VCs, no staged flit, no queued
  // control signals or NACKs, no pending progress note, not recovering.
  if (in_work_ != 0 || out_work_ != 0 || staged_count_ != 0) return false;
  // A draining port needs the drain-completion check at the top of step()
  // to run until it goes hard-dead.
  if (draining_ != 0) return false;
  if (!pending_nacks_.empty() || !outbox_.empty()) return false;
  if (progress_this_cycle_ || agent_.in_recovery()) return false;
  if (!own_probe_route_.empty()) return false;
  // External state: nothing arriving on any wire this cycle. The wires'
  // tick-time summary bytes land in the router-local signal arrays, so
  // this is two word loads (kCurFwd = 0x19, kCurBack = 0x06 per byte).
  std::uint64_t iw;
  std::uint64_t ow;
  std::memcpy(&iw, in_sig_.data(), sizeof(iw));
  std::memcpy(&ow, out_sig_.data(), sizeof(ow));
  return ((iw & 0x1919191919191919ULL) | (ow & 0x0606060606060606ULL)) == 0;
}

WakeInfo Router::take_wake_info() {
  WakeInfo w;
  w.wrote_fwd = wrote_fwd_;
  w.wrote_back = wrote_back_;
  wrote_fwd_ = 0;
  wrote_back_ = 0;
  // Internal-state half of the quiescent() predicate: any of these means
  // next cycle's step() is (or may be) a state-changing one even with no
  // wire traffic. Wire arrivals are covered by the writer's wake masks.
  w.retick = in_work_ != 0 || out_work_ != 0 || staged_count_ != 0 ||
             draining_ != 0 || !pending_nacks_.empty() ||
             !outbox_.empty() || progress_this_cycle_ ||
             agent_.in_recovery();
  if (!w.retick && !own_probe_route_.empty()) {
    // The only delayed action an otherwise-idle router performs is the
    // own-probe bookkeeping GC in phase_deadlock, which first fires at
    // sent_at + probe_timeout + 1. The agent's outstanding probe is spared
    // by the GC, and it can only stop being outstanding during a stepped
    // cycle (probe return or a fresh probe) — after which this re-arms.
    const auto& live = agent_.outstanding_probe();
    for (const auto& [pid, r] : own_probe_route_) {
      if (live.has_value() && *live == pid) continue;
      const Cycle due = r.sent_at + agent_.probe_timeout() + 1;
      if (w.timer == 0 || due < w.timer) w.timer = due;
    }
  }
  return w;
}

void Router::step(Cycle now) {
  // Drain-to-kill completion (§4.9): a draining port goes hard-dead once
  // every output VC on it is idle (no owner, no waiter, empty barrel — the
  // barrel's sent region covers the NACK window, so an empty barrel proves
  // the wire is clear) and nothing is staged toward it. Runs before the
  // quiescent fast path: an otherwise-idle router must still finish its
  // drains.
  if (draining_ != 0) {
    const std::uint32_t vmask = (1u << num_vcs_) - 1u;
    for (std::uint32_t dm = draining_; dm != 0; dm &= dm - 1) {
      const PortId p = static_cast<PortId>(std::countr_zero(dm));
      if (((out_work_ >> (p * num_vcs_)) & vmask) != 0) continue;
      if (staged_[p].has_value()) continue;
      link_dead_[p] = true;
      draining_ &= static_cast<std::uint8_t>(~port_bit(p));
    }
  }
  // Online reconfiguration (§4.12): reconcile in-flight route decisions
  // with the topology's current epoch before any phase allocates on them.
  // No-op (one compare) while the epoch is unchanged. Runs before the
  // quiescent fast path, which is safe: a quiescent router has no kVaWait
  // VCs, so skipping the walk there changes nothing.
  rehome_stale_routes(now);
  // Idle fast path: a quiescent router's phases are all provable no-ops —
  // no charges, no stats, no RNG draws, no arbiter advances — so skipping
  // them is behaviour-preserving (the golden byte-identity tests pin this).
  if (quiescent()) return;
  std::fill(port_busy_.begin(), port_busy_.end(), false);
  phase_maintenance(now);
  phase_receive(now);
  switch (cfg_.pipeline_stages) {
    case 1:
      // Single-stage router: RT, VA, SA and ST all collapse into one cycle.
      phase_rt(now);
      phase_va(now);
      phase_replay_and_switch(now);
      break;
    case 2:
      // Look-ahead + speculation: RT and VA share a stage.
      phase_replay_and_switch(now);
      phase_rt(now);
      phase_va(now);
      break;
    default:
      // 3-/4-stage: one stage per atomic module (Figure 2). Phase order
      // SA -> VA -> RT gives each module its own cycle.
      phase_replay_and_switch(now);
      phase_va(now);
      phase_rt(now);
      break;
  }
  phase_deadlock(now);
  maybe_release_outputs(now);
}

// ---------------------------------------------------------------------------
// Maintenance: staged output register, control retries, retransmission
// buffer aging, credits and NACKs.
// ---------------------------------------------------------------------------

void Router::phase_maintenance(Cycle now) {
  if (!outbox_.empty()) flush_outbox();

  // Retransmission-barrel aging: only barrels with sent entries
  // (rtx_sent_mask_) can have anything to retire, and the sent region's
  // front deadline (the rtx_retire_at_ mirror) bounds when the oldest
  // entry can expire — before that cycle retire_expired is a provable
  // no-op, so the barrels themselves are not even touched.
  if (rtx_sent_mask_ != 0 && now >= rtx_min_retire_) {
    Cycle nmin = std::numeric_limits<Cycle>::max();
    for (std::uint32_t m = rtx_sent_mask_; m != 0; m &= m - 1) {
      const int og = std::countr_zero(m);
      const Cycle due = rtx_retire_at_[static_cast<std::size_t>(og)];
      if (now < due) {
        nmin = std::min(nmin, due);
        continue;
      }
      auto& rtx = out_rtx_[static_cast<std::size_t>(og)];
      const int before = rtx->occupancy();
      rtx->retire_expired(now);
      rtx_occ_ -= before - rtx->occupancy();
      refresh_rtx_cache(og);
      update_output_work(og);
      if (rtx_sent_mask_ & (1u << og)) {
        nmin = std::min(nmin, rtx_retire_at_[static_cast<std::size_t>(og)]);
      }
    }
    rtx_min_retire_ = nmin;
  }

  for (PortId p = 0; p < num_ports_; ++p) {
    if ((out_sig_[p] & Wire::kCurBack) == 0) continue;
    Wire* w = out_wires_[p];
    for (const Credit& c : w->credit.read()) {
      // §4.6: transient fault on a handshake line. With TMR the voter
      // recovers the credit; without it the credit pulse is lost and the
      // sender's view of the downstream buffer leaks a slot forever.
      if (f_hs_live_ && faults_->upset_handshake()) {
        if (cfg_.tmr_handshaking) {
          if (stats_) stats_->on_handshake_error_corrected();
        } else {
          if (stats_) stats_->on_unprotected_error();
          continue;
        }
      }
      auto& out = ovc(p, c.vc);
      if (damq_) {
        // Return borrowed shared slots before reserved ones; the budget
        // K + shared_held stays conserved either way (DESIGN.md §4.11).
        auto& held = shared_held_[static_cast<std::size_t>(gid(p, c.vc))];
        if (held > 0) {
          // Planted mutation (fuzz-harness self-test): leak the borrow —
          // the shared credit is refunded but the per-VC held counter is
          // not released, inflating the sender's shared accounting. The
          // digest comparison and the shared-pool conservation walk catch
          // it the same cycle.
          if (cfg_.test_mutation != "damq_credit_leak") --held;
          ++shared_credits_[p];
        } else {
          ++out.credits;
          FTNOC_CHECK(out.credits <= cfg_.damq_reserve_slots);
        }
      } else {
        ++out.credits;
        FTNOC_CHECK(out.credits <= cfg_.vc_buffer_depth);
      }
    }
    if (auto nack = w->nack.read()) {
      if (f_hs_live_ && faults_->upset_handshake()) {
        if (cfg_.tmr_handshaking) {
          if (stats_) stats_->on_handshake_error_corrected();
        } else {
          // Lost NACK: the receiver dropped flits that will never be
          // replayed — the packet arrives incomplete.
          if (stats_) stats_->on_unprotected_error();
          nack.reset();
        }
      }
      if (nack) {
        auto& rtx = orx(gid(p, nack->vc));
        FTNOC_CHECK(rtx.has_value());
        const int n = rtx->on_nack();
        // Each rolled-back flit re-materializes a live instance whose wire
        // copy the receiver dropped (or will drop inside its window).
        FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_restored(n));
        // 4-stage: a flit of this VC sitting in the switch-traversal
        // register is squashed — it is in flight inside our own pipe and
        // must be replayed after the rolled-back flits, not transmitted
        // stale ahead of them. (A staged *replay* was never consumed from
        // the pending region, so it simply stays queued — it need not be
        // at the front: the rollback may have just queued older flits
        // ahead of it, so scan the whole pending region or the replay is
        // double-queued and a duplicate reaches the receiver.)
        if (staged_[p] && staged_[p]->vc == nack->vc) {
          const Flit& s = staged_[p]->stored;
          const bool still_pending =
              rtx->pending_contains(s.packet_id, s.seq);
          if (!still_pending) {
            rtx->push_pending_back(s);
            ++rtx_occ_;
          }
          staged_[p].reset();
          --staged_count_;
        }
        refresh_rtx_cache(gid(p, nack->vc));
        update_output_work(gid(p, nack->vc));
        if (stats_) {
          stats_->on_link_retransmission(static_cast<std::uint64_t>(n));
        }
      }
    }
  }

  // 4-stage: flush the switch-traversal register onto the links, taking
  // the retransmission-barrel copy now so a flit's NACK window starts when
  // it actually hits the wires. Runs after NACK processing: a squashed
  // register never reaches the link.
  if (staged_count_ != 0) {
    for (PortId p = 0; p < num_ports_; ++p) {
      if (staged_[p]) {
        FTNOC_CHECK(out_wires_[p] != nullptr);
        finalize_transmission(p, staged_[p]->vc, staged_[p]->stored, now);
        out_wires_[p]->flit.write(staged_[p]->wire);
        wrote_fwd_ |= port_bit(p);
        staged_[p].reset();
        --staged_count_;
      }
    }
  }

  // Send NACKs whose one-cycle check stage has elapsed.
  for (std::size_t i = 0; i < pending_nacks_.size();) {
    if (pending_nacks_[i].send_at <= now) {
      Wire* w = in_wires_[pending_nacks_[i].port];
      FTNOC_CHECK(w != nullptr);
      FTNOC_CHECK(w->nack.can_write());
      w->nack.write({pending_nacks_[i].vc});
      wrote_back_ |= port_bit(pending_nacks_[i].port);
      charge(power::EnergyEvent::kNackSignal);
      pending_nacks_.erase_at(i);
    } else {
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// Receive: flits (with link fault injection + protection policy), probes,
// activations.
// ---------------------------------------------------------------------------

void Router::phase_receive(Cycle now) {
  for (PortId p = 0; p < num_ports_; ++p) {
    const std::uint8_t m = in_sig_[p];
    if ((m & Wire::kCurFwd) == 0) continue;
    Wire* w = in_wires_[p];
    if (m & Wire::kCurFlit) {
      handle_incoming_flit(p, *w->flit.peek_mut(), now);
      w->flit.consume();
    }
    if (m & Wire::kCurProbe) {
      handle_probe(p, *w->probe.read(), now);
    }
    if (m & Wire::kCurActivation) {
      handle_activation(*w->activation.read(), now);
    }
  }
}

void Router::handle_incoming_flit(PortId p, Flit& f, Cycle now) {
  if (p != kLocalPort) {
    // Inter-router link: the flit just traversed real wires. Inject faults
    // and run the link-protection policy.
    if (faults_) faults_->maybe_corrupt_link(f);
    switch (cfg_.protection) {
      case LinkProtection::kHbh: {
        if (now <= drop_until_[gid(p, f.vc)]) {
          // Retransmission in progress: this is one of the in-flight flits
          // behind the errored one (Figure 4, "DROP").
          if (stats_) stats_->on_flit_dropped();
          FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
          return;
        }
        charge(power::EnergyEvent::kEccCheck);
        const FlitCheck c = checker_.check(f);
        const bool must_retransmit =
            c == FlitCheck::kUncorrectable ||
            (cfg_.ecc_detect_only && c == FlitCheck::kCorrected);
        if (must_retransmit) {
          // Runtime escalation (§4.9): a long-enough streak of detected
          // uncorrectable errors on one link marks it flaky-to-dead; the
          // Network polls the request, vetoes partitioning kills, and
          // starts the drain on both endpoints.
          if (cfg_.faults.link_escalation_threshold > 0 && !link_dead_[p] &&
              (draining_ & port_bit(p)) == 0) {
            if (++uncorrectable_streak_[p] >= static_cast<std::uint32_t>(
                    cfg_.faults.link_escalation_threshold)) {
              escalation_requests_ |= port_bit(p);
              uncorrectable_streak_[p] = 0;
            }
          }
          // Detected flit error: drop, NACK one cycle later (the check
          // stage), and drop the in-flight followers (two for the paper's
          // 3-cycle loop, Figure 4; three when the sender has a dedicated
          // ST stage and thus a third flit in flight).
          if (stats_) stats_->on_nack_sent();
          pending_nacks_.push_back({p, f.vc, now + 1});
          // A sender with a dedicated ST stage has a third flit in flight,
          // so its drop window is one cycle longer. The "drop_window"
          // planted mutation reverts that fix (fuzz-harness self-test): a
          // stale third follower is then accepted out of order.
          const bool long_window =
              cfg_.pipeline_stages == 4 && cfg_.test_mutation != "drop_window";
          drop_until_[gid(p, f.vc)] = now + (long_window ? 3 : 2);
          FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
          return;
        }
        if (c == FlitCheck::kCorrected) {
          if (stats_) stats_->on_link_single_corrected();
        }
        // A cleanly received flit breaks the uncorrectable streak: only
        // *consecutive* failures escalate (transient noise does not).
        if (cfg_.faults.link_escalation_threshold > 0) {
          uncorrectable_streak_[p] = 0;
        }
        break;
      }
      case LinkProtection::kFec: {
        charge(power::EnergyEvent::kEccCheck);
        const FlitCheck c = checker_.check(f);
        if (c == FlitCheck::kCorrected) {
          if (stats_) stats_->on_link_single_corrected();
        }
        // Uncorrectable flits travel on, silently corrupt — FEC has no
        // retransmission path. Corruption is accounted at ejection.
        break;
      }
      case LinkProtection::kE2e:
      case LinkProtection::kNone:
        // No per-hop checking.
        break;
    }
  }
  accept_flit(p, f, now);
}

void Router::accept_flit(PortId p, const Flit& f0, Cycle now) {
  Flit f = f0;
  auto& vc = ivc(p, f.vc);
  if (!damq_ || p == kLocalPort) {
    FTNOC_CHECK(static_cast<int>(vc.buf.size()) < cfg_.vc_buffer_depth);
  }
  // (Under damq on a link port, DamqPool::push_back CHECKs admission —
  // the sender credit protocol guarantees it never fails, §4.11.)
  const VcId v = f.vc;
  f.arrived_cycle = now;
  FTNOC_INVARIANT_HOOK(if (mon_) {
    // Injection is counted where a flit enters the conservation ledger's
    // domain: acceptance from the local PE.
    if (p == kLocalPort) mon_->on_injected();
    mon_->on_flit_accepted(now, id_, p, f);
  });
  vc.buf.push_back(std::move(f));
  if (vc.buf.size() == 1) vc.front_arrived = now;
  ++tx_occ_;
  update_input_work(gid(p, v));
  charge(power::EnergyEvent::kBufferWrite);
}

// ---------------------------------------------------------------------------
// Replay + switch allocation + switch traversal.
// ---------------------------------------------------------------------------

void Router::phase_replay_and_switch(Cycle now) {
  const std::uint32_t vmask = (1u << num_vcs_) - 1u;

  // (a) Retransmissions and absorbed-flit transmissions take priority on
  // each output port: in-order delivery per VC requires the pending region
  // to drain before any new flit of that VC moves. Only output VCs with
  // pending entries (rtx_pending_mask_) are candidates, so the common
  // no-replay case never touches a barrel.
  for (PortId o = 0; rtx_pending_mask_ != 0 && o < num_ports_; ++o) {
    if (o == kLocalPort || out_wires_[o] == nullptr) continue;
    const std::uint32_t cand = (rtx_pending_mask_ >> (o * num_vcs_)) & vmask;
    if (cand == 0) continue;
    if (cfg_.pipeline_stages == 4 && staged_[o].has_value()) continue;
    std::uint32_t mask = 0;
    for (std::uint32_t cm = cand; cm != 0; cm &= cm - 1) {
      const int v = std::countr_zero(cm);
      const auto& rtx = orx(gid(o, static_cast<VcId>(v)));
      const auto& out = ovc(o, static_cast<VcId>(v));
      // Pending flits transmit in order, but only once their packet owns
      // the output VC: a recovery waiter queued behind the current owner
      // must hold until the deferred ownership transfer.
      if (!out.allocated ||
          rtx->front_pending().packet_id != out.owner_pid) {
        continue;
      }
      if (rtx->front_pending_credit_held() ||
          can_consume_credit(o, static_cast<VcId>(v))) {
        mask |= (1u << v);
      }
    }
    if (mask == 0) continue;
    const int v = replay_arbs_[o].arbitrate(mask);
    const auto& rtx = orx(gid(o, static_cast<VcId>(v)));
    const bool credit_held = rtx->front_pending_credit_held();
    Flit f = rtx->front_pending();
    charge(power::EnergyEvent::kRetransmission);
    transmit(o, static_cast<VcId>(v), std::move(f), now,
             /*consume_credit=*/!credit_held);
  }

  // (b) SA input stage: each input port nominates one VC. Only input VCs
  // in the work set can be active with buffered flits.
  std::array<int, kNumDirections> nominee;
  nominee.fill(-1);
  // Per-output-port mask of nominating input ports, filled as nominees are
  // picked so stage (c) need not re-scan every (o, p) pair.
  std::array<std::uint8_t, kNumDirections> out_req{};
  bool any_nominee = false;
  for (PortId p = 0; p < num_ports_; ++p) {
    std::uint32_t mask = 0;
    for (std::uint32_t cm = (in_work_ >> (p * num_vcs_)) & vmask; cm != 0;
         cm &= cm - 1) {
      const int v = std::countr_zero(cm);
      auto& vc = ivc(p, static_cast<VcId>(v));
      if (vc.state != VcState::kActive || vc.buf.empty()) continue;
      if (vc.front_arrived >= now) continue;
      if (now < vc.stall_until) continue;
      const PortId o = vc.out_port;
      if (port_busy_[o]) continue;
      if (o != kLocalPort) {
        if (cfg_.pipeline_stages == 4 && staged_[o].has_value()) continue;
        auto& out = ovc(o, vc.out_vc);
        // In-order delivery: this packet's own pending (older) flits must
        // replay first. A recovery waiter's pending flits do not block the
        // current owner. The pending mask keeps the common empty-barrel
        // case off the fat barrel object.
        if ((rtx_pending_mask_ >> gid(o, vc.out_vc)) & 1u) {
          const auto& rtx = orx(gid(o, vc.out_vc));
          if (rtx->has_pending_for(out.owner_pid)) continue;
        }
        if (!can_consume_credit(o, vc.out_vc)) continue;
      }
      mask |= (1u << v);
    }
    if (mask != 0) {
      nominee[p] = sa_in_arbs_[p].arbitrate(mask);
      any_nominee = true;
      out_req[ivc(p, static_cast<VcId>(nominee[p])).out_port] |=
          static_cast<std::uint8_t>(1u << p);
    }
  }
  if (!any_nominee) return;

  // (c) SA output stage: each output port picks one requesting input port.
  for (PortId o = 0; o < num_ports_; ++o) {
    if (port_busy_[o]) continue;
    const std::uint32_t pmask = out_req[o];
    if (pmask == 0) continue;
    const int p = sa_out_arbs_[o].arbitrate(pmask);
    const auto v = static_cast<VcId>(nominee[p]);
    auto& vc = ivc(static_cast<PortId>(p), v);
    charge(power::EnergyEvent::kSwAllocation);

    bool corrupt_in_flight = false;
    if (f_sa_live_ && faults_->upset_sa_grant()) {
      if (cfg_.enable_ac) {
        // The AC's third comparison (Figure 12) catches the bad grant in
        // the crossbar-traversal stage; neighbours are NACKed to ignore the
        // transmission (§4.3) and the grant is redone next cycle.
        charge(power::EnergyEvent::kAcCheck);
        if (ac_requires_neighbor_nack(cfg_.pipeline_stages)) {
          charge(power::EnergyEvent::kNackSignal);
        }
        if (stats_) stats_->on_sa_error_recovered();
        continue;
      }
      // Unprotected: the flit collides / is steered wrong — it leaves this
      // router corrupted (cases (b)-(d) of §4.3 all end in a wrecked flit).
      if (stats_) stats_->on_unprotected_error();
      corrupt_in_flight = true;
    }

    Flit f = vc.buf.front();
    vc.buf.pop_front();
    vc.sync_front_arrived();
    --tx_occ_;
    charge(power::EnergyEvent::kBufferRead);
    charge(power::EnergyEvent::kCrossbarTraversal);
    const bool tail = is_tail(f.type);
    send_credit(static_cast<PortId>(p), v);
    vc.last_advance = now;

    if (vc.out_port == kLocalPort) {
      eject(f, static_cast<PortId>(p), v, now);
      if (tail) {
        ovc(kLocalPort, vc.out_vc).allocated = false;
        update_output_work(gid(kLocalPort, vc.out_vc));
      }
    } else {
      transmit(vc.out_port, vc.out_vc, std::move(f), now,
               /*consume_credit=*/true, corrupt_in_flight);
    }
    if (tail) {
      release_input_after_tail(static_cast<PortId>(p), v, now);
    } else {
      update_input_work(gid(static_cast<PortId>(p), v));
    }
  }
}

void Router::finalize_transmission(PortId o, VcId v, const Flit& f,
                                   Cycle now) {
  auto& out = ovc(o, v);
  if (is_tail(f.type)) out.tail_sent = true;
  // Keep the NACK-window copy. A replay (the flit is the front pending
  // entry) always records: the pop-and-reinsert cannot overflow. For fresh
  // transmissions, the barrel may be occupied by a recovery waiter's
  // absorbed flits; link protection is then briefly suspended for this VC
  // (the paper's single-fault model: link errors and deadlock recovery do
  // not overlap).
  auto& rtx = orx(gid(o, v));
  if (!rtx) return;
  const bool is_replay = rtx->has_pending() &&
                         rtx->front_pending().packet_id == f.packet_id &&
                         rtx->front_pending().seq == f.seq;
  if (!is_replay && !rtx->can_accept(now)) return;
  // §4.5: a soft error can corrupt the *stored* copy. The duplicate buffer
  // recovers it; without one the corrupt copy persists, and if the
  // original transmission is NACKed the replay resends the same broken
  // word forever — the endless retransmission loop.
  Flit stored = f;
  if (f_rtx_live_ && faults_->upset_rtx_copy()) {
    if (cfg_.duplicate_rtx_buffers) {
      if (stats_) stats_->on_rtx_error_corrected();
      charge(power::EnergyEvent::kRtxBufferWrite);  // Duplicate access.
    } else {
      // Latent fault: harmless unless this copy is ever replayed.
      stored.codeword.flip(static_cast<int>(faults_->random_below(36)));
      stored.codeword.flip(36 + static_cast<int>(faults_->random_below(36)));
    }
  }
  const int before = rtx->occupancy();
  rtx->record_transmission(stored, now);
  rtx_occ_ += rtx->occupancy() - before;
  refresh_rtx_cache(gid(o, v));
  update_output_work(gid(o, v));
  charge(power::EnergyEvent::kRtxBufferWrite);
}

void Router::transmit(PortId o, VcId v, Flit f, Cycle now,
                      bool consume_credit, bool corrupt_on_wire) {
  FTNOC_CHECK(o != kLocalPort);
  FTNOC_CHECK(out_wires_[o] != nullptr);
  auto& out = ovc(o, v);
  if (consume_credit) {
    if (out.credits > 0) {
      --out.credits;
    } else {
      // Reserved credits exhausted: borrow from the port's shared pool.
      FTNOC_CHECK(damq_ && shared_credits_[o] > 0);
      --shared_credits_[o];
      ++shared_held_[static_cast<std::size_t>(gid(o, v))];
    }
  }
  f.vc = v;
  ++f.hops;
  charge(power::EnergyEvent::kLinkTraversal);
  // In-crossbar upset (unprotected SA error): the wire copy is wrecked
  // but the barrel copy stays clean, so a NACKed replay recovers the
  // data. The bit positions are drawn up front to keep the RNG sequence
  // independent of the copy-elision below (draws precede the §4.5
  // stored-copy draw inside finalize_transmission, as they always have).
  int flip1 = -1;
  int flip2 = -1;
  if (corrupt_on_wire) {
    flip1 = static_cast<int>(faults_->random_below(36));
    flip2 = 36 + static_cast<int>(faults_->random_below(36));
  }
  if (cfg_.pipeline_stages == 4) {
    // The dedicated ST stage: barrel recording happens at flush time so
    // the NACK-loop ages line up with the wire.
    FTNOC_CHECK(!staged_[o].has_value());
    Flit wire = f;
    if (corrupt_on_wire) {
      wire.codeword.flip(flip1);
      wire.codeword.flip(flip2);
    }
    staged_[o] = StagedFlit{std::move(wire), std::move(f), v};
    ++staged_count_;
  } else {
    finalize_transmission(o, v, f, now);
    FTNOC_CHECK(out_wires_[o]->flit.can_write());
    if (corrupt_on_wire) {
      Flit wire = f;
      wire.codeword.flip(flip1);
      wire.codeword.flip(flip2);
      out_wires_[o]->flit.write(wire);
    } else {
      // Common case: the clean flit goes straight onto the wire — no
      // intermediate copy.
      out_wires_[o]->flit.write(f);
    }
    wrote_fwd_ |= port_bit(o);
  }
  port_busy_[o] = true;
}

void Router::eject(const Flit& f, PortId in_port, VcId in_vc, Cycle now) {
  (void)in_port;
  (void)in_vc;
  FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_ejected());
  if (eject_) eject_(f, now);
}

void Router::send_credit(PortId p, VcId v) {
  progress_this_cycle_ = true;  // A buffer slot was freed.
  if (in_wires_[p]) {
    in_wires_[p]->credit.write({v});
    wrote_back_ |= port_bit(p);
  }
}

void Router::release_input_after_tail(PortId p, VcId v, Cycle now) {
  auto& vc = ivc(p, v);
  vc.state = VcState::kRouting;
  vc.candidates = 0;
  vc.out_port = kInvalidPort;
  vc.out_vc = kInvalidVc;
  vc.state_since = now;
  update_input_work(gid(p, v));
}

void Router::maybe_release_outputs(Cycle now) {
  for (std::uint32_t m = out_work_; m != 0; m &= m - 1) {
    const int og = std::countr_zero(m);
    auto& out = outputs_[static_cast<std::size_t>(og)];
    if (!out.allocated || !out.tail_sent) continue;
    // The owner lingers while any of its flits sit in the barrel; an empty
    // barrel (per the summary masks) cannot contain the packet.
    if (((rtx_sent_mask_ | rtx_pending_mask_) >> og) & 1u) {
      const auto& rtx = out_rtx_[static_cast<std::size_t>(og)];
      if (rtx->contains_packet(out.owner_pid)) continue;
    }
    out.allocated = false;
    out.tail_sent = false;
    if (out.has_waiter) {
      // Deferred allocation (deadlock recovery): the queued waiter
      // inherits the output VC; its absorbed flits can now replay out.
      out.allocated = true;
      out.owner_gid = out.waiter_gid;
      out.owner_pid = out.waiter_pid;
      out.has_waiter = false;
      // If the waiter's stream is still (partly) in its input buffer the
      // input VC resumes as a normal active wormhole; if the packet was
      // wholly absorbed the input VC has already been recycled.
      auto& wvc = inputs_[out.owner_gid];
      const PortId p = static_cast<PortId>(og / num_vcs_);
      const VcId v = static_cast<VcId>(og % num_vcs_);
      if (wvc.state == VcState::kVaReserved && wvc.out_port == p &&
          wvc.out_vc == v) {
        wvc.state = VcState::kActive;
        wvc.state_since = now;
      }
    }
    update_output_work(og);
  }
}

// ---------------------------------------------------------------------------
// VC allocation.
// ---------------------------------------------------------------------------

std::optional<std::pair<PortId, VcId>> Router::pick_va_request(InputVc& vc,
                                                               PortId in_port,
                                                               VcId in_vc,
                                                               int rotation) {
  // Gather the free output VCs on all valid candidate ports, then pick one
  // by the input VC's rotating preference (the input stage of a separable
  // allocator).
  //
  // Escape-VC policy (Duato-style avoidance): VC 0 is the escape lane,
  // reachable only through the deadlock-free XY direction; adaptive
  // traffic uses VCs 1..V-1 on any productive port. A packet that arrived
  // *on* the escape VC stays in the escape subnetwork until delivery,
  // which keeps the extended channel dependency graph acyclic.
  const bool escape_mode = cfg_.routing == RoutingAlgorithm::kAdaptiveEscape;
  const bool escape_bound =
      escape_mode && in_port != kLocalPort && in_vc == 0;
  PortId xy_port = kInvalidPort;
  if (escape_mode && !vc.buf.empty()) {
    xy_port = first_port(
        route(topo_, RoutingAlgorithm::kXY, id_, vc.buf.front().dest));
  }
  // Under voq a packet only ever requests the VC class of its destination
  // column (voq lane); escape_mode is mutually exclusive (voq => XY).
  const int lane = vc.buf.empty() ? -1 : voq_lane(vc.buf.front());

  std::array<std::pair<PortId, VcId>, 32> options;
  int n = 0;
  for (PortId o = 0; o < num_ports_; ++o) {
    if (!mask_has(vc.candidates, o)) continue;
    const bool valid = (o == kLocalPort)
                           ? (!vc.buf.empty() && vc.buf.front().dest == id_)
                           : port_allocatable(o);
    if (!valid) continue;
    for (VcId v = 0; v < num_vcs_; ++v) {
      if (lane >= 0 && v != lane) continue;
      if (ovc(o, v).allocated || n >= static_cast<int>(options.size())) {
        continue;
      }
      if (escape_mode && o != kLocalPort) {
        if (escape_bound && (v != 0 || o != xy_port)) continue;
        if (!escape_bound && v == 0 && o != xy_port) continue;
      }
      options[n++] = {o, v};
    }
  }
  if (n == 0) return std::nullopt;
  return options[rotation % n];
}

void Router::phase_va(Cycle now) {
  // Note on recovery: "no new packets are allowed to enter the
  // transmission buffers involved in the deadlock recovery" (§3.2.1) is
  // enforced at the injection boundary — the PE stops *starting* packets
  // while its router recovers. Packets already inside the network keep
  // being allocated: ejection-ready and transit packets are part of the
  // configuration being drained, not new entrants.
  // Per-cycle request state lives in preallocated scratch: va_req_ogs_
  // marks which va_reqs_ entries are valid this cycle, so nothing needs
  // clearing up front. Only input VCs in the work set can be in kVaWait.
  va_req_ogs_ = 0;
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const int g = std::countr_zero(m);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.state != VcState::kVaWait || vc.buf.empty()) continue;
    if (now < vc.stall_until) continue;
    FTNOC_CHECK(is_head(vc.buf.front().type));

    // A candidate set with no usable port can only come from an upset
    // routing computation (mesh edge / wrong-PE ejection): the VA catches
    // it from its link-state table (§4.2) and the RT redoes the route —
    // a single-cycle penalty in current-node-routing pipelines.
    bool any_valid = false;
    bool dead_candidate = false;
    for (PortId o = 0; o < num_ports_; ++o) {
      if (!mask_has(vc.candidates, o)) continue;
      if (o == kLocalPort ? vc.buf.front().dest == id_
                          : port_allocatable(o)) {
        any_valid = true;
        break;
      }
      if (o != kLocalPort && port_has_neighbor(o) &&
          (link_dead_[o] || (draining_ & port_bit(o)) != 0)) {
        dead_candidate = true;
      }
    }
    if (!any_valid) {
      if (cfg_.adaptive_faults && dead_candidate) {
        // Non-minimal escape tier (DESIGN.md §4.12): every candidate
        // direction crosses a hard-failed or draining link, so detour
        // over the live ports whose neighbour still reaches the
        // destination — chosen from the BFS table, preferring the
        // smallest neighbour distance, so a sideways or backward hop is
        // taken only when it provably leads somewhere. Each detour is
        // reported to the invariant monitor's misroute-bound check.
        const PortMask esc =
            fault_escape_ports(topo_, id_, vc.buf.front().dest);
        if (esc == 0) {
          // No live neighbour reaches dest: re-route, where phase_rt
          // drops the packet with the unreachable accounting.
          vc.state = VcState::kRouting;
          vc.candidates = 0;
          continue;
        }
        PortMask usable = 0;
        for (PortId o = 0; o < num_ports_; ++o) {
          if (mask_has(esc, o) && o != kLocalPort && port_allocatable(o)) {
            usable |= port_bit(o);
          }
        }
        if (usable == 0) continue;  // Escape ports all draining; retry.
        vc.candidates = usable;
        if (stats_) stats_->on_hard_fault_reroute();
        FTNOC_INVARIANT_HOOK(if (mon_) {
          mon_->on_misroute(now, id_, vc.buf.front().packet_id);
        });
        // Fall through: request an output VC on the detour this cycle.
      } else if (dead_candidate &&
                 cfg_.routing != RoutingAlgorithm::kXY) {
        // Every minimal direction crosses a hard-failed link: detour
        // non-minimally over any live port; the next hop re-routes
        // minimally from there (the paper's "redirect blocked flits to
        // another direction using an adaptive routing scheme", 3.2.2).
        PortMask live = 0;
        for (PortId o = 0; o < num_ports_; ++o) {
          if (o != kLocalPort && port_allocatable(o)) live |= port_bit(o);
        }
        if (live != 0) {
          vc.candidates = live;
          if (stats_) stats_->on_hard_fault_reroute();
          // Fall through: request an output VC on the detour this cycle.
        } else {
          continue;  // Fully cut off; nothing to do.
        }
      } else {
        // Upset routing computation (mesh edge / wrong-PE ejection): the
        // VA catches it from its link-state table (4.2) and the RT redoes
        // the route - a single-cycle penalty.
        if (stats_) stats_->on_rt_error_recovered();
        vc.state = VcState::kRouting;
        vc.candidates = 0;
        continue;
      }
    }

    auto req = pick_va_request(vc, static_cast<PortId>(g / num_vcs_),
                               static_cast<VcId>(g % num_vcs_),
                               va_rotation_[static_cast<std::size_t>(g)]++);
    if (!req) continue;  // All candidate output VCs busy; retry next cycle.
    const int og = gid(req->first, req->second);
    if (va_req_ogs_ & (1u << og)) {
      va_reqs_[static_cast<std::size_t>(og)] |= (1u << g);
    } else {
      va_reqs_[static_cast<std::size_t>(og)] = (1u << g);
      va_req_ogs_ |= (1u << og);
    }
    va_want_[static_cast<std::size_t>(g)] = *req;
  }

  for (std::uint32_t m = va_req_ogs_; m != 0; m &= m - 1) {
    const int og = std::countr_zero(m);
    const int g = va_arbs_[og].arbitrate(va_reqs_[static_cast<std::size_t>(og)]);
    FTNOC_CHECK(g >= 0);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    const PortId o = va_want_[static_cast<std::size_t>(g)].first;
    const VcId v = va_want_[static_cast<std::size_t>(g)].second;
    charge(power::EnergyEvent::kVcAllocation);

    if (f_va_live_ && faults_->upset_va_allocation()) {
      run_ac_on_va(static_cast<std::size_t>(g), now);
      continue;
    }

    vc.state = VcState::kActive;
    vc.out_port = o;
    vc.out_vc = v;
    vc.state_since = now;
    auto& out = ovc(o, v);
    out.allocated = true;
    out.owner_gid = static_cast<std::uint16_t>(g);
    out.owner_pid = vc.buf.front().packet_id;
    out.tail_sent = false;
    update_output_work(og);
  }
}

void Router::run_ac_on_va(std::size_t g, Cycle now) {
  auto& vc = inputs_[g];
  // Build the corrupted VA state entry the soft error produced. The upset
  // manifests as one of the §4.1 scenarios; we synthesize it and feed the
  // *actual* AC comparator so the detection path is exercised for real.
  std::vector<RoutingStateEntry> rt_state;
  std::vector<VaStateEntry> va_state;
  std::vector<SaStateEntry> sa_state;
  rt_state.push_back(
      {static_cast<std::uint16_t>(g), vc.candidates});
  for (int og = 0; og < num_ports_ * num_vcs_; ++og) {
    const auto& out = outputs_[static_cast<std::size_t>(og)];
    if (out.allocated) {
      va_state.push_back({out.owner_gid,
                          static_cast<PortId>(og / num_vcs_),
                          static_cast<VcId>(og % num_vcs_)});
    }
  }

  VaStateEntry bad{static_cast<std::uint16_t>(g), kInvalidPort, kInvalidVc};
  switch (faults_->random_below(3)) {
    case 0:  // Scenario (1): invalid output VC id.
      bad.out_port = first_port(vc.candidates);
      bad.out_vc = static_cast<VcId>(num_vcs_);
      break;
    case 1: {  // Scenario (4b): output VC on a PC the RT never returned.
      PortId wrong = static_cast<PortId>(faults_->random_below(
          static_cast<std::uint64_t>(num_ports_)));
      while (mask_has(vc.candidates, wrong)) {
        wrong = static_cast<PortId>((wrong + 1) % num_ports_);
      }
      bad.out_port = wrong;
      bad.out_vc = 0;
      break;
    }
    default: {  // Scenarios (2)/(3): duplicate/reserved output VC.
      bad.out_port = first_port(vc.candidates);
      bad.out_vc = kInvalidVc;
      for (VcId v = 0; v < num_vcs_; ++v) {
        if (ovc(bad.out_port, v).allocated) {
          bad.out_vc = v;
          break;
        }
      }
      if (bad.out_vc == kInvalidVc) {
        bad.out_vc = static_cast<VcId>(num_vcs_);  // Fall back to invalid id.
      }
      break;
    }
  }
  va_state.push_back(bad);

  if (cfg_.enable_ac) {
    const AcReport report = ac_.check(rt_state, va_state, sa_state);
    charge(power::EnergyEvent::kAcCheck);
    FTNOC_CHECK(report.any_error());
    // Invalidate the previous cycle's allocation: the input VC stays in
    // kVaWait and re-arbitrates — exactly one cycle lost (§4.1).
    if (stats_) stats_->on_va_error_recovered();
    (void)now;
    return;
  }
  // Unprotected VA upset: the packet inherits a broken (or duplicate)
  // wormhole and its flits are effectively lost (§4.1 scenarios 1-3).
  if (stats_) stats_->on_unprotected_error();
  vc.state = VcState::kDraining;
}

// ---------------------------------------------------------------------------
// Routing stage.
// ---------------------------------------------------------------------------

PortMask Router::apply_rt_fault(InputVc& vc, PortMask correct, Cycle now) {
  if (!f_rt_live_ || !faults_->upset_routing()) return correct;

  // Pick the erroneous direction uniformly among ports outside the correct
  // set (a flip landing inside the set is not observable as an error).
  std::array<PortId, kNumDirections> wrongs{};
  int n = 0;
  for (PortId o = 0; o < num_ports_; ++o) {
    if (!mask_has(correct, o)) wrongs[static_cast<std::size_t>(n++)] = o;
  }
  FTNOC_CHECK(n > 0);
  const PortId w = wrongs[faults_->random_below(static_cast<std::uint64_t>(n))];

  const bool functional = (w != kLocalPort) && port_allocatable(w);
  if (!functional) {
    // Blocked/invalid direction: the local VA will catch it against its
    // link-state table (§4.2) — return the corrupted candidate set.
    return port_bit(w);
  }
  if (cfg_.routing == RoutingAlgorithm::kXY) {
    // Functional misdirection under deterministic routing: the *receiving*
    // router detects the DOR violation and NACKs; recovery costs
    // 1 (NACK) + n (re-route + retransmission) cycles (§4.2). We charge the
    // penalty and the signalling energy without physically bouncing the
    // header, which keeps the wormhole state machine exact.
    if (stats_) stats_->on_rt_error_recovered();
    charge(power::EnergyEvent::kNackSignal);
    charge(power::EnergyEvent::kRetransmission);
    vc.stall_until =
        now + static_cast<Cycle>(rt_recovery_penalty(
                  cfg_.pipeline_stages, /*lookahead=*/cfg_.pipeline_stages <= 2,
                  RtMisrouteKind::kFunctionalDeterministic));
    return correct;
  }
  // Adaptive routing: the misdirection is undetectable and benign — the
  // packet physically takes the wrong turn and re-routes minimally from
  // there (§4.2).
  return port_bit(w);
}

void Router::phase_rt(Cycle now) {
  // Only input VCs in the work set can be draining or hold a head flit.
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const int g = std::countr_zero(m);
    auto& vc = inputs_[static_cast<std::size_t>(g)];

    if (vc.state == VcState::kDraining) {
      if (!vc.buf.empty() && vc.front_arrived < now) {
        const Flit f = vc.buf.front();
        vc.buf.pop_front();
        vc.sync_front_arrived();
        --tx_occ_;
        FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
        charge(power::EnergyEvent::kBufferRead);
        send_credit(static_cast<PortId>(g / num_vcs_),
                    static_cast<VcId>(g % num_vcs_));
        vc.last_advance = now;
        if (is_tail(f.type)) {
          vc.state = VcState::kRouting;
          vc.state_since = now;
        }
        update_input_work(g);
      }
      continue;
    }

    if (vc.state != VcState::kRouting || vc.buf.empty()) continue;
    if (vc.front_arrived >= now) continue;
    if (now < vc.stall_until) continue;
    if (!is_head(vc.buf.front().type)) {
      // A body/tail flit with no open wormhole: its header was dropped and
      // never replayed (possible only when the NACK path itself is faulty,
      // e.g. unprotected handshake lines, §4.6). Discard the stray flit.
      vc.buf.pop_front();
      vc.sync_front_arrived();
      --tx_occ_;
      FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
      send_credit(static_cast<PortId>(g / num_vcs_),
                  static_cast<VcId>(g % num_vcs_));
      if (stats_) {
        stats_->on_flit_dropped();
        stats_->on_unprotected_error();
      }
      update_input_work(g);
      continue;
    }

    charge(power::EnergyEvent::kRouteCompute);
    const NodeId dest = vc.buf.front().dest;
    PortMask correct = route(topo_, cfg_.routing, id_, dest);
    if (topo_.has_faults()) {
      if (cfg_.test_mutation == "route_into_dead_link") {
        // Planted mutation (fuzz-harness self-test): route by the closed
        // form, as a router whose RT link-state input is stuck-at-good
        // would — it aims wormholes straight into dead links.
        correct = route_fault_free(topo_, cfg_.routing, id_, dest);
      }
      if (correct == 0) {
        // No live path to dest (partitioned by escalations, or the dest
        // router itself is dead): drop the packet rather than wedge the
        // VC forever — graceful degradation, accounted per packet.
        if (stats_) stats_->on_unreachable_drop();
        vc.state = VcState::kDraining;
        vc.state_since = now;
        update_input_work(g);
        continue;
      }
      if (stats_ &&
          (correct & ~route_fault_free(topo_, cfg_.routing, id_, dest)) !=
              0) {
        // The fault-aware set offers a direction the fault-free minimal
        // set would not: this hop detours the packet around a hard fault.
        stats_->on_hard_fault_reroute();
      }
    }
    vc.candidates = apply_rt_fault(vc, correct, now);
    vc.state = VcState::kVaWait;
    vc.state_since = now;
  }
}

// ---------------------------------------------------------------------------
// Deadlock detection (probing) and recovery (absorption).
// ---------------------------------------------------------------------------

bool Router::vc_blocked(const InputVc& vc, Cycle now) const {
  // A VC is blocked if it holds flits that made no progress recently,
  // whether it already owns an output VC (kActive), is waiting for one
  // (kVaWait — the classic wormhole channel-wait), or has been queued by
  // the recovery machinery (kVaReserved).
  if (vc.buf.empty() && vc.state != VcState::kVaReserved) return false;
  if (vc.state != VcState::kActive && vc.state != VcState::kVaWait &&
      vc.state != VcState::kVaReserved) {
    return false;
  }
  return now - vc.last_advance >= 2;
}

void Router::queue_control(PortId port, const ProbeSignal& p) {
  OutboxItem item;
  item.port = port;
  item.is_probe = true;
  item.probe = p;
  outbox_.push_back(item);
}

void Router::queue_control(PortId port, const ActivationSignal& a) {
  OutboxItem item;
  item.port = port;
  item.is_probe = false;
  item.activation = a;
  outbox_.push_back(item);
}

void Router::flush_outbox() {
  for (std::size_t i = 0; i < outbox_.size();) {
    const OutboxItem& item = outbox_[i];
    Wire* w = out_wires_[item.port];
    FTNOC_CHECK(w != nullptr);
    bool sent = false;
    if (item.is_probe) {
      if (w->probe.can_write()) {
        w->probe.write(item.probe);
        sent = true;
      }
    } else {
      if (w->activation.can_write()) {
        w->activation.write(item.activation);
        sent = true;
      }
    }
    if (sent) {
      wrote_fwd_ |= port_bit(item.port);
      outbox_.erase_at(i);
    } else {
      ++i;
    }
  }
}

// The next link of a blocked-dependency chain through `vc`: its own output
// if the wormhole is established (kActive / kVaReserved), or the output VC
// held by the packet it is waiting on (kVaWait) — the chain then continues
// at the downstream router's matching input VC.
std::optional<std::pair<PortId, VcId>> Router::resolve_chain(
    const InputVc& vc) const {
  if ((vc.state == VcState::kActive || vc.state == VcState::kVaReserved) &&
      vc.out_port != kLocalPort && vc.out_port != kInvalidPort) {
    return std::make_pair(vc.out_port, vc.out_vc);
  }
  if (vc.state == VcState::kVaWait) {
    for (PortId o = 0; o < num_ports_; ++o) {
      if (!mask_has(vc.candidates, o) || o == kLocalPort) continue;
      for (VcId v = 0; v < num_vcs_; ++v) {
        if (ovc(o, v).allocated) return std::make_pair(o, v);
      }
    }
  }
  return std::nullopt;
}

void Router::handle_probe(PortId /*from*/, const ProbeSignal& probe,
                          Cycle now) {
  charge(power::EnergyEvent::kProbeHop);
  if (probe.hops > probe_ttl_) {
    // The probe is orbiting a cycle that does not contain its origin.
    if (stats_) stats_->on_probe_discarded();
    return;
  }
  if (probe.origin == id_) {
    FTNOC_TRACE(trace_fmt("[%llu] r%u probe id=%u RETURNED",
                          (unsigned long long)now, id_, probe.probe_id));
    if (agent_.on_probe_returned(probe)) {
      // The probe circled the suspected cycle: genuine deadlock. Send the
      // activation around the same path (Rule 3 consumers are the nodes
      // that relayed our probe). The route entry is guaranteed live: GC
      // never touches the agent's outstanding probe, and a confirmed
      // return implies this id was outstanding.
      if (stats_) stats_->on_deadlock_confirmed();
      FTNOC_INVARIANT_HOOK(
          if (mon_) mon_->on_probe_confirmed(now, id_, probe.probe_id));
      const auto it = own_probe_route_.find(probe.probe_id);
      FTNOC_CHECK(it != own_probe_route_.end());
      queue_control(it->second.port, ActivationSignal{id_, probe.probe_id});
      own_probe_route_.erase(it);
    } else {
      // Stale or duplicate return: the bookkeeping (if any survived GC)
      // is dead weight now.
      own_probe_route_.erase(probe.probe_id);
    }
    return;
  }

  // Rule 2: inspect the named buffer; forward along the blocked chain or
  // discard.
  FTNOC_CHECK(probe.in_port < num_ports_ && probe.in_vc < num_vcs_);
  const auto& target = ivc(probe.in_port, probe.in_vc);
  std::optional<std::pair<PortId, VcId>> fwd;
  if (vc_blocked(target, now) || agent_.in_recovery()) {
    fwd = resolve_chain(target);
  }

  const ProbeAction action = agent_.on_probe(probe, fwd.has_value());
  FTNOC_TRACE(trace_fmt(
      "[%llu] r%u probe(o=%u,id=%u) tgt(%d,%d) act=%d fwd=%d tstate=%d "
      "tcand=%02x tblocked=%d rec=%d",
      (unsigned long long)now, id_, probe.origin, probe.probe_id,
      (int)probe.in_port, (int)probe.in_vc, (int)action,
      fwd ? (int)fwd->first : -1, (int)target.state,
      (unsigned)target.candidates, (int)vc_blocked(target, now),
      (int)agent_.in_recovery()));
  if (action == ProbeAction::kForward && fwd) {
    ProbeSignal next = probe;
    next.hops = probe.hops + 1;
    next.in_port = static_cast<PortId>(
        opposite(static_cast<Direction>(fwd->first)));
    next.in_vc = fwd->second;
    agent_.remember_forwarded_probe(probe, fwd->first, next.in_port,
                                    next.in_vc);
    FTNOC_INVARIANT_HOOK(
        if (mon_) mon_->on_probe_forwarded(id_, probe.origin, probe.probe_id));
    queue_control(fwd->first, next);
  } else {
    if (stats_) stats_->on_probe_discarded();
  }
}

void Router::handle_activation(const ActivationSignal& act, Cycle now) {
  if (act.origin == id_) {
    const bool was = agent_.in_recovery();
    agent_.on_activation_returned(act);
    if (!was && agent_.in_recovery()) {
      if (stats_) stats_->on_recovery_entered();
      FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_recovery_entered(
          now, id_, RecoveryTrigger::kActivationReturned, act.origin,
          act.probe_id, cfg_.vc_buffer_depth, cfg_.retransmission_depth));
    }
    (void)now;
    return;
  }
  const bool was = agent_.in_recovery();
  const auto fwd = agent_.on_activation(act);
  if (!was && agent_.in_recovery()) {
    if (stats_) stats_->on_recovery_entered();
    FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_recovery_entered(
        now, id_, RecoveryTrigger::kActivationRelay, act.origin, act.probe_id,
        cfg_.vc_buffer_depth, cfg_.retransmission_depth));
  }
  if (fwd) {
    charge(power::EnergyEvent::kProbeHop);
    queue_control(*fwd, act);
  }
}

void Router::enter_recovery(Cycle) {
  const bool was = agent_.in_recovery();
  agent_.enter_recovery();
  if (!was && stats_) stats_->on_recovery_entered();
}

void Router::phase_deadlock(Cycle now) {
  // Progress must be noted (and the flag cleared) even with recovery
  // disabled: a stale flag would otherwise defeat the idle fast path.
  if (progress_this_cycle_) {
    agent_.note_progress();
    progress_this_cycle_ = false;
  }
  if (!cfg_.deadlock.enable_recovery) return;

  // GC own-probe bookkeeping for probes past their timeout, sparing the
  // agent's outstanding probe: a late return can still be confirmed and
  // must find its forward port. Everything else is unreachable (a return
  // for a non-outstanding id is always discarded).
  if (!own_probe_route_.empty()) {
    const auto& live = agent_.outstanding_probe();
    for (auto it = own_probe_route_.begin();
         it != own_probe_route_.end();) {
      const bool spared = live.has_value() && *live == it->first;
      if (!spared && now - it->second.sent_at > agent_.probe_timeout()) {
        it = own_probe_route_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Rule 1: launch a probe for an over-threshold blocked VC. Both
  // established wormholes (credit-blocked) and VA-waiting heads
  // (channel-blocked) can anchor a deadlock; for the latter the chain is
  // resolved through the local holder of the wanted output VC. Only input
  // VCs in the work set can hold buffered flits.
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const int g = std::countr_zero(m);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.buf.empty()) continue;
    if (vc.state != VcState::kActive && vc.state != VcState::kVaWait) {
      continue;
    }
    const Cycle blocked = now - vc.last_advance;
    if (!agent_.should_probe(blocked, now)) continue;
    const auto chain = resolve_chain(vc);
    if (!chain) continue;
    const ProbeSignal pr = agent_.make_probe(
        static_cast<PortId>(opposite(static_cast<Direction>(chain->first))),
        chain->second, now);
    FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_probe_minted(id_, pr.probe_id));
    // Fallback: repeated probe expiry with zero local progress means this
    // router's blocked packets feed a deadlocked region whose cycle does
    // not pass through here — the probes orbit it and can never return.
    // Join the recovery unilaterally so the region gains slack here too.
    if (cfg_.deadlock.fallback_probe_failures > 0 &&
        agent_.failed_probes() >= cfg_.deadlock.fallback_probe_failures) {
      agent_.enter_recovery();
      if (stats_) {
        stats_->on_fallback_recovery();
        stats_->on_recovery_entered();
      }
      FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_recovery_entered(
          now, id_, RecoveryTrigger::kFallback, id_, pr.probe_id,
          cfg_.vc_buffer_depth, cfg_.retransmission_depth));
      break;
    }
    FTNOC_TRACE(trace_fmt("[%llu] r%u PROBE id=%u via port %d target(%d,%d)",
                          (unsigned long long)now, id_, pr.probe_id,
                          (int)chain->first, (int)pr.in_port,
                          (int)pr.in_vc));
    // A freshly minted probe supersedes all older bookkeeping: the agent
    // allows one live probe at a time, so prior entries can never be
    // confirmed again (bounds the map at one entry).
    own_probe_route_.clear();
    own_probe_route_[pr.probe_id] = ProbeRoute{chain->first, now};
    queue_control(chain->first, pr);
    if (stats_) stats_->on_probe_sent();
    charge(power::EnergyEvent::kProbeHop);
  }

  if (!agent_.in_recovery()) return;

  // Recovery: absorb blocked flits into the retransmission buffers
  // (Figure 10, step 2), freeing transmission-buffer slots so the cyclic
  // dependency can creep forward. One absorption per output VC per cycle —
  // the barrel shifter has a single input port.
  //
  // Two kinds of blocked input VCs shed flits:
  //  * kVaWait heads (the classic wormhole channel-wait): the packet
  //    commits to its first valid candidate port, registers as *waiter* on
  //    an output VC there (deferred allocation), and parks flits behind
  //    the current owner's; they replay out after the ownership transfer.
  //  * kActive / kVaReserved wormholes out of credits: they park flits in
  //    their own output VC's barrel until downstream space frees.
  absorbed_ = 0;
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const int g = std::countr_zero(m);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.buf.empty() || vc.front_arrived >= now) continue;
    const auto in_port = static_cast<PortId>(g / num_vcs_);
    const auto in_vc = static_cast<VcId>(g % num_vcs_);

    if (vc.state == VcState::kVaWait) {
      if (now - vc.last_advance < 2) continue;  // Not actually stuck.
      // Commit to the first valid candidate port and queue behind the
      // owner of one of its output VCs.
      PortId o = kInvalidPort;
      for (PortId cand = 0; cand < num_ports_; ++cand) {
        if (cand == kLocalPort || !mask_has(vc.candidates, cand)) continue;
        if (port_allocatable(cand)) {
          o = cand;
          break;
        }
      }
      if (o == kInvalidPort) continue;
      const int lane = voq_lane(vc.buf.front());
      VcId v = kInvalidVc;
      for (VcId cv = 0; cv < num_vcs_; ++cv) {
        if (lane >= 0 && cv != lane) continue;
        auto& cand_out = ovc(o, cv);
        const auto& cand_rtx = orx(gid(o, cv));
        if (cand_rtx && cand_out.allocated && !cand_out.has_waiter &&
            cand_rtx->free_slots() > 0) {
          v = cv;
          break;
        }
      }
      if (v == kInvalidVc) continue;
      auto& out = ovc(o, v);
      out.has_waiter = true;
      out.waiter_gid = static_cast<std::uint16_t>(g);
      out.waiter_pid = vc.buf.front().packet_id;
      update_output_work(gid(o, v));
      FTNOC_TRACE(trace_fmt("[%llu] r%u register waiter pkt%llu on %d_%d",
                            (unsigned long long)now, id_,
                            (unsigned long long)out.waiter_pid, (int)o,
                            (int)v));
      vc.state = VcState::kVaReserved;
      vc.out_port = o;
      vc.out_vc = v;
      vc.state_since = now;
      // Fall through to the absorption below this cycle.
    }

    if (vc.state != VcState::kActive && vc.state != VcState::kVaReserved) {
      continue;
    }
    if (vc.out_port == kLocalPort) continue;
    auto& out = ovc(vc.out_port, vc.out_vc);
    auto& rtx = orx(gid(vc.out_port, vc.out_vc));
    if (!rtx) continue;
    const bool owns = out.allocated &&
                      out.owner_pid == vc.buf.front().packet_id;
    if (owns && can_consume_credit(vc.out_port, vc.out_vc)) {
      continue;  // Normal progress possible.
    }
    const int og = gid(vc.out_port, vc.out_vc);
    if (absorbed_ & (1u << og)) continue;
    if (rtx->free_slots() <= 0) continue;
    // A waiter only absorbs its own stream, and must leave one slot for
    // the owner: the owner's tail is exactly what releases this VC to the
    // waiter, so starving the owner of barrel space wedges both.
    if (!owns && !(out.has_waiter && out.waiter_gid == g)) continue;
    if (!owns && rtx->free_slots() <= 1) continue;

    Flit f = vc.buf.front();
    vc.buf.pop_front();
    vc.sync_front_arrived();
    --tx_occ_;
    f.vc = vc.out_vc;
    if (owns) {
      // Owner flits go ahead of any queued waiter's in the pending region
      // (the owner's wormhole completes first on the wire).
      rtx->absorb_as_owner(f, out.owner_pid);
    } else {
      rtx->absorb(f);
    }
    ++rtx_occ_;
    refresh_rtx_cache(og);
    absorbed_ |= (1u << og);
    update_output_work(og);
    charge(power::EnergyEvent::kBufferRead);
    charge(power::EnergyEvent::kRtxBufferWrite);
    send_credit(in_port, in_vc);
    if (stats_) stats_->on_flit_absorbed();
    vc.last_advance = now;
    if (is_tail(f.type)) {
      release_input_after_tail(in_port, in_vc, now);
    } else {
      update_input_work(g);
    }
  }

  // Exit recovery as soon as every absorbed flit has drained back out of
  // the retransmission barrels ("once the deadlock configuration is
  // broken, each node resumes its normal operation", §3.2.1). If the
  // deadlock in fact persists, the probing machinery re-confirms it and
  // recovery re-enters. The exit must NOT wait for all blocking to clear:
  // under saturation some VC is always blocked longer than Cthres, and a
  // router that never exits keeps the chip-wide injection gate asserted
  // forever — a livelock (observed with aggressive Cthres values).
  const bool pending = rtx_pending_mask_ != 0;
  // A VC still starving after a long, Cthres-independent window keeps the
  // router in recovery (its absorption capacity stays available and the
  // chip-wide injection gate stays asserted so the region keeps draining).
  bool blocked_long = false;
  for (std::uint32_t m = in_work_; m != 0; m &= m - 1) {
    const auto& in = inputs_[static_cast<std::size_t>(std::countr_zero(m))];
    if ((in.state == VcState::kActive || in.state == VcState::kVaWait ||
         in.state == VcState::kVaReserved) &&
        !in.buf.empty() &&
        now - in.last_advance > cfg_.deadlock.exit_block_window) {
      blocked_long = true;
      break;
    }
  }
  if (!pending && !blocked_long) {
    agent_.exit_recovery();
    FTNOC_TRACE(trace_fmt("[%llu] r%u exit recovery",
                          (unsigned long long)now, id_));
    if (stats_) stats_->on_recovery_exited();
  }
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

// Utilization counts only physically present buffers: mesh-edge ports have
// no link and their VCs can never hold a flit, so including them would
// dilute the Figure 8/9 numbers. Input-buffer occupancy is a running
// counter bumped at every push/pop; barrel occupancy sums are O(set bits)
// of the output work mask (a clear bit proves an empty barrel). Flits only
// ever arrive through connected wires.
int Router::tx_buffer_occupancy() const { return tx_occ_; }

int Router::tx_buffer_slots() const {
  if (tx_slots_cache_ < 0) {
    int ports = 0;
    for (PortId p = 0; p < num_ports_; ++p) {
      if (in_wires_[p] != nullptr) ++ports;
    }
    tx_slots_cache_ = ports * num_vcs_ * cfg_.vc_buffer_depth;
  }
  return tx_slots_cache_;
}

int Router::rtx_buffer_occupancy() const { return rtx_occ_; }

int Router::rtx_buffer_slots() const {
  if (rtx_slots_cache_ < 0) {
    int n = 0;
    for (PortId p = 0; p < num_ports_; ++p) {
      if (out_wires_[p] == nullptr) continue;
      for (VcId v = 0; v < num_vcs_; ++v) {
        const auto& rtx = orx(gid(p, v));
        if (rtx) n += rtx->depth();
      }
    }
    rtx_slots_cache_ = n;
  }
  return rtx_slots_cache_;
}

int Router::input_buffer_size(PortId p, VcId v) const {
  return static_cast<int>(ivc(p, v).buf.size());
}

bool Router::input_vc_active(PortId p, VcId v) const {
  return ivc(p, v).state == VcState::kActive;
}

// ---------------------------------------------------------------------------
// Invariant monitor walks (DESIGN.md §4.8).
// ---------------------------------------------------------------------------

void Router::check_local_invariants(Cycle now) {
#if FTNOC_ENABLE_INVARIANTS
  if (!mon_) return;
  const int pv = num_ports_ * num_vcs_;
  int occ = 0;
  for (int g = 0; g < pv; ++g) {
    const PortId p = static_cast<PortId>(g / num_vcs_);
    const VcId v = static_cast<VcId>(g % num_vcs_);
    const auto& in = inputs_[static_cast<std::size_t>(g)];
    occ += static_cast<int>(in.buf.size());
    const bool in_busy = !in.buf.empty() || in.state != VcState::kRouting;
    if (in_busy != (((in_work_ >> g) & 1u) != 0)) {
      mon_->fail(InvariantId::kWorkMaskAgreement, now, id_, p, v,
                 std::string("in_work_ bit ") + (in_busy ? "clear" : "set") +
                     " for a " + (in_busy ? "busy" : "idle") +
                     " input VC (state=" +
                     std::to_string(static_cast<int>(in.state)) +
                     " buf=" + std::to_string(in.buf.size()) + ")");
    }
    const auto& out = outputs_[static_cast<std::size_t>(g)];
    const auto& rtx = out_rtx_[static_cast<std::size_t>(g)];
    const bool out_busy = out.allocated || out.has_waiter ||
                          (rtx && rtx->occupancy() > 0);
    if (out_busy != (((out_work_ >> g) & 1u) != 0)) {
      mon_->fail(InvariantId::kWorkMaskAgreement, now, id_, p, v,
                 std::string("out_work_ bit ") + (out_busy ? "clear" : "set") +
                     " for a " + (out_busy ? "busy" : "idle") +
                     " output VC (allocated=" + std::to_string(out.allocated) +
                     " waiter=" + std::to_string(out.has_waiter) + " rtx=" +
                     std::to_string(rtx ? rtx->occupancy() : 0) + ")");
    }
  }
  if (occ != tx_occ_) {
    mon_->fail(InvariantId::kOccupancyCounter, now, id_, -1, -1,
               "tx_occ_ running counter is " + std::to_string(tx_occ_) +
                   " but the input buffers hold " + std::to_string(occ) +
                   " flits");
  }
  int rtx_occ = 0;
  for (const auto& rtx : out_rtx_) {
    if (rtx) rtx_occ += rtx->occupancy();
  }
  if (rtx_occ != rtx_occ_) {
    mon_->fail(InvariantId::kOccupancyCounter, now, id_, -1, -1,
               "rtx_occ_ running counter is " + std::to_string(rtx_occ_) +
                   " but the barrels hold " + std::to_string(rtx_occ) +
                   " flits");
  }
  // The barrel summary caches must mirror the barrels exactly: a stale
  // sent/pending bit changes which VCs the maintenance/replay scans visit.
  std::uint32_t sent_m = 0;
  std::uint32_t pend_m = 0;
  for (int g = 0; g < num_ports_ * num_vcs_; ++g) {
    const auto& rtx = out_rtx_[static_cast<std::size_t>(g)];
    if (!rtx) continue;
    if (rtx->sent_count() > 0) {
      sent_m |= 1u << g;
      if (rtx_retire_at_[static_cast<std::size_t>(g)] !=
          rtx->next_retire_at()) {
        mon_->fail(InvariantId::kOccupancyCounter, now, id_,
                   g / num_vcs_, g % num_vcs_,
                   "rtx_retire_at_ mirror is stale");
      }
      if (rtx_min_retire_ > rtx->next_retire_at()) {
        mon_->fail(InvariantId::kOccupancyCounter, now, id_,
                   g / num_vcs_, g % num_vcs_,
                   "rtx_min_retire_ watermark is above a live deadline");
      }
    }
    if (rtx->has_pending()) pend_m |= 1u << g;
  }
  if (sent_m != rtx_sent_mask_ || pend_m != rtx_pending_mask_) {
    mon_->fail(InvariantId::kOccupancyCounter, now, id_, -1, -1,
               "rtx summary masks are stale (sent " +
                   std::to_string(rtx_sent_mask_) + " vs " +
                   std::to_string(sent_m) + ", pending " +
                   std::to_string(rtx_pending_mask_) + " vs " +
                   std::to_string(pend_m) + ")");
  }
  int staged = 0;
  for (PortId p = 0; p < num_ports_; ++p) {
    if (!staged_[p]) continue;
    ++staged;
    if (cfg_.pipeline_stages != 4) {
      mon_->fail(InvariantId::kStagedRegister, now, id_, p, staged_[p]->vc,
                 "ST staging register occupied on a " +
                     std::to_string(cfg_.pipeline_stages) + "-stage router");
    }
  }
  if (staged != staged_count_) {
    mon_->fail(InvariantId::kStagedRegister, now, id_, -1, -1,
               "staged_count_ is " + std::to_string(staged_count_) + " but " +
                   std::to_string(staged) + " register(s) are occupied");
  }
  if (damq_) {
    // Shared-pool conservation (DESIGN.md §4.11): sender side, every
    // shared credit is either free or held by exactly one output VC of
    // its port; receiver side, the port pool's links/counters recount.
    const int shared_budget =
        num_vcs_ * (cfg_.vc_buffer_depth - cfg_.damq_reserve_slots);
    for (PortId p = 0; p < num_ports_; ++p) {
      if (p == kLocalPort) continue;
      int held = 0;
      for (VcId v = 0; v < num_vcs_; ++v) {
        held += shared_held_[static_cast<std::size_t>(gid(p, v))];
      }
      if (shared_credits_[p] + held != shared_budget) {
        mon_->fail(InvariantId::kSharedPoolConservation, now, id_, p, -1,
                   "shared credits " + std::to_string(shared_credits_[p]) +
                       " + held " + std::to_string(held) + " != pool size " +
                       std::to_string(shared_budget));
      }
      if (!in_pools_[p].consistent()) {
        mon_->fail(InvariantId::kSharedPoolConservation, now, id_, p, -1,
                   "input DamqPool free-list/occupancy recount failed");
      }
    }
  }
#else
  (void)now;
#endif
}

long long Router::live_flit_count() const {
  long long n = 0;
  for (const auto& in : inputs_) n += static_cast<long long>(in.buf.size());
  for (PortId p = 0; p < num_ports_; ++p) {
    if (!staged_[p]) continue;
    // A staged *replay* was never consumed from the pending region (the
    // pop happens at flush time), so the pending entry is the one live
    // instance and the register holds its shadow.
    const Flit& s = staged_[p]->stored;
    const auto& rtx = orx(gid(p, staged_[p]->vc));
    const bool shadow = rtx && rtx->has_pending() &&
                        rtx->front_pending().packet_id == s.packet_id &&
                        rtx->front_pending().seq == s.seq;
    if (!shadow) ++n;
  }
  for (const auto& rtx : out_rtx_) {
    if (rtx) n += rtx->pending_count();
  }
  return n;
}

int Router::held_credits(PortId p, VcId v) const {
  const auto& out = ovc(p, v);
  const auto& rtx = orx(gid(p, v));
  int n = out.credits;
  if (rtx) {
    for (int i = 0; i < rtx->pending_count(); ++i) {
      if (rtx->pending_credit_held(i)) ++n;
    }
  }
  if (staged_[p] && staged_[p]->vc == v) {
    // The staged flit holds a downstream slot unless it is a replay whose
    // pending entry still records the credit (counted above).
    const Flit& s = staged_[p]->stored;
    const bool counted_in_pending =
        rtx && rtx->has_pending() &&
        rtx->front_pending().packet_id == s.packet_id &&
        rtx->front_pending().seq == s.seq &&
        rtx->pending_credit_held(0);
    if (!counted_in_pending) ++n;
  }
  return n;
}

int Router::credit_budget(PortId p, VcId v) const {
  if (!damq_ || p == kLocalPort) return cfg_.vc_buffer_depth;
  return cfg_.damq_reserve_slots +
         shared_held_[static_cast<std::size_t>(gid(p, v))];
}

std::uint64_t Router::state_digest() const {
  digest::Fnv h;
  h.mix(static_cast<std::uint64_t>(id_));
  const int pv = num_ports_ * num_vcs_;
  for (int g = 0; g < pv; ++g) {
    const auto& in = inputs_[static_cast<std::size_t>(g)];
    h.mix(static_cast<std::uint64_t>(in.state));
    h.mix(in.candidates);
    h.mix(static_cast<std::uint64_t>(in.out_port));
    h.mix(static_cast<std::uint64_t>(in.out_vc));
    h.mix(static_cast<std::uint64_t>(in.last_advance));
    h.mix(static_cast<std::uint64_t>(in.stall_until));
    h.mix(static_cast<std::uint64_t>(in.state_since));
    h.mix(in.buf.size());
    for (std::size_t i = 0; i < in.buf.size(); ++i) h.mix_flit(in.buf[i]);

    const auto& out = outputs_[static_cast<std::size_t>(g)];
    h.mix(out.allocated);
    h.mix(out.owner_gid);
    h.mix(out.owner_pid);
    h.mix(out.tail_sent);
    h.mix(static_cast<std::uint64_t>(out.credits));
    if (damq_) {
      h.mix(static_cast<std::uint64_t>(
          shared_held_[static_cast<std::size_t>(g)]));
    }
    h.mix(out.has_waiter);
    h.mix(out.waiter_gid);
    h.mix(out.waiter_pid);
    const auto& rtx = out_rtx_[static_cast<std::size_t>(g)];
    h.mix(rtx.has_value());
    if (rtx) {
      h.mix(static_cast<std::uint64_t>(rtx->sent_count()));
      for (int i = 0; i < rtx->sent_count(); ++i) {
        h.mix_flit(rtx->sent_flit(i));
        h.mix(static_cast<std::uint64_t>(rtx->sent_time(i)));
      }
      h.mix(static_cast<std::uint64_t>(rtx->pending_count()));
      for (int i = 0; i < rtx->pending_count(); ++i) {
        h.mix_flit(rtx->pending_flit(i));
        h.mix(rtx->pending_credit_held(i));
      }
    }
    h.mix(static_cast<std::uint64_t>(drop_until_[static_cast<std::size_t>(g)]));
    h.mix(static_cast<std::uint64_t>(
        va_rotation_[static_cast<std::size_t>(g)]));
    h.mix(static_cast<std::uint64_t>(va_arbs_.at(g).last_grant()));
  }
  for (PortId p = 0; p < num_ports_; ++p) {
    if (damq_) h.mix(static_cast<std::uint64_t>(shared_credits_[p]));
    h.mix(staged_[p].has_value());
    if (staged_[p]) {
      h.mix_flit(staged_[p]->wire);
      h.mix_flit(staged_[p]->stored);
      h.mix(static_cast<std::uint64_t>(staged_[p]->vc));
    }
    h.mix(link_dead_[p]);
    h.mix((draining_ & port_bit(p)) != 0);
    h.mix(static_cast<std::uint64_t>(uncorrectable_streak_[p]));
    h.mix(static_cast<std::uint64_t>(sa_in_arbs_.at(p).last_grant()));
    h.mix(static_cast<std::uint64_t>(sa_out_arbs_.at(p).last_grant()));
    h.mix(static_cast<std::uint64_t>(replay_arbs_.at(p).last_grant()));
  }
  h.mix(pending_nacks_.size());
  for (std::size_t i = 0; i < pending_nacks_.size(); ++i) {
    h.mix(static_cast<std::uint64_t>(pending_nacks_[i].port));
    h.mix(static_cast<std::uint64_t>(pending_nacks_[i].vc));
    h.mix(static_cast<std::uint64_t>(pending_nacks_[i].send_at));
  }
  h.mix(outbox_.size());
  for (std::size_t i = 0; i < outbox_.size(); ++i) {
    const auto& item = outbox_[i];
    h.mix(static_cast<std::uint64_t>(item.port));
    h.mix(item.is_probe);
    if (item.is_probe) {
      h.mix_probe(item.probe);
    } else {
      h.mix_activation(item.activation);
    }
  }
  // own_probe_route_ holds at most one entry (a fresh probe clears it),
  // but hash it order-independently of the map's bucket layout anyway.
  h.mix(own_probe_route_.size());
  std::uint64_t route_sum = 0;
  for (const auto& [pid, r] : own_probe_route_) {
    digest::Fnv e;
    e.mix(pid);
    e.mix(static_cast<std::uint64_t>(r.port));
    e.mix(static_cast<std::uint64_t>(r.sent_at));
    route_sum += e.value();
  }
  h.mix(route_sum);
  h.mix(agent_.in_recovery());
  h.mix(agent_.waiting_for_probe());
  h.mix(agent_.outstanding_probe().value_or(0));
  h.mix(static_cast<std::uint64_t>(agent_.failed_probes()));
  h.mix(progress_this_cycle_);
  return h.value();
}

std::string Router::debug_dump(Cycle now) const {
  std::string s = "router " + std::to_string(id_) +
                  (agent_.in_recovery() ? " [RECOVERY]" : "") + "\n";
  static const char* st[] = {"ROUTE", "VAWAIT", "ACTIVE", "RESERV", "DRAIN"};
  for (PortId p = 0; p < num_ports_; ++p) {
    for (VcId v = 0; v < num_vcs_; ++v) {
      const auto& in = ivc(p, v);
      if (in.buf.empty() && in.state == VcState::kRouting) continue;
      s += "  in " + std::string(to_string(static_cast<Direction>(p))) + "_" +
           std::to_string(v) + " " + st[static_cast<int>(in.state)] +
           " buf=" + std::to_string(in.buf.size());
      if (!in.buf.empty()) {
        s += " front=pkt" + std::to_string(in.buf.front().packet_id) + "." +
             std::to_string(in.buf.front().seq);
      }
      s += " out=" +
           (in.out_port == kInvalidPort
                ? std::string("-")
                : std::string(to_string(static_cast<Direction>(in.out_port))) +
                      "_" + std::to_string(in.out_vc));
      s += " idle=" + std::to_string(now - in.last_advance) + "\n";
    }
  }
  for (PortId p = 0; p < num_ports_; ++p) {
    for (VcId v = 0; v < num_vcs_; ++v) {
      const auto& out = ovc(p, v);
      const auto& rtx = orx(gid(p, v));
      const bool quiet = !out.allocated && !out.has_waiter &&
                         (!rtx || rtx->occupancy() == 0);
      if (quiet) continue;
      s += "  out " + std::string(to_string(static_cast<Direction>(p))) +
           "_" + std::to_string(v);
      if (out.allocated) {
        s += " owner=pkt" + std::to_string(out.owner_pid) +
             (out.tail_sent ? "(tail_sent)" : "");
      }
      if (out.has_waiter) s += " waiter=pkt" + std::to_string(out.waiter_pid);
      s += " credits=" + std::to_string(out.credits);
      if (rtx) {
        s += " rtx(sent=" + std::to_string(rtx->sent_count()) +
             ",pend=" + std::to_string(rtx->pending_count()) + ")";
      }
      s += "\n";
    }
  }
  return s;
}

}  // namespace ftnoc

#include "noc/simulator.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace ftnoc {

std::string SimResults::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "latency=%.2f cyc  energy=%.4f nJ/msg  msgs=%llu  "
                "tx_util=%.3f rtx_util=%.3f  corrected(link=%llu rt=%llu "
                "sa=%llu va=%llu)  %s",
                avg_latency_cycles, energy_per_message_nj,
                static_cast<unsigned long long>(measured_messages),
                tx_buffer_utilization, rtx_buffer_utilization,
                static_cast<unsigned long long>(link_errors_corrected),
                static_cast<unsigned long long>(rt_errors_recovered),
                static_cast<unsigned long long>(sa_errors_recovered),
                static_cast<unsigned long long>(va_errors_recovered),
                completed ? "completed" : "TIMED-OUT");
  return buf;
}

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg), net_(std::make_unique<Network>(cfg)) {}

SimResults Simulator::run() {
  Network& net = *net_;
  StatsCollector& stats = net.stats();
  bool warmed_up = cfg_.warmup_messages == 0;
  if (warmed_up) {
    stats.begin_measurement(0);
    net.meter().reset();
  }

  // Drain mode (run_to_drain with a loaded trace/workload): run until
  // every released packet left the network — ejected or dropped en route —
  // instead of counting ejections against total_messages. Meant for pure
  // trace-driven runs (injection_rate = 0); a live synthetic source keeps
  // creating packets and the drain condition then only closes the run at
  // max_cycles. Dead-source drops never enter packets_created, so they
  // need no term here.
  const bool drain_mode = cfg_.run_to_drain && net.trace_loaded();
  auto drained = [&]() {
    return net.trace_drained() &&
           stats.packets_created() ==
               stats.messages_ejected() + stats.unreachable_drops();
  };
  while (net.now() < cfg_.max_cycles &&
         (drain_mode ? !drained()
                     : stats.messages_ejected() < cfg_.total_messages)) {
    net.step();
    if (!warmed_up && stats.messages_ejected() >= cfg_.warmup_messages) {
      warmed_up = true;
      stats.begin_measurement(net.now());
      net.meter().reset();
    }
  }

  SimResults r;
  r.completed = drain_mode ? drained()
                           : stats.messages_ejected() >= cfg_.total_messages;
  r.cycles = net.now();
  if (cfg_.link_stats) {
    const auto& fwd = net.link_fwd_counts();
    const auto& stall = net.link_stall_counts();
    for (std::size_t wid = 0; wid < fwd.size(); ++wid) {
      if (fwd[wid] == 0 && stall[wid] == 0) continue;
      r.link_util.push_back({static_cast<NodeId>(wid / 4),
                             static_cast<std::uint8_t>(wid % 4), fwd[wid],
                             stall[wid]});
    }
  }

  if (!warmed_up) {
    // The run hit max_cycles before ejecting even the warm-up budget:
    // there is no measurement window at all. Report the replica as
    // incomplete with zero measured messages and only the whole-run
    // accounting — computing windowed metrics from the never-started
    // window would report measure_start()=0 garbage (stale throughput,
    // zero-latency "samples") that poisons campaign aggregation.
    r.completed = false;
    r.packets_created = stats.packets_created();
    r.messages_ejected = stats.messages_ejected();
    r.packets_rerouted = stats.packets_rerouted();
    r.unreachable_drops = stats.unreachable_drops();
    r.links_escalated = stats.links_escalated();
    r.links_storm_killed = stats.links_storm_killed();
    r.dead_source_drops = stats.dead_source_drops();
    return r;
  }

  r.avg_latency_cycles = stats.latency().mean();
  r.avg_total_latency_cycles = stats.total_latency().mean();
  r.p50_latency_cycles = stats.latency_histogram().quantile(0.5);
  r.p99_latency_cycles = stats.latency_histogram().quantile(0.99);
  r.max_latency_cycles = stats.latency().max();
  r.measured_messages = stats.measured_messages();
  r.packets_created = stats.packets_created();
  r.messages_ejected = stats.messages_ejected();

  const Cycle measured_cycles =
      net.now() > stats.measure_start() ? net.now() - stats.measure_start()
                                        : 1;
  r.throughput_flits_node_cycle =
      static_cast<double>(r.measured_messages) *
      static_cast<double>(cfg_.packet_length) /
      (static_cast<double>(measured_cycles) *
       static_cast<double>(cfg_.num_nodes()));

  r.total_energy_uj = net.meter().total_pj() * 1e-6;
  r.energy_per_message_nj =
      r.measured_messages
          ? net.meter().total_nj() / static_cast<double>(r.measured_messages)
          : 0.0;

  r.tx_buffer_utilization = stats.tx_buffer_utilization().mean();
  r.rtx_buffer_utilization = stats.rtx_buffer_utilization().mean();

  r.link_errors_corrected = stats.link_errors_corrected();
  r.link_single_corrected = stats.link_single_corrected();
  r.link_retransmission_events = stats.link_retransmission_events();
  r.link_flits_retransmitted = stats.link_flits_retransmitted();
  r.flits_dropped = stats.flits_dropped();
  r.nacks_sent = stats.nacks_sent();
  r.rt_errors_recovered = stats.rt_errors_recovered();
  r.va_errors_recovered = stats.va_errors_recovered();
  r.sa_errors_recovered = stats.sa_errors_recovered();
  r.unprotected_errors = stats.unprotected_errors();
  r.corrupted_delivered = stats.corrupted_delivered();
  r.e2e_retransmits = stats.e2e_retransmits();
  r.rtx_errors_corrected = stats.rtx_errors_corrected();
  r.handshake_errors_corrected = stats.handshake_errors_corrected();
  r.hard_fault_reroutes = stats.hard_fault_reroutes();
  r.packets_rerouted = stats.packets_rerouted();
  r.unreachable_drops = stats.unreachable_drops();
  r.links_escalated = stats.links_escalated();
  r.links_storm_killed = stats.links_storm_killed();
  r.dead_source_drops = stats.dead_source_drops();

  r.probes_sent = stats.probes_sent();
  r.probes_discarded = stats.probes_discarded();
  r.deadlocks_confirmed = stats.deadlocks_confirmed();
  r.recoveries_entered = stats.recoveries_entered();
  r.recoveries_exited = stats.recoveries_exited();
  r.fallback_recoveries = stats.fallback_recoveries();
  r.flits_absorbed = stats.flits_absorbed();
  return r;
}

SimResults run_simulation(const SimConfig& cfg) {
  Simulator sim(cfg);
  return sim.run();
}

}  // namespace ftnoc

#include "noc/routing.hpp"

#include <bit>
#include <cstdlib>

#include "common/check.hpp"

namespace ftnoc {
namespace {

// Signed displacement from `from` to `to` along one dimension of length
// `extent`, choosing the shorter way around on a torus.
int displacement(int from, int to, int extent, bool torus) {
  int d = to - from;
  if (torus) {
    if (d > extent / 2) d -= extent;
    if (d < -extent / 2) d += extent;
  }
  return d;
}

PortMask productive_ports(const Topology& topo, NodeId current, NodeId dest) {
  const Coord c = topo.coord_of(current);
  const Coord t = topo.coord_of(dest);
  const int dx = displacement(c.x, t.x, topo.width(), topo.torus());
  const int dy = displacement(c.y, t.y, topo.height(), topo.torus());
  PortMask m = 0;
  if (dx > 0) m |= port_bit(Direction::kEast);
  if (dx < 0) m |= port_bit(Direction::kWest);
  // Row 0 is the top of the mesh: increasing y moves south.
  if (dy > 0) m |= port_bit(Direction::kSouth);
  if (dy < 0) m |= port_bit(Direction::kNorth);
  return m;
}

PortMask xy_port(const Topology& topo, NodeId current, NodeId dest) {
  const Coord c = topo.coord_of(current);
  const Coord t = topo.coord_of(dest);
  const int dx = displacement(c.x, t.x, topo.width(), topo.torus());
  if (dx > 0) return port_bit(Direction::kEast);
  if (dx < 0) return port_bit(Direction::kWest);
  const int dy = displacement(c.y, t.y, topo.height(), topo.torus());
  if (dy > 0) return port_bit(Direction::kSouth);
  if (dy < 0) return port_bit(Direction::kNorth);
  return port_bit(Direction::kLocal);
}

// Fault-aware mode (DESIGN.md §4.9): offer every live port whose neighbour
// is strictly closer to `dest` in the topology's live-link BFS metric.
// Strict descent makes delivery inevitable for connected pairs (the
// distance is a finite non-negative integer that shrinks every hop) and
// rules out livelock without any history in the packet. Deterministic XY
// degrades to the lowest-numbered descending port so it stays a function
// of (current, dest).
PortMask fault_aware_ports(const Topology& topo, RoutingAlgorithm algo,
                           NodeId current, NodeId dest) {
  const std::uint16_t here = topo.fault_distance(current, dest);
  if (here == Topology::kUnreachable) return 0;
  PortMask m = 0;
  for (PortId p = 0; p < 4; ++p) {
    const auto d = static_cast<Direction>(p);
    if (!topo.link_alive(current, d)) continue;
    if (topo.fault_distance(*topo.neighbor(current, d), dest) < here) {
      m |= port_bit(p);
    }
  }
  FTNOC_DCHECK(m != 0);
  if (algo == RoutingAlgorithm::kXY) return port_bit(first_port(m));
  return m;
}

}  // namespace

int mask_size(PortMask m) {
  return std::popcount(static_cast<unsigned>(m));
}

PortId first_port(PortMask m) {
  if (m == 0) return kInvalidPort;
  return static_cast<PortId>(std::countr_zero(static_cast<unsigned>(m)));
}

PortMask route(const Topology& topo, RoutingAlgorithm algo, NodeId current,
               NodeId dest) {
  FTNOC_DCHECK(current < topo.num_nodes() && dest < topo.num_nodes());
  if (current == dest) return port_bit(Direction::kLocal);
  // A faulted fabric routes by live-link BFS distance for every algorithm;
  // an unreachable destination returns the empty mask (the router drops
  // the packet as unreachable). Fault-free fabrics keep the closed forms
  // below bit-for-bit (the golden digests pin this).
  if (topo.has_faults()) {
    return fault_aware_ports(topo, algo, current, dest);
  }
  return route_fault_free(topo, algo, current, dest);
}

PortMask fault_escape_ports(const Topology& topo, NodeId current,
                            NodeId dest) {
  FTNOC_DCHECK(current < topo.num_nodes() && dest < topo.num_nodes());
  std::uint16_t best = Topology::kUnreachable;
  PortMask m = 0;
  for (PortId p = 0; p < 4; ++p) {
    const auto d = static_cast<Direction>(p);
    if (!topo.link_alive(current, d)) continue;
    const std::uint16_t nd = topo.fault_distance(*topo.neighbor(current, d),
                                                 dest);
    if (nd == Topology::kUnreachable) continue;
    if (nd < best) {
      best = nd;
      m = port_bit(p);
    } else if (nd == best) {
      m |= port_bit(p);
    }
  }
  return m;
}

PortMask route_fault_free(const Topology& topo, RoutingAlgorithm algo,
                          NodeId current, NodeId dest) {
  FTNOC_DCHECK(current < topo.num_nodes() && dest < topo.num_nodes());
  if (current == dest) return port_bit(Direction::kLocal);
  switch (algo) {
    case RoutingAlgorithm::kXY:
      return xy_port(topo, current, dest);
    case RoutingAlgorithm::kMinimalAdaptive:
    case RoutingAlgorithm::kAdaptiveEscape: {
      // The escape scheme routes minimally-adaptively too; the escape-VC
      // restriction (VC 0 only via the XY direction) is a VA policy, not a
      // routing-function property.
      const PortMask m = productive_ports(topo, current, dest);
      FTNOC_DCHECK(m != 0);
      return m;
    }
  }
  return 0;
}

bool xy_step_is_legal(const Topology& topo, NodeId current, PortId in_port,
                      NodeId dest) {
  const auto d = static_cast<Direction>(in_port);
  if (d == Direction::kLocal) return true;  // Injection is always legal.
  const auto sender = topo.neighbor(current, d);
  if (!sender) return false;  // A flit cannot arrive over a missing link.
  return first_port(xy_port(topo, *sender, dest)) ==
         static_cast<PortId>(opposite(d));
}

double average_min_hops(const Topology& topo) {
  const int n = topo.num_nodes();
  double total = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId a = 0; a < n; ++a) {
    const Coord ca = topo.coord_of(a);
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      const Coord cb = topo.coord_of(b);
      total += std::abs(displacement(ca.x, cb.x, topo.width(), topo.torus()));
      total +=
          std::abs(displacement(ca.y, cb.y, topo.height(), topo.torus()));
      ++pairs;
    }
  }
  return pairs ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace ftnoc

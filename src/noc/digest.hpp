#pragma once
// FNV-1a state-digest mixer shared by Router::state_digest() and
// ReferenceRouter::state_digest(). Both implementations traverse their
// architectural state in the same fixed order and feed it through these
// leaf encoders, so equal state always hashes equal — the property the
// differential fuzz harness's lock-step comparison rests on.

#include <cstdint>

#include "core/deadlock.hpp"
#include "core/flit.hpp"

namespace ftnoc::digest {

class Fnv {
 public:
  std::uint64_t value() const { return h_; }

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }

  void mix_flit(const Flit& f) {
    mix(static_cast<std::uint64_t>(f.type));
    mix(f.packet_id);
    mix(static_cast<std::uint64_t>(f.src));
    mix(static_cast<std::uint64_t>(f.dest));
    mix(f.seq);
    mix(static_cast<std::uint64_t>(f.birth_cycle));
    mix(static_cast<std::uint64_t>(f.inject_cycle));
    mix(f.payload);
    mix(f.codeword.lo);
    mix(f.codeword.hi);
    mix(static_cast<std::uint64_t>(f.vc));
    mix(static_cast<std::uint64_t>(f.arrived_cycle));
    mix(f.hops);
  }

  void mix_probe(const ProbeSignal& p) {
    mix(static_cast<std::uint64_t>(p.origin));
    mix(p.probe_id);
    mix(static_cast<std::uint64_t>(p.in_port));
    mix(static_cast<std::uint64_t>(p.in_vc));
    mix(p.hops);
  }

  void mix_activation(const ActivationSignal& a) {
    mix(static_cast<std::uint64_t>(a.origin));
    mix(a.probe_id);
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace ftnoc::digest

#pragma once
// Structure-of-arrays flit storage for the router's input VCs.
//
// The optimized router keeps every input-VC buffer in one contiguous
// gid-major slab (`std::vector<Flit>`, stride = vc_buffer_depth) instead
// of a heap-allocated RingQueue per VC. FlitRing is the non-owning ring
// view over one VC's window of that slab; it mirrors the RingQueue<Flit>
// API subset the phase code uses, so the phases stay layout-agnostic
// while the storage itself is cache-linear in ascending-gid order — the
// same decoupling of logical VC queues from physical buffer storage that
// DAMQ organizations argue for.

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/check.hpp"
#include "core/buffer_policy.hpp"
#include "core/flit.hpp"

namespace ftnoc {

class FlitRing {
 public:
  /// Points this ring at a `cap`-slot window of the shared slab and
  /// empties it. Must be called before the first push, and again if the
  /// slab ever reallocates (it never does after construction).
  void bind(Flit* base, std::uint16_t cap) {
    base_ = base;
    cap_ = cap;
    head_ = 0;
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  Flit& front() {
    FTNOC_DCHECK(size_ > 0);
    return base_[head_];
  }
  const Flit& front() const {
    FTNOC_DCHECK(size_ > 0);
    return base_[head_];
  }

  /// i-th element counted from the front.
  Flit& operator[](std::size_t i) {
    FTNOC_DCHECK(i < size_);
    return base_[wrap(head_ + i)];
  }
  const Flit& operator[](std::size_t i) const {
    FTNOC_DCHECK(i < size_);
    return base_[wrap(head_ + i)];
  }

  void push_back(Flit v) {
    FTNOC_CHECK(size_ < cap_);
    base_[wrap(head_ + size_)] = std::move(v);
    ++size_;
  }

  void pop_front() {
    FTNOC_DCHECK(size_ > 0);
    head_ = static_cast<std::uint16_t>(wrap(head_ + 1));
    --size_;
  }

 private:
  std::size_t wrap(std::size_t i) const {
    return i >= cap_ ? i - cap_ : i;
  }

  Flit* base_ = nullptr;
  std::uint16_t cap_ = 0;
  std::uint16_t head_ = 0;
  std::uint16_t size_ = 0;
};

/// Policy-dispatching input-VC FIFO (DESIGN.md §4.11): a FlitRing view
/// into the slab (private_vc/voq and the local port), or one logical
/// queue of the port's shared DamqPool under damq. Same surface as
/// FlitRing, so the phase code stays buffer-policy-blind. The pool
/// pointer is set once at construction and never changes, so the branch
/// predicts perfectly on the private path (the golden digests pin that
/// path byte-identical to the pre-policy layout).
class FlitBuf {
 public:
  void bind(Flit* base, std::uint16_t cap) { ring_.bind(base, cap); }
  /// Routes this VC's accesses to `vc`'s queue of the port pool instead
  /// of the bound ring.
  void use_pool(DamqPool<Flit>* pool, int vc) {
    pool_ = pool;
    pool_vc_ = vc;
  }

  bool empty() const { return pool_ ? pool_->empty(pool_vc_) : ring_.empty(); }
  std::size_t size() const {
    return pool_ ? static_cast<std::size_t>(pool_->size(pool_vc_))
                 : ring_.size();
  }
  Flit& front() { return pool_ ? pool_->front(pool_vc_) : ring_.front(); }
  const Flit& front() const {
    return pool_ ? pool_->front(pool_vc_) : ring_.front();
  }
  /// i-th element counted from the front. O(i) on the pool path — used
  /// by the state digest only, never by the per-cycle phases.
  const Flit& operator[](std::size_t i) const {
    return pool_ ? pool_->at(pool_vc_, static_cast<int>(i)) : ring_[i];
  }
  void push_back(Flit v) {
    if (pool_) {
      pool_->push_back(pool_vc_, std::move(v));
    } else {
      ring_.push_back(std::move(v));
    }
  }
  void pop_front() {
    if (pool_) {
      pool_->pop_front(pool_vc_);
    } else {
      ring_.pop_front();
    }
  }

 private:
  FlitRing ring_;
  DamqPool<Flit>* pool_ = nullptr;
  int pool_vc_ = 0;
};

}  // namespace ftnoc

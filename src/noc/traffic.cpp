#include "noc/traffic.hpp"

#include "common/check.hpp"

namespace ftnoc {

NodeId pick_destination(const Topology& topo, TrafficPattern p, NodeId src,
                        Rng& rng) {
  const int n = topo.num_nodes();
  NodeId dest = src;
  switch (p) {
    case TrafficPattern::kUniformRandom: {
      // Uniform over all nodes except the source.
      const auto r = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(n - 1)));
      dest = r < src ? r : static_cast<NodeId>(r + 1);
      return dest;
    }
    case TrafficPattern::kBitComplement: {
      // Complement within the index space [0, n): requires n a power of 2
      // (true for the paper's 8x8 = 64 nodes); otherwise reduce mod n.
      dest = static_cast<NodeId>((~static_cast<unsigned>(src)) &
                                 static_cast<unsigned>(n - 1));
      if (dest >= n) dest = static_cast<NodeId>(dest % n);
      break;
    }
    case TrafficPattern::kTornado: {
      // Half-way around each dimension, minus one (Dally & Towles):
      // dx = ceil(X/2) - 1.
      const Coord c = topo.coord_of(src);
      Coord t = c;
      t.x = (c.x + (topo.width() + 1) / 2 - 1) % topo.width();
      t.y = (c.y + (topo.height() + 1) / 2 - 1) % topo.height();
      dest = topo.node_at(t);
      break;
    }
  }
  if (dest == src) dest = static_cast<NodeId>((src + 1) % n);
  return dest;
}

TrafficSource::TrafficSource(const Topology& topo, NodeId self,
                             TrafficPattern pattern, double injection_rate,
                             int packet_length, Rng rng)
    : topo_(topo),
      self_(self),
      pattern_(pattern),
      generate_prob_(injection_rate / packet_length),
      packet_length_(packet_length),
      rng_(rng) {
  FTNOC_CHECK(packet_length >= 1);
  FTNOC_CHECK(generate_prob_ <= 1.0);
}

std::vector<Flit> TrafficSource::build_packet(PacketId pid, NodeId src,
                                              NodeId dest, int packet_length,
                                              Cycle birth, Rng* payload_rng) {
  std::vector<Flit> flits;
  flits.reserve(static_cast<std::size_t>(packet_length));
  for (int i = 0; i < packet_length; ++i) {
    FlitType t;
    if (packet_length == 1) {
      t = FlitType::kHeadTail;
    } else if (i == 0) {
      t = FlitType::kHead;
    } else if (i == packet_length - 1) {
      t = FlitType::kTail;
    } else {
      t = FlitType::kBody;
    }
    const std::uint64_t payload =
        payload_rng ? payload_rng->next_u64()
                    : (static_cast<std::uint64_t>(pid) << 8) | unsigned(i);
    flits.push_back(make_flit(t, pid, src, dest, static_cast<std::uint8_t>(i),
                              birth, payload));
  }
  return flits;
}

std::optional<std::vector<Flit>> TrafficSource::maybe_generate(
    Cycle now, PacketId& next_packet_id) {
  if (!rng_.bernoulli(generate_prob_)) return std::nullopt;
  const NodeId dest = pick_destination(topo_, pattern_, self_, rng_);
  return build_packet(next_packet_id++, self_, dest, packet_length_, now,
                      &rng_);
}

}  // namespace ftnoc

#include "noc/network.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "common/log.hpp"
#include "noc/digest.hpp"
#include "noc/reference_router.hpp"
#include "noc/workload.hpp"

namespace ftnoc {
namespace {
constexpr PortId kLocalPort = static_cast<PortId>(Direction::kLocal);

void mix_wire(digest::Fnv& h, const Wire& w) {
  h.mix(w.flit.peek().has_value());
  if (w.flit.peek()) h.mix_flit(*w.flit.peek());
  const auto& credits = w.credit.peek();
  h.mix(credits.size());
  for (const Credit& c : credits) h.mix(static_cast<std::uint64_t>(c.vc));
  h.mix(w.nack.peek().has_value());
  if (w.nack.peek()) h.mix(static_cast<std::uint64_t>(w.nack.peek()->vc));
  h.mix(w.probe.peek().has_value());
  if (w.probe.peek()) h.mix_probe(*w.probe.peek());
  h.mix(w.activation.peek().has_value());
  if (w.activation.peek()) h.mix_activation(*w.activation.peek());
}
}

// ---------------------------------------------------------------------------
// ProcessingElement
// ---------------------------------------------------------------------------

ProcessingElement::ProcessingElement(NodeId self, const SimConfig& cfg,
                                     const Topology& topo, Wire* to_router,
                                     StatsCollector* stats, Rng rng)
    : self_(self), cfg_(cfg), wire_(to_router), stats_(stats) {
  if (cfg.injection_rate > 0.0) {
    source_.emplace(topo, self, cfg.pattern, cfg.injection_rate,
                    cfg.packet_length, rng);
  }
  lanes_.resize(static_cast<std::size_t>(cfg.num_vcs));
  for (auto& lane : lanes_) lane.credits = cfg.vc_buffer_depth;
}

void ProcessingElement::enqueue_packet(std::vector<Flit> flits, bool front) {
  FTNOC_CHECK(!flits.empty());
  if (front) {
    pending_.push_front(std::move(flits));
  } else {
    pending_.push_back(std::move(flits));
  }
}

void ProcessingElement::hold_for_e2e(const std::vector<Flit>& flits) {
  e2e_buffer_.emplace(flits.front().packet_id, flits);
}

void ProcessingElement::e2e_ack(PacketId pid) {
  e2e_buffer_.erase(pid);
}

void ProcessingElement::e2e_nack(PacketId pid) {
  const auto it = e2e_buffer_.find(pid);
  if (it == e2e_buffer_.end()) return;  // Already acknowledged (stale NACK).
  // Retransmit a clean copy: re-encode every codeword from the ground-truth
  // payload and inject ahead of new traffic. The original birth cycle is
  // preserved so the measured latency includes the full recovery.
  std::vector<Flit> copy = it->second;
  for (auto& f : copy) f.codeword = ecc::encode(f.payload);
  if (stats_) stats_->on_e2e_retransmit();
  enqueue_packet(std::move(copy), /*front=*/true);
}

bool ProcessingElement::step(Cycle now, PacketId& next_packet_id,
                             bool router_in_recovery) {
  // Credits returned by the router's local input buffers (the wire's
  // tick-time summary byte spares the vector touch on credit-free cycles).
  if (wire_->cur_mask & Wire::kCurCredit) {
    for (const Credit& c : wire_->credit.read()) {
      auto& lane = lanes_.at(c.vc);
      ++lane.credits;
      FTNOC_CHECK(lane.credits <= cfg_.vc_buffer_depth);
    }
  }

  // Generate new traffic.
  if (source_) {
    if (auto pkt = source_->maybe_generate(now, next_packet_id)) {
      if (stats_) stats_->on_packet_created();
      if (cfg_.protection == LinkProtection::kE2e) hold_for_e2e(*pkt);
      pending_.push_back(std::move(*pkt));
    }
  }

  // Move waiting packets into free lanes (one wormhole per local VC) —
  // unless the router is recovering from a deadlock, which admits no new
  // packets.
  for (std::size_t v = 0; !router_in_recovery && v < lanes_.size(); ++v) {
    if (pending_.empty()) break;
    auto& lane = lanes_[v];
    if (lane.busy || !lane.flits.empty()) continue;
    // Under voq, lane v only carries packets whose destination column maps
    // to class v; take the oldest such packet (plain FIFO otherwise).
    auto it = pending_.begin();
    if (cfg_.buffer_policy == BufferPolicyKind::kVoq) {
      while (it != pending_.end() &&
             voq_class(it->front().dest, cfg_.mesh_width, cfg_.num_vcs) !=
                 static_cast<int>(v)) {
        ++it;
      }
      if (it == pending_.end()) continue;
    }
    auto pkt = std::move(*it);
    pending_.erase(it);
    lane.busy = true;
    for (auto& f : pkt) {
      f.vc = static_cast<VcId>(v);
      lane.flits.push_back(std::move(f));
    }
  }

  // Send at most one flit per cycle over the PE-to-router channel.
  if (!wire_->flit.can_write()) return false;
  const int nv = static_cast<int>(lanes_.size());
  for (int off = 0; off < nv; ++off) {
    const int v = (send_rotation_ + off) % nv;
    auto& lane = lanes_[static_cast<std::size_t>(v)];
    if (lane.flits.empty() || lane.credits <= 0) continue;
    Flit f = lane.flits.front();
    lane.flits.pop_front();
    --lane.credits;
    // Stamp the network-injection time on the whole packet the moment its
    // header enters the network (the wire delivers it next cycle, hence
    // now + 1 — which also keeps 0 available as the "not injected yet"
    // sentinel). An E2E retransmission keeps the first attempt's stamp.
    if (is_head(f.type) && f.inject_cycle == 0) {
      const Cycle stamp = now + 1;
      for (auto& rest : lane.flits) rest.inject_cycle = stamp;
      f.inject_cycle = stamp;
      const auto held = e2e_buffer_.find(f.packet_id);
      if (held != e2e_buffer_.end()) {
        for (auto& h : held->second) h.inject_cycle = stamp;
      }
    }
    wire_->flit.write(f);
    if (stats_) stats_->on_flit_injected();
    if (lane.flits.empty()) lane.busy = false;
    send_rotation_ = (v + 1) % nv;
    return true;
  }
  return false;
}

std::uint64_t ProcessingElement::state_digest() const {
  digest::Fnv h;
  h.mix(static_cast<std::uint64_t>(self_));
  h.mix(static_cast<std::uint64_t>(send_rotation_));
  h.mix(lanes_.size());
  for (const auto& lane : lanes_) {
    h.mix(lane.busy);
    h.mix(static_cast<std::uint64_t>(lane.credits));
    h.mix(lane.flits.size());
    for (const Flit& f : lane.flits) h.mix_flit(f);
  }
  h.mix(pending_.size());
  for (const auto& pkt : pending_) {
    h.mix(pkt.size());
    for (const Flit& f : pkt) h.mix_flit(f);
  }
  // e2e_buffer_ is unordered; fold entry hashes order-independently.
  h.mix(e2e_buffer_.size());
  std::uint64_t sum = 0;
  for (const auto& [pid, flits] : e2e_buffer_) {
    digest::Fnv e;
    e.mix(pid);
    e.mix(flits.size());
    for (const Flit& f : flits) e.mix_flit(f);
    sum += e.value();
  }
  h.mix(sum);
  return h.value();
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

Network::Network(const SimConfig& cfg)
    : cfg_(cfg),
      topo_(cfg.mesh_width, cfg.mesh_height, cfg.torus),
      root_rng_(cfg.seed),
      faults_(cfg.faults, Rng(cfg.seed ^ 0xFA017EC7ULL)) {
  if (auto err = cfg_.validate()) {
    FTNOC_ERROR("invalid SimConfig: " + *err);
    FTNOC_CHECK(false && "invalid SimConfig");
  }
  const int n = topo_.num_nodes();
  eject_state_.resize(static_cast<std::size_t>(n));

  routers_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    if (cfg_.use_reference_router) {
      routers_.push_back(std::make_unique<ReferenceRouter>(
          i, cfg_, topo_, &faults_, &meter_, &stats_));
    } else {
      routers_.push_back(std::make_unique<Router>(i, cfg_, topo_, &faults_,
                                                  &meter_, &stats_));
    }
  }

  if (cfg_.check_invariants) {
#if FTNOC_ENABLE_INVARIANTS
    monitor_ = std::make_unique<InvariantMonitor>(cfg_);
    for (auto& r : routers_) r->set_monitor(monitor_.get());
#else
    FTNOC_WARN(
        "check_invariants requested but the monitor hooks were compiled "
        "out (-DFTNOC_INVARIANTS=OFF); running unchecked");
#endif
  }

  // Wires. link_wires_[node*4 + d] is the directed wire leaving `node`
  // through direction d (flit/probe/activation forward; credit/NACK back).
  link_wires_.resize(static_cast<std::size_t>(n) * 4);
  local_wires_.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    for (int d = 0; d < 4; ++d) {
      if (topo_.has_neighbor(i, static_cast<Direction>(d))) {
        link_wires_[static_cast<std::size_t>(i) * 4 + d] =
            std::make_unique<Wire>();
      }
    }
    local_wires_[i] = std::make_unique<Wire>();
  }

  for (NodeId i = 0; i < n; ++i) {
    for (int d = 0; d < 4; ++d) {
      const auto dir = static_cast<Direction>(d);
      Wire* out = link_wires_[static_cast<std::size_t>(i) * 4 + d].get();
      Wire* in = nullptr;
      if (auto nb = topo_.neighbor(i, dir)) {
        const int back = static_cast<int>(opposite(dir));
        in = link_wires_[static_cast<std::size_t>(*nb) * 4 + back].get();
      }
      routers_[i]->connect(static_cast<PortId>(d), in, out);
    }
    routers_[i]->connect(kLocalPort, local_wires_[i].get(), nullptr);
    routers_[i]->set_eject_fn([this, i](const Flit& f, Cycle now) {
      on_eject(i, f, now);
    });
  }

  pes_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    pes_.push_back(std::make_unique<ProcessingElement>(
        i, cfg_, topo_, local_wires_[i].get(), &stats_, root_rng_.fork()));
  }

  // Hard faults: kill both directions of each configured physical link
  // (static outages, pre-programmed in the VA link-state tables per §4.2),
  // mirrored into the topology so route() switches to fault-aware mode.
  for (const auto& [node, dir] : cfg_.dead_links) {
    const auto nb = topo_.neighbor(node, dir);
    if (!nb) continue;  // Already a mesh edge; nothing to fail.
    topo_.fail_link(node, dir);
    routers_[node]->fail_link(static_cast<PortId>(dir));
    routers_[*nb]->fail_link(static_cast<PortId>(opposite(dir)));
  }
  // Dead routers: every attached link dies with the node, and the node's
  // PE is never stepped (it can neither inject nor receive). The router
  // and PE objects are still constructed so wiring, ids and the RNG fork
  // order stay identical to the fault-free build.
  for (const NodeId node : cfg_.dead_routers) {
    for (int d = 0; d < 4; ++d) {
      const auto dir = static_cast<Direction>(d);
      const auto nb = topo_.neighbor(node, dir);
      if (!nb || !topo_.link_alive(node, dir)) continue;
      routers_[node]->fail_link(static_cast<PortId>(d));
      routers_[*nb]->fail_link(static_cast<PortId>(opposite(dir)));
    }
    topo_.fail_router(node);
  }

  // Kernel selection (DESIGN.md §4.10). The reference model keeps no wake
  // bookkeeping, so reference networks always run the full scan.
  scan_kernel_ = cfg_.use_reference_router || cfg_.force_scan_kernel;
  if (!scan_kernel_) {
    const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
    for (auto& slot : wheel_) slot.assign(words, 0);
    const std::size_t nwires = link_wires_.size() + local_wires_.size();
    live_wire_mask_.assign((nwires + 63) / 64, 0);
    tx_occ_cache_.assign(static_cast<std::size_t>(n), 0);
    rtx_occ_cache_.assign(static_cast<std::size_t>(n), 0);
    // Devirtualized router view + flat geometric-neighbour table for the
    // hot pop/wake loop (geometry never changes after construction).
    fast_routers_.resize(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
      fast_routers_[i] = static_cast<Router*>(routers_[i].get());
    }
    nbr_gid_.assign(static_cast<std::size_t>(n) * 4, -1);
    for (NodeId i = 0; i < n; ++i) {
      for (int d = 0; d < 4; ++d) {
        const auto nb = topo_.neighbor(i, static_cast<Direction>(d));
        if (nb) nbr_gid_[static_cast<std::size_t>(i) * 4 +
                         static_cast<std::size_t>(d)] =
            static_cast<std::int32_t>(*nb);
      }
    }
    // Everybody gets one initial step at cycle 0; routers that stay
    // quiescent simply never re-arm (a dead node's router among them).
    auto& slot0 = wheel_[0];
    for (NodeId i = 0; i < n; ++i) slot0[i >> 6] |= 1ull << (i & 63);
  }

  // Per-link analytics (DESIGN.md §4.14). Allocated only when asked for:
  // the default path must not touch a byte it didn't before.
  if (cfg_.link_stats) {
    link_fwd_.assign(link_wires_.size(), 0);
    link_stall_.assign(link_wires_.size(), 0);
    link_stats_nbr_.assign(link_wires_.size(), -1);
    for (NodeId i = 0; i < n; ++i) {
      for (int d = 0; d < 4; ++d) {
        const auto nb = topo_.neighbor(i, static_cast<Direction>(d));
        if (nb) {
          link_stats_nbr_[static_cast<std::size_t>(i) * 4 +
                          static_cast<std::size_t>(d)] =
              static_cast<std::int32_t>(*nb);
        }
      }
    }
  }

  // Workload ingestion (DESIGN.md §4.14): parse + expand into TraceRecords
  // and hand them to the replay path. A malformed workload is a config
  // error, caught here where the node count is known.
  if (cfg_.has_workload()) {
    std::string werr;
    std::vector<TraceRecord> records =
        cfg_.workload_file.empty()
            ? load_workload_text(cfg_.workload_text, n, &werr)
            : load_workload_file(cfg_.workload_file, n, &werr);
    if (!werr.empty()) {
      FTNOC_ERROR("invalid workload: " + werr);
      FTNOC_CHECK(false && "invalid workload");
    }
    load_trace(std::move(records));
  }
}

int Network::hop_distance(NodeId a, NodeId b) const {
  const Coord ca = topo_.coord_of(a);
  const Coord cb = topo_.coord_of(b);
  // Manhattan distance; for a torus the wrap-around path may be shorter,
  // but the E2E control path is routed minimally either way.
  int dx = std::abs(ca.x - cb.x);
  int dy = std::abs(ca.y - cb.y);
  if (topo_.torus()) {
    dx = std::min(dx, topo_.width() - dx);
    dy = std::min(dy, topo_.height() - dy);
  }
  return dx + dy;
}

void Network::on_eject(NodeId dest, const Flit& f, Cycle now) {
  auto& state = eject_state_[dest];
  EjectRecord& rec = state[f.packet_id];
  ++rec.flits;

  // Payload oracle: decode what is actually on the wires and compare with
  // the ground truth the source encoded.
  if (cfg_.protection == LinkProtection::kE2e) {
    meter_.charge(power::EnergyEvent::kEccCheck);
  }
  const ecc::DecodeResult r = ecc::decode(f.codeword);
  const bool flit_bad =
      r.status == ecc::DecodeStatus::kUncorrectable || r.data != f.payload ||
      (cfg_.ecc_detect_only && r.status != ecc::DecodeStatus::kClean);
  if (flit_bad) rec.bad = true;
  if (r.status == ecc::DecodeStatus::kCorrected &&
      cfg_.protection == LinkProtection::kE2e) {
    stats_.on_link_single_corrected();
  }

  if (!is_tail(f.type)) return;

  // An incomplete message (dropped flits that were never replayed, e.g.
  // after a lost NACK) is corrupt even if every delivered flit is clean.
  // The intended length is the tail's sequence number + 1, not the global
  // packet_length knob: trace/workload packets carry their own lengths.
  const bool packet_bad =
      rec.bad || rec.flits != static_cast<int>(f.seq) + 1;
  state.erase(f.packet_id);

  if (cfg_.protection == LinkProtection::kE2e) {
    const Cycle delay = static_cast<Cycle>(hop_distance(dest, f.src)) + 1;
    if (packet_bad) {
      // Request a retransmission from the source; the message is not
      // delivered yet.
      edge_events_.emplace(now + delay,
                           EdgeEvent{f.src, f.packet_id, /*is_nack=*/true});
      return;
    }
    edge_events_.emplace(now + delay,
                         EdgeEvent{f.src, f.packet_id, /*is_nack=*/false});
  }

  if (packet_bad) stats_.on_unprotected_error();
  stats_.on_message_ejected(now, f.birth_cycle, f.inject_cycle, packet_bad);
  if (delivery_listener_) delivery_listener_(dest, f, now);
}

void Network::fire_due_events() {
  while (!edge_events_.empty() && edge_events_.begin()->first <= now_) {
    const EdgeEvent ev = edge_events_.begin()->second;
    edge_events_.erase(edge_events_.begin());
    if (ev.is_nack) {
      pes_[ev.target]->e2e_nack(ev.pid);
    } else {
      pes_[ev.target]->e2e_ack(ev.pid);
    }
  }
}

PacketId Network::inject_packet(NodeId src, NodeId dest, int length) {
  const PacketId pid = next_packet_id_++;
  auto flits =
      TrafficSource::build_packet(pid, src, dest, length, now_, nullptr);
  stats_.on_packet_created();
  if (cfg_.protection == LinkProtection::kE2e) pes_[src]->hold_for_e2e(flits);
  pes_[src]->enqueue_packet(std::move(flits));
  return pid;
}

void Network::load_trace(std::vector<TraceRecord> records) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    FTNOC_CHECK(records[i].cycle >= now_);
    FTNOC_CHECK(i == 0 || records[i].cycle >= records[i - 1].cycle);
    FTNOC_CHECK(records[i].src < topo_.num_nodes());
    FTNOC_CHECK(records[i].dest < topo_.num_nodes());
  }
  trace_ = std::move(records);
  trace_next_ = 0;
}

double Network::tx_buffer_fraction() const {
  long long occ = 0;
  long long slots = 0;
  for (const auto& r : routers_) {
    occ += r->tx_buffer_occupancy();
    slots += r->tx_buffer_slots();
  }
  return slots ? static_cast<double>(occ) / static_cast<double>(slots) : 0.0;
}

double Network::rtx_buffer_fraction() const {
  long long occ = 0;
  long long slots = 0;
  for (const auto& r : routers_) {
    occ += r->rtx_buffer_occupancy();
    slots += r->rtx_buffer_slots();
  }
  return slots ? static_cast<double>(occ) / static_cast<double>(slots) : 0.0;
}

void Network::step() {
  if (scan_kernel_) {
    step_scan();
  } else {
    step_event();
  }
}

bool Network::try_kill_link(NodeId n, Direction dir, bool storm) {
  const auto nb = topo_.neighbor(n, dir);
  if (!nb || !topo_.link_alive(n, dir)) return false;
  // Partition veto: the topology already reflects every kill accepted
  // earlier this same cycle (fail_link is applied per acceptance, below),
  // so a batch of same-cycle requests is vetoed against the accepted set,
  // not against the pristine pre-batch topology.
  if (topo_.would_partition(n, dir)) return false;  // Veto: limp on.
  topo_.fail_link(n, dir);
  if (storm) {
    stats_.on_storm_link_killed();
  } else {
    stats_.on_link_escalated();
  }
  routers_[n]->begin_link_drain(static_cast<PortId>(dir), now_);
  routers_[*nb]->begin_link_drain(static_cast<PortId>(opposite(dir)), now_);
  if (!scan_kernel_) {
    // A granted kill puts both endpoints back on the schedule until their
    // drains complete.
    schedule(n, now_ + 1);
    schedule(*nb, now_ + 1);
  }
  return true;
}

void Network::fire_storm_kills() {
  // Both kernels call this unconditionally every cycle (Network::step is
  // never skipped), so the storm timeline fires at identical cycles under
  // scan and event execution. Vetoed kills are skipped, never retried —
  // exactly the escalation path's limp-on behaviour.
  while (next_storm_kill_ < cfg_.storm_kills.size() &&
         cfg_.storm_kills[next_storm_kill_].at <= now_) {
    const auto& k = cfg_.storm_kills[next_storm_kill_++];
    try_kill_link(k.node, k.dir, /*storm=*/true);
  }
}

void Network::release_due_trace() {
  // Trace replay: release the records due this cycle into their source
  // PEs' queues (injection still obeys local-port credit flow control).
  while (trace_next_ < trace_.size() &&
         trace_[trace_next_].cycle <= now_) {
    const TraceRecord& r = trace_[trace_next_++];
    if (!topo_.router_alive(r.src)) {
      // A hard-dead source can never drive its injection wire; queueing
      // the packet at its PE would leak it forever (and wedge
      // run_to_drain). Count it and move on — mirrors how packets *to* a
      // dead router are dropped as unreachable en route.
      stats_.on_dead_source_drop();
      continue;
    }
    inject_packet(r.src, r.dest, r.length);
  }
}

void Network::step_scan() {
  fire_due_events();
  release_due_trace();
  // "No new packets are allowed to enter the transmission buffers that are
  // involved in the deadlock recovery" (§3.2.1), enforced transitively
  // with a chip-wide wired-OR "recovery in progress" line: while ANY
  // router recovers, every PE stops *starting* packets (in-flight packets
  // keep streaming). Without it, sources far from the deadlock keep
  // refilling the slack that absorption creates and a saturated region
  // gridlocks at population == capacity, where Eq. (1) no longer holds.
  for (NodeId i = 0; i < static_cast<NodeId>(pes_.size()); ++i) {
    if (!topo_.router_alive(i)) continue;  // Dead node: PE is off.
    pes_[i]->step(now_, next_packet_id_,
                  recovery_line_ || routers_[i]->in_recovery());
  }
  for (auto& r : routers_) r->step(now_);
  // Fault-storm timeline (§4.12): configured kills fire before the
  // escalation poll so a storm cycle and an organic escalation compose in
  // a fixed order.
  fire_storm_kills();
  // Runtime escalation (§4.9): promote links whose receivers report a
  // sustained uncorrectable-error streak to hard-dead — unless the kill
  // would partition the live mesh, in which case the link limps on (the
  // streak re-arms and re-requests). Polled in ascending node/port order
  // so both router implementations see identical escalation sequences.
  if (cfg_.faults.link_escalation_threshold > 0) {
    for (NodeId i = 0; i < static_cast<NodeId>(routers_.size()); ++i) {
      const std::uint8_t reqs = routers_[i]->take_escalation_requests();
      if (reqs == 0) continue;
      for (int d = 0; d < 4; ++d) {
        if ((reqs & (1u << d)) == 0) continue;
        try_kill_link(i, static_cast<Direction>(d), /*storm=*/false);
      }
    }
  }
  // Buffer-utilization sampling scans every router; sample_buffers drops
  // pre-measurement samples anyway, so skip the scan entirely until the
  // warmup ends.
  if (stats_.measuring()) {
    stats_.sample_buffers(tx_buffer_fraction(), rtx_buffer_fraction());
  }

  // The wired-OR recovery line can only be asserted when deadlock recovery
  // exists at all; skip the router scan otherwise.
  recovery_line_ = false;
  if (cfg_.deadlock.enable_recovery) {
    for (const auto& r : routers_) {
      if (r->in_recovery()) {
        recovery_line_ = true;
        break;
      }
    }
  }

  for (auto& w : link_wires_) {
    if (w) w->tick();
  }
  for (auto& w : local_wires_) w->tick();
  if (cfg_.link_stats) accumulate_link_stats();
#if FTNOC_ENABLE_INVARIANTS
  // After the wire ticks everything in flight is visible in a channel's
  // current value, so the structural walks see a settled snapshot.
  if (monitor_) run_invariant_walks();
#endif
  ++now_;
}

void Network::accumulate_link_stats() {
  if (!stats_.measuring()) return;
  // Post-tick, a wire's cur_mask reflects exactly what the consumer can
  // read next cycle — including under the event kernel, where a settled
  // wire recomputed cur_mask = 0 at its final tick before leaving the
  // live list. A readable flit means the link carried traffic this cycle;
  // an idle link whose receiver still buffers flits from it is stalled
  // (the wormhole is blocked downstream — the congestion signal the
  // heatmaps plot).
  for (std::size_t wid = 0; wid < link_wires_.size(); ++wid) {
    const Wire* w = link_wires_[wid].get();
    if (!w) continue;
    if (w->cur_mask & Wire::kCurFlit) {
      ++link_fwd_[wid];
      continue;
    }
    const std::int32_t nb = link_stats_nbr_[wid];
    if (nb < 0) continue;  // No wire without a neighbor; belt and braces.
    const auto back =
        static_cast<PortId>(opposite(static_cast<Direction>(wid & 3)));
    int occ = 0;
    for (int v = 0; v < cfg_.num_vcs; ++v) {
      occ += routers_[static_cast<std::size_t>(nb)]->input_buffer_size(
          back, static_cast<VcId>(v));
    }
    if (occ > 0) ++link_stall_[wid];
  }
}

void Network::schedule(NodeId n, Cycle due) {
  if (due >= now_ + kWheelSize) {
    far_due_[due].push_back(n);
    return;
  }
  auto& slot = wheel_[due & (kWheelSize - 1)];
  slot[n >> 6] |= 1ull << (n & 63);
}

void Network::mark_wire_live(std::uint32_t wid) {
  if ((live_wire_mask_[wid >> 6] >> (wid & 63)) & 1ull) return;
  live_wire_mask_[wid >> 6] |= 1ull << (wid & 63);
  live_wires_.push_back(wid);
}

// The event kernel. Byte-identical to step_scan() by construction:
//  * a router is stepped at cycle t iff a signal written at t-1 is readable
//    on one of its wires this cycle (the writer's wake masks), its own
//    retained state demands it (retick — the internal half of the
//    quiescent() predicate), or its one exact timer (own-probe GC) is due;
//  * every step the scan kernel would *not* fast-path away falls in that
//    set, and extra steps hit the quiescent fast path, which is a pinned
//    no-op (no RNG draws, charges, stats or arbiter movement);
//  * wires hold a signal for exactly one cycle, so only wires with
//    something in flight need ticking — an untouched wire's tick is a
//    no-op by construction;
//  * PEs are stepped unconditionally (synthetic sources draw RNG every
//    cycle; a sourceless idle PE's step changes nothing).

void Network::step_event() {
  fire_due_events();
  release_due_trace();
  for (NodeId i = 0; i < static_cast<NodeId>(pes_.size()); ++i) {
    if (!topo_.router_alive(i)) continue;  // Dead node: PE is off.
    if (pes_[i]->step(now_, next_packet_id_,
                      recovery_line_ || fast_routers_[i]->in_recovery())) {
      // The PE drove the injection wire: the router consumes next cycle.
      schedule(i, now_ + 1);
      mark_wire_live(local_wire_id(i));
    }
  }

  // Spill far timers that moved inside the wheel horizon.
  while (!far_due_.empty() &&
         far_due_.begin()->first < now_ + kWheelSize) {
    const auto it = far_due_.begin();
    auto& slot = wheel_[it->first & (kWheelSize - 1)];
    for (const NodeId n : it->second) slot[n >> 6] |= 1ull << (n & 63);
    far_due_.erase(it);
  }

  // Pop this cycle's bucket; step the due routers in ascending node order
  // (the scan's order — the shared fault-injector RNG, stats and energy
  // meter make the within-cycle order observable).
  stepped_.clear();
  auto& slot = wheel_[now_ & (kWheelSize - 1)];
  for (std::size_t w = 0; w < slot.size(); ++w) {
    std::uint64_t bits = slot[w];
    slot[w] = 0;
    while (bits != 0) {
      const auto i = static_cast<NodeId>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      Router* const r = fast_routers_[i];
      r->step(now_);
      stepped_.push_back(i);

      const WakeInfo wi = r->take_wake_info();
      if (wi.retick) {
        schedule(i, now_ + 1);
      } else if (wi.timer != 0) {
        // A timer can land in the past when its condition armed late
        // (e.g. the agent's probe stopped being outstanding after the
        // GC deadline already passed); fire it next cycle.
        schedule(i, wi.timer > now_ ? wi.timer : now_ + 1);
      }
      for (std::uint8_t m = wi.wrote_fwd; m != 0;
           m &= static_cast<std::uint8_t>(m - 1)) {
        const int d = std::countr_zero(static_cast<unsigned>(m));
        const std::int32_t nb =
            nbr_gid_[static_cast<std::size_t>(i) * 4 +
                     static_cast<std::size_t>(d)];
        FTNOC_DCHECK(nb >= 0);
        mark_wire_live(static_cast<std::uint32_t>(i) * 4 +
                       static_cast<std::uint32_t>(d));
        if (nb >= 0) schedule(static_cast<NodeId>(nb), now_ + 1);
      }
      for (std::uint8_t m = wi.wrote_back; m != 0;
           m &= static_cast<std::uint8_t>(m - 1)) {
        const int d = std::countr_zero(static_cast<unsigned>(m));
        if (d == kLocalPort) {
          // Credit back to the PE; PEs step every cycle regardless.
          mark_wire_live(local_wire_id(i));
          continue;
        }
        const std::int32_t nb =
            nbr_gid_[static_cast<std::size_t>(i) * 4 +
                     static_cast<std::size_t>(d)];
        FTNOC_DCHECK(nb >= 0);
        if (nb < 0) continue;
        mark_wire_live(static_cast<std::uint32_t>(nb) * 4 +
                       static_cast<std::uint32_t>(
                           opposite(static_cast<Direction>(d))));
        schedule(static_cast<NodeId>(nb), now_ + 1);
      }

      // Only a stepped router can change its occupancy terms.
      const int txo = r->tx_buffer_occupancy();
      const int rxo = r->rtx_buffer_occupancy();
      tx_occ_total_ += txo - tx_occ_cache_[i];
      tx_occ_cache_[i] = txo;
      rtx_occ_total_ += rxo - rtx_occ_cache_[i];
      rtx_occ_cache_[i] = rxo;
    }
  }

  // Fault-storm timeline (§4.12): fires at the same pre-escalation point
  // as in step_scan — Network::step runs every cycle under both kernels,
  // so the schedules coincide exactly.
  fire_storm_kills();
  // Runtime escalation (§4.9): only stepped routers can have raised a
  // request (the poll clears the set every cycle a router runs), and
  // stepped_ is ascending — the scan's visit order. A granted kill puts
  // both endpoints back on the schedule until their drains complete.
  if (cfg_.faults.link_escalation_threshold > 0) {
    for (const NodeId i : stepped_) {
      const std::uint8_t reqs = fast_routers_[i]->take_escalation_requests();
      if (reqs == 0) continue;
      for (int d = 0; d < 4; ++d) {
        if ((reqs & (1u << d)) == 0) continue;
        try_kill_link(i, static_cast<Direction>(d), /*storm=*/false);
      }
    }
  }

  if (stats_.measuring()) {
    if (tx_slots_total_ < 0) {
      tx_slots_total_ = 0;
      rtx_slots_total_ = 0;
      for (const auto& r : routers_) {
        tx_slots_total_ += r->tx_buffer_slots();
        rtx_slots_total_ += r->rtx_buffer_slots();
      }
    }
    // Integer sums are order-independent, so the incrementally maintained
    // totals divide to the scan's exact doubles.
    stats_.sample_buffers(
        tx_slots_total_ ? static_cast<double>(tx_occ_total_) /
                              static_cast<double>(tx_slots_total_)
                        : 0.0,
        rtx_slots_total_ ? static_cast<double>(rtx_occ_total_) /
                               static_cast<double>(rtx_slots_total_)
                         : 0.0);
  }

  // Wired-OR recovery line: a recovering router always re-ticks itself
  // (in_recovery is part of the retick predicate) and recovery is entered
  // and exited only inside step(), so the stepped set covers every
  // possible asserter.
  recovery_line_ = false;
  if (cfg_.deadlock.enable_recovery) {
    for (const NodeId i : stepped_) {
      if (fast_routers_[i]->in_recovery()) {
        recovery_line_ = true;
        break;
      }
    }
  }

  // Tick only wires with signals in flight; settled wires leave the list.
  std::size_t keep = 0;
  for (std::size_t k = 0; k < live_wires_.size(); ++k) {
    const std::uint32_t wid = live_wires_[k];
    if (wire_by_id(wid)->tick_live()) {
      live_wires_[keep++] = wid;
    } else {
      live_wire_mask_[wid >> 6] &= ~(1ull << (wid & 63));
    }
  }
  live_wires_.resize(keep);
  if (cfg_.link_stats) accumulate_link_stats();
#if FTNOC_ENABLE_INVARIANTS
  if (monitor_) run_invariant_walks();
#endif
  ++now_;
}

Router& Network::router(NodeId n) {
  FTNOC_CHECK(!cfg_.use_reference_router);
  return static_cast<Router&>(*routers_.at(n));
}

const Router& Network::router(NodeId n) const {
  FTNOC_CHECK(!cfg_.use_reference_router);
  return static_cast<const Router&>(*routers_.at(n));
}

std::uint64_t Network::state_digest() const {
  digest::Fnv h;
  h.mix(static_cast<std::uint64_t>(now_));
  h.mix(next_packet_id_);
  h.mix(recovery_line_);
  for (const auto& r : routers_) h.mix(r->state_digest());
  for (const auto& w : link_wires_) {
    h.mix(w != nullptr);
    if (w) mix_wire(h, *w);
  }
  for (const auto& w : local_wires_) mix_wire(h, *w);
  for (const auto& pe : pes_) h.mix(pe->state_digest());
  h.mix(edge_events_.size());
  for (const auto& [cyc, ev] : edge_events_) {
    h.mix(static_cast<std::uint64_t>(cyc));
    h.mix(static_cast<std::uint64_t>(ev.target));
    h.mix(ev.pid);
    h.mix(ev.is_nack);
  }
  for (const auto& m : eject_state_) {
    h.mix(m.size());
    std::uint64_t sum = 0;
    for (const auto& [pid, rec] : m) {
      digest::Fnv e;
      e.mix(pid);
      e.mix(rec.bad);
      e.mix(static_cast<std::uint64_t>(rec.flits));
      sum += e.value();
    }
    h.mix(sum);
  }
  return h.value();
}

void Network::run_invariant_walks() {
  for (auto& r : routers_) r->check_local_invariants(now_);

  // No flit ever travels a hard-failed link. Keyed off the *router's* dead
  // bit, not the topology: a link draining toward escalation is still
  // legitimately carrying its last wormhole, and the router only reports
  // the port dead once its barrel proves the wire clear.
  for (NodeId i = 0; i < topo_.num_nodes(); ++i) {
    for (int d = 0; d < 4; ++d) {
      const Wire* w = link_wires_[static_cast<std::size_t>(i) * 4 + d].get();
      if (!w || !w->flit.peek()) continue;
      if (routers_[i]->link_failed(static_cast<PortId>(d))) {
        monitor_->fail(InvariantId::kDeadLinkTraversal, now_, i,
                       static_cast<PortId>(d), w->flit.peek()->vc,
                       "flit in flight on a hard-failed link");
      }
    }
  }

  // Flit conservation: live instances live in router state (input buffers,
  // ST registers, barrel pending regions) and on inter-router wires. Local
  // wires are excluded on both sides of the ledger: a flit enters it only
  // when the router accepts it from the PE and leaves it at ejection.
  long long live = 0;
  for (const auto& r : routers_) live += r->live_flit_count();
  for (const auto& w : link_wires_) {
    if (w && w->flit.peek()) ++live;
  }
  monitor_->check_flit_conservation(now_, live);

  // Credit conservation, one directed link and VC at a time. The sender
  // side holds free credits plus credits bound to staged/rolled-back
  // flits; in-flight instances sit on the forward flit wire (each
  // transmitted flit owns a downstream slot) and the reverse credit wire;
  // the receiver side is plain buffer occupancy.
  const int n = topo_.num_nodes();
  for (NodeId i = 0; i < n; ++i) {
    for (int d = 0; d < 4; ++d) {
      const Wire* w = link_wires_[static_cast<std::size_t>(i) * 4 + d].get();
      if (!w) continue;
      const auto nb = topo_.neighbor(i, static_cast<Direction>(d));
      FTNOC_CHECK(nb.has_value());
      const auto back =
          static_cast<PortId>(opposite(static_cast<Direction>(d)));
      for (VcId v = 0; v < cfg_.num_vcs; ++v) {
        int total = routers_[i]->held_credits(static_cast<PortId>(d), v);
        if (w->flit.peek() && w->flit.peek()->vc == v) ++total;
        for (const Credit& c : w->credit.peek()) {
          if (c.vc == v) ++total;
        }
        total += routers_[*nb]->input_buffer_size(back, v);
        // Under damq the per-VC budget is elastic: K reserved plus however
        // many shared slots the sender currently holds for this VC. The
        // router reports it; -1 means "nominal depth" (RouterIface default).
        int budget = routers_[i]->credit_budget(static_cast<PortId>(d), v);
        if (budget < 0) budget = cfg_.vc_buffer_depth;
        monitor_->check_credit_sum(now_, i, d, v, total, budget);
      }
    }
    // The PE -> router injection link: the sender-side counter is the PE
    // lane's credit balance.
    const Wire* w = local_wires_[i].get();
    for (VcId v = 0; v < cfg_.num_vcs; ++v) {
      int total = pes_[i]->lane_credits(v);
      if (w->flit.peek() && w->flit.peek()->vc == v) ++total;
      for (const Credit& c : w->credit.peek()) {
        if (c.vc == v) ++total;
      }
      total += routers_[i]->input_buffer_size(kLocalPort, v);
      monitor_->check_credit_sum(now_, i, kLocalPort, v, total,
                                 cfg_.vc_buffer_depth);
    }
  }
}

}  // namespace ftnoc

#include "noc/workload.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ftnoc {
namespace {

constexpr int kMaxPacketFlits = 256;  // Flit::seq is 8 bits.
constexpr int kBytesPerFlit = 8;      // 64-bit flit payload.
constexpr std::size_t kMaxExpandedRecords = std::size_t{1} << 20;

/// One directive's key=value fields, after the name token.
struct Fields {
  bool has_start = false, has_src = false, has_dest = false;
  bool has_flits = false, has_bytes = false;
  bool has_count = false, has_period = false, has_stagger = false;
  unsigned long long start = 0, bytes = 0, period = 1, stagger = 0;
  long long src = -1, dest = -1, flits = 0, count = 1;
};

bool parse_u64_field(const std::string& tok, unsigned long long* out) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool parse_i64_field(const std::string& tok, long long* out) {
  unsigned long long v = 0;
  if (!parse_u64_field(tok, &v) || v > 0x7FFFFFFFFFFFFFFFull) return false;
  *out = static_cast<long long>(v);
  return true;
}

}  // namespace

Workload parse_workload(std::istream& in, int num_nodes, std::string* error) {
  Workload wl;
  std::string line;
  int lineno = 0;
  bool failed = false;
  auto fail = [&](const std::string& what) {
    if (error) *error = "line " + std::to_string(lineno) + ": " + what;
    failed = true;
  };
  auto check_node = [&](long long n, const char* field) {
    if (n < 0 || (num_nodes > 0 && n >= num_nodes)) {
      fail(std::string(field) + " node id out of range");
      return false;
    }
    if (n > 0xFFFF) {
      fail(std::string(field) + " node id out of range");
      return false;
    }
    return true;
  };
  // Total packets the workload will expand to — bounds memory up front.
  std::size_t total_packets = 0;
  // Emits one (possibly repeated) transfer, checking burst-cycle overflow.
  auto emit = [&](const std::string& name, const Fields& f, NodeId src,
                  NodeId dest, int flits, Cycle extra_offset) {
    total_packets += static_cast<std::size_t>(f.count) *
                     ((static_cast<std::size_t>(flits) + wl.packet_flits - 1) /
                      wl.packet_flits);
    for (long long i = 0; i < f.count; ++i) {
      const unsigned long long off =
          static_cast<unsigned long long>(i) * f.period;
      if (f.period != 0 && off / f.period != static_cast<unsigned long long>(i)) {
        fail("burst cycle overflows 64 bits");
        return;
      }
      const Cycle start = f.start + off + extra_offset;
      if (start < f.start || start < extra_offset) {
        fail("burst cycle overflows 64 bits");
        return;
      }
      wl.transfers.push_back({name, start, src, dest, flits});
      wl.transfer_packet_flits.push_back(wl.packet_flits);
    }
  };
  while (!failed && std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // Blank / comment-only line.
    if (verb == "packet_flits") {
      std::string tok, extra;
      unsigned long long v = 0;
      if (!(ls >> tok) || !parse_u64_field(tok, &v)) {
        fail("packet_flits expects an integer");
        continue;
      }
      if (ls >> extra) {
        fail("trailing junk: " + extra);
        continue;
      }
      if (v < 1 || v > kMaxPacketFlits) {
        fail("packet_flits must be in [1, " +
             std::to_string(kMaxPacketFlits) + "], got " + tok);
        continue;
      }
      wl.packet_flits = static_cast<int>(v);
      continue;
    }
    if (verb != "transfer" && verb != "many_to_one" && verb != "all_to_all") {
      fail("unknown directive '" + verb + "'");
      continue;
    }
    std::string name;
    if (!(ls >> name) || name.find('=') != std::string::npos) {
      fail(verb + " expects a name");
      continue;
    }
    Fields f;
    std::string tok;
    while (!failed && (ls >> tok)) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail("expected key=value, got '" + tok + "'");
        break;
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      bool ok = true;
      if (key == "start") {
        ok = parse_u64_field(val, &f.start);
        f.has_start = true;
      } else if (key == "src") {
        ok = parse_i64_field(val, &f.src);
        f.has_src = true;
      } else if (key == "dest") {
        ok = parse_i64_field(val, &f.dest);
        f.has_dest = true;
      } else if (key == "flits") {
        ok = parse_i64_field(val, &f.flits);
        f.has_flits = true;
      } else if (key == "bytes") {
        ok = parse_u64_field(val, &f.bytes);
        f.has_bytes = true;
      } else if (key == "count") {
        ok = parse_i64_field(val, &f.count);
        f.has_count = true;
      } else if (key == "period") {
        ok = parse_u64_field(val, &f.period);
        f.has_period = true;
      } else if (key == "stagger") {
        ok = parse_u64_field(val, &f.stagger);
        f.has_stagger = true;
      } else {
        fail("unknown key '" + key + "'");
        break;
      }
      if (!ok) fail("bad value for " + key + ": '" + val + "'");
    }
    if (failed) break;
    // Shared validation.
    if (!f.has_start) {
      fail(verb + " requires start=");
      break;
    }
    if (f.has_flits == f.has_bytes) {
      fail(verb + " requires exactly one of flits= or bytes=");
      break;
    }
    int flits = 0;
    if (f.has_flits) {
      if (f.flits < 1 || f.flits > (1 << 20)) {
        fail("flits must be in [1, 1048576], got " + std::to_string(f.flits));
        break;
      }
      flits = static_cast<int>(f.flits);
    } else {
      if (f.bytes < 1 ||
          f.bytes > static_cast<unsigned long long>(1 << 20) * kBytesPerFlit) {
        fail("bytes out of range");
        break;
      }
      flits = static_cast<int>((f.bytes + kBytesPerFlit - 1) / kBytesPerFlit);
    }
    if (f.has_count &&
        (f.count < 1 ||
         f.count > static_cast<long long>(kMaxExpandedRecords))) {
      fail("count must be in [1, " + std::to_string(kMaxExpandedRecords) +
           "]");
      break;
    }
    if (f.has_period && f.period < 1) {
      fail("period must be >= 1");
      break;
    }
    if (verb == "transfer") {
      if (f.has_stagger) {
        fail("transfer does not take stagger=");
        break;
      }
      if (!f.has_src || !f.has_dest) {
        fail("transfer requires src= and dest=");
        break;
      }
      if (!check_node(f.src, "src") || !check_node(f.dest, "dest")) break;
      if (f.src == f.dest) {
        fail("src == dest");
        break;
      }
      emit(name, f, static_cast<NodeId>(f.src), static_cast<NodeId>(f.dest),
           flits, 0);
    } else if (verb == "many_to_one") {
      if (f.has_src) {
        fail("many_to_one does not take src=");
        break;
      }
      if (!f.has_dest) {
        fail("many_to_one requires dest=");
        break;
      }
      if (num_nodes < 2) {
        fail("many_to_one needs at least 2 nodes");
        break;
      }
      if (!check_node(f.dest, "dest")) break;
      int sender_idx = 0;
      for (int s = 0; s < num_nodes && !failed; ++s) {
        if (s == f.dest) continue;
        emit(name, f, static_cast<NodeId>(s), static_cast<NodeId>(f.dest),
             flits, static_cast<Cycle>(sender_idx) * f.stagger);
        ++sender_idx;
      }
    } else {  // all_to_all
      if (f.has_src || f.has_dest) {
        fail("all_to_all does not take src= or dest=");
        break;
      }
      if (f.has_count || f.has_period) {
        fail("all_to_all does not take count= or period=");
        break;
      }
      if (num_nodes < 2) {
        fail("all_to_all needs at least 2 nodes");
        break;
      }
      for (int s = 0; s < num_nodes && !failed; ++s) {
        for (int d = 0; d < num_nodes && !failed; ++d) {
          if (s == d) continue;
          emit(name, f, static_cast<NodeId>(s), static_cast<NodeId>(d), flits,
               static_cast<Cycle>(s) * f.stagger);
        }
      }
    }
    if (total_packets > kMaxExpandedRecords) {
      fail("workload expands to more than " +
           std::to_string(kMaxExpandedRecords) + " packets");
    }
  }
  if (failed) return {};
  if (error) error->clear();
  return wl;
}

std::vector<TraceRecord> expand_workload(const Workload& wl) {
  std::vector<TraceRecord> records;
  for (std::size_t i = 0; i < wl.transfers.size(); ++i) {
    const WorkloadTransfer& t = wl.transfers[i];
    const int seg = i < wl.transfer_packet_flits.size()
                        ? wl.transfer_packet_flits[i]
                        : wl.packet_flits;
    int remaining = t.flits;
    while (remaining > 0) {
      TraceRecord r;
      r.cycle = t.start;
      r.src = t.src;
      r.dest = t.dest;
      r.length = std::min(remaining, seg);
      records.push_back(r);
      remaining -= r.length;
    }
  }
  // Stable: packets released on the same cycle keep workload-file order,
  // which the replay path (and the golden digests) depend on.
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.cycle < b.cycle;
                   });
  return records;
}

std::vector<TraceRecord> load_workload_text(const std::string& text,
                                            int num_nodes,
                                            std::string* error) {
  std::istringstream in(text);
  const Workload wl = parse_workload(in, num_nodes, error);
  if (error && !error->empty()) return {};
  return expand_workload(wl);
}

std::vector<TraceRecord> load_workload_file(const std::string& path,
                                            int num_nodes,
                                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return {};
  }
  const Workload wl = parse_workload(in, num_nodes, error);
  if (error && !error->empty()) return {};
  return expand_workload(wl);
}

}  // namespace ftnoc

#pragma once
// Application-style workloads: named transfers with source/destination/size
// on a cycle timeline, expanded into the TraceRecord replay path
// (DESIGN.md §4.14). The model follows tt-npe's workload ingestion: a
// workload names *what* moves (transfers in bytes or flits), the expansion
// decides *how* it moves (segmentation into wormhole packets), and the
// simulator replays the result like any packet trace.
//
// Line-based text format, '#' starts a comment:
//
//     packet_flits <n>
//     transfer    <name> start=<c> src=<a> dest=<b> {flits=<f>|bytes=<B>}
//                 [count=<k>] [period=<p>]
//     many_to_one <name> start=<c> dest=<b> {flits=|bytes=}
//                 [count=] [period=] [stagger=<s>]
//     all_to_all  <name> start=<c> {flits=|bytes=} [stagger=<s>]
//
// `packet_flits` sets the segmentation size for everything after it
// (default 4, max 256 — the flit sequence number is 8 bits). A transfer of
// F flits becomes ceil(F / packet_flits) packets released at the same
// start cycle (they serialize through the source PE's injection port).
// `bytes` converts at 8 bytes/flit (the 64-bit flit payload), minimum one
// flit. `count`/`period` repeat a transfer as a burst: count copies, one
// every `period` cycles. `many_to_one` makes every other node send to
// `dest`, in ascending node order, the i-th sender offset by i*stagger
// cycles; `all_to_all` emits every ordered (src, dest) pair, the block of
// source s offset by s*stagger.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/trace.hpp"

namespace ftnoc {

/// One expanded point-to-point transfer (bursts and group directives are
/// already flattened by the parser).
struct WorkloadTransfer {
  std::string name;  ///< The directive's name (shared by a burst/group).
  Cycle start = 0;   ///< Release cycle of the transfer's first packet.
  NodeId src = 0;
  NodeId dest = 0;
  int flits = 0;     ///< Total payload flits of this transfer.

  friend bool operator==(const WorkloadTransfer&,
                         const WorkloadTransfer&) = default;
};

struct Workload {
  int packet_flits = 4;  ///< Segmentation size of the *last* directive seen.
  std::vector<WorkloadTransfer> transfers;  ///< Flattened, in file order.
  /// Segmentation size each transfer was parsed under (parallel to
  /// `transfers`; `packet_flits` directives apply from their line down).
  std::vector<int> transfer_packet_flits;
};

/// Parses a workload from a stream. On malformed input, `*error` gets a
/// "line N: ..." message and the result is empty. `num_nodes` bounds node
/// ids; pass 0 to skip the range check.
Workload parse_workload(std::istream& in, int num_nodes, std::string* error);

/// Segments every transfer into TraceRecords (ceil(flits / packet_flits)
/// packets at the transfer's start cycle, remainder in the last packet)
/// and sorts them by cycle, stably — equal-cycle records keep file order.
std::vector<TraceRecord> expand_workload(const Workload& wl);

/// parse + expand from an in-memory workload text.
std::vector<TraceRecord> load_workload_text(const std::string& text,
                                            int num_nodes,
                                            std::string* error);

/// parse + expand from a workload file.
std::vector<TraceRecord> load_workload_file(const std::string& path,
                                            int num_nodes,
                                            std::string* error);

}  // namespace ftnoc

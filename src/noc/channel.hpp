#pragma once
// One-cycle pipeline registers modelling wires between routers.
//
// A value written during cycle t becomes readable during cycle t+1 (after
// Network::tick_channels()). Routers communicate *only* through channels,
// which makes the sequential router update order within a cycle
// unobservable — the simulation behaves as if all routers stepped in
// lockstep.

#include <optional>
#include <vector>

#include "common/check.hpp"

namespace ftnoc {

template <typename T>
class Channel {
 public:
  /// Writes the value to appear on the wire next cycle. At most one write
  /// per cycle (the wire has no buffering).
  void write(const T& v) {
    FTNOC_CHECK(!next_.has_value());
    next_ = v;
  }

  bool can_write() const { return !next_.has_value(); }

  /// Reads and consumes this cycle's value, if any.
  std::optional<T> read() {
    std::optional<T> v = std::move(cur_);
    cur_.reset();
    return v;
  }

  const std::optional<T>& peek() const { return cur_; }

  /// In-place consumption for the hot receive path: mutate the current
  /// value through the pointer (e.g. link-fault injection), then call
  /// consume(). Equivalent to read() minus the temporary copies.
  T* peek_mut() { return cur_.has_value() ? &*cur_ : nullptr; }
  void consume() { cur_.reset(); }

  /// Advances the register: next-cycle value becomes current.
  /// An unconsumed current value is dropped — wires don't hold state.
  void tick() {
    cur_ = std::move(next_);
    next_.reset();
  }

  /// Nothing readable now and nothing latched for the next edge; ticking
  /// an idle channel is a no-op, so it needs no tick until written again.
  bool idle() const { return !cur_.has_value() && !next_.has_value(); }

 private:
  std::optional<T> cur_;
  std::optional<T> next_;
};

/// A channel that can carry several independent values per cycle (used for
/// credits: distinct VCs may each return a credit in the same cycle).
/// The three backing vectors are rotated by swap, never reallocated, so a
/// steady credit stream costs no heap traffic.
template <typename T>
class MultiChannel {
 public:
  void write(const T& v) { next_.push_back(v); }

  bool empty() const { return cur_.empty(); }

  /// Reads and consumes all of this cycle's values. The returned reference
  /// is valid until the next read() or tick().
  const std::vector<T>& read() {
    scratch_.swap(cur_);
    cur_.clear();
    return scratch_;
  }

  /// Non-consuming view of this cycle's values (invariant walks, digests).
  const std::vector<T>& peek() const { return cur_; }

  void tick() {
    cur_.swap(next_);
    next_.clear();
  }

  /// See Channel::idle().
  bool idle() const { return cur_.empty() && next_.empty(); }

 private:
  std::vector<T> cur_;
  std::vector<T> next_;
  std::vector<T> scratch_;
};

}  // namespace ftnoc

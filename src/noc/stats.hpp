#pragma once
// Network-wide metric collection. The simulator warms the network up first
// (paper §2.2: 100k warm-up messages out of 300k); measurement begins when
// the warm-up ejection count is reached and all per-run metrics reported by
// the benches come from the measurement window only.

#include <cstdint>

#include "common/stats_util.hpp"
#include "common/types.hpp"

namespace ftnoc {

class StatsCollector {
 public:
  StatsCollector()
      : latency_hist_(/*bucket_width=*/1.0, /*num_buckets=*/4096) {}
  /// Starts the measurement window (called once, at the warm-up boundary).
  void begin_measurement(Cycle now) {
    measuring_ = true;
    measure_start_ = now;
  }
  bool measuring() const { return measuring_; }
  Cycle measure_start() const { return measure_start_; }

  // --- Traffic lifecycle -------------------------------------------------
  void on_packet_created() { ++packets_created_; }
  void on_flit_injected() { ++flits_injected_; }
  /// `birth` = packet generation time (includes source queueing);
  /// `inject` = first header injection into the network (the paper's
  /// message-latency reference point; 0 if unknown).
  void on_message_ejected(Cycle now, Cycle birth, Cycle inject,
                          bool corrupted) {
    ++messages_ejected_;
    if (!measuring_) return;
    ++measured_messages_;
    const double lat = static_cast<double>(now - (inject ? inject : birth));
    latency_.add(lat);
    latency_hist_.add(lat);
    total_latency_.add(static_cast<double>(now - birth));
    if (corrupted) ++corrupted_delivered_;
  }

  // --- Fault-tolerance events ---------------------------------------------
  // Counted only inside the measurement window (callers don't need to
  // check; the collector gates on measuring_).
  void on_link_single_corrected() { bump(link_single_corrected_); }
  void on_link_retransmission(std::uint64_t flits) {
    if (measuring_) {
      ++link_retransmission_events_;
      link_flits_retransmitted_ += flits;
    }
  }
  void on_nack_sent() { bump(nacks_sent_); }
  void on_flit_dropped() { bump(flits_dropped_); }
  void on_rt_error_recovered() { bump(rt_errors_recovered_); }
  void on_va_error_recovered() { bump(va_errors_recovered_); }
  void on_sa_error_recovered() { bump(sa_errors_recovered_); }
  void on_unprotected_error() { bump(unprotected_errors_); }
  void on_e2e_retransmit() { bump(e2e_retransmits_); }
  void on_rtx_error_corrected() { bump(rtx_errors_corrected_); }
  void on_handshake_error_corrected() { bump(handshake_errors_corrected_); }
  /// A packet detoured non-minimally around a hard-failed link.
  void on_hard_fault_reroute() { bump(hard_fault_reroutes_); }

  // --- Permanent-fault accounting ------------------------------------------
  // Delivery accounting like packets_created_/messages_ejected_: counted
  // over the whole run, not gated on the measurement window.
  /// A waiting packet whose chosen next hop died was sent back to routing.
  void on_packet_rerouted() { ++packets_rerouted_; }
  /// A packet was dropped because no live path to its destination exists.
  void on_unreachable_drop() { ++unreachable_drops_; }
  /// A flaky link crossed the escalation threshold and was declared dead.
  void on_link_escalated() { ++links_escalated_; }
  /// A configured fault-storm kill fired (accepted past the partition
  /// veto) — counted separately from organic escalations.
  void on_storm_link_killed() { ++links_storm_killed_; }
  /// A trace/workload record whose source router is hard-dead was dropped
  /// at release time (it was never created, so it does not count against
  /// packets_created_).
  void on_dead_source_drop() { ++dead_source_drops_; }

  // --- Deadlock events -----------------------------------------------------
  void on_probe_sent() { bump(probes_sent_); }
  void on_probe_discarded() { bump(probes_discarded_); }
  void on_deadlock_confirmed() { bump(deadlocks_confirmed_); }
  void on_recovery_entered() { bump(recoveries_entered_); }
  void on_recovery_exited() { bump(recoveries_exited_); }
  void on_fallback_recovery() { bump(fallback_recoveries_); }
  void on_flit_absorbed() { bump(flits_absorbed_); }

  // --- Per-cycle sampling --------------------------------------------------
  /// `tx_frac` / `rtx_frac`: network-wide occupied-slot fractions this cycle.
  void sample_buffers(double tx_frac, double rtx_frac) {
    if (!measuring_) return;
    tx_util_.add(tx_frac);
    rtx_util_.add(rtx_frac);
  }

  // --- Accessors ------------------------------------------------------------
  std::uint64_t packets_created() const { return packets_created_; }
  std::uint64_t flits_injected() const { return flits_injected_; }
  std::uint64_t messages_ejected() const { return messages_ejected_; }
  std::uint64_t measured_messages() const { return measured_messages_; }
  const RunningStat& latency() const { return latency_; }
  const RunningStat& total_latency() const { return total_latency_; }
  /// Message-latency distribution (1-cycle buckets, for tail quantiles).
  const Histogram& latency_histogram() const { return latency_hist_; }
  const RunningStat& tx_buffer_utilization() const { return tx_util_; }
  const RunningStat& rtx_buffer_utilization() const { return rtx_util_; }

  std::uint64_t link_single_corrected() const { return link_single_corrected_; }
  std::uint64_t link_retransmission_events() const {
    return link_retransmission_events_;
  }
  std::uint64_t link_flits_retransmitted() const {
    return link_flits_retransmitted_;
  }
  std::uint64_t nacks_sent() const { return nacks_sent_; }
  std::uint64_t flits_dropped() const { return flits_dropped_; }
  std::uint64_t rt_errors_recovered() const { return rt_errors_recovered_; }
  std::uint64_t va_errors_recovered() const { return va_errors_recovered_; }
  std::uint64_t sa_errors_recovered() const { return sa_errors_recovered_; }
  std::uint64_t unprotected_errors() const { return unprotected_errors_; }
  std::uint64_t corrupted_delivered() const { return corrupted_delivered_; }
  std::uint64_t e2e_retransmits() const { return e2e_retransmits_; }
  std::uint64_t rtx_errors_corrected() const { return rtx_errors_corrected_; }
  std::uint64_t handshake_errors_corrected() const {
    return handshake_errors_corrected_;
  }
  std::uint64_t hard_fault_reroutes() const { return hard_fault_reroutes_; }
  std::uint64_t packets_rerouted() const { return packets_rerouted_; }
  std::uint64_t unreachable_drops() const { return unreachable_drops_; }
  std::uint64_t links_escalated() const { return links_escalated_; }
  std::uint64_t links_storm_killed() const { return links_storm_killed_; }
  std::uint64_t dead_source_drops() const { return dead_source_drops_; }

  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probes_discarded() const { return probes_discarded_; }
  std::uint64_t deadlocks_confirmed() const { return deadlocks_confirmed_; }
  std::uint64_t recoveries_entered() const { return recoveries_entered_; }
  std::uint64_t recoveries_exited() const { return recoveries_exited_; }
  std::uint64_t fallback_recoveries() const { return fallback_recoveries_; }
  std::uint64_t flits_absorbed() const { return flits_absorbed_; }

  /// Total corrected link errors: SEC singles + retransmitted multi-bit
  /// flit errors (what Figure 13(a)'s LINK-HBH series counts).
  std::uint64_t link_errors_corrected() const {
    return link_single_corrected_ + link_retransmission_events_;
  }

 private:
  void bump(std::uint64_t& c) {
    if (measuring_) ++c;
  }

  bool measuring_ = false;
  Cycle measure_start_ = 0;

  std::uint64_t packets_created_ = 0;
  std::uint64_t flits_injected_ = 0;
  std::uint64_t messages_ejected_ = 0;
  std::uint64_t measured_messages_ = 0;
  RunningStat latency_;
  RunningStat total_latency_;
  Histogram latency_hist_;
  RunningStat tx_util_;
  RunningStat rtx_util_;

  std::uint64_t link_single_corrected_ = 0;
  std::uint64_t link_retransmission_events_ = 0;
  std::uint64_t link_flits_retransmitted_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t flits_dropped_ = 0;
  std::uint64_t rt_errors_recovered_ = 0;
  std::uint64_t va_errors_recovered_ = 0;
  std::uint64_t sa_errors_recovered_ = 0;
  std::uint64_t unprotected_errors_ = 0;
  std::uint64_t corrupted_delivered_ = 0;
  std::uint64_t e2e_retransmits_ = 0;
  std::uint64_t rtx_errors_corrected_ = 0;
  std::uint64_t handshake_errors_corrected_ = 0;
  std::uint64_t hard_fault_reroutes_ = 0;
  std::uint64_t packets_rerouted_ = 0;
  std::uint64_t unreachable_drops_ = 0;
  std::uint64_t links_escalated_ = 0;
  std::uint64_t links_storm_killed_ = 0;
  std::uint64_t dead_source_drops_ = 0;

  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_discarded_ = 0;
  std::uint64_t deadlocks_confirmed_ = 0;
  std::uint64_t recoveries_entered_ = 0;
  std::uint64_t recoveries_exited_ = 0;
  std::uint64_t fallback_recoveries_ = 0;
  std::uint64_t flits_absorbed_ = 0;
};

}  // namespace ftnoc

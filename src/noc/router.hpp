#pragma once
// The pipelined virtual-channel wormhole router (Figure 1) with all of the
// paper's fault-tolerance machinery attached:
//
//  * per-output-VC retransmission barrel shifters + NACK-driven hop-by-hop
//    (HBH) flit retransmission (§3.1, Figure 4);
//  * the Allocation Comparator checking VA/SA state each cycle (§4,
//    Figure 12), with logic-fault injection into RT/VA/SA;
//  * the probing deadlock detector and retransmission-buffer-based
//    recovery (§3.2, Figures 10/11).
//
// Pipeline model. Router phases execute once per cycle; flits only become
// eligible for a stage the cycle after the previous stage handled them,
// which reproduces the per-hop latency of an n-stage router + 1-cycle link:
//
//   stages=3 (paper's default): BW -> RT+VA split as RT | VA | SA+ST
//   stages=2: RT+VA same cycle (look-ahead + speculation) | SA+ST
//   stages=1: RT+VA+SA+ST in one cycle
//   stages=4: RT | VA | SA | ST (output staging register)
//
// Routers communicate exclusively through 1-cycle Wire channels, so the
// sequential update order of routers within a cycle is unobservable.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/inline_vec.hpp"
#include "common/types.hpp"
#include "core/allocation_comparator.hpp"
#include "core/buffer_policy.hpp"
#include "core/deadlock.hpp"
#include "core/error_check_unit.hpp"
#include "core/fault_injector.hpp"
#include "core/flit.hpp"
#include "core/invariants.hpp"
#include "core/retransmission_buffer.hpp"
#include "noc/arbiter.hpp"
#include "noc/channel.hpp"
#include "noc/flit_store.hpp"
#include "noc/router_iface.hpp"
#include "noc/routing.hpp"
#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "power/energy_model.hpp"

namespace ftnoc {

class Router final : public RouterIface {
 public:
  Router(NodeId id, const SimConfig& cfg, const Topology& topo,
         FaultInjector* faults, power::EnergyMeter* meter,
         StatsCollector* stats);

  /// Wires port `p`: `in` carries the neighbour's (or PE's) signals toward
  /// this router, `out` carries this router's signals away. Either may be
  /// nullptr for a nonexistent link (mesh edge).
  void connect(PortId p, Wire* in, Wire* out) override;

  void set_eject_fn(EjectFn fn) override { eject_ = std::move(fn); }

  /// Marks a link port as hard-failed (pre-programmed into the VA's
  /// link-state table, §4.2). The VA never allocates toward a dead port;
  /// adaptive routing detours around it.
  void fail_link(PortId p) override;

  /// Advances the router one clock cycle.
  void step(Cycle now) override;

  NodeId id() const override { return id_; }

  // --- Introspection (stats sampling, tests) -----------------------------
  int tx_buffer_occupancy() const override;
  int tx_buffer_slots() const override;
  int rtx_buffer_occupancy() const override;
  int rtx_buffer_slots() const override;
  bool in_recovery() const override { return agent_.in_recovery(); }
  const DeadlockAgent& deadlock_agent() const { return agent_; }
  /// Live entries in the own-probe route map (bounded-memory test).
  std::size_t probe_route_entries() const { return own_probe_route_.size(); }
  /// Whether the next step() would be a no-op (idle fast path, tests).
  bool quiescent() const;

  /// Occupancy of one input VC buffer (tests).
  int input_buffer_size(PortId p, VcId v) const override;
  /// Whether an input VC currently holds an active wormhole (tests).
  bool input_vc_active(PortId p, VcId v) const;
  /// Human-readable state snapshot (debugging and trace examples).
  std::string debug_dump(Cycle now) const override;

  /// Architectural-state hash for lock-step differential comparison.
  std::uint64_t state_digest() const override;

  // --- Invariant monitor hooks (DESIGN.md §4.8) ---------------------------
  void set_monitor(InvariantMonitor* mon) override { mon_ = mon; }
  /// Recomputes the PR 3 derived state (work masks, tx_occ_,
  /// staged_count_) from scratch and reports any disagreement.
  void check_local_invariants(Cycle now) override;
  long long live_flit_count() const override;
  int held_credits(PortId p, VcId v) const override;
  int credit_budget(PortId p, VcId v) const override;

  // --- Permanent-fault escalation (DESIGN.md §4.9) ------------------------
  bool link_failed(PortId p) const override { return link_dead_[p]; }
  std::uint8_t take_escalation_requests() override {
    const std::uint8_t r = escalation_requests_;
    escalation_requests_ = 0;
    return r;
  }
  void begin_link_drain(PortId p, Cycle now) override;
  void request_escalation(PortId p) override {
    escalation_requests_ |= port_bit(p);
  }

  // --- Event-driven scheduling (DESIGN.md §4.10) --------------------------
  /// Wake bookkeeping of the step() that just ran: which wires were
  /// driven, whether any retained state demands a self-tick next cycle,
  /// and the exact own-probe GC deadline when that is the *only* thing
  /// left. Consuming resets the wrote masks for the next step.
  WakeInfo take_wake_info() override;

 private:
  // --- Per-VC state -------------------------------------------------------
  enum class VcState : std::uint8_t {
    kRouting,  ///< No wormhole; route the next head flit that shows up.
    kVaWait,   ///< Head routed; waiting for an output VC.
    kActive,   ///< Wormhole open; flits stream through SA.
    kVaReserved, ///< Deadlock recovery: flits absorbed into the output VC's
                 ///< retransmission buffer; ownership transfers when the
                 ///< current owner's tail retires (deferred allocation).
    kDraining, ///< Unprotected-allocation casualty: discard until tail.
  };

  // SoA layout (DESIGN.md §4.10): the former per-VC structs are split by
  // role into parallel gid-indexed arrays — flit storage in one contiguous
  // slab (`in_flit_slab_`, viewed through FlitRing), per-input-VC
  // allocation metadata in `inputs_`, per-output-VC allocation metadata in
  // `outputs_` (small POD, hot), and the big retransmission barrels in
  // `out_rtx_` (cold — touched only through the out_work_ mask). The scan
  // loops walk these arrays in ascending-gid order, which is what the
  // golden digests pin.
  struct InputVc {
    FlitBuf buf;  ///< View into in_flit_slab_ (or the port's DamQ pool).
    VcState state = VcState::kRouting;
    PortMask candidates = 0;
    PortId out_port = kInvalidPort;
    VcId out_vc = kInvalidVc;
    Cycle last_advance = 0;
    Cycle stall_until = 0;   ///< Logic-error recovery penalty.
    Cycle state_since = 0;
    /// Mirror of buf.front().arrived_cycle (valid while buf is non-empty),
    /// kept by the push/pop sites — the SA nomination scan's same-cycle
    /// check then stays off the flit slab.
    Cycle front_arrived = 0;
    void sync_front_arrived() {
      if (!buf.empty()) front_arrived = buf.front().arrived_cycle;
    }
  };

  struct OutputVc {
    PacketId owner_pid = 0;
    /// Deadlock recovery: the input VC queued to inherit this output VC
    /// when the current owner releases it (deferred VA).
    PacketId waiter_pid = 0;
    int credits = 0;
    std::uint16_t owner_gid = 0;
    std::uint16_t waiter_gid = 0;
    bool allocated = false;
    bool tail_sent = false;
    bool has_waiter = false;
  };

  struct PendingNack {
    PortId port;
    VcId vc;
    Cycle send_at;
  };

  struct OutboxItem {
    PortId port;
    bool is_probe;
    ProbeSignal probe;
    ActivationSignal activation;
  };

  /// Forward port (and mint time, for GC) of a probe this router launched.
  struct ProbeRoute {
    PortId port = kInvalidPort;
    Cycle sent_at = 0;
  };

  // --- Phases --------------------------------------------------------------
  void phase_maintenance(Cycle now);
  void phase_receive(Cycle now);
  void phase_replay_and_switch(Cycle now);
  void phase_va(Cycle now);
  void phase_rt(Cycle now);
  void phase_deadlock(Cycle now);

  // --- Helpers ---------------------------------------------------------------
  InputVc& ivc(PortId p, VcId v) { return inputs_[gid(p, v)]; }
  const InputVc& ivc(PortId p, VcId v) const { return inputs_[gid(p, v)]; }
  OutputVc& ovc(PortId p, VcId v) { return outputs_[gid(p, v)]; }
  const OutputVc& ovc(PortId p, VcId v) const { return outputs_[gid(p, v)]; }
  int gid(PortId p, VcId v) const { return p * num_vcs_ + v; }
  /// Retransmission barrel of output gid `og` (engaged on link ports only).
  std::optional<RetransmissionBuffer>& orx(int og) { return out_rtx_[og]; }
  const std::optional<RetransmissionBuffer>& orx(int og) const {
    return out_rtx_[og];
  }

  // --- Work lists --------------------------------------------------------
  // One bit per (port, VC) gid; P*V <= 30 so a 32-bit mask covers both
  // sides. A clear input bit proves the VC is empty and idle-routing; a
  // clear output bit proves the VC is unallocated, waiterless and has an
  // empty retransmission barrel. Every phase iterates set bits in
  // ascending gid order — the same order as the full scans they replace —
  // so arbiter, RNG and energy-charge sequences are bit-for-bit identical.
  void update_input_work(int g) {
    const InputVc& vc = inputs_[static_cast<std::size_t>(g)];
    const bool busy = !vc.buf.empty() || vc.state != VcState::kRouting;
    in_work_ = busy ? (in_work_ | (1u << g)) : (in_work_ & ~(1u << g));
  }
  void update_output_work(int og) {
    const OutputVc& out = outputs_[static_cast<std::size_t>(og)];
    const auto& rtx = out_rtx_[static_cast<std::size_t>(og)];
    const bool busy = out.allocated || out.has_waiter ||
                      (rtx && rtx->occupancy() > 0);
    out_work_ = busy ? (out_work_ | (1u << og)) : (out_work_ & ~(1u << og));
  }

  bool port_has_neighbor(PortId p) const;
  /// Neighbour exists and the link is not hard-failed.
  bool port_usable(PortId p) const;
  /// Usable and not draining toward escalation: the gate for *new*
  /// commitments (VA requests, deadlock waiters, RT-fault misdirections).
  /// In-flight wormholes keep using a draining port until their tail.
  bool port_allocatable(PortId p) const {
    return port_usable(p) && (draining_ & port_bit(p)) == 0;
  }
  /// Under damq, whether output VC (`p`, `v`) can source a credit for one
  /// more flit: a free reserved credit or a free slot in the port's shared
  /// region (DESIGN.md §4.11). Under other policies, plain credits > 0.
  bool can_consume_credit(PortId p, VcId v) const {
    return ovc(p, v).credits > 0 || (damq_ && shared_credits_[p] > 0);
  }
  /// The VC class a VOQ packet is pinned to, or -1 outside voq.
  int voq_lane(const Flit& f) const {
    return voq_ ? voq_class(f.dest, cfg_.mesh_width, num_vcs_) : -1;
  }
  void accept_flit(PortId p, const Flit& f0, Cycle now);
  /// `f` may alias the wire channel's current slot (consumed in place by
  /// the caller after this returns); it is mutated by link-fault injection.
  void handle_incoming_flit(PortId p, Flit& f, Cycle now);
  void handle_probe(PortId p, const ProbeSignal& probe, Cycle now);
  void handle_activation(const ActivationSignal& act, Cycle now);
  /// Sends one flit on an output link: consumes the credit (unless it is a
  /// replay that already holds one), records the NACK-window copy in the
  /// retransmission barrel, and drives the wire. `corrupt_on_wire` models
  /// an in-crossbar upset: the barrel copy is taken before the crossbar,
  /// so only the transmitted copy is wrecked (otherwise a replay would
  /// resend the same corrupt word forever — the §4.5 hazard).
  void transmit(PortId out_port, VcId out_vc, Flit f, Cycle now,
                bool consume_credit, bool corrupt_on_wire = false);
  /// Final bookkeeping at the moment a flit actually leaves on the wires:
  /// tail tracking and the retransmission-barrel copy (with the §4.5
  /// stored-copy upset process). Runs inside transmit() for 1-3-stage
  /// routers and at the staged-register flush for 4-stage ones.
  void finalize_transmission(PortId o, VcId v, const Flit& f, Cycle now);
  void eject(const Flit& f, PortId in_port, VcId in_vc, Cycle now);
  void send_credit(PortId p, VcId v);
  void release_input_after_tail(PortId p, VcId v, Cycle now);
  void maybe_release_outputs(Cycle now);
  /// Online reconfiguration (DESIGN.md §4.12): when the topology's route
  /// epoch has moved since this router last looked, recompute every
  /// kVaWait candidate set against the rebuilt distance tables. A set that
  /// collapses to empty sends the VC back to kRouting, where phase_rt
  /// re-routes or drops it with the usual unreachable accounting.
  void rehome_stale_routes(Cycle now);
  bool vc_blocked(const InputVc& vc, Cycle now) const;
  /// Next link of a blocked dependency chain through an input VC.
  std::optional<std::pair<PortId, VcId>> resolve_chain(const InputVc& vc) const;
  void run_ac_on_va(std::size_t new_entry, Cycle now);
  void enter_recovery(Cycle now);
  void queue_control(PortId port, const ProbeSignal& p);
  void queue_control(PortId port, const ActivationSignal& a);
  void flush_outbox();
  void charge(power::EnergyEvent e, std::uint64_t times = 1);

  // Input-side VA request: the (port, vc) this input VC asks for, if any.
  // `in_port`/`in_vc` identify the requesting input VC (escape-VC policy
  // depends on how the packet arrived).
  std::optional<std::pair<PortId, VcId>> pick_va_request(InputVc& vc,
                                                         PortId in_port,
                                                         VcId in_vc,
                                                         int rotation);

  // RT fault handling; returns the (possibly corrupted) candidate mask and
  // applies stalls/penalties for emulated downstream detection.
  PortMask apply_rt_fault(InputVc& vc, PortMask correct, Cycle now);

  // --- Immutable configuration ------------------------------------------
  NodeId id_;
  const SimConfig& cfg_;
  const Topology& topo_;
  int num_vcs_;
  int num_ports_ = kNumDirections;

  FaultInjector* faults_;
  // Per-process upset draws with rate <= 0 return false without consuming
  // RNG state (Rng::bernoulli short-circuits), so skipping the call when
  // the rate is zero is behaviour-preserving — these flags hoist that
  // rate check out of the per-event hot paths.
  bool f_rt_live_ = false;
  bool f_va_live_ = false;
  bool f_sa_live_ = false;
  bool f_rtx_live_ = false;
  bool f_hs_live_ = false;
  power::EnergyMeter* meter_;
  StatsCollector* stats_;
  EjectFn eject_;
  InvariantMonitor* mon_ = nullptr;  ///< Null unless check_invariants.

  // --- Wiring ---------------------------------------------------------------
  std::array<Wire*, kNumDirections> in_wires_{};
  std::array<Wire*, kNumDirections> out_wires_{};
  /// Consumer-side wire signal summaries (Wire::kCur* bits), written by
  /// Wire::tick through registered slots: in_sig_[p] mirrors
  /// in_wires_[p]->cur_mask, out_sig_[p] mirrors out_wires_[p]->cur_mask.
  /// Both padded to 8 so the quiescent check reads each as one word.
  alignas(8) std::array<std::uint8_t, 8> in_sig_{};
  alignas(8) std::array<std::uint8_t, 8> out_sig_{};

  // --- State -----------------------------------------------------------------
  /// Gid-major contiguous flit storage for every input VC (stride
  /// vc_buffer_depth); inputs_[g].buf is a FlitRing view into it. Sized
  /// once in the constructor and never reallocated.
  std::vector<Flit> in_flit_slab_;
  std::vector<InputVc> inputs_;    // P*V
  std::vector<OutputVc> outputs_;  // P*V (hot allocation metadata)
  /// DAMQ receiver-side storage: one shared pool per link input port
  /// (engaged only under buffer_policy=damq; the local port keeps its
  /// private slab rings). inputs_[g].buf routes into these via use_pool.
  std::array<DamqPool<Flit>, kNumDirections> in_pools_;
  // DAMQ sender-side shared-credit state (DESIGN.md §4.11). All-zero and
  // untouched under other policies.
  bool damq_ = false;
  bool voq_ = false;
  std::vector<int> shared_credits_;  ///< Per port: free shared credits.
  std::vector<int> shared_held_;     ///< Per output gid: borrowed shared.
  /// P*V retransmission barrels, split out of OutputVc so the hot scans
  /// walk small PODs; engaged on link-port gids only.
  std::vector<std::optional<RetransmissionBuffer>> out_rtx_;
  std::vector<Cycle> drop_until_;  // P*V: HBH drop window per input VC.
  ErrorCheckUnit checker_;
  AllocationComparator ac_;
  DeadlockAgent agent_;

  ArbiterBank va_arbs_;     // one per output VC, over P*V input gids
  ArbiterBank sa_in_arbs_;  // one per input port, over V VCs
  ArbiterBank sa_out_arbs_; // one per output port, over P input ports
  ArbiterBank replay_arbs_; // one per output port, over V VCs
  std::vector<int> va_rotation_;  // per input gid: rotating VC preference

  std::array<bool, kNumDirections> port_busy_{};     // per-cycle ST usage
  std::array<bool, kNumDirections> link_dead_{};     // hard faults (4.2)

  // --- Runtime link escalation (§4.9) -------------------------------------
  /// Ports draining toward hard-failure: no new allocations; once the
  /// port's output VCs and staged register fall idle it becomes dead.
  std::uint8_t draining_ = 0;
  /// Consecutive uncorrectable receive errors per input port; a streak of
  /// cfg_.faults.link_escalation_threshold raises an escalation request.
  std::array<std::uint32_t, kNumDirections> uncorrectable_streak_{};
  /// Ports whose streak crossed the threshold since the last Network poll.
  std::uint8_t escalation_requests_ = 0;
  /// Last Topology::route_epoch() this router reconciled against. When the
  /// topology's epoch moves (an accepted escalation or storm kill), step()
  /// re-homes every kVaWait candidate set against the fresh distance tables
  /// before allocating (DESIGN.md §4.12). Deliberately NOT part of
  /// state_digest(): it is unobservable for quiescent routers, and folding
  /// it in would make scan and event kernels diverge on who noticed first.
  std::uint32_t route_epoch_seen_ = 0;

  /// 4-stage pipeline: the dedicated switch-traversal register. `wire`
  /// is what travels (possibly wrecked by an unprotected SA upset);
  /// `stored` is the clean pre-crossbar copy for the retransmission
  /// barrel, recorded at flush time so NACK-loop ages line up.
  struct StagedFlit {
    Flit wire;
    Flit stored;
    VcId vc;
  };
  std::array<std::optional<StagedFlit>, kNumDirections> staged_;
  int staged_count_ = 0;  ///< Occupied entries of staged_ (fast skip).
  InlineVec<PendingNack, 8> pending_nacks_;
  InlineVec<OutboxItem, 8> outbox_;
  std::unordered_map<std::uint32_t, ProbeRoute> own_probe_route_;
  /// Any input-buffer slot freed this cycle (SA, drain, absorb, eject) —
  /// feeds DeadlockAgent::note_progress for the fallback-recovery trigger.
  bool progress_this_cycle_ = false;
  std::uint32_t probe_ttl_ = 0;

  /// Ports whose *outgoing* wire carried a forward signal this step
  /// (flit/probe/activation) and ports whose *incoming* bundle carried a
  /// backward signal (credit/NACK; bit kLocalPort = PE credit). Cleared by
  /// take_wake_info().
  std::uint8_t wrote_fwd_ = 0;
  std::uint8_t wrote_back_ = 0;

  // --- Hot-path scratch and work masks -----------------------------------
  std::uint32_t in_work_ = 0;   ///< Input VCs with buffered flits or state.
  std::uint32_t out_work_ = 0;  ///< Output VCs allocated/waited/occupied.
  std::vector<std::uint32_t> va_reqs_;  // per output gid: requesting inputs
  std::vector<std::pair<PortId, VcId>> va_want_;  // per input gid: request
  std::uint32_t va_req_ogs_ = 0;  ///< Output gids with requests this cycle.
  std::uint32_t absorbed_ = 0;    ///< Output gids absorbed-into this cycle.
  int tx_occ_ = 0;  ///< Running sum of input-buffer occupancy (sampling).
  /// Running sum of retransmission-barrel occupancy across all output VCs
  /// (sampling). Updated at every barrel mutation; a NACK rollback moves
  /// entries sent->pending without changing the sum.
  int rtx_occ_ = 0;
  mutable int tx_slots_cache_ = -1;
  mutable int rtx_slots_cache_ = -1;

  // --- Retransmission-barrel summary caches -------------------------------
  // The barrels are fat objects (inline flit storage); the per-cycle scans
  // must not touch them just to learn "empty". These mirrors are refreshed
  // by refresh_rtx_cache() after every barrel mutation.
  std::uint32_t rtx_sent_mask_ = 0;     ///< Output gids with sent entries.
  std::uint32_t rtx_pending_mask_ = 0;  ///< Output gids with pending entries.
  /// Per output gid: next_retire_at() mirror (valid while the sent bit is
  /// set). rtx_min_retire_ is a lower-bound watermark over the set bits —
  /// it may be stale-low (cheap extra scan), never stale-high.
  std::vector<Cycle> rtx_retire_at_;
  Cycle rtx_min_retire_ = 0;
  void refresh_rtx_cache(int og) {
    const auto& rtx = out_rtx_[static_cast<std::size_t>(og)];
    const std::uint32_t bit = 1u << og;
    if (rtx && rtx->sent_count() > 0) {
      rtx_sent_mask_ |= bit;
      const Cycle due = rtx->next_retire_at();
      rtx_retire_at_[static_cast<std::size_t>(og)] = due;
      if (rtx_min_retire_ > due) rtx_min_retire_ = due;
    } else {
      rtx_sent_mask_ &= ~bit;
    }
    if (rtx && rtx->has_pending()) {
      rtx_pending_mask_ |= bit;
    } else {
      rtx_pending_mask_ &= ~bit;
    }
  }
};

}  // namespace ftnoc

#include "noc/topology.hpp"

#include "common/check.hpp"

namespace ftnoc {

Topology::Topology(int width, int height, bool torus)
    : width_(width), height_(height), torus_(torus) {
  FTNOC_CHECK(width >= 1 && height >= 1);
  FTNOC_CHECK(width * height >= 2);
}

Coord Topology::coord_of(NodeId n) const {
  FTNOC_DCHECK(n < num_nodes());
  return Coord{static_cast<int>(n) % width_, static_cast<int>(n) / width_};
}

NodeId Topology::node_at(Coord c) const {
  FTNOC_DCHECK(contains(c));
  return static_cast<NodeId>(c.y * width_ + c.x);
}

bool Topology::contains(Coord c) const {
  return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

std::optional<NodeId> Topology::neighbor(NodeId n, Direction d) const {
  Coord c = coord_of(n);
  switch (d) {
    // Row 0 is the top of the mesh: north decreases y.
    case Direction::kNorth: c.y -= 1; break;
    case Direction::kSouth: c.y += 1; break;
    case Direction::kEast: c.x += 1; break;
    case Direction::kWest: c.x -= 1; break;
    case Direction::kLocal: return std::nullopt;
  }
  if (!contains(c)) {
    if (!torus_) return std::nullopt;
    c.x = (c.x + width_) % width_;
    c.y = (c.y + height_) % height_;
  }
  return node_at(c);
}

}  // namespace ftnoc

#include "noc/topology.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ftnoc {

Topology::Topology(int width, int height, bool torus)
    : width_(width), height_(height), torus_(torus) {
  FTNOC_CHECK(width >= 1 && height >= 1);
  FTNOC_CHECK(width * height >= 2);
}

Coord Topology::coord_of(NodeId n) const {
  FTNOC_DCHECK(n < num_nodes());
  return Coord{static_cast<int>(n) % width_, static_cast<int>(n) / width_};
}

NodeId Topology::node_at(Coord c) const {
  FTNOC_DCHECK(contains(c));
  return static_cast<NodeId>(c.y * width_ + c.x);
}

bool Topology::contains(Coord c) const {
  return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

std::optional<NodeId> Topology::neighbor(NodeId n, Direction d) const {
  Coord c = coord_of(n);
  switch (d) {
    // Row 0 is the top of the mesh: north decreases y.
    case Direction::kNorth: c.y -= 1; break;
    case Direction::kSouth: c.y += 1; break;
    case Direction::kEast: c.x += 1; break;
    case Direction::kWest: c.x -= 1; break;
    case Direction::kLocal: return std::nullopt;
  }
  if (!contains(c)) {
    if (!torus_) return std::nullopt;
    c.x = (c.x + width_) % width_;
    c.y = (c.y + height_) % height_;
  }
  return node_at(c);
}

bool Topology::dead_port(NodeId n, Direction d) const {
  if (dead_ports_.empty()) return false;
  return (dead_ports_[n] >> static_cast<int>(d)) & 1;
}

bool Topology::link_alive(NodeId n, Direction d) const {
  if (d == Direction::kLocal || !has_neighbor(n, d)) return false;
  return !dead_port(n, d);
}

bool Topology::router_alive(NodeId n) const {
  if (dead_routers_.empty()) return true;
  return !dead_routers_[n];
}

void Topology::fail_link(NodeId n, Direction d) {
  FTNOC_CHECK(n < num_nodes() && d != Direction::kLocal);
  if (dead_ports_.empty()) {
    dead_ports_.assign(static_cast<std::size_t>(num_nodes()), 0);
    dead_routers_.assign(static_cast<std::size_t>(num_nodes()), 0);
  }
  dead_ports_[n] |= static_cast<std::uint8_t>(1u << static_cast<int>(d));
  if (const auto nb = neighbor(n, d)) {
    dead_ports_[*nb] |=
        static_cast<std::uint8_t>(1u << static_cast<int>(opposite(d)));
  }
  has_faults_ = true;
  ++epoch_;
}

void Topology::fail_router(NodeId n) {
  FTNOC_CHECK(n < num_nodes());
  for (int p = 0; p < 4; ++p) {
    const auto d = static_cast<Direction>(p);
    if (has_neighbor(n, d)) fail_link(n, d);
  }
  if (dead_routers_.empty()) {
    dead_ports_.assign(static_cast<std::size_t>(num_nodes()), 0);
    dead_routers_.assign(static_cast<std::size_t>(num_nodes()), 0);
  }
  dead_routers_[n] = 1;
  has_faults_ = true;
  // Bumped even when every link was already dead: marking the router dead
  // flips its own row (a dead router stops being a legal destination).
  ++epoch_;
}

void Topology::ensure_row(NodeId dest) const {
  const std::size_t n = static_cast<std::size_t>(num_nodes());
  if (dist_.empty()) {
    dist_.assign(n * n, kUnreachable);
    row_stamp_.assign(n, 0);
  }
  if (row_stamp_[dest] == epoch_) return;
  std::uint16_t* row = dist_.data() + static_cast<std::size_t>(dest) * n;
  std::fill(row, row + n, kUnreachable);
  if (router_alive(dest)) {
    row[dest] = 0;
    std::vector<NodeId> queue;
    queue.reserve(n);
    queue.push_back(dest);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId cur = queue[head];
      for (int p = 0; p < 4; ++p) {
        const auto d = static_cast<Direction>(p);
        if (!link_alive(cur, d)) continue;
        const NodeId nb = *neighbor(cur, d);
        if (!router_alive(nb) || row[nb] != kUnreachable) continue;
        row[nb] = static_cast<std::uint16_t>(row[cur] + 1);
        queue.push_back(nb);
      }
    }
  }
  row_stamp_[dest] = epoch_;
}

std::uint16_t Topology::fault_distance(NodeId from, NodeId to) const {
  FTNOC_DCHECK(from < num_nodes() && to < num_nodes());
  if (!has_faults_) {
    // Fault-free fabrics never build the table; callers should not ask.
    const Coord a = coord_of(from);
    const Coord b = coord_of(to);
    int dx = b.x - a.x;
    int dy = b.y - a.y;
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    if (torus_) {
      if (width_ - dx < dx) dx = width_ - dx;
      if (height_ - dy < dy) dy = height_ - dy;
    }
    return static_cast<std::uint16_t>(dx + dy);
  }
  ensure_row(to);
  return dist_[static_cast<std::size_t>(to) *
                   static_cast<std::size_t>(num_nodes()) +
               from];
}

bool Topology::would_partition(NodeId n, Direction d) const {
  const auto nb = neighbor(n, d);
  if (!nb) return false;  // Killing a nonexistent link changes nothing.
  // BFS over live links, treating (n,d) / (*nb,opposite) as already dead.
  const int total = num_nodes();
  int live = 0;
  NodeId first = 0;
  bool have_first = false;
  for (NodeId i = 0; i < total; ++i) {
    if (!router_alive(i)) continue;
    ++live;
    if (!have_first) {
      first = i;
      have_first = true;
    }
  }
  if (live <= 1) return false;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(total), 0);
  std::vector<NodeId> queue = {first};
  seen[first] = 1;
  int reached = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId cur = queue[head];
    ++reached;
    for (int p = 0; p < 4; ++p) {
      const auto dir = static_cast<Direction>(p);
      if (!link_alive(cur, dir)) continue;
      if ((cur == n && dir == d) || (cur == *nb && dir == opposite(d))) {
        continue;  // The link under consideration.
      }
      const NodeId next = *neighbor(cur, dir);
      if (!router_alive(next) || seen[next]) continue;
      seen[next] = 1;
      queue.push_back(next);
    }
  }
  return reached != live;
}

}  // namespace ftnoc

#pragma once
// Top-level simulation driver: runs a Network until the configured number
// of messages has been ejected (paper §2.2: inject until 300k messages,
// including 100k warm-up, are ejected), and condenses the collected metrics
// into a flat result record that the benches print.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/network.hpp"

namespace ftnoc {

struct SimResults {
  bool completed = false;  ///< False if max_cycles hit before enough ejections.
  Cycle cycles = 0;

  // Performance. `avg_latency_cycles` is measured from header injection
  // into the network to tail ejection (the paper's message latency);
  // `avg_total_latency_cycles` additionally includes source queueing.
  double avg_latency_cycles = 0.0;
  double avg_total_latency_cycles = 0.0;
  double p50_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  double max_latency_cycles = 0.0;
  std::uint64_t measured_messages = 0;
  double throughput_flits_node_cycle = 0.0;

  // Whole-run delivery accounting (not gated on the measurement window):
  // created - ejected is the packet-loss population at end of run (drained
  // packets plus whatever was still in flight when the run stopped).
  std::uint64_t packets_created = 0;
  std::uint64_t messages_ejected = 0;

  // Energy (measurement window only).
  double energy_per_message_nj = 0.0;
  double total_energy_uj = 0.0;

  // Buffer occupancy (Figures 8/9).
  double tx_buffer_utilization = 0.0;
  double rtx_buffer_utilization = 0.0;

  // Fault-tolerance accounting (measurement window).
  std::uint64_t link_errors_corrected = 0;
  std::uint64_t link_single_corrected = 0;
  std::uint64_t link_retransmission_events = 0;
  std::uint64_t link_flits_retransmitted = 0;
  /// Detected-uncorrectable flits dropped at a receiver (the NACK drop-2
  /// window plus drops that were never replayed).
  std::uint64_t flits_dropped = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t rt_errors_recovered = 0;
  std::uint64_t va_errors_recovered = 0;
  std::uint64_t sa_errors_recovered = 0;
  std::uint64_t unprotected_errors = 0;
  std::uint64_t corrupted_delivered = 0;
  std::uint64_t e2e_retransmits = 0;
  std::uint64_t rtx_errors_corrected = 0;
  std::uint64_t handshake_errors_corrected = 0;
  std::uint64_t hard_fault_reroutes = 0;

  // Permanent-fault accounting (whole run, like packets_created). Always
  // zero unless the config has dead links/routers or escalation armed.
  /// Waiting packets sent back to routing because their next hop died.
  std::uint64_t packets_rerouted = 0;
  /// Packets dropped because no live path to their destination exists.
  std::uint64_t unreachable_drops = 0;
  /// Flaky links escalated to hard-dead at runtime.
  std::uint64_t links_escalated = 0;
  /// Fault-storm timeline kills accepted past the partition veto.
  std::uint64_t links_storm_killed = 0;
  /// Trace/workload records dropped at release because their source router
  /// is hard-dead (whole run; never counted as created).
  std::uint64_t dead_source_drops = 0;

  /// Per-directed-link congestion rows (cfg.link_stats only; links with
  /// zero activity are omitted). `dir` is the numeric Direction (N=0, E=1,
  /// S=2, W=3); `fwd` counts measured cycles the link carried a flit,
  /// `stall` measured cycles it idled while the receiver still buffered
  /// flits from it.
  struct LinkUtil {
    NodeId node = 0;
    std::uint8_t dir = 0;
    std::uint64_t fwd = 0;
    std::uint64_t stall = 0;
  };
  std::vector<LinkUtil> link_util;

  // Deadlock accounting.
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_discarded = 0;
  std::uint64_t deadlocks_confirmed = 0;
  std::uint64_t recoveries_entered = 0;
  std::uint64_t recoveries_exited = 0;
  std::uint64_t fallback_recoveries = 0;
  std::uint64_t flits_absorbed = 0;

  std::string summary() const;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  /// Runs to completion (or max_cycles) and returns the condensed metrics.
  SimResults run();

  Network& network() { return *net_; }
  const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
  std::unique_ptr<Network> net_;
};

/// Convenience: configure, run, return results.
SimResults run_simulation(const SimConfig& cfg);

}  // namespace ftnoc

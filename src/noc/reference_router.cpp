#include "noc/reference_router.hpp"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>

#include "common/check.hpp"
#include "common/log.hpp"
#include "core/logic_error_model.hpp"
#include "noc/digest.hpp"

// This file is a deliberate transliteration of router.cpp with every piece
// of PR 3 derived state removed (see reference_router.hpp). When editing
// router behaviour, mirror the change here — the differential fuzz harness
// exists to catch the two drifting apart.

namespace ftnoc {
namespace {
constexpr PortId kLocalPort = static_cast<PortId>(Direction::kLocal);

std::string ref_trace_fmt(const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}
}

ReferenceRouter::ReferenceRouter(NodeId id, const SimConfig& cfg,
                                 const Topology& topo, FaultInjector* faults,
                                 power::EnergyMeter* meter,
                                 StatsCollector* stats)
    : id_(id),
      cfg_(cfg),
      topo_(topo),
      num_vcs_(cfg.num_vcs),
      faults_(faults),
      meter_(meter),
      stats_(stats),
      ac_(kNumDirections, cfg.num_vcs),
      agent_(id, cfg.deadlock.probe_threshold, cfg.deadlock.probe_backoff,
             cfg.deadlock.probe_timeout),
      va_arbs_(kNumDirections * cfg.num_vcs, kNumDirections * cfg.num_vcs),
      sa_in_arbs_(kNumDirections, cfg.num_vcs),
      sa_out_arbs_(kNumDirections, kNumDirections),
      replay_arbs_(kNumDirections, cfg.num_vcs) {
  const int pv = num_ports_ * num_vcs_;
  FTNOC_CHECK(pv <= 32);  // VA request masks are 32-bit input-gid sets.
  inputs_.resize(static_cast<std::size_t>(pv));
  outputs_.resize(static_cast<std::size_t>(pv));
  drop_until_.assign(static_cast<std::size_t>(pv), 0);
  va_rotation_.assign(static_cast<std::size_t>(pv), 0);

  damq_ = cfg_.buffer_policy == BufferPolicyKind::kDamq;
  voq_ = cfg_.buffer_policy == BufferPolicyKind::kVoq;
  shared_credits_.assign(static_cast<std::size_t>(num_ports_), 0);
  shared_held_.assign(static_cast<std::size_t>(pv), 0);

  const bool use_rtx =
      cfg_.protection == LinkProtection::kHbh || cfg_.deadlock.enable_recovery;
  for (PortId p = 0; p < num_ports_; ++p) {
    if (damq_ && p != kLocalPort) {
      shared_credits_[p] =
          num_vcs_ * (cfg_.vc_buffer_depth - cfg_.damq_reserve_slots);
    }
    for (VcId v = 0; v < num_vcs_; ++v) {
      auto& out = ovc(p, v);
      if (p == kLocalPort) {
        out.credits = 1 << 28;
      } else {
        out.credits =
            damq_ ? cfg_.damq_reserve_slots : cfg_.vc_buffer_depth;
        if (use_rtx) out.rtx.emplace(cfg_.retransmission_depth);
      }
    }
  }
  probe_ttl_ = cfg_.deadlock.probe_ttl
                   ? cfg_.deadlock.probe_ttl
                   : static_cast<std::uint32_t>(4 * topo_.num_nodes());
}

void ReferenceRouter::connect(PortId p, Wire* in, Wire* out) {
  FTNOC_CHECK(p < num_ports_);
  in_wires_[p] = in;
  out_wires_[p] = out;
}

bool ReferenceRouter::port_has_neighbor(PortId p) const {
  if (p == kLocalPort) return false;
  return topo_.has_neighbor(id_, static_cast<Direction>(p));
}

bool ReferenceRouter::port_usable(PortId p) const {
  return port_has_neighbor(p) && !link_dead_[p];
}

void ReferenceRouter::fail_link(PortId p) {
  FTNOC_CHECK(p < num_ports_ && p != kLocalPort);
  link_dead_[p] = true;
}

void ReferenceRouter::begin_link_drain(PortId p, Cycle now) {
  FTNOC_CHECK(p < num_ports_ && p != kLocalPort);
  if (link_dead_[p] || (draining_ & port_bit(p)) != 0) return;
  draining_ |= port_bit(p);
  uncorrectable_streak_[p] = 0;
  escalation_requests_ &= static_cast<std::uint8_t>(~port_bit(p));
  for (int g = 0; g < num_ports_ * num_vcs_; ++g) {
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.state != VcState::kVaWait) continue;
    if (!mask_has(vc.candidates, p)) continue;
    vc.candidates &= static_cast<PortMask>(~port_bit(p));
    if (vc.candidates == 0) {
      vc.state = VcState::kRouting;
      vc.state_since = now;
      if (stats_) stats_->on_packet_rerouted();
    }
  }
  // A registered deadlock waiter with none of its flits absorbed into the
  // barrel is a pure reservation on the dying port: cancel it and re-home
  // the packet, mirroring Router::begin_link_drain. (The reference model
  // never applies test mutations, so the fix is unconditional here.)
  for (int v = 0; v < num_vcs_; ++v) {
    auto& out = ovc(p, static_cast<VcId>(v));
    if (!out.has_waiter) continue;
    if (out.rtx && out.rtx->contains_packet(out.waiter_pid)) continue;
    const int wg = out.waiter_gid;
    out.has_waiter = false;
    auto& wvc = inputs_[static_cast<std::size_t>(wg)];
    if (wvc.state == VcState::kVaReserved && wvc.out_port == p &&
        wvc.out_vc == static_cast<VcId>(v)) {
      wvc.state = VcState::kRouting;
      wvc.candidates = 0;
      wvc.out_port = kInvalidPort;
      wvc.out_vc = kInvalidVc;
      wvc.state_since = now;
      if (stats_) stats_->on_packet_rerouted();
    }
  }
}

void ReferenceRouter::rehome_stale_routes(Cycle now) {
  const std::uint32_t e = topo_.route_epoch();
  if (e == route_epoch_seen_) return;
  route_epoch_seen_ = e;
  for (int g = 0; g < num_ports_ * num_vcs_; ++g) {
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.state != VcState::kVaWait || vc.buf.empty()) continue;
    const PortMask fresh =
        route(topo_, cfg_.routing, id_, vc.buf.front().dest);
    if (fresh == vc.candidates) continue;
    vc.candidates = fresh;
    if (fresh == 0) {
      vc.state = VcState::kRouting;
      vc.state_since = now;
    }
  }
}

void ReferenceRouter::charge(power::EnergyEvent e, std::uint64_t times) {
  if (meter_) meter_->charge(e, times);
}

void ReferenceRouter::step(Cycle now) {
  // Drain-to-kill completion (§4.9), mirrored from the optimized kernel
  // but recomputing idleness from scratch instead of out_work_.
  if (draining_ != 0) {
    for (std::uint32_t dm = draining_; dm != 0; dm &= dm - 1) {
      const PortId p = static_cast<PortId>(std::countr_zero(dm));
      bool busy = staged_[p].has_value();
      for (VcId v = 0; !busy && v < num_vcs_; ++v) {
        const auto& out = ovc(p, v);
        busy = out.allocated || out.has_waiter ||
               (out.rtx && out.rtx->occupancy() > 0);
      }
      if (busy) continue;
      link_dead_[p] = true;
      draining_ &= static_cast<std::uint8_t>(~port_bit(p));
    }
  }
  // Online reconfiguration (§4.12), mirrored from the optimized kernel.
  rehome_stale_routes(now);
  // No quiescent fast path: on an idle router every phase is a no-op, and
  // the differential comparison against the optimized kernel checks that.
  std::fill(port_busy_.begin(), port_busy_.end(), false);
  phase_maintenance(now);
  phase_receive(now);
  switch (cfg_.pipeline_stages) {
    case 1:
      phase_rt(now);
      phase_va(now);
      phase_replay_and_switch(now);
      break;
    case 2:
      phase_replay_and_switch(now);
      phase_rt(now);
      phase_va(now);
      break;
    default:
      phase_replay_and_switch(now);
      phase_va(now);
      phase_rt(now);
      break;
  }
  phase_deadlock(now);
  maybe_release_outputs(now);
}

void ReferenceRouter::phase_maintenance(Cycle now) {
  if (!outbox_.empty()) flush_outbox();

  for (auto& out : outputs_) {
    if (out.rtx && out.rtx->occupancy() > 0) out.rtx->retire_expired(now);
  }

  for (PortId p = 0; p < num_ports_; ++p) {
    Wire* w = out_wires_[p];
    if (w == nullptr) continue;
    if (w->credit.empty() && !w->nack.peek()) continue;
    for (const Credit& c : w->credit.read()) {
      if (faults_ && faults_->upset_handshake()) {
        if (cfg_.tmr_handshaking) {
          if (stats_) stats_->on_handshake_error_corrected();
        } else {
          if (stats_) stats_->on_unprotected_error();
          continue;
        }
      }
      auto& out = ovc(p, c.vc);
      if (damq_) {
        // Return borrowed shared slots before reserved ones; the budget
        // K + shared_held stays conserved either way (DESIGN.md §4.11).
        auto& held = shared_held_[static_cast<std::size_t>(gid(p, c.vc))];
        if (held > 0) {
          --held;
          ++shared_credits_[p];
          FTNOC_CHECK(shared_credits_[p] <=
                      num_vcs_ *
                          (cfg_.vc_buffer_depth - cfg_.damq_reserve_slots));
        } else {
          ++out.credits;
          FTNOC_CHECK(out.credits <= cfg_.damq_reserve_slots);
        }
      } else {
        ++out.credits;
        FTNOC_CHECK(out.credits <= cfg_.vc_buffer_depth);
      }
    }
    if (auto nack = w->nack.read()) {
      if (faults_ && faults_->upset_handshake()) {
        if (cfg_.tmr_handshaking) {
          if (stats_) stats_->on_handshake_error_corrected();
        } else {
          if (stats_) stats_->on_unprotected_error();
          nack.reset();
        }
      }
      if (nack) {
        auto& out = ovc(p, nack->vc);
        FTNOC_CHECK(out.rtx.has_value());
        const int n = out.rtx->on_nack();
        FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_restored(n));
        if (staged_[p] && staged_[p]->vc == nack->vc) {
          const Flit& s = staged_[p]->stored;
          // Scan the whole pending region, not just the front: the
          // rollback above may have queued older flits ahead of a staged
          // replay's un-consumed entry (see router.cpp).
          const bool still_pending =
              out.rtx->pending_contains(s.packet_id, s.seq);
          if (!still_pending) out.rtx->push_pending_back(s);
          staged_[p].reset();
        }
        if (stats_) {
          stats_->on_link_retransmission(static_cast<std::uint64_t>(n));
        }
      }
    }
  }

  for (PortId p = 0; p < num_ports_; ++p) {
    if (staged_[p]) {
      FTNOC_CHECK(out_wires_[p] != nullptr);
      finalize_transmission(p, staged_[p]->vc, staged_[p]->stored, now);
      out_wires_[p]->flit.write(staged_[p]->wire);
      staged_[p].reset();
    }
  }

  for (std::size_t i = 0; i < pending_nacks_.size();) {
    if (pending_nacks_[i].send_at <= now) {
      Wire* w = in_wires_[pending_nacks_[i].port];
      FTNOC_CHECK(w != nullptr);
      FTNOC_CHECK(w->nack.can_write());
      w->nack.write({pending_nacks_[i].vc});
      charge(power::EnergyEvent::kNackSignal);
      pending_nacks_.erase(pending_nacks_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void ReferenceRouter::phase_receive(Cycle now) {
  for (PortId p = 0; p < num_ports_; ++p) {
    Wire* w = in_wires_[p];
    if (w == nullptr) continue;
    if (w->flit.peek()) {
      handle_incoming_flit(p, std::move(*w->flit.read()), now);
    }
    if (w->probe.peek()) {
      handle_probe(p, *w->probe.read(), now);
    }
    if (w->activation.peek()) {
      handle_activation(*w->activation.read(), now);
    }
  }
}

void ReferenceRouter::handle_incoming_flit(PortId p, Flit f, Cycle now) {
  if (p != kLocalPort) {
    if (faults_) faults_->maybe_corrupt_link(f);
    switch (cfg_.protection) {
      case LinkProtection::kHbh: {
        if (now <= drop_until_[gid(p, f.vc)]) {
          if (stats_) stats_->on_flit_dropped();
          FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
          return;
        }
        charge(power::EnergyEvent::kEccCheck);
        const FlitCheck c = checker_.check(f);
        const bool must_retransmit =
            c == FlitCheck::kUncorrectable ||
            (cfg_.ecc_detect_only && c == FlitCheck::kCorrected);
        if (must_retransmit) {
          if (cfg_.faults.link_escalation_threshold > 0 && !link_dead_[p] &&
              (draining_ & port_bit(p)) == 0) {
            if (++uncorrectable_streak_[p] >= static_cast<std::uint32_t>(
                    cfg_.faults.link_escalation_threshold)) {
              escalation_requests_ |= port_bit(p);
              uncorrectable_streak_[p] = 0;
            }
          }
          if (stats_) stats_->on_nack_sent();
          pending_nacks_.push_back({p, f.vc, now + 1});
          // The reference model never applies test mutations: a 4-stage
          // sender always gets the full 3-cycle drop window.
          drop_until_[gid(p, f.vc)] =
              now + (cfg_.pipeline_stages == 4 ? 3 : 2);
          FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
          return;
        }
        if (c == FlitCheck::kCorrected) {
          if (stats_) stats_->on_link_single_corrected();
        }
        if (cfg_.faults.link_escalation_threshold > 0) {
          uncorrectable_streak_[p] = 0;
        }
        break;
      }
      case LinkProtection::kFec: {
        charge(power::EnergyEvent::kEccCheck);
        const FlitCheck c = checker_.check(f);
        if (c == FlitCheck::kCorrected) {
          if (stats_) stats_->on_link_single_corrected();
        }
        break;
      }
      case LinkProtection::kE2e:
      case LinkProtection::kNone:
        break;
    }
  }
  accept_flit(p, std::move(f), now);
}

void ReferenceRouter::accept_flit(PortId p, Flit f, Cycle now) {
  auto& vc = ivc(p, f.vc);
  if (damq_ && p != kLocalPort) {
    // DAMQ admission, computed logically from the per-VC deque sizes: a
    // VC below its reserve always has a slot; past it the port's shared
    // region must have room. The sender credit protocol guarantees this
    // holds at every arrival (DESIGN.md §4.11), hence CHECK, not drop.
    if (static_cast<int>(vc.buf.size()) >= cfg_.damq_reserve_slots) {
      int shared_in_use = 0;
      for (VcId v = 0; v < num_vcs_; ++v) {
        shared_in_use +=
            std::max(0, static_cast<int>(ivc(p, v).buf.size()) -
                            cfg_.damq_reserve_slots);
      }
      FTNOC_CHECK(shared_in_use <
                  num_vcs_ * (cfg_.vc_buffer_depth - cfg_.damq_reserve_slots));
    }
  } else {
    FTNOC_CHECK(static_cast<int>(vc.buf.size()) < cfg_.vc_buffer_depth);
  }
  f.arrived_cycle = now;
  FTNOC_INVARIANT_HOOK(if (mon_) {
    if (p == kLocalPort) mon_->on_injected();
    mon_->on_flit_accepted(now, id_, p, f);
  });
  vc.buf.push_back(std::move(f));
  charge(power::EnergyEvent::kBufferWrite);
}

void ReferenceRouter::phase_replay_and_switch(Cycle now) {
  // (a) Retransmissions and absorbed-flit transmissions take priority.
  for (PortId o = 0; o < num_ports_; ++o) {
    if (o == kLocalPort || out_wires_[o] == nullptr) continue;
    if (cfg_.pipeline_stages == 4 && staged_[o].has_value()) continue;
    std::uint32_t mask = 0;
    for (VcId v = 0; v < num_vcs_; ++v) {
      auto& out = ovc(o, v);
      if (!out.rtx || !out.rtx->has_pending()) continue;
      if (!out.allocated ||
          out.rtx->front_pending().packet_id != out.owner_pid) {
        continue;
      }
      if (out.rtx->front_pending_credit_held() || can_consume_credit(o, v)) {
        mask |= (1u << v);
      }
    }
    if (mask == 0) continue;
    const int v = replay_arbs_.at(o).arbitrate(mask);
    auto& out = ovc(o, static_cast<VcId>(v));
    const bool credit_held = out.rtx->front_pending_credit_held();
    Flit f = out.rtx->front_pending();
    charge(power::EnergyEvent::kRetransmission);
    transmit(o, static_cast<VcId>(v), std::move(f), now,
             /*consume_credit=*/!credit_held);
  }

  // (b) SA input stage: each input port nominates one VC.
  std::array<int, kNumDirections> nominee;
  nominee.fill(-1);
  bool any_nominee = false;
  for (PortId p = 0; p < num_ports_; ++p) {
    std::uint32_t mask = 0;
    for (VcId v = 0; v < num_vcs_; ++v) {
      auto& vc = ivc(p, v);
      if (vc.state != VcState::kActive || vc.buf.empty()) continue;
      if (vc.buf.front().arrived_cycle >= now) continue;
      if (now < vc.stall_until) continue;
      const PortId o = vc.out_port;
      if (port_busy_[o]) continue;
      if (o != kLocalPort) {
        if (cfg_.pipeline_stages == 4 && staged_[o].has_value()) continue;
        auto& out = ovc(o, vc.out_vc);
        if (out.rtx && out.rtx->has_pending_for(out.owner_pid)) continue;
        if (!can_consume_credit(o, vc.out_vc)) continue;
      }
      mask |= (1u << v);
    }
    if (mask != 0) {
      nominee[p] = sa_in_arbs_.at(p).arbitrate(mask);
      any_nominee = true;
    }
  }
  if (!any_nominee) return;

  // (c) SA output stage: each output port picks one requesting input port.
  for (PortId o = 0; o < num_ports_; ++o) {
    if (port_busy_[o]) continue;
    std::uint32_t pmask = 0;
    for (PortId p = 0; p < num_ports_; ++p) {
      if (nominee[p] < 0) continue;
      if (ivc(p, static_cast<VcId>(nominee[p])).out_port == o) {
        pmask |= (1u << p);
      }
    }
    if (pmask == 0) continue;
    const int p = sa_out_arbs_.at(o).arbitrate(pmask);
    const auto v = static_cast<VcId>(nominee[p]);
    auto& vc = ivc(static_cast<PortId>(p), v);
    charge(power::EnergyEvent::kSwAllocation);

    bool corrupt_in_flight = false;
    if (faults_ && faults_->upset_sa_grant()) {
      if (cfg_.enable_ac) {
        charge(power::EnergyEvent::kAcCheck);
        if (ac_requires_neighbor_nack(cfg_.pipeline_stages)) {
          charge(power::EnergyEvent::kNackSignal);
        }
        if (stats_) stats_->on_sa_error_recovered();
        continue;
      }
      if (stats_) stats_->on_unprotected_error();
      corrupt_in_flight = true;
    }

    Flit f = vc.buf.front();
    vc.buf.pop_front();
    charge(power::EnergyEvent::kBufferRead);
    charge(power::EnergyEvent::kCrossbarTraversal);
    const bool tail = is_tail(f.type);
    send_credit(static_cast<PortId>(p), v);
    vc.last_advance = now;

    if (vc.out_port == kLocalPort) {
      eject(f, static_cast<PortId>(p), v, now);
      if (tail) {
        ovc(kLocalPort, vc.out_vc).allocated = false;
      }
    } else {
      transmit(vc.out_port, vc.out_vc, std::move(f), now,
               /*consume_credit=*/true, corrupt_in_flight);
    }
    if (tail) {
      release_input_after_tail(static_cast<PortId>(p), v, now);
    }
  }
}

void ReferenceRouter::finalize_transmission(PortId o, VcId v, const Flit& f,
                                            Cycle now) {
  auto& out = ovc(o, v);
  if (is_tail(f.type)) out.tail_sent = true;
  if (!out.rtx) return;
  const bool is_replay = out.rtx->has_pending() &&
                         out.rtx->front_pending().packet_id == f.packet_id &&
                         out.rtx->front_pending().seq == f.seq;
  if (!is_replay && !out.rtx->can_accept(now)) return;
  Flit stored = f;
  if (faults_ && faults_->upset_rtx_copy()) {
    if (cfg_.duplicate_rtx_buffers) {
      if (stats_) stats_->on_rtx_error_corrected();
      charge(power::EnergyEvent::kRtxBufferWrite);
    } else {
      stored.codeword.flip(static_cast<int>(faults_->random_below(36)));
      stored.codeword.flip(36 + static_cast<int>(faults_->random_below(36)));
    }
  }
  out.rtx->record_transmission(stored, now);
  charge(power::EnergyEvent::kRtxBufferWrite);
}

void ReferenceRouter::transmit(PortId o, VcId v, Flit f, Cycle now,
                               bool consume_credit, bool corrupt_on_wire) {
  FTNOC_CHECK(o != kLocalPort);
  FTNOC_CHECK(out_wires_[o] != nullptr);
  auto& out = ovc(o, v);
  if (consume_credit) {
    if (out.credits > 0) {
      --out.credits;
    } else {
      // Reserved credits exhausted: borrow from the port's shared pool.
      FTNOC_CHECK(damq_ && shared_credits_[o] > 0);
      --shared_credits_[o];
      ++shared_held_[static_cast<std::size_t>(gid(o, v))];
    }
  }
  f.vc = v;
  ++f.hops;
  charge(power::EnergyEvent::kLinkTraversal);
  Flit wire = f;
  if (corrupt_on_wire) {
    wire.codeword.flip(static_cast<int>(faults_->random_below(36)));
    wire.codeword.flip(36 + static_cast<int>(faults_->random_below(36)));
  }
  if (cfg_.pipeline_stages == 4) {
    FTNOC_CHECK(!staged_[o].has_value());
    staged_[o] = StagedFlit{std::move(wire), std::move(f), v};
  } else {
    finalize_transmission(o, v, f, now);
    FTNOC_CHECK(out_wires_[o]->flit.can_write());
    out_wires_[o]->flit.write(wire);
  }
  port_busy_[o] = true;
}

void ReferenceRouter::eject(const Flit& f, PortId in_port, VcId in_vc,
                            Cycle now) {
  (void)in_port;
  (void)in_vc;
  FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_ejected());
  if (eject_) eject_(f, now);
}

void ReferenceRouter::send_credit(PortId p, VcId v) {
  progress_this_cycle_ = true;
  if (in_wires_[p]) in_wires_[p]->credit.write({v});
}

void ReferenceRouter::release_input_after_tail(PortId p, VcId v, Cycle now) {
  auto& vc = ivc(p, v);
  vc.state = VcState::kRouting;
  vc.candidates = 0;
  vc.out_port = kInvalidPort;
  vc.out_vc = kInvalidVc;
  vc.state_since = now;
}

void ReferenceRouter::maybe_release_outputs(Cycle now) {
  for (int og = 0; og < num_ports_ * num_vcs_; ++og) {
    auto& out = outputs_[static_cast<std::size_t>(og)];
    if (!out.allocated || !out.tail_sent) continue;
    if (out.rtx && out.rtx->contains_packet(out.owner_pid)) continue;
    out.allocated = false;
    out.tail_sent = false;
    if (out.has_waiter) {
      out.allocated = true;
      out.owner_gid = out.waiter_gid;
      out.owner_pid = out.waiter_pid;
      out.has_waiter = false;
      auto& wvc = inputs_[out.owner_gid];
      const PortId p = static_cast<PortId>(og / num_vcs_);
      const VcId v = static_cast<VcId>(og % num_vcs_);
      if (wvc.state == VcState::kVaReserved && wvc.out_port == p &&
          wvc.out_vc == v) {
        wvc.state = VcState::kActive;
        wvc.state_since = now;
      }
    }
  }
}

std::optional<std::pair<PortId, VcId>> ReferenceRouter::pick_va_request(
    InputVc& vc, PortId in_port, VcId in_vc, int rotation) {
  const bool escape_mode = cfg_.routing == RoutingAlgorithm::kAdaptiveEscape;
  const bool escape_bound =
      escape_mode && in_port != kLocalPort && in_vc == 0;
  PortId xy_port = kInvalidPort;
  if (escape_mode && !vc.buf.empty()) {
    xy_port = first_port(
        route(topo_, RoutingAlgorithm::kXY, id_, vc.buf.front().dest));
  }
  // Under voq a packet only ever requests the VC class of its destination
  // column (voq lane); escape_mode is mutually exclusive (voq => XY).
  const int lane = vc.buf.empty() ? -1 : voq_lane(vc.buf.front());

  std::array<std::pair<PortId, VcId>, 32> options;
  int n = 0;
  for (PortId o = 0; o < num_ports_; ++o) {
    if (!mask_has(vc.candidates, o)) continue;
    const bool valid = (o == kLocalPort)
                           ? (!vc.buf.empty() && vc.buf.front().dest == id_)
                           : port_allocatable(o);
    if (!valid) continue;
    for (VcId v = 0; v < num_vcs_; ++v) {
      if (lane >= 0 && v != lane) continue;
      if (ovc(o, v).allocated || n >= static_cast<int>(options.size())) {
        continue;
      }
      if (escape_mode && o != kLocalPort) {
        if (escape_bound && (v != 0 || o != xy_port)) continue;
        if (!escape_bound && v == 0 && o != xy_port) continue;
      }
      options[n++] = {o, v};
    }
  }
  if (n == 0) return std::nullopt;
  return options[rotation % n];
}

void ReferenceRouter::phase_va(Cycle now) {
  const int pv = num_ports_ * num_vcs_;
  std::vector<std::uint32_t> reqs(static_cast<std::size_t>(pv), 0);
  std::vector<std::pair<PortId, VcId>> want(
      static_cast<std::size_t>(pv), {kInvalidPort, kInvalidVc});
  for (int g = 0; g < pv; ++g) {
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.state != VcState::kVaWait || vc.buf.empty()) continue;
    if (now < vc.stall_until) continue;
    FTNOC_CHECK(is_head(vc.buf.front().type));

    bool any_valid = false;
    bool dead_candidate = false;
    for (PortId o = 0; o < num_ports_; ++o) {
      if (!mask_has(vc.candidates, o)) continue;
      if (o == kLocalPort ? vc.buf.front().dest == id_
                          : port_allocatable(o)) {
        any_valid = true;
        break;
      }
      if (o != kLocalPort && port_has_neighbor(o) &&
          (link_dead_[o] || (draining_ & port_bit(o)) != 0)) {
        dead_candidate = true;
      }
    }
    if (!any_valid) {
      if (cfg_.adaptive_faults && dead_candidate) {
        // Non-minimal escape tier (DESIGN.md §4.12), mirrored from Router.
        const PortMask esc =
            fault_escape_ports(topo_, id_, vc.buf.front().dest);
        if (esc == 0) {
          vc.state = VcState::kRouting;
          vc.candidates = 0;
          continue;
        }
        PortMask usable = 0;
        for (PortId o = 0; o < num_ports_; ++o) {
          if (mask_has(esc, o) && o != kLocalPort && port_allocatable(o)) {
            usable |= port_bit(o);
          }
        }
        if (usable == 0) continue;
        vc.candidates = usable;
        if (stats_) stats_->on_hard_fault_reroute();
        FTNOC_INVARIANT_HOOK(if (mon_) {
          mon_->on_misroute(now, id_, vc.buf.front().packet_id);
        });
      } else if (dead_candidate &&
                 cfg_.routing != RoutingAlgorithm::kXY) {
        PortMask live = 0;
        for (PortId o = 0; o < num_ports_; ++o) {
          if (o != kLocalPort && port_allocatable(o)) live |= port_bit(o);
        }
        if (live != 0) {
          vc.candidates = live;
          if (stats_) stats_->on_hard_fault_reroute();
        } else {
          continue;
        }
      } else {
        if (stats_) stats_->on_rt_error_recovered();
        vc.state = VcState::kRouting;
        vc.candidates = 0;
        continue;
      }
    }

    auto req = pick_va_request(vc, static_cast<PortId>(g / num_vcs_),
                               static_cast<VcId>(g % num_vcs_),
                               va_rotation_[static_cast<std::size_t>(g)]++);
    if (!req) continue;
    const int og = gid(req->first, req->second);
    reqs[static_cast<std::size_t>(og)] |= (1u << g);
    want[static_cast<std::size_t>(g)] = *req;
  }

  for (int og = 0; og < pv; ++og) {
    if (reqs[static_cast<std::size_t>(og)] == 0) continue;
    const int g = va_arbs_.at(og).arbitrate(reqs[static_cast<std::size_t>(og)]);
    FTNOC_CHECK(g >= 0);
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    const PortId o = want[static_cast<std::size_t>(g)].first;
    const VcId v = want[static_cast<std::size_t>(g)].second;
    charge(power::EnergyEvent::kVcAllocation);

    if (faults_ && faults_->upset_va_allocation()) {
      run_ac_on_va(static_cast<std::size_t>(g), now);
      continue;
    }

    vc.state = VcState::kActive;
    vc.out_port = o;
    vc.out_vc = v;
    vc.state_since = now;
    auto& out = ovc(o, v);
    out.allocated = true;
    out.owner_gid = static_cast<std::uint16_t>(g);
    out.owner_pid = vc.buf.front().packet_id;
    out.tail_sent = false;
  }
}

void ReferenceRouter::run_ac_on_va(std::size_t g, Cycle now) {
  auto& vc = inputs_[g];
  std::vector<RoutingStateEntry> rt_state;
  std::vector<VaStateEntry> va_state;
  std::vector<SaStateEntry> sa_state;
  rt_state.push_back(
      {static_cast<std::uint16_t>(g), vc.candidates});
  for (int og = 0; og < num_ports_ * num_vcs_; ++og) {
    const auto& out = outputs_[static_cast<std::size_t>(og)];
    if (out.allocated) {
      va_state.push_back({out.owner_gid,
                          static_cast<PortId>(og / num_vcs_),
                          static_cast<VcId>(og % num_vcs_)});
    }
  }

  VaStateEntry bad{static_cast<std::uint16_t>(g), kInvalidPort, kInvalidVc};
  switch (faults_->random_below(3)) {
    case 0:
      bad.out_port = first_port(vc.candidates);
      bad.out_vc = static_cast<VcId>(num_vcs_);
      break;
    case 1: {
      PortId wrong = static_cast<PortId>(faults_->random_below(
          static_cast<std::uint64_t>(num_ports_)));
      while (mask_has(vc.candidates, wrong)) {
        wrong = static_cast<PortId>((wrong + 1) % num_ports_);
      }
      bad.out_port = wrong;
      bad.out_vc = 0;
      break;
    }
    default: {
      bad.out_port = first_port(vc.candidates);
      bad.out_vc = kInvalidVc;
      for (VcId v = 0; v < num_vcs_; ++v) {
        if (ovc(bad.out_port, v).allocated) {
          bad.out_vc = v;
          break;
        }
      }
      if (bad.out_vc == kInvalidVc) {
        bad.out_vc = static_cast<VcId>(num_vcs_);
      }
      break;
    }
  }
  va_state.push_back(bad);

  if (cfg_.enable_ac) {
    const AcReport report = ac_.check(rt_state, va_state, sa_state);
    charge(power::EnergyEvent::kAcCheck);
    FTNOC_CHECK(report.any_error());
    if (stats_) stats_->on_va_error_recovered();
    (void)now;
    return;
  }
  if (stats_) stats_->on_unprotected_error();
  vc.state = VcState::kDraining;
}

PortMask ReferenceRouter::apply_rt_fault(InputVc& vc, PortMask correct,
                                         Cycle now) {
  if (!faults_ || !faults_->upset_routing()) return correct;

  std::array<PortId, kNumDirections> wrongs{};
  int n = 0;
  for (PortId o = 0; o < num_ports_; ++o) {
    if (!mask_has(correct, o)) wrongs[static_cast<std::size_t>(n++)] = o;
  }
  FTNOC_CHECK(n > 0);
  const PortId w = wrongs[faults_->random_below(static_cast<std::uint64_t>(n))];

  const bool functional = (w != kLocalPort) && port_allocatable(w);
  if (!functional) {
    return port_bit(w);
  }
  if (cfg_.routing == RoutingAlgorithm::kXY) {
    if (stats_) stats_->on_rt_error_recovered();
    charge(power::EnergyEvent::kNackSignal);
    charge(power::EnergyEvent::kRetransmission);
    vc.stall_until =
        now + static_cast<Cycle>(rt_recovery_penalty(
                  cfg_.pipeline_stages, /*lookahead=*/cfg_.pipeline_stages <= 2,
                  RtMisrouteKind::kFunctionalDeterministic));
    return correct;
  }
  return port_bit(w);
}

void ReferenceRouter::phase_rt(Cycle now) {
  for (int g = 0; g < num_ports_ * num_vcs_; ++g) {
    auto& vc = inputs_[static_cast<std::size_t>(g)];

    if (vc.state == VcState::kDraining) {
      if (!vc.buf.empty() && vc.buf.front().arrived_cycle < now) {
        const Flit f = vc.buf.front();
        vc.buf.pop_front();
        FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
        charge(power::EnergyEvent::kBufferRead);
        send_credit(static_cast<PortId>(g / num_vcs_),
                    static_cast<VcId>(g % num_vcs_));
        vc.last_advance = now;
        if (is_tail(f.type)) {
          vc.state = VcState::kRouting;
          vc.state_since = now;
        }
      }
      continue;
    }

    if (vc.state != VcState::kRouting || vc.buf.empty()) continue;
    if (vc.buf.front().arrived_cycle >= now) continue;
    if (now < vc.stall_until) continue;
    if (!is_head(vc.buf.front().type)) {
      vc.buf.pop_front();
      FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_dropped());
      send_credit(static_cast<PortId>(g / num_vcs_),
                  static_cast<VcId>(g % num_vcs_));
      if (stats_) {
        stats_->on_flit_dropped();
        stats_->on_unprotected_error();
      }
      continue;
    }

    charge(power::EnergyEvent::kRouteCompute);
    const NodeId dest = vc.buf.front().dest;
    const PortMask correct = route(topo_, cfg_.routing, id_, dest);
    if (topo_.has_faults()) {
      // The reference model never applies the "route_into_dead_link"
      // planted mutation: it always routes fault-aware.
      if (correct == 0) {
        if (stats_) stats_->on_unreachable_drop();
        vc.state = VcState::kDraining;
        vc.state_since = now;
        continue;
      }
      if (stats_ &&
          (correct & ~route_fault_free(topo_, cfg_.routing, id_, dest)) !=
              0) {
        stats_->on_hard_fault_reroute();
      }
    }
    vc.candidates = apply_rt_fault(vc, correct, now);
    vc.state = VcState::kVaWait;
    vc.state_since = now;
  }
}

bool ReferenceRouter::vc_blocked(const InputVc& vc, Cycle now) const {
  if (vc.buf.empty() && vc.state != VcState::kVaReserved) return false;
  if (vc.state != VcState::kActive && vc.state != VcState::kVaWait &&
      vc.state != VcState::kVaReserved) {
    return false;
  }
  return now - vc.last_advance >= 2;
}

void ReferenceRouter::queue_control(PortId port, const ProbeSignal& p) {
  OutboxItem item;
  item.port = port;
  item.is_probe = true;
  item.probe = p;
  outbox_.push_back(item);
}

void ReferenceRouter::queue_control(PortId port, const ActivationSignal& a) {
  OutboxItem item;
  item.port = port;
  item.is_probe = false;
  item.activation = a;
  outbox_.push_back(item);
}

void ReferenceRouter::flush_outbox() {
  for (std::size_t i = 0; i < outbox_.size();) {
    const OutboxItem& item = outbox_[i];
    Wire* w = out_wires_[item.port];
    FTNOC_CHECK(w != nullptr);
    bool sent = false;
    if (item.is_probe) {
      if (w->probe.can_write()) {
        w->probe.write(item.probe);
        sent = true;
      }
    } else {
      if (w->activation.can_write()) {
        w->activation.write(item.activation);
        sent = true;
      }
    }
    if (sent) {
      outbox_.erase(outbox_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

std::optional<std::pair<PortId, VcId>> ReferenceRouter::resolve_chain(
    const InputVc& vc) const {
  if ((vc.state == VcState::kActive || vc.state == VcState::kVaReserved) &&
      vc.out_port != kLocalPort && vc.out_port != kInvalidPort) {
    return std::make_pair(vc.out_port, vc.out_vc);
  }
  if (vc.state == VcState::kVaWait) {
    for (PortId o = 0; o < num_ports_; ++o) {
      if (!mask_has(vc.candidates, o) || o == kLocalPort) continue;
      for (VcId v = 0; v < num_vcs_; ++v) {
        if (ovc(o, v).allocated) return std::make_pair(o, v);
      }
    }
  }
  return std::nullopt;
}

void ReferenceRouter::handle_probe(PortId /*from*/, const ProbeSignal& probe,
                                   Cycle now) {
  charge(power::EnergyEvent::kProbeHop);
  if (probe.hops > probe_ttl_) {
    if (stats_) stats_->on_probe_discarded();
    return;
  }
  if (probe.origin == id_) {
    FTNOC_TRACE(ref_trace_fmt("[%llu] r%u probe id=%u RETURNED",
                              (unsigned long long)now, id_, probe.probe_id));
    if (agent_.on_probe_returned(probe)) {
      if (stats_) stats_->on_deadlock_confirmed();
      FTNOC_INVARIANT_HOOK(
          if (mon_) mon_->on_probe_confirmed(now, id_, probe.probe_id));
      const auto it = own_probe_route_.find(probe.probe_id);
      FTNOC_CHECK(it != own_probe_route_.end());
      queue_control(it->second.port, ActivationSignal{id_, probe.probe_id});
      own_probe_route_.erase(it);
    } else {
      own_probe_route_.erase(probe.probe_id);
    }
    return;
  }

  FTNOC_CHECK(probe.in_port < num_ports_ && probe.in_vc < num_vcs_);
  const auto& target = ivc(probe.in_port, probe.in_vc);
  std::optional<std::pair<PortId, VcId>> fwd;
  if (vc_blocked(target, now) || agent_.in_recovery()) {
    fwd = resolve_chain(target);
  }

  const ProbeAction action = agent_.on_probe(probe, fwd.has_value());
  FTNOC_TRACE(ref_trace_fmt(
      "[%llu] r%u probe(o=%u,id=%u) tgt(%d,%d) act=%d fwd=%d tstate=%d "
      "tcand=%02x tblocked=%d rec=%d",
      (unsigned long long)now, id_, probe.origin, probe.probe_id,
      (int)probe.in_port, (int)probe.in_vc, (int)action,
      fwd ? (int)fwd->first : -1, (int)target.state,
      (unsigned)target.candidates, (int)vc_blocked(target, now),
      (int)agent_.in_recovery()));
  if (action == ProbeAction::kForward && fwd) {
    ProbeSignal next = probe;
    next.hops = probe.hops + 1;
    next.in_port = static_cast<PortId>(
        opposite(static_cast<Direction>(fwd->first)));
    next.in_vc = fwd->second;
    agent_.remember_forwarded_probe(probe, fwd->first, next.in_port,
                                    next.in_vc);
    FTNOC_INVARIANT_HOOK(
        if (mon_) mon_->on_probe_forwarded(id_, probe.origin, probe.probe_id));
    queue_control(fwd->first, next);
  } else {
    if (stats_) stats_->on_probe_discarded();
  }
}

void ReferenceRouter::handle_activation(const ActivationSignal& act,
                                        Cycle now) {
  if (act.origin == id_) {
    const bool was = agent_.in_recovery();
    agent_.on_activation_returned(act);
    if (!was && agent_.in_recovery()) {
      if (stats_) stats_->on_recovery_entered();
      FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_recovery_entered(
          now, id_, RecoveryTrigger::kActivationReturned, act.origin,
          act.probe_id, cfg_.vc_buffer_depth, cfg_.retransmission_depth));
    }
    (void)now;
    return;
  }
  const bool was = agent_.in_recovery();
  const auto fwd = agent_.on_activation(act);
  if (!was && agent_.in_recovery()) {
    if (stats_) stats_->on_recovery_entered();
    FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_recovery_entered(
        now, id_, RecoveryTrigger::kActivationRelay, act.origin, act.probe_id,
        cfg_.vc_buffer_depth, cfg_.retransmission_depth));
  }
  if (fwd) {
    charge(power::EnergyEvent::kProbeHop);
    queue_control(*fwd, act);
  }
}

void ReferenceRouter::phase_deadlock(Cycle now) {
  if (progress_this_cycle_) {
    agent_.note_progress();
    progress_this_cycle_ = false;
  }
  if (!cfg_.deadlock.enable_recovery) return;

  if (!own_probe_route_.empty()) {
    const auto& live = agent_.outstanding_probe();
    for (auto it = own_probe_route_.begin();
         it != own_probe_route_.end();) {
      const bool spared = live.has_value() && *live == it->first;
      if (!spared && now - it->second.sent_at > agent_.probe_timeout()) {
        it = own_probe_route_.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (int g = 0; g < num_ports_ * num_vcs_; ++g) {
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.buf.empty()) continue;
    if (vc.state != VcState::kActive && vc.state != VcState::kVaWait) {
      continue;
    }
    const Cycle blocked = now - vc.last_advance;
    if (!agent_.should_probe(blocked, now)) continue;
    const auto chain = resolve_chain(vc);
    if (!chain) continue;
    const ProbeSignal pr = agent_.make_probe(
        static_cast<PortId>(opposite(static_cast<Direction>(chain->first))),
        chain->second, now);
    FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_probe_minted(id_, pr.probe_id));
    if (cfg_.deadlock.fallback_probe_failures > 0 &&
        agent_.failed_probes() >= cfg_.deadlock.fallback_probe_failures) {
      agent_.enter_recovery();
      if (stats_) {
        stats_->on_fallback_recovery();
        stats_->on_recovery_entered();
      }
      FTNOC_INVARIANT_HOOK(if (mon_) mon_->on_recovery_entered(
          now, id_, RecoveryTrigger::kFallback, id_, pr.probe_id,
          cfg_.vc_buffer_depth, cfg_.retransmission_depth));
      break;
    }
    FTNOC_TRACE(ref_trace_fmt(
        "[%llu] r%u PROBE id=%u via port %d target(%d,%d)",
        (unsigned long long)now, id_, pr.probe_id, (int)chain->first,
        (int)pr.in_port, (int)pr.in_vc));
    own_probe_route_.clear();
    own_probe_route_[pr.probe_id] = ProbeRoute{chain->first, now};
    queue_control(chain->first, pr);
    if (stats_) stats_->on_probe_sent();
    charge(power::EnergyEvent::kProbeHop);
  }

  if (!agent_.in_recovery()) return;

  std::uint32_t absorbed = 0;
  for (int g = 0; g < num_ports_ * num_vcs_; ++g) {
    auto& vc = inputs_[static_cast<std::size_t>(g)];
    if (vc.buf.empty() || vc.buf.front().arrived_cycle >= now) continue;
    const auto in_port = static_cast<PortId>(g / num_vcs_);
    const auto in_vc = static_cast<VcId>(g % num_vcs_);

    if (vc.state == VcState::kVaWait) {
      if (now - vc.last_advance < 2) continue;
      PortId o = kInvalidPort;
      for (PortId cand = 0; cand < num_ports_; ++cand) {
        if (cand == kLocalPort || !mask_has(vc.candidates, cand)) continue;
        if (port_allocatable(cand)) {
          o = cand;
          break;
        }
      }
      if (o == kInvalidPort) continue;
      const int lane = voq_lane(vc.buf.front());
      VcId v = kInvalidVc;
      for (VcId cv = 0; cv < num_vcs_; ++cv) {
        if (lane >= 0 && cv != lane) continue;
        auto& cand_out = ovc(o, cv);
        if (cand_out.rtx && cand_out.allocated && !cand_out.has_waiter &&
            cand_out.rtx->free_slots() > 0) {
          v = cv;
          break;
        }
      }
      if (v == kInvalidVc) continue;
      auto& out = ovc(o, v);
      out.has_waiter = true;
      out.waiter_gid = static_cast<std::uint16_t>(g);
      out.waiter_pid = vc.buf.front().packet_id;
      FTNOC_TRACE(ref_trace_fmt(
          "[%llu] r%u register waiter pkt%llu on %d_%d",
          (unsigned long long)now, id_, (unsigned long long)out.waiter_pid,
          (int)o, (int)v));
      vc.state = VcState::kVaReserved;
      vc.out_port = o;
      vc.out_vc = v;
      vc.state_since = now;
    }

    if (vc.state != VcState::kActive && vc.state != VcState::kVaReserved) {
      continue;
    }
    if (vc.out_port == kLocalPort) continue;
    auto& out = ovc(vc.out_port, vc.out_vc);
    if (!out.rtx) continue;
    const bool owns = out.allocated &&
                      out.owner_pid == vc.buf.front().packet_id;
    if (owns && can_consume_credit(vc.out_port, vc.out_vc)) continue;
    const int og = gid(vc.out_port, vc.out_vc);
    if (absorbed & (1u << og)) continue;
    if (out.rtx->free_slots() <= 0) continue;
    if (!owns && !(out.has_waiter && out.waiter_gid == g)) continue;
    if (!owns && out.rtx->free_slots() <= 1) continue;

    Flit f = vc.buf.front();
    vc.buf.pop_front();
    f.vc = vc.out_vc;
    if (owns) {
      out.rtx->absorb_as_owner(f, out.owner_pid);
    } else {
      out.rtx->absorb(f);
    }
    absorbed |= (1u << og);
    charge(power::EnergyEvent::kBufferRead);
    charge(power::EnergyEvent::kRtxBufferWrite);
    send_credit(in_port, in_vc);
    if (stats_) stats_->on_flit_absorbed();
    vc.last_advance = now;
    if (is_tail(f.type)) {
      release_input_after_tail(in_port, in_vc, now);
    }
  }

  bool pending = false;
  for (const auto& out : outputs_) {
    if (out.rtx && out.rtx->has_pending()) {
      pending = true;
      break;
    }
  }
  bool blocked_long = false;
  for (const auto& in : inputs_) {
    if ((in.state == VcState::kActive || in.state == VcState::kVaWait ||
         in.state == VcState::kVaReserved) &&
        !in.buf.empty() &&
        now - in.last_advance > cfg_.deadlock.exit_block_window) {
      blocked_long = true;
      break;
    }
  }
  if (!pending && !blocked_long) {
    agent_.exit_recovery();
    FTNOC_TRACE(ref_trace_fmt("[%llu] r%u exit recovery",
                              (unsigned long long)now, id_));
    if (stats_) stats_->on_recovery_exited();
  }
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

int ReferenceRouter::tx_buffer_occupancy() const {
  int n = 0;
  for (const auto& in : inputs_) n += static_cast<int>(in.buf.size());
  return n;
}

int ReferenceRouter::tx_buffer_slots() const {
  int ports = 0;
  for (PortId p = 0; p < num_ports_; ++p) {
    if (in_wires_[p] != nullptr) ++ports;
  }
  return ports * num_vcs_ * cfg_.vc_buffer_depth;
}

int ReferenceRouter::rtx_buffer_occupancy() const {
  int n = 0;
  for (const auto& out : outputs_) {
    if (out.rtx) n += out.rtx->occupancy();
  }
  return n;
}

int ReferenceRouter::rtx_buffer_slots() const {
  int n = 0;
  for (PortId p = 0; p < num_ports_; ++p) {
    if (out_wires_[p] == nullptr) continue;
    for (VcId v = 0; v < num_vcs_; ++v) {
      const auto& out = ovc(p, v);
      if (out.rtx) n += out.rtx->depth();
    }
  }
  return n;
}

int ReferenceRouter::input_buffer_size(PortId p, VcId v) const {
  return static_cast<int>(ivc(p, v).buf.size());
}

long long ReferenceRouter::live_flit_count() const {
  long long n = 0;
  for (const auto& in : inputs_) n += static_cast<long long>(in.buf.size());
  for (PortId p = 0; p < num_ports_; ++p) {
    if (!staged_[p]) continue;
    const Flit& s = staged_[p]->stored;
    const auto& out = ovc(p, staged_[p]->vc);
    const bool shadow = out.rtx && out.rtx->has_pending() &&
                        out.rtx->front_pending().packet_id == s.packet_id &&
                        out.rtx->front_pending().seq == s.seq;
    if (!shadow) ++n;
  }
  for (const auto& out : outputs_) {
    if (out.rtx) n += out.rtx->pending_count();
  }
  return n;
}

int ReferenceRouter::held_credits(PortId p, VcId v) const {
  const auto& out = ovc(p, v);
  int n = out.credits;
  if (out.rtx) {
    for (int i = 0; i < out.rtx->pending_count(); ++i) {
      if (out.rtx->pending_credit_held(i)) ++n;
    }
  }
  if (staged_[p] && staged_[p]->vc == v) {
    const Flit& s = staged_[p]->stored;
    const bool counted_in_pending =
        out.rtx && out.rtx->has_pending() &&
        out.rtx->front_pending().packet_id == s.packet_id &&
        out.rtx->front_pending().seq == s.seq &&
        out.rtx->pending_credit_held(0);
    if (!counted_in_pending) ++n;
  }
  return n;
}

int ReferenceRouter::credit_budget(PortId p, VcId v) const {
  if (!damq_ || p == kLocalPort) return cfg_.vc_buffer_depth;
  // Per-VC conserved quantity under damq: the reserve plus whatever this
  // VC currently borrows from the port's shared pool (DESIGN.md §4.11).
  return cfg_.damq_reserve_slots +
         shared_held_[static_cast<std::size_t>(gid(p, v))];
}

std::uint64_t ReferenceRouter::state_digest() const {
  digest::Fnv h;
  h.mix(static_cast<std::uint64_t>(id_));
  const int pv = num_ports_ * num_vcs_;
  for (int g = 0; g < pv; ++g) {
    const auto& in = inputs_[static_cast<std::size_t>(g)];
    h.mix(static_cast<std::uint64_t>(in.state));
    h.mix(in.candidates);
    h.mix(static_cast<std::uint64_t>(in.out_port));
    h.mix(static_cast<std::uint64_t>(in.out_vc));
    h.mix(static_cast<std::uint64_t>(in.last_advance));
    h.mix(static_cast<std::uint64_t>(in.stall_until));
    h.mix(static_cast<std::uint64_t>(in.state_since));
    h.mix(in.buf.size());
    for (const Flit& f : in.buf) h.mix_flit(f);

    const auto& out = outputs_[static_cast<std::size_t>(g)];
    h.mix(out.allocated);
    h.mix(out.owner_gid);
    h.mix(out.owner_pid);
    h.mix(out.tail_sent);
    h.mix(static_cast<std::uint64_t>(out.credits));
    if (damq_) {
      h.mix(static_cast<std::uint64_t>(
          shared_held_[static_cast<std::size_t>(g)]));
    }
    h.mix(out.has_waiter);
    h.mix(out.waiter_gid);
    h.mix(out.waiter_pid);
    h.mix(out.rtx.has_value());
    if (out.rtx) {
      h.mix(static_cast<std::uint64_t>(out.rtx->sent_count()));
      for (int i = 0; i < out.rtx->sent_count(); ++i) {
        h.mix_flit(out.rtx->sent_flit(i));
        h.mix(static_cast<std::uint64_t>(out.rtx->sent_time(i)));
      }
      h.mix(static_cast<std::uint64_t>(out.rtx->pending_count()));
      for (int i = 0; i < out.rtx->pending_count(); ++i) {
        h.mix_flit(out.rtx->pending_flit(i));
        h.mix(out.rtx->pending_credit_held(i));
      }
    }
    h.mix(static_cast<std::uint64_t>(drop_until_[static_cast<std::size_t>(g)]));
    h.mix(static_cast<std::uint64_t>(
        va_rotation_[static_cast<std::size_t>(g)]));
    h.mix(static_cast<std::uint64_t>(va_arbs_.at(g).last_grant()));
  }
  for (PortId p = 0; p < num_ports_; ++p) {
    if (damq_) h.mix(static_cast<std::uint64_t>(shared_credits_[p]));
    h.mix(staged_[p].has_value());
    if (staged_[p]) {
      h.mix_flit(staged_[p]->wire);
      h.mix_flit(staged_[p]->stored);
      h.mix(static_cast<std::uint64_t>(staged_[p]->vc));
    }
    h.mix(link_dead_[p]);
    h.mix((draining_ & port_bit(p)) != 0);
    h.mix(static_cast<std::uint64_t>(uncorrectable_streak_[p]));
    h.mix(static_cast<std::uint64_t>(sa_in_arbs_.at(p).last_grant()));
    h.mix(static_cast<std::uint64_t>(sa_out_arbs_.at(p).last_grant()));
    h.mix(static_cast<std::uint64_t>(replay_arbs_.at(p).last_grant()));
  }
  h.mix(pending_nacks_.size());
  for (const auto& nk : pending_nacks_) {
    h.mix(static_cast<std::uint64_t>(nk.port));
    h.mix(static_cast<std::uint64_t>(nk.vc));
    h.mix(static_cast<std::uint64_t>(nk.send_at));
  }
  h.mix(outbox_.size());
  for (const auto& item : outbox_) {
    h.mix(static_cast<std::uint64_t>(item.port));
    h.mix(item.is_probe);
    if (item.is_probe) {
      h.mix_probe(item.probe);
    } else {
      h.mix_activation(item.activation);
    }
  }
  h.mix(own_probe_route_.size());
  std::uint64_t route_sum = 0;
  for (const auto& [pid, r] : own_probe_route_) {
    digest::Fnv e;
    e.mix(pid);
    e.mix(static_cast<std::uint64_t>(r.port));
    e.mix(static_cast<std::uint64_t>(r.sent_at));
    route_sum += e.value();
  }
  h.mix(route_sum);
  h.mix(agent_.in_recovery());
  h.mix(agent_.waiting_for_probe());
  h.mix(agent_.outstanding_probe().value_or(0));
  h.mix(static_cast<std::uint64_t>(agent_.failed_probes()));
  h.mix(progress_this_cycle_);
  return h.value();
}

std::string ReferenceRouter::debug_dump(Cycle now) const {
  std::string s = "reference router " + std::to_string(id_) +
                  (agent_.in_recovery() ? " [RECOVERY]" : "") + "\n";
  static const char* st[] = {"ROUTE", "VAWAIT", "ACTIVE", "RESERV", "DRAIN"};
  for (PortId p = 0; p < num_ports_; ++p) {
    for (VcId v = 0; v < num_vcs_; ++v) {
      const auto& in = ivc(p, v);
      if (in.buf.empty() && in.state == VcState::kRouting) continue;
      s += "  in " + std::string(to_string(static_cast<Direction>(p))) + "_" +
           std::to_string(v) + " " + st[static_cast<int>(in.state)] +
           " buf=" + std::to_string(in.buf.size());
      if (!in.buf.empty()) {
        s += " front=pkt" + std::to_string(in.buf.front().packet_id) + "." +
             std::to_string(in.buf.front().seq);
      }
      s += " out=" +
           (in.out_port == kInvalidPort
                ? std::string("-")
                : std::string(to_string(static_cast<Direction>(in.out_port))) +
                      "_" + std::to_string(in.out_vc));
      s += " idle=" + std::to_string(now - in.last_advance) + "\n";
    }
  }
  for (PortId p = 0; p < num_ports_; ++p) {
    for (VcId v = 0; v < num_vcs_; ++v) {
      const auto& out = ovc(p, v);
      const bool quiet = !out.allocated && !out.has_waiter &&
                         (!out.rtx || out.rtx->occupancy() == 0);
      if (quiet) continue;
      s += "  out " + std::string(to_string(static_cast<Direction>(p))) +
           "_" + std::to_string(v);
      if (out.allocated) {
        s += " owner=pkt" + std::to_string(out.owner_pid) +
             (out.tail_sent ? "(tail_sent)" : "");
      }
      if (out.has_waiter) s += " waiter=pkt" + std::to_string(out.waiter_pid);
      s += " credits=" + std::to_string(out.credits);
      if (out.rtx) {
        s += " rtx(sent=" + std::to_string(out.rtx->sent_count()) +
             ",pend=" + std::to_string(out.rtx->pending_count()) + ")";
      }
      s += "\n";
    }
  }
  return s;
}

}  // namespace ftnoc

#pragma once
// The wire-level router contract shared by the optimized pipeline kernel
// (Router) and the allocation-happy reference model (ReferenceRouter).
//
// Both implementations speak exactly the same signals — Wire bundles in,
// Wire bundles out, an eject callback toward the local PE — so the Network
// can instantiate either behind this interface and the differential fuzz
// harness can step two networks in lock-step and compare state digests.
// Everything behavioural lives behind virtual step(); the introspection
// surface exists for stats sampling, the invariant monitor's structural
// walks and the per-cycle digest comparison.

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"
#include "core/deadlock.hpp"
#include "core/flit.hpp"
#include "noc/channel.hpp"

namespace ftnoc {

class InvariantMonitor;

/// One returned buffer slot for a VC.
struct Credit {
  VcId vc = kInvalidVc;
};

/// Link-level negative acknowledgement for a VC (HBH retransmission).
struct NackMsg {
  VcId vc = kInvalidVc;
};

/// All wires of one *directed* link A->B. Forward signals (flit, probe,
/// activation) travel A->B; credit and NACK travel B->A on the same bundle.
struct Wire {
  /// Which channels have a readable value this cycle (kCur* bits), computed
  /// at tick time. The per-cycle consumer polls touch this one byte instead
  /// of five channels spread over several cache lines. Consuming a value
  /// does not clear its bit: each channel has exactly one consumer that
  /// polls at most once per cycle, and the next tick recomputes the mask.
  std::uint8_t cur_mask = 0;
  /// Optional consumer-side mirrors of cur_mask, written at tick time.
  /// A router registers a slot inside its own contiguous signal array for
  /// each bundle it consumes (fwd side for its in-wires, back side for its
  /// out-wires), so its per-cycle wire polls stay on one cache line
  /// instead of chasing ten scattered Wire objects.
  std::uint8_t* fwd_sig = nullptr;
  std::uint8_t* back_sig = nullptr;
  static constexpr std::uint8_t kCurFlit = 1u << 0;
  static constexpr std::uint8_t kCurCredit = 1u << 1;
  static constexpr std::uint8_t kCurNack = 1u << 2;
  static constexpr std::uint8_t kCurProbe = 1u << 3;
  static constexpr std::uint8_t kCurActivation = 1u << 4;
  /// Forward-travelling signals (consumed by the downstream router).
  static constexpr std::uint8_t kCurFwd = kCurFlit | kCurProbe | kCurActivation;
  /// Backward-travelling signals (consumed by the upstream producer).
  static constexpr std::uint8_t kCurBack = kCurCredit | kCurNack;

  Channel<Flit> flit;
  MultiChannel<Credit> credit;
  Channel<NackMsg> nack;
  Channel<ProbeSignal> probe;
  Channel<ActivationSignal> activation;
  void tick() {
    flit.tick();
    credit.tick();
    nack.tick();
    probe.tick();
    activation.tick();
    cur_mask = static_cast<std::uint8_t>(
        (flit.peek().has_value() ? kCurFlit : 0) |
        (!credit.empty() ? kCurCredit : 0) |
        (nack.peek().has_value() ? kCurNack : 0) |
        (probe.peek().has_value() ? kCurProbe : 0) |
        (activation.peek().has_value() ? kCurActivation : 0));
    if (fwd_sig != nullptr) *fwd_sig = cur_mask;
    if (back_sig != nullptr) *back_sig = cur_mask;
  }
  /// Ticks all channels and reports whether anything is still in flight
  /// (a value now readable at the consumer). A wire returning false has
  /// fully settled and needs no further ticks until the next write — the
  /// event-driven Network keeps only live wires on its tick list.
  bool tick_live() {
    tick();
    return !idle();
  }
  /// No value is readable and none is latched for the next edge.
  bool idle() const {
    return flit.idle() && credit.idle() && nack.idle() && probe.idle() &&
           activation.idle();
  }
};

/// Callback delivering an ejected flit to the local processing element.
using EjectFn = std::function<void(const Flit&, Cycle)>;

/// What the event-driven Network needs to know after a router step: which
/// output ports the router drove forward signals on (flit/probe/
/// activation — wakes the downstream consumer), which input-side bundles
/// it drove backward signals on (credit/NACK — wakes the upstream
/// producer; bit kLocalPort wakes the PE), whether the router wants an
/// unconditional self-tick next cycle, and an optional exact timer for
/// the one delayed action that needs no per-cycle work in between
/// (own-probe GC). `timer == 0` means no timer.
struct WakeInfo {
  std::uint8_t wrote_fwd = 0;
  std::uint8_t wrote_back = 0;
  bool retick = false;
  Cycle timer = 0;
};

class RouterIface {
 public:
  virtual ~RouterIface() = default;

  RouterIface() = default;
  RouterIface(const RouterIface&) = delete;
  RouterIface& operator=(const RouterIface&) = delete;

  /// Wires port `p`: `in` carries the neighbour's (or PE's) signals toward
  /// this router, `out` carries this router's signals away. Either may be
  /// nullptr for a nonexistent link (mesh edge).
  virtual void connect(PortId p, Wire* in, Wire* out) = 0;
  virtual void set_eject_fn(EjectFn fn) = 0;
  /// Marks a link port as hard-failed (pre-programmed into the VA's
  /// link-state table, §4.2). The VA never allocates toward a dead port.
  virtual void fail_link(PortId p) = 0;
  /// Advances the router one clock cycle.
  virtual void step(Cycle now) = 0;

  virtual NodeId id() const = 0;

  // --- Introspection (stats sampling, tests, fuzz) ------------------------
  virtual int tx_buffer_occupancy() const = 0;
  virtual int tx_buffer_slots() const = 0;
  virtual int rtx_buffer_occupancy() const = 0;
  virtual int rtx_buffer_slots() const = 0;
  virtual bool in_recovery() const = 0;
  /// Occupancy of one input VC buffer (tests, credit-conservation walk).
  virtual int input_buffer_size(PortId p, VcId v) const = 0;
  /// Human-readable state snapshot (debugging and trace examples).
  virtual std::string debug_dump(Cycle now) const = 0;

  /// Order-insensitive-free (FNV-1a, fixed traversal order) hash of every
  /// piece of architectural state that determines future behaviour: VC
  /// states, buffered flits, credits, retransmission barrels, staged
  /// registers, arbiter rotations, deadlock-agent state. Derived caches
  /// (work masks, occupancy counters) are deliberately excluded — the fuzz
  /// harness compares an optimized router against the reference model,
  /// which has none.
  virtual std::uint64_t state_digest() const = 0;

  // --- Invariant monitor (optional; no-ops on the reference model) --------
  /// Attaches the monitor whose event hooks this router will feed.
  virtual void set_monitor(InvariantMonitor*) {}
  /// Runs the router-local structural checks (work-mask agreement,
  /// occupancy counters, staged register) against `mon`.
  virtual void check_local_invariants(Cycle) {}
  /// Live flit instances held inside this router for the network-wide
  /// conservation ledger: input buffers + staged ST registers (minus
  /// replay shadows) + retransmission-barrel pending regions.
  virtual long long live_flit_count() const { return 0; }
  /// Sender-side credit instances for directed link (`p`, `v`): the free
  /// credit counter plus credits bound to staged or rolled-back flits.
  virtual int held_credits(PortId, VcId) const { return 0; }
  /// The sender-side credit budget the conservation walk checks (`p`, `v`)
  /// against: vc_buffer_depth normally, and under the DAMQ policy the VC's
  /// reserve plus its currently borrowed shared slots (DESIGN.md §4.11).
  /// -1 means "use the nominal depth" (the reference default).
  virtual int credit_budget(PortId, VcId) const { return -1; }

  // --- Permanent-fault escalation (DESIGN.md §4.9) ------------------------
  /// True once port `p` has been marked hard-failed (static config or a
  /// completed runtime escalation). The invariant monitor's dead-link walk
  /// keys off this rather than the topology so a draining link is not a
  /// false positive.
  virtual bool link_failed(PortId) const { return false; }
  /// Ports whose uncorrectable-error streak crossed the escalation
  /// threshold since the last poll, as a bitmask; clears the pending set.
  virtual std::uint8_t take_escalation_requests() { return 0; }
  /// Test seam modelling a BIST/wearout monitor flagging port `p` as
  /// failing: queues it for the next escalation poll exactly as a crossed
  /// uncorrectable-error streak would. Lets tests raise several same-cycle
  /// requests and pin the network's sequential partition-veto semantics.
  virtual void request_escalation(PortId) {}
  /// Begins draining link port `p`: no new allocations toward it; once the
  /// port falls idle the router marks it hard-failed. Re-homes packets
  /// still waiting on it (they re-route, counted as packets_rerouted).
  virtual void begin_link_drain(PortId, Cycle) {}

  // --- Event-driven scheduling (DESIGN.md §4.10) --------------------------
  /// Consumes the wake bookkeeping of the step() that just ran. The
  /// default (reference model) reports nothing — reference networks always
  /// run the full per-cycle scan, so they never consult this.
  virtual WakeInfo take_wake_info() { return {}; }
};

}  // namespace ftnoc

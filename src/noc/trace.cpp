#include "noc/trace.hpp"

#include <fstream>
#include <sstream>

#include "noc/traffic.hpp"

namespace ftnoc {

std::vector<TraceRecord> parse_trace(std::istream& in, int num_nodes,
                                     std::string* error) {
  std::vector<TraceRecord> records;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    if (error) *error = "line " + std::to_string(lineno) + ": " + what;
    return std::vector<TraceRecord>{};
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TraceRecord r;
    long long cycle = 0, src = 0, dest = 0, length = 0;
    if (!(ls >> cycle)) continue;  // Blank / comment-only line.
    if (!(ls >> src >> dest >> length)) return fail("expected 4 fields");
    std::string extra;
    if (ls >> extra) return fail("trailing junk: " + extra);
    if (cycle < 0 || src < 0 || dest < 0 || length < 1) {
      return fail("field out of range");
    }
    if (num_nodes > 0 && (src >= num_nodes || dest >= num_nodes)) {
      return fail("node id out of range");
    }
    if (src == dest) return fail("src == dest");
    if (!records.empty() &&
        static_cast<Cycle>(cycle) < records.back().cycle) {
      return fail("non-monotonic timestamp: cycle " + std::to_string(cycle) +
                  " follows cycle " + std::to_string(records.back().cycle) +
                  " (records must be sorted by cycle)");
    }
    r.cycle = static_cast<Cycle>(cycle);
    r.src = static_cast<NodeId>(src);
    r.dest = static_cast<NodeId>(dest);
    r.length = static_cast<int>(length);
    records.push_back(r);
  }
  if (error) error->clear();
  return records;
}

std::vector<TraceRecord> load_trace(const std::string& path, int num_nodes,
                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return {};
  }
  return parse_trace(in, num_nodes, error);
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "# ftnoc packet trace: cycle src dest length\n";
  for (const auto& r : records) {
    out << r.cycle << ' ' << r.src << ' ' << r.dest << ' ' << r.length
        << '\n';
  }
}

std::vector<TraceRecord> synthesize_trace(const Topology& topo,
                                          TrafficPattern pattern,
                                          double injection_rate,
                                          int packet_length, Cycle cycles,
                                          Rng rng) {
  std::vector<TraceRecord> records;
  const double p = injection_rate / packet_length;
  // One independent stream per node, matching TrafficSource's structure.
  std::vector<Rng> node_rngs;
  node_rngs.reserve(static_cast<std::size_t>(topo.num_nodes()));
  for (int n = 0; n < topo.num_nodes(); ++n) node_rngs.push_back(rng.fork());
  for (Cycle c = 0; c < cycles; ++c) {
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      auto& r = node_rngs[n];
      if (!r.bernoulli(p)) continue;
      TraceRecord rec;
      rec.cycle = c;
      rec.src = n;
      rec.dest = pick_destination(topo, pattern, n, r);
      rec.length = packet_length;
      records.push_back(rec);
    }
  }
  return records;
}

}  // namespace ftnoc

#include "noc/trace.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "noc/traffic.hpp"

namespace ftnoc {

namespace {
// Packet length cap: Flit::seq is 8 bits, so a wormhole longer than 256
// flits would alias sequence numbers and corrupt reassembly accounting.
constexpr unsigned long long kMaxTraceLength = 256;
}  // namespace

std::vector<TraceRecord> parse_trace(std::istream& in, int num_nodes,
                                     std::string* error) {
  std::vector<TraceRecord> records;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    if (error) *error = "line " + std::to_string(lineno) + ": " + what;
    return std::vector<TraceRecord>{};
  };
  // Tokenizing by hand (instead of `istream >> long long`) closes two
  // historic holes: an inject_cycle past 2^63 made extraction fail and the
  // whole line was silently skipped as "blank", and a length of exactly
  // 2^32 truncated to 0 through the int cast after passing the `< 1`
  // check. Numeric fields are now parsed as exact decimal u64s with
  // explicit range checks and per-field error messages.
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok[4];
    if (!(ls >> tok[0])) continue;  // Blank / comment-only line.
    if (!(ls >> tok[1] >> tok[2] >> tok[3])) return fail("expected 4 fields");
    std::string extra;
    if (ls >> extra) return fail("trailing junk: " + extra);
    unsigned long long v[4];
    for (int i = 0; i < 4; ++i) {
      if (tok[i].find_first_not_of("0123456789") != std::string::npos) {
        return fail("field out of range");
      }
      errno = 0;
      char* end = nullptr;
      v[i] = std::strtoull(tok[i].c_str(), &end, 10);
      if (end != tok[i].c_str() + tok[i].size() ||
          (errno == ERANGE && i != 0)) {
        return fail("field out of range");
      }
      if (i == 0 && errno == ERANGE) {
        return fail("inject_cycle overflows 64 bits: " + tok[0]);
      }
    }
    if (v[3] < 1 || v[3] > kMaxTraceLength) {
      return fail("packet length must be in [1, " +
                  std::to_string(kMaxTraceLength) + "], got " + tok[3]);
    }
    if (num_nodes > 0 && (v[1] >= static_cast<unsigned long long>(num_nodes) ||
                          v[2] >= static_cast<unsigned long long>(num_nodes))) {
      return fail("node id out of range");
    }
    if (v[1] > 0xFFFF || v[2] > 0xFFFF) return fail("node id out of range");
    if (v[1] == v[2]) return fail("src == dest");
    if (!records.empty() && v[0] < records.back().cycle) {
      return fail("non-monotonic timestamp: cycle " + tok[0] +
                  " follows cycle " + std::to_string(records.back().cycle) +
                  " (records must be sorted by cycle)");
    }
    TraceRecord r;
    r.cycle = static_cast<Cycle>(v[0]);
    r.src = static_cast<NodeId>(v[1]);
    r.dest = static_cast<NodeId>(v[2]);
    r.length = static_cast<int>(v[3]);
    records.push_back(r);
  }
  if (error) error->clear();
  return records;
}

std::vector<TraceRecord> load_trace(const std::string& path, int num_nodes,
                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return {};
  }
  return parse_trace(in, num_nodes, error);
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "# ftnoc packet trace: cycle src dest length\n";
  for (const auto& r : records) {
    out << r.cycle << ' ' << r.src << ' ' << r.dest << ' ' << r.length
        << '\n';
  }
}

std::vector<TraceRecord> synthesize_trace(const Topology& topo,
                                          TrafficPattern pattern,
                                          double injection_rate,
                                          int packet_length, Cycle cycles,
                                          Rng rng) {
  std::vector<TraceRecord> records;
  const double p = injection_rate / packet_length;
  // One independent stream per node, matching TrafficSource's structure.
  std::vector<Rng> node_rngs;
  node_rngs.reserve(static_cast<std::size_t>(topo.num_nodes()));
  for (int n = 0; n < topo.num_nodes(); ++n) node_rngs.push_back(rng.fork());
  for (Cycle c = 0; c < cycles; ++c) {
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      auto& r = node_rngs[n];
      if (!r.bernoulli(p)) continue;
      TraceRecord rec;
      rec.cycle = c;
      rec.src = n;
      rec.dest = pick_destination(topo, pattern, n, r);
      rec.length = packet_length;
      // Burn the per-flit payload draws the live source makes in
      // build_packet. Without this, each node's stream drifts one
      // packet_length worth of draws per generated packet and every
      // later destination pick diverges from the live run — the trace
      // is then *not* the schedule the Bernoulli source would produce.
      for (int i = 0; i < packet_length; ++i) r.next_u64();
      records.push_back(rec);
    }
  }
  return records;
}

}  // namespace ftnoc

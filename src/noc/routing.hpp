#pragma once
// Routing functions. The paper evaluates a deterministic algorithm ("DT",
// dimension-ordered XY — deadlock-free on a mesh) and an adaptive one
// ("AD", minimal fully-adaptive — higher buffer utilization, Figure 8/9,
// and deadlock-prone, which is what the recovery scheme of §3.2 is for).
//
// A routing function returns a *set* of permitted output ports as a bitmask
// (bit i = port i); the paper's AC unit consumes exactly this valid-set
// representation (Figure 12: "Routing Function returns all VCs of a single
// PC (R => P)").

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"

namespace ftnoc {

using PortMask = std::uint8_t;

inline constexpr PortMask port_bit(Direction d) {
  return static_cast<PortMask>(1u << static_cast<int>(d));
}
inline constexpr PortMask port_bit(PortId p) {
  return static_cast<PortMask>(1u << p);
}
inline constexpr bool mask_has(PortMask m, PortId p) {
  return (m & port_bit(p)) != 0;
}

/// Number of ports set in the mask.
int mask_size(PortMask m);

/// Lowest-numbered port in the mask; kInvalidPort if empty.
PortId first_port(PortMask m);

/// Computes the permitted output ports for a packet at `current` headed to
/// `dest`. Returns the Local port alone when current == dest. On a
/// fault-free topology the result is always non-empty (the closed-form XY /
/// minimal-adaptive sets). When the topology carries permanent faults,
/// every algorithm switches to fault-aware mode: only live ports whose
/// neighbour is strictly closer to `dest` in live-link BFS distance are
/// offered (minimal-adaptive around the faults, guaranteed delivery for
/// connected pairs), and the mask is empty iff `dest` is unreachable — the
/// caller must then drop the packet.
PortMask route(const Topology& topo, RoutingAlgorithm algo, NodeId current,
               NodeId dest);

/// The closed-form (fault-blind) port set: what route() would return if the
/// topology carried no permanent faults. Routers compare this against the
/// fault-aware mask to detect forced non-minimal detours, and the fuzzer's
/// planted "route_into_dead_link" mutation substitutes it for route().
PortMask route_fault_free(const Topology& topo, RoutingAlgorithm algo,
                          NodeId current, NodeId dest);

/// Non-minimal escape tier (`adaptive_faults`, DESIGN.md §4.12): the live
/// ports whose neighbour can still reach `dest` at all (finite live-link
/// BFS distance), restricted to the minimum such neighbour distance. Unlike
/// route(), the set may contain sideways or backward hops (neighbour
/// distance == or == +1 of the local distance) — the misrouting step the
/// paper's §3.2.2 "redirect blocked flits to another direction" calls for.
/// Routers consult it only when every minimal candidate is locally
/// unusable; the next hop re-routes by strict descent, so each escape hop
/// is an isolated, bounded detour rather than a routing mode (the
/// misroute-bound invariant enforces that packets do not livelock on it).
/// Empty iff no live neighbour reaches `dest` — the caller drops.
PortMask fault_escape_ports(const Topology& topo, NodeId current,
                            NodeId dest);

/// True if a flit that arrived at `current` via input port `in_port`
/// (i.e. was sent by the neighbour in direction opposite(in_port)) is
/// consistent with dimension-ordered XY routing from that neighbour. The
/// receiving router uses this to detect RT-logic misdirections under
/// deterministic routing (§4.2).
bool xy_step_is_legal(const Topology& topo, NodeId current, PortId in_port,
                      NodeId dest);

/// Average minimal hop count between distinct node pairs (analysis helper
/// used by tests and the traffic-pattern benches).
double average_min_hops(const Topology& topo);

}  // namespace ftnoc

#pragma once
// Synthetic traffic generation (paper §2.2): uniform Bernoulli injection at
// a configured flit rate, with three destination distributions — normal
// random (NR), bit-complement (BC) and tornado (TN).

#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/flit.hpp"
#include "noc/topology.hpp"

namespace ftnoc {

/// Picks the destination for a packet from `src` under pattern `p`.
/// Self-addressed results (possible for BC/TN at fixed points) are remapped
/// to the next node so every packet actually enters the network.
NodeId pick_destination(const Topology& topo, TrafficPattern p, NodeId src,
                        Rng& rng);

/// Per-node packet source. Each cycle it flips a Bernoulli coin with
/// p = injection_rate / packet_length so the long-run offered load equals
/// `injection_rate` flits/node/cycle.
class TrafficSource {
 public:
  TrafficSource(const Topology& topo, NodeId self, TrafficPattern pattern,
                double injection_rate, int packet_length, Rng rng);

  /// Returns the flits of a newly generated packet, or nullopt this cycle.
  /// `next_packet_id` is advanced on generation.
  std::optional<std::vector<Flit>> maybe_generate(Cycle now,
                                                  PacketId& next_packet_id);

  /// Deterministically builds one packet (used by tests and by the E2E
  /// retransmission path, which re-encodes a clean copy).
  static std::vector<Flit> build_packet(PacketId pid, NodeId src, NodeId dest,
                                        int packet_length, Cycle birth,
                                        Rng* payload_rng);

 private:
  const Topology& topo_;
  NodeId self_;
  TrafficPattern pattern_;
  double generate_prob_;
  int packet_length_;
  Rng rng_;
};

}  // namespace ftnoc

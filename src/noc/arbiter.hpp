#pragma once
// Round-robin arbiter — the building block of the separable VA and SA
// allocators. Grants rotate so the last winner becomes the lowest priority,
// giving strong local fairness (no starvation among persistent requesters).

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ftnoc {

class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int num_requesters);

  /// Picks one set bit of `requests` (bit i = requester i), favouring the
  /// requester after the previous winner. Returns -1 if no requests.
  /// Updates the rotation state on a grant.
  int arbitrate(std::uint32_t requests) {
    const int g = pick(requests);
    if (g >= 0) last_grant_ = g;
    return g;
  }

  /// As `arbitrate` but leaves rotation state untouched (used for
  /// "what-if" queries by the deadlock probing logic).
  int peek(std::uint32_t requests) const { return pick(requests); }

  int size() const { return n_; }

  /// Rotation state (state digests): index of the previous winner.
  int last_grant() const { return last_grant_; }

 private:
  /// Bit-scan equivalent of the classic wrap scan from last_grant_+1:
  /// grant the lowest requester at or above last_grant_+1, else wrap to
  /// the lowest requester overall. Bits >= n_ are ignored, exactly as the
  /// index loop ignored them.
  int pick(std::uint32_t requests) const {
    requests &= mask_;
    if (requests == 0) return -1;
    const int s = last_grant_ + 1;
    const std::uint32_t hi =
        s >= 32 ? 0u : requests & (~0u << s);
    return std::countr_zero(hi != 0 ? hi : requests);
  }

  int n_;
  std::uint32_t mask_;
  int last_grant_ = -1;
};

/// A bank of independent round-robin arbiters (one per output resource).
class ArbiterBank {
 public:
  ArbiterBank(int num_arbiters, int num_requesters);

  RoundRobinArbiter& at(int i) { return arbiters_.at(i); }
  const RoundRobinArbiter& at(int i) const { return arbiters_.at(i); }
  /// Unchecked access for the per-cycle hot loops.
  RoundRobinArbiter& operator[](int i) {
    return arbiters_[static_cast<std::size_t>(i)];
  }
  const RoundRobinArbiter& operator[](int i) const {
    return arbiters_[static_cast<std::size_t>(i)];
  }
  int size() const { return static_cast<int>(arbiters_.size()); }

 private:
  std::vector<RoundRobinArbiter> arbiters_;
};

}  // namespace ftnoc

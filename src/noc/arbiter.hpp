#pragma once
// Round-robin arbiter — the building block of the separable VA and SA
// allocators. Grants rotate so the last winner becomes the lowest priority,
// giving strong local fairness (no starvation among persistent requesters).

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ftnoc {

class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int num_requesters);

  /// Picks one set bit of `requests` (bit i = requester i), favouring the
  /// requester after the previous winner. Returns -1 if no requests.
  /// Updates the rotation state on a grant.
  int arbitrate(std::uint32_t requests);

  /// As `arbitrate` but leaves rotation state untouched (used for
  /// "what-if" queries by the deadlock probing logic).
  int peek(std::uint32_t requests) const;

  int size() const { return n_; }

  /// Rotation state (state digests): index of the previous winner.
  int last_grant() const { return last_grant_; }

 private:
  int pick(std::uint32_t requests) const;

  int n_;
  int last_grant_ = -1;
};

/// A bank of independent round-robin arbiters (one per output resource).
class ArbiterBank {
 public:
  ArbiterBank(int num_arbiters, int num_requesters);

  RoundRobinArbiter& at(int i) { return arbiters_.at(i); }
  const RoundRobinArbiter& at(int i) const { return arbiters_.at(i); }
  int size() const { return static_cast<int>(arbiters_.size()); }

 private:
  std::vector<RoundRobinArbiter> arbiters_;
};

}  // namespace ftnoc

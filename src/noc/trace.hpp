#pragma once
// Trace-driven traffic: record, store and replay packet injection traces.
//
// The paper evaluates on synthetic patterns only (§2.2); trace replay is
// the standard companion facility in NoC simulators (application traces,
// regression traces, cross-simulator comparisons). The format is plain
// text, one packet per line:
//
//     # comment
//     <inject_cycle> <src> <dest> <length>
//
// sorted by inject_cycle (the loader enforces it). `Network::load_trace`
// replays a trace on top of (or instead of) the synthetic sources.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"

namespace ftnoc {

struct TraceRecord {
  Cycle cycle = 0;     ///< Earliest cycle the packet may start injecting.
  NodeId src = 0;
  NodeId dest = 0;
  int length = 4;      ///< Flits.

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Parses a trace from a stream. Returns an error message on malformed
/// input (bad fields, unsorted cycles, src == dest, negative length).
/// `num_nodes` bounds the node ids; pass 0 to skip the range check.
std::vector<TraceRecord> parse_trace(std::istream& in, int num_nodes,
                                     std::string* error);

/// Loads a trace file; aborts the error into `error` like parse_trace.
std::vector<TraceRecord> load_trace(const std::string& path, int num_nodes,
                                    std::string* error);

/// Writes records in the canonical text format.
void write_trace(std::ostream& out, const std::vector<TraceRecord>& records);

/// Offline generator: synthesizes a trace equivalent to `cycles` cycles of
/// the Bernoulli source at `injection_rate` flits/node/cycle under the
/// given destination pattern — useful for building reproducible regression
/// traces without running the simulator.
std::vector<TraceRecord> synthesize_trace(const Topology& topo,
                                          TrafficPattern pattern,
                                          double injection_rate,
                                          int packet_length, Cycle cycles,
                                          Rng rng);

}  // namespace ftnoc

#include "rtl/ac_circuit.hpp"

#include <cmath>
#include <string>

namespace ftnoc::rtl {
namespace {

int bits_for(int values) {
  int b = 1;
  while ((1 << b) < values) ++b;
  return b;
}

void pack_value(std::vector<bool>& inputs, std::size_t offset, unsigned value,
                int bits) {
  for (int i = 0; i < bits; ++i) {
    inputs[offset + static_cast<std::size_t>(i)] = (value >> i) & 1u;
  }
}

}  // namespace

SignalId AcCircuit::equals_const(const std::vector<SignalId>& bus,
                                 unsigned value) {
  std::vector<SignalId> bits;
  bits.reserve(bus.size());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const bool want = (value >> i) & 1u;
    bits.push_back(want ? bus[i] : netlist_.add_not(bus[i]));
  }
  return netlist_.reduce_and(bits);
}

AcCircuit::AcCircuit(int num_ports, int num_vcs)
    : num_ports_(num_ports),
      num_vcs_(num_vcs),
      vc_bits_(bits_for(num_vcs)) {
  FTNOC_CHECK(num_ports >= 1 && num_ports <= (1 << kPortBits));
  FTNOC_CHECK(num_vcs >= 1);

  const int pv = num_ports_ * num_vcs_;

  // --- Input wires (declaration order == encode() layout) ----------------
  for (int i = 0; i < pv; ++i) {
    VaRow row;
    for (int p = 0; p < num_ports_; ++p) {
      row.rt_mask.push_back(
          netlist_.add_input("rt" + std::to_string(i) + "_p" +
                             std::to_string(p)));
    }
    row.valid = netlist_.add_input("va" + std::to_string(i) + "_valid");
    for (int b = 0; b < kPortBits; ++b) {
      row.out_port.push_back(
          netlist_.add_input("va" + std::to_string(i) + "_port" +
                             std::to_string(b)));
    }
    for (int b = 0; b < vc_bits_; ++b) {
      row.out_vc.push_back(netlist_.add_input(
          "va" + std::to_string(i) + "_vc" + std::to_string(b)));
    }
    va_rows_.push_back(std::move(row));
  }
  for (int p = 0; p < num_ports_; ++p) {
    SaRow row;
    row.valid = netlist_.add_input("sa" + std::to_string(p) + "_valid");
    for (int b = 0; b < kPortBits; ++b) {
      row.out_port.push_back(netlist_.add_input(
          "sa" + std::to_string(p) + "_port" + std::to_string(b)));
    }
    sa_rows_.push_back(std::move(row));
  }

  // --- Check (1): VA out-port must be in the RT valid set ----------------
  std::vector<SignalId> mismatch_terms;
  // --- Check (2a): out-of-range ids ---------------------------------------
  std::vector<SignalId> invalid_terms;
  // Precompute per-row port one-hots (shared by checks 1 and 2a).
  std::vector<std::vector<SignalId>> port_onehot(va_rows_.size());
  for (std::size_t i = 0; i < va_rows_.size(); ++i) {
    const VaRow& row = va_rows_[i];
    std::vector<SignalId> in_mask_terms;
    for (int p = 0; p < num_ports_; ++p) {
      const SignalId is_p =
          equals_const(row.out_port, static_cast<unsigned>(p));
      port_onehot[i].push_back(is_p);
      in_mask_terms.push_back(netlist_.add_and(is_p, row.rt_mask[p]));
    }
    const SignalId in_rt_set = netlist_.reduce_or(in_mask_terms);
    mismatch_terms.push_back(
        netlist_.add_and(row.valid, netlist_.add_not(in_rt_set)));

    const SignalId port_known = netlist_.reduce_or(port_onehot[i]);
    SignalId bad_id = netlist_.add_not(port_known);
    if ((1 << vc_bits_) > num_vcs_) {
      // Invalid VC encodings exist only when V is not a power of two —
      // exactly the paper's 3-VC example where id "11" is illegal.
      std::vector<SignalId> vc_known_terms;
      for (int v = 0; v < num_vcs_; ++v) {
        vc_known_terms.push_back(
            equals_const(row.out_vc, static_cast<unsigned>(v)));
      }
      const SignalId vc_known = netlist_.reduce_or(vc_known_terms);
      bad_id = netlist_.add_or(bad_id, netlist_.add_not(vc_known));
    }
    invalid_terms.push_back(netlist_.add_and(row.valid, bad_id));
  }

  // --- Check (2b): the same output VC paired with two input VCs ----------
  std::vector<SignalId> dup_terms;
  for (std::size_t i = 0; i < va_rows_.size(); ++i) {
    for (std::size_t j = i + 1; j < va_rows_.size(); ++j) {
      std::vector<SignalId> bus_i = va_rows_[i].out_port;
      bus_i.insert(bus_i.end(), va_rows_[i].out_vc.begin(),
                   va_rows_[i].out_vc.end());
      std::vector<SignalId> bus_j = va_rows_[j].out_port;
      bus_j.insert(bus_j.end(), va_rows_[j].out_vc.begin(),
                   va_rows_[j].out_vc.end());
      const SignalId same = netlist_.bus_equal(bus_i, bus_j);
      const SignalId both_valid =
          netlist_.add_and(va_rows_[i].valid, va_rows_[j].valid);
      dup_terms.push_back(netlist_.add_and(both_valid, same));
    }
  }

  // --- Check (3): SA duplicate outputs / invalid port ids ----------------
  std::vector<SignalId> sa_terms;
  for (std::size_t i = 0; i < sa_rows_.size(); ++i) {
    std::vector<SignalId> onehot;
    for (int p = 0; p < num_ports_; ++p) {
      onehot.push_back(
          equals_const(sa_rows_[i].out_port, static_cast<unsigned>(p)));
    }
    sa_terms.push_back(netlist_.add_and(
        sa_rows_[i].valid, netlist_.add_not(netlist_.reduce_or(onehot))));
    for (std::size_t j = i + 1; j < sa_rows_.size(); ++j) {
      const SignalId same =
          netlist_.bus_equal(sa_rows_[i].out_port, sa_rows_[j].out_port);
      const SignalId both =
          netlist_.add_and(sa_rows_[i].valid, sa_rows_[j].valid);
      sa_terms.push_back(netlist_.add_and(both, same));
    }
  }

  const SignalId mismatch = netlist_.reduce_or(mismatch_terms);
  const SignalId invalid = netlist_.reduce_or(invalid_terms);
  const SignalId dup = dup_terms.empty() ? netlist_.add_const(false)
                                         : netlist_.reduce_or(dup_terms);
  const SignalId sa_err = netlist_.reduce_or(sa_terms);
  const SignalId any = netlist_.add_or(netlist_.add_or(mismatch, invalid),
                                       netlist_.add_or(dup, sa_err));
  netlist_.add_output("any_error", any);
  netlist_.add_output("va_rt_mismatch", mismatch);
  netlist_.add_output("va_invalid", invalid);
  netlist_.add_output("va_duplicate", dup);
  netlist_.add_output("sa_error", sa_err);
}

std::vector<bool> AcCircuit::encode(
    const std::vector<RoutingStateEntry>& routing,
    const std::vector<VaStateEntry>& va,
    const std::vector<SaStateEntry>& sa) const {
  const int pv = num_ports_ * num_vcs_;
  const std::size_t row_width =
      static_cast<std::size_t>(num_ports_) + 1 + kPortBits + vc_bits_;
  std::vector<bool> inputs(netlist_.num_inputs(), false);

  for (const auto& r : routing) {
    if (r.input_vc >= pv) continue;
    const std::size_t base = r.input_vc * row_width;
    for (int p = 0; p < num_ports_; ++p) {
      inputs[base + static_cast<std::size_t>(p)] = (r.valid_ports >> p) & 1u;
    }
  }
  for (const auto& e : va) {
    if (e.input_vc >= pv) continue;
    const std::size_t base = e.input_vc * row_width;
    std::size_t off = base + static_cast<std::size_t>(num_ports_);
    inputs[off++] = true;  // valid
    pack_value(inputs, off, e.out_port & ((1u << kPortBits) - 1), kPortBits);
    off += kPortBits;
    pack_value(inputs, off, e.out_vc & ((1u << vc_bits_) - 1), vc_bits_);
  }
  const std::size_t sa_base = static_cast<std::size_t>(pv) * row_width;
  const std::size_t sa_width = 1 + kPortBits;
  for (const auto& g : sa) {
    if (g.in_port >= num_ports_) continue;
    const std::size_t base = sa_base + g.in_port * sa_width;
    inputs[base] = true;
    pack_value(inputs, base + 1, g.out_port & ((1u << kPortBits) - 1),
               kPortBits);
  }
  return inputs;
}

AcCircuit::Flags AcCircuit::evaluate(const std::vector<bool>& inputs) const {
  const std::vector<bool> out = netlist_.evaluate(inputs);
  FTNOC_CHECK(out.size() == 5);
  return Flags{out[0], out[1], out[2], out[3], out[4]};
}

}  // namespace ftnoc::rtl

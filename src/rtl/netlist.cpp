#include "rtl/netlist.hpp"

namespace ftnoc::rtl {

SignalId Netlist::add_input(std::string name) {
  FTNOC_CHECK(gates_.empty() && "declare all inputs before gates");
  input_names_.push_back(std::move(name));
  return static_cast<SignalId>(num_inputs_++);
}

SignalId Netlist::add_gate(GateOp op, SignalId a, SignalId b) {
  const auto next = static_cast<SignalId>(num_inputs_ + gates_.size());
  if (op != GateOp::kConst0 && op != GateOp::kConst1) {
    FTNOC_CHECK(a < next);
    if (op != GateOp::kNot) FTNOC_CHECK(b < next);
  }
  gates_.push_back({op, a, b});
  return next;
}

SignalId Netlist::reduce_or(const std::vector<SignalId>& xs) {
  FTNOC_CHECK(!xs.empty());
  std::vector<SignalId> level = xs;
  while (level.size() > 1) {
    std::vector<SignalId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_or(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

SignalId Netlist::reduce_and(const std::vector<SignalId>& xs) {
  FTNOC_CHECK(!xs.empty());
  std::vector<SignalId> level = xs;
  while (level.size() > 1) {
    std::vector<SignalId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_and(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

SignalId Netlist::bus_equal(const std::vector<SignalId>& a,
                            const std::vector<SignalId>& b) {
  FTNOC_CHECK(a.size() == b.size() && !a.empty());
  std::vector<SignalId> eq_bits;
  eq_bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq_bits.push_back(add_not(add_xor(a[i], b[i])));
  }
  return reduce_and(eq_bits);
}

void Netlist::add_output(std::string name, SignalId s) {
  FTNOC_CHECK(s < num_inputs_ + gates_.size());
  outputs_.emplace_back(std::move(name), s);
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& inputs) const {
  FTNOC_CHECK(inputs.size() == num_inputs_);
  std::vector<bool> value(num_inputs_ + gates_.size());
  for (std::size_t i = 0; i < num_inputs_; ++i) value[i] = inputs[i];
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    bool v = false;
    switch (g.op) {
      case GateOp::kAnd: v = value[g.a] && value[g.b]; break;
      case GateOp::kOr: v = value[g.a] || value[g.b]; break;
      case GateOp::kXor: v = value[g.a] != value[g.b]; break;
      case GateOp::kNot: v = !value[g.a]; break;
      case GateOp::kConst0: v = false; break;
      case GateOp::kConst1: v = true; break;
    }
    value[num_inputs_ + i] = v;
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const auto& [name, sig] : outputs_) out.push_back(value[sig]);
  return out;
}

std::string Netlist::to_verilog(const std::string& module_name) const {
  std::string v;
  v += "module " + module_name + " (\n";
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    v += "  input wire " + input_names_[i] + ",\n";
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    v += "  output wire " + outputs_[i].first;
    v += (i + 1 < outputs_.size()) ? ",\n" : "\n";
  }
  v += ");\n";

  auto sig = [this](SignalId s) -> std::string {
    if (s < num_inputs_) return input_names_[s];
    return "n" + std::to_string(s - num_inputs_);
  };
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    v += "  wire n" + std::to_string(i) + " = ";
    switch (g.op) {
      case GateOp::kAnd: v += sig(g.a) + " & " + sig(g.b); break;
      case GateOp::kOr: v += sig(g.a) + " | " + sig(g.b); break;
      case GateOp::kXor: v += sig(g.a) + " ^ " + sig(g.b); break;
      case GateOp::kNot: v += "~" + sig(g.a); break;
      case GateOp::kConst0: v += "1'b0"; break;
      case GateOp::kConst1: v += "1'b1"; break;
    }
    v += ";\n";
  }
  for (const auto& [name, s] : outputs_) {
    v += "  assign " + name + " = " + sig(s) + ";\n";
  }
  v += "endmodule\n";
  return v;
}

double Netlist::gate_equivalents() const {
  double ge = 0.0;
  for (const Gate& g : gates_) {
    switch (g.op) {
      case GateOp::kAnd:
      case GateOp::kOr:
      case GateOp::kXor:
        ge += 1.0;
        break;
      case GateOp::kNot:
        ge += 0.5;
        break;
      case GateOp::kConst0:
      case GateOp::kConst1:
        break;
    }
  }
  return ge;
}

}  // namespace ftnoc::rtl

#pragma once
// A minimal combinational gate-level netlist — the stand-in for the
// paper's structural-RTL flow ("implemented in structural Register-
// Transfer Level (RTL) Verilog and then synthesized in Synopsys Design
// Compiler", §2.2).
//
// Circuits are DAGs of 2-input gates over named input wires. The library
// is just enough to build the Allocation Comparator of Figure 12 at gate
// level (src/rtl/ac_circuit), evaluate it against the behavioural model,
// and count gates for area estimation.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ftnoc::rtl {

/// Index of a signal in the netlist (an input wire or a gate output).
using SignalId = std::uint32_t;

enum class GateOp : std::uint8_t {
  kAnd,
  kOr,
  kXor,
  kNot,    ///< Unary; `b` ignored.
  kConst0, ///< Nullary.
  kConst1, ///< Nullary.
};

struct Gate {
  GateOp op;
  SignalId a = 0;
  SignalId b = 0;
};

/// A combinational netlist under construction / evaluation.
///
/// Build with the add_* methods (inputs first, then gates in topological
/// order — enforced by construction since gates may only reference already
/// existing signals), then evaluate() with one bool per input.
class Netlist {
 public:
  /// Declares an input wire; returns its signal id.
  SignalId add_input(std::string name);

  SignalId add_gate(GateOp op, SignalId a, SignalId b = 0);
  SignalId add_and(SignalId a, SignalId b) {
    return add_gate(GateOp::kAnd, a, b);
  }
  SignalId add_or(SignalId a, SignalId b) {
    return add_gate(GateOp::kOr, a, b);
  }
  SignalId add_xor(SignalId a, SignalId b) {
    return add_gate(GateOp::kXor, a, b);
  }
  SignalId add_not(SignalId a) { return add_gate(GateOp::kNot, a); }
  SignalId add_const(bool v) {
    return add_gate(v ? GateOp::kConst1 : GateOp::kConst0, 0);
  }

  // --- Derived combinational building blocks -----------------------------
  /// OR / AND over an arbitrary fan-in (balanced tree).
  SignalId reduce_or(const std::vector<SignalId>& xs);
  SignalId reduce_and(const std::vector<SignalId>& xs);
  /// a == b over equal-width buses: AND of per-bit XNORs.
  SignalId bus_equal(const std::vector<SignalId>& a,
                     const std::vector<SignalId>& b);

  /// Registers a named output.
  void add_output(std::string name, SignalId s);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_gates() const { return gates_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  const std::string& output_name(std::size_t i) const {
    return outputs_[i].first;
  }

  /// Evaluates the circuit. `inputs` must have num_inputs() entries in
  /// declaration order; returns one bool per output in declaration order.
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  /// Two-input-gate-equivalent count (NOT counts 0.5, constants 0) — the
  /// usual quick synthesis-area proxy.
  double gate_equivalents() const;

  /// Emits the circuit as structural Verilog (a module of assign
  /// statements over the declared inputs/outputs), mirroring the paper's
  /// "implemented in structural RTL Verilog" flow. The text is synthesizable
  /// as-is by any standard tool.
  std::string to_verilog(const std::string& module_name) const;

 private:
  std::size_t num_inputs_ = 0;
  std::vector<std::string> input_names_;
  std::vector<Gate> gates_;  ///< gate i drives signal num_inputs_ + i.
  std::vector<std::pair<std::string, SignalId>> outputs_;
};

}  // namespace ftnoc::rtl

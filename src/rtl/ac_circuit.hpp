#pragma once
// Gate-level Allocation Comparator (Figure 12) — the structural-RTL
// counterpart of core/allocation_comparator. "The unit employs purely
// combinational logic, in the form of XOR gates, to compare the RT state
// entries, SA state entries, and the VA state entries" (§4.1); here that
// circuit is actually built out of 2-input gates, so the behavioural model
// can be validated against it bit-for-bit and its size can be estimated
// from the synthesized gate count (the Table 1 cross-check).
//
// Hardware layout (all state registers are fixed-size, one row per input
// VC or input port):
//   per input VC  i in [0, P*V):  rt_valid_ports (P bits),
//                                 va_valid (1), va_out_port (3 bits),
//                                 va_out_vc (ceil(log2 V) bits)
//   per input port p in [0, P):   sa_valid (1), sa_out_port (3 bits)
//
// Outputs: any_error plus one flag per comparison class of Figure 12.

#include <vector>

#include "core/allocation_comparator.hpp"
#include "rtl/netlist.hpp"

namespace ftnoc::rtl {

class AcCircuit {
 public:
  /// Builds the comparator circuit for P ports and V VCs per port.
  AcCircuit(int num_ports, int num_vcs);

  const Netlist& netlist() const { return netlist_; }
  int num_ports() const { return num_ports_; }
  int num_vcs() const { return num_vcs_; }
  int vc_bits() const { return vc_bits_; }
  static constexpr int kPortBits = 3;

  /// Packs router state into the circuit's input vector. Entries address
  /// fixed rows by their input VC / input port; rows without an entry are
  /// invalid (valid bit 0). Out-of-range ids are truncated to the hardware
  /// register width, exactly as a real register would.
  std::vector<bool> encode(const std::vector<RoutingStateEntry>& routing,
                           const std::vector<VaStateEntry>& va,
                           const std::vector<SaStateEntry>& sa) const;

  struct Flags {
    bool any_error;
    bool va_rt_mismatch;  ///< Check (1) of Figure 12.
    bool va_invalid;      ///< Check (2): out-of-range port/VC id.
    bool va_duplicate;    ///< Check (2): one output VC paired twice.
    bool sa_error;        ///< Check (3): duplicate/invalid SA grant.
  };

  /// Evaluates the gate-level circuit.
  Flags evaluate(const std::vector<bool>& inputs) const;

  /// Convenience: encode + evaluate.
  Flags check(const std::vector<RoutingStateEntry>& routing,
              const std::vector<VaStateEntry>& va,
              const std::vector<SaStateEntry>& sa) const {
    return evaluate(encode(routing, va, sa));
  }

  /// Synthesis-area proxy: 2-input gate equivalents of the comparator.
  double gate_equivalents() const { return netlist_.gate_equivalents(); }

 private:
  struct VaRow {
    std::vector<SignalId> rt_mask;   // P bits.
    SignalId valid;
    std::vector<SignalId> out_port;  // kPortBits.
    std::vector<SignalId> out_vc;    // vc_bits.
  };
  struct SaRow {
    SignalId valid;
    std::vector<SignalId> out_port;  // kPortBits.
  };

  // One-hot decode of a bus against constant `value`.
  SignalId equals_const(const std::vector<SignalId>& bus, unsigned value);

  int num_ports_;
  int num_vcs_;
  int vc_bits_;
  Netlist netlist_;
  std::vector<VaRow> va_rows_;
  std::vector<SaRow> sa_rows_;
};

}  // namespace ftnoc::rtl

#pragma once
// Simulation configuration. One flat struct keeps every knob in one place;
// components receive const references (or copies of the sub-struct they
// need) at construction and never consult globals.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ftnoc {

/// Which routing algorithm the routers run.
enum class RoutingAlgorithm : std::uint8_t {
  kXY,              ///< Deterministic dimension-ordered (paper's "DT").
  kMinimalAdaptive, ///< Minimal fully-adaptive (paper's "AD"); deadlock-prone.
  /// Duato-style deadlock *avoidance*: adaptive VCs plus a reserved escape
  /// VC (VC 0) driven by deadlock-free XY. The alternative the paper
  /// argues against in §3.2 — it needs no recovery, but "the flits in
  /// these escape VCs are managed by a deadlock-free deterministic routing
  /// algorithm, thereby limiting adaptivity".
  kAdaptiveEscape,
};

/// Link-level protection scheme (paper §3).
enum class LinkProtection : std::uint8_t {
  kNone,  ///< No protection; errors silently corrupt flits.
  kFec,   ///< Forward error correction only (SEC); double errors undetected
          ///< at the link, caught (but not recoverable) at the destination.
  kE2e,   ///< End-to-end retransmission with SEC/DED at the destination.
  kHbh,   ///< Paper's flit-based hop-by-hop retransmission (SEC/DED + NACK).
};

/// Destination distribution of synthetic traffic (paper §2.2).
enum class TrafficPattern : std::uint8_t {
  kUniformRandom,   ///< "NR": uniform over all other nodes.
  kBitComplement,   ///< "BC": dest = bitwise complement of source index.
  kTornado,         ///< "TN": dest = (x + X/2 - 1) mod X in each dimension.
};

/// Input-buffer organization of the routers (DESIGN.md §4.11). The enum
/// lives here with the other config enums so the common layer can parse
/// and validate it; the buffer-policy machinery itself (the DAMQ free-slot
/// pool, the VOQ class map) is in core/buffer_policy.{hpp,cpp}.
enum class BufferPolicyKind : std::uint8_t {
  /// One private `vc_buffer_depth`-flit FIFO per (port, VC) — the paper's
  /// layout, assumed by Eq. (1) as written.
  kPrivateVc,
  /// Dynamically-Allocated Multi-Queue: the VCs of one link input port
  /// share a single pool of num_vcs * vc_buffer_depth slots, with
  /// `damq_reserve_slots` slots reserved per VC for deadlock freedom
  /// (after Jamali & Khademzadeh, arXiv 0910.1852).
  kDamq,
  /// Virtual-output-queue discipline: packets travel in the VC class of
  /// their destination column for their whole journey, removing
  /// head-of-line blocking between destination columns (after
  /// Papaphilippou & Chu, arXiv 2303.10526). Requires XY routing.
  kVoq,
};

const char* to_string(RoutingAlgorithm a);
const char* to_string(LinkProtection p);
const char* to_string(TrafficPattern t);
const char* to_string(BufferPolicyKind b);

/// Fault process rates. All are per-opportunity Bernoulli probabilities.
struct FaultConfig {
  /// Probability a flit is hit by an error during one link traversal.
  double link_error_rate = 0.0;
  /// Given a link error, probability it is a ≥2-bit upset (SEC cannot
  /// correct it; SEC/DED detects it). Single-bit otherwise.
  double multi_bit_fraction = 0.05;
  /// Probability a routing computation (per header flit, per hop) is upset.
  double rt_error_rate = 0.0;
  /// Probability a VA allocation (per granted output VC) is upset.
  double va_error_rate = 0.0;
  /// Probability an SA grant (per granted crossbar passage) is upset.
  double sa_error_rate = 0.0;
  /// Probability a retransmission-buffer copy is upset (per replay read).
  /// §4.5: without duplicate buffers this causes an endless
  /// retransmission loop.
  double rtx_error_rate = 0.0;
  /// Probability a handshake signal (credit / NACK line) is upset per
  /// transfer. §4.6: TMR on the handshake lines votes these away.
  double handshake_error_rate = 0.0;
  /// Permanent-fault escalation: after this many *consecutive*
  /// uncorrectable upsets observed on one input link, the link is declared
  /// hard-dead — the network drains the in-flight wormholes crossing it,
  /// re-homes waiting packets and reroutes around it for the rest of the
  /// run (unless killing it would partition the mesh, in which case the
  /// link keeps limping). 0 disables escalation.
  int link_escalation_threshold = 0;
};

/// Deadlock detection/recovery knobs (paper §3.2).
struct DeadlockConfig {
  bool enable_recovery = false;
  /// Blocked-cycle threshold before a probe is launched (paper's Cthres).
  Cycle probe_threshold = 64;
  /// Minimum gap between successive probes from the same VC.
  Cycle probe_backoff = 32;
  /// A probe that neither returned nor was superseded by an activation
  /// within this many cycles is considered lost (it was discarded at a
  /// non-blocked node); the router may probe again. Must comfortably
  /// exceed the largest possible cycle length (a few network diameters).
  Cycle probe_timeout = 128;
  /// Probes are dropped after this many hops so they cannot circulate
  /// forever inside a dependency cycle that does not contain their origin.
  /// 0 = auto (4x the node count).
  std::uint32_t probe_ttl = 0;
  /// Fallback self-recovery: a router whose probes expired this many times
  /// in a row with *zero local progress* in between enters recovery mode
  /// unilaterally. Handles dense multi-cycle saturation knots where a
  /// blocked packet's dependency chain ends in a cycle it is not part of
  /// (its probe can then never return). 0 disables the fallback.
  int fallback_probe_failures = 4;
  /// A router stays in recovery while any of its VCs has made no progress
  /// for more than this many cycles (independent of probe_threshold, so
  /// aggressive probing cannot livelock the exit); while any router is in
  /// recovery, the chip-wide injection gate stays asserted.
  Cycle exit_block_window = 512;
};

struct SimConfig {
  // --- Topology (paper §2.2: 8x8 mesh) ---
  int mesh_width = 8;
  int mesh_height = 8;
  bool torus = false;  ///< Wrap-around links (used by tornado traffic study).

  // --- Router microarchitecture ---
  int num_vcs = 3;            ///< VCs per physical channel (paper: 3).
  int vc_buffer_depth = 4;    ///< Flits per VC transmission buffer.
  int pipeline_stages = 3;    ///< 1..4 (paper evaluates 3-stage).
  int retransmission_depth = 3;  ///< Barrel-shifter depth (paper: 3).
  /// Input-buffer organization (DESIGN.md §4.11). All three policies use
  /// the same total buffer budget of num_vcs * vc_buffer_depth slots per
  /// link input port; only the sharing discipline differs. The local
  /// injection port always keeps private per-VC rings.
  BufferPolicyKind buffer_policy = BufferPolicyKind::kPrivateVc;
  /// DAMQ only: slots reserved per VC out of the shared pool (the paper's
  /// deadlock-freedom floor). Must be in [1, vc_buffer_depth]; the shared
  /// region is num_vcs * (vc_buffer_depth - damq_reserve_slots) slots.
  int damq_reserve_slots = 2;

  // --- Traffic ---
  double injection_rate = 0.1;  ///< flits/node/cycle.
  int packet_length = 4;        ///< flits per packet (paper: 4).
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  /// Application-style workload replayed on top of (or, with
  /// injection_rate=0, instead of) the synthetic sources (DESIGN.md §4.14).
  /// `workload_file` names a workload text file ("workload=FILE"
  /// override); `workload_text` carries the same grammar inline (presets,
  /// tests). At most one may be set; parsing happens in the noc layer
  /// (Network's constructor), which aborts on a malformed workload.
  std::string workload_file;
  std::string workload_text;
  /// Accumulate per-directed-link forwarded-flit and stall-cycle counters
  /// ("link_stats=1"). Off by default: the counters are cheap but the JSONL
  /// columns they add would break byte-identity of existing outputs.
  bool link_stats = false;
  /// Terminate when the loaded trace/workload is fully drained (every
  /// released packet ejected or dropped) instead of after total_messages
  /// ejections ("run_to_drain=1"). Ignored when no trace is loaded;
  /// max_cycles still caps the run.
  bool run_to_drain = false;

  // --- Protection / routing ---
  RoutingAlgorithm routing = RoutingAlgorithm::kXY;
  LinkProtection protection = LinkProtection::kHbh;
  /// Hard faults: links dead from the start of the run (both directions of
  /// the physical channel). The paper models link outages as static state
  /// in the VA's link-state table (§4.2); adaptive routing detours around
  /// them, deterministic routing cannot. Override syntax: "dead_link=5:E"
  /// (node 5's East link), repeatable.
  std::vector<std::pair<NodeId, Direction>> dead_links;
  /// Hard faults: routers dead from the start of the run. A dead router
  /// injects no traffic, all four of its links are failed, and packets
  /// addressed to it are dropped as unreachable at their current router.
  /// Override syntax: "dead_router=5", repeatable.
  std::vector<NodeId> dead_routers;
  /// A link kill scheduled mid-run (the fault-storm timeline): at cycle
  /// `at` the network hard-fails the channel leaving `node` through `dir`
  /// exactly as a runtime escalation would — partition veto, drain on both
  /// endpoints, route-epoch bump. Vetoed kills are skipped, never retried.
  struct LinkKill {
    Cycle at = 0;
    NodeId node = 0;
    Direction dir = Direction::kEast;
  };
  /// Storm schedule, sorted by cycle (validate() enforces). Override
  /// syntax: "storm_kill=CYCLE:NODE:D" with D in {N,E,S,W}, repeatable.
  std::vector<LinkKill> storm_kills;
  /// Self-healing routing tier (DESIGN.md §4.12): when every minimal
  /// fault-aware candidate of a waiting head is locally unusable (dead or
  /// draining), detour it non-minimally over the live escape ports closest
  /// to the destination instead of parking it (non-XY) or bouncing it back
  /// to RT (XY). Off by default; fault-free behaviour and all existing
  /// golden digests are unaffected. Override: "adaptive_faults=1".
  bool adaptive_faults = false;
  /// Allocation Comparator present (§4). Off = logic upsets go unprotected
  /// (ablation baseline).
  bool enable_ac = true;
  /// Detection-only link code: the receiver retransmits on *any* detected
  /// error instead of correcting single-bit upsets in place. Models the
  /// pure-retransmission baselines of the Figure 5 comparison; the paper's
  /// proposed scheme is the hybrid (false).
  bool ecc_detect_only = false;
  /// §4.5's fool-proof option: duplicate retransmission buffers. A
  /// corrupted barrel copy is recovered from the duplicate instead of
  /// looping forever; costs double rtx area/power.
  bool duplicate_rtx_buffers = false;
  /// §4.6: Triple Module Redundancy on the handshaking lines (credits and
  /// NACKs). On by default, as the paper proposes; disabling it exposes
  /// handshake upsets (credit leaks / lost NACKs).
  bool tmr_handshaking = true;
  FaultConfig faults;
  DeadlockConfig deadlock;

  // --- Verification / debug (not part of the sweep JSONL output) ---
  /// Attach the cycle-level InvariantMonitor (DESIGN.md §4.8). Requires a
  /// build with FTNOC_ENABLE_INVARIANTS (the default); a violation logs a
  /// structured diagnostic and aborts.
  bool check_invariants = false;
  /// Build the network out of ReferenceRouter instances (the deliberately
  /// simple, allocation-happy model) instead of the optimized Router. Used
  /// by the differential fuzz harness; behaviour must be bit-identical.
  bool use_reference_router = false;
  /// Name of a deliberately planted bug, applied to the *optimized* router
  /// only ("" = none). The fuzz harness plants one to prove it can detect
  /// divergences end to end. Known names: "drop_window" (reverts the
  /// 4-stage HBH drop window to the pre-fix now+2); "route_into_dead_link"
  /// (routes with the fault-blind closed form, steering headers at failed
  /// ports — only observable on faulted topologies).
  std::string test_mutation;
  /// Force the per-cycle full router scan instead of the event-queue
  /// kernel (DESIGN.md §4.10). The two are byte-identical by contract;
  /// the override exists for determinism tests and A/B perf comparison.
  /// Reference-router networks always scan regardless of this flag.
  bool force_scan_kernel = false;

  // --- Run control ---
  std::uint64_t seed = 1;
  std::uint64_t warmup_messages = 100'000;  ///< Paper: 100k warm-up.
  std::uint64_t total_messages = 300'000;   ///< Paper: 300k ejected total.
  Cycle max_cycles = 10'000'000;  ///< Hard stop (diverged/saturated runs).

  int num_nodes() const { return mesh_width * mesh_height; }

  /// True when a workload (file or inline text) is configured.
  bool has_workload() const {
    return !workload_file.empty() || !workload_text.empty();
  }

  /// True when the run can contain hard (permanent) faults: static dead
  /// links/routers, or runtime link escalation armed. Gates the fault-only
  /// JSONL columns so fault-free output stays byte-identical.
  bool has_permanent_faults() const {
    return !dead_links.empty() || !dead_routers.empty() ||
           !storm_kills.empty() || faults.link_escalation_threshold > 0;
  }

  /// Validates invariants (positive sizes, rates in [0,1], ...).
  /// Returns an error description, or nullopt if the config is valid.
  std::optional<std::string> validate() const;
};

/// Parses `key=value` overrides (e.g. from argv) into `cfg`.
/// Recognized keys mirror the field names, e.g. "mesh_width=4",
/// "protection=hbh", "pattern=bc", "routing=adaptive",
/// "link_error_rate=0.001". Returns an error message on unknown key or
/// malformed value.
std::optional<std::string> apply_override(SimConfig& cfg,
                                          const std::string& assignment);

/// Applies a whole argv-style list of overrides; stops at the first error.
std::optional<std::string> apply_overrides(
    SimConfig& cfg, const std::vector<std::string>& assignments);

}  // namespace ftnoc

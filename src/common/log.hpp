#pragma once
// Minimal leveled logging. Off by default; enabled per-run for debugging
// (e.g. tracing a deadlock recovery episode in an example binary).
//
// The level check is an inline load of a plain global, so a disabled log
// statement in a hot loop costs one predictable branch and — because the
// message expression sits inside the guard — zero formatting work.
// FTNOC_MIN_LOG_LEVEL additionally compiles statements above the floor out
// entirely (e.g. -DFTNOC_MIN_LOG_LEVEL=0 strips all logging).
//
// Setting FTNOC_DBG in the environment seeds the level to kTrace at
// startup, which is how the deadlock-protocol traces in Router are turned
// on without recompiling.

#include <cstdio>
#include <string>

namespace ftnoc {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kTrace = 4,
};

namespace detail {
/// Global log threshold. Not thread-safe by design: the simulator is
/// single-threaded per Simulator and benches set this once at startup.
extern LogLevel g_log_level;
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

inline LogLevel log_level() { return detail::g_log_level; }
void set_log_level(LogLevel level);

/// Cheap inline guard for callers that want to batch several statements
/// (or precompute a message) under one check.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(detail::g_log_level);
}

}  // namespace ftnoc

/// Statements above this level are removed at compile time.
#ifndef FTNOC_MIN_LOG_LEVEL
#define FTNOC_MIN_LOG_LEVEL 4
#endif

#define FTNOC_LOG(level, msg)                                     \
  do {                                                            \
    if constexpr (static_cast<int>(level) <= FTNOC_MIN_LOG_LEVEL) { \
      if (::ftnoc::log_enabled(level)) {                          \
        ::ftnoc::detail::log_line((level), (msg));                \
      }                                                           \
    }                                                             \
  } while (false)

#define FTNOC_TRACE(msg) FTNOC_LOG(::ftnoc::LogLevel::kTrace, (msg))
#define FTNOC_INFO(msg) FTNOC_LOG(::ftnoc::LogLevel::kInfo, (msg))
#define FTNOC_WARN(msg) FTNOC_LOG(::ftnoc::LogLevel::kWarn, (msg))
#define FTNOC_ERROR(msg) FTNOC_LOG(::ftnoc::LogLevel::kError, (msg))

#pragma once
// Minimal leveled logging. Off by default; enabled per-run for debugging
// (e.g. tracing a deadlock recovery episode in an example binary).

#include <cstdio>
#include <string>

namespace ftnoc {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kTrace = 4,
};

/// Global log threshold. Not thread-safe by design: the simulator is
/// single-threaded and benches set this once at startup.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace ftnoc

#define FTNOC_LOG(level, msg)                                     \
  do {                                                            \
    if (static_cast<int>(level) <=                                \
        static_cast<int>(::ftnoc::log_level())) {                 \
      ::ftnoc::detail::log_line((level), (msg));                  \
    }                                                             \
  } while (false)

#define FTNOC_TRACE(msg) FTNOC_LOG(::ftnoc::LogLevel::kTrace, (msg))
#define FTNOC_INFO(msg) FTNOC_LOG(::ftnoc::LogLevel::kInfo, (msg))
#define FTNOC_WARN(msg) FTNOC_LOG(::ftnoc::LogLevel::kWarn, (msg))
#define FTNOC_ERROR(msg) FTNOC_LOG(::ftnoc::LogLevel::kError, (msg))

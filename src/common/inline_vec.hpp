#pragma once
// Small sequence container with inline storage for the router hot path.
//
// The first N elements live inside the object — push_back/erase on a
// typical cycle (a handful of pending NACKs or queued control signals)
// never touch the heap. Growing past N spills the whole contents into a
// backing std::vector which is then kept for the container's remaining
// lifetime (its capacity is never released), so even a transient spike
// causes at most one allocation ever, not one per cycle.

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace ftnoc {

template <typename T, std::size_t N>
class InlineVec {
 public:
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  void push_back(const T& v) {
    if (spilled_) {
      heap_.push_back(v);
    } else if (size_ == N) {
      spill();
      heap_.push_back(v);
    } else {
      inline_[size_] = v;
    }
    ++size_;
  }

  /// Inserts `v` before index `i` (i == size() appends), shifting the
  /// tail right.
  void insert_at(std::size_t i, const T& v) {
    FTNOC_CHECK(i <= size_);
    push_back(v);  // Grows (and spills if needed); value placed below.
    T* d = data();
    std::move_backward(d + i, d + size_ - 1, d + size_);
    d[i] = v;
  }

  /// Erases the element at index `i`, shifting the tail left (preserves
  /// the order of the remaining elements).
  void erase_at(std::size_t i) {
    FTNOC_CHECK(i < size_);
    T* d = data();
    std::move(d + i + 1, d + size_, d + i);
    --size_;
    if (spilled_) {
      heap_.pop_back();
      if (size_ <= N) unspill();
    }
  }

  void clear() {
    size_ = 0;
    if (spilled_) {
      heap_.clear();
      spilled_ = false;
    }
  }

 private:
  void spill() {
    heap_.clear();
    heap_.reserve(2 * N);
    for (std::size_t i = 0; i < size_; ++i) {
      heap_.push_back(std::move(inline_[i]));
    }
    spilled_ = true;
  }

  void unspill() {
    for (std::size_t i = 0; i < size_; ++i) inline_[i] = std::move(heap_[i]);
    heap_.clear();  // Capacity retained for the next spike.
    spilled_ = false;
  }

  T* data() { return spilled_ ? heap_.data() : inline_.data(); }
  const T* data() const { return spilled_ ? heap_.data() : inline_.data(); }

  std::size_t size_ = 0;
  bool spilled_ = false;
  std::array<T, N> inline_{};
  std::vector<T> heap_;
};

}  // namespace ftnoc

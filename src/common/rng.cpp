#include "common/rng.hpp"

#include "common/check.hpp"

namespace ftnoc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (splitmix64 cannot produce four zeros from one
  // seed in practice, but the guard costs nothing).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FTNOC_CHECK(bound > 0);  // `-bound % bound` below divides by zero at 0.
  // Lemire's nearly-divisionless bounded generation (rejection only in the
  // tiny biased band).
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t index) {
  // Two rounds of the seeding mixer over (base, index) give full avalanche,
  // so consecutive indices map to unrelated seeds.
  std::uint64_t x = base;
  x = splitmix64(x) ^ index;
  return splitmix64(x);
}

}  // namespace ftnoc

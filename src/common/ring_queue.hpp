#pragma once
// Fixed-capacity FIFO ring for hot-path queues whose depth is bounded by
// construction (e.g. an input VC buffer is bounded by vc_buffer_depth).
// One allocation at reset_capacity(); push/pop never touch the heap and
// the elements stay contiguous-ish for cache friendliness — unlike
// std::deque, which allocates a fresh chunk whenever a queue straddles a
// chunk boundary (measured at hundreds of thousands of allocations per
// sweep point).

#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.hpp"

namespace ftnoc {

template <typename T>
class RingQueue {
 public:
  /// (Re)allocates storage for exactly `cap` elements and empties the
  /// queue. Must be called before the first push.
  void reset_capacity(std::size_t cap) {
    slots_ = std::make_unique<T[]>(cap);
    cap_ = cap;
    head_ = 0;
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& front() {
    FTNOC_DCHECK(size_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    FTNOC_DCHECK(size_ > 0);
    return slots_[head_];
  }

  /// i-th element counted from the front.
  T& operator[](std::size_t i) {
    FTNOC_DCHECK(i < size_);
    return slots_[wrap(head_ + i)];
  }
  const T& operator[](std::size_t i) const {
    FTNOC_DCHECK(i < size_);
    return slots_[wrap(head_ + i)];
  }

  void push_back(T v) {
    FTNOC_CHECK(size_ < cap_);
    slots_[wrap(head_ + size_)] = std::move(v);
    ++size_;
  }

  void pop_front() {
    FTNOC_DCHECK(size_ > 0);
    head_ = wrap(head_ + 1);
    --size_;
  }

 private:
  std::size_t wrap(std::size_t i) const { return i < cap_ ? i : i - cap_; }

  std::unique_ptr<T[]> slots_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ftnoc

#pragma once
// Small statistics helpers used by the metric collectors.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftnoc {

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets); values past
/// the end land in the overflow bucket. Used for latency distributions.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x);
  void reset();

  std::size_t count() const { return total_; }
  std::size_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::size_t overflow() const { return overflow_; }
  double bucket_width() const { return width_; }

  /// Value below which `q` (in [0,1]) of the samples fall, estimated as
  /// the midpoint of the bucket containing that rank (q=0 gives the first
  /// non-empty bucket; ranks in the overflow bucket report the range end,
  /// the tightest bounded estimate). Returns 0 for an empty histogram.
  double quantile(double q) const;

 private:
  double width_;
  std::vector<std::size_t> buckets_;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// z for a two-sided 95% confidence interval (Phi^-1(0.975)).
inline constexpr double kZ95 = 1.959963984540054;

/// Half-width of the normal-approximation confidence interval for the
/// mean of `s`: z * stddev / sqrt(n). Returns +infinity for n < 2 — no
/// variance estimate exists yet, so no CI target can be met.
double mean_ci_halfwidth(const RunningStat& s, double z = kZ95);

/// A Bernoulli rate estimate with its confidence bounds.
struct RateInterval {
  double rate = 0.0;  ///< Point estimate successes/trials (0 if no trials).
  double low = 0.0;
  double high = 1.0;
};

/// Wilson score interval for a Bernoulli success probability. Unlike the
/// Wald interval it never leaves [0,1] and stays informative at rate 0 or
/// 1 (the regime of silent-corruption and packet-loss probabilities).
/// trials == 0 yields the vacuous interval [0, 1].
RateInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double z = kZ95);

/// A simple saturating event counter keyed by small enum-like indices.
class CounterSet {
 public:
  explicit CounterSet(std::size_t n) : counts_(n, 0) {}

  void inc(std::size_t i, std::uint64_t by = 1) { counts_.at(i) += by; }
  std::uint64_t get(std::size_t i) const { return counts_.at(i); }
  std::size_t size() const { return counts_.size(); }
  void reset();

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace ftnoc

#pragma once
// Deterministic pseudo-random number generation.
//
// Simulations must be reproducible per seed: every stochastic decision
// (injection, destination choice, fault arrival, bit positions) draws from
// an Rng instance owned by the component making the decision, so adding a
// component never perturbs another component's stream.

#include <cstdint>

namespace ftnoc {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
/// Seeded through splitmix64 so that nearby seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

  /// Stateless seed derivation: hashes (base, index) into a seed whose
  /// stream is unrelated to `base`'s own stream and to every other index.
  /// Sweeps use this to give point i the same seed no matter which worker
  /// thread runs it or in what order.
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

 private:
  std::uint64_t s_[4];
};

}  // namespace ftnoc

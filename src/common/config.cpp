#include "common/config.hpp"

#include <charconv>
#include <cstdlib>

namespace ftnoc {

const char* to_string(RoutingAlgorithm a) {
  switch (a) {
    case RoutingAlgorithm::kXY: return "xy";
    case RoutingAlgorithm::kMinimalAdaptive: return "adaptive";
    case RoutingAlgorithm::kAdaptiveEscape: return "escape";
  }
  return "?";
}

const char* to_string(LinkProtection p) {
  switch (p) {
    case LinkProtection::kNone: return "none";
    case LinkProtection::kFec: return "fec";
    case LinkProtection::kE2e: return "e2e";
    case LinkProtection::kHbh: return "hbh";
  }
  return "?";
}

const char* to_string(TrafficPattern t) {
  switch (t) {
    case TrafficPattern::kUniformRandom: return "nr";
    case TrafficPattern::kBitComplement: return "bc";
    case TrafficPattern::kTornado: return "tn";
  }
  return "?";
}

const char* to_string(BufferPolicyKind b) {
  switch (b) {
    case BufferPolicyKind::kPrivateVc: return "private_vc";
    case BufferPolicyKind::kDamq: return "damq";
    case BufferPolicyKind::kVoq: return "voq";
  }
  return "?";
}

namespace {

// Mirrors Topology::neighbor (noc/topology.cpp) without depending on the
// noc layer: row 0 is the top of the mesh, north decreases y, the torus
// wraps. Returns -1 at a mesh edge.
int mesh_neighbor(const SimConfig& c, int n, Direction d) {
  int x = n % c.mesh_width;
  int y = n / c.mesh_width;
  switch (d) {
    case Direction::kNorth: y -= 1; break;
    case Direction::kSouth: y += 1; break;
    case Direction::kEast: x += 1; break;
    case Direction::kWest: x -= 1; break;
    case Direction::kLocal: return -1;
  }
  if (x < 0 || x >= c.mesh_width || y < 0 || y >= c.mesh_height) {
    if (!c.torus) return -1;
    x = (x + c.mesh_width) % c.mesh_width;
    y = (y + c.mesh_height) % c.mesh_height;
  }
  return y * c.mesh_width + x;
}

/// Reachability precheck for a hard-faulted config: every live router must
/// be able to reach every other live router over live links. Returns the
/// number of live routers reachable from the first one (and the live total
/// through `live_out`).
int live_reachable(const SimConfig& c, int& live_out) {
  const int n = c.num_nodes();
  std::vector<std::uint8_t> router_dead(n, 0);
  std::vector<std::uint8_t> port_dead(static_cast<std::size_t>(n) * 4, 0);
  for (const NodeId r : c.dead_routers) router_dead[r] = 1;
  auto kill = [&](int node, Direction d) {
    port_dead[static_cast<std::size_t>(node) * 4 +
              static_cast<int>(d)] = 1;
  };
  for (const auto& [node, dir] : c.dead_links) {
    kill(node, dir);
    const int nb = mesh_neighbor(c, node, dir);
    if (nb >= 0) kill(nb, opposite(dir));
  }
  int live = 0;
  int first = -1;
  for (int i = 0; i < n; ++i) {
    if (router_dead[i]) continue;
    ++live;
    if (first < 0) first = i;
  }
  live_out = live;
  if (live == 0) return 0;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<int> queue = {first};
  seen[first] = 1;
  int reached = 0;
  while (!queue.empty()) {
    const int cur = queue.back();
    queue.pop_back();
    ++reached;
    for (int p = 0; p < 4; ++p) {
      const auto d = static_cast<Direction>(p);
      if (port_dead[static_cast<std::size_t>(cur) * 4 + p]) continue;
      const int nb = mesh_neighbor(c, cur, d);
      if (nb < 0 || router_dead[nb] || seen[nb]) continue;
      seen[nb] = 1;
      queue.push_back(nb);
    }
  }
  return reached;
}

}  // namespace

std::optional<std::string> SimConfig::validate() const {
  auto err = [](std::string msg) { return std::optional<std::string>(msg); };
  if (mesh_width < 2 || mesh_height < 1) {
    return err("mesh must be at least 2x1");
  }
  if (num_nodes() > 0xFFFF - 1) return err("too many nodes for NodeId");
  // The separable allocators use 32-wide round-robin arbiters over P*V
  // global VC ids; with P = 5 ports that bounds V at 6.
  if (num_vcs < 1 || num_vcs > 6) return err("num_vcs must be in [1,6]");
  if (vc_buffer_depth < 1) return err("vc_buffer_depth must be >= 1");
  if (pipeline_stages < 1 || pipeline_stages > 4) {
    return err("pipeline_stages must be in [1,4]");
  }
  if (retransmission_depth < 3) {
    // The NACK loop is 3 cycles long (link + check + NACK); a shallower
    // buffer would overwrite a flit that may still be NACKed.
    return err("retransmission_depth must be >= 3");
  }
  if (pipeline_stages == 4 && retransmission_depth < 4) {
    // The dedicated ST stage adds one in-flight cycle to the NACK loop.
    return err("retransmission_depth must be >= 4 for a 4-stage router");
  }
  if (injection_rate < 0.0 || injection_rate > static_cast<double>(num_vcs)) {
    return err("injection_rate out of range");
  }
  if (packet_length < 1) return err("packet_length must be >= 1");
  if (!workload_file.empty() && !workload_text.empty()) {
    return err("workload_file and workload_text are mutually exclusive");
  }
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!rate_ok(faults.link_error_rate) || !rate_ok(faults.multi_bit_fraction) ||
      !rate_ok(faults.rt_error_rate) || !rate_ok(faults.va_error_rate) ||
      !rate_ok(faults.sa_error_rate) || !rate_ok(faults.rtx_error_rate) ||
      !rate_ok(faults.handshake_error_rate)) {
    return err("fault rates must be probabilities in [0,1]");
  }
  if (total_messages == 0) return err("total_messages must be > 0");
  if (warmup_messages >= total_messages) {
    return err("warmup_messages must be < total_messages");
  }
  if (deadlock.enable_recovery && deadlock.probe_threshold == 0) {
    return err("probe_threshold must be > 0");
  }
  if (deadlock.enable_recovery) {
    // Eq. (1), uniform per-node buffers: recovery is guaranteed iff
    //   sum_i (T_i + R_i) > M * sum_i ceil(T_i / M)
    // which with identical nodes reduces to (T + R) > M * ceil(T / M),
    // independent of the cycle length. At equality the absorbed flits
    // exactly refill the freed slots and recovery livelocks, so refuse
    // the configuration outright instead of wedging at runtime.
    //
    // Under DAMQ sharing a single VC can legally occupy its reserve plus
    // the whole shared region, so the bound must hold for that effective
    // per-VC depth T_eff = K + V*(depth - K), not the nominal depth
    // (DESIGN.md §4.11).
    const long long m = packet_length;
    long long t = vc_buffer_depth;
    if (buffer_policy == BufferPolicyKind::kDamq) {
      t = damq_reserve_slots +
          static_cast<long long>(num_vcs) *
              (vc_buffer_depth - damq_reserve_slots);
    }
    const long long r = retransmission_depth;
    const long long bound = m * ((t + m - 1) / m);
    if (t + r <= bound) {
      return err(
          "deadlock recovery violates Eq. (1): effective vc_buffer_depth + "
          "retransmission_depth (" +
          std::to_string(t + r) + ") must exceed packet_length * "
          "ceil(depth / packet_length) (" + std::to_string(bound) +
          ") or recovery cannot guarantee forward progress");
    }
  }
  if (buffer_policy == BufferPolicyKind::kDamq &&
      (damq_reserve_slots < 1 || damq_reserve_slots > vc_buffer_depth)) {
    return err("damq_reserve_slots must be in [1, vc_buffer_depth]");
  }
  if (buffer_policy == BufferPolicyKind::kVoq &&
      routing != RoutingAlgorithm::kXY) {
    return err(
        "buffer_policy=voq requires routing=xy (the VOQ class discipline "
        "pins each packet's VC for its whole journey, which is only "
        "deadlock-free under dimension-ordered routing)");
  }
  if (routing == RoutingAlgorithm::kAdaptiveEscape && num_vcs < 2) {
    return err("escape routing needs >= 2 VCs (VC 0 is the escape lane)");
  }
  for (const auto& [node, dir] : dead_links) {
    if (node >= num_nodes()) return err("dead_link node out of range");
    if (dir == Direction::kLocal) return err("cannot fail a local link");
  }
  for (const NodeId node : dead_routers) {
    if (node >= num_nodes()) return err("dead_router node out of range");
  }
  for (std::size_t i = 0; i < storm_kills.size(); ++i) {
    const auto& k = storm_kills[i];
    if (k.node >= num_nodes()) return err("storm_kill node out of range");
    if (k.dir == Direction::kLocal) return err("cannot storm-kill a local link");
    if (i > 0 && k.at < storm_kills[i - 1].at) {
      // Both kernels consume the schedule with a single cursor; an
      // out-of-order entry would silently never fire.
      return err("storm_kill schedule must be sorted by cycle");
    }
  }
  if (faults.link_escalation_threshold < 0) {
    return err("link_escalation_threshold must be >= 0");
  }
  if (!dead_links.empty() || !dead_routers.empty()) {
    int live = 0;
    const int reached = live_reachable(*this, live);
    if (live == 0) return err("dead_routers kill every router in the mesh");
    if (reached != live) {
      return err("dead links/routers partition the mesh: only " +
                 std::to_string(reached) + " of " + std::to_string(live) +
                 " live routers are mutually reachable");
    }
  }
  return std::nullopt;
}

namespace {

bool parse_int(const std::string& v, int& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && p == v.data() + v.size();
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && p == v.data() + v.size();
}

bool parse_double(const std::string& v, double& out) {
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size() && !v.empty();
}

bool parse_bool(const std::string& v, bool& out) {
  if (v == "1" || v == "true" || v == "on") {
    out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

std::optional<std::string> apply_override(SimConfig& cfg,
                                          const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos) {
    return "expected key=value, got: " + assignment;
  }
  const std::string key = assignment.substr(0, eq);
  const std::string val = assignment.substr(eq + 1);
  auto bad = [&]() -> std::optional<std::string> {
    return "bad value for " + key + ": " + val;
  };

  if (key == "mesh_width") {
    if (!parse_int(val, cfg.mesh_width)) return bad();
  } else if (key == "mesh_height") {
    if (!parse_int(val, cfg.mesh_height)) return bad();
  } else if (key == "torus") {
    if (!parse_bool(val, cfg.torus)) return bad();
  } else if (key == "num_vcs") {
    if (!parse_int(val, cfg.num_vcs)) return bad();
  } else if (key == "vc_buffer_depth") {
    if (!parse_int(val, cfg.vc_buffer_depth)) return bad();
  } else if (key == "pipeline_stages") {
    if (!parse_int(val, cfg.pipeline_stages)) return bad();
  } else if (key == "retransmission_depth") {
    if (!parse_int(val, cfg.retransmission_depth)) return bad();
  } else if (key == "buffer_policy") {
    if (val == "private_vc" || val == "private") {
      cfg.buffer_policy = BufferPolicyKind::kPrivateVc;
    } else if (val == "damq") {
      cfg.buffer_policy = BufferPolicyKind::kDamq;
    } else if (val == "voq") {
      cfg.buffer_policy = BufferPolicyKind::kVoq;
    } else {
      return bad();
    }
  } else if (key == "damq_reserve_slots") {
    if (!parse_int(val, cfg.damq_reserve_slots)) return bad();
  } else if (key == "injection_rate") {
    if (!parse_double(val, cfg.injection_rate)) return bad();
  } else if (key == "packet_length") {
    if (!parse_int(val, cfg.packet_length)) return bad();
  } else if (key == "pattern") {
    if (val == "nr" || val == "uniform") {
      cfg.pattern = TrafficPattern::kUniformRandom;
    } else if (val == "bc" || val == "bitcomp") {
      cfg.pattern = TrafficPattern::kBitComplement;
    } else if (val == "tn" || val == "tornado") {
      cfg.pattern = TrafficPattern::kTornado;
    } else {
      return bad();
    }
  } else if (key == "routing") {
    if (val == "xy" || val == "dt") {
      cfg.routing = RoutingAlgorithm::kXY;
    } else if (val == "adaptive" || val == "ad") {
      cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
    } else if (val == "escape" || val == "duato") {
      cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
    } else {
      return bad();
    }
  } else if (key == "protection") {
    if (val == "none") {
      cfg.protection = LinkProtection::kNone;
    } else if (val == "fec") {
      cfg.protection = LinkProtection::kFec;
    } else if (val == "e2e") {
      cfg.protection = LinkProtection::kE2e;
    } else if (val == "hbh") {
      cfg.protection = LinkProtection::kHbh;
    } else {
      return bad();
    }
  } else if (key == "enable_ac") {
    if (!parse_bool(val, cfg.enable_ac)) return bad();
  } else if (key == "ecc_detect_only") {
    if (!parse_bool(val, cfg.ecc_detect_only)) return bad();
  } else if (key == "link_error_rate") {
    if (!parse_double(val, cfg.faults.link_error_rate)) return bad();
  } else if (key == "multi_bit_fraction") {
    if (!parse_double(val, cfg.faults.multi_bit_fraction)) return bad();
  } else if (key == "rt_error_rate") {
    if (!parse_double(val, cfg.faults.rt_error_rate)) return bad();
  } else if (key == "va_error_rate") {
    if (!parse_double(val, cfg.faults.va_error_rate)) return bad();
  } else if (key == "sa_error_rate") {
    if (!parse_double(val, cfg.faults.sa_error_rate)) return bad();
  } else if (key == "rtx_error_rate") {
    if (!parse_double(val, cfg.faults.rtx_error_rate)) return bad();
  } else if (key == "handshake_error_rate") {
    if (!parse_double(val, cfg.faults.handshake_error_rate)) return bad();
  } else if (key == "duplicate_rtx_buffers") {
    if (!parse_bool(val, cfg.duplicate_rtx_buffers)) return bad();
  } else if (key == "tmr_handshaking") {
    if (!parse_bool(val, cfg.tmr_handshaking)) return bad();
  } else if (key == "deadlock_recovery") {
    if (!parse_bool(val, cfg.deadlock.enable_recovery)) return bad();
  } else if (key == "probe_threshold") {
    if (!parse_u64(val, cfg.deadlock.probe_threshold)) return bad();
  } else if (key == "probe_backoff") {
    if (!parse_u64(val, cfg.deadlock.probe_backoff)) return bad();
  } else if (key == "probe_timeout") {
    if (!parse_u64(val, cfg.deadlock.probe_timeout)) return bad();
  } else if (key == "probe_ttl") {
    int ttl = 0;
    if (!parse_int(val, ttl) || ttl < 0) return bad();
    cfg.deadlock.probe_ttl = static_cast<std::uint32_t>(ttl);
  } else if (key == "fallback_probe_failures") {
    if (!parse_int(val, cfg.deadlock.fallback_probe_failures)) return bad();
  } else if (key == "exit_block_window") {
    if (!parse_u64(val, cfg.deadlock.exit_block_window)) return bad();
  } else if (key == "dead_link") {
    // "node:dir" with dir in {N,E,S,W}.
    const auto colon = val.find(':');
    if (colon == std::string::npos || colon + 2 != val.size()) return bad();
    int node = 0;
    if (!parse_int(val.substr(0, colon), node) || node < 0) return bad();
    Direction d;
    switch (val[colon + 1]) {
      case 'N': case 'n': d = Direction::kNorth; break;
      case 'E': case 'e': d = Direction::kEast; break;
      case 'S': case 's': d = Direction::kSouth; break;
      case 'W': case 'w': d = Direction::kWest; break;
      default: return bad();
    }
    cfg.dead_links.emplace_back(static_cast<NodeId>(node), d);
  } else if (key == "dead_router") {
    int node = 0;
    if (!parse_int(val, node) || node < 0) return bad();
    cfg.dead_routers.push_back(static_cast<NodeId>(node));
  } else if (key == "link_escalation_threshold") {
    if (!parse_int(val, cfg.faults.link_escalation_threshold)) return bad();
  } else if (key == "storm_kill") {
    // "cycle:node:dir" with dir in {N,E,S,W}.
    const auto c1 = val.find(':');
    const auto c2 = c1 == std::string::npos ? std::string::npos
                                            : val.find(':', c1 + 1);
    if (c2 == std::string::npos || c2 + 2 != val.size()) return bad();
    SimConfig::LinkKill k;
    if (!parse_u64(val.substr(0, c1), k.at)) return bad();
    int node = 0;
    if (!parse_int(val.substr(c1 + 1, c2 - c1 - 1), node) || node < 0) {
      return bad();
    }
    k.node = static_cast<NodeId>(node);
    switch (val[c2 + 1]) {
      case 'N': case 'n': k.dir = Direction::kNorth; break;
      case 'E': case 'e': k.dir = Direction::kEast; break;
      case 'S': case 's': k.dir = Direction::kSouth; break;
      case 'W': case 'w': k.dir = Direction::kWest; break;
      default: return bad();
    }
    cfg.storm_kills.push_back(k);
  } else if (key == "workload") {
    if (val.empty()) return bad();
    cfg.workload_file = val;
  } else if (key == "link_stats") {
    if (!parse_bool(val, cfg.link_stats)) return bad();
  } else if (key == "run_to_drain") {
    if (!parse_bool(val, cfg.run_to_drain)) return bad();
  } else if (key == "adaptive_faults") {
    if (!parse_bool(val, cfg.adaptive_faults)) return bad();
  } else if (key == "check_invariants") {
    if (!parse_bool(val, cfg.check_invariants)) return bad();
  } else if (key == "reference_router") {
    if (!parse_bool(val, cfg.use_reference_router)) return bad();
  } else if (key == "test_mutation") {
    cfg.test_mutation = val;
  } else if (key == "kernel") {
    if (val == "scan") {
      cfg.force_scan_kernel = true;
    } else if (val == "event") {
      cfg.force_scan_kernel = false;
    } else {
      return bad();
    }
  } else if (key == "seed") {
    if (!parse_u64(val, cfg.seed)) return bad();
  } else if (key == "warmup_messages") {
    if (!parse_u64(val, cfg.warmup_messages)) return bad();
  } else if (key == "total_messages") {
    if (!parse_u64(val, cfg.total_messages)) return bad();
  } else if (key == "max_cycles") {
    if (!parse_u64(val, cfg.max_cycles)) return bad();
  } else {
    return "unknown config key: " + key;
  }
  return std::nullopt;
}

std::optional<std::string> apply_overrides(
    SimConfig& cfg, const std::vector<std::string>& assignments) {
  for (const auto& a : assignments) {
    if (auto err = apply_override(cfg, a)) return err;
  }
  return std::nullopt;
}

}  // namespace ftnoc

#pragma once
// Lightweight runtime checking macros.
//
// FTNOC_CHECK is always on (simulation correctness depends on these
// invariants; the cost is negligible relative to the allocators).
// FTNOC_DCHECK compiles away in NDEBUG builds.

#include <cstdio>
#include <cstdlib>

namespace ftnoc::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr) {
  std::fprintf(stderr, "FTNOC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace ftnoc::detail

#define FTNOC_CHECK(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::ftnoc::detail::check_failed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (false)

#ifdef NDEBUG
#define FTNOC_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define FTNOC_DCHECK(expr) FTNOC_CHECK(expr)
#endif

#include "common/log.hpp"

#include <cstdlib>

namespace ftnoc {
namespace {

LogLevel initial_level() {
  // Backwards-compatible debug hook: FTNOC_DBG in the environment enables
  // the protocol traces (historically an ad-hoc fprintf switch in Router).
  if (std::getenv("FTNOC_DBG") != nullptr) return LogLevel::kTrace;
  return LogLevel::kOff;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kTrace: return "T";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

}  // namespace

namespace detail {
LogLevel g_log_level = initial_level();

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[ftnoc %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

void set_log_level(LogLevel level) {
  detail::g_log_level = level;
}

}  // namespace ftnoc

#include "common/log.hpp"

namespace ftnoc {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kTrace: return "T";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

LogLevel log_level() {
  return g_level;
}

void set_log_level(LogLevel level) {
  g_level = level;
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[ftnoc %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace ftnoc

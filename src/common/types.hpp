#pragma once
// Basic value types shared by every ftnoc subsystem.

#include <cstdint>
#include <string>

namespace ftnoc {

/// Simulation time, in router clock cycles.
using Cycle = std::uint64_t;

/// Flat node identifier in a topology (0 .. num_nodes-1).
using NodeId = std::uint16_t;

/// Packet identifier, unique per simulation run.
using PacketId = std::uint64_t;

/// Index of a virtual channel within a physical channel.
using VcId = std::uint8_t;

/// Index of a physical port on a router.
using PortId = std::uint8_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xFFFF;

/// Sentinel for "no port".
inline constexpr PortId kInvalidPort = 0xFF;

/// Sentinel for "no VC".
inline constexpr VcId kInvalidVc = 0xFF;

/// Physical directions of a 2-D mesh router. `kLocal` is the PE port.
/// The numeric values are used directly as port indices.
enum class Direction : std::uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kLocal = 4,
};

inline constexpr int kNumDirections = 5;

/// Returns the direction a flit arriving from `d` entered through
/// (i.e. the port on the receiving router facing back at the sender).
constexpr Direction opposite(Direction d) {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kWest: return Direction::kEast;
    case Direction::kLocal: return Direction::kLocal;
  }
  return Direction::kLocal;
}

inline const char* to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "N";
    case Direction::kEast: return "E";
    case Direction::kSouth: return "S";
    case Direction::kWest: return "W";
    case Direction::kLocal: return "L";
  }
  return "?";
}

/// Integer coordinates of a node in a 2-D mesh/torus.
struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

inline std::string to_string(const Coord& c) {
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

}  // namespace ftnoc

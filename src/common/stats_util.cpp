#include "common/stats_util.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ftnoc {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStat::reset() {
  *this = RunningStat{};
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const {
  return std::sqrt(variance());
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0) {
  FTNOC_CHECK(bucket_width > 0.0);
  FTNOC_CHECK(num_buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0) x = 0;
  const auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  total_ = 0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the sample we are after. q=0 asks for the minimum,
  // i.e. rank 1 (ceil(0) = 0 would otherwise select the first bucket even
  // when it is empty).
  const auto target = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(total_))));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Midpoint of the containing bucket: the upper edge over-reports by
      // half a bucket on average for values uniform within the bucket.
      return (static_cast<double>(i) + 0.5) * width_;
    }
  }
  // The target rank lies in the overflow bucket, which has no upper edge;
  // the tightest bounded estimate is its lower edge (the range end).
  return width_ * static_cast<double>(buckets_.size());
}

double mean_ci_halfwidth(const RunningStat& s, double z) {
  if (s.count() < 2) return std::numeric_limits<double>::infinity();
  return z * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

RateInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double z) {
  RateInterval r;
  if (trials == 0) return r;  // Vacuous [0, 1].
  // Callers can feed transiently-inconsistent counts (e.g. ejections
  // overtaking creations when a run stops mid-retransmit); clamp rather
  // than abort so an estimate is always defensible.
  successes = std::min(successes, trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  r.rate = p;
  // At the extremes center == half analytically, but the two expressions
  // round differently; snap to the exact bound so the interval always
  // contains p.
  r.low = successes == 0 ? 0.0 : std::max(0.0, center - half);
  r.high = successes == trials ? 1.0 : std::min(1.0, center + half);
  return r;
}

void CounterSet::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

}  // namespace ftnoc

#pragma once
// Deadlock detection & recovery protocol (paper §3.2).
//
// Detection is by probing (§3.2.2): a VC blocked for more than Cthres
// cycles launches a compact probe along the suspected dependency chain.
// Rules 1-4 of the paper are implemented by DeadlockAgent; the router feeds
// it blocked-status observations and delivers/receives the signals.
//
//   Rule 1: blocked > Cthres  -> send probe to the next node, naming the
//           VC buffer the suspect flit is waiting on.
//   Rule 2: a node receiving a probe forwards it iff the named buffer is
//           also blocked there (or the node is already in recovery mode),
//           rewriting the VC identifier; otherwise it discards the probe.
//   Rule 3: an activation signal is discarded unless a probe from the same
//           sender was seen before.
//   Rule 4: a valid activation received while waiting for one's own probe
//           switches the node to recovery mode; the node's own returning
//           probe is then discarded.
//
// A probe that returns to its origin proves a cyclic chain of blocked
// buffers -> genuine deadlock, no false positives. The origin then sends an
// activation around the same cycle; each node that relayed the probe enters
// recovery mode, in which it absorbs blocked flits into its (idle)
// retransmission buffers to create slack (Figure 10).
//
// Eq. (1) gives the buffer lower bound for guaranteed recovery:
//   B2 = sum_i (T_i + R_i)  >  M * N
// with M flits/packet, N the max number of distinct packets a transmission
// buffer can hold times nodes... see `recovery_buffer_bound_ok`.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ftnoc {

/// A probe travelling the suspected deadlock cycle. `in_port`/`in_vc` name
/// the buffer to inspect at the receiving node (rewritten hop by hop).
struct ProbeSignal {
  NodeId origin = kInvalidNode;
  std::uint32_t probe_id = 0;
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;
  /// Hops travelled; routers drop probes past their TTL so a probe cannot
  /// circulate forever inside a cycle that excludes its origin.
  std::uint32_t hops = 0;
};

/// Activation travelling the same cycle after the probe returned.
struct ActivationSignal {
  NodeId origin = kInvalidNode;
  std::uint32_t probe_id = 0;
};

/// What a node should do with an incoming probe (Rule 2).
enum class ProbeAction : std::uint8_t {
  kDiscard,        ///< Named buffer is not blocked here.
  kForward,        ///< Forward with rewritten target.
  kReturnToOrigin, ///< The probe arrived back at its origin: deadlock!
};

/// Per-router protocol agent.
class DeadlockAgent {
 public:
  DeadlockAgent(NodeId self, Cycle probe_threshold, Cycle probe_backoff,
                Cycle probe_timeout = 128);

  // --- Rule 1 -----------------------------------------------------------
  /// Whether a VC blocked for `blocked_cycles` should launch a probe now.
  bool should_probe(Cycle blocked_cycles, Cycle now) const;
  /// Mints a new probe originating here; remembers it as outstanding.
  ProbeSignal make_probe(PortId target_port, VcId target_vc, Cycle now);

  // --- Rule 2 -----------------------------------------------------------
  /// Classifies an incoming probe. `target_blocked` is whether the named
  /// buffer is blocked at this node (the router determines this), and
  /// recovery mode counts as blocked per Rule 2.
  ProbeAction on_probe(const ProbeSignal& p, bool target_blocked) const;
  /// Records that a probe was seen and forwarded (needed for Rule 3 and to
  /// route the later activation along the same chain).
  void remember_forwarded_probe(const ProbeSignal& p, PortId forwarded_to,
                                PortId next_in_port, VcId next_in_vc);

  // --- Probe return / activation ----------------------------------------
  /// The origin's own probe came back. Returns true if it should trigger
  /// an activation (false if recovery was already activated by a peer —
  /// Rule 4 says the stale probe is discarded).
  bool on_probe_returned(const ProbeSignal& p);

  /// Rule 3/4: handles an incoming activation. Returns the output port to
  /// forward the activation to (following the remembered probe chain), or
  /// nullopt if the activation is discarded or terminates here.
  /// Sets recovery mode as a side effect when the activation is valid.
  std::optional<PortId> on_activation(const ActivationSignal& a);

  /// The origin's activation completed the loop: the origin itself enters
  /// recovery mode ("the sender node switches to the deadlock recovery
  /// mode after the activation signal returns").
  void on_activation_returned(const ActivationSignal& a);

  // --- Recovery mode ----------------------------------------------------
  bool in_recovery() const { return recovery_mode_; }
  void enter_recovery();
  void exit_recovery();

  bool waiting_for_probe() const { return outstanding_.has_value(); }
  /// Id of the in-flight probe, if any (routers GC per-probe bookkeeping
  /// for every id except this one — a live probe's return still needs it).
  const std::optional<std::uint32_t>& outstanding_probe() const {
    return outstanding_;
  }
  NodeId self() const { return self_; }
  Cycle probe_threshold() const { return probe_threshold_; }
  Cycle probe_timeout() const { return probe_timeout_; }

  /// Consecutive probes that expired unreturned since the last local
  /// progress — the trigger for the fallback self-recovery (a dependency
  /// chain ending in a cycle the origin is not part of never returns a
  /// probe).
  int failed_probes() const { return failed_probes_; }
  /// The router observed local forward progress; blocked-ness so far was
  /// congestion, not deadlock.
  void note_progress() { failed_probes_ = 0; }

  // Accounting.
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probes_discarded() const { return probes_discarded_; }
  std::uint64_t deadlocks_confirmed() const { return deadlocks_confirmed_; }
  std::uint64_t recoveries_entered() const { return recoveries_entered_; }

 private:
  struct SeenProbe {
    NodeId origin;
    std::uint32_t probe_id;
    PortId forwarded_to;
    PortId next_in_port;
    VcId next_in_vc;
  };

  const SeenProbe* find_seen(NodeId origin, std::uint32_t id) const;

  NodeId self_;
  Cycle probe_threshold_;
  Cycle probe_backoff_;
  Cycle probe_timeout_;
  Cycle outstanding_since_ = 0;
  Cycle last_probe_cycle_ = 0;
  bool ever_probed_ = false;
  std::uint32_t next_probe_id_ = 1;
  std::optional<std::uint32_t> outstanding_;  ///< Our in-flight probe id.
  int failed_probes_ = 0;
  bool recovery_mode_ = false;
  std::vector<SeenProbe> seen_;  ///< Probes relayed through this node.

  mutable std::uint64_t probes_discarded_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t deadlocks_confirmed_ = 0;
  std::uint64_t recoveries_entered_ = 0;
};

/// Eq. (1): with n nodes in the deadlock, M flits per packet, transmission
/// buffer sizes T_i and retransmission buffer sizes R_i, recovery is
/// guaranteed iff  sum_i (T_i + R_i) > M * sum_i ceil(T_i / M).
bool recovery_buffer_bound_ok(const std::vector<int>& tx_sizes,
                              const std::vector<int>& rtx_sizes,
                              int flits_per_packet);

}  // namespace ftnoc

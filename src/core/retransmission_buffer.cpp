#include "core/retransmission_buffer.hpp"

#include "common/check.hpp"

namespace ftnoc {

RetransmissionBuffer::RetransmissionBuffer(int depth, Cycle nack_window)
    : depth_(depth), nack_window_(nack_window) {
  FTNOC_CHECK(depth >= 1);
  FTNOC_CHECK(nack_window >= 1);
}

void RetransmissionBuffer::record_transmission(const Flit& f, Cycle now) {
  // If the transmitted flit is the front of the pending region, this
  // transmission consumes it (replay or absorbed-flit send).
  if (!pending_.empty() && pending_[0].flit.packet_id == f.packet_id &&
      pending_[0].flit.seq == f.seq) {
    pending_.erase_at(0);
  }
  if (occupancy() >= depth_) {
    // Barrel-shifter retirement: the oldest sent flit falls off. Callers
    // process NACKs before transmitting, so its NACK window has passed.
    FTNOC_CHECK(!sent_.empty());
    FTNOC_DCHECK(now - sent_[0].sent_at >= nack_window_);
    sent_.erase_at(0);
  }
  sent_.push_back({f, now});
}

void RetransmissionBuffer::retire_expired(Cycle now) {
  while (!sent_.empty() && now - sent_[0].sent_at > nack_window_) {
    sent_.erase_at(0);
  }
}

int RetransmissionBuffer::on_nack() {
  const int n = static_cast<int>(sent_.size());
  // Preserve order: sent flits are older than anything already pending.
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    pending_.insert_at(i, {sent_[i].flit, /*credit_held=*/true});
  }
  sent_.clear();
  return n;
}

const Flit& RetransmissionBuffer::front_pending() const {
  FTNOC_CHECK(!pending_.empty());
  return pending_[0].flit;
}

bool RetransmissionBuffer::front_pending_credit_held() const {
  FTNOC_CHECK(!pending_.empty());
  return pending_[0].credit_held;
}

Flit RetransmissionBuffer::pop_pending() {
  FTNOC_CHECK(!pending_.empty());
  Flit f = pending_[0].flit;
  pending_.erase_at(0);
  return f;
}

void RetransmissionBuffer::absorb(const Flit& f) {
  FTNOC_CHECK(free_slots() > 0);
  pending_.push_back({f, /*credit_held=*/false});
}

void RetransmissionBuffer::push_pending_back(const Flit& f) {
  FTNOC_CHECK(free_slots() > 0);
  pending_.push_back({f, /*credit_held=*/true});
}

void RetransmissionBuffer::absorb_as_owner(const Flit& f,
                                           PacketId owner_pid) {
  FTNOC_CHECK(free_slots() > 0);
  std::size_t i = 0;
  while (i < pending_.size() && pending_[i].flit.packet_id == owner_pid) ++i;
  pending_.insert_at(i, {f, /*credit_held=*/false});
}

bool RetransmissionBuffer::contains_packet(PacketId pid) const {
  for (const auto& e : sent_) {
    if (e.flit.packet_id == pid) return true;
  }
  for (const auto& e : pending_) {
    if (e.flit.packet_id == pid) return true;
  }
  return false;
}

bool RetransmissionBuffer::has_pending_for(PacketId pid) const {
  for (const auto& e : pending_) {
    if (e.flit.packet_id == pid) return true;
  }
  return false;
}

bool RetransmissionBuffer::pending_contains(PacketId pid,
                                            std::uint8_t seq) const {
  for (const auto& e : pending_) {
    if (e.flit.packet_id == pid && e.flit.seq == seq) return true;
  }
  return false;
}

void RetransmissionBuffer::clear() {
  sent_.clear();
  pending_.clear();
}

void RetransmissionBuffer::tick_utilization() {
  ++util_cycles_;
  util_occupied_slot_cycles_ += static_cast<std::uint64_t>(occupancy());
}

double RetransmissionBuffer::mean_utilization() const {
  if (util_cycles_ == 0) return 0.0;
  return static_cast<double>(util_occupied_slot_cycles_) /
         (static_cast<double>(util_cycles_) * static_cast<double>(depth_));
}

}  // namespace ftnoc

#include "core/retransmission_buffer.hpp"

#include "common/check.hpp"

namespace ftnoc {

RetransmissionBuffer::RetransmissionBuffer(int depth, Cycle nack_window)
    : depth_(depth), nack_window_(nack_window) {
  FTNOC_CHECK(depth >= 1);
  FTNOC_CHECK(nack_window >= 1);
}

void RetransmissionBuffer::record_transmission(const Flit& f, Cycle now) {
  // If the transmitted flit is the front of the pending region, this
  // transmission consumes it (replay or absorbed-flit send).
  if (!pending_.empty() && pending_.front().flit.packet_id == f.packet_id &&
      pending_.front().flit.seq == f.seq) {
    pending_.pop_front();
  }
  if (occupancy() >= depth_) {
    // Barrel-shifter retirement: the oldest sent flit falls off. Callers
    // process NACKs before transmitting, so its NACK window has passed.
    FTNOC_CHECK(!sent_.empty());
    FTNOC_DCHECK(now - sent_.front().sent_at >= nack_window_);
    sent_.pop_front();
  }
  sent_.push_back({f, now});
}

void RetransmissionBuffer::retire_expired(Cycle now) {
  while (!sent_.empty() && now - sent_.front().sent_at > nack_window_) {
    sent_.pop_front();
  }
}

int RetransmissionBuffer::on_nack() {
  const int n = static_cast<int>(sent_.size());
  // Preserve order: sent flits are older than anything already pending.
  while (!sent_.empty()) {
    pending_.push_front({sent_.back().flit, /*credit_held=*/true});
    sent_.pop_back();
  }
  return n;
}

const Flit& RetransmissionBuffer::front_pending() const {
  FTNOC_CHECK(!pending_.empty());
  return pending_.front().flit;
}

bool RetransmissionBuffer::front_pending_credit_held() const {
  FTNOC_CHECK(!pending_.empty());
  return pending_.front().credit_held;
}

Flit RetransmissionBuffer::pop_pending() {
  FTNOC_CHECK(!pending_.empty());
  Flit f = pending_.front().flit;
  pending_.pop_front();
  return f;
}

void RetransmissionBuffer::absorb(const Flit& f) {
  FTNOC_CHECK(free_slots() > 0);
  pending_.push_back({f, /*credit_held=*/false});
}

void RetransmissionBuffer::push_pending_back(const Flit& f) {
  FTNOC_CHECK(free_slots() > 0);
  pending_.push_back({f, /*credit_held=*/true});
}

void RetransmissionBuffer::absorb_as_owner(const Flit& f,
                                           PacketId owner_pid) {
  FTNOC_CHECK(free_slots() > 0);
  auto it = pending_.begin();
  while (it != pending_.end() && it->flit.packet_id == owner_pid) ++it;
  pending_.insert(it, {f, /*credit_held=*/false});
}

bool RetransmissionBuffer::contains_packet(PacketId pid) const {
  for (const auto& e : sent_) {
    if (e.flit.packet_id == pid) return true;
  }
  for (const auto& e : pending_) {
    if (e.flit.packet_id == pid) return true;
  }
  return false;
}

bool RetransmissionBuffer::has_pending_for(PacketId pid) const {
  for (const auto& e : pending_) {
    if (e.flit.packet_id == pid) return true;
  }
  return false;
}

void RetransmissionBuffer::clear() {
  sent_.clear();
  pending_.clear();
}

void RetransmissionBuffer::tick_utilization() {
  ++util_cycles_;
  util_occupied_slot_cycles_ += static_cast<std::uint64_t>(occupancy());
}

double RetransmissionBuffer::mean_utilization() const {
  if (util_cycles_ == 0) return 0.0;
  return static_cast<double>(util_occupied_slot_cycles_) /
         (static_cast<double>(util_cycles_) * static_cast<double>(depth_));
}

}  // namespace ftnoc

#include "core/allocation_comparator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ftnoc {

AllocationComparator::AllocationComparator(int num_ports, int num_vcs)
    : num_ports_(num_ports), num_vcs_(num_vcs) {
  FTNOC_CHECK(num_ports >= 1 && num_ports <= 8);
  FTNOC_CHECK(num_vcs >= 1 && num_vcs <= 16);
}

AcReport AllocationComparator::check(
    const std::vector<RoutingStateEntry>& routing,
    const std::vector<VaStateEntry>& va,
    const std::vector<SaStateEntry>& sa) const {
  AcReport report;
  auto note = [&report](AcErrorKind k) {
    ++report.kind_counts[static_cast<int>(k)];
  };
  auto flag_va = [&](std::size_t i, AcErrorKind k) {
    if (std::find(report.bad_va_entries.begin(), report.bad_va_entries.end(),
                  i) == report.bad_va_entries.end()) {
      report.bad_va_entries.push_back(i);
    }
    note(k);
  };
  auto flag_sa = [&](std::size_t i, AcErrorKind k) {
    if (std::find(report.bad_sa_entries.begin(), report.bad_sa_entries.end(),
                  i) == report.bad_sa_entries.end()) {
      report.bad_sa_entries.push_back(i);
    }
    note(k);
  };

  // --- Check (2): invalid output VC / output port ids. ---
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i].out_port >= num_ports_ || va[i].out_vc >= num_vcs_) {
      flag_va(i, AcErrorKind::kVaInvalidVc);
    }
  }

  // --- Check (1): VA assignment must agree with the routing function. ---
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i].out_port >= num_ports_) continue;  // Already flagged above.
    auto rt = std::find_if(routing.begin(), routing.end(),
                           [&](const RoutingStateEntry& r) {
                             return r.input_vc == va[i].input_vc;
                           });
    // An allocation with no routing row at all is itself erroneous: the VA
    // acted on a request the RT never produced.
    if (rt == routing.end() ||
        (rt->valid_ports & (1u << va[i].out_port)) == 0) {
      flag_va(i, AcErrorKind::kVaRoutingMismatch);
    }
  }

  // --- Check (2), duplicates: one output VC paired with two input VCs. ---
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i].out_port >= num_ports_ || va[i].out_vc >= num_vcs_) continue;
    for (std::size_t j = i + 1; j < va.size(); ++j) {
      if (va[i].out_port == va[j].out_port && va[i].out_vc == va[j].out_vc) {
        flag_va(i, AcErrorKind::kVaDuplicateVc);
        flag_va(j, AcErrorKind::kVaDuplicateVc);
      }
    }
  }

  // --- Check (3): SA duplicate outputs and multicast. ---
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].out_port >= num_ports_ || sa[i].in_port >= num_ports_) {
      flag_sa(i, AcErrorKind::kSaDuplicateOutput);
      continue;
    }
    for (std::size_t j = i + 1; j < sa.size(); ++j) {
      if (sa[i].out_port == sa[j].out_port) {
        flag_sa(i, AcErrorKind::kSaDuplicateOutput);
        flag_sa(j, AcErrorKind::kSaDuplicateOutput);
      }
      if (sa[i].in_port == sa[j].in_port) {
        flag_sa(i, AcErrorKind::kSaMulticast);
        flag_sa(j, AcErrorKind::kSaMulticast);
      }
    }
  }

  return report;
}

}  // namespace ftnoc

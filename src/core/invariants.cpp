#include "core/invariants.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "common/log.hpp"
#include "core/deadlock.hpp"

namespace ftnoc {

const char* to_string(InvariantId id) {
  switch (id) {
    case InvariantId::kFlitConservation: return "flit-conservation";
    case InvariantId::kCreditConservation: return "credit-conservation";
    case InvariantId::kWorkMaskAgreement: return "work-mask-agreement";
    case InvariantId::kOccupancyCounter: return "occupancy-counter";
    case InvariantId::kStagedRegister: return "staged-register";
    case InvariantId::kSequenceMonotonic: return "sequence-monotonic";
    case InvariantId::kProbeLifecycle: return "probe-lifecycle";
    case InvariantId::kRecoveryBufferBound: return "recovery-buffer-bound";
    case InvariantId::kDeadLinkTraversal: return "dead-link-traversal";
    case InvariantId::kSharedPoolConservation:
      return "shared-pool-conservation";
    case InvariantId::kMisrouteBound: return "misroute-bound";
  }
  return "?";
}

InvariantMonitor::InvariantMonitor(const SimConfig& cfg) : cfg_(cfg) {
  const std::size_t nodes = static_cast<std::size_t>(cfg.num_nodes());
  streams_.resize(nodes * static_cast<std::size_t>(kNumDirections) * 8);
  minted_.resize(nodes);
  confirmed_.resize(nodes);
  relayed_.resize(nodes * nodes);
  misroute_bound_ = 4 * static_cast<std::uint32_t>(cfg.num_nodes());
  // A lost NACK (unprotected handshake upset) legitimately produces seq
  // gaps and stray flits at a receiver, and an unprotected VA upset can
  // hand two packets the same output VC (§4.3 scenarios (2)/(3)),
  // interleaving them on the downstream input VC by design. Only without
  // either process is receive order a checkable invariant. FEC/E2E/none
  // never drop flits at a link, so NACK loss is moot for them.
  const bool nacks_reliable = cfg.tmr_handshaking ||
                              cfg.faults.handshake_error_rate <= 0.0;
  const bool va_interleaving = !cfg.enable_ac &&
                               cfg.faults.va_error_rate > 0.0;
  seq_check_ = (cfg.protection != LinkProtection::kHbh || nacks_reliable) &&
               !va_interleaving;
  // A dropped flit's credit is unaccounted between the receiver-side drop
  // and the sender-side NACK rollback, and an unprotected handshake upset
  // loses a credit pulse outright — either process turns the per-link
  // credit sum from an equality into an upper bound. An HBH receiver
  // drops on *any* wire corruption, which crosstalk is only one source
  // of: an unprotected SA-grant upset wrecks the flit in the crossbar,
  // and a non-duplicated retransmission-buffer upset wrecks the stored
  // copy that a NACK later replays.
  const bool wire_corruption =
      cfg.faults.link_error_rate > 0.0 ||
      (!cfg.enable_ac && cfg.faults.sa_error_rate > 0.0) ||
      (!cfg.duplicate_rtx_buffers && cfg.faults.rtx_error_rate > 0.0);
  const bool hbh_drops =
      cfg.protection == LinkProtection::kHbh && wire_corruption;
  const bool handshake_loss = !cfg.tmr_handshaking &&
                              cfg.faults.handshake_error_rate > 0.0;
  strict_credits_ = !hbh_drops && !handshake_loss;
}

void InvariantMonitor::fail(InvariantId id, Cycle now, NodeId router,
                            int port, int vc, const std::string& detail) {
  const std::string line =
      "invariant violation [" + std::string(to_string(id)) + "] cycle=" +
      std::to_string(now) + " router=" + std::to_string(router) +
      " port=" + std::to_string(port) + " vc=" + std::to_string(vc) + ": " +
      detail;
  FTNOC_ERROR(line);
  ++violations_;
  if (first_violation_.empty()) first_violation_ = line;
  if (abort_on_violation_) {
    std::abort();
  }
}

void InvariantMonitor::check_flit_conservation(Cycle now, long long live) {
  // injected = ejected + dropped + live − restored, rearranged so both
  // sides stay non-negative.
  const long long ledger = static_cast<long long>(injected_) +
                           static_cast<long long>(restored_) -
                           static_cast<long long>(ejected_) -
                           static_cast<long long>(dropped_);
  if (ledger != live) {
    fail(InvariantId::kFlitConservation, now, kInvalidNode, -1, -1,
         "ledger expects " + std::to_string(ledger) + " live flits, state " +
             "holds " + std::to_string(live) + " (injected=" +
             std::to_string(injected_) + " ejected=" + std::to_string(ejected_) +
             " dropped=" + std::to_string(dropped_) + " restored=" +
             std::to_string(restored_) + ")");
  }
}

void InvariantMonitor::check_credit_sum(Cycle now, NodeId sender, int port,
                                        int vc, int total, int depth) {
  if (total > depth || (strict_credits_ && total != depth)) {
    fail(InvariantId::kCreditConservation, now, sender, port, vc,
         "link credit sum " + std::to_string(total) + " vs buffer depth " +
             std::to_string(depth) +
             (strict_credits_ ? " (loss-free config: must be equal)"
                              : " (lossy config: must not exceed)"));
  }
}

InvariantMonitor::StreamState& InvariantMonitor::stream(NodeId router,
                                                        int port, int vc) {
  const std::size_t idx =
      (static_cast<std::size_t>(router) * kNumDirections +
       static_cast<std::size_t>(port)) * 8 + static_cast<std::size_t>(vc);
  FTNOC_CHECK(idx < streams_.size());
  return streams_[idx];
}

void InvariantMonitor::on_flit_accepted(Cycle now, NodeId router, int port,
                                        const Flit& f) {
  if (!seq_check_) return;
  StreamState& s = stream(router, port, f.vc);
  if (is_head(f.type)) {
    if (s.open) {
      fail(InvariantId::kSequenceMonotonic, now, router, port, f.vc,
           "head of pkt" + std::to_string(f.packet_id) +
               " arrived while pkt" + std::to_string(s.pid) +
               " is still open at seq " + std::to_string(s.next_seq));
    }
    s.pid = f.packet_id;
    s.next_seq = 0;
  } else if (!s.open) {
    fail(InvariantId::kSequenceMonotonic, now, router, port, f.vc,
         "body/tail flit pkt" + std::to_string(f.packet_id) + ".seq" +
             std::to_string(f.seq) + " with no open stream");
  } else if (f.packet_id != s.pid) {
    fail(InvariantId::kSequenceMonotonic, now, router, port, f.vc,
         "flit of pkt" + std::to_string(f.packet_id) +
             " interleaved into open pkt" + std::to_string(s.pid));
  }
  if (f.seq != s.next_seq) {
    fail(InvariantId::kSequenceMonotonic, now, router, port, f.vc,
         "pkt" + std::to_string(f.packet_id) + " delivered seq " +
             std::to_string(f.seq) + ", expected " +
             std::to_string(s.next_seq) +
             " (replay reordered or drop window admitted a stale flit)");
  }
  s.open = !is_tail(f.type);
  s.next_seq = static_cast<std::uint8_t>(f.seq + 1);
  if (!s.open) s.pid = 0;
}

void InvariantMonitor::remember(RecentIds& r, std::uint32_t id) {
  if (contains(r, id)) return;
  r.ids.push_back(id);
  if (r.ids.size() > kMaxRecentProbes) r.ids.erase(r.ids.begin());
}

bool InvariantMonitor::contains(const RecentIds& r, std::uint32_t id) {
  for (const std::uint32_t x : r.ids) {
    if (x == id) return true;
  }
  return false;
}

void InvariantMonitor::on_probe_minted(NodeId origin, std::uint32_t probe_id) {
  minted_[origin] = {probe_id, true};
}

void InvariantMonitor::on_probe_forwarded(NodeId relay, NodeId origin,
                                          std::uint32_t probe_id) {
  remember(relayed_[static_cast<std::size_t>(relay) *
                        static_cast<std::size_t>(cfg_.num_nodes()) +
                    origin],
           probe_id);
}

void InvariantMonitor::on_probe_confirmed(Cycle now, NodeId origin,
                                          std::uint32_t probe_id) {
  const ProbeRecord& m = minted_[origin];
  if (!m.valid || m.id != probe_id) {
    fail(InvariantId::kProbeLifecycle, now, origin, -1, -1,
         "probe id=" + std::to_string(probe_id) +
             " confirmed at origin, but the latest minted probe is " +
             (m.valid ? "id=" + std::to_string(m.id) : "absent"));
  }
  remember(confirmed_[origin], probe_id);
}

void InvariantMonitor::on_recovery_entered(Cycle now, NodeId router,
                                           RecoveryTrigger trigger,
                                           NodeId origin,
                                           std::uint32_t probe_id,
                                           int tx_size, int rtx_size) {
  switch (trigger) {
    case RecoveryTrigger::kActivationReturned: {
      if (!contains(confirmed_[router], probe_id)) {
        fail(InvariantId::kProbeLifecycle, now, router, -1, -1,
             "origin entered recovery for probe id=" +
                 std::to_string(probe_id) +
                 " that never returned to it (no confirmation recorded)");
      }
      break;
    }
    case RecoveryTrigger::kActivationRelay: {
      if (!contains(relayed_[static_cast<std::size_t>(router) *
                                 static_cast<std::size_t>(cfg_.num_nodes()) +
                             origin],
                    probe_id)) {
        fail(InvariantId::kProbeLifecycle, now, router, -1, -1,
             "router entered recovery on activation (origin=" +
                 std::to_string(origin) + ", id=" + std::to_string(probe_id) +
                 ") for a probe it never relayed");
      }
      break;
    }
    case RecoveryTrigger::kFallback:
      if (cfg_.deadlock.fallback_probe_failures <= 0) {
        fail(InvariantId::kProbeLifecycle, now, router, -1, -1,
             "fallback recovery fired but the fallback is disabled");
      }
      break;
  }

  // Eq. (1) with the engaging router's actual buffer sizes. The static
  // validate() gate makes this unreachable for uniform configs; checking
  // it here keeps the guarantee honest if per-node sizing ever lands.
  // Under DAMQ the per-VC transmission buffer is elastic — a VC can
  // legally absorb into its reserve plus the whole shared region — so the
  // bound is evaluated at the same effective depth T_eff = K + V*(T - K)
  // that validate() gates on (DESIGN.md §4.11).
  int t_eff = tx_size;
  if (cfg_.buffer_policy == BufferPolicyKind::kDamq) {
    t_eff = cfg_.damq_reserve_slots +
            cfg_.num_vcs * (tx_size - cfg_.damq_reserve_slots);
  }
  if (!recovery_buffer_bound_ok({t_eff}, {rtx_size}, cfg_.packet_length)) {
    fail(InvariantId::kRecoveryBufferBound, now, router, -1, -1,
         "recovery engaged with T=" + std::to_string(t_eff) + " R=" +
             std::to_string(rtx_size) + " M=" +
             std::to_string(cfg_.packet_length) +
             " violating Eq. (1): sum(T+R) > M*sum(ceil(T/M))");
  }
}

void InvariantMonitor::on_misroute(Cycle now, NodeId router, PacketId pid) {
  const std::uint32_t count = ++misroutes_[pid];
  if (count > misroute_bound_) {
    fail(InvariantId::kMisrouteBound, now, router, -1, -1,
         "packet " + std::to_string(pid) + " detoured " +
             std::to_string(count) + " times (bound " +
             std::to_string(misroute_bound_) +
             "): the escape tier is livelocking it");
  }
}

}  // namespace ftnoc

#include "core/error_check_unit.hpp"

namespace ftnoc {

FlitCheck ErrorCheckUnit::check(Flit& f) {
  const ecc::DecodeResult r = ecc::decode(f.codeword);
  switch (r.status) {
    case ecc::DecodeStatus::kClean:
      ++clean_;
      return FlitCheck::kClean;
    case ecc::DecodeStatus::kCorrected:
      ++corrected_;
      f.codeword = ecc::encode(r.data);
      return FlitCheck::kCorrected;
    case ecc::DecodeStatus::kUncorrectable:
      ++uncorrectable_;
      return FlitCheck::kUncorrectable;
  }
  return FlitCheck::kClean;
}

void ErrorCheckUnit::reset_counters() {
  clean_ = corrected_ = uncorrectable_ = 0;
}

}  // namespace ftnoc

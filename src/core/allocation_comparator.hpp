#pragma once
// The Allocation Comparator (AC) unit — Figure 12 of the paper.
//
// A purely combinational checker that cross-compares the state tables of
// the Routing unit (RT), VC Allocator (VA) and Switch Allocator (SA) once
// per cycle and flags logic soft errors:
//
//   (1) a VA-assigned output VC whose physical channel disagrees with the
//       routing function's valid set            -> scenario 4(b), §4.1
//   (2) invalid or duplicate output-VC assignments in the VA state
//       -> scenarios (1)-(3), §4.1
//   (3) invalid / duplicate / multicast grants in the SA state -> §4.3
//
// All three comparisons happen "in parallel, within one clock cycle"; a
// raised flag invalidates the previous cycle's allocation, costing exactly
// one cycle of re-arbitration. The unit never corrects — it detects, and
// the allocators redo the work.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ftnoc {

/// One row of the routing-unit state: the set of output ports the routing
/// function returned for a given input VC (the paper assumes the routing
/// function returns all VCs of one or more PCs, R => P).
struct RoutingStateEntry {
  std::uint16_t input_vc = 0;     ///< Global input VC id (port * V + vc).
  std::uint8_t valid_ports = 0;   ///< Bitmask of permitted output ports.
};

/// One row of the VA state: a wormhole pairing input VC -> output VC.
struct VaStateEntry {
  std::uint16_t input_vc = 0;  ///< Global input VC id.
  PortId out_port = kInvalidPort;
  VcId out_vc = kInvalidVc;
};

/// One row of the SA state: a crossbar grant for this cycle.
struct SaStateEntry {
  PortId in_port = kInvalidPort;
  PortId out_port = kInvalidPort;
};

/// Which check fired, for accounting.
enum class AcErrorKind : std::uint8_t {
  kVaRoutingMismatch = 0,  ///< Check (1).
  kVaInvalidVc,            ///< Check (2): out_vc >= V or out_port >= P.
  kVaDuplicateVc,          ///< Check (2): same output VC assigned twice.
  kSaDuplicateOutput,      ///< Check (3): two inputs granted one output.
  kSaMulticast,            ///< Check (3): one input granted many outputs.
  kCount,
};

struct AcReport {
  /// Indices into the checked VA vector that must be invalidated.
  std::vector<std::size_t> bad_va_entries;
  /// Indices into the checked SA vector that must be invalidated.
  std::vector<std::size_t> bad_sa_entries;
  std::uint64_t kind_counts[static_cast<int>(AcErrorKind::kCount)] = {};

  bool any_error() const {
    return !bad_va_entries.empty() || !bad_sa_entries.empty();
  }
};

class AllocationComparator {
 public:
  /// @param num_ports  P — physical channels per router.
  /// @param num_vcs    V — virtual channels per physical channel.
  AllocationComparator(int num_ports, int num_vcs);

  /// Runs the three parallel comparisons over this cycle's state tables.
  /// `routing` must contain one entry per VA entry's input VC (entries for
  /// other VCs are permitted and ignored).
  AcReport check(const std::vector<RoutingStateEntry>& routing,
                 const std::vector<VaStateEntry>& va,
                 const std::vector<SaStateEntry>& sa) const;

  int num_ports() const { return num_ports_; }
  int num_vcs() const { return num_vcs_; }

 private:
  int num_ports_;
  int num_vcs_;
};

}  // namespace ftnoc

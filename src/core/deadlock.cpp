#include "core/deadlock.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ftnoc {

DeadlockAgent::DeadlockAgent(NodeId self, Cycle probe_threshold,
                             Cycle probe_backoff, Cycle probe_timeout)
    : self_(self),
      probe_threshold_(probe_threshold),
      probe_backoff_(probe_backoff),
      probe_timeout_(probe_timeout) {
  FTNOC_CHECK(probe_threshold >= 1);
  FTNOC_CHECK(probe_timeout >= 1);
}

bool DeadlockAgent::should_probe(Cycle blocked_cycles, Cycle now) const {
  if (blocked_cycles <= probe_threshold_) return false;
  if (recovery_mode_) return false;  // Already recovering.
  if (outstanding_.has_value() &&
      now - outstanding_since_ <= probe_timeout_) {
    return false;  // One live probe at a time.
  }
  // No outstanding probe, or it was discarded along a non-deadlocked path
  // and timed out — a fresh probe may launch (subject to backoff).
  if (ever_probed_ && now < last_probe_cycle_ + probe_backoff_) return false;
  return true;
}

ProbeSignal DeadlockAgent::make_probe(PortId target_port, VcId target_vc,
                                      Cycle now) {
  if (outstanding_.has_value()) {
    // The previous probe expired unreturned.
    ++failed_probes_;
  }
  ProbeSignal p;
  p.origin = self_;
  p.probe_id = next_probe_id_++;
  p.in_port = target_port;
  p.in_vc = target_vc;
  outstanding_ = p.probe_id;
  outstanding_since_ = now;
  last_probe_cycle_ = now;
  ever_probed_ = true;
  ++probes_sent_;
  return p;
}

ProbeAction DeadlockAgent::on_probe(const ProbeSignal& p,
                                    bool target_blocked) const {
  if (p.origin == self_) {
    return ProbeAction::kReturnToOrigin;
  }
  // Rule 2: forward iff the named buffer is blocked here, or this node is
  // already in deadlock recovery mode.
  if (target_blocked || recovery_mode_) {
    return ProbeAction::kForward;
  }
  ++probes_discarded_;
  return ProbeAction::kDiscard;
}

void DeadlockAgent::remember_forwarded_probe(const ProbeSignal& p,
                                             PortId forwarded_to,
                                             PortId next_in_port,
                                             VcId next_in_vc) {
  // Refresh rather than duplicate if the same probe loops through twice
  // (cannot normally happen on a simple cycle, but is harmless to handle).
  for (auto& s : seen_) {
    if (s.origin == p.origin && s.probe_id == p.probe_id) {
      s.forwarded_to = forwarded_to;
      s.next_in_port = next_in_port;
      s.next_in_vc = next_in_vc;
      return;
    }
  }
  seen_.push_back({p.origin, p.probe_id, forwarded_to, next_in_port,
                   next_in_vc});
  // Bound the memory: ancient entries are useless once their activation
  // window has long passed.
  constexpr std::size_t kMaxSeen = 64;
  if (seen_.size() > kMaxSeen) seen_.erase(seen_.begin());
}

const DeadlockAgent::SeenProbe* DeadlockAgent::find_seen(
    NodeId origin, std::uint32_t id) const {
  for (const auto& s : seen_) {
    if (s.origin == origin && s.probe_id == id) return &s;
  }
  return nullptr;
}

bool DeadlockAgent::on_probe_returned(const ProbeSignal& p) {
  if (!outstanding_ || *outstanding_ != p.probe_id) {
    // Stale or duplicate return.
    return false;
  }
  outstanding_.reset();
  failed_probes_ = 0;
  if (recovery_mode_) {
    // Rule 4: a peer's activation got here first; discard our probe.
    return false;
  }
  ++deadlocks_confirmed_;
  return true;
}

std::optional<PortId> DeadlockAgent::on_activation(
    const ActivationSignal& a) {
  // Rule 3: only meaningful if we relayed this origin's probe earlier.
  const SeenProbe* s = find_seen(a.origin, a.probe_id);
  if (s == nullptr) {
    return std::nullopt;
  }
  // Rule 4 (and the plain case): switch to recovery mode.
  enter_recovery();
  if (outstanding_) {
    // Our own probe will be discarded when it returns (on_probe_returned
    // checks recovery_mode_). Keep it outstanding so the return is eaten.
  }
  return s->forwarded_to;
}

void DeadlockAgent::on_activation_returned(const ActivationSignal& a) {
  FTNOC_CHECK(a.origin == self_);
  enter_recovery();
}

void DeadlockAgent::enter_recovery() {
  if (!recovery_mode_) {
    recovery_mode_ = true;
    failed_probes_ = 0;
    ++recoveries_entered_;
  }
}

void DeadlockAgent::exit_recovery() {
  recovery_mode_ = false;
  // Forget relayed probes from the resolved episode so a stale activation
  // cannot re-trigger recovery spuriously.
  seen_.clear();
  outstanding_.reset();
}

bool recovery_buffer_bound_ok(const std::vector<int>& tx_sizes,
                              const std::vector<int>& rtx_sizes,
                              int flits_per_packet) {
  FTNOC_CHECK(tx_sizes.size() == rtx_sizes.size());
  FTNOC_CHECK(flits_per_packet >= 1);
  long long b2 = 0;
  long long rhs = 0;
  for (std::size_t i = 0; i < tx_sizes.size(); ++i) {
    FTNOC_CHECK(tx_sizes[i] >= 1 && rtx_sizes[i] >= 0);
    b2 += tx_sizes[i] + rtx_sizes[i];
    const long long n_i =
        (tx_sizes[i] + flits_per_packet - 1) / flits_per_packet;
    rhs += n_i;
  }
  return b2 > static_cast<long long>(flits_per_packet) * rhs;
}

}  // namespace ftnoc

#pragma once
// The paper's transmission/retransmission buffer (Figure 3): a barrel-shift
// register of depth R (default 3) attached to each output VC.
//
// Normal operation: every flit copied onto the link is also pushed into the
// "sent" region; when the buffer is full the oldest sent flit falls off the
// end and retires — by then any NACK for it has already been processed,
// since the NACK loop is link(1) + check(1) + NACK(1) = 3 cycles and NACKs
// are processed before transmissions within a cycle. Idle periods retire
// sent flits by age instead (retire_expired), so a later NACK can never
// roll back flits whose NACK window has passed.
//
// On a NACK the whole sent region — the errored flit plus the (up to R-1)
// flits the receiver dropped behind it — rolls back into the "pending"
// region and is replayed in order, oldest first (Figure 4). Replayed flits
// still own their downstream buffer slot (the credit was consumed at first
// transmission), which `credit_held` records.
//
// Deadlock recovery (paper §3.2) reuses the same storage: a blocked router
// absorbs flits from its transmission buffer into the pending region
// ("direct input" in Figure 3) with credit_held = false — they compete for
// a downstream credit when they are finally transmitted.

#include <cstddef>

#include "common/inline_vec.hpp"
#include "common/types.hpp"
#include "core/flit.hpp"

namespace ftnoc {

class RetransmissionBuffer {
 public:
  /// Default NACK window: link (1) + error check (1) + NACK
  /// propagation (1). A router with a dedicated switch-traversal stage
  /// (4-stage pipeline) adds one more in-flight cycle.
  static constexpr Cycle kDefaultNackWindow = 3;

  /// @param nack_window  cycles a flit can still be NACKed after its
  ///                     transmission was recorded.
  explicit RetransmissionBuffer(int depth,
                                Cycle nack_window = kDefaultNackWindow);

  int depth() const { return depth_; }
  int occupancy() const {
    return static_cast<int>(sent_.size() + pending_.size());
  }
  int free_slots() const { return depth_ - occupancy(); }

  bool has_pending() const { return !pending_.empty(); }
  int pending_count() const { return static_cast<int>(pending_.size()); }
  int sent_count() const { return static_cast<int>(sent_.size()); }

  /// Records that `f` was just transmitted on the link at cycle `now`.
  /// If `f` is the front pending flit this is a replay (or the transmission
  /// of an absorbed flit) and it moves from pending to sent. When the
  /// buffer is full the oldest sent flit retires (barrel-shifter semantics).
  void record_transmission(const Flit& f, Cycle now);

  /// Retires sent flits whose NACK window has passed (now - sent_at >
  /// nack_window). Call once per cycle, before processing incoming NACKs.
  void retire_expired(Cycle now);

  /// First cycle at which retire_expired(now) would retire something, or
  /// 0 when the sent region is empty. sent_at is monotone within sent_,
  /// so callers may skip retire_expired entirely before this cycle.
  Cycle next_retire_at() const {
    return sent_.empty() ? 0 : sent_[0].sent_at + nack_window_ + 1;
  }

  /// True if a transmission can be recorded at `now`: either a slot is
  /// free, or the oldest sent flit's NACK window has closed so the barrel
  /// shift retires it in the same cycle (back-to-back streaming never
  /// stalls on a depth-3 buffer).
  bool can_accept(Cycle now) const {
    if (free_slots() > 0) return true;
    return !sent_.empty() && now - sent_[0].sent_at >= nack_window_;
  }

  /// A NACK arrived: every sent-but-unretired flit must be replayed.
  /// Rolls the sent region into the front of the pending region, preserving
  /// transmission order; all rolled-back entries keep their credit.
  /// Returns the number of flits scheduled for replay.
  int on_nack();

  /// Next flit to (re)transmit.
  const Flit& front_pending() const;
  /// Whether the front pending flit already owns a downstream buffer slot.
  bool front_pending_credit_held() const;

  /// Pops the front pending flit without transmitting it (used when an
  /// absorbed flit is consumed locally, e.g. ejected at its destination).
  Flit pop_pending();

  /// Deadlock recovery: absorb a flit from the transmission buffer into the
  /// pending region (paper Figure 10, step 2). Requires a free slot.
  void absorb(const Flit& f);

  /// Absorbs a flit of the output VC's *current owner*, inserting it after
  /// the owner's existing pending flits but before any queued waiter's
  /// (the owner's wormhole completes first on the wire). Requires a free
  /// slot.
  void absorb_as_owner(const Flit& f, PacketId owner_pid);

  /// Appends a flit to the back of the pending region with its credit
  /// already held — used when a NACK squashes the 4-stage router's staged
  /// switch-traversal register (the flit consumed its credit at allocation
  /// and must still be transmitted, after the rolled-back sent flits).
  void push_pending_back(const Flit& f);

  /// True if any held flit (sent or pending) belongs to `pid` — used to
  /// keep an output VC reserved until a packet's tail can no longer be
  /// replayed.
  bool contains_packet(PacketId pid) const;

  /// True if any *pending* flit belongs to `pid`. New transmissions of a
  /// packet must wait while that packet still has pending (older) flits;
  /// pending flits of a *different* packet (a deadlock-recovery waiter
  /// queued behind the current owner) do not block the owner.
  bool has_pending_for(PacketId pid) const;

  /// True if some pending entry is exactly this flit (packet + sequence).
  /// Distinguishes a staged replay — whose pending entry has not been
  /// consumed yet — from a staged fresh transmission, even when a NACK
  /// rollback has just queued older flits ahead of it.
  bool pending_contains(PacketId pid, std::uint8_t seq) const;

  void clear();

  // --- Entry introspection (invariant monitor, state digests) -------------
  const Flit& sent_flit(int i) const { return sent_[as_idx(i)].flit; }
  Cycle sent_time(int i) const { return sent_[as_idx(i)].sent_at; }
  const Flit& pending_flit(int i) const { return pending_[as_idx(i)].flit; }
  bool pending_credit_held(int i) const {
    return pending_[as_idx(i)].credit_held;
  }

  /// Lifetime utilization accounting: call once per cycle.
  void tick_utilization();
  double mean_utilization() const;

 private:
  static std::size_t as_idx(int i) { return static_cast<std::size_t>(i); }

  struct SentEntry {
    Flit flit;
    Cycle sent_at;
  };
  struct PendingEntry {
    Flit flit;
    bool credit_held;
  };

  int depth_;
  Cycle nack_window_;
  // sent + pending together hold at most depth_ entries (default 3), so
  // inline storage keeps the whole barrel heap-free; deeper configurations
  // spill once and keep the capacity.
  InlineVec<SentEntry, 4> sent_;        ///< Oldest at front ([0]).
  InlineVec<PendingEntry, 4> pending_;  ///< Next to transmit at front ([0]).
  std::uint64_t util_cycles_ = 0;
  std::uint64_t util_occupied_slot_cycles_ = 0;
};

}  // namespace ftnoc

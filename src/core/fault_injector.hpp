#pragma once
// Bernoulli fault processes — the simulation-side stand-in for real SEU /
// crosstalk events ("various soft faults were randomly generated both
// within the routers and on the inter-router links", paper §2.2).
//
// Link faults physically flip bits in the flit's SEC/DED codeword so the
// whole detection/correction path is exercised for real; logic faults are
// delivered as upset decisions that the router applies to its RT/VA/SA
// results (the AC unit then has to catch them).

#include <cstdint>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/flit.hpp"

namespace ftnoc {

enum class LinkFault : std::uint8_t {
  kNone = 0,
  kSingleBit,  ///< Correctable by SEC.
  kMultiBit,   ///< Detected by DED, not correctable.
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, Rng rng);

  /// Possibly corrupts a flit during one link traversal: flips one random
  /// codeword bit (single) or two distinct bits (multi).
  LinkFault maybe_corrupt_link(Flit& f);

  /// Logic-upset decisions, one draw per protected operation.
  bool upset_routing();        ///< Per routing computation (head flits).
  bool upset_va_allocation();  ///< Per successful VA grant.
  bool upset_sa_grant();       ///< Per successful SA grant.
  bool upset_rtx_copy();       ///< Per retransmission-buffer replay (§4.5).
  bool upset_handshake();      ///< Per credit/NACK transfer (§4.6).

  /// Uniform random value for choosing *how* an upset manifests (which
  /// wrong port/VC); exposed so the router's corruption is reproducible.
  std::uint64_t random_below(std::uint64_t bound);

  // Injection counters (ground truth of what was injected, as opposed to
  // what was detected).
  std::uint64_t link_single_injected() const { return link_single_; }
  std::uint64_t link_multi_injected() const { return link_multi_; }
  std::uint64_t rt_injected() const { return rt_; }
  std::uint64_t va_injected() const { return va_; }
  std::uint64_t sa_injected() const { return sa_; }
  std::uint64_t rtx_injected() const { return rtx_; }
  std::uint64_t handshake_injected() const { return handshake_; }

 private:
  FaultConfig cfg_;
  Rng rng_;
  std::uint64_t link_single_ = 0;
  std::uint64_t link_multi_ = 0;
  std::uint64_t rt_ = 0;
  std::uint64_t va_ = 0;
  std::uint64_t sa_ = 0;
  std::uint64_t rtx_ = 0;
  std::uint64_t handshake_ = 0;
};

}  // namespace ftnoc

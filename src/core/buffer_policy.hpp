#pragma once
// Buffer-policy subsystem (DESIGN.md §4.11): the machinery behind
// SimConfig::buffer_policy. Three input-buffer organizations share one
// total budget of num_vcs * vc_buffer_depth slots per link input port:
//
//  * private_vc — one private FIFO per (port, VC); the paper's layout.
//    Implemented by the routers' existing storage (FlitRing slab /
//    std::deque); nothing in this file runs on that path.
//  * damq — the VCs of one port draw from a single free-slot pool
//    (DamqPool below), with `damq_reserve_slots` slots reserved per VC so
//    no VC can be starved of buffering by its neighbours (the
//    deadlock-freedom floor of Jamali & Khademzadeh, arXiv 0910.1852).
//  * voq — private FIFOs again, but every packet travels in the VC class
//    of its destination column (voq_class below) for its whole journey,
//    so packets bound for different columns never share a queue
//    (Papaphilippou & Chu, arXiv 2303.10526). Requires XY routing.
//
// The sender-side credit protocol for damq (per-VC reserved credits plus a
// per-port shared counter) lives in the routers; DESIGN.md §4.11 states
// the contract and the conservation argument.

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace ftnoc {

/// Parses a buffer-policy name ("private_vc" | "damq" | "voq").
/// Returns false on an unknown name. apply_override() has its own parser
/// (the common layer cannot depend on core); this one serves tools that
/// work with policy names directly.
bool parse_buffer_policy(const std::string& name, BufferPolicyKind* out);

/// The VOQ class of a destination: its mesh column folded into the VC
/// space. Every router and the injecting PE use this same map, so a
/// packet's VC is a pure function of its destination.
inline int voq_class(NodeId dest, int mesh_width, int num_vcs) {
  return (static_cast<int>(dest) % mesh_width) % num_vcs;
}

/// Fixed-capacity multi-queue over one shared slot pool: V logical FIFOs
/// drawing from num_vcs * depth slots, linked through a per-slot next
/// index (the classic DAMQ linked-list organization). Admission reserves
/// `reserve` slots per VC: a VC whose occupancy is below its reserve
/// always gets a slot, and the remaining shared region is first come
/// first served. One allocation at reset(); push/pop never touch the
/// heap.
///
/// Occupancy accounting (mirrored by the invariant monitor's shared-pool
/// conservation predicate): shared_in_use() == sum_v max(0, size(v) -
/// reserve) and total_occupancy() <= capacity() always hold; can_accept(v)
/// is exactly "size(v) < reserve or shared_in_use() < shared_budget()".
template <typename T>
class DamqPool {
 public:
  /// (Re)allocates num_vcs * depth slots and empties every queue. Must be
  /// called before the first push. `reserve` must be in [1, depth].
  void reset(int num_vcs, int depth, int reserve) {
    FTNOC_CHECK(num_vcs >= 1 && depth >= 1);
    FTNOC_CHECK(reserve >= 1 && reserve <= depth);
    num_vcs_ = num_vcs;
    reserve_ = reserve;
    cap_ = num_vcs * depth;
    shared_budget_ = cap_ - num_vcs * reserve;
    slots_.assign(static_cast<std::size_t>(cap_), T{});
    next_.assign(static_cast<std::size_t>(cap_), -1);
    head_.assign(static_cast<std::size_t>(num_vcs), -1);
    tail_.assign(static_cast<std::size_t>(num_vcs), -1);
    occ_.assign(static_cast<std::size_t>(num_vcs), 0);
    total_ = 0;
    shared_used_ = 0;
    // Thread every slot onto the free list.
    free_head_ = 0;
    for (int i = 0; i + 1 < cap_; ++i) next_[static_cast<std::size_t>(i)] = i + 1;
    next_[static_cast<std::size_t>(cap_ - 1)] = -1;
  }

  int capacity() const { return cap_; }
  int reserve() const { return reserve_; }
  int shared_budget() const { return shared_budget_; }
  int shared_in_use() const { return shared_used_; }
  int total_occupancy() const { return total_; }
  int free_slots() const { return cap_ - total_; }

  bool empty(int vc) const { return occ_[idx(vc)] == 0; }
  int size(int vc) const { return occ_[idx(vc)]; }

  /// Whether a push for `vc` would be admitted: below its reserve, or the
  /// shared region still has room.
  bool can_accept(int vc) const {
    return occ_[idx(vc)] < reserve_ || shared_used_ < shared_budget_;
  }

  void push_back(int vc, T v) {
    FTNOC_CHECK(can_accept(vc));
    FTNOC_DCHECK(free_head_ >= 0);
    const int slot = free_head_;
    free_head_ = next_[static_cast<std::size_t>(slot)];
    slots_[static_cast<std::size_t>(slot)] = std::move(v);
    next_[static_cast<std::size_t>(slot)] = -1;
    if (tail_[idx(vc)] >= 0) {
      next_[static_cast<std::size_t>(tail_[idx(vc)])] = slot;
    } else {
      head_[idx(vc)] = slot;
    }
    tail_[idx(vc)] = slot;
    if (occ_[idx(vc)] >= reserve_) ++shared_used_;
    ++occ_[idx(vc)];
    ++total_;
  }

  T& front(int vc) {
    FTNOC_DCHECK(occ_[idx(vc)] > 0);
    return slots_[static_cast<std::size_t>(head_[idx(vc)])];
  }
  const T& front(int vc) const {
    FTNOC_DCHECK(occ_[idx(vc)] > 0);
    return slots_[static_cast<std::size_t>(head_[idx(vc)])];
  }

  void pop_front(int vc) {
    FTNOC_DCHECK(occ_[idx(vc)] > 0);
    const int slot = head_[idx(vc)];
    head_[idx(vc)] = next_[static_cast<std::size_t>(slot)];
    if (head_[idx(vc)] < 0) tail_[idx(vc)] = -1;
    next_[static_cast<std::size_t>(slot)] = free_head_;
    free_head_ = slot;
    if (occ_[idx(vc)] > reserve_) --shared_used_;
    --occ_[idx(vc)];
    --total_;
  }

  /// i-th element of `vc`'s FIFO counted from the front. O(i) — used by
  /// the state digest and tests, never by the per-cycle phases.
  const T& at(int vc, int i) const {
    FTNOC_DCHECK(i >= 0 && i < occ_[idx(vc)]);
    int slot = head_[idx(vc)];
    for (int k = 0; k < i; ++k) slot = next_[static_cast<std::size_t>(slot)];
    return slots_[static_cast<std::size_t>(slot)];
  }
  T& at(int vc, int i) {
    return const_cast<T&>(static_cast<const DamqPool*>(this)->at(vc, i));
  }

  /// From-scratch recount of the derived occupancy state; false means a
  /// counter or list desynchronized (the invariant monitor's shared-pool
  /// walk calls this on the Flit instantiation).
  bool consistent() const {
    int total = 0;
    int shared = 0;
    int free_count = 0;
    for (int v = 0; v < num_vcs_; ++v) {
      int n = 0;
      for (int s = head_[idx(v)]; s >= 0; s = next_[static_cast<std::size_t>(s)]) {
        ++n;
        if (n > cap_) return false;  // Cycle in a queue list.
      }
      if (n != occ_[idx(v)]) return false;
      total += n;
      shared += n > reserve_ ? n - reserve_ : 0;
    }
    for (int s = free_head_; s >= 0; s = next_[static_cast<std::size_t>(s)]) {
      ++free_count;
      if (free_count > cap_) return false;  // Cycle in the free list.
    }
    return total == total_ && shared == shared_used_ &&
           free_count == cap_ - total_;
  }

 private:
  static std::size_t idx(int vc) { return static_cast<std::size_t>(vc); }

  int num_vcs_ = 0;
  int reserve_ = 0;
  int cap_ = 0;
  int shared_budget_ = 0;
  int total_ = 0;
  int shared_used_ = 0;
  int free_head_ = -1;
  std::vector<T> slots_;
  std::vector<std::int32_t> next_;  ///< Per slot: next in its queue/free list.
  std::vector<std::int32_t> head_;  ///< Per VC: front slot, -1 if empty.
  std::vector<std::int32_t> tail_;  ///< Per VC: back slot, -1 if empty.
  std::vector<std::int32_t> occ_;   ///< Per VC: queue length.
};

}  // namespace ftnoc

#pragma once
// Flit — the unit of flow control and of fault tolerance. Every mechanism
// in the paper (ECC blanket, HBH retransmission, deadlock recovery probes)
// operates at flit granularity.

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "ecc/hamming.hpp"

namespace ftnoc {

enum class FlitType : std::uint8_t {
  kHead = 0,
  kBody = 1,
  kTail = 2,
  kHeadTail = 3,  ///< Single-flit packet.
};

inline bool is_head(FlitType t) {
  return t == FlitType::kHead || t == FlitType::kHeadTail;
}
inline bool is_tail(FlitType t) {
  return t == FlitType::kTail || t == FlitType::kHeadTail;
}

struct Flit {
  FlitType type = FlitType::kHead;
  PacketId packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  std::uint8_t seq = 0;  ///< Index of this flit within its packet.

  /// Cycle the packet was created at the source PE (total-latency
  /// reference point, including source queueing).
  Cycle birth_cycle = 0;

  /// Cycle the packet's header first entered the network (the PE put its
  /// first flit on the local channel). Message latency — the paper's
  /// headline metric — is tail-ejection minus this. Zero until injection;
  /// E2E retransmissions keep the first attempt's stamp so the full
  /// recovery time is charged.
  Cycle inject_cycle = 0;

  /// Ground-truth payload — what the source encoded. Used as the oracle
  /// when accounting silent corruptions (FEC-only scheme).
  std::uint64_t payload = 0;

  /// The SEC/DED codeword actually travelling on the wires. Link faults
  /// flip bits here; receivers decode it.
  ecc::Codeword codeword;

  /// VC the flit occupies on the link it is currently traversing
  /// (stamped by the sender at switch traversal).
  VcId vc = kInvalidVc;

  /// Transient per-hop bookkeeping: cycle this flit was written into the
  /// current router's input buffer. Pipeline stages only operate on flits
  /// that arrived in an earlier cycle.
  Cycle arrived_cycle = 0;

  /// Transient: hops traversed so far (statistics).
  std::uint8_t hops = 0;

  std::string describe() const;
};

/// Builds a flit with its codeword freshly encoded from `payload`.
Flit make_flit(FlitType type, PacketId pid, NodeId src, NodeId dest,
               std::uint8_t seq, Cycle birth, std::uint64_t payload);

}  // namespace ftnoc

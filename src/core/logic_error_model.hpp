#pragma once
// Recovery-latency model for intra-router logic soft errors (paper §4).
//
// The paper analyzes, per router component and per pipeline depth, how many
// cycles a detected logic upset costs to recover from. These penalties are
// charged by the simulator when the AC unit (or a downstream checker)
// catches an upset, and are validated against the paper's stated numbers in
// the unit tests and the `abl_pipeline_recovery` bench.

namespace ftnoc {

/// How a routing-unit misdirection manifests (§4.2).
enum class RtMisrouteKind {
  /// The wrong direction is blocked or physically absent (mesh edge /
  /// hard-failed link) — caught by a VA consulting its link-state table.
  kBlockedOrInvalid,
  /// The wrong direction is functional — undetectable locally; under
  /// deterministic routing the *receiving* router detects the violation
  /// and NACKs.
  kFunctionalDeterministic,
  /// Functional path under adaptive routing — never detected; the packet
  /// simply takes a longer route (zero recovery penalty, latency is paid
  /// organically through the extra hops).
  kFunctionalAdaptive,
};

/// Cycles lost recovering from a VA logic error caught by the AC unit.
/// "The duration of the recovery phase is independent of the pipeline
/// architecture ... incurring single-clock latency overhead" (§4.1).
int va_recovery_penalty(int pipeline_stages);

/// Cycles lost recovering from an SA logic error caught by the AC unit.
/// "In all cases ... this amounts for single-clock latency overhead" (§4.3).
int sa_recovery_penalty(int pipeline_stages);

/// Cycles lost when an SA error produced a corrupt flit that only the next
/// router's ECC catches: NACK + retransmission = 2 cycles (§4.3 case (c)).
int sa_collision_retransmit_penalty();

/// Cycles lost recovering from a routing-unit misdirection (§4.2).
///
/// @param pipeline_stages 1..4.
/// @param lookahead       true if the architecture performs look-ahead
///                        routing (typical for 1- and 2-stage routers);
///                        false for current-node routing (3-/4-stage).
int rt_recovery_penalty(int pipeline_stages, bool lookahead,
                        RtMisrouteKind kind);

/// True for pipeline depths where the AC check overlaps crossbar traversal,
/// so an erroneous flit already left the router and neighbours must be
/// NACKed to ignore it (§4.1: every depth except the 4-stage router).
bool ac_requires_neighbor_nack(int pipeline_stages);

}  // namespace ftnoc

#include "core/logic_error_model.hpp"

#include "common/check.hpp"

namespace ftnoc {

namespace {
void check_stages(int n) {
  FTNOC_CHECK(n >= 1 && n <= 4);
}
}  // namespace

int va_recovery_penalty(int pipeline_stages) {
  check_stages(pipeline_stages);
  // The AC comparison runs in parallel with the following stage; detection
  // invalidates the previous allocation and the VA re-arbitrates: 1 cycle,
  // regardless of depth (§4.1).
  return 1;
}

int sa_recovery_penalty(int pipeline_stages) {
  check_stages(pipeline_stages);
  return 1;  // Same argument as the VA case (§4.3).
}

int sa_collision_retransmit_penalty() {
  return 2;  // NACK (1) + retransmission (1), §4.3 case (c).
}

int rt_recovery_penalty(int pipeline_stages, bool lookahead,
                        RtMisrouteKind kind) {
  check_stages(pipeline_stages);
  switch (kind) {
    case RtMisrouteKind::kBlockedOrInvalid:
      if (!lookahead) {
        // Current-node routing (4-/3-stage): the local VA catches the bad
        // direction before transmission; one cycle to re-route (§4.2).
        return 1;
      }
      // Look-ahead routing: the *next* router's VA catches it and NACKs.
      // 2-stage: NACK(1) + re-route(1) + retransmission(1) = 3 cycles.
      // 1-stage: NACK(1) + re-route-and-retransmit(1)      = 2 cycles.
      return pipeline_stages >= 2 ? 3 : 2;
    case RtMisrouteKind::kFunctionalDeterministic:
      // Receiving router detects the DOR violation and NACKs: the penalty
      // is 1 (NACK) + n (full re-route + retransmission through the pipe)
      // where n is the pipeline depth (§4.2).
      return 1 + pipeline_stages;
    case RtMisrouteKind::kFunctionalAdaptive:
      return 0;  // Undetected; cost appears as organic extra hops.
  }
  return 0;
}

bool ac_requires_neighbor_nack(int pipeline_stages) {
  check_stages(pipeline_stages);
  // In a 4-stage router the AC concludes before crossbar traversal, so no
  // erroneous flit ever leaves; in 1-/2-/3-stage routers the check overlaps
  // the crossbar stage (§4.1).
  return pipeline_stages != 4;
}

}  // namespace ftnoc

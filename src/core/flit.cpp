#include "core/flit.hpp"

namespace ftnoc {
namespace {
const char* type_tag(FlitType t) {
  switch (t) {
    case FlitType::kHead: return "H";
    case FlitType::kBody: return "D";
    case FlitType::kTail: return "T";
    case FlitType::kHeadTail: return "HT";
  }
  return "?";
}
}  // namespace

std::string Flit::describe() const {
  return std::string(type_tag(type)) + std::to_string(seq) + " pkt=" +
         std::to_string(packet_id) + " " + std::to_string(src) + "->" +
         std::to_string(dest);
}

Flit make_flit(FlitType type, PacketId pid, NodeId src, NodeId dest,
               std::uint8_t seq, Cycle birth, std::uint64_t payload) {
  Flit f;
  f.type = type;
  f.packet_id = pid;
  f.src = src;
  f.dest = dest;
  f.seq = seq;
  f.birth_cycle = birth;
  f.payload = payload;
  f.codeword = ecc::encode(payload);
  return f;
}

}  // namespace ftnoc

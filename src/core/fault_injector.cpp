#include "core/fault_injector.hpp"

namespace ftnoc {

FaultInjector::FaultInjector(const FaultConfig& cfg, Rng rng)
    : cfg_(cfg), rng_(rng) {}

LinkFault FaultInjector::maybe_corrupt_link(Flit& f) {
  if (!rng_.bernoulli(cfg_.link_error_rate)) return LinkFault::kNone;
  if (rng_.bernoulli(cfg_.multi_bit_fraction)) {
    // Two distinct bit flips — crosstalk-style coupled upset.
    const int b1 = static_cast<int>(rng_.next_below(ecc::kCodewordBits));
    int b2 = static_cast<int>(rng_.next_below(ecc::kCodewordBits - 1));
    if (b2 >= b1) ++b2;
    f.codeword.flip(b1);
    f.codeword.flip(b2);
    ++link_multi_;
    return LinkFault::kMultiBit;
  }
  f.codeword.flip(static_cast<int>(rng_.next_below(ecc::kCodewordBits)));
  ++link_single_;
  return LinkFault::kSingleBit;
}

bool FaultInjector::upset_routing() {
  if (!rng_.bernoulli(cfg_.rt_error_rate)) return false;
  ++rt_;
  return true;
}

bool FaultInjector::upset_va_allocation() {
  if (!rng_.bernoulli(cfg_.va_error_rate)) return false;
  ++va_;
  return true;
}

bool FaultInjector::upset_sa_grant() {
  if (!rng_.bernoulli(cfg_.sa_error_rate)) return false;
  ++sa_;
  return true;
}

bool FaultInjector::upset_rtx_copy() {
  if (!rng_.bernoulli(cfg_.rtx_error_rate)) return false;
  ++rtx_;
  return true;
}

bool FaultInjector::upset_handshake() {
  if (!rng_.bernoulli(cfg_.handshake_error_rate)) return false;
  ++handshake_;
  return true;
}

std::uint64_t FaultInjector::random_below(std::uint64_t bound) {
  return rng_.next_below(bound);
}

}  // namespace ftnoc

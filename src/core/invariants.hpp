#pragma once
// Cycle-level invariant monitor (DESIGN.md §4.8).
//
// The paper states its correctness claims as invariants — Eq. (1)'s
// buffering bound for guaranteed deadlock recovery (§3.2), the probe
// protocol's no-false-positive guarantee (§3.2.2), flit-exact
// retransmission (§3.1) — and PR 3's cycle kernel added implementation
// invariants of its own (work-mask/state agreement, running occupancy
// counters). This monitor checks all of them every cycle while a run is
// flagged with `SimConfig::check_invariants`.
//
// The monitor is a pure observer: it draws no randomness, charges no
// energy, and touches no simulation state, so attaching it cannot change
// behaviour (the golden digests pin this). The routers and the network
// feed it events and run its structural walks; on a violation it emits a
// structured diagnostic through common/log — cycle, router, port, vc,
// invariant id, detail — and aborts (the fuzz harness switches it to
// count-and-continue instead).
//
// Checked invariants:
//  * flit conservation — injected = ejected + in-flight + dropped −
//    rollback-restored, where in-flight spans input buffers, the 4-stage
//    ST registers, link wires and the retransmission barrels' pending
//    regions;
//  * credit conservation — per directed link and VC, sender credits +
//    credits bound to in-flight/rolled-back flits + credits on the return
//    wire + receiver occupancy account for exactly the buffer depth
//    (drops to an upper bound when a loss process — link errors with HBH,
//    unprotected handshakes — can legitimately consume instances);
//  * work-mask agreement — a clear in_work_/out_work_ bit proves the VC
//    idle, a set bit proves it busy (the PR 3 active-list contract);
//  * occupancy counters — tx_occ_ and staged_count_ match a from-scratch
//    recount;
//  * receive-sequence monotonicity — after the HBH drop window and any
//    replay, a receiver still observes every packet's flits in strictly
//    increasing seq order (gated off when lost NACKs are possible);
//  * probe lifecycle — recovery only engages at a probe's origin after
//    that probe returned, at a router that relayed the probe, or through
//    the configured fallback (Rules 1-4);
//  * Eq. (1) — re-evaluated with the engaging router's actual buffer
//    sizes whenever recovery engages;
//  * dead-link traversal — once a router reports a port hard-dead (§4.9),
//    the outgoing link wire never again carries a flit.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/flit.hpp"

// Compile-time master switch. Default on; configure with
// -DFTNOC_INVARIANTS=OFF to compile every monitor hook out of the router
// hot path entirely.
#ifndef FTNOC_ENABLE_INVARIANTS
#define FTNOC_ENABLE_INVARIANTS 1
#endif

// Wraps a monitor hook statement so that -DFTNOC_INVARIANTS=OFF removes it
// from the instruction stream entirely (not even a null-pointer test).
#if FTNOC_ENABLE_INVARIANTS
#define FTNOC_INVARIANT_HOOK(stmt) \
  do {                             \
    stmt;                          \
  } while (0)
#else
#define FTNOC_INVARIANT_HOOK(stmt) \
  do {                             \
  } while (0)
#endif

namespace ftnoc {

enum class InvariantId : std::uint8_t {
  kFlitConservation,
  kCreditConservation,
  kWorkMaskAgreement,
  kOccupancyCounter,
  kStagedRegister,
  kSequenceMonotonic,
  kProbeLifecycle,
  kRecoveryBufferBound,
  kDeadLinkTraversal,
  /// DAMQ shared-pool accounting (DESIGN.md §4.11): sender side, the
  /// per-port shared credit counter plus all per-VC shared_held counters
  /// must equal the shared budget; receiver side, the pool's free/used/
  /// per-VC occupancy recount must agree with its running counters.
  kSharedPoolConservation,
  /// Non-minimal escape tier (DESIGN.md §4.12): a single packet must not
  /// accrue more escape detours than 4 * num_nodes. Between detours the
  /// packet routes by strict BFS-distance descent, so its total work is
  /// bounded by (detours + 1) * diameter; a packet exceeding the bound is
  /// livelocking on the misroute path.
  kMisrouteBound,
};

const char* to_string(InvariantId id);

/// How a router came to enter recovery mode (probe-lifecycle legality).
enum class RecoveryTrigger : std::uint8_t {
  kActivationReturned,  ///< Origin: its own activation completed the loop.
  kActivationRelay,     ///< A relay of the probe received the activation.
  kFallback,            ///< Unilateral entry after repeated probe expiry.
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(const SimConfig& cfg);

  // --- Violation sink -----------------------------------------------------
  /// Logs the structured diagnostic and aborts (or counts, for the fuzz
  /// harness). `port`/`vc` may be -1 when the invariant is not localized.
  void fail(InvariantId id, Cycle now, NodeId router, int port, int vc,
            const std::string& detail);
  void set_abort_on_violation(bool v) { abort_on_violation_ = v; }
  std::uint64_t violations() const { return violations_; }
  /// First violation's diagnostic line (divergence triage).
  const std::string& first_violation() const { return first_violation_; }

  // --- Flit-conservation ledger -------------------------------------------
  void on_injected() { ++injected_; }
  void on_ejected() { ++ejected_; }
  void on_dropped() { ++dropped_; }
  /// `n` flits moved back from a retransmission barrel's sent region to
  /// its pending region by a NACK rollback (each re-materializes a live
  /// instance whose wire copy the receiver dropped).
  void on_restored(int n) { restored_ += static_cast<std::uint64_t>(n); }
  std::uint64_t injected() const { return injected_; }
  std::uint64_t ejected() const { return ejected_; }
  std::uint64_t dropped() const { return dropped_; }

  /// `live` is the network-wide in-flight population counted from actual
  /// state: input buffers + ST registers (minus replay shadows) + link
  /// wires + barrel pending regions.
  void check_flit_conservation(Cycle now, long long live);

  // --- Credit conservation ------------------------------------------------
  /// Whether the configuration admits no credit-loss process, making the
  /// per-link credit sum an exact equality rather than an upper bound.
  bool strict_credits() const { return strict_credits_; }
  /// `total` is the full accounting for one directed link and VC as seen
  /// by the Network walk; must be == depth (strict) or <= depth (lossy).
  void check_credit_sum(Cycle now, NodeId sender, int port, int vc,
                        int total, int depth);

  // --- Receive-sequence monotonicity --------------------------------------
  bool sequence_check_enabled() const { return seq_check_; }
  /// Called for every flit a router accepts into an input buffer (after
  /// the link-protection policy; dropped flits never reach this).
  void on_flit_accepted(Cycle now, NodeId router, int port, const Flit& f);

  // --- Probe lifecycle ----------------------------------------------------
  void on_probe_minted(NodeId origin, std::uint32_t probe_id);
  void on_probe_forwarded(NodeId relay, NodeId origin, std::uint32_t probe_id);
  void on_probe_confirmed(Cycle now, NodeId origin, std::uint32_t probe_id);
  /// `tx_size`/`rtx_size` are the engaging router's per-VC transmission
  /// and retransmission buffer depths for the Eq. (1) re-check.
  void on_recovery_entered(Cycle now, NodeId router, RecoveryTrigger trigger,
                           NodeId origin, std::uint32_t probe_id,
                           int tx_size, int rtx_size);

  // --- Non-minimal escape tier ---------------------------------------------
  /// Called each time a router detours packet `pid` over the escape-port
  /// set (adaptive_faults). Fails kMisrouteBound when one packet's detour
  /// count exceeds 4 * num_nodes (livelock on the misroute path).
  void on_misroute(Cycle now, NodeId router, PacketId pid);

 private:
  struct StreamState {
    bool open = false;
    PacketId pid = 0;
    std::uint8_t next_seq = 0;
  };
  StreamState& stream(NodeId router, int port, int vc);

  SimConfig cfg_;
  bool abort_on_violation_ = true;
  bool seq_check_ = false;
  bool strict_credits_ = false;

  std::uint64_t violations_ = 0;
  std::string first_violation_;

  std::uint64_t injected_ = 0;
  std::uint64_t ejected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t restored_ = 0;

  // One receive-stream tracker per (router, input port, vc).
  std::vector<StreamState> streams_;

  // Probe lifecycle. Minting is single-outstanding per origin (the agent
  // tracks one `outstanding_` id), so the latest mint is all a *return*
  // can legally reference. Relays and confirmations are not: the agent
  // remembers a bounded list of relayed probes (DeadlockAgent::seen_) and
  // may legally act on an activation for any of them — a router can relay
  // a newer probe from the same origin while the older probe's activation
  // is still circulating the cycle — so those are tracked as bounded
  // recent-id lists, sized to never forget before the agent does.
  struct ProbeRecord {
    std::uint32_t id = 0;
    bool valid = false;
  };
  struct RecentIds {
    std::vector<std::uint32_t> ids;  ///< Oldest first, ≤ kMaxRecentProbes.
  };
  static constexpr std::size_t kMaxRecentProbes = 64;
  static void remember(RecentIds& r, std::uint32_t id);
  static bool contains(const RecentIds& r, std::uint32_t id);
  std::vector<ProbeRecord> minted_;   ///< Per origin: latest minted probe.
  std::vector<RecentIds> confirmed_;  ///< Per origin: returned probes.
  std::vector<RecentIds> relayed_;    ///< Per (relay, origin): relayed probes.

  // Escape-detour counts per packet (kMisrouteBound). Entries are few —
  // detours only happen while a candidate set is stale around a fresh
  // fault — so a flat map keyed by packet id is plenty.
  std::uint32_t misroute_bound_ = 0;
  std::unordered_map<PacketId, std::uint32_t> misroutes_;
};

}  // namespace ftnoc

#pragma once
// Receiver-side Error Detection/Correction unit (Figure 1). Wraps the
// SEC/DED codec and classifies each arriving flit; the link-protection
// policy decides what to do with the classification (accept / correct /
// NACK-and-drop).

#include <cstdint>

#include "core/flit.hpp"
#include "ecc/hamming.hpp"

namespace ftnoc {

enum class FlitCheck : std::uint8_t {
  kClean = 0,        ///< Codeword intact.
  kCorrected,        ///< Single-bit upset fixed in place (FEC).
  kUncorrectable,    ///< Multi-bit upset detected; flit must be dropped /
                     ///< retransmitted.
};

class ErrorCheckUnit {
 public:
  /// Decodes the flit's codeword. On kCorrected the flit's codeword is
  /// rewritten with the repaired word (so downstream hops see clean data).
  /// Counters accumulate per-classification totals.
  FlitCheck check(Flit& f);

  std::uint64_t clean_count() const { return clean_; }
  std::uint64_t corrected_count() const { return corrected_; }
  std::uint64_t uncorrectable_count() const { return uncorrectable_; }
  std::uint64_t checks() const { return clean_ + corrected_ + uncorrectable_; }

  void reset_counters();

 private:
  std::uint64_t clean_ = 0;
  std::uint64_t corrected_ = 0;
  std::uint64_t uncorrectable_ = 0;
};

}  // namespace ftnoc

#include "core/buffer_policy.hpp"

namespace ftnoc {

bool parse_buffer_policy(const std::string& name, BufferPolicyKind* out) {
  if (name == "private_vc" || name == "private") {
    *out = BufferPolicyKind::kPrivateVc;
    return true;
  }
  if (name == "damq") {
    *out = BufferPolicyKind::kDamq;
    return true;
  }
  if (name == "voq") {
    *out = BufferPolicyKind::kVoq;
    return true;
  }
  return false;
}

}  // namespace ftnoc

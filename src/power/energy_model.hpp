#pragma once
// Per-event dynamic-energy model consumed by the cycle-accurate simulator.
//
// The paper extracted dynamic/leakage power from a synthesized 90 nm router
// and imported those numbers into the network simulator to "trace the power
// profile of the entire on-chip network". We do the analogous thing: the
// per-event coefficients below are derived from the area/power model
// (area_power_model.hpp) by amortizing each component's power over the
// events it serves at 500 MHz. The simulator charges an event each time the
// corresponding micro-operation happens, which yields the paper's
// energy-per-message metric (Figures 7 and 13(b)).

#include <cstdint>
#include <string>

namespace ftnoc::power {

/// Micro-operations that consume dynamic energy.
enum class EnergyEvent : std::uint8_t {
  kBufferWrite = 0,    ///< Flit written into a VC transmission buffer.
  kBufferRead,         ///< Flit read out of a VC buffer toward the switch.
  kRouteCompute,       ///< Routing-unit computation (header flits).
  kVcAllocation,       ///< One VA arbitration round for one header.
  kSwAllocation,       ///< One SA arbitration round for one flit.
  kCrossbarTraversal,  ///< Flit through the crossbar.
  kLinkTraversal,      ///< Flit over an inter-router link.
  kRtxBufferWrite,     ///< Flit copied into the retransmission barrel shifter.
  kRetransmission,     ///< One flit replayed from the retransmission buffer.
  kNackSignal,         ///< NACK pulse on the reverse handshake lines.
  kEccCheck,           ///< SEC/DED decode at a receiving port.
  kAcCheck,            ///< Allocation Comparator compare cycle.
  kProbeHop,           ///< Deadlock probe forwarded one hop.
  kCount,
};

inline constexpr int kNumEnergyEvents =
    static_cast<int>(EnergyEvent::kCount);

/// Energy cost table, in picojoules per event.
struct EnergyTable {
  double pj[kNumEnergyEvents] = {};

  double get(EnergyEvent e) const { return pj[static_cast<int>(e)]; }
};

/// Default coefficients for the paper's 90 nm / 1 V / 500 MHz design point
/// (see .cpp for the derivation).
EnergyTable default_energy_table();

/// Short name of an energy event (for reports).
const char* to_string(EnergyEvent e);

/// Accumulates energy charged by the simulator.
class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyTable table = default_energy_table())
      : table_(table) {}

  void charge(EnergyEvent e, std::uint64_t times = 1) {
    total_pj_ += table_.get(e) * static_cast<double>(times);
    counts_[static_cast<int>(e)] += times;
  }

  double total_pj() const { return total_pj_; }
  double total_nj() const { return total_pj_ * 1e-3; }
  std::uint64_t count(EnergyEvent e) const {
    return counts_[static_cast<int>(e)];
  }
  /// Energy attributed to one event class so far, in picojoules.
  double event_pj(EnergyEvent e) const {
    return table_.get(e) * static_cast<double>(count(e));
  }

  void reset();

 private:
  EnergyTable table_;
  double total_pj_ = 0.0;
  std::uint64_t counts_[kNumEnergyEvents] = {};
};

/// Multi-line human-readable energy composition (event, count, nJ, share).
/// Events with zero count are omitted.
std::string energy_report(const EnergyMeter& meter);

}  // namespace ftnoc::power

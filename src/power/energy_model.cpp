#include "power/energy_model.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>

namespace ftnoc::power {

// Derivation sketch (reference router: 5 PCs, 4 VCs, 119.55 mW @ 500 MHz):
// one cycle at full activity costs 119.55 mW * 2 ns = 239.1 pJ across the
// whole router. A router at saturation moves ~5 flits/cycle (one per port),
// so ~48 pJ/flit-hop of router energy plus link energy. We split that
// between the micro-operations in proportion to the component power
// fractions of the area/power model (buffers 45%, crossbar 15%, allocators
// 18%, routing 4%, other 18%) and add a link-traversal cost typical of
// 1 mm 90 nm global wires. The absolute scale is a substitute for
// synthesis; every figure that the paper reports in nJ depends only on the
// relative weights and the event counts.
EnergyTable default_energy_table() {
  EnergyTable t;
  auto set = [&t](EnergyEvent e, double pj) {
    t.pj[static_cast<int>(e)] = pj;
  };
  set(EnergyEvent::kBufferWrite, 5.2);
  set(EnergyEvent::kBufferRead, 4.4);
  set(EnergyEvent::kRouteCompute, 0.9);
  set(EnergyEvent::kVcAllocation, 2.1);
  set(EnergyEvent::kSwAllocation, 1.3);
  set(EnergyEvent::kCrossbarTraversal, 6.8);
  set(EnergyEvent::kLinkTraversal, 9.6);
  set(EnergyEvent::kRtxBufferWrite, 2.4);
  set(EnergyEvent::kRetransmission, 3.1);  // buffer shift + mux steering
  set(EnergyEvent::kNackSignal, 0.6);
  set(EnergyEvent::kEccCheck, 1.1);
  set(EnergyEvent::kAcCheck, 0.08);  // 2.02 mW AC amortized over PV checks
  set(EnergyEvent::kProbeHop, 1.8);
  return t;
}

const char* to_string(EnergyEvent e) {
  switch (e) {
    case EnergyEvent::kBufferWrite: return "buffer_write";
    case EnergyEvent::kBufferRead: return "buffer_read";
    case EnergyEvent::kRouteCompute: return "route_compute";
    case EnergyEvent::kVcAllocation: return "vc_allocation";
    case EnergyEvent::kSwAllocation: return "sw_allocation";
    case EnergyEvent::kCrossbarTraversal: return "crossbar";
    case EnergyEvent::kLinkTraversal: return "link";
    case EnergyEvent::kRtxBufferWrite: return "rtx_write";
    case EnergyEvent::kRetransmission: return "retransmission";
    case EnergyEvent::kNackSignal: return "nack";
    case EnergyEvent::kEccCheck: return "ecc_check";
    case EnergyEvent::kAcCheck: return "ac_check";
    case EnergyEvent::kProbeHop: return "probe_hop";
    case EnergyEvent::kCount: break;
  }
  return "?";
}

void EnergyMeter::reset() {
  total_pj_ = 0.0;
  std::fill(std::begin(counts_), std::end(counts_), 0);
}

std::string energy_report(const EnergyMeter& meter) {
  std::string out;
  char line[128];
  const double total = meter.total_pj();
  for (int i = 0; i < kNumEnergyEvents; ++i) {
    const auto e = static_cast<EnergyEvent>(i);
    if (meter.count(e) == 0) continue;
    const double pj = meter.event_pj(e);
    std::snprintf(line, sizeof(line), "%-15s %12llu ops %12.3f nJ %6.2f%%\n",
                  to_string(e),
                  static_cast<unsigned long long>(meter.count(e)), pj * 1e-3,
                  total > 0 ? 100.0 * pj / total : 0.0);
    out += line;
  }
  return out;
}

}  // namespace ftnoc::power

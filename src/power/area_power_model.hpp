#pragma once
// Analytic area/power model of the NoC router — the substitute for the
// paper's Synopsys Design Compiler synthesis flow (TSMC 90 nm, 1 V,
// 500 MHz).
//
// The model decomposes the router into the components of Figure 1 and
// scales each with its natural structural law (buffer bits, crossbar
// cross-points, allocator arbitration matrix, comparator entries). The
// coefficients are calibrated so the paper's reference configuration —
// 5 physical channels, 4 VCs per PC, 4-flit buffers, 64-bit flits —
// reproduces the published totals exactly:
//
//   generic router: 119.55 mW, 0.374862 mm2
//   AC unit:          2.02 mW, 0.004474 mm2   (Table 1)
//
// Everything downstream (Table 1 bench, energy-per-event coefficients)
// consumes this model rather than hard-coded ratios, exactly as the paper
// "imported the power numbers into the cycle-accurate network simulator".

namespace ftnoc::power {

/// Structural parameters of one router.
struct RouterParams {
  int ports = 5;           ///< Physical channels (including the PE port).
  int vcs = 4;             ///< Virtual channels per physical channel.
  int buffer_depth = 4;    ///< Flits per VC transmission buffer.
  int flit_width = 64;     ///< Payload bits per flit (excluding ECC bits).
  int rtx_depth = 3;       ///< Retransmission-buffer depth per VC (0 = none).
};

/// Per-component figures; the unit is mm^2 for area and mW for power.
struct Breakdown {
  double buffers = 0.0;     ///< Input VC FIFO buffers.
  double crossbar = 0.0;    ///< P x P crossbar.
  double va = 0.0;          ///< Virtual-channel allocator.
  double sa = 0.0;          ///< Switch allocator.
  double rt = 0.0;          ///< Routing unit.
  double other = 0.0;       ///< Control, clocking, handshake lines.
  double rtx_buffers = 0.0; ///< Retransmission barrel shifters (FT add-on).
  double ac_unit = 0.0;     ///< Allocation Comparator (FT add-on).

  /// Generic-router subtotal (what Table 1 calls "Generic NoC Router").
  double generic_total() const {
    return buffers + crossbar + va + sa + rt + other;
  }
  /// Full fault-tolerant router.
  double total() const { return generic_total() + rtx_buffers + ac_unit; }
};

/// Computes the area breakdown (mm^2) for the given configuration.
Breakdown area_mm2(const RouterParams& p);

/// Computes the power breakdown (mW) at 500 MHz, full activity.
Breakdown power_mw(const RouterParams& p);

/// Table 1 of the paper, computed from the model.
struct AcOverheadReport {
  double router_power_mw = 0.0;
  double router_area_mm2 = 0.0;
  double ac_power_mw = 0.0;
  double ac_area_mm2 = 0.0;
  double power_overhead_pct = 0.0;
  double area_overhead_pct = 0.0;
};

AcOverheadReport ac_overhead(const RouterParams& p);

}  // namespace ftnoc::power

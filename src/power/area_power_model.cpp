#include "power/area_power_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ftnoc::power {
namespace {

// Published totals for the reference configuration (paper §2.2 / Table 1).
constexpr double kRefRouterAreaMm2 = 0.374862;
constexpr double kRefRouterPowerMw = 119.55;
constexpr double kRefAcAreaMm2 = 0.004474;
constexpr double kRefAcPowerMw = 2.02;

// Reference configuration the coefficients are calibrated at.
constexpr RouterParams kRef{};  // 5 ports, 4 VCs, depth 4, 64-bit, rtx 3.

// Component fractions of the generic router at the reference point.
// Buffer-dominated splits are consistent with published 90 nm router
// characterizations (e.g. Peh & Dally's router models).
struct Fractions {
  double buffers, crossbar, va, sa, rt, other;
};
constexpr Fractions kAreaFrac{0.50, 0.13, 0.09, 0.07, 0.03, 0.18};
constexpr Fractions kPowerFrac{0.45, 0.15, 0.10, 0.08, 0.04, 0.18};

// Structural scaling laws. Each returns a dimensionless size metric that is
// proportional to the component's silicon cost.
double buffers_metric(const RouterParams& p) {
  return static_cast<double>(p.ports) * p.vcs * p.buffer_depth * p.flit_width;
}
double rtx_metric(const RouterParams& p) {
  return static_cast<double>(p.ports) * p.vcs * p.rtx_depth * p.flit_width;
}
double crossbar_metric(const RouterParams& p) {
  return static_cast<double>(p.ports) * p.ports * p.flit_width;
}
double va_metric(const RouterParams& p) {
  // First-stage V:1 arbiters per input VC plus second-stage PV:1 arbiters
  // per output VC; the quadratic term dominates.
  const double pv = static_cast<double>(p.ports) * p.vcs;
  return pv * pv;
}
double sa_metric(const RouterParams& p) {
  // V:1 per input port plus P:1 per output port.
  return static_cast<double>(p.ports) * p.ports * p.vcs;
}
double rt_metric(const RouterParams& p) {
  return static_cast<double>(p.ports) * p.vcs;
}
double other_metric(const RouterParams& p) {
  return static_cast<double>(p.ports) * p.vcs;
}
double ac_metric(const RouterParams& p) {
  // PV state entries compared in parallel; each entry is a VC identifier of
  // ceil(log2(PV)) bits plus a valid bit (Figure 12).
  const double pv = static_cast<double>(p.ports) * p.vcs;
  const double entry_bits = std::ceil(std::log2(pv)) + 1.0;
  return pv * entry_bits;
}

Breakdown scale(const Fractions& frac, double router_total, double ac_total,
                const RouterParams& p) {
  Breakdown b;
  b.buffers = frac.buffers * router_total * buffers_metric(p) /
              buffers_metric(kRef);
  b.crossbar = frac.crossbar * router_total * crossbar_metric(p) /
               crossbar_metric(kRef);
  b.va = frac.va * router_total * va_metric(p) / va_metric(kRef);
  b.sa = frac.sa * router_total * sa_metric(p) / sa_metric(kRef);
  b.rt = frac.rt * router_total * rt_metric(p) / rt_metric(kRef);
  b.other = frac.other * router_total * other_metric(p) / other_metric(kRef);
  // Retransmission buffers cost the same per bit as the transmission
  // buffers (both are flit-wide register files).
  b.rtx_buffers = frac.buffers * router_total * rtx_metric(p) /
                  buffers_metric(kRef);
  b.ac_unit = ac_total * ac_metric(p) / ac_metric(kRef);
  return b;
}

}  // namespace

Breakdown area_mm2(const RouterParams& p) {
  FTNOC_CHECK(p.ports > 0 && p.vcs > 0 && p.buffer_depth > 0 &&
              p.flit_width > 0 && p.rtx_depth >= 0);
  return scale(kAreaFrac, kRefRouterAreaMm2, kRefAcAreaMm2, p);
}

Breakdown power_mw(const RouterParams& p) {
  FTNOC_CHECK(p.ports > 0 && p.vcs > 0 && p.buffer_depth > 0 &&
              p.flit_width > 0 && p.rtx_depth >= 0);
  return scale(kPowerFrac, kRefRouterPowerMw, kRefAcPowerMw, p);
}

AcOverheadReport ac_overhead(const RouterParams& p) {
  const Breakdown area = area_mm2(p);
  const Breakdown power = power_mw(p);
  AcOverheadReport r;
  r.router_area_mm2 = area.generic_total();
  r.router_power_mw = power.generic_total();
  r.ac_area_mm2 = area.ac_unit;
  r.ac_power_mw = power.ac_unit;
  r.area_overhead_pct = 100.0 * r.ac_area_mm2 / r.router_area_mm2;
  r.power_overhead_pct = 100.0 * r.ac_power_mw / r.router_power_mw;
  return r;
}

}  // namespace ftnoc::power

#include "ecc/hamming.hpp"

#include <array>
#include <bit>

#include "common/check.hpp"

namespace ftnoc::ecc {
namespace {

constexpr bool is_power_of_two(int x) {
  return x > 0 && (x & (x - 1)) == 0;
}

struct Masks {
  // For each of the 7 Hamming check groups: the set of codeword positions
  // participating in that parity group, split into lo (0..63) / hi (64..71).
  std::array<std::uint64_t, kCheckBits> lo{};
  std::array<std::uint8_t, kCheckBits> hi{};
  // Position (1..71) of the i-th data bit within the codeword.
  std::array<std::uint8_t, kDataBits> data_pos{};
};

constexpr Masks build_masks() {
  Masks m{};
  int data_index = 0;
  for (int pos = 1; pos < kCodewordBits; ++pos) {
    if (!is_power_of_two(pos)) {
      m.data_pos[data_index++] = static_cast<std::uint8_t>(pos);
    }
    for (int g = 0; g < kCheckBits; ++g) {
      if (pos & (1 << g)) {
        if (pos < 64) {
          m.lo[g] |= (1ULL << pos);
        } else {
          m.hi[g] = static_cast<std::uint8_t>(m.hi[g] | (1u << (pos - 64)));
        }
      }
    }
  }
  return m;
}

constexpr Masks kMasks = build_masks();

int group_parity(const Codeword& cw, int g) {
  const int p = std::popcount(cw.lo & kMasks.lo[g]) +
                std::popcount(static_cast<unsigned>(cw.hi & kMasks.hi[g]));
  return p & 1;
}

int overall_parity(const Codeword& cw) {
  return (std::popcount(cw.lo) + std::popcount(static_cast<unsigned>(cw.hi))) &
         1;
}

// The data positions (everything except 0 and the powers of two) form six
// contiguous runs: 3, 5-7, 9-15, 17-31, 33-63 and 65-71. Scattering and
// gathering are therefore six shift-and-mask segments instead of a 64-step
// bit loop; kMasks.data_pos still defines the authoritative layout and the
// unit tests pin the two formulations against each other.

}  // namespace

Codeword encode(std::uint64_t data) {
  Codeword cw;
  // Scatter data bits into their codeword positions.
  cw.lo = ((data & 0x1ULL) << 3) | (((data >> 1) & 0x7ULL) << 5) |
          (((data >> 4) & 0x7FULL) << 9) |
          (((data >> 11) & 0x7FFFULL) << 17) |
          (((data >> 26) & 0x7FFFFFFFULL) << 33);
  cw.hi = static_cast<std::uint8_t>(((data >> 57) & 0x7FULL) << 1);
  // Set each check bit so its group's parity is even. The check bit at
  // position 2^g participates in group g, so setting it fixes exactly that
  // group (all check positions are still zero here).
  for (int g = 0; g < kCheckBits; ++g) {
    if (group_parity(cw, g)) cw.flip(1 << g);
  }
  // Overall parity bit (position 0) makes the full codeword even-parity.
  if (overall_parity(cw)) cw.flip(0);
  return cw;
}

std::uint64_t extract_data(const Codeword& cw) {
  return ((cw.lo >> 3) & 0x1ULL) | (((cw.lo >> 5) & 0x7ULL) << 1) |
         (((cw.lo >> 9) & 0x7FULL) << 4) |
         (((cw.lo >> 17) & 0x7FFFULL) << 11) |
         (((cw.lo >> 33) & 0x7FFFFFFFULL) << 26) |
         ((static_cast<std::uint64_t>(cw.hi >> 1) & 0x7FULL) << 57);
}

DecodeResult decode(const Codeword& cw) {
  int syndrome = 0;
  for (int g = 0; g < kCheckBits; ++g) {
    syndrome |= group_parity(cw, g) << g;
  }
  const int parity = overall_parity(cw);

  if (syndrome == 0 && parity == 0) {
    return {DecodeStatus::kClean, extract_data(cw)};
  }
  if (syndrome == 0 && parity == 1) {
    // The overall parity bit itself flipped; data is intact.
    return {DecodeStatus::kCorrected, extract_data(cw)};
  }
  if (parity == 1) {
    // Odd number of flips with a non-zero syndrome: a single-bit error at
    // position `syndrome` — unless the syndrome points outside the
    // codeword, which can only result from >= 3 flips.
    if (syndrome >= kCodewordBits) {
      return {DecodeStatus::kUncorrectable, 0};
    }
    Codeword fixed = cw;
    fixed.flip(syndrome);
    return {DecodeStatus::kCorrected, extract_data(fixed)};
  }
  // Non-zero syndrome with even parity: double-bit error. Detected, not
  // correctable.
  return {DecodeStatus::kUncorrectable, 0};
}

}  // namespace ftnoc::ecc

#pragma once
// Hamming SEC/DED (72,64) codec — the error-detection/correction blanket the
// paper assumes on every flit (§3: "the architecture already employs a
// single-error correction scheme", SEC/DED detects double-bit errors and
// triggers retransmission).
//
// Layout: a 72-bit codeword. Bit position 0 carries the overall (DED)
// parity; positions 1..71 follow the classic Hamming arrangement where the
// power-of-two positions (1,2,4,8,16,32,64) hold the seven SEC check bits
// and the remaining 64 positions hold the data bits in ascending order.

#include <cstdint>

namespace ftnoc::ecc {

/// A 72-bit codeword: `lo` holds bit positions 0..63, `hi` positions 64..71.
/// bit()/flip() are inline — they sit on the fault-injection and decode hot
/// paths (one call per corrupted bit per flit per hop).
struct Codeword {
  std::uint64_t lo = 0;
  std::uint8_t hi = 0;

  friend bool operator==(const Codeword&, const Codeword&) = default;

  bool bit(int pos) const {
    if (pos < 64) return (lo >> pos) & 1;
    return (hi >> (pos - 64)) & 1;
  }
  void flip(int pos) {
    if (pos < 64) {
      lo ^= (1ULL << pos);
    } else {
      hi = static_cast<std::uint8_t>(hi ^ (1u << (pos - 64)));
    }
  }
};

inline constexpr int kCodewordBits = 72;
inline constexpr int kDataBits = 64;
inline constexpr int kCheckBits = 7;  // plus the overall parity bit.

/// Outcome of decoding a (possibly corrupted) codeword.
enum class DecodeStatus : std::uint8_t {
  kClean,          ///< No error detected.
  kCorrected,      ///< Single-bit error corrected (SEC).
  kUncorrectable,  ///< Multi-bit error detected, data unrecoverable (DED).
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::uint64_t data = 0;  ///< Valid unless status == kUncorrectable.
};

/// Encodes 64 data bits into a SEC/DED codeword.
Codeword encode(std::uint64_t data);

/// Decodes a codeword, correcting a single-bit error if present.
DecodeResult decode(const Codeword& cw);

/// Extracts the data bits without any checking (used by unit tests and the
/// FEC-only scheme's "silent corruption" path).
std::uint64_t extract_data(const Codeword& cw);

}  // namespace ftnoc::ecc

// Integration tests: link and logic fault injection across whole-network
// simulations — the paper's §3.1 (HBH), §3 baselines (FEC/E2E/none) and §4
// (RT/VA/SA logic upsets with the Allocation Comparator).

#include <gtest/gtest.h>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.15;
  cfg.warmup_messages = 300;
  cfg.total_messages = 3'000;
  cfg.max_cycles = 400'000;
  return cfg;
}

// --- HBH (§3.1) -------------------------------------------------------------

TEST(FaultIntegrationHbh, AllMessagesCleanUnderHeavyLinkErrors) {
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 0.05;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.link_single_corrected, 0u);
  EXPECT_GT(r.link_retransmission_events, 0u);
  // Every NACK produces exactly one retransmission event.
  EXPECT_EQ(r.nacks_sent, r.link_retransmission_events);
}

TEST(FaultIntegrationHbh, LatencyBarelyMovesUpToTenPercentErrors) {
  // The headline claim of Figure 6.
  SimConfig lo = base_config();
  lo.protection = LinkProtection::kHbh;
  lo.faults.link_error_rate = 0.0;
  SimConfig hi = lo;
  hi.faults.link_error_rate = 0.1;
  const SimResults rlo = run_simulation(lo);
  const SimResults rhi = run_simulation(hi);
  ASSERT_TRUE(rlo.completed && rhi.completed);
  EXPECT_LT(rhi.avg_latency_cycles, rlo.avg_latency_cycles * 1.25)
      << "HBH latency should stay nearly flat";
  EXPECT_EQ(rhi.corrupted_delivered, 0u);
}

TEST(FaultIntegrationHbh, DetectOnlyModeRetransmitsSingleBitErrors) {
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.ecc_detect_only = true;
  cfg.faults.link_error_rate = 0.01;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  // No in-place correction happens in detect-only mode.
  EXPECT_EQ(r.link_single_corrected, 0u);
  EXPECT_GT(r.link_retransmission_events, 0u);
}

TEST(FaultIntegrationHbh, MultiBitOnlyFaultsAllRetransmitted) {
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 0.01;
  cfg.faults.multi_bit_fraction = 1.0;  // Every fault is uncorrectable.
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_EQ(r.link_single_corrected, 0u);
  EXPECT_GT(r.link_retransmission_events, 100u);
}

// --- FEC baseline ------------------------------------------------------------

TEST(FaultIntegrationFec, SingleBitErrorsCorrectedSilently) {
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kFec;
  cfg.faults.link_error_rate = 0.01;
  cfg.faults.multi_bit_fraction = 0.0;  // Only correctable faults.
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.link_single_corrected, 0u);
  EXPECT_EQ(r.link_retransmission_events, 0u);
}

TEST(FaultIntegrationFec, MultiBitErrorsCorruptDeliveredPackets) {
  // FEC has no retransmission path: multi-bit upsets reach the destination.
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kFec;
  cfg.faults.link_error_rate = 0.02;
  cfg.faults.multi_bit_fraction = 0.5;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.corrupted_delivered, 0u);
}

// --- E2E baseline ------------------------------------------------------------

TEST(FaultIntegrationE2e, RetransmitsUntilCleanDelivery) {
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kE2e;
  cfg.faults.link_error_rate = 0.02;
  cfg.faults.multi_bit_fraction = 0.5;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  // E2E never delivers a corrupt message — it retransmits instead.
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.e2e_retransmits, 0u);
}

TEST(FaultIntegrationE2e, LatencyBlowsUpRelativeToHbh) {
  // Figure 5's key comparison at a high error rate.
  SimConfig e2e = base_config();
  e2e.protection = LinkProtection::kE2e;
  e2e.ecc_detect_only = true;
  e2e.faults.link_error_rate = 0.1;
  SimConfig hbh = e2e;
  hbh.protection = LinkProtection::kHbh;
  const SimResults re = run_simulation(e2e);
  const SimResults rh = run_simulation(hbh);
  ASSERT_TRUE(re.completed && rh.completed);
  EXPECT_GT(re.avg_latency_cycles, rh.avg_latency_cycles * 1.5);
}

// --- No protection -----------------------------------------------------------

TEST(FaultIntegrationNone, ErrorsFlowThroughUndetected) {
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kNone;
  cfg.faults.link_error_rate = 0.02;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.corrupted_delivered, 0u);
  EXPECT_EQ(r.link_single_corrected, 0u);
  EXPECT_EQ(r.nacks_sent, 0u);
}

// --- Logic errors (§4) --------------------------------------------------------

TEST(FaultIntegrationLogic, VaUpsetsAllCaughtByAc) {
  SimConfig cfg = base_config();
  cfg.faults.va_error_rate = 0.001;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.va_errors_recovered, 0u);
  EXPECT_EQ(r.unprotected_errors, 0u);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(FaultIntegrationLogic, SaUpsetsAllCaughtByAc) {
  SimConfig cfg = base_config();
  cfg.faults.sa_error_rate = 0.001;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.sa_errors_recovered, 0u);
  EXPECT_EQ(r.unprotected_errors, 0u);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(FaultIntegrationLogic, RtUpsetsRecoveredUnderXy) {
  SimConfig cfg = base_config();
  cfg.faults.rt_error_rate = 0.001;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.rt_errors_recovered, 0u);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(FaultIntegrationLogic, RtUpsetsBenignUnderAdaptive) {
  // §4.2: under adaptive routing a functional misdirection is undetected
  // and harmless — packets still arrive, just over longer paths.
  SimConfig cfg = base_config();
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.faults.rt_error_rate = 0.001;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(FaultIntegrationLogic, SaUpsetsWithoutAcBecomeLinkErrors) {
  // Ablation: with the AC disabled and HBH protection on, a wrecked flit
  // from an SA upset is caught by the next hop's SEC/DED and retransmitted.
  SimConfig cfg = base_config();
  cfg.enable_ac = false;
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.sa_error_rate = 0.001;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.sa_errors_recovered, 0u);
  EXPECT_GT(r.unprotected_errors, 0u);
  EXPECT_GT(r.link_retransmission_events, 0u);  // Caught downstream.
  EXPECT_EQ(r.corrupted_delivered, 0u);         // HBH still saves the data.
}

TEST(FaultIntegrationLogic, VaUpsetsWithoutAcLosePackets) {
  SimConfig cfg = base_config();
  cfg.enable_ac = false;
  cfg.faults.va_error_rate = 0.001;
  cfg.total_messages = 2'000;
  Simulator sim(cfg);
  const SimResults r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.unprotected_errors, 0u);
  EXPECT_EQ(r.va_errors_recovered, 0u);
}

TEST(FaultIntegrationLogic, CombinedFaultStormStillDeliversClean) {
  // All fault processes at once (single-upset-at-a-time still holds per
  // draw) — the "comprehensive plan of attack" scenario.
  SimConfig cfg = base_config();
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 0.01;
  cfg.faults.rt_error_rate = 0.0005;
  cfg.faults.va_error_rate = 0.0005;
  cfg.faults.sa_error_rate = 0.0005;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.link_errors_corrected, 0u);
  EXPECT_GT(r.va_errors_recovered, 0u);
  EXPECT_GT(r.sa_errors_recovered, 0u);
}

// Parameterized sweep: HBH delivers clean at every error rate of the
// paper's x-axis.
class HbhErrorRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(HbhErrorRateSweep, CleanDeliveryAtRate) {
  SimConfig cfg = base_config();
  cfg.total_messages = 1'500;
  cfg.warmup_messages = 200;
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = GetParam();
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperRates, HbhErrorRateSweep,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2, 1e-1));

}  // namespace
}  // namespace ftnoc

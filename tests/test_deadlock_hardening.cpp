// Tests for the deadlock-protocol hardenings layered on top of the paper's
// rules 1-4: probe expiry/retry, failed-probe tracking with the progress
// tracker, and the fallback self-recovery.

#include <gtest/gtest.h>

#include "core/deadlock.hpp"
#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

TEST(ProbeExpiry, TimedOutProbeAllowsReprobe) {
  DeadlockAgent a(/*self=*/1, /*threshold=*/8, /*backoff=*/4,
                  /*timeout=*/16);
  a.make_probe(0, 0, 100);
  EXPECT_FALSE(a.should_probe(50, 110));  // Still live.
  EXPECT_TRUE(a.should_probe(50, 117));   // Expired (100+16 < 117).
}

TEST(ProbeExpiry, StaleReturnAfterReprobeIsIgnored) {
  DeadlockAgent a(1, 8, 4, 16);
  const ProbeSignal p1 = a.make_probe(0, 0, 100);
  ASSERT_TRUE(a.should_probe(50, 200));
  const ProbeSignal p2 = a.make_probe(0, 0, 200);
  EXPECT_FALSE(a.on_probe_returned(p1));  // Old probe: ignored.
  EXPECT_TRUE(a.on_probe_returned(p2));
}

TEST(FailedProbes, CountExpiredUnreturnedProbes) {
  DeadlockAgent a(1, 8, 4, 16);
  a.make_probe(0, 0, 100);
  EXPECT_EQ(a.failed_probes(), 0);
  a.make_probe(0, 0, 130);  // Previous expired unreturned.
  EXPECT_EQ(a.failed_probes(), 1);
  a.make_probe(0, 0, 160);
  EXPECT_EQ(a.failed_probes(), 2);
}

TEST(FailedProbes, ResetOnProgress) {
  DeadlockAgent a(1, 8, 4, 16);
  a.make_probe(0, 0, 100);
  a.make_probe(0, 0, 130);
  EXPECT_EQ(a.failed_probes(), 1);
  a.note_progress();
  EXPECT_EQ(a.failed_probes(), 0);
}

TEST(FailedProbes, ResetOnSuccessfulReturn) {
  DeadlockAgent a(1, 8, 4, 16);
  a.make_probe(0, 0, 100);
  const ProbeSignal p = a.make_probe(0, 0, 130);
  EXPECT_EQ(a.failed_probes(), 1);
  ASSERT_TRUE(a.on_probe_returned(p));
  EXPECT_EQ(a.failed_probes(), 0);
}

TEST(ProbeTtl, HopsFieldDefaultsToZero) {
  DeadlockAgent a(1, 8, 4);
  const ProbeSignal p = a.make_probe(2, 1, 10);
  EXPECT_EQ(p.hops, 0u);
}

TEST(FallbackRecovery, DisabledByZeroConfig) {
  // With the fallback disabled the canonical 2x2 cycle is still broken by
  // the probe protocol proper (every origin is on the cycle).
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.num_vcs = 1;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 32;
  cfg.max_cycles = 30'000;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 24;
  cfg.deadlock.probe_backoff = 16;
  cfg.deadlock.fallback_probe_failures = 0;
  Simulator sim(cfg);
  for (int i = 0; i < 8; ++i) {
    sim.network().inject_packet(0, 3, 4);
    sim.network().inject_packet(1, 2, 4);
    sim.network().inject_packet(3, 0, 4);
    sim.network().inject_packet(2, 1, 4);
  }
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.fallback_recoveries, 0u);
}

TEST(FallbackRecovery, SaturatedAdaptiveMakesProgressWithRecovery) {
  // Near the adaptive saturation point the recovery machinery (probes +
  // fallback + injection gate) must keep an 8x8 mesh flowing.
  SimConfig cfg;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.num_vcs = 2;
  cfg.injection_rate = 0.28;
  cfg.warmup_messages = 1'000;
  cfg.total_messages = 8'000;
  cfg.max_cycles = 400'000;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 16;
  cfg.deadlock.probe_backoff = 9;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.deadlocks_confirmed + r.fallback_recoveries, 0u);
}

TEST(ExitWindow, ConfigurableAndValidated) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "exit_block_window=1024"), std::nullopt);
  EXPECT_EQ(cfg.deadlock.exit_block_window, 1024u);
  EXPECT_EQ(apply_override(cfg, "probe_ttl=512"), std::nullopt);
  EXPECT_EQ(cfg.deadlock.probe_ttl, 512u);
  EXPECT_TRUE(apply_override(cfg, "probe_ttl=-3").has_value());
}

}  // namespace
}  // namespace ftnoc

// Tests for the parallel sweep subsystem: engine determinism across
// thread counts, in-order streaming, grid expansion, presets and JSONL
// serialization.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sweep/grid.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/presets.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc {
namespace {

/// Small-but-real points: big enough to exercise the network, small
/// enough that a whole grid runs in seconds.
SimConfig tiny_config() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.warmup_messages = 200;
  cfg.total_messages = 1'200;
  cfg.max_cycles = 200'000;
  return cfg;
}

std::vector<sweep::SweepPoint> tiny_grid() {
  std::vector<sweep::SweepPoint> points;
  for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
    sweep::SweepPoint pt;
    pt.label = "inj=" + std::to_string(rate);
    pt.config = tiny_config();
    pt.config.injection_rate = rate;
    pt.config.faults.link_error_rate = 1e-3;
    points.push_back(std::move(pt));
  }
  return points;
}

TEST(SweepEngine, DeterministicAcrossThreadCounts) {
  const auto points = tiny_grid();

  auto run_with = [&](int threads) {
    sweep::SweepOptions opts;
    opts.num_threads = threads;
    opts.base_seed = 7;
    std::vector<std::string> lines;
    for (const auto& pr : sweep::SweepEngine(opts).run(points)) {
      lines.push_back(sweep::to_jsonl(pr));
    }
    return lines;
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.size(), points.size());
  // Byte-identical records: per-point seeds depend only on (base_seed,
  // index), and to_jsonl excludes wall-clock.
  EXPECT_EQ(serial, parallel);
}

TEST(SweepEngine, ThreadAffinityNeverChangesOutputBytes) {
  // pin_threads is a pure scheduling hint (round-robin CPU affinity on
  // Linux, a no-op elsewhere); the emitted records must be byte-identical
  // with it on or off, for both the single-worker inline path (which must
  // never pin the caller's thread) and a real pool.
  const auto points = tiny_grid();

  auto run_with = [&](int threads, bool pin) {
    sweep::SweepOptions opts;
    opts.num_threads = threads;
    opts.base_seed = 7;
    opts.pin_threads = pin;
    std::vector<std::string> lines;
    for (const auto& pr : sweep::SweepEngine(opts).run(points)) {
      lines.push_back(sweep::to_jsonl(pr));
    }
    return lines;
  };

  const auto unpinned = run_with(4, false);
  EXPECT_EQ(run_with(4, true), unpinned);
  EXPECT_EQ(run_with(1, true), unpinned);
}

TEST(SweepEngine, StreamsResultsInPointOrder) {
  const auto points = tiny_grid();
  sweep::SweepOptions opts;
  opts.num_threads = 4;

  std::vector<std::size_t> emitted;
  std::size_t last_done = 0;
  sweep::SweepEngine(opts).run(
      points,
      [&](const sweep::PointResult& pr) { emitted.push_back(pr.index); },
      [&](std::size_t done, std::size_t total, const sweep::PointResult&) {
        EXPECT_EQ(done, last_done + 1);
        EXPECT_EQ(total, points.size());
        last_done = done;
      });

  ASSERT_EQ(emitted.size(), points.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(last_done, points.size());
}

TEST(SweepEngine, SeedPolicies) {
  std::vector<sweep::SweepPoint> points(2);
  points[0].label = "a";
  points[0].config = tiny_config();
  points[0].config.seed = 1234;
  points[1].label = "b";
  points[1].config = tiny_config();
  points[1].config.seed = 1234;

  sweep::SweepOptions keep;
  keep.num_threads = 1;
  keep.seed_policy = sweep::SeedPolicy::kUseConfigSeed;
  const auto kept = sweep::SweepEngine(keep).run(points);
  EXPECT_EQ(kept[0].config.seed, 1234u);
  EXPECT_EQ(kept[1].config.seed, 1234u);

  sweep::SweepOptions derive;
  derive.num_threads = 1;
  derive.base_seed = 99;
  const auto derived = sweep::SweepEngine(derive).run(points);
  EXPECT_EQ(derived[0].config.seed, Rng::derive_seed(99, 0));
  EXPECT_EQ(derived[1].config.seed, Rng::derive_seed(99, 1));
  EXPECT_NE(derived[0].config.seed, derived[1].config.seed);
}

TEST(SweepEngine, EmptySweepIsANoop) {
  sweep::SweepEngine engine;
  EXPECT_TRUE(engine.run({}).empty());
}

TEST(SweepGrid, ParseAxis) {
  sweep::GridAxis axis;
  EXPECT_EQ(sweep::parse_axis("injection_rate=0.1,0.2,0.3", axis),
            std::nullopt);
  EXPECT_EQ(axis.key, "injection_rate");
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"0.1", "0.2", "0.3"}));

  EXPECT_EQ(sweep::parse_axis("protection=hbh", axis), std::nullopt);
  EXPECT_EQ(axis.values, std::vector<std::string>{"hbh"});

  EXPECT_NE(sweep::parse_axis("no_equals_sign", axis), std::nullopt);
  EXPECT_NE(sweep::parse_axis("key=a,,b", axis), std::nullopt);
  EXPECT_NE(sweep::parse_axis("key=", axis), std::nullopt);
}

TEST(SweepGrid, ExpandsCartesianProductFirstAxisSlowest) {
  std::vector<sweep::GridAxis> axes = {
      {"protection", {"hbh", "fec"}},
      {"injection_rate", {"0.05", "0.1", "0.15"}},
      {"total_messages", {"1000"}},  // Single-valued: pins, no label.
  };
  std::vector<sweep::SweepPoint> points;
  ASSERT_EQ(sweep::expand_grid(tiny_config(), axes, points), std::nullopt);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].label, "protection=hbh injection_rate=0.05");
  EXPECT_EQ(points[1].label, "protection=hbh injection_rate=0.1");
  EXPECT_EQ(points[3].label, "protection=fec injection_rate=0.05");
  EXPECT_EQ(points[5].label, "protection=fec injection_rate=0.15");
  EXPECT_EQ(points[5].config.protection, LinkProtection::kFec);
  EXPECT_DOUBLE_EQ(points[5].config.injection_rate, 0.15);
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.total_messages, 1000u);
  }
}

TEST(SweepGrid, NoAxesYieldsTheBasePoint) {
  std::vector<sweep::SweepPoint> points;
  ASSERT_EQ(sweep::expand_grid(tiny_config(), {}, points), std::nullopt);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].label, "base");
}

TEST(SweepGrid, ReportsOverrideAndValidationErrors) {
  std::vector<sweep::SweepPoint> points;
  EXPECT_NE(sweep::expand_grid(tiny_config(), {{"bogus_knob", {"1"}}},
                               points),
            std::nullopt);
  EXPECT_NE(sweep::expand_grid(tiny_config(), {{"num_vcs", {"99"}}}, points),
            std::nullopt);
}

TEST(SweepPresets, Fig05GridShape) {
  const auto points = sweep::fig05_points(tiny_config());
  ASSERT_EQ(points.size(), 15u);  // 3 schemes x 5 rates.
  EXPECT_EQ(points[0].label, "Fig5/HBH/err=1e-05");
  EXPECT_EQ(points[14].label, "Fig5/FEC/err=0.1");
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    EXPECT_DOUBLE_EQ(pt.config.injection_rate, 0.25);
    // Pure-technique comparison: only FEC corrects in place.
    EXPECT_EQ(pt.config.ecc_detect_only,
              pt.config.protection != LinkProtection::kFec);
  }
}

TEST(SweepPresets, AblCthresGridShape) {
  const auto points = sweep::abl_cthres_points(tiny_config());
  ASSERT_EQ(points.size(), 7u);
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    EXPECT_TRUE(pt.config.deadlock.enable_recovery);
  }
  EXPECT_EQ(points[0].config.deadlock.probe_threshold, 8u);
  EXPECT_EQ(points[6].config.deadlock.probe_threshold, 512u);
}

TEST(SweepPresets, Fig06And07GridShape) {
  const auto f6 = sweep::fig06_points(tiny_config());
  const auto f7 = sweep::fig07_points(tiny_config());
  ASSERT_EQ(f6.size(), 15u);  // 3 patterns x 5 rates.
  ASSERT_EQ(f6.size(), f7.size());
  EXPECT_EQ(f6[0].label, "Fig6/NR/err=1e-05");
  EXPECT_EQ(f6[14].label, "Fig6/TN/err=0.1");
  for (std::size_t i = 0; i < f6.size(); ++i) {
    EXPECT_EQ(f6[i].config.validate(), std::nullopt) << f6[i].label;
    EXPECT_EQ(f6[i].config.protection, LinkProtection::kHbh);
    EXPECT_DOUBLE_EQ(f6[i].config.injection_rate, 0.25);
    // Figures 6 and 7 read different columns of the same runs: the grids
    // must differ only in their labels.
    EXPECT_EQ(f7[i].label, "Fig7" + f6[i].label.substr(4));
    EXPECT_DOUBLE_EQ(f7[i].config.faults.link_error_rate,
                     f6[i].config.faults.link_error_rate);
    EXPECT_EQ(f7[i].config.pattern, f6[i].config.pattern);
  }
}

TEST(SweepPresets, Fig08And09GridShape) {
  const auto points = sweep::fig08_points(tiny_config());
  ASSERT_EQ(points.size(), 20u);  // {AD, DT} x 10 injection rates.
  EXPECT_EQ(points[0].label, "Fig8/AD/inj=0.1");
  EXPECT_EQ(points[19].label, "Fig8/DT/inj=1");
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    // Saturation points can never eject the full budget: cycle-capped.
    EXPECT_LE(pt.config.max_cycles, 60'000u);
    // Adaptive routing pairs with deadlock recovery, XY needs none.
    EXPECT_EQ(pt.config.deadlock.enable_recovery,
              pt.config.routing == RoutingAlgorithm::kMinimalAdaptive);
  }
  EXPECT_EQ(sweep::fig09_points(tiny_config()).size(), 20u);
}

TEST(SweepPresets, Fig13GridShape) {
  const auto points = sweep::fig13a_points(tiny_config());
  ASSERT_EQ(points.size(), 12u);  // 3 mechanisms x 4 rates.
  EXPECT_EQ(points[0].label, "Fig13a/LINK-HBH/err=1e-05");
  EXPECT_EQ(points[11].label, "Fig13a/SA-Logic/err=0.01");
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    // One mechanism active per series.
    const int active = (pt.config.faults.link_error_rate > 0.0 ? 1 : 0) +
                       (pt.config.faults.rt_error_rate > 0.0 ? 1 : 0) +
                       (pt.config.faults.sa_error_rate > 0.0 ? 1 : 0);
    EXPECT_EQ(active, 1) << pt.label;
  }
  EXPECT_DOUBLE_EQ(points[4].config.faults.rt_error_rate, 1e-5);
  EXPECT_DOUBLE_EQ(points[8].config.faults.sa_error_rate, 1e-5);
  EXPECT_EQ(sweep::fig13b_points(tiny_config()).size(), 12u);
}

TEST(SweepPresets, EveryListedNameResolves) {
  const auto& names = sweep::preset_names();
  ASSERT_GE(names.size(), 8u);
  for (const auto& name : names) {
    EXPECT_FALSE(sweep::preset_points(name, tiny_config()).empty()) << name;
  }
}

TEST(SweepPresets, UnknownPresetIsEmpty) {
  EXPECT_TRUE(sweep::preset_points("fig99", tiny_config()).empty());
}

TEST(SweepPresets, NamesLineListsEveryPreset) {
  // The shared "valid presets" diagnostic must stay in lockstep with the
  // dispatch table: every listed name appears on the line, and the line
  // contains nothing that fails to resolve.
  const std::string line = sweep::preset_names_line();
  for (const auto& name : sweep::preset_names()) {
    EXPECT_NE(line.find(name), std::string::npos) << name;
  }
  std::istringstream in(line);
  std::string word;
  while (in >> word) {
    EXPECT_FALSE(sweep::preset_points(word, tiny_config()).empty()) << word;
  }
}

TEST(SweepPresets, LargeFabricGridShapes) {
  // The production-fabric presets pin their mesh dimensions (and, for
  // large_mesh/perf_large, their scale knobs) inside the preset: a 4x4
  // tiny base must not leak into the grid, or the golden digest and perf
  // baseline would silently depend on the caller's scale.
  const auto large = sweep::large_mesh_points(tiny_config());
  ASSERT_EQ(large.size(), 5u);
  EXPECT_EQ(large[0].label, "LargeMesh/mesh16/HBH");
  EXPECT_EQ(large[4].label, "LargeMesh/torus32/HBH");
  for (const auto& pt : large) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    EXPECT_GE(pt.config.mesh_width, 16) << pt.label;
    EXPECT_EQ(pt.config.mesh_width, pt.config.mesh_height) << pt.label;
    EXPECT_GE(pt.config.total_messages, 2'000u) << pt.label;
  }
  EXPECT_TRUE(large[3].config.torus);
  EXPECT_TRUE(large[4].config.torus);
  EXPECT_EQ(large[4].config.mesh_width, 32);
  EXPECT_FALSE(large[2].config.dead_links.empty());

  const auto deg16 = sweep::fault_degradation_16_points(tiny_config());
  ASSERT_EQ(deg16.size(), 9u);  // k = 0..8.
  EXPECT_EQ(deg16[0].label, "FaultDeg16/k=0");
  EXPECT_EQ(deg16[8].label, "FaultDeg16/k=8");
  for (const auto& pt : deg16) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    EXPECT_EQ(pt.config.mesh_width, 16) << pt.label;
    EXPECT_EQ(pt.config.mesh_height, 16) << pt.label;
  }
  EXPECT_EQ(deg16[8].config.dead_links.size(), 8u);

  const auto perf_large = sweep::perf_large_points(tiny_config());
  ASSERT_EQ(perf_large.size(), 5u);  // Same hot paths as `perf`.
  EXPECT_EQ(perf_large.size(), sweep::perf_points(tiny_config()).size());
  EXPECT_EQ(perf_large[0].label, "PerfL/HBH");
  for (const auto& pt : perf_large) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    EXPECT_EQ(pt.config.mesh_width, 16) << pt.label;
  }
}

TEST(SweepPresets, BufferAblationGridShape) {
  const auto points = sweep::buffer_ablation_points(tiny_config());
  // 3 policies x (5 error rates + 5 load points).
  ASSERT_EQ(points.size(), 30u);
  EXPECT_EQ(points[0].label, "BufAbl/private_vc/err=1e-05");
  EXPECT_EQ(points[5].label, "BufAblLoad/private_vc/inj=0.2");
  EXPECT_EQ(points[10].label, "BufAbl/damq/err=1e-05");
  EXPECT_EQ(points[20].label, "BufAbl/voq/err=1e-05");
  for (const auto& pt : points) {
    EXPECT_EQ(pt.config.validate(), std::nullopt) << pt.label;
    EXPECT_EQ(pt.config.routing, RoutingAlgorithm::kXY) << pt.label;
    EXPECT_EQ(pt.config.protection, LinkProtection::kHbh) << pt.label;
  }
  EXPECT_EQ(points[12].config.buffer_policy, BufferPolicyKind::kDamq);
  EXPECT_EQ(points[25].config.buffer_policy, BufferPolicyKind::kVoq);
}

TEST(SweepJsonl, RecordShapeAndEscaping) {
  sweep::PointResult pr;
  pr.index = 3;
  pr.label = "quote\"back\\slash";
  pr.config = tiny_config();
  pr.results.completed = true;
  pr.results.avg_latency_cycles = 21.5;
  pr.wall_ms = 12.0;

  const std::string line = sweep::to_jsonl(pr);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"point\":3"), std::string::npos);
  EXPECT_NE(line.find("\"label\":\"quote\\\"back\\\\slash\""),
            std::string::npos);
  EXPECT_NE(line.find("\"avg_latency_cycles\":21.5"), std::string::npos);
  // Wall-clock stays out of the record unless asked for, so byte-diffing
  // two runs is meaningful.
  EXPECT_EQ(line.find("wall_ms"), std::string::npos);
  EXPECT_NE(sweep::to_jsonl(pr, /*include_timing=*/true).find("wall_ms"),
            std::string::npos);
}

}  // namespace
}  // namespace ftnoc

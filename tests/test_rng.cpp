// Unit tests for the deterministic RNG (common/rng).

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ftnoc {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngDeathTest, NextBelowZeroFailsTheContractCheck) {
  // The header documents bound > 0; bound == 0 used to divide by zero in
  // the rejection threshold (`-bound % bound`).
  Rng r(1);
  EXPECT_DEATH(r.next_below(0), "bound > 0");
}

TEST(Rng, DeriveSeedIsStableAndSpreads) {
  // Stateless: same (base, index) always gives the same seed.
  EXPECT_EQ(Rng::derive_seed(42, 7), Rng::derive_seed(42, 7));

  // Nearby indices and bases land on unrelated seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(Rng::derive_seed(1, i));
    seeds.insert(Rng::derive_seed(2, i));
  }
  EXPECT_EQ(seeds.size(), 2000u);
}

TEST(Rng, DeriveSeedStreamsAreIndependent) {
  Rng a(Rng::derive_seed(5, 0));
  Rng b(Rng::derive_seed(5, 1));
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(5);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(p)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, p, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.fork();
  // The child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(17);
  const std::uint64_t bound = 8;
  std::vector<int> counts(bound, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, n / 8.0 * 0.1);
  }
}

}  // namespace
}  // namespace ftnoc

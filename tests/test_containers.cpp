// Property tests for the PR 3 hot-path containers, each checked against a
// std:: oracle under randomized operation sequences:
//  * RingQueue vs std::deque — wraparound, front/indexing, full/empty edges;
//  * InlineVec vs std::vector — the spill (size N -> N+1) and unspill
//    (back to <= N via erase_at) boundaries, insert_at at both ends;
//  * RetransmissionBuffer vs a std::deque re-implementation of the barrel
//    semantics — including the depth-4 case a 4-stage router requires,
//    which keeps both regions exactly at the InlineVec inline capacity.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "common/inline_vec.hpp"
#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "core/buffer_policy.hpp"
#include "core/flit.hpp"
#include "core/retransmission_buffer.hpp"

namespace ftnoc {
namespace {

// ---------------------------------------------------------------------------
// RingQueue vs std::deque.
// ---------------------------------------------------------------------------

TEST(RingQueue, MatchesDequeOracleAcrossWraparound) {
  for (std::size_t cap : {1u, 2u, 3u, 4u, 7u}) {
    RingQueue<int> q;
    q.reset_capacity(cap);
    std::deque<int> oracle;
    Rng rng(0xC0FFEE + cap);
    int next = 0;
    for (int step = 0; step < 5000; ++step) {
      if (!oracle.empty() && (oracle.size() == cap || rng.bernoulli(0.5))) {
        ASSERT_EQ(q.front(), oracle.front());
        q.pop_front();
        oracle.pop_front();
      } else {
        q.push_back(next);
        oracle.push_back(next);
        ++next;
      }
      ASSERT_EQ(q.size(), oracle.size());
      ASSERT_EQ(q.empty(), oracle.empty());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(q[i], oracle[i]) << "cap=" << cap << " step=" << step
                                   << " index " << i;
      }
    }
  }
}

TEST(RingQueue, ResetCapacityEmptiesAndReuses) {
  RingQueue<int> q;
  q.reset_capacity(3);
  q.push_back(1);
  q.push_back(2);
  // Force the head off zero so the later reset starts from a wrapped state.
  q.pop_front();
  q.push_back(3);
  q.push_back(4);
  EXPECT_EQ(q.size(), 3u);
  q.reset_capacity(2);
  EXPECT_TRUE(q.empty());
  q.push_back(9);
  EXPECT_EQ(q.front(), 9);
}

// ---------------------------------------------------------------------------
// InlineVec vs std::vector.
// ---------------------------------------------------------------------------

TEST(InlineVec, SpillAndUnspillBoundaries) {
  InlineVec<int, 4> v;
  std::vector<int> oracle;
  // Fill to exactly the inline capacity.
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
    oracle.push_back(i);
  }
  ASSERT_EQ(v.size(), 4u);
  // The N -> N+1 push spills to the heap; contents must survive the move.
  v.push_back(4);
  oracle.push_back(4);
  for (std::size_t i = 0; i < oracle.size(); ++i) ASSERT_EQ(v[i], oracle[i]);
  // Erasing back to N unspills; contents must survive the move back.
  v.erase_at(2);
  oracle.erase(oracle.begin() + 2);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < oracle.size(); ++i) ASSERT_EQ(v[i], oracle[i]);
  // And a subsequent spill must still work (heap capacity was retained).
  v.push_back(5);
  v.push_back(6);
  oracle.push_back(5);
  oracle.push_back(6);
  for (std::size_t i = 0; i < oracle.size(); ++i) ASSERT_EQ(v[i], oracle[i]);
}

TEST(InlineVec, InsertAtBothEndsAndMiddle) {
  InlineVec<int, 4> v;
  std::vector<int> oracle;
  auto check = [&]() {
    ASSERT_EQ(v.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) ASSERT_EQ(v[i], oracle[i]);
  };
  v.insert_at(0, 10);           // Insert into empty.
  oracle.insert(oracle.begin(), 10);
  check();
  v.insert_at(1, 30);           // i == size() appends.
  oracle.insert(oracle.begin() + 1, 30);
  check();
  v.insert_at(1, 20);           // Middle.
  oracle.insert(oracle.begin() + 1, 20);
  check();
  v.insert_at(0, 5);            // Front, now at inline capacity.
  oracle.insert(oracle.begin(), 5);
  check();
  v.insert_at(2, 15);           // This insert itself spills (4 -> 5).
  oracle.insert(oracle.begin() + 2, 15);
  check();
}

TEST(InlineVec, RandomOpsMatchVectorOracle) {
  InlineVec<int, 4> v;
  std::vector<int> oracle;
  Rng rng(0xBADC0DE);
  int next = 0;
  for (int step = 0; step < 5000; ++step) {
    const double r = rng.next_double();
    if (oracle.empty() || r < 0.40) {
      v.push_back(next);
      oracle.push_back(next);
      ++next;
    } else if (r < 0.65) {
      const auto i = static_cast<std::size_t>(
          rng.next_below(oracle.size() + 1));
      v.insert_at(i, next);
      oracle.insert(oracle.begin() + static_cast<std::ptrdiff_t>(i), next);
      ++next;
    } else if (r < 0.95) {
      const auto i = static_cast<std::size_t>(rng.next_below(oracle.size()));
      v.erase_at(i);
      oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      v.clear();
      oracle.clear();
    }
    ASSERT_EQ(v.size(), oracle.size()) << "step " << step;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(v[i], oracle[i]) << "step " << step << " index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// RetransmissionBuffer vs a std::deque re-implementation of the barrel.
// ---------------------------------------------------------------------------

// Straight re-implementation of the documented barrel semantics on
// std::deque, mirroring retransmission_buffer.cpp operation by operation.
struct BarrelOracle {
  struct Sent {
    Flit flit;
    Cycle sent_at;
  };
  struct Pending {
    Flit flit;
    bool credit_held;
  };
  int depth;
  Cycle window;
  std::deque<Sent> sent;
  std::deque<Pending> pending;

  int occupancy() const {
    return static_cast<int>(sent.size() + pending.size());
  }
  int free_slots() const { return depth - occupancy(); }
  bool can_accept(Cycle now) const {
    if (free_slots() > 0) return true;
    return !sent.empty() && now - sent.front().sent_at >= window;
  }
  void record_transmission(const Flit& f, Cycle now) {
    if (!pending.empty() && pending.front().flit.packet_id == f.packet_id &&
        pending.front().flit.seq == f.seq) {
      pending.pop_front();
    }
    if (occupancy() >= depth) sent.pop_front();
    sent.push_back({f, now});
  }
  void retire_expired(Cycle now) {
    while (!sent.empty() && now - sent.front().sent_at > window) {
      sent.pop_front();
    }
  }
  int on_nack() {
    const int n = static_cast<int>(sent.size());
    for (int i = n - 1; i >= 0; --i) {
      pending.push_front({sent[static_cast<std::size_t>(i)].flit, true});
    }
    sent.clear();
    return n;
  }
  void absorb(const Flit& f) { pending.push_back({f, false}); }
  void absorb_as_owner(const Flit& f, PacketId pid) {
    std::size_t i = 0;
    while (i < pending.size() && pending[i].flit.packet_id == pid) ++i;
    pending.insert(pending.begin() + static_cast<std::ptrdiff_t>(i),
                   {f, false});
  }
  void push_pending_back(const Flit& f) { pending.push_back({f, true}); }
};

void check_against_oracle(RetransmissionBuffer& b, const BarrelOracle& o) {
  ASSERT_EQ(b.occupancy(), o.occupancy());
  ASSERT_EQ(b.sent_count(), static_cast<int>(o.sent.size()));
  ASSERT_EQ(b.pending_count(), static_cast<int>(o.pending.size()));
  for (int i = 0; i < b.sent_count(); ++i) {
    const auto& e = o.sent[static_cast<std::size_t>(i)];
    ASSERT_EQ(b.sent_flit(i).packet_id, e.flit.packet_id);
    ASSERT_EQ(b.sent_flit(i).seq, e.flit.seq);
    ASSERT_EQ(b.sent_time(i), e.sent_at);
  }
  for (int i = 0; i < b.pending_count(); ++i) {
    const auto& e = o.pending[static_cast<std::size_t>(i)];
    ASSERT_EQ(b.pending_flit(i).packet_id, e.flit.packet_id);
    ASSERT_EQ(b.pending_flit(i).seq, e.flit.seq);
    ASSERT_EQ(b.pending_credit_held(i), e.credit_held);
  }
}

// Random op mix at a given depth. Depth 4 (the 4-stage router's minimum,
// window 4) keeps sent/pending exactly at the InlineVec inline capacity;
// depth 6 forces both regions through spill/unspill repeatedly.
void run_barrel_property(int depth, Cycle window, std::uint64_t seed) {
  RetransmissionBuffer b(depth, window);
  BarrelOracle o{depth, window, {}, {}};
  Rng rng(seed);
  Cycle now = 1000;
  PacketId pid = 1;
  std::uint8_t seq = 0;
  for (int step = 0; step < 20000; ++step) {
    now += rng.next_below(2);  // Time advances irregularly.
    const double r = rng.next_double();
    if (r < 0.35) {
      // Transmit: either the front pending flit (replay) or a fresh one.
      Flit f;
      if (b.has_pending() && rng.bernoulli(0.7)) {
        f = b.front_pending();
      } else {
        if (!b.can_accept(now)) continue;
        if (rng.bernoulli(0.2)) {
          ++pid;
          seq = 0;
        }
        f = make_flit(FlitType::kBody, pid, 0, 1, seq++, now, now);
      }
      b.record_transmission(f, now);
      o.record_transmission(f, now);
    } else if (r < 0.55) {
      b.retire_expired(now);
      o.retire_expired(now);
    } else if (r < 0.70) {
      ASSERT_EQ(b.on_nack(), o.on_nack());
    } else if (r < 0.80 && b.free_slots() > 0) {
      const Flit f = make_flit(FlitType::kBody, pid, 0, 1, seq++, now, now);
      b.absorb(f);
      o.absorb(f);
    } else if (r < 0.88 && b.free_slots() > 0) {
      const Flit f = make_flit(FlitType::kBody, pid, 0, 1, seq++, now, now);
      b.absorb_as_owner(f, pid);
      o.absorb_as_owner(f, pid);
    } else if (r < 0.94 && b.free_slots() > 0) {
      const Flit f = make_flit(FlitType::kBody, pid, 0, 1, seq++, now, now);
      b.push_pending_back(f);
      o.push_pending_back(f);
    } else if (b.has_pending()) {
      const Flit f = b.pop_pending();
      ASSERT_EQ(f.packet_id, o.pending.front().flit.packet_id);
      ASSERT_EQ(f.seq, o.pending.front().flit.seq);
      o.pending.pop_front();
    }
    check_against_oracle(b, o);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "diverged at step " << step << " (depth " << depth << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// DamqPool vs a std::deque-per-VC oracle.
// ---------------------------------------------------------------------------

// The oracle keeps one plain deque per VC; admission, shared-region usage
// and the occupancy summaries are all recomputed from the deque sizes on
// every query, so any drift in the pool's incremental counters shows up.
struct DamqOracle {
  int num_vcs;
  int depth;
  int reserve;
  std::vector<std::deque<int>> q;

  int shared_in_use() const {
    int n = 0;
    for (const auto& d : q) {
      n += static_cast<int>(d.size()) > reserve
               ? static_cast<int>(d.size()) - reserve
               : 0;
    }
    return n;
  }
  int shared_budget() const { return num_vcs * (depth - reserve); }
  int total() const {
    int n = 0;
    for (const auto& d : q) n += static_cast<int>(d.size());
    return n;
  }
  bool can_accept(int vc) const {
    return static_cast<int>(q[static_cast<std::size_t>(vc)].size()) <
               reserve ||
           shared_in_use() < shared_budget();
  }
};

void run_damq_property(int num_vcs, int depth, int reserve,
                       std::uint64_t seed) {
  DamqPool<int> pool;
  pool.reset(num_vcs, depth, reserve);
  DamqOracle o{num_vcs, depth, reserve,
               std::vector<std::deque<int>>(
                   static_cast<std::size_t>(num_vcs))};
  Rng rng(seed);
  int next = 0;
  for (int step = 0; step < 20000; ++step) {
    const int vc = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(num_vcs)));
    auto& dq = o.q[static_cast<std::size_t>(vc)];
    // Admission must agree *before* deciding the op: it is the exact
    // predicate ("below reserve, or shared room left") the routers lean
    // on for flow control.
    ASSERT_EQ(pool.can_accept(vc), o.can_accept(vc)) << "step " << step;
    if (o.can_accept(vc) && (dq.empty() || rng.bernoulli(0.55))) {
      pool.push_back(vc, next);
      dq.push_back(next);
      ++next;
    } else if (!dq.empty()) {
      ASSERT_EQ(pool.front(vc), dq.front());
      pool.pop_front(vc);
      dq.pop_front();
    }
    ASSERT_EQ(pool.size(vc), static_cast<int>(dq.size()));
    ASSERT_EQ(pool.empty(vc), dq.empty());
    ASSERT_EQ(pool.total_occupancy(), o.total()) << "step " << step;
    ASSERT_EQ(pool.shared_in_use(), o.shared_in_use()) << "step " << step;
    ASSERT_EQ(pool.free_slots(), num_vcs * depth - o.total());
    for (std::size_t i = 0; i < dq.size(); ++i) {
      ASSERT_EQ(pool.at(vc, static_cast<int>(i)), dq[i])
          << "step " << step << " index " << i;
    }
    ASSERT_TRUE(pool.consistent()) << "step " << step;
  }
}

TEST(DamqPool, MatchesDequeOracleSmallReserve) {
  run_damq_property(/*num_vcs=*/3, /*depth=*/4, /*reserve=*/1, 0xDA301);
}

TEST(DamqPool, MatchesDequeOracleMidReserve) {
  run_damq_property(/*num_vcs=*/4, /*depth=*/6, /*reserve=*/3, 0xDA302);
}

TEST(DamqPool, ReserveEqualsDepthDegeneratesToPrivate) {
  // reserve == depth leaves no shared region: each VC is a private
  // depth-slot FIFO, and the shared counters must stay pinned at zero.
  DamqPool<int> pool;
  pool.reset(/*num_vcs=*/2, /*depth=*/3, /*reserve=*/3);
  EXPECT_EQ(pool.shared_budget(), 0);
  for (int v = 0; v < 2; ++v) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(pool.can_accept(v));
      pool.push_back(v, v * 10 + i);
    }
    EXPECT_FALSE(pool.can_accept(v));
    EXPECT_EQ(pool.shared_in_use(), 0);
  }
  run_damq_property(/*num_vcs=*/2, /*depth=*/3, /*reserve=*/3, 0xDA303);
}

TEST(DamqPool, SharedExhaustionStarvesOnlyAboveReserve) {
  // One greedy VC may take its reserve plus the whole shared region; the
  // other VCs must still each get exactly their reserve, never less.
  const int num_vcs = 3, depth = 4, reserve = 2;
  DamqPool<int> pool;
  pool.reset(num_vcs, depth, reserve);
  int pushed = 0;
  while (pool.can_accept(0)) pool.push_back(0, pushed++);
  EXPECT_EQ(pool.size(0), reserve + pool.shared_budget());
  EXPECT_EQ(pool.shared_in_use(), pool.shared_budget());
  for (int v = 1; v < num_vcs; ++v) {
    for (int i = 0; i < reserve; ++i) {
      ASSERT_TRUE(pool.can_accept(v)) << "vc " << v << " slot " << i;
      pool.push_back(v, pushed++);
    }
    EXPECT_FALSE(pool.can_accept(v));
  }
  EXPECT_EQ(pool.free_slots(), 0);
  EXPECT_TRUE(pool.consistent());
  // Draining the greedy VC below its reserve frees shared slots for the
  // starved ones.
  while (pool.size(0) > reserve - 1) pool.pop_front(0);
  EXPECT_TRUE(pool.can_accept(1));
  EXPECT_TRUE(pool.consistent());
}

TEST(RetransmissionBarrel, Depth3MatchesDequeOracle) {
  run_barrel_property(3, RetransmissionBuffer::kDefaultNackWindow, 11);
}

TEST(RetransmissionBarrel, Depth4FourStageWindowMatchesDequeOracle) {
  run_barrel_property(4, RetransmissionBuffer::kDefaultNackWindow + 1, 22);
}

TEST(RetransmissionBarrel, Depth6SpillsMatchDequeOracle) {
  run_barrel_property(6, RetransmissionBuffer::kDefaultNackWindow, 33);
}

}  // namespace
}  // namespace ftnoc

// Tests for the gate-level netlist library and the structural Allocation
// Comparator, including the behavioural-vs-gate-level cross-validation
// (the stand-in for the paper's RTL/synthesis flow).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/ac_circuit.hpp"

namespace ftnoc::rtl {
namespace {

// --- Netlist primitives ------------------------------------------------------

TEST(Netlist, BasicGates) {
  Netlist n;
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  n.add_output("and", n.add_and(a, b));
  n.add_output("or", n.add_or(a, b));
  n.add_output("xor", n.add_xor(a, b));
  n.add_output("not_a", n.add_not(a));
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto out = n.evaluate({va, vb});
      EXPECT_EQ(out[0], va && vb);
      EXPECT_EQ(out[1], va || vb);
      EXPECT_EQ(out[2], va != vb);
      EXPECT_EQ(out[3], !va);
    }
  }
}

TEST(Netlist, ReduceTreesMatchFold) {
  Netlist n;
  std::vector<SignalId> xs;
  for (int i = 0; i < 7; ++i) xs.push_back(n.add_input("x"));
  n.add_output("or", n.reduce_or(xs));
  n.add_output("and", n.reduce_and(xs));
  Rng rng(4);
  for (int t = 0; t < 100; ++t) {
    std::vector<bool> in;
    bool any = false;
    bool all = true;
    for (int i = 0; i < 7; ++i) {
      const bool v = rng.bernoulli(0.5);
      in.push_back(v);
      any = any || v;
      all = all && v;
    }
    const auto out = n.evaluate(in);
    EXPECT_EQ(out[0], any);
    EXPECT_EQ(out[1], all);
  }
}

TEST(Netlist, BusEqual) {
  Netlist n;
  std::vector<SignalId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(n.add_input("a"));
  for (int i = 0; i < 4; ++i) b.push_back(n.add_input("b"));
  n.add_output("eq", n.bus_equal(a, b));
  Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    const unsigned va = static_cast<unsigned>(rng.next_below(16));
    const unsigned vb = static_cast<unsigned>(rng.next_below(16));
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back((va >> i) & 1u);
    for (int i = 0; i < 4; ++i) in.push_back((vb >> i) & 1u);
    EXPECT_EQ(n.evaluate(in)[0], va == vb);
  }
}

TEST(Netlist, GateEquivalentsCountTwoInputGates) {
  Netlist n;
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  n.add_output("o", n.add_and(n.add_not(a), n.add_xor(a, b)));
  EXPECT_DOUBLE_EQ(n.gate_equivalents(), 2.5);  // AND + XOR + 0.5*NOT.
}

TEST(Netlist, VerilogEmission) {
  Netlist n;
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  n.add_output("y", n.add_and(a, n.add_not(b)));
  const std::string v = n.to_verilog("tiny");
  EXPECT_NE(v.find("module tiny"), std::string::npos);
  EXPECT_NE(v.find("input wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire y"), std::string::npos);
  EXPECT_NE(v.find("~b"), std::string::npos);
  EXPECT_NE(v.find("a & n0"), std::string::npos);
  EXPECT_NE(v.find("assign y = n1"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Netlist, AcCircuitVerilogIsLarge) {
  // The full comparator for the paper's 5x4 configuration emits a module
  // with one assign per gate — the structural-RTL artefact of Figure 12.
  AcCircuit ac(5, 4);
  const std::string v = ac.netlist().to_verilog("allocation_comparator");
  EXPECT_NE(v.find("any_error"), std::string::npos);
  EXPECT_GT(v.size(), 50'000u);  // Thousands of gates, one line each.
}

TEST(NetlistDeath, GateBeforeInputAborts) {
  Netlist n;
  const SignalId a = n.add_input("a");
  n.add_and(a, a);
  EXPECT_DEATH(n.add_input("late"), "FTNOC_CHECK");
}

// --- AC circuit --------------------------------------------------------------

TEST(AcCircuit, CleanStateRaisesNothing) {
  AcCircuit ac(5, 3);
  std::vector<RoutingStateEntry> rt = {{1, 1u << 2}};
  std::vector<VaStateEntry> va = {{1, 2, 1}};
  std::vector<SaStateEntry> sa = {{0, 2}};
  const auto f = ac.check(rt, va, sa);
  EXPECT_FALSE(f.any_error);
}

TEST(AcCircuit, DetectsInvalidVcEncoding) {
  // The paper's own example: 3 VCs encoded in 2 bits; "11" is illegal.
  AcCircuit ac(5, 3);
  std::vector<RoutingStateEntry> rt = {{1, 1u << 2}};
  std::vector<VaStateEntry> va = {{1, 2, 3}};
  const auto f = ac.check(rt, va, {});
  EXPECT_TRUE(f.any_error);
  EXPECT_TRUE(f.va_invalid);
}

TEST(AcCircuit, DetectsRtMismatch) {
  AcCircuit ac(5, 3);
  std::vector<RoutingStateEntry> rt = {{7, 1u << 2}};  // South only.
  std::vector<VaStateEntry> va = {{7, 0, 1}};          // Went North.
  const auto f = ac.check(rt, va, {});
  EXPECT_TRUE(f.va_rt_mismatch);
}

TEST(AcCircuit, DetectsDuplicatePairing) {
  AcCircuit ac(5, 3);
  std::vector<RoutingStateEntry> rt = {{0, 1u << 2}, {4, 1u << 2}};
  std::vector<VaStateEntry> va = {{0, 2, 1}, {4, 2, 1}};
  const auto f = ac.check(rt, va, {});
  EXPECT_TRUE(f.va_duplicate);
}

TEST(AcCircuit, DetectsSaDuplicate) {
  AcCircuit ac(5, 3);
  std::vector<SaStateEntry> sa = {{0, 2}, {3, 2}};
  const auto f = ac.check({}, {}, sa);
  EXPECT_TRUE(f.sa_error);
}

TEST(AcCircuit, GateCountGrowsWithConfiguration) {
  const double small = AcCircuit(5, 2).gate_equivalents();
  const double paper = AcCircuit(5, 4).gate_equivalents();
  const double large = AcCircuit(5, 6).gate_equivalents();
  EXPECT_GT(paper, small);
  EXPECT_GT(large, paper);
  // The duplicate comparison matrix is quadratic in PV, so the growth
  // from V=2 to V=4 is superlinear.
  EXPECT_GT(paper / small, 2.0);
}

TEST(AcCircuit, StaysTinyRelativeToARouter) {
  // Plausibility of the Table 1 claim from the structural side: a few
  // thousand gate equivalents is ~1-2% of a 90 nm VC router.
  const double ge = AcCircuit(5, 4).gate_equivalents();
  EXPECT_GT(ge, 500.0);
  EXPECT_LT(ge, 20'000.0);
}

// Cross-validation: random fixed-slot router states must give the same
// any_error verdict from the behavioural model and the gate-level circuit.
class AcCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(AcCrossValidation, BehaviouralMatchesGateLevel) {
  const int V = GetParam();
  const int P = 5;
  AcCircuit circuit(P, V);
  AllocationComparator behavioural(P, V);
  Rng rng(1000 + static_cast<std::uint64_t>(V));
  const int vc_space = 1 << circuit.vc_bits();

  for (int trial = 0; trial < 400; ++trial) {
    std::vector<RoutingStateEntry> rt;
    std::vector<VaStateEntry> va;
    std::vector<SaStateEntry> sa;
    for (int g = 0; g < P * V; ++g) {
      if (!rng.bernoulli(0.4)) continue;
      RoutingStateEntry r;
      r.input_vc = static_cast<std::uint16_t>(g);
      r.valid_ports = static_cast<std::uint8_t>(rng.next_below(32));
      rt.push_back(r);
      if (rng.bernoulli(0.7)) {
        VaStateEntry e;
        e.input_vc = static_cast<std::uint16_t>(g);
        // Mostly sane, sometimes corrupt — ids stay within the hardware
        // register width (3 port bits, vc_bits VC bits).
        e.out_port = static_cast<PortId>(rng.next_below(8));
        e.out_vc = static_cast<VcId>(rng.next_below(
            static_cast<std::uint64_t>(vc_space)));
        va.push_back(e);
      }
    }
    for (PortId p = 0; p < P; ++p) {
      if (!rng.bernoulli(0.5)) continue;
      // At most one grant per input port: the circuit's SA state is one
      // register row per port (the behavioural multicast check covers
      // malformed *lists*, which fixed rows cannot express).
      sa.push_back({p, static_cast<PortId>(rng.next_below(8))});
    }

    const bool gate_level = circuit.check(rt, va, sa).any_error;
    const bool behav = behavioural.check(rt, va, sa).any_error();
    ASSERT_EQ(gate_level, behav)
        << "V=" << V << " trial=" << trial << " va=" << va.size()
        << " sa=" << sa.size();
  }
}

INSTANTIATE_TEST_SUITE_P(VcSweep, AcCrossValidation,
                         ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace ftnoc::rtl

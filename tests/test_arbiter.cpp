// Unit tests for the round-robin arbiters behind the VA/SA allocators.

#include "noc/arbiter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftnoc {
namespace {

TEST(RoundRobinArbiter, NoRequestsNoGrant) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.arbitrate(0), -1);
}

TEST(RoundRobinArbiter, SingleRequesterWins) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.arbitrate(1u << 2), 2);
  EXPECT_EQ(a.arbitrate(1u << 2), 2);
}

TEST(RoundRobinArbiter, RotatesAmongPersistentRequesters) {
  RoundRobinArbiter a(3);
  const std::uint32_t all = 0b111;
  std::vector<int> grants;
  for (int i = 0; i < 6; ++i) grants.push_back(a.arbitrate(all));
  // Every requester wins exactly twice in 6 rounds.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(std::count(grants.begin(), grants.end(), r), 2);
  }
  // And no one wins twice in a row.
  for (std::size_t i = 1; i < grants.size(); ++i) {
    EXPECT_NE(grants[i], grants[i - 1]);
  }
}

TEST(RoundRobinArbiter, LastWinnerGetsLowestPriority) {
  RoundRobinArbiter a(4);
  ASSERT_EQ(a.arbitrate(0b0011), 0);
  // 0 and 1 still request: 1 must win now.
  EXPECT_EQ(a.arbitrate(0b0011), 1);
  // 0 and 1 again: wraps back to 0.
  EXPECT_EQ(a.arbitrate(0b0011), 0);
}

TEST(RoundRobinArbiter, PeekDoesNotAdvanceState) {
  RoundRobinArbiter a(4);
  const int first = a.peek(0b1111);
  EXPECT_EQ(a.peek(0b1111), first);
  EXPECT_EQ(a.arbitrate(0b1111), first);
}

TEST(RoundRobinArbiter, NoStarvationUnderAsymmetricLoad) {
  RoundRobinArbiter a(4);
  // Requester 3 requests every cycle; 0 joins intermittently.
  int wins0 = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t req = (i % 2 == 0) ? 0b1001 : 0b1000;
    if (a.arbitrate(req) == 0) ++wins0;
  }
  EXPECT_GT(wins0, 20);
}

TEST(ArbiterBank, IndependentArbiters) {
  ArbiterBank bank(3, 4);
  EXPECT_EQ(bank.size(), 3);
  const int g0 = bank.at(0).arbitrate(0b1111);
  // Advancing arbiter 0 must not move arbiter 1's rotation.
  EXPECT_EQ(bank.at(1).arbitrate(0b1111), g0);
}

}  // namespace
}  // namespace ftnoc

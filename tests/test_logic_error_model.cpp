// Tests pinning the §4 recovery-latency analysis to the paper's numbers.

#include "core/logic_error_model.hpp"

#include <gtest/gtest.h>

namespace ftnoc {
namespace {

TEST(LogicErrorModel, VaRecoveryIsOneCycleForAllDepths) {
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(va_recovery_penalty(n), 1) << "stages=" << n;
  }
}

TEST(LogicErrorModel, SaRecoveryIsOneCycleForAllDepths) {
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(sa_recovery_penalty(n), 1) << "stages=" << n;
  }
}

TEST(LogicErrorModel, SaCollisionCaughtDownstreamCostsTwoCycles) {
  // §4.3 case (c): NACK + retransmission.
  EXPECT_EQ(sa_collision_retransmit_penalty(), 2);
}

TEST(LogicErrorModel, RtBlockedCurrentNodeRoutingIsOneCycle) {
  // 3-/4-stage routers route in the current node; the local VA catches the
  // bad direction before transmission.
  EXPECT_EQ(rt_recovery_penalty(3, false, RtMisrouteKind::kBlockedOrInvalid),
            1);
  EXPECT_EQ(rt_recovery_penalty(4, false, RtMisrouteKind::kBlockedOrInvalid),
            1);
}

TEST(LogicErrorModel, RtBlockedLookaheadPenalties) {
  // §4.2: 3 cycles in a 2-stage router, 2 cycles in a single-stage router.
  EXPECT_EQ(rt_recovery_penalty(2, true, RtMisrouteKind::kBlockedOrInvalid),
            3);
  EXPECT_EQ(rt_recovery_penalty(1, true, RtMisrouteKind::kBlockedOrInvalid),
            2);
}

TEST(LogicErrorModel, RtFunctionalDeterministicIsOnePlusN) {
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(rt_recovery_penalty(n, n <= 2,
                                  RtMisrouteKind::kFunctionalDeterministic),
              1 + n)
        << "stages=" << n;
  }
}

TEST(LogicErrorModel, RtFunctionalAdaptiveIsFree) {
  // Undetectable, and benign: the flit just travels further.
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(
        rt_recovery_penalty(n, false, RtMisrouteKind::kFunctionalAdaptive),
        0);
  }
}

TEST(LogicErrorModel, OnlyFourStageAvoidsNeighborNack) {
  // §4.1: in a 4-stage router the AC concludes before crossbar traversal.
  EXPECT_TRUE(ac_requires_neighbor_nack(1));
  EXPECT_TRUE(ac_requires_neighbor_nack(2));
  EXPECT_TRUE(ac_requires_neighbor_nack(3));
  EXPECT_FALSE(ac_requires_neighbor_nack(4));
}

}  // namespace
}  // namespace ftnoc

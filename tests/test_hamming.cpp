// Unit + property tests for the Hamming SEC/DED (72,64) codec — the
// error-correcting blanket every link-protection scheme relies on.

#include "ecc/hamming.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ftnoc::ecc {
namespace {

TEST(Hamming, RoundTripSampleValues) {
  for (std::uint64_t data :
       {0ULL, 1ULL, 0xFFFFFFFFFFFFFFFFULL, 0xDEADBEEFCAFEF00DULL,
        0x8000000000000000ULL, 0x5555555555555555ULL}) {
    const Codeword cw = encode(data);
    const DecodeResult r = decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, data);
    EXPECT_EQ(extract_data(cw), data);
  }
}

TEST(Hamming, CleanCodewordHasEvenParityAndZeroSyndrome) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t data = rng.next_u64();
    EXPECT_EQ(decode(encode(data)).status, DecodeStatus::kClean);
  }
}

// Property: every single-bit flip, at every position, is corrected.
TEST(Hamming, CorrectsEverySingleBitFlip) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t data = rng.next_u64();
    for (int pos = 0; pos < kCodewordBits; ++pos) {
      Codeword cw = encode(data);
      cw.flip(pos);
      const DecodeResult r = decode(cw);
      EXPECT_EQ(r.status, DecodeStatus::kCorrected) << "pos=" << pos;
      EXPECT_EQ(r.data, data) << "pos=" << pos;
    }
  }
}

// Property: every distinct double-bit flip is *detected* (never silently
// accepted, never miscorrected into a "clean" verdict).
TEST(Hamming, DetectsEveryDoubleBitFlip) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t data = rng.next_u64();
    const Codeword clean = encode(data);
    for (int a = 0; a < kCodewordBits; ++a) {
      for (int b = a + 1; b < kCodewordBits; ++b) {
        Codeword cw = clean;
        cw.flip(a);
        cw.flip(b);
        const DecodeResult r = decode(cw);
        EXPECT_EQ(r.status, DecodeStatus::kUncorrectable)
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Hamming, ParityBitFlipAloneIsCorrected) {
  const std::uint64_t data = 0xA5A5A5A5A5A5A5A5ULL;
  Codeword cw = encode(data);
  cw.flip(0);  // Position 0 is the overall DED parity bit.
  const DecodeResult r = decode(cw);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, data);
}

TEST(Hamming, CodewordBitAccessors) {
  Codeword cw;
  EXPECT_FALSE(cw.bit(0));
  EXPECT_FALSE(cw.bit(71));
  cw.flip(71);
  EXPECT_TRUE(cw.bit(71));
  cw.flip(71);
  EXPECT_FALSE(cw.bit(71));
  cw.flip(63);
  EXPECT_TRUE(cw.bit(63));
}

TEST(Hamming, DistinctDataGivesDistinctCodewords) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = a ^ (1ULL << (i % 64));
    EXPECT_FALSE(encode(a) == encode(b));
  }
}

}  // namespace
}  // namespace ftnoc::ecc

// Timer-wakeup regression tests for the event-queue kernel (DESIGN.md
// §4.10): every class of *delayed* action must schedule a router
// self-tick at (or before) its due cycle, else an otherwise-idle router
// sleeps through it and the event kernel diverges from the scan kernel.
//
// Each test locks a scan-kernel network and an event-kernel network built
// from the same config into cycle-by-cycle state_digest() comparison.
// Low injection rates are deliberate: wake bugs only manifest when
// routers actually go idle between events — a saturated mesh re-ticks
// every cycle and hides them (the PR 3 drop-window and PR 5
// staged-replay bugs both survived saturated testing and lived exactly
// in this seam).
//
// Delayed-action classes covered:
//   1. HBH NACK send_at / drop windows      (link errors, 3- and 4-stage)
//   2. Retransmission-barrel retire deadlines (NACK window expiry)
//   3. Probe timeouts and own-probe GC      (deadlock recovery, the one
//      exact WakeInfo::timer)
//   4. Drain-then-kill completion           (runtime link escalation)

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "noc/network.hpp"

namespace ftnoc {
namespace {

// Steps both kernels in lock-step and fails on the first digest mismatch.
// A mismatch cycle is the wake bug's signature: the event kernel skipped
// (or double-ran nothing — steps are idempotent when quiescent) a router
// step the scan kernel performed.
// Returns the event network's stats so each test can additionally assert
// its delayed-action class actually fired (a scenario that arms no
// windows proves nothing).
const StatsCollector& expect_lockstep(Network& scan, Network& event,
                                      Cycle cycles) {
  for (Cycle c = 0; c < cycles; ++c) {
    scan.step();
    event.step();
    EXPECT_EQ(scan.state_digest(), event.state_digest())
        << "event kernel diverged from scan kernel at cycle "
        << event.now() << " — a delayed action fired without a scheduled "
        << "self-tick (timer-wakeup bug)";
    if (scan.state_digest() != event.state_digest()) break;
  }
  return event.stats();
}

struct KernelPair {
  KernelPair(SimConfig cfg) : scan_cfg(cfg), event_cfg(cfg) {
    scan_cfg.force_scan_kernel = true;
    event_cfg.force_scan_kernel = false;
    scan.emplace(scan_cfg);
    event.emplace(event_cfg);
    // Most fault/deadlock counters only bump inside the measurement
    // window (the Simulator opens it at the warm-up boundary); open it
    // from cycle 0 so the scenario-has-teeth assertions below see them.
    scan->stats().begin_measurement(0);
    event->stats().begin_measurement(0);
  }
  const StatsCollector& run(Cycle cycles) {
    return expect_lockstep(*scan, *event, cycles);
  }
  SimConfig scan_cfg;
  SimConfig event_cfg;
  std::optional<Network> scan;
  std::optional<Network> event;
};

// Sparse traffic so routers idle between packets; every delayed action
// then has to wake its router itself rather than riding a traffic tick.
SimConfig sparse_base() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.vc_buffer_depth = 4;
  cfg.packet_length = 4;
  cfg.injection_rate = 0.02;
  cfg.warmup_messages = 0;
  cfg.total_messages = 50;
  cfg.max_cycles = 10'000;
  cfg.seed = 7;
  return cfg;
}

// Class 1+2: HBH protection with real link errors. Corrupted flits arm
// NACK send_at delays and receiver drop windows; every transmission arms
// a retransmission-barrel retire deadline (sent_at + nack_window + 1)
// that must fire on an otherwise-idle sender.
TEST(EventWakeup, HbhNackAndDropWindows) {
  SimConfig cfg = sparse_base();
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 0.01;
  cfg.faults.multi_bit_fraction = 0.3;  // Real NACK traffic, not just FEC.
  KernelPair nets(cfg);
  EXPECT_GT(nets.run(3000).nacks_sent(), 0u)
      << "scenario armed no NACK/drop windows";
}

// Same classes through the 4-stage pipeline: the dedicated ST stage and
// deeper barrels shift every window by a cycle, which is where the PR 3
// drop-window bug lived.
TEST(EventWakeup, HbhWindowsFourStage) {
  SimConfig cfg = sparse_base();
  cfg.protection = LinkProtection::kHbh;
  cfg.pipeline_stages = 4;
  cfg.retransmission_depth = 4;
  cfg.faults.link_error_rate = 0.01;
  cfg.faults.multi_bit_fraction = 0.3;
  KernelPair nets(cfg);
  EXPECT_GT(nets.run(3000).nacks_sent(), 0u)
      << "scenario armed no NACK/drop windows";
}

// Class 3: probe timeouts. Adaptive routing with recovery enabled and a
// low probe threshold sends real probes; the own-probe bookkeeping GC at
// sent_at + probe_timeout + 1 is the one delayed action an otherwise
// fully idle router performs, carried by the exact WakeInfo::timer.
TEST(EventWakeup, ProbeTimeoutGc) {
  SimConfig cfg = sparse_base();
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.num_vcs = 2;
  cfg.injection_rate = 0.35;  // Enough contention to arm probes...
  cfg.total_messages = 120;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 16;  // ...and the due-cycle probe GC
  KernelPair nets(cfg);  // GC fires on idle routers.
  EXPECT_GT(nets.run(4000).probes_sent(), 0u) << "scenario sent no probes";
}

// Class 3, idle half: the GC must fire on a network with NO traffic left.
// A hotspot burst arms probes, then injection stops entirely; the records
// in own_probe_route_ are only collected at sent_at + probe_timeout + 1,
// long after every wire has settled — if the WakeInfo::timer is dropped,
// the event-kernel router sleeps forever with the stale record and the
// digests stay diverged. (The saturated ProbeTimeoutGc test above cannot
// catch that: continuous traffic re-ticks the router every cycle.)
TEST(EventWakeup, ProbeGcAfterTrafficDrains) {
  SimConfig cfg = sparse_base();
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.num_vcs = 1;  // Single-VC adaptive: the cyclic burst really deadlocks.
  cfg.injection_rate = 0.0;  // Manual burst only.
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 24;
  cfg.deadlock.probe_backoff = 16;
  cfg.deadlock.probe_timeout = 256;
  KernelPair nets(cfg);
  // Diagonal cyclic streams (the IntegrationDeadlock pattern): a real
  // deadlock forms, recovery breaks it, and exit_recovery() orphans the
  // in-flight probe bookkeeping — the record that only the due-cycle GC
  // can reclaim once the burst has drained and the mesh is silent.
  for (int i = 0; i < 8; ++i) {
    for (const auto& [src, dst] : {std::pair<NodeId, NodeId>{0, 3},
                                   {1, 2}, {3, 0}, {2, 1}}) {
      nets.scan->inject_packet(src, dst, 4);
      nets.event->inject_packet(src, dst, 4);
    }
  }
  const auto& st = nets.run(2500);
  EXPECT_GT(st.probes_sent(), 0u) << "burst armed no probes";
  EXPECT_GT(st.recoveries_entered(), 0u) << "burst never deadlocked";
}

// Class 4: drain-then-kill. A low escalation threshold under heavy link
// errors triggers runtime escalation; the draining port must keep
// re-ticking its router until the drain completes and the port goes
// hard-dead — even after all traffic has left the neighbourhood.
TEST(EventWakeup, DrainThenKillCompletion) {
  SimConfig cfg = sparse_base();
  cfg.protection = LinkProtection::kHbh;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;  // Survives dead links.
  cfg.faults.link_error_rate = 0.02;
  cfg.faults.multi_bit_fraction = 0.5;
  cfg.faults.link_escalation_threshold = 1;
  KernelPair nets(cfg);
  EXPECT_GT(nets.run(4000).links_escalated(), 0u)
      << "scenario escalated no links";
}

// Class 5: storm kills (PR 8). Links die mid-run on a config timeline —
// the event kernel must fire each kill at the same cycle as the scan
// kernel, schedule both endpoints' drains, and keep stepping them until
// the drains complete; the route-epoch re-home of parked kVaWait heads
// must also land on the same cycle in both kernels. adaptive_faults is on
// so kills whose drains swallow a head's whole minimal set exercise the
// non-minimal escape tier in lock-step too.
TEST(EventWakeup, StormKillsMidRunLockstep) {
  SimConfig cfg = sparse_base();
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.adaptive_faults = true;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 32;
  cfg.deadlock.probe_backoff = 17;
  cfg.injection_rate = 0.15;
  cfg.total_messages = 200;
  cfg.storm_kills.push_back({200, 5, Direction::kEast});
  cfg.storm_kills.push_back({500, 9, Direction::kEast});
  cfg.storm_kills.push_back({800, 6, Direction::kNorth});
  KernelPair nets(cfg);
  EXPECT_EQ(nets.run(4000).links_storm_killed(), 3u)
      << "storm timeline never fully fired";
}

// Production-fabric scale: a 16x16 torus (256 routers, wrap-around
// channels) with link errors, a dead link and a dead router. Every other
// lockstep test runs a 4x4 (or 2x2) mesh, where the event kernel's wake
// graph is dense and near-saturated almost by accident; at 256 routers
// under sparse traffic most of the fabric is genuinely idle most cycles,
// so a wake rule that under-schedules (or a wrap-channel wire the wake
// graph forgot) diverges here and nowhere else.
TEST(EventWakeup, LargeTorusFaultedLockstep) {
  SimConfig cfg = sparse_base();
  cfg.mesh_width = 16;
  cfg.mesh_height = 16;
  cfg.torus = true;
  cfg.protection = LinkProtection::kHbh;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.01;  // ~2.5 flits/cycle over 256 routers: idle-heavy.
  cfg.total_messages = 150;
  cfg.faults.link_error_rate = 0.005;
  cfg.faults.multi_bit_fraction = 0.3;  // Arms NACK windows at scale.
  cfg.dead_links.push_back({17, Direction::kEast});
  cfg.dead_routers.push_back(200);
  KernelPair nets(cfg);
  EXPECT_GT(nets.run(2000).nacks_sent(), 0u)
      << "scenario armed no NACK/drop windows at scale";
}

// Workload replay on a faulted mesh with per-link accounting on: trace
// release is pure timer-driven injection (no Bernoulli ticks to ride), so
// every burst's release cycle must wake its source PE in the event kernel
// by itself — and the link_stats accumulators read architectural state
// after the wire ticks, so they must come out byte-identical across
// kernels too. A sender block rides through a dead source router to pin
// the dead-source drop path into the same lockstep.
TEST(EventWakeup, WorkloadReplayFaultedLockstep) {
  SimConfig cfg = sparse_base();
  cfg.injection_rate = 0.0;  // Pure workload-driven.
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.adaptive_faults = true;
  cfg.link_stats = true;
  cfg.dead_links.push_back({5, Direction::kEast});
  cfg.dead_routers.push_back(10);
  cfg.workload_text =
      "packet_flits 4\n"
      "many_to_one sink start=0 dest=0 flits=8 count=2 period=400 "
      "stagger=13\n"
      "transfer echo start=900 src=0 dest=15 flits=12\n";
  KernelPair nets(cfg);
  const auto& st = nets.run(3000);
  EXPECT_GT(st.messages_ejected(), 0u) << "workload delivered nothing";
  // Sender 10 is dead: its 2 bursts x 2 packets drop at release, in both
  // kernels.
  EXPECT_EQ(st.dead_source_drops(), 4u);
  EXPECT_EQ(nets.scan->stats().dead_source_drops(), 4u);
  EXPECT_EQ(nets.scan->link_fwd_counts(), nets.event->link_fwd_counts());
  EXPECT_EQ(nets.scan->link_stall_counts(), nets.event->link_stall_counts());
}

// Statically faulted topology: dead links and a dead router reshape the
// wake graph (some wires never exist); the event kernel must still cover
// every live router's delayed actions.
TEST(EventWakeup, FaultedTopologyLockstep) {
  SimConfig cfg = sparse_base();
  cfg.protection = LinkProtection::kHbh;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.faults.link_error_rate = 0.005;
  cfg.dead_links.push_back({5, Direction::kEast});
  cfg.dead_routers.push_back(10);
  KernelPair nets(cfg);
  nets.run(3000);
}

}  // namespace
}  // namespace ftnoc

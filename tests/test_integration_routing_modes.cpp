// Integration tests for the escape-VC (Duato-style) deadlock-avoidance
// baseline and hard-fault (dead link) tolerance.

#include <gtest/gtest.h>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

// --- Escape-VC routing --------------------------------------------------------

TEST(EscapeRouting, CanonicalCycleCannotDeadlock) {
  // The same 2x2 four-stream scenario that wedges pure minimal-adaptive
  // routing with one VC. With the escape scheme (2 VCs: one adaptive, one
  // escape) and NO recovery machinery, it must drain — that is the whole
  // point of avoidance.
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.num_vcs = 2;
  cfg.vc_buffer_depth = 4;
  cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
  cfg.deadlock.enable_recovery = false;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 32;
  cfg.max_cycles = 30'000;
  Simulator sim(cfg);
  for (int i = 0; i < 8; ++i) {
    sim.network().inject_packet(0, 3, 4);
    sim.network().inject_packet(1, 2, 4);
    sim.network().inject_packet(3, 0, 4);
    sim.network().inject_packet(2, 1, 4);
  }
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(EscapeRouting, SustainedHighLoadNeverWedges) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
  cfg.deadlock.enable_recovery = false;
  cfg.injection_rate = 0.6;  // Past saturation.
  cfg.warmup_messages = 500;
  cfg.total_messages = 6'000;
  cfg.max_cycles = 300'000;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(EscapeRouting, RequiresAtLeastTwoVcs) {
  SimConfig cfg;
  cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
  cfg.num_vcs = 1;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(EscapeRouting, LosesThroughputVsRecoveryAtSaturation) {
  // The paper's critique of escape-VC schemes: reserving a VC for the
  // deterministic escape subnetwork limits adaptivity. At saturation, the
  // recovery scheme (all VCs fully adaptive) should sustain at least as
  // much throughput as the escape scheme with the same VC count.
  SimConfig escape;
  escape.mesh_width = 4;
  escape.mesh_height = 4;
  escape.num_vcs = 2;
  escape.routing = RoutingAlgorithm::kAdaptiveEscape;
  escape.injection_rate = 0.8;
  escape.warmup_messages = 1'000;
  escape.total_messages = 8'000;
  escape.max_cycles = 400'000;

  SimConfig recovery = escape;
  recovery.routing = RoutingAlgorithm::kMinimalAdaptive;
  recovery.deadlock.enable_recovery = true;

  const SimResults re = run_simulation(escape);
  const SimResults rr = run_simulation(recovery);
  ASSERT_TRUE(re.completed && rr.completed);
  EXPECT_GE(rr.throughput_flits_node_cycle,
            re.throughput_flits_node_cycle * 0.9);
}

// --- Hard faults ---------------------------------------------------------------

TEST(HardFaults, AdaptiveRoutesAroundDeadLink) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.injection_rate = 0.1;
  cfg.warmup_messages = 300;
  cfg.total_messages = 3'000;
  cfg.max_cycles = 400'000;
  // Kill the link between node 5 and node 6 (interior, heavily used).
  cfg.dead_links.push_back({5, Direction::kEast});
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(HardFaults, SingleRowPathForcesNonMinimalDetour) {
  // Source and destination share a row and the only minimal path crosses
  // the dead link: the router must detour non-minimally.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 10;
  cfg.max_cycles = 50'000;
  cfg.dead_links.push_back({5, Direction::kEast});  // 5 -> 6 dead.
  Simulator sim(cfg);
  for (int i = 0; i < 10; ++i) {
    sim.network().inject_packet(4, 7, 4);  // Row 1: passes 5 -> 6 minimally.
  }
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.hard_fault_reroutes, 0u);
}

TEST(HardFaults, EscapeRoutingAlsoSurvivesDeadLinks) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 3;
  cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
  cfg.injection_rate = 0.1;
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 400'000;
  cfg.dead_links.push_back({9, Direction::kNorth});
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(HardFaults, ValidationRejectsBadDeadLink) {
  SimConfig cfg;
  cfg.dead_links.push_back({200, Direction::kEast});  // Out of range.
  EXPECT_TRUE(cfg.validate().has_value());
  cfg.dead_links.clear();
  cfg.dead_links.push_back({0, Direction::kLocal});
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(HardFaults, OverrideSyntaxParses) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "dead_link=5:E"), std::nullopt);
  EXPECT_EQ(apply_override(cfg, "dead_link=9:n"), std::nullopt);
  ASSERT_EQ(cfg.dead_links.size(), 2u);
  EXPECT_EQ(cfg.dead_links[0].first, 5);
  EXPECT_EQ(cfg.dead_links[0].second, Direction::kEast);
  EXPECT_EQ(cfg.dead_links[1].second, Direction::kNorth);
  EXPECT_TRUE(apply_override(cfg, "dead_link=5E").has_value());
  EXPECT_TRUE(apply_override(cfg, "dead_link=5:X").has_value());
}

TEST(HardFaults, DeadLinkWithLinkErrorsStillClean) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.protection = LinkProtection::kHbh;
  cfg.injection_rate = 0.1;
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 400'000;
  cfg.faults.link_error_rate = 0.01;
  cfg.dead_links.push_back({5, Direction::kEast});
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.link_errors_corrected, 0u);
}

}  // namespace
}  // namespace ftnoc

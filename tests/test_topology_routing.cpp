// Unit tests for mesh/torus topology and the DT (XY) / AD (minimal
// adaptive) routing functions.

#include <gtest/gtest.h>

#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace ftnoc {
namespace {

TEST(Topology, CoordinateRoundTrip) {
  Topology t(8, 8, false);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.node_at(t.coord_of(n)), n);
  }
}

TEST(Topology, MeshEdgeHasNoNeighbor) {
  Topology t(4, 4, false);
  EXPECT_FALSE(t.neighbor(0, Direction::kNorth).has_value());
  EXPECT_FALSE(t.neighbor(0, Direction::kWest).has_value());
  EXPECT_FALSE(t.neighbor(15, Direction::kSouth).has_value());
  EXPECT_FALSE(t.neighbor(15, Direction::kEast).has_value());
}

TEST(Topology, InteriorNeighbors) {
  Topology t(4, 4, false);
  // Node 5 = (1,1).
  EXPECT_EQ(t.neighbor(5, Direction::kNorth), NodeId{1});
  EXPECT_EQ(t.neighbor(5, Direction::kSouth), NodeId{9});
  EXPECT_EQ(t.neighbor(5, Direction::kEast), NodeId{6});
  EXPECT_EQ(t.neighbor(5, Direction::kWest), NodeId{4});
}

TEST(Topology, LocalNeverHasNeighbor) {
  Topology t(4, 4, false);
  EXPECT_FALSE(t.neighbor(5, Direction::kLocal).has_value());
}

TEST(Topology, TorusWrapsAround) {
  Topology t(4, 4, true);
  EXPECT_EQ(t.neighbor(0, Direction::kWest), NodeId{3});
  EXPECT_EQ(t.neighbor(0, Direction::kNorth), NodeId{12});
  EXPECT_EQ(t.neighbor(3, Direction::kEast), NodeId{0});
}

TEST(Topology, NeighborIsSymmetric) {
  Topology t(5, 3, false);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (int d = 0; d < 4; ++d) {
      const auto dir = static_cast<Direction>(d);
      if (auto nb = t.neighbor(n, dir)) {
        EXPECT_EQ(t.neighbor(*nb, opposite(dir)), n);
      }
    }
  }
}

TEST(Routing, XyReturnsSinglePort) {
  Topology t(8, 8, false);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      const PortMask m = route(t, RoutingAlgorithm::kXY, a, b);
      EXPECT_EQ(mask_size(m), 1);
    }
  }
}

TEST(Routing, XyGoesXFirst) {
  Topology t(8, 8, false);
  // From (0,0) to (3,3): east until x matches, then south.
  EXPECT_EQ(route(t, RoutingAlgorithm::kXY, 0, 27),
            port_bit(Direction::kEast));
  // From (3,0) to (3,3): x aligned, go south.
  EXPECT_EQ(route(t, RoutingAlgorithm::kXY, 3, 27),
            port_bit(Direction::kSouth));
}

TEST(Routing, LocalPortAtDestination) {
  Topology t(8, 8, false);
  EXPECT_EQ(route(t, RoutingAlgorithm::kXY, 10, 10),
            port_bit(Direction::kLocal));
  EXPECT_EQ(route(t, RoutingAlgorithm::kMinimalAdaptive, 10, 10),
            port_bit(Direction::kLocal));
}

TEST(Routing, AdaptiveReturnsAllProductiveDirections) {
  Topology t(8, 8, false);
  // From (0,0) to (3,3): east and south are both productive.
  const PortMask m = route(t, RoutingAlgorithm::kMinimalAdaptive, 0, 27);
  EXPECT_TRUE(mask_has(m, static_cast<PortId>(Direction::kEast)));
  EXPECT_TRUE(mask_has(m, static_cast<PortId>(Direction::kSouth)));
  EXPECT_EQ(mask_size(m), 2);
}

TEST(Routing, AdaptiveSingleDimensionGivesOnePort) {
  Topology t(8, 8, false);
  const PortMask m = route(t, RoutingAlgorithm::kMinimalAdaptive, 0, 7);
  EXPECT_EQ(m, port_bit(Direction::kEast));
}

// Property: following XY from any source always reaches the destination in
// exactly the Manhattan distance.
TEST(Routing, XyAlwaysReachesDestinationMinimally) {
  Topology t(6, 5, false);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      NodeId cur = a;
      int hops = 0;
      while (cur != b) {
        const PortMask m = route(t, RoutingAlgorithm::kXY, cur, b);
        const PortId p = first_port(m);
        ASSERT_NE(p, static_cast<PortId>(Direction::kLocal));
        auto nb = t.neighbor(cur, static_cast<Direction>(p));
        ASSERT_TRUE(nb.has_value());
        cur = *nb;
        ASSERT_LE(++hops, 64);
      }
      const Coord ca = t.coord_of(a);
      const Coord cb = t.coord_of(b);
      EXPECT_EQ(hops, std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y));
    }
  }
}

// Property: every adaptive candidate is productive (reduces distance by 1).
TEST(Routing, AdaptiveCandidatesAreAlwaysProductive) {
  Topology t(6, 6, false);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      if (a == b) continue;
      const Coord ca = t.coord_of(a);
      const Coord cb = t.coord_of(b);
      const int dist = std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
      const PortMask m = route(t, RoutingAlgorithm::kMinimalAdaptive, a, b);
      for (PortId p = 0; p < 4; ++p) {
        if (!mask_has(m, p)) continue;
        auto nb = t.neighbor(a, static_cast<Direction>(p));
        ASSERT_TRUE(nb.has_value());
        const Coord cn = t.coord_of(*nb);
        EXPECT_EQ(std::abs(cn.x - cb.x) + std::abs(cn.y - cb.y), dist - 1);
      }
    }
  }
}

TEST(Routing, XyStepLegality) {
  Topology t(8, 8, false);
  // Flit heading to (3,3)=27 arriving at (1,0)=1 via its West port came
  // from (0,0) going East: legal (x not yet matched).
  EXPECT_TRUE(xy_step_is_legal(t, 1, static_cast<PortId>(Direction::kWest),
                               27));
  // A flit for node 27 arriving at (0,1)=8 via its North port means node
  // (0,0) sent it South — illegal, XY goes East first.
  EXPECT_FALSE(xy_step_is_legal(t, 8, static_cast<PortId>(Direction::kNorth),
                                27));
  // Injection from the local port is always legal.
  EXPECT_TRUE(xy_step_is_legal(t, 8, static_cast<PortId>(Direction::kLocal),
                               27));
}

TEST(Routing, AverageMinHops8x8) {
  Topology t(8, 8, false);
  // Closed form for a k x k mesh over distinct pairs:
  // E[|dx|+|dy|] = 2 * (k^2-1)/(3k) * k^2/(k^2-1) ... just sanity-band it.
  const double h = average_min_hops(t);
  EXPECT_GT(h, 5.2);
  EXPECT_LT(h, 5.5);
}

TEST(Routing, MaskHelpers) {
  EXPECT_EQ(mask_size(0), 0);
  EXPECT_EQ(first_port(0), kInvalidPort);
  const PortMask m = port_bit(Direction::kEast) | port_bit(Direction::kWest);
  EXPECT_EQ(mask_size(m), 2);
  EXPECT_EQ(first_port(m), static_cast<PortId>(Direction::kEast));
}

}  // namespace
}  // namespace ftnoc

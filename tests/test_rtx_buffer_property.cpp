// Model-based property test for the retransmission barrel shifter: random
// operation sequences are validated against a simple reference model built
// from plain vectors, plus protocol-level invariants.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "core/retransmission_buffer.hpp"

namespace ftnoc {
namespace {

struct RefEntry {
  PacketId pid;
  std::uint8_t seq;
  Cycle sent_at;
  bool credit_held;
};

// A transparent reimplementation of the intended semantics.
class ReferenceModel {
 public:
  explicit ReferenceModel(int depth, Cycle window)
      : depth_(depth), window_(window) {}

  void record(PacketId pid, std::uint8_t seq, Cycle now) {
    if (!pending_.empty() && pending_.front().pid == pid &&
        pending_.front().seq == seq) {
      pending_.pop_front();
    }
    if (static_cast<int>(sent_.size() + pending_.size()) >= depth_) {
      sent_.pop_front();
    }
    sent_.push_back({pid, seq, now, true});
  }

  void retire(Cycle now) {
    while (!sent_.empty() && now - sent_.front().sent_at > window_) {
      sent_.pop_front();
    }
  }

  int nack() {
    const int n = static_cast<int>(sent_.size());
    while (!sent_.empty()) {
      RefEntry e = sent_.back();
      sent_.pop_back();
      e.credit_held = true;
      pending_.push_front(e);
    }
    return n;
  }

  void absorb(PacketId pid, std::uint8_t seq) {
    pending_.push_back({pid, seq, 0, false});
  }

  int occupancy() const {
    return static_cast<int>(sent_.size() + pending_.size());
  }
  bool has_pending() const { return !pending_.empty(); }
  const RefEntry& front_pending() const { return pending_.front(); }

  std::deque<RefEntry> sent_;
  std::deque<RefEntry> pending_;
  int depth_;
  Cycle window_;
};

TEST(RtxBufferProperty, RandomOpsMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const int depth = 3 + static_cast<int>(rng.next_below(3));  // 3..5
    RetransmissionBuffer buf(depth);
    ReferenceModel ref(depth, RetransmissionBuffer::kDefaultNackWindow);
    PacketId pid = 1;
    std::uint8_t seq = 0;

    for (Cycle now = 1; now < 3000; ++now) {
      buf.retire_expired(now);
      ref.retire(now);

      const auto op = rng.next_below(10);
      if (op < 4) {
        // Transmit: either the front pending flit (replay) or a fresh one.
        if (buf.has_pending()) {
          const Flit f = buf.front_pending();
          buf.record_transmission(f, now);
          ref.record(f.packet_id, f.seq, now);
        } else if (buf.can_accept(now)) {
          const Flit f = make_flit(FlitType::kBody, pid, 0, 1, seq, 0, 0);
          buf.record_transmission(f, now);
          ref.record(pid, seq, now);
          if (++seq == 4) {
            seq = 0;
            ++pid;
          }
        }
      } else if (op == 4) {
        EXPECT_EQ(buf.on_nack(), ref.nack()) << "seed=" << seed;
      } else if (op == 5 && buf.free_slots() > 0) {
        const Flit f =
            make_flit(FlitType::kBody, 9000 + pid, 0, 1, seq, 0, 0);
        buf.absorb(f);
        ref.absorb(9000 + pid, seq);
      }

      // Invariants and full state agreement.
      ASSERT_EQ(buf.occupancy(), ref.occupancy()) << "seed=" << seed;
      ASSERT_EQ(buf.sent_count(), static_cast<int>(ref.sent_.size()));
      ASSERT_EQ(buf.pending_count(), static_cast<int>(ref.pending_.size()));
      ASSERT_LE(buf.occupancy(), depth);
      if (buf.has_pending()) {
        ASSERT_EQ(buf.front_pending().packet_id, ref.front_pending().pid);
        ASSERT_EQ(buf.front_pending().seq, ref.front_pending().seq);
        ASSERT_EQ(buf.front_pending_credit_held(),
                  ref.front_pending().credit_held);
      }
    }
  }
}

TEST(RtxBufferProperty, NackNeverResurrectsExpiredFlits) {
  // Protocol safety: whatever the op sequence, a NACK must only replay
  // flits sent within the NACK window.
  Rng rng(77);
  RetransmissionBuffer buf(3);
  int n_sends = 0;
  for (Cycle now = 1; now < 2000; ++now) {
    buf.retire_expired(now);
    if (rng.bernoulli(0.4)) {
      if (buf.has_pending()) {
        buf.record_transmission(buf.front_pending(), now);
      } else if (buf.can_accept(now)) {
        buf.record_transmission(
            make_flit(FlitType::kBody, 1, 0, 1,
                      static_cast<std::uint8_t>(n_sends % 250), 0, 0),
            now);
        ++n_sends;
      }
    }
    if (rng.bernoulli(0.1)) {
      const int rolled = buf.on_nack();
      // Every rolled-back flit must have been sent within the window.
      // (The sent region holds at most the last `window+1` cycles' sends.)
      ASSERT_LE(rolled, 3);
      // Drain the pending region again so state stays sane.
      while (buf.has_pending()) {
        buf.record_transmission(buf.front_pending(), now);
      }
    }
  }
}

TEST(RtxBufferProperty, UtilizationIsAlwaysAFraction) {
  Rng rng(5);
  RetransmissionBuffer buf(4);
  for (Cycle now = 1; now < 500; ++now) {
    buf.retire_expired(now);
    if (rng.bernoulli(0.5) && buf.can_accept(now)) {
      buf.record_transmission(
          make_flit(FlitType::kBody, 1, 0, 1, 0, 0, 0), now);
    }
    buf.tick_utilization();
    ASSERT_GE(buf.mean_utilization(), 0.0);
    ASSERT_LE(buf.mean_utilization(), 1.0);
  }
  EXPECT_GT(buf.mean_utilization(), 0.0);
}

}  // namespace
}  // namespace ftnoc

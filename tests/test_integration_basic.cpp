// Integration tests: whole-network simulations on small meshes, fault-free.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.1;
  cfg.warmup_messages = 200;
  cfg.total_messages = 1200;
  cfg.max_cycles = 200'000;
  return cfg;
}

TEST(IntegrationBasic, FaultFreeRunCompletes) {
  const SimResults r = run_simulation(small_config());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.measured_messages, 1000u);
  EXPECT_GT(r.avg_latency_cycles, 0.0);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_EQ(r.link_errors_corrected, 0u);
  EXPECT_EQ(r.nacks_sent, 0u);
  // Latency quantiles are ordered and bracket the mean sensibly.
  EXPECT_LE(r.p50_latency_cycles, r.p99_latency_cycles);
  EXPECT_LE(r.p99_latency_cycles, r.max_latency_cycles + 1.0);
  EXPECT_GT(r.p99_latency_cycles, r.avg_latency_cycles * 0.9);
}

TEST(IntegrationBasic, ZeroLoadLatencyNearAnalyticValue) {
  // One 4-flit packet across h hops of a 3-stage router + 1-cycle links
  // costs about 4h + (M-1) cycles plus injection/ejection overhead.
  SimConfig cfg = small_config();
  cfg.injection_rate = 0.01;  // Essentially contention-free.
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  // Average hops on a 4x4 mesh is ~2.67; expect latency in a sane band.
  EXPECT_GT(r.avg_latency_cycles, 8.0);
  EXPECT_LT(r.avg_latency_cycles, 30.0);
}

TEST(IntegrationBasic, LatencyGrowsWithLoad) {
  SimConfig lo = small_config();
  lo.injection_rate = 0.05;
  SimConfig hi = small_config();
  hi.injection_rate = 0.35;
  const SimResults rlo = run_simulation(lo);
  const SimResults rhi = run_simulation(hi);
  ASSERT_TRUE(rlo.completed);
  ASSERT_TRUE(rhi.completed);
  EXPECT_GT(rhi.avg_latency_cycles, rlo.avg_latency_cycles);
  EXPECT_GT(rhi.tx_buffer_utilization, rlo.tx_buffer_utilization);
}

TEST(IntegrationBasic, DeterministicAcrossRuns) {
  const SimResults a = run_simulation(small_config());
  const SimResults b = run_simulation(small_config());
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy_per_message_nj, b.energy_per_message_nj);
}

TEST(IntegrationBasic, DifferentSeedsDiffer) {
  SimConfig cfg = small_config();
  const SimResults a = run_simulation(cfg);
  cfg.seed = 99;
  const SimResults b = run_simulation(cfg);
  EXPECT_NE(a.cycles, b.cycles);
}

TEST(IntegrationBasic, EveryMessageArrivesIntactAndInOrderPerPair) {
  // Manual injection with the delivery listener: payload integrity and
  // per-(src,dst,packet) completeness.
  SimConfig cfg = small_config();
  cfg.injection_rate = 0.0;  // Manual injection only.
  cfg.warmup_messages = 0;
  cfg.total_messages = 30;
  Simulator sim(cfg);
  Network& net = sim.network();

  std::set<PacketId> expected;
  std::set<PacketId> delivered;
  net.set_delivery_listener(
      [&](NodeId, const Flit& tail, Cycle) {
        delivered.insert(tail.packet_id);
      });
  for (int i = 0; i < 30; ++i) {
    const NodeId src = static_cast<NodeId>(i % 16);
    const NodeId dst = static_cast<NodeId>((i * 7 + 3) % 16);
    if (src == dst) {
      expected.insert(net.inject_packet(src, static_cast<NodeId>((dst + 1) % 16), 4));
    } else {
      expected.insert(net.inject_packet(src, dst, 4));
    }
  }
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(IntegrationBasic, SingleFlitPackets) {
  SimConfig cfg = small_config();
  cfg.packet_length = 1;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(IntegrationBasic, AdaptiveRoutingDeliversEverything) {
  SimConfig cfg = small_config();
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.15;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(IntegrationBasic, PipelineDepthOrdersLatency) {
  // Fewer pipeline stages -> lower per-hop latency (at low load).
  double lat[5] = {};
  for (int stages : {1, 2, 3, 4}) {
    SimConfig cfg = small_config();
    cfg.pipeline_stages = stages;
    cfg.retransmission_depth = 4;  // 4-stage routers need a deeper barrel.
    cfg.injection_rate = 0.02;
    const SimResults r = run_simulation(cfg);
    ASSERT_TRUE(r.completed) << "stages=" << stages;
    lat[stages] = r.avg_latency_cycles;
  }
  EXPECT_LT(lat[1], lat[2]);
  EXPECT_LT(lat[2], lat[3]);
  EXPECT_LT(lat[3], lat[4]);
}

TEST(IntegrationBasic, TrafficPatternsAllComplete) {
  for (TrafficPattern p :
       {TrafficPattern::kUniformRandom, TrafficPattern::kBitComplement,
        TrafficPattern::kTornado}) {
    SimConfig cfg = small_config();
    cfg.pattern = p;
    const SimResults r = run_simulation(cfg);
    EXPECT_TRUE(r.completed) << to_string(p);
    EXPECT_EQ(r.corrupted_delivered, 0u) << to_string(p);
  }
}

TEST(IntegrationBasic, EnergyPerMessageScalesWithHopCount) {
  // Bit-complement traffic travels farther than near-uniform on average,
  // so it must cost more energy per message.
  SimConfig nr = small_config();
  SimConfig bc = small_config();
  bc.pattern = TrafficPattern::kBitComplement;
  const SimResults rnr = run_simulation(nr);
  const SimResults rbc = run_simulation(bc);
  ASSERT_TRUE(rnr.completed && rbc.completed);
  EXPECT_GT(rbc.energy_per_message_nj, rnr.energy_per_message_nj);
}

}  // namespace
}  // namespace ftnoc

// Integration tests for the router pipeline model: per-hop latency as a
// function of pipeline depth, wormhole ordering, credit conservation and
// 4-stage output staging.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

// Measures the delivery cycle of a single packet across `hops` hops on an
// otherwise empty network with an n-stage pipeline.
Cycle single_packet_delivery(int stages, NodeId src, NodeId dest,
                             int packet_len) {
  SimConfig cfg;
  cfg.mesh_width = 8;
  cfg.mesh_height = 1;
  cfg.mesh_height = 2;  // 8x2 so XY has room; src/dest in row 0.
  cfg.num_vcs = 2;
  cfg.pipeline_stages = stages;
  cfg.retransmission_depth = 4;  // 4-stage routers need a deeper barrel.
  cfg.packet_length = packet_len;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  cfg.max_cycles = 1'000;
  Simulator sim(cfg);
  Cycle delivered = 0;
  sim.network().set_delivery_listener(
      [&](NodeId, const Flit&, Cycle now) { delivered = now; });
  sim.network().inject_packet(src, dest, packet_len);
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  return delivered;
}

TEST(PipelineModel, PerHopCostIsStagesPlusLink) {
  // Crossing h hops costs h * (stages + 1) cycles for the header plus the
  // constant injection/ejection overhead; measure the marginal cost of one
  // extra hop.
  for (int stages : {1, 2, 3, 4}) {
    const Cycle d3 = single_packet_delivery(stages, 0, 3, 1);
    const Cycle d4 = single_packet_delivery(stages, 0, 4, 1);
    EXPECT_EQ(d4 - d3, static_cast<Cycle>(stages + 1)) << "stages=" << stages;
  }
}

TEST(PipelineModel, SerializationCostsOneCyclePerExtraFlit) {
  // At zero load the tail trails the header by (M-1) cycles.
  const Cycle one = single_packet_delivery(3, 0, 4, 1);
  const Cycle four = single_packet_delivery(3, 0, 4, 4);
  EXPECT_EQ(four - one, 3u);
}

TEST(PipelineModel, WormholeFlitOrderPreservedPerPacket) {
  // Heavy congestion; verify by construction at the sink that each
  // packet's flits eject in sequence order (the listener only fires at the
  // tail, so instrument corruption-free completion + exact count instead).
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.4;
  cfg.warmup_messages = 100;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 300'000;
  Simulator sim(cfg);
  // Every tail must close a complete 4-flit message; the network-level
  // flit counter catches reordering/loss (missing flits flag the packet).
  const SimResults r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(PipelineModel, DeliveryOrderPerPairIsFifoUnderXy) {
  // Deterministic routing on a single VC must deliver same-pair packets in
  // injection order.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 1;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 20;
  cfg.max_cycles = 10'000;
  Simulator sim(cfg);
  std::vector<PacketId> order;
  sim.network().set_delivery_listener(
      [&](NodeId, const Flit& tail, Cycle) { order.push_back(tail.packet_id); });
  std::vector<PacketId> injected;
  for (int i = 0; i < 20; ++i) {
    injected.push_back(sim.network().inject_packet(1, 14, 4));
  }
  const SimResults r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(order, injected);
}

TEST(PipelineModel, FourStageRouterStillHandlesFaults) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.pipeline_stages = 4;
  cfg.retransmission_depth = 4;
  cfg.injection_rate = 0.15;
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 300'000;
  cfg.faults.link_error_rate = 0.02;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.link_errors_corrected, 0u);
}

// Regression (found by fuzzing, seed 77 run 32): on a 4-stage router, a
// NACK arriving while a *replay* sits in the switch-traversal register
// used to double-queue that replay — the rollback put older flits in
// front of its still-pending entry, the squash then misread it as a fresh
// transmission and pushed it again. The receiver accepted the flit twice
// and the duplicate slot's credit overflowed the sender's counter
// (FTNOC_CHECK abort). Needs back-to-back NACKs on one VC, so the error
// rate is high and the run is cycle-bounded.
TEST(PipelineModel, BackToBackNacksDoNotDuplicateAStagedReplay) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 2;
  cfg.num_vcs = 2;
  cfg.vc_buffer_depth = 4;
  cfg.pipeline_stages = 4;
  cfg.retransmission_depth = 6;
  cfg.packet_length = 4;
  cfg.injection_rate = 0.225159;
  cfg.protection = LinkProtection::kHbh;
  cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
  cfg.pattern = TrafficPattern::kBitComplement;
  cfg.ecc_detect_only = true;
  cfg.faults.link_error_rate = 0.0093548;
  cfg.faults.rt_error_rate = 0.001;
  cfg.faults.rtx_error_rate = 0.001;
  cfg.faults.handshake_error_rate = 0.0005;
  cfg.seed = 1644;
  cfg.warmup_messages = 0;
  cfg.total_messages = 100'000;  // Never reached: the run is cycle-bounded.
  cfg.max_cycles = 1'500;
  const SimResults r = run_simulation(cfg);
  // Pre-fix this run aborts at cycle 1387 (credit counter above the VC
  // buffer depth). Post-fix it just times out with conservative counters.
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.messages_ejected, r.packets_created);
}

TEST(PipelineModel, SingleStageRouterStillHandlesFaults) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.pipeline_stages = 1;
  cfg.injection_rate = 0.15;
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 300'000;
  cfg.faults.link_error_rate = 0.02;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.link_errors_corrected, 0u);
}

TEST(PipelineModel, ThroughputSaturatesNearBisectionBound) {
  // Uniform traffic on a k x k mesh saturates around 2*k/(N) * ...; for an
  // 8x8 mesh with XY the classic bound is ~0.35-0.45 flits/node/cycle.
  SimConfig cfg;
  cfg.injection_rate = 1.0;  // Far beyond saturation.
  cfg.warmup_messages = 1'000;
  cfg.total_messages = 10'000;
  cfg.max_cycles = 100'000;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.throughput_flits_node_cycle, 0.25);
  EXPECT_LT(r.throughput_flits_node_cycle, 0.55);
}

TEST(PipelineModel, TorusBeatsToMeshOnTornado) {
  // Tornado traffic is pathological on a mesh and natural on a torus.
  SimConfig mesh;
  mesh.pattern = TrafficPattern::kTornado;
  mesh.injection_rate = 0.1;
  mesh.warmup_messages = 500;
  mesh.total_messages = 5'000;
  mesh.max_cycles = 200'000;
  SimConfig torus = mesh;
  torus.torus = true;
  const SimResults rm = run_simulation(mesh);
  const SimResults rt = run_simulation(torus);
  ASSERT_TRUE(rm.completed && rt.completed);
  EXPECT_LT(rt.avg_latency_cycles, rm.avg_latency_cycles);
}

}  // namespace
}  // namespace ftnoc

// Unit tests for the statistics helpers and the network-wide collector.

#include <gtest/gtest.h>

#include "common/stats_util.hpp"
#include "noc/stats.hpp"

namespace ftnoc {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeTakesMinAndMaxFromEitherSide) {
  RunningStat mid, wide;
  mid.add(5.0);
  mid.add(7.0);
  wide.add(1.0);
  wide.add(9.0);
  mid.merge(wide);
  EXPECT_DOUBLE_EQ(mid.min(), 1.0);
  EXPECT_DOUBLE_EQ(mid.max(), 9.0);

  // Disjoint ranges, each side contributing one extreme.
  RunningStat lo, hi;
  lo.add(-3.0);
  lo.add(-1.0);
  hi.add(10.0);
  hi.add(20.0);
  lo.merge(hi);
  EXPECT_DOUBLE_EQ(lo.min(), -3.0);
  EXPECT_DOUBLE_EQ(lo.max(), 20.0);
  EXPECT_EQ(lo.count(), 4u);
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 5);  // [0,50) + overflow.
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(49.0);
  h.add(50.0);
  h.add(1e9);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, QuantileEstimates) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1.5);
}

TEST(Histogram, QuantileZeroFindsFirstNonEmptyBucket) {
  Histogram h(10.0, 5);
  h.add(25.0);  // Bucket 2; buckets 0-1 are empty.
  h.add(26.0);
  h.add(27.0);
  // q=0 must not report the empty first bucket (the old ceil(0)=0 target
  // made `seen >= target` true immediately).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 25.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 25.0);
}

TEST(Histogram, QuantileReportsBucketMidpoint) {
  Histogram h(10.0, 5);
  for (int i = 0; i < 4; ++i) h.add(12.0);  // All in bucket 1: [10, 20).
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 15.0);
}

TEST(Histogram, QuantileSingleBucket) {
  Histogram h(5.0, 1);
  h.add(1.0);
  h.add(4.0);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 2.5);
  }
}

TEST(Histogram, QuantileOverflowBucketReportsRangeEnd) {
  Histogram h(1.0, 2);  // Range [0, 2) + overflow.
  h.add(10.0);
  h.add(11.0);
  // Both samples overflow: every quantile is bounded below by the range
  // end, the tightest estimate the histogram can give.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);

  // Mixed: the median is in range, the tail is not.
  Histogram m(1.0, 2);
  m.add(0.5);
  m.add(0.5);
  m.add(10.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(CounterSet, IncrementAndReset) {
  CounterSet c(3);
  c.inc(0);
  c.inc(2, 5);
  EXPECT_EQ(c.get(0), 1u);
  EXPECT_EQ(c.get(1), 0u);
  EXPECT_EQ(c.get(2), 5u);
  c.reset();
  EXPECT_EQ(c.get(2), 0u);
}

TEST(StatsCollector, WarmupGatesEverything) {
  StatsCollector s;
  // Before measurement: events counted only in lifetime totals.
  s.on_message_ejected(100, 10, 20, false);
  s.on_link_single_corrected();
  s.on_probe_sent();
  EXPECT_EQ(s.messages_ejected(), 1u);
  EXPECT_EQ(s.measured_messages(), 0u);
  EXPECT_EQ(s.link_single_corrected(), 0u);
  EXPECT_EQ(s.probes_sent(), 0u);

  s.begin_measurement(200);
  s.on_message_ejected(260, 200, 230, false);
  s.on_link_single_corrected();
  EXPECT_EQ(s.measured_messages(), 1u);
  EXPECT_EQ(s.link_single_corrected(), 1u);
  // Network latency uses the injection stamp: 260 - 230.
  EXPECT_DOUBLE_EQ(s.latency().mean(), 30.0);
  EXPECT_DOUBLE_EQ(s.total_latency().mean(), 60.0);
}

TEST(StatsCollector, MissingInjectStampFallsBackToBirth) {
  StatsCollector s;
  s.begin_measurement(0);
  s.on_message_ejected(50, 10, 0, false);
  EXPECT_DOUBLE_EQ(s.latency().mean(), 40.0);
}

TEST(StatsCollector, CorruptedOnlyCountedWhenMeasuring) {
  StatsCollector s;
  s.on_message_ejected(1, 0, 0, true);
  EXPECT_EQ(s.corrupted_delivered(), 0u);
  s.begin_measurement(2);
  s.on_message_ejected(3, 0, 0, true);
  EXPECT_EQ(s.corrupted_delivered(), 1u);
}

TEST(StatsCollector, LinkErrorsCorrectedCombinesSecAndRetransmissions) {
  StatsCollector s;
  s.begin_measurement(0);
  s.on_link_single_corrected();
  s.on_link_single_corrected();
  s.on_link_retransmission(3);
  EXPECT_EQ(s.link_errors_corrected(), 3u);  // 2 SEC + 1 retransmission.
  EXPECT_EQ(s.link_flits_retransmitted(), 3u);
}

TEST(StatsCollector, BufferSamplesOnlyDuringMeasurement) {
  StatsCollector s;
  s.sample_buffers(0.9, 0.9);
  EXPECT_EQ(s.tx_buffer_utilization().count(), 0u);
  s.begin_measurement(0);
  s.sample_buffers(0.5, 0.25);
  EXPECT_DOUBLE_EQ(s.tx_buffer_utilization().mean(), 0.5);
  EXPECT_DOUBLE_EQ(s.rtx_buffer_utilization().mean(), 0.25);
}

}  // namespace
}  // namespace ftnoc

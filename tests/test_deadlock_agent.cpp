// Unit tests for the probing deadlock-detection protocol (rules 1-4 of
// §3.2.2) and the Eq. (1) buffer lower bound.

#include "core/deadlock.hpp"

#include <gtest/gtest.h>

namespace ftnoc {
namespace {

TEST(DeadlockAgent, Rule1ProbeOnlyAfterThreshold) {
  DeadlockAgent a(/*self=*/5, /*threshold=*/10, /*backoff=*/4);
  EXPECT_FALSE(a.should_probe(9, 100));
  EXPECT_FALSE(a.should_probe(10, 100));
  EXPECT_TRUE(a.should_probe(11, 100));
}

TEST(DeadlockAgent, OnlyOneOutstandingProbe) {
  DeadlockAgent a(5, 10, 4);
  ASSERT_TRUE(a.should_probe(20, 100));
  a.make_probe(0, 0, 100);
  EXPECT_TRUE(a.waiting_for_probe());
  EXPECT_FALSE(a.should_probe(20, 101));
}

TEST(DeadlockAgent, BackoffBetweenProbes) {
  DeadlockAgent a(5, 10, 8);
  const ProbeSignal p = a.make_probe(0, 0, 100);
  ASSERT_TRUE(a.on_probe_returned(p));  // Probe resolved (confirmed).
  a.exit_recovery();                    // Reset episode state.
  EXPECT_FALSE(a.should_probe(20, 104));  // Inside the backoff window.
  EXPECT_TRUE(a.should_probe(20, 108));
}

TEST(DeadlockAgent, ProbeIdsAreUnique) {
  DeadlockAgent a(5, 1, 0);
  const ProbeSignal p1 = a.make_probe(0, 0, 10);
  a.on_probe_returned(p1);
  a.exit_recovery();
  const ProbeSignal p2 = a.make_probe(1, 1, 20);
  EXPECT_NE(p1.probe_id, p2.probe_id);
}

TEST(DeadlockAgent, Rule2ForwardWhenBlocked) {
  DeadlockAgent a(5, 10, 4);
  ProbeSignal p{/*origin=*/2, /*probe_id=*/7, /*in_port=*/1, /*in_vc=*/0};
  EXPECT_EQ(a.on_probe(p, /*target_blocked=*/true), ProbeAction::kForward);
}

TEST(DeadlockAgent, Rule2DiscardWhenNotBlocked) {
  DeadlockAgent a(5, 10, 4);
  ProbeSignal p{2, 7, 1, 0};
  EXPECT_EQ(a.on_probe(p, false), ProbeAction::kDiscard);
  EXPECT_EQ(a.probes_discarded(), 1u);
}

TEST(DeadlockAgent, Rule2RecoveryModeCountsAsBlocked) {
  DeadlockAgent a(5, 10, 4);
  a.enter_recovery();
  ProbeSignal p{2, 7, 1, 0};
  EXPECT_EQ(a.on_probe(p, false), ProbeAction::kForward);
}

TEST(DeadlockAgent, OwnProbeReturnConfirmsDeadlock) {
  DeadlockAgent a(5, 10, 4);
  const ProbeSignal p = a.make_probe(0, 0, 100);
  ProbeSignal back = p;  // Came all the way around.
  EXPECT_EQ(a.on_probe(back, true), ProbeAction::kReturnToOrigin);
  EXPECT_TRUE(a.on_probe_returned(back));
  EXPECT_EQ(a.deadlocks_confirmed(), 1u);
  EXPECT_FALSE(a.waiting_for_probe());
}

TEST(DeadlockAgent, StaleProbeReturnIsIgnored) {
  DeadlockAgent a(5, 10, 4);
  ProbeSignal stale;
  stale.origin = 5;
  stale.probe_id = 999;
  EXPECT_FALSE(a.on_probe_returned(stale));
}

TEST(DeadlockAgent, Rule3ActivationWithoutPriorProbeDiscarded) {
  DeadlockAgent a(5, 10, 4);
  EXPECT_EQ(a.on_activation({/*origin=*/2, /*probe_id=*/7}), std::nullopt);
  EXPECT_FALSE(a.in_recovery());
}

TEST(DeadlockAgent, Rule3ActivationAfterProbeEntersRecoveryAndForwards) {
  DeadlockAgent a(5, 10, 4);
  ProbeSignal p{2, 7, 1, 0};
  a.remember_forwarded_probe(p, /*forwarded_to=*/3, /*next_in_port=*/1,
                             /*next_in_vc=*/0);
  const auto fwd = a.on_activation({2, 7});
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(*fwd, 3);
  EXPECT_TRUE(a.in_recovery());
  EXPECT_EQ(a.recoveries_entered(), 1u);
}

TEST(DeadlockAgent, Rule4PeerActivationDiscardsOwnReturningProbe) {
  DeadlockAgent a(5, 10, 4);
  const ProbeSignal own = a.make_probe(0, 0, 100);
  // A peer's probe passed through us earlier...
  ProbeSignal peer{2, 7, 1, 0};
  a.remember_forwarded_probe(peer, 3, 1, 0);
  // ...and its activation arrives while we wait for our own probe.
  ASSERT_TRUE(a.on_activation({2, 7}).has_value());
  EXPECT_TRUE(a.in_recovery());
  // Rule 4: our own probe, when it finally returns, is discarded.
  EXPECT_FALSE(a.on_probe_returned(own));
  EXPECT_EQ(a.deadlocks_confirmed(), 0u);
}

TEST(DeadlockAgent, ActivationReturnedActivatesOrigin) {
  DeadlockAgent a(5, 10, 4);
  a.make_probe(0, 0, 100);
  a.on_activation_returned({5, 1});
  EXPECT_TRUE(a.in_recovery());
}

TEST(DeadlockAgent, ExitRecoveryClearsEpisodeState) {
  DeadlockAgent a(5, 10, 4);
  ProbeSignal peer{2, 7, 1, 0};
  a.remember_forwarded_probe(peer, 3, 1, 0);
  a.enter_recovery();
  a.exit_recovery();
  EXPECT_FALSE(a.in_recovery());
  // Stale activation after the episode finds no remembered probe (Rule 3).
  EXPECT_EQ(a.on_activation({2, 7}), std::nullopt);
}

TEST(DeadlockAgent, DuplicateEnterRecoveryCountsOnce) {
  DeadlockAgent a(5, 10, 4);
  a.enter_recovery();
  a.enter_recovery();
  EXPECT_EQ(a.recoveries_entered(), 1u);
}

// --- Eq. (1) lower bound ---------------------------------------------------

TEST(RecoveryBufferBound, Figure10Example) {
  // T=4, R=3, M=4, n=3: B2 = 21 > 4 * 3 = 12.
  EXPECT_TRUE(recovery_buffer_bound_ok({4, 4, 4}, {3, 3, 3}, 4));
}

TEST(RecoveryBufferBound, Figure11WorstCase) {
  // T=6, R=3, M=4, N=2, n=4: B2 = 36 > 4 * 8 = 32.
  EXPECT_TRUE(recovery_buffer_bound_ok({6, 6, 6, 6}, {3, 3, 3, 3}, 4));
}

TEST(RecoveryBufferBound, FailsWithoutRetransmissionBuffers) {
  // Without the R_i term the bound cannot hold: B2 = sum T_i = M * sum N_i
  // exactly when T_i is a multiple of M.
  EXPECT_FALSE(recovery_buffer_bound_ok({4, 4, 4}, {0, 0, 0}, 4));
}

TEST(RecoveryBufferBound, TightBoundary) {
  // B2 must be strictly greater than M*N: equality is not enough.
  // T=5, R=3, M=4 -> N_i = 2, per-node rhs = 8, per-node lhs = 8.
  EXPECT_FALSE(recovery_buffer_bound_ok({5, 5}, {3, 3}, 4));
  // One extra retransmission slot tips it.
  EXPECT_TRUE(recovery_buffer_bound_ok({5, 5}, {4, 3}, 4));
}

TEST(RecoveryBufferBound, SingleFlitPackets) {
  // M=1: N_i = T_i, rhs = sum T_i; any R_i > 0 satisfies the bound.
  EXPECT_TRUE(recovery_buffer_bound_ok({4}, {1}, 1));
  EXPECT_FALSE(recovery_buffer_bound_ok({4}, {0}, 1));
}

}  // namespace
}  // namespace ftnoc

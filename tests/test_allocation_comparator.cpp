// Unit tests for the Allocation Comparator (Figure 12, §4.1/§4.3).

#include "core/allocation_comparator.hpp"

#include <gtest/gtest.h>

namespace ftnoc {
namespace {

constexpr int kP = 5;
constexpr int kV = 4;

std::uint64_t kind_count(const AcReport& r, AcErrorKind k) {
  return r.kind_counts[static_cast<int>(k)];
}

class AcTest : public ::testing::Test {
 protected:
  AllocationComparator ac_{kP, kV};
};

TEST_F(AcTest, CleanStateRaisesNoFlag) {
  // Two consistent allocations: N_1 -> S_2, W_3 -> E_2 (the Figure 12
  // example).
  std::vector<RoutingStateEntry> rt = {
      {/*input_vc=*/0 * kV + 1, /*valid_ports=*/1u << 2},   // N_1 -> South
      {/*input_vc=*/3 * kV + 3, /*valid_ports=*/1u << 1}};  // W_3 -> East
  std::vector<VaStateEntry> va = {{0 * kV + 1, /*out_port=*/2, /*out_vc=*/2},
                                  {3 * kV + 3, /*out_port=*/1, /*out_vc=*/2}};
  std::vector<SaStateEntry> sa = {{/*in=*/0, /*out=*/2}, {/*in=*/3, /*out=*/1}};
  const AcReport r = ac_.check(rt, va, sa);
  EXPECT_FALSE(r.any_error());
}

TEST_F(AcTest, DetectsInvalidOutputVc) {
  // Scenario (1) of §4.1: out VC id beyond the V range.
  std::vector<RoutingStateEntry> rt = {{1, 1u << 2}};
  std::vector<VaStateEntry> va = {{1, 2, /*out_vc=*/kV}};
  const AcReport r = ac_.check(rt, va, {});
  EXPECT_TRUE(r.any_error());
  EXPECT_EQ(r.bad_va_entries.size(), 1u);
  EXPECT_GE(kind_count(r, AcErrorKind::kVaInvalidVc), 1u);
}

TEST_F(AcTest, DetectsDuplicateOutputVcAssignment) {
  // Scenario (2): one unreserved output VC paired with two input VCs
  // ("incoming packets from the North and West both assigned the same
  // output VC in the South").
  std::vector<RoutingStateEntry> rt = {{0 * kV + 0, 1u << 2},
                                       {3 * kV + 0, 1u << 2}};
  std::vector<VaStateEntry> va = {{0 * kV + 0, 2, 1}, {3 * kV + 0, 2, 1}};
  const AcReport r = ac_.check(rt, va, {});
  EXPECT_TRUE(r.any_error());
  EXPECT_EQ(r.bad_va_entries.size(), 2u);  // Both pairings invalidated.
  EXPECT_GE(kind_count(r, AcErrorKind::kVaDuplicateVc), 1u);
}

TEST_F(AcTest, DetectsReservedVcReassignment) {
  // Scenario (3) is structurally the same duplicate check: the new packet
  // is paired with a VC already present in the VA state.
  std::vector<RoutingStateEntry> rt = {{5, 1u << 1}, {9, 1u << 1}};
  std::vector<VaStateEntry> va = {{5, 1, 0},   // Existing wormhole.
                                  {9, 1, 0}};  // Erroneous reuse.
  const AcReport r = ac_.check(rt, va, {});
  EXPECT_TRUE(r.any_error());
  EXPECT_GE(kind_count(r, AcErrorKind::kVaDuplicateVc), 1u);
}

TEST_F(AcTest, DetectsVaRoutingDisagreement) {
  // Scenario (4b): VA assigned a VC in the North PC while the routing
  // function indicated South.
  std::vector<RoutingStateEntry> rt = {{7, /*valid=South*/ 1u << 2}};
  std::vector<VaStateEntry> va = {{7, /*out_port=North*/ 0, 1}};
  const AcReport r = ac_.check(rt, va, {});
  EXPECT_TRUE(r.any_error());
  EXPECT_GE(kind_count(r, AcErrorKind::kVaRoutingMismatch), 1u);
}

TEST_F(AcTest, WrongVcWithinIntendedPcIsBenign) {
  // Scenario (4a): wrong output VC but in the intended physical channel —
  // the paper calls this benign; the AC must not flag it.
  std::vector<RoutingStateEntry> rt = {{7, 1u << 2}};
  std::vector<VaStateEntry> va = {{7, 2, 3}};  // Any VC of the South PC.
  const AcReport r = ac_.check(rt, va, {});
  EXPECT_FALSE(r.any_error());
}

TEST_F(AcTest, AllocationWithNoRoutingRowIsFlagged) {
  // The VA acted on a request the routing unit never produced.
  std::vector<VaStateEntry> va = {{12, 1, 0}};
  const AcReport r = ac_.check({}, va, {});
  EXPECT_TRUE(r.any_error());
}

TEST_F(AcTest, DetectsSaDuplicateOutput) {
  // §4.3 case (c): two flits granted the same output port.
  std::vector<SaStateEntry> sa = {{0, 2}, {3, 2}};
  const AcReport r = ac_.check({}, {}, sa);
  EXPECT_TRUE(r.any_error());
  EXPECT_EQ(r.bad_sa_entries.size(), 2u);
  EXPECT_GE(kind_count(r, AcErrorKind::kSaDuplicateOutput), 1u);
}

TEST_F(AcTest, DetectsSaMulticast) {
  // §4.3 case (d): one input granted multiple outputs.
  std::vector<SaStateEntry> sa = {{1, 0}, {1, 3}};
  const AcReport r = ac_.check({}, {}, sa);
  EXPECT_TRUE(r.any_error());
  EXPECT_GE(kind_count(r, AcErrorKind::kSaMulticast), 1u);
}

TEST_F(AcTest, CleanSaGrantsPass) {
  std::vector<SaStateEntry> sa = {{0, 1}, {1, 2}, {2, 0}, {4, 3}};
  const AcReport r = ac_.check({}, {}, sa);
  EXPECT_FALSE(r.any_error());
}

TEST_F(AcTest, InvalidSaPortIdsAreFlagged) {
  std::vector<SaStateEntry> sa = {{0, static_cast<PortId>(kP)}};
  const AcReport r = ac_.check({}, {}, sa);
  EXPECT_TRUE(r.any_error());
}

TEST_F(AcTest, MixedVaAndSaErrorsAreBothReported) {
  std::vector<RoutingStateEntry> rt = {{3, 1u << 1}};
  std::vector<VaStateEntry> va = {{3, 1, static_cast<VcId>(kV)}};
  std::vector<SaStateEntry> sa = {{0, 2}, {1, 2}};
  const AcReport r = ac_.check(rt, va, sa);
  EXPECT_EQ(r.bad_va_entries.size(), 1u);
  EXPECT_EQ(r.bad_sa_entries.size(), 2u);
}

// Parameterized sweep: for every (port, vc) pair, an out-of-range VC id on
// that port must be caught regardless of where it lands.
class AcInvalidVcSweep : public ::testing::TestWithParam<int> {};

TEST_P(AcInvalidVcSweep, InvalidVcCaughtOnEveryPort) {
  AllocationComparator ac(kP, kV);
  const auto port = static_cast<PortId>(GetParam());
  std::vector<RoutingStateEntry> rt = {
      {0, static_cast<std::uint8_t>(1u << port)}};
  std::vector<VaStateEntry> va = {{0, port, static_cast<VcId>(kV)}};
  const AcReport r = ac.check(rt, va, {});
  EXPECT_TRUE(r.any_error());
}

INSTANTIATE_TEST_SUITE_P(AllPorts, AcInvalidVcSweep,
                         ::testing::Range(0, kP));

}  // namespace
}  // namespace ftnoc

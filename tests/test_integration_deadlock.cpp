// Integration tests for deadlock detection (probing, §3.2.2) and recovery
// via retransmission buffers (§3.2.1).
//
// The canonical scenario: a 2x2 mesh, ONE virtual channel, minimal
// fully-adaptive routing, and four streams that form a cyclic channel
// dependency:
//
//     0 --E--> 1        A: 0->3 (E then S)    holds E(0,1), wants S(1,3)
//     ^        |        B: 1->2 (S then W)    holds S(1,3), wants W(3,2)
//     N        S        C: 3->0 (W then N)    holds W(3,2), wants N(2,0)
//     |        v        D: 2->1 (N then E)    holds N(2,0), wants E(0,1)
//     2 <--W-- 3
//
// With enough packets per stream the four wormholes close the cycle and no
// flit can ever advance — a true deadlock.

#include <gtest/gtest.h>

#include <algorithm>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

SimConfig deadlock_config() {
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.num_vcs = 1;
  cfg.vc_buffer_depth = 4;
  cfg.packet_length = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.0;  // Manual injection.
  cfg.warmup_messages = 0;
  cfg.total_messages = 4 * 8;
  cfg.max_cycles = 30'000;
  cfg.deadlock.probe_threshold = 24;
  cfg.deadlock.probe_backoff = 16;
  return cfg;
}

void inject_cyclic_streams(Network& net, int packets_per_stream) {
  // Diagonal destinations: each stream's two minimal directions intersect
  // the next stream's path. The adaptive router may initially pick either
  // dimension, but with single-VC contention the cyclic hold pattern
  // forms within a few packets.
  for (int i = 0; i < packets_per_stream; ++i) {
    net.inject_packet(0, 3, 4);
    net.inject_packet(1, 2, 4);
    net.inject_packet(3, 0, 4);
    net.inject_packet(2, 1, 4);
  }
}

TEST(IntegrationDeadlock, AdaptiveSingleVcDeadlocksWithoutRecovery) {
  SimConfig cfg = deadlock_config();
  cfg.deadlock.enable_recovery = false;
  Simulator sim(cfg);
  inject_cyclic_streams(sim.network(), 8);
  const SimResults r = sim.run();
  // The network wedges: the run times out with messages still stuck.
  EXPECT_FALSE(r.completed);
}

TEST(IntegrationDeadlock, RecoveryBreaksTheDeadlock) {
  SimConfig cfg = deadlock_config();
  cfg.deadlock.enable_recovery = true;
  Simulator sim(cfg);
  inject_cyclic_streams(sim.network(), 8);
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed) << "cycles=" << r.cycles
                           << " probes=" << r.probes_sent
                           << " confirmed=" << r.deadlocks_confirmed
                           << " absorbed=" << r.flits_absorbed;
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GE(r.deadlocks_confirmed, 1u);
  EXPECT_GE(r.recoveries_entered, 1u);
  EXPECT_GE(r.flits_absorbed, 1u);
}

TEST(IntegrationDeadlock, XyRoutingNeverTriggersRecovery) {
  // Dimension-ordered routing is deadlock-free: the probing machinery may
  // run, but no probe can ever come back (no cyclic dependency exists), so
  // no recovery is entered — the no-false-positives property.
  SimConfig cfg = deadlock_config();
  cfg.routing = RoutingAlgorithm::kXY;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 8;  // Aggressive probing.
  Simulator sim(cfg);
  inject_cyclic_streams(sim.network(), 8);
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.deadlocks_confirmed, 0u);
  EXPECT_EQ(r.recoveries_entered, 0u);
  EXPECT_EQ(r.flits_absorbed, 0u);
}

TEST(IntegrationDeadlock, HighLoadUniformAdaptiveCompletesWithRecovery) {
  // Random traffic on a larger mesh with adaptive routing and few VCs:
  // deadlocks may or may not form depending on the seed, but with recovery
  // enabled the run must always drain.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.injection_rate = 0.35;
  cfg.warmup_messages = 500;
  cfg.total_messages = 4'000;
  cfg.max_cycles = 400'000;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 64;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(IntegrationDeadlock, ProbeRouteMapStaysBounded) {
  // Regression: under congested-but-deadlock-free traffic most probes are
  // discarded downstream and never return, and the origin's probe-route
  // map used to keep one stale entry per unreturned probe for the rest of
  // the run. With per-mint reset and timeout GC the map can never hold
  // more than the single live probe.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.routing = RoutingAlgorithm::kXY;  // Deadlock-free: probes never return.
  cfg.injection_rate = 0.5;             // Past saturation: heavy blocking.
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 300'000;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 16;
  cfg.deadlock.probe_backoff = 8;
  Simulator sim(cfg);
  Network& net = sim.network();
  std::size_t max_entries = 0;
  for (int c = 0; c < 20'000; ++c) {
    net.step();
    for (NodeId n = 0; n < 16; ++n) {
      const std::size_t e = net.router(n).probe_route_entries();
      max_entries = std::max(max_entries, e);
      ASSERT_LE(e, 1u) << "node " << n << " cycle " << c;
    }
  }
  // Probing actually fired (otherwise the bound is vacuous).
  EXPECT_EQ(max_entries, 1u);
}

TEST(IntegrationDeadlock, ProbesWithoutDeadlockAreHarmless) {
  // Low threshold + congested but deadlock-free traffic: many probes fire,
  // all must be discarded (no false positives, §3.2.2).
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.routing = RoutingAlgorithm::kXY;
  cfg.injection_rate = 0.5;  // Past saturation: heavy blocking.
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 300'000;
  cfg.deadlock.enable_recovery = true;
  cfg.deadlock.probe_threshold = 16;
  cfg.deadlock.probe_backoff = 8;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.deadlocks_confirmed, 0u);
  EXPECT_EQ(r.recoveries_entered, 0u);
}

}  // namespace
}  // namespace ftnoc

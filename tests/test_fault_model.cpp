// Permanent-fault model (DESIGN.md §4.9): fault-aware routing against an
// independent BFS oracle on random faulted meshes, partition rejection,
// runtime link escalation, dead routers and graceful degradation, plus the
// unmeasured-replica and estimator edge-case regressions that shipped with
// the fault model.

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/presets.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc {
namespace {

// Test-local BFS over live links only — deliberately independent of
// Topology's own distance table so the two can cross-check each other.
std::vector<int> oracle_distances(const Topology& topo, NodeId dest) {
  const int n = topo.num_nodes();
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  if (!topo.router_alive(dest)) return dist;
  std::vector<NodeId> frontier{dest};
  dist[dest] = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const NodeId cur : frontier) {
      for (int d = 0; d < 4; ++d) {
        const auto dir = static_cast<Direction>(d);
        if (!topo.link_alive(cur, dir)) continue;
        const NodeId nb = *topo.neighbor(cur, dir);
        if (dist[nb] >= 0) continue;
        dist[nb] = dist[cur] + 1;
        next.push_back(nb);
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

TEST(FaultModelProperty, RouteStrictlyDescendsOnRandomFaultedMeshes) {
  Rng rng(20260805);
  for (int trial = 0; trial < 25; ++trial) {
    Topology topo(8, 8, false);
    // Plant up to 4 random dead links, rejecting any draw that would
    // partition the mesh (mirroring the escalation veto), so every pair
    // stays connected and the non-empty-mask property must hold.
    const int want = static_cast<int>(rng.next_below(5));
    int placed = 0;
    for (int att = 0; att < 200 && placed < want; ++att) {
      const NodeId n = static_cast<NodeId>(rng.next_below(64));
      const auto d = static_cast<Direction>(rng.next_below(4));
      if (!topo.link_alive(n, d)) continue;
      if (topo.would_partition(n, d)) continue;
      topo.fail_link(n, d);
      ++placed;
    }
    for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
      const std::vector<int> oracle = oracle_distances(topo, dest);
      for (NodeId cur = 0; cur < topo.num_nodes(); ++cur) {
        // Cross-check the table itself first.
        const std::uint16_t fd = topo.fault_distance(cur, dest);
        if (oracle[cur] < 0) {
          EXPECT_EQ(fd, Topology::kUnreachable);
        } else {
          EXPECT_EQ(static_cast<int>(fd), oracle[cur]);
        }
        if (cur == dest) continue;

        // The exact set of strictly-descending live ports.
        PortMask descending = 0;
        for (int d = 0; d < 4; ++d) {
          const auto dir = static_cast<Direction>(d);
          if (!topo.link_alive(cur, dir)) continue;
          const NodeId nb = *topo.neighbor(cur, dir);
          if (oracle[nb] >= 0 && oracle[nb] == oracle[cur] - 1) {
            descending |= static_cast<PortMask>(1u << d);
          }
        }

        const PortMask ad =
            route(topo, RoutingAlgorithm::kMinimalAdaptive, cur, dest);
        EXPECT_EQ(ad, descending)
            << "adaptive mask at " << cur << " -> " << dest;
        ASSERT_NE(ad, 0) << "connected pair got an empty mask";

        const PortMask xy = route(topo, RoutingAlgorithm::kXY, cur, dest);
        // XY offers a single deterministic port that strictly descends.
        EXPECT_EQ(xy & (xy - 1), 0) << "XY must offer exactly one port";
        EXPECT_NE(xy & descending, 0) << "XY port must strictly descend";
        if (topo.has_faults()) {
          // Fault-aware mode pins the choice to the lowest-numbered
          // descending port (fault-free XY orders X before Y instead).
          EXPECT_EQ(xy, descending & static_cast<PortMask>(-descending));
        }
      }
    }
  }
}

TEST(FaultModelProperty, EscapePortsMatchBfsOracleOnRandomFaultedMeshes) {
  // The non-minimal escape tier (DESIGN.md §4.12) against the same
  // independent oracle: on meshes faulted heavily enough to disconnect
  // some pairs, fault_escape_ports() must be non-empty exactly for the
  // reachable pairs, and must offer exactly the live neighbours of
  // minimum remaining distance — the detour that keeps progress bounded.
  Rng rng(20260808);
  for (int trial = 0; trial < 10; ++trial) {
    Topology topo(8, 8, false);
    // No partition veto here, deliberately: unreachable pairs are the
    // interesting half of the contract (escape must come back empty so
    // phase_rt can drop the packet as unreachable instead of looping).
    const int want = 2 + static_cast<int>(rng.next_below(10));
    for (int att = 0; att < 200 && topo.route_epoch() <
                                       static_cast<std::uint32_t>(want);
         ++att) {
      const NodeId n = static_cast<NodeId>(rng.next_below(64));
      const auto d = static_cast<Direction>(rng.next_below(4));
      if (!topo.link_alive(n, d)) continue;
      topo.fail_link(n, d);
    }
    for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
      const std::vector<int> oracle = oracle_distances(topo, dest);
      for (NodeId cur = 0; cur < topo.num_nodes(); ++cur) {
        if (cur == dest) continue;
        // The exact set of live ports whose neighbour reaches dest at the
        // minimum distance over all such neighbours.
        int best = -1;
        for (int d = 0; d < 4; ++d) {
          const auto dir = static_cast<Direction>(d);
          if (!topo.link_alive(cur, dir)) continue;
          const int nd = oracle[*topo.neighbor(cur, dir)];
          if (nd < 0) continue;
          if (best < 0 || nd < best) best = nd;
        }
        PortMask expect = 0;
        for (int d = 0; d < 4; ++d) {
          const auto dir = static_cast<Direction>(d);
          if (!topo.link_alive(cur, dir)) continue;
          if (oracle[*topo.neighbor(cur, dir)] == best && best >= 0) {
            expect |= static_cast<PortMask>(1u << d);
          }
        }
        const PortMask esc = fault_escape_ports(topo, cur, dest);
        EXPECT_EQ(esc, expect) << "escape mask at " << cur << " -> " << dest;
        EXPECT_EQ(esc != 0, oracle[cur] >= 0)
            << "escape mask must be non-empty iff " << cur << " can still "
            << "reach " << dest;
        if (esc == 0) continue;
        // Termination: one escape hop, then the strictly-descending
        // adaptive walk, reaches dest in exactly best more hops — the
        // misroute detour cannot loop.
        NodeId at = *topo.neighbor(
            cur, static_cast<Direction>(std::countr_zero(esc)));
        for (int left = best; left > 0; --left) {
          const PortMask ad =
              route(topo, RoutingAlgorithm::kMinimalAdaptive, at, dest);
          ASSERT_NE(ad, 0) << "descending walk stuck at " << at;
          at = *topo.neighbor(
              at, static_cast<Direction>(std::countr_zero(ad)));
        }
        EXPECT_EQ(at, dest);
      }
    }
  }
}

TEST(Topology, RouteEpochBumpsAndLazyRowsStayExact) {
  // The per-destination distance rows are rebuilt lazily (PR 8): a
  // fail_link() only bumps the route epoch, and each row re-runs its BFS
  // on first use afterwards. Rows primed before a kill must not serve
  // stale distances after it.
  Topology topo(4, 4, false);
  const std::uint32_t e0 = topo.route_epoch();
  // Prime every row at full health, so staleness would actually show.
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    EXPECT_EQ(static_cast<int>(topo.fault_distance(0, dest)),
              oracle_distances(topo, dest)[0]);
  }
  topo.fail_link(5, Direction::kEast);
  EXPECT_EQ(topo.route_epoch(), e0 + 1);
  topo.fail_link(9, Direction::kNorth);
  EXPECT_EQ(topo.route_epoch(), e0 + 2);
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    const std::vector<int> oracle = oracle_distances(topo, dest);
    for (NodeId cur = 0; cur < topo.num_nodes(); ++cur) {
      EXPECT_EQ(static_cast<int>(topo.fault_distance(cur, dest)),
                oracle[cur])
          << cur << " -> " << dest << " after mid-run kills";
    }
  }
}

TEST(FaultEscalation, JointlyPartitioningRequestsTrimToSafePrefix) {
  // Regression for the batched-veto bug (PR 8): two same-cycle escalation
  // requests that are each safe alone but jointly isolate a node must be
  // trimmed to a safe prefix, not both granted. On a 2x2 mesh, node 0's
  // East and South links each leave the mesh connected — killing both
  // cuts node 0 off entirely.
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  cfg.faults.link_escalation_threshold = 1;  // Arm the escalation poll.
  for (const bool force_scan : {true, false}) {
    cfg.force_scan_kernel = force_scan;
    Network net(cfg);
    net.stats().begin_measurement(0);
    net.router_base(0).request_escalation(
        static_cast<PortId>(Direction::kEast));
    net.router_base(0).request_escalation(
        static_cast<PortId>(Direction::kSouth));
    for (int c = 0; c < 4; ++c) net.step();
    EXPECT_EQ(net.stats().links_escalated(), 1u)
        << "exactly one of the two jointly-partitioning kills may land "
        << "(force_scan=" << force_scan << ")";
    const bool east_dead = !net.topology().link_alive(0, Direction::kEast);
    const bool south_dead = !net.topology().link_alive(0, Direction::kSouth);
    EXPECT_NE(east_dead, south_dead);
    EXPECT_NE(net.topology().fault_distance(0, 3), Topology::kUnreachable)
        << "the veto let the batch partition the mesh";
  }
}

TEST(FaultModelProperty, ValidateRejectsPartitioningFaultSets) {
  // Cutting the East link in every row of column x=1 splits a 4x4 mesh
  // into columns {0,1} and {2,3}.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  for (const NodeId n : {1, 5, 9, 13}) {
    cfg.dead_links.push_back({n, Direction::kEast});
  }
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("partition"), std::string::npos);

  // Dropping any one cut reconnects the halves.
  cfg.dead_links.pop_back();
  EXPECT_EQ(cfg.validate(), std::nullopt);

  // A dead router may isolate a live one just as well: kill node 1's
  // three other neighbours and its column link, leaving 1 alive but cut.
  SimConfig island;
  island.mesh_width = 4;
  island.mesh_height = 4;
  island.dead_routers = {0, 2, 5};
  EXPECT_TRUE(island.validate().has_value());
}

TEST(FaultDegradationPreset, GridIsValidAtPaperAndSmokeScales) {
  for (const int mesh : {4, 8}) {
    SimConfig base;
    base.mesh_width = mesh;
    base.mesh_height = mesh;
    const auto pts = sweep::fault_degradation_points(base);
    ASSERT_EQ(pts.size(), 5u) << mesh;
    for (std::size_t k = 0; k < pts.size(); ++k) {
      EXPECT_EQ(pts[k].config.dead_links.size(), k);
      EXPECT_EQ(pts[k].config.validate(), std::nullopt)
          << "k=" << k << " mesh=" << mesh;
      EXPECT_EQ(pts[k].config.has_permanent_faults(), k > 0);
    }
  }
}

TEST(FaultDegradationPreset, TinySweepDeliversEverythingAndGatesColumns) {
  // Run the whole degradation grid at smoke scale: every point must
  // complete with zero unreachable drops (connected pairs never lose a
  // packet), and the permanent-fault JSONL columns must appear exactly
  // on the faulted points — fault-free lines keep the legacy key set.
  SimConfig base;
  base.mesh_width = 4;
  base.mesh_height = 4;
  base.num_vcs = 2;
  base.warmup_messages = 100;
  base.total_messages = 600;
  base.max_cycles = 200'000;
  const auto pts = sweep::fault_degradation_points(base);
  ASSERT_EQ(pts.size(), 5u);
  sweep::SweepOptions opts;
  opts.num_threads = 1;
  const auto results = sweep::SweepEngine(opts).run(pts);
  for (const auto& pr : results) {
    EXPECT_TRUE(pr.results.completed) << pr.label;
    EXPECT_EQ(pr.results.unreachable_drops, 0u) << pr.label;
    const std::string line = sweep::to_jsonl(pr);
    const bool faulted = pr.config.has_permanent_faults();
    EXPECT_EQ(line.find("\"dead_links\"") != std::string::npos, faulted);
    EXPECT_EQ(line.find("\"packets_rerouted\"") != std::string::npos, faulted)
        << line;
  }
}

TEST(FaultStormPreset, GridIsValidAtPaperAndSmokeScales) {
  for (const int mesh : {4, 8}) {
    SimConfig base;
    base.mesh_width = mesh;
    base.mesh_height = mesh;
    const auto pts = sweep::fault_storm_points(base);
    ASSERT_EQ(pts.size(), 5u) << mesh;
    for (std::size_t k = 0; k < pts.size(); ++k) {
      EXPECT_EQ(pts[k].config.storm_kills.size(), k);
      EXPECT_EQ(pts[k].config.validate(), std::nullopt)
          << "k=" << k << " mesh=" << mesh;
      EXPECT_EQ(pts[k].config.has_permanent_faults(), k > 0);
      EXPECT_TRUE(pts[k].config.adaptive_faults);
    }
  }
}

TEST(FaultStormPreset, TinySweepNeverDropsReachableAndGatesColumns) {
  // Run the whole storm grid at smoke scale. The kill schedule never
  // partitions (and the runtime veto backstops it), so every destination
  // stays reachable: the degradation curve must be pure latency/detour —
  // unreachable_drops == 0 on every point — with every scheduled kill
  // actually landing. The storm JSONL columns appear exactly on the
  // points that schedule kills. The message budget is sized so every run
  // outlives the last kill at cycle 1000 (600 messages drain in ~500
  // cycles and would leave the tail of the timeline unfired).
  SimConfig base;
  base.mesh_width = 4;
  base.mesh_height = 4;
  base.num_vcs = 2;
  base.warmup_messages = 400;
  base.total_messages = 4'000;
  base.max_cycles = 200'000;
  const auto pts = sweep::fault_storm_points(base);
  ASSERT_EQ(pts.size(), 5u);
  sweep::SweepOptions opts;
  opts.num_threads = 1;
  const auto results = sweep::SweepEngine(opts).run(pts);
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& pr = results[k];
    EXPECT_TRUE(pr.results.completed) << pr.label;
    EXPECT_EQ(pr.results.unreachable_drops, 0u) << pr.label;
    EXPECT_EQ(pr.results.links_storm_killed, k)
        << pr.label << ": a scheduled kill was vetoed or never fired";
    const std::string line = sweep::to_jsonl(pr);
    EXPECT_EQ(line.find("\"storm_kills\"") != std::string::npos, k > 0)
        << line;
    EXPECT_EQ(line.find("\"links_storm_killed\"") != std::string::npos,
              k > 0)
        << line;
    EXPECT_NE(line.find("\"adaptive_faults\":true"), std::string::npos)
        << line;
  }
}

TEST(HardFaults, ConnectedPairsNeverDropUnreachable) {
  // Two interior dead links that do not partition: every packet must
  // still arrive — degradation is latency and detours, never loss.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.injection_rate = 0.1;
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 400'000;
  cfg.check_invariants = true;
  cfg.dead_links.push_back({5, Direction::kEast});
  cfg.dead_links.push_back({9, Direction::kNorth});
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.unreachable_drops, 0u);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(HardFaults, PacketsToDeadRouterDropAsUnreachable) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 10;
  cfg.max_cycles = 50'000;
  cfg.check_invariants = true;
  cfg.dead_routers = {5};
  Simulator sim(cfg);
  for (int i = 0; i < 10; ++i) {
    sim.network().inject_packet(0, 5, 4);   // Dead destination.
    sim.network().inject_packet(0, 15, 4);  // Live destination.
  }
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);  // The 10 live-destination packets eject.
  EXPECT_EQ(r.messages_ejected, 10u);
  EXPECT_EQ(r.unreachable_drops, 10u);
}

TEST(FaultEscalation, RepeatedUncorrectableUpsetsRetireTheLink) {
  // Every link error is multi-bit (uncorrectable under HBH's SEC), at a
  // rate high enough that busy links see consecutive-failure streaks:
  // escalation must retire at least one link, the partition veto must
  // keep the fabric connected, and every packet must still deliver.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.deadlock.enable_recovery = true;
  cfg.protection = LinkProtection::kHbh;
  cfg.injection_rate = 0.15;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1'000;
  cfg.max_cycles = 1'000'000;
  cfg.check_invariants = true;
  cfg.faults.link_error_rate = 0.5;
  cfg.faults.multi_bit_fraction = 1.0;
  cfg.faults.link_escalation_threshold = 3;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.links_escalated, 0u);
  EXPECT_EQ(r.unreachable_drops, 0u);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(FaultEscalation, DisarmedThresholdNeverEscalates) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.protection = LinkProtection::kHbh;
  cfg.injection_rate = 0.15;
  cfg.warmup_messages = 0;
  cfg.total_messages = 500;
  cfg.max_cycles = 1'000'000;
  cfg.faults.link_error_rate = 0.5;
  cfg.faults.multi_bit_fraction = 1.0;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.links_escalated, 0u);
  EXPECT_EQ(r.packets_rerouted, 0u);
}

// --- Unmeasured-replica regression (the warm-up bug fix) --------------------

TEST(Simulator, NeverWarmedUpReplicaReportsWholeRunCountersOnly) {
  // The run hits max_cycles before the warm-up budget ejects: there is no
  // measurement window, so windowed metrics must stay zero instead of
  // being computed from a never-started window.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.05;
  cfg.warmup_messages = 1'000'000;
  cfg.total_messages = 2'000'000;
  cfg.max_cycles = 5'000;
  const SimResults r = run_simulation(cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.measured_messages, 0u);
  EXPECT_EQ(r.avg_latency_cycles, 0.0);
  EXPECT_EQ(r.throughput_flits_node_cycle, 0.0);
  EXPECT_EQ(r.energy_per_message_nj, 0.0);
  // Whole-run accounting still flows.
  EXPECT_GT(r.packets_created, 0u);
  EXPECT_GT(r.messages_ejected, 0u);
}

}  // namespace
}  // namespace ftnoc

// Tests for the Monte-Carlo campaign subsystem: byte-identical output
// across thread counts, crash-resume from (possibly torn) journals,
// adaptive sequential stopping, and the interval estimators behind the
// aggregate records.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/estimators.hpp"
#include "campaign/journal.hpp"
#include "common/stats_util.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc {
namespace {

/// Small-but-real base point, mirroring tests/test_sweep.cpp.
SimConfig tiny_config() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.warmup_messages = 200;
  cfg.total_messages = 1'200;
  cfg.max_cycles = 200'000;
  return cfg;
}

std::vector<sweep::SweepPoint> tiny_grid() {
  std::vector<sweep::SweepPoint> points;
  for (const double rate : {0.05, 0.15}) {
    sweep::SweepPoint pt;
    pt.label = "inj=" + std::to_string(rate);
    pt.config = tiny_config();
    pt.config.injection_rate = rate;
    pt.config.faults.link_error_rate = 1e-3;
    points.push_back(std::move(pt));
  }
  return points;
}

struct CampaignOutput {
  std::vector<std::string> lines;  ///< Journal lines, in emission order.
  std::vector<std::string> aggs;   ///< Serialized aggregate records.
  std::vector<campaign::PointAggregate> result;
  int fresh = 0;  ///< Replicas actually simulated (not replayed).
};

CampaignOutput run_campaign(const std::vector<sweep::SweepPoint>& points,
                            const campaign::CampaignOptions& opts,
                            const campaign::Journal* resume = nullptr) {
  CampaignOutput out;
  campaign::CampaignEngine engine(opts);
  out.result = engine.run(
      points, resume,
      [&](const std::string& line) { out.lines.push_back(line); },
      [&](const campaign::PointAggregate& agg) {
        out.aggs.push_back(campaign::aggregate_line(agg, opts.campaign_seed));
      },
      [&](const campaign::PointAggregate&, int fresh) { out.fresh += fresh; });
  return out;
}

std::vector<std::uint64_t> point_hashes(
    const std::vector<sweep::SweepPoint>& points) {
  std::vector<std::uint64_t> hashes;
  for (const auto& pt : points) {
    hashes.push_back(campaign::config_hash(pt.config));
  }
  return hashes;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines, std::size_t count,
                 const char* torn_tail = nullptr) {
  std::ofstream f(path, std::ios::trunc);
  for (std::size_t i = 0; i < count; ++i) f << lines[i] << '\n';
  if (torn_tail != nullptr) f << torn_tail;  // No newline: a mid-write crash.
}

TEST(Campaign, ByteIdenticalAcrossThreadCounts) {
  const auto points = tiny_grid();
  campaign::CampaignOptions opts;
  opts.campaign_seed = 7;
  opts.stop.max_replicas = 4;
  opts.stop.min_replicas = 4;

  opts.num_threads = 1;
  const auto serial = run_campaign(points, opts);
  opts.num_threads = 8;
  const auto parallel = run_campaign(points, opts);

  // 2 points x 4 replicas + 2 aggregate records.
  ASSERT_EQ(serial.lines.size(), 10u);
  EXPECT_EQ(serial.lines, parallel.lines);
  EXPECT_EQ(serial.aggs, parallel.aggs);
  EXPECT_EQ(serial.fresh, 8);
  EXPECT_EQ(parallel.fresh, 8);

  ASSERT_EQ(serial.result.size(), 2u);
  for (const auto& agg : serial.result) {
    EXPECT_EQ(agg.replicas, 4);
    EXPECT_FALSE(agg.stopped_early);  // No CI target configured.
    EXPECT_GT(agg.latency.mean(), 0.0);
    EXPECT_GT(agg.measured_messages, 0u);
  }
}

TEST(Campaign, ResumeFromJournalPrefixIsByteIdentical) {
  const auto points = tiny_grid();
  const auto hashes = point_hashes(points);
  campaign::CampaignOptions opts;
  opts.num_threads = 2;
  opts.campaign_seed = 7;
  opts.stop.max_replicas = 4;
  opts.stop.min_replicas = 4;

  const auto full = run_campaign(points, opts);
  ASSERT_EQ(full.lines.size(), 10u);

  const std::string path = ::testing::TempDir() + "campaign_resume.jsonl";
  // Crash points: nothing written, mid-campaign, and all-but-last line.
  // The last case also leaves a torn half-line behind, as a real crash
  // mid-fprintf would.
  struct Crash {
    std::size_t prefix;
    const char* torn;
  };
  const Crash crashes[] = {
      {0, nullptr},
      {4, nullptr},
      {9, "{\"type\":\"replica\",\"campaign_se"}};
  for (const auto& crash : crashes) {
    write_lines(path, full.lines, crash.prefix, crash.torn);
    const auto journal =
        campaign::Journal::load(path, opts.campaign_seed, hashes);
    EXPECT_TRUE(journal.mismatch().empty()) << journal.mismatch();
    EXPECT_EQ(journal.valid_lines(), crash.prefix);

    const auto resumed = run_campaign(points, opts, &journal);
    // The engine re-emits the full deterministic sequence; callers skip
    // the prefix already on disk. All of it must match the clean run.
    EXPECT_EQ(resumed.lines, full.lines);
    EXPECT_EQ(resumed.aggs, full.aggs);
    // Replayed replicas were not re-simulated.
    EXPECT_EQ(resumed.fresh,
              full.fresh - static_cast<int>(journal.replica_count()));
  }
  std::remove(path.c_str());
}

TEST(Campaign, JournalRejectsForeignLines) {
  const auto points = tiny_grid();
  const auto hashes = point_hashes(points);
  campaign::CampaignOptions opts;
  opts.num_threads = 2;
  opts.campaign_seed = 7;
  opts.stop.max_replicas = 2;
  opts.stop.min_replicas = 2;
  const auto full = run_campaign(points, opts);

  const std::string path = ::testing::TempDir() + "campaign_foreign.jsonl";
  write_lines(path, full.lines, full.lines.size());

  // The matching campaign loads cleanly...
  const auto ok = campaign::Journal::load(path, opts.campaign_seed, hashes);
  EXPECT_TRUE(ok.mismatch().empty());
  EXPECT_EQ(ok.valid_lines(), full.lines.size());
  EXPECT_EQ(ok.replica_count(), 4u);
  EXPECT_TRUE(ok.file_existed());
  EXPECT_NE(ok.find(0, 0), nullptr);
  EXPECT_NE(ok.find(1, 1), nullptr);
  EXPECT_EQ(ok.find(0, 2), nullptr);

  // ...a different campaign seed is refused...
  const auto wrong_seed = campaign::Journal::load(path, 8, hashes);
  EXPECT_FALSE(wrong_seed.mismatch().empty());

  // ...and so is a changed point config (different hash).
  auto other_hashes = hashes;
  other_hashes[0] ^= 1;
  const auto wrong_cfg =
      campaign::Journal::load(path, opts.campaign_seed, other_hashes);
  EXPECT_FALSE(wrong_cfg.mismatch().empty());

  // A missing file is an empty journal, not an error.
  const auto missing = campaign::Journal::load(
      ::testing::TempDir() + "campaign_nonexistent.jsonl",
      opts.campaign_seed, hashes);
  EXPECT_TRUE(missing.mismatch().empty());
  EXPECT_FALSE(missing.file_existed());
  EXPECT_EQ(missing.valid_lines(), 0u);
  std::remove(path.c_str());
}

TEST(Campaign, AdaptiveStoppingRetiresCheapPointsEarly) {
  // Two points identical except for the per-replica message budget: the
  // 4000-message point estimates its mean latency ~sqrt(10)x more tightly
  // per replica than the 400-message point, so under a CI target it should
  // stop at min_replicas while the noisy point runs to the cap.
  std::vector<sweep::SweepPoint> points;
  for (const std::uint64_t budget : {4'000u, 400u}) {
    sweep::SweepPoint pt;
    pt.label = "msgs=" + std::to_string(budget);
    pt.config.mesh_width = 4;
    pt.config.mesh_height = 4;
    pt.config.warmup_messages = 200;
    pt.config.total_messages = budget;
    pt.config.max_cycles = 200'000;
    pt.config.injection_rate = 0.10;
    pt.config.faults.link_error_rate = 1e-3;
    points.push_back(std::move(pt));
  }

  campaign::CampaignOptions opts;
  opts.num_threads = 4;
  opts.stop.ci_abs = 0.15;
  opts.stop.min_replicas = 3;
  opts.stop.wave = 3;
  opts.stop.max_replicas = 12;

  const auto out = run_campaign(points, opts);
  ASSERT_EQ(out.result.size(), 2u);
  const auto& cheap = out.result[0];
  const auto& noisy = out.result[1];
  EXPECT_TRUE(cheap.stopped_early);
  EXPECT_LT(cheap.replicas, opts.stop.max_replicas);
  EXPECT_LE(cheap.latency_ci(), opts.stop.ci_abs);
  EXPECT_FALSE(noisy.stopped_early);
  EXPECT_EQ(noisy.replicas, opts.stop.max_replicas);
  // The saved work is visible in the journal's replica-count records.
  EXPECT_EQ(out.fresh, cheap.replicas + noisy.replicas);
  const std::string cheap_agg = aggregate_line(cheap, opts.campaign_seed);
  EXPECT_NE(cheap_agg.find("\"stopped_early\":true"), std::string::npos);
  EXPECT_NE(cheap_agg.find("\"replicas\":" + std::to_string(cheap.replicas)),
            std::string::npos);
}

TEST(Campaign, StopRuleNeverFiresBelowMinReplicas) {
  campaign::PointAggregate agg;
  SimResults r;
  r.completed = true;
  r.avg_latency_cycles = 20.0;
  campaign::StopRule rule;
  rule.ci_abs = 1e9;  // Trivially satisfiable.
  rule.min_replicas = 4;
  rule.max_replicas = 8;

  for (int i = 0; i < 3; ++i) {
    agg.add_replica(r);
    EXPECT_FALSE(agg.meets(rule)) << "fired at replica " << i + 1;
  }
  agg.add_replica(r);
  EXPECT_TRUE(agg.meets(rule));

  campaign::StopRule off;  // No CI target: fixed-R campaign.
  EXPECT_FALSE(off.adaptive());
  EXPECT_FALSE(agg.meets(off));
}

TEST(CampaignEstimators, WilsonIntervalStaysInUnitRange) {
  for (const std::uint64_t n : {1u, 2u, 7u, 100u, 10'000u}) {
    for (const std::uint64_t s : {std::uint64_t{0}, n / 3, n}) {
      const RateInterval w = wilson_interval(s, n);
      EXPECT_GE(w.low, 0.0) << s << "/" << n;
      EXPECT_LE(w.high, 1.0) << s << "/" << n;
      EXPECT_LE(w.low, w.rate) << s << "/" << n;
      EXPECT_GE(w.high, w.rate) << s << "/" << n;
      EXPECT_DOUBLE_EQ(w.rate, static_cast<double>(s) / n);
    }
  }
  // Zero trials: the vacuous interval, never NaN.
  const RateInterval empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.low, 0.0);
  EXPECT_EQ(empty.high, 1.0);
  // Unlike a normal interval, p-hat = 0 stays informative: the upper bound
  // tightens with n instead of collapsing to [0, 0].
  EXPECT_GT(wilson_interval(0, 10).high, wilson_interval(0, 1000).high);
  EXPECT_GT(wilson_interval(0, 1000).high, 0.0);
}

TEST(CampaignEstimators, OvercountedSuccessesAndEjectionsClampSafely) {
  // A replica stopped mid-E2E-retransmit can double-deliver: ejections
  // transiently exceed creations. Neither the interval nor loss() may
  // wrap the unsigned difference or leave the unit range.
  const RateInterval over = wilson_interval(12, 10);
  EXPECT_DOUBLE_EQ(over.rate, 1.0);
  EXPECT_LE(over.high, 1.0);
  EXPECT_GE(over.low, 0.0);

  campaign::PointAggregate agg;
  agg.packets_created = 10;
  agg.messages_ejected = 12;
  const RateInterval loss = agg.loss();
  EXPECT_DOUBLE_EQ(loss.rate, 0.0);
  EXPECT_GE(loss.low, 0.0);
  EXPECT_LE(loss.high, 1.0);
}

TEST(CampaignEstimators, WilsonIntervalShrinksMonotonically) {
  // Fixed p-hat = 0.1, growing n: the width must strictly shrink.
  double prev_width = 2.0;
  for (const std::uint64_t n : {10u, 100u, 1'000u, 10'000u, 100'000u}) {
    const RateInterval w = wilson_interval(n / 10, n);
    const double width = w.high - w.low;
    EXPECT_LT(width, prev_width) << "n=" << n;
    prev_width = width;
  }
  EXPECT_LT(prev_width, 0.005);  // And converges toward zero.
}

TEST(CampaignEstimators, MeanCiHalfwidth) {
  RunningStat s;
  EXPECT_TRUE(std::isinf(mean_ci_halfwidth(s)));  // No data: no interval.
  s.add(10.0);
  EXPECT_TRUE(std::isinf(mean_ci_halfwidth(s)));  // One sample: no spread.
  for (int i = 2; i <= 10; ++i) s.add(10.0 + i);
  EXPECT_NEAR(mean_ci_halfwidth(s),
              kZ95 * s.stddev() / std::sqrt(10.0), 1e-12);
  // More replicas at the same spread tighten the interval.
  RunningStat wide;
  for (int i = 0; i < 4; ++i) wide.add(i % 2 == 0 ? 10.0 : 20.0);
  RunningStat narrow;
  for (int i = 0; i < 16; ++i) narrow.add(i % 2 == 0 ? 10.0 : 20.0);
  EXPECT_LT(mean_ci_halfwidth(narrow), mean_ci_halfwidth(wide));
}

TEST(CampaignJournal, ConfigHashIgnoresSeedOnly) {
  SimConfig a = tiny_config();
  SimConfig b = a;
  b.seed = a.seed + 123;  // Replicas differ only in seed: same point.
  EXPECT_EQ(campaign::config_hash(a), campaign::config_hash(b));

  SimConfig c = a;
  c.faults.link_error_rate = 2e-3;
  EXPECT_NE(campaign::config_hash(a), campaign::config_hash(c));
  SimConfig d = a;
  d.total_messages += 1;
  EXPECT_NE(campaign::config_hash(a), campaign::config_hash(d));
}

TEST(CampaignJournal, ReplicaLineRoundTripsResults) {
  const auto points = tiny_grid();
  const auto hashes = point_hashes(points);
  campaign::CampaignOptions opts;
  opts.num_threads = 1;
  opts.campaign_seed = 3;
  opts.stop.max_replicas = 1;
  opts.stop.min_replicas = 1;
  const auto run = run_campaign(points, opts);

  const std::string path = ::testing::TempDir() + "campaign_roundtrip.jsonl";
  write_lines(path, run.lines, run.lines.size());
  const auto journal =
      campaign::Journal::load(path, opts.campaign_seed, hashes);
  ASSERT_TRUE(journal.mismatch().empty()) << journal.mismatch();

  // A campaign replaying every replica from the journal must aggregate to
  // the exact same records without simulating anything.
  const auto replayed = run_campaign(points, opts, &journal);
  EXPECT_EQ(replayed.fresh, 0);
  EXPECT_EQ(replayed.aggs, run.aggs);
  EXPECT_EQ(replayed.lines, run.lines);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftnoc

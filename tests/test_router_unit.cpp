// Router-level unit tests: a single router driven through hand-held wires,
// reproducing the paper's Figure 4 HBH flit flow cycle by cycle.

#include <gtest/gtest.h>

#include <vector>

#include "noc/router.hpp"

namespace ftnoc {
namespace {

constexpr PortId kE = static_cast<PortId>(Direction::kEast);
constexpr PortId kL = static_cast<PortId>(Direction::kLocal);

// Harness: router 0 of a 2x1 mesh (only an East neighbour exists). The
// test acts as both the PE (via the local wire) and the downstream
// router (via the East wire pair).
class RouterHarness : public ::testing::Test {
 protected:
  RouterHarness() : topo_(2, 1, false) {
    cfg_.mesh_width = 2;
    cfg_.mesh_height = 1;
    cfg_.num_vcs = 2;
    cfg_.vc_buffer_depth = 4;
    cfg_.protection = LinkProtection::kHbh;
  }

  void build() {
    router_ = std::make_unique<Router>(0, cfg_, topo_, nullptr, nullptr,
                                       &stats_);
    router_->connect(kE, &east_in_, &east_out_);
    router_->connect(kL, &local_in_, nullptr);
    router_->set_eject_fn([this](const Flit& f, Cycle now) {
      ejected_.push_back({f, now});
    });
  }

  // One network cycle: step the router, then advance all wires.
  void tick() {
    router_->step(now_);
    east_in_.tick();
    east_out_.tick();
    local_in_.tick();
    ++now_;
  }

  // PE-side injection of one flit (assumes local credit available).
  void inject(const Flit& f) { local_in_.flit.write(f); }

  std::vector<Flit> make_packet(PacketId pid, NodeId dest, int len) {
    return TrafficSourcePacket(pid, dest, len);
  }

  static std::vector<Flit> TrafficSourcePacket(PacketId pid, NodeId dest,
                                               int len) {
    std::vector<Flit> flits;
    for (int i = 0; i < len; ++i) {
      FlitType t = len == 1               ? FlitType::kHeadTail
                   : i == 0               ? FlitType::kHead
                   : i == len - 1         ? FlitType::kTail
                                          : FlitType::kBody;
      Flit f = make_flit(t, pid, 0, dest, static_cast<std::uint8_t>(i), 0,
                         0xAB00 + static_cast<std::uint64_t>(i));
      f.vc = 0;  // Local lane 0.
      flits.push_back(f);
    }
    return flits;
  }

  SimConfig cfg_;
  Topology topo_;
  StatsCollector stats_;
  std::unique_ptr<Router> router_;
  Wire east_in_;   // Neighbour -> router (we write flits, read credit/NACK).
  Wire east_out_;  // Router -> neighbour (we read flits, write credit/NACK).
  Wire local_in_;  // PE -> router.
  std::vector<std::pair<Flit, Cycle>> ejected_;
  Cycle now_ = 0;
};

TEST_F(RouterHarness, ForwardsPacketEastInOrder) {
  build();
  stats_.begin_measurement(0);
  auto pkt = make_packet(1, /*dest=*/1, 4);
  std::size_t next = 0;
  std::vector<Flit> seen;
  for (int c = 0; c < 30; ++c) {
    if (next < pkt.size() && local_in_.flit.can_write()) {
      inject(pkt[next++]);
    }
    if (auto f = east_out_.flit.read()) seen.push_back(*f);
    tick();
  }
  ASSERT_EQ(seen.size(), 4u);
  for (std::uint8_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[i].seq, i);
    EXPECT_EQ(seen[i].packet_id, 1u);
    EXPECT_EQ(ecc::decode(seen[i].codeword).status, ecc::DecodeStatus::kClean);
  }
}

TEST_F(RouterHarness, HeaderLatencyIsThreePipeStages) {
  build();
  auto pkt = make_packet(1, 1, 1);
  inject(pkt[0]);  // Visible to the router at cycle 1.
  Cycle out_cycle = 0;
  for (int c = 0; c < 20 && out_cycle == 0; ++c) {
    if (east_out_.flit.peek().has_value()) out_cycle = now_;
    tick();
  }
  // Arrives cycle 1 (buffer write), RT 2, VA 3, SA+ST 4 -> on the wire,
  // readable by the neighbour at cycle 5.
  EXPECT_EQ(out_cycle, 5u);
}

TEST_F(RouterHarness, EjectsPacketDestinedHere) {
  build();
  auto pkt = make_packet(9, /*dest=*/0, 4);
  std::size_t next = 0;
  for (int c = 0; c < 30; ++c) {
    if (next < pkt.size() && local_in_.flit.can_write()) {
      inject(pkt[next++]);
    }
    tick();
  }
  ASSERT_EQ(ejected_.size(), 4u);
  EXPECT_EQ(ejected_.back().first.type, FlitType::kTail);
}

TEST_F(RouterHarness, Figure4NackReplaysDroppedFlits) {
  // The paper's Figure 4 from the *transmitting* router's perspective:
  // H1 D2 D3 T4 stream out; the neighbour NACKs H1; the router must
  // replay H1 D2 D3 (the two in-flight flits were dropped downstream)
  // and then T4 — all in order, without consuming fresh credits for the
  // replays.
  build();
  auto pkt = make_packet(1, 1, 4);
  std::size_t next = 0;
  std::vector<std::pair<Flit, Cycle>> seen;
  bool nack_pending = false;
  bool nacked = false;
  for (int c = 0; c < 40; ++c) {
    if (next < pkt.size() && local_in_.flit.can_write()) {
      inject(pkt[next++]);
    }
    if (nack_pending) {
      // Our (downstream) error-check stage took one cycle; the NACK goes
      // out now — the full 3-cycle loop of Figure 4.
      east_out_.nack.write({0});
      nack_pending = false;
    }
    if (auto f = east_out_.flit.read()) {
      seen.push_back({*f, now_});
      if (!nacked && f->seq == 0) {
        nack_pending = true;  // "Error detected, not corrected" on H1.
        nacked = true;
      }
    }
    tick();
  }
  // Observed stream: H1 D2 D3 (originals), then H1 D2 D3 T4 (replays + tail).
  ASSERT_GE(seen.size(), 7u);
  std::vector<int> seqs;
  for (const auto& [f, cyc] : seen) seqs.push_back(f.seq);
  EXPECT_EQ(seqs, (std::vector<int>{0, 1, 2, 0, 1, 2, 3}));
  // The replayed H1 reaches the neighbour 3 cycles after the NACK loop:
  // original H1 read at cycle t, NACK written t, processed t+1, replayed
  // t+1, readable t+2... verify the replay gap is small and bounded.
  EXPECT_LE(seen[3].second - seen[0].second, 4u);
}

TEST_F(RouterHarness, ReceiverDropsWindowAndNacksUpstream) {
  // Receiver role: a multi-bit-corrupt flit arrives from the East
  // neighbour; the router must (a) not buffer it, (b) send a NACK one
  // cycle later, (c) drop the two follow-up flits, (d) accept the
  // retransmission.
  build();
  stats_.begin_measurement(0);
  auto pkt = make_packet(7, /*dest=*/0, 4);  // Will eject here.
  for (auto& f : pkt) f.vc = 1;              // Arbitrary input VC.

  // Cycle 0: corrupted header arrives.
  Flit bad = pkt[0];
  bad.codeword.flip(3);
  bad.codeword.flip(40);
  east_in_.flit.write(bad);
  tick();  // Router sees it at cycle 1.

  // Cycles 1-2: the two in-flight followers arrive and must be dropped.
  east_in_.flit.write(pkt[1]);
  tick();
  Cycle nack_seen = 0;
  if (east_in_.nack.peek().has_value()) nack_seen = now_;
  east_in_.flit.write(pkt[2]);
  tick();
  if (!nack_seen && east_in_.nack.peek().has_value()) nack_seen = now_;
  // NACK written during cycle 2 (detection at 1 + one check cycle),
  // readable on the wire at cycle 3.
  east_in_.nack.read();
  EXPECT_EQ(nack_seen, 3u);

  // Retransmission: clean H1 D2 D3 T4.
  for (const auto& f : pkt) {
    east_in_.flit.write(f);
    tick();
  }
  for (int c = 0; c < 10; ++c) tick();
  ASSERT_EQ(ejected_.size(), 4u);
  EXPECT_EQ(ejected_.back().first.type, FlitType::kTail);
  EXPECT_EQ(stats_.flits_dropped(), 2u);
  EXPECT_EQ(stats_.nacks_sent(), 1u);
}

TEST_F(RouterHarness, CreditsConsumedAndRestored) {
  // Single VC so both packets share one credit pool of depth 4: with a
  // silent receiver exactly 4 flits may fly, then the link stalls until
  // credits come back.
  cfg_.num_vcs = 1;
  build();
  auto pkt1 = make_packet(1, 1, 4);
  auto pkt2 = make_packet(2, 1, 4);
  std::size_t n1 = 0, n2 = 0;
  int sent = 0;
  for (int c = 0; c < 40; ++c) {
    if (n1 < pkt1.size() && local_in_.flit.can_write()) {
      inject(pkt1[n1++]);
    } else if (n1 == pkt1.size() && n2 < pkt2.size() &&
               local_in_.flit.can_write()) {
      inject(pkt2[n2++]);
    }
    if (east_out_.flit.read()) ++sent;
    tick();
  }
  EXPECT_EQ(sent, 4);  // Downstream buffer full; nothing more may fly.

  // Act as a draining receiver: return one credit per flit received.
  int credits_owed = sent;
  for (int c = 0; c < 60; ++c) {
    if (credits_owed > 0) {
      east_out_.credit.write({0});
      --credits_owed;
    }
    if (east_out_.flit.read()) {
      ++sent;
      ++credits_owed;
    }
    tick();
  }
  EXPECT_EQ(sent, 8);
}

TEST_F(RouterHarness, FourStageStagedFlitSquashedOnNack) {
  // 4-stage pipeline: when a NACK arrives while a flit of the same VC sits
  // in the ST register, the register is squashed and the flit replays
  // after the rolled-back ones — no stale transmission, no duplicates.
  cfg_.pipeline_stages = 4;
  cfg_.retransmission_depth = 4;
  build();
  auto pkt = make_packet(1, 1, 4);
  std::size_t next = 0;
  std::vector<int> seqs;
  bool nacked = false;
  for (int c = 0; c < 50; ++c) {
    if (next < pkt.size() && local_in_.flit.can_write()) {
      inject(pkt[next++]);
    }
    if (auto f = east_out_.flit.read()) {
      seqs.push_back(f->seq);
      if (!nacked && f->seq == 0) {
        east_out_.nack.write({f->vc});
        nacked = true;
      }
    }
    tick();
  }
  // No flit may appear twice without an intervening NACK-replay of its
  // predecessors, and the final stream must deliver 0,1,2,3 in order.
  ASSERT_GE(seqs.size(), 4u);
  std::vector<int> tail(seqs.end() - 4, seqs.end());
  EXPECT_EQ(tail, (std::vector<int>{0, 1, 2, 3}));
  // Count each seq's occurrences: the replayed prefix appears at most
  // twice, and T4 exactly once.
  EXPECT_EQ(std::count(seqs.begin(), seqs.end(), 3), 1);
}

TEST_F(RouterHarness, FourStageHbhDropWindowCoversThirdFollower) {
  // Regression (§3.1, Figure 4): a sender with a dedicated ST stage has
  // THREE flits in flight behind an errored one (link + check + the extra
  // pipe stage), so the receiver's drop window must span three cycles.
  // With the old two-cycle window the third follower was accepted stale
  // into the open wormhole ahead of its own replay, wrecking flit order.
  cfg_.pipeline_stages = 4;
  cfg_.retransmission_depth = 4;
  cfg_.vc_buffer_depth = 6;
  build();
  auto pkt = make_packet(7, /*dest=*/0, 6);  // Ejects locally at router 0.
  Flit corrupt = pkt[2];
  corrupt.codeword.flip(3);
  corrupt.codeword.flip(7);  // Two flips: uncorrectable, forces a NACK.
  // Wall-clock script of the fake East neighbour: the wormhole opens
  // cleanly (seq 0-1), seq 2 arrives wrecked, seq 3-5 are already in
  // flight behind it and arrive back-to-back, and after seeing the NACK
  // the neighbour replays seq 2-5.
  int nacks_seen = 0;
  for (int c = 0; c < 40; ++c) {
    switch (c) {
      case 0: east_in_.flit.write(pkt[0]); break;
      case 1: east_in_.flit.write(pkt[1]); break;
      case 2: east_in_.flit.write(corrupt); break;
      case 3: east_in_.flit.write(pkt[3]); break;   // In flight: must drop.
      case 4: east_in_.flit.write(pkt[4]); break;   // In flight: must drop.
      case 5: east_in_.flit.write(pkt[5]); break;   // In flight: must drop.
      case 10: east_in_.flit.write(pkt[2]); break;  // Replay, clean.
      case 11: east_in_.flit.write(pkt[3]); break;
      case 12: east_in_.flit.write(pkt[4]); break;
      case 13: east_in_.flit.write(pkt[5]); break;
      default: break;
    }
    if (east_in_.nack.read()) ++nacks_seen;
    tick();
  }
  EXPECT_EQ(nacks_seen, 1);
  // Exactly one clean copy of every flit, in order — no stale follower
  // delivered ahead of its replay, no duplicates.
  ASSERT_EQ(ejected_.size(), 6u);
  for (std::uint8_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ejected_[i].first.seq, i) << "position " << int(i);
  }
}

TEST(RouterIdle, QuiescentCycleChangesNothingAndChargesNothing) {
  // The idle fast path: a quiescent router's step() must be a provable
  // no-op — no energy charges, no arbiter movement, no state change —
  // which is what lets the kernel skip idle routers wholesale without
  // breaking byte-identity.
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 1;
  cfg.num_vcs = 2;
  cfg.protection = LinkProtection::kHbh;
  Topology topo(2, 1, false);
  power::EnergyMeter meter;
  StatsCollector stats;
  Router r(0, cfg, topo, nullptr, &meter, &stats);
  Wire east_in, east_out, local_in;
  r.connect(kE, &east_in, &east_out);
  r.connect(kL, &local_in, nullptr);
  std::vector<std::pair<Flit, Cycle>> ejected;
  r.set_eject_fn([&](const Flit& f, Cycle now) { ejected.push_back({f, now}); });

  EXPECT_TRUE(r.quiescent());
  for (Cycle c = 1; c <= 1'000; ++c) {
    r.step(c);
    east_in.tick();
    east_out.tick();
    local_in.tick();
    EXPECT_TRUE(r.quiescent()) << "cycle " << c;
  }
  EXPECT_EQ(meter.total_pj(), 0.0);
  EXPECT_EQ(r.tx_buffer_occupancy(), 0);
  EXPECT_EQ(r.rtx_buffer_occupancy(), 0);
  EXPECT_EQ(r.probe_route_entries(), 0u);
  EXPECT_TRUE(ejected.empty());

  // A flit on a wire breaks quiescence, and the router actually works.
  Flit f = make_flit(FlitType::kHeadTail, 1, 1, 0, 0, 1'000, 0xBEEF);
  f.vc = 0;
  east_in.flit.write(f);
  east_in.tick();
  EXPECT_FALSE(r.quiescent());
  for (Cycle c = 1'001; c <= 1'020; ++c) {
    r.step(c);
    east_in.tick();
    east_out.tick();
    local_in.tick();
  }
  ASSERT_EQ(ejected.size(), 1u);
  EXPECT_GT(meter.total_pj(), 0.0);
  EXPECT_TRUE(r.quiescent());  // Drained back to idle.
}

}  // namespace
}  // namespace ftnoc

// Tests for application-style workloads (DESIGN.md §4.14): the text
// format, the group-directive expansions, segmentation into TraceRecords,
// the workload_text/run_to_drain simulation path and the per-link
// utilization columns that ride along with it.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "noc/simulator.hpp"
#include "noc/workload.hpp"

namespace ftnoc {
namespace {

Workload parse(const std::string& text, int num_nodes, std::string* err) {
  std::istringstream in(text);
  return parse_workload(in, num_nodes, err);
}

TEST(WorkloadParse, ParsesTransferWithBurst) {
  std::string err;
  const Workload wl = parse(
      "# comment\n"
      "transfer req start=10 src=0 dest=3 flits=4 count=3 period=100\n",
      16, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(wl.transfers.size(), 3u);
  EXPECT_EQ(wl.transfers[0], (WorkloadTransfer{"req", 10, 0, 3, 4}));
  EXPECT_EQ(wl.transfers[1], (WorkloadTransfer{"req", 110, 0, 3, 4}));
  EXPECT_EQ(wl.transfers[2], (WorkloadTransfer{"req", 210, 0, 3, 4}));
}

TEST(WorkloadParse, BytesConvertAtEightPerFlit) {
  std::string err;
  const Workload wl = parse(
      "transfer a start=0 src=0 dest=1 bytes=256\n"   // 32 flits.
      "transfer b start=0 src=0 dest=1 bytes=1\n"     // Rounds up to 1.
      "transfer c start=0 src=0 dest=1 bytes=9\n",    // Rounds up to 2.
      16, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(wl.transfers.size(), 3u);
  EXPECT_EQ(wl.transfers[0].flits, 32);
  EXPECT_EQ(wl.transfers[1].flits, 1);
  EXPECT_EQ(wl.transfers[2].flits, 2);
}

TEST(WorkloadParse, PacketFlitsAppliesFromItsLineDown) {
  // The directive re-segments everything after it; the transfer above it
  // keeps the default size of 4.
  std::string err;
  const Workload wl = parse(
      "transfer a start=0 src=0 dest=1 flits=8\n"
      "packet_flits 2\n"
      "transfer b start=0 src=2 dest=3 flits=8\n",
      16, &err);
  ASSERT_TRUE(err.empty()) << err;
  const auto recs = expand_workload(wl);
  ASSERT_EQ(recs.size(), 6u);  // 8/4 = 2 packets + 8/2 = 4 packets.
  EXPECT_EQ(recs[0].length, 4);
  EXPECT_EQ(recs[1].length, 4);
  for (int i = 2; i < 6; ++i) EXPECT_EQ(recs[i].length, 2);
}

TEST(WorkloadParse, ManyToOneExpandsAscendingSendersWithStagger) {
  std::string err;
  const Workload wl = parse(
      "many_to_one sink start=100 dest=2 flits=4 stagger=5\n", 4, &err);
  ASSERT_TRUE(err.empty()) << err;
  // Senders 0, 1, 3 (dest 2 skipped), i-th sender offset i*stagger.
  ASSERT_EQ(wl.transfers.size(), 3u);
  EXPECT_EQ(wl.transfers[0], (WorkloadTransfer{"sink", 100, 0, 2, 4}));
  EXPECT_EQ(wl.transfers[1], (WorkloadTransfer{"sink", 105, 1, 2, 4}));
  EXPECT_EQ(wl.transfers[2], (WorkloadTransfer{"sink", 110, 3, 2, 4}));
}

TEST(WorkloadParse, AllToAllExpandsEveryOrderedPair) {
  std::string err;
  const Workload wl = parse(
      "all_to_all x start=0 flits=1 stagger=10\n", 3, &err);
  ASSERT_TRUE(err.empty()) << err;
  // 3*2 ordered pairs; source block s offset by s*stagger.
  ASSERT_EQ(wl.transfers.size(), 6u);
  EXPECT_EQ(wl.transfers[0], (WorkloadTransfer{"x", 0, 0, 1, 1}));
  EXPECT_EQ(wl.transfers[1], (WorkloadTransfer{"x", 0, 0, 2, 1}));
  EXPECT_EQ(wl.transfers[2], (WorkloadTransfer{"x", 10, 1, 0, 1}));
  EXPECT_EQ(wl.transfers[3], (WorkloadTransfer{"x", 10, 1, 2, 1}));
  EXPECT_EQ(wl.transfers[4], (WorkloadTransfer{"x", 20, 2, 0, 1}));
  EXPECT_EQ(wl.transfers[5], (WorkloadTransfer{"x", 20, 2, 1, 1}));
}

TEST(WorkloadExpand, SegmentsWithRemainderInLastPacket) {
  Workload wl;
  wl.transfers.push_back({"t", 7, 0, 1, 10});
  wl.transfer_packet_flits.push_back(4);
  const auto recs = expand_workload(wl);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], (TraceRecord{7, 0, 1, 4}));
  EXPECT_EQ(recs[1], (TraceRecord{7, 0, 1, 4}));
  EXPECT_EQ(recs[2], (TraceRecord{7, 0, 1, 2}));
}

TEST(WorkloadExpand, EqualCycleRecordsKeepFileOrder) {
  // The replay path injects same-cycle records in vector order, so the
  // sort must be stable on cycle (digest-relevant).
  std::string err;
  const Workload wl = parse(
      "transfer a start=5 src=0 dest=1 flits=4\n"
      "transfer b start=0 src=2 dest=3 flits=4\n"
      "transfer c start=5 src=4 dest=5 flits=4\n",
      16, &err);
  ASSERT_TRUE(err.empty()) << err;
  const auto recs = expand_workload(wl);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].src, 2);  // b first (cycle 0)...
  EXPECT_EQ(recs[1].src, 0);  // ...then a before c at cycle 5.
  EXPECT_EQ(recs[2].src, 4);
}

TEST(WorkloadParse, RejectsMalformedInput) {
  const struct {
    const char* text;
    const char* expect;  // Substring the error must contain.
  } cases[] = {
      {"bogus x start=0\n", "unknown directive"},
      {"transfer t src=0 dest=1 flits=4\n", "requires start="},
      {"transfer t start=0 src=0 dest=1\n", "exactly one of flits= or bytes="},
      {"transfer t start=0 src=0 dest=1 flits=4 bytes=8\n",
       "exactly one of flits= or bytes="},
      {"transfer t start=0 src=0 dest=1 flits=0\n", "flits must be in"},
      {"transfer t start=0 src=0 dest=0 flits=4\n", "src == dest"},
      {"transfer t start=0 src=0 dest=99 flits=4\n", "node id out of range"},
      {"transfer t start=0 src=0 dest=1 flits=4 stagger=2\n",
       "does not take stagger="},
      {"transfer t start=0 src=0 dest=1 flits=4 count=0\n", "count must be in"},
      {"transfer t start=0 src=0 dest=1 flits=4 wat=1\n", "unknown key"},
      {"transfer t start=x src=0 dest=1 flits=4\n", "bad value for start"},
      {"many_to_one t start=0 src=2 dest=1 flits=4\n", "does not take src="},
      {"all_to_all t start=0 flits=4 count=2\n", "does not take count="},
      {"packet_flits 0\n", "packet_flits must be in"},
      {"packet_flits 257\n", "packet_flits must be in"},
      {"packet_flits 4 junk\n", "trailing junk"},
      // One transfer that alone blows the 2^20 expanded-packet cap.
      {"packet_flits 1\ntransfer t start=0 src=0 dest=1 flits=1048576 "
       "count=2\n",
       "expands to more than"},
  };
  for (const auto& c : cases) {
    std::string err;
    const Workload wl = parse(c.text, 16, &err);
    EXPECT_FALSE(err.empty()) << "accepted: " << c.text;
    EXPECT_NE(err.find(c.expect), std::string::npos)
        << "for input `" << c.text << "` got error: " << err;
    EXPECT_TRUE(wl.transfers.empty());
  }
}

TEST(WorkloadParse, ErrorNamesTheLine) {
  std::string err;
  parse("transfer a start=0 src=0 dest=1 flits=4\n\nbogus\n", 16, &err);
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(WorkloadReplay, DrainsWorkloadAndCountsEveryPacket) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;  // Pure workload-driven.
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;  // Ignored: run_to_drain ends on completion.
  cfg.max_cycles = 100'000;
  cfg.run_to_drain = true;
  cfg.workload_text =
      "packet_flits 4\n"
      "many_to_one sink start=0 dest=5 flits=8 stagger=3\n"
      "transfer back start=50 src=5 dest=10 flits=4\n";
  Simulator sim(cfg);
  std::map<NodeId, int> per_dest;
  sim.network().set_delivery_listener(
      [&](NodeId d, const Flit&, Cycle) { ++per_dest[d]; });
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_LT(r.cycles, cfg.max_cycles);  // Drained, not cycle-capped.
  // 15 senders x 2 packets into node 5, plus 1 packet into node 10.
  EXPECT_EQ(per_dest[5], 30);
  EXPECT_EQ(per_dest[10], 1);
  EXPECT_EQ(r.dead_source_drops, 0u);
}

TEST(WorkloadReplay, LinkUtilSeesExactlyTheTraversedLinks) {
  // One 8-flit transfer from node 0 to node 3 under XY routing crosses
  // the three East links of row 0 and nothing else: each carries all 8
  // flits exactly once on an otherwise idle mesh.
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  cfg.max_cycles = 10'000;
  cfg.run_to_drain = true;
  cfg.link_stats = true;
  cfg.workload_text = "transfer t start=0 src=0 dest=3 flits=8\n";
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  std::map<int, std::uint64_t> fwd;  // node*4+dir -> flits forwarded.
  for (const auto& lu : r.link_util) {
    if (lu.fwd) fwd[lu.node * 4 + lu.dir] = lu.fwd;
  }
  const int east = static_cast<int>(Direction::kEast);
  ASSERT_EQ(fwd.size(), 3u) << "flits crossed links off the XY path";
  EXPECT_EQ(fwd[0 * 4 + east], 8u);
  EXPECT_EQ(fwd[1 * 4 + east], 8u);
  EXPECT_EQ(fwd[2 * 4 + east], 8u);
}

TEST(WorkloadReplay, LinkStatsOffLeavesResultsEmpty) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  cfg.max_cycles = 10'000;
  cfg.run_to_drain = true;
  cfg.workload_text = "transfer t start=0 src=0 dest=3 flits=8\n";
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.link_util.empty());
}

TEST(WorkloadReplayDeath, RejectsInvalidWorkloadText) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;
  cfg.workload_text = "transfer t start=0 src=0 dest=99 flits=4\n";
  EXPECT_DEATH(Simulator sim(cfg), "FTNOC_CHECK");
}

}  // namespace
}  // namespace ftnoc

// Tests for the simulation driver: warm-up handling, termination, result
// condensation and the energy report.

#include <gtest/gtest.h>

#include <set>

#include "noc/simulator.hpp"
#include "power/energy_model.hpp"

namespace ftnoc {
namespace {

SimConfig quick() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.1;
  cfg.warmup_messages = 100;
  cfg.total_messages = 600;
  cfg.max_cycles = 100'000;
  return cfg;
}

TEST(Simulator, MeasuredMessagesExcludeWarmup) {
  const SimResults r = run_simulation(quick());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.measured_messages, 500u);
}

TEST(Simulator, ZeroWarmupMeasuresEverything) {
  SimConfig cfg = quick();
  cfg.warmup_messages = 0;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.measured_messages, 600u);
}

TEST(Simulator, MaxCyclesBoundsRuntime) {
  SimConfig cfg = quick();
  cfg.max_cycles = 50;  // Far too short to eject 600 messages.
  const SimResults r = run_simulation(cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.cycles, 50u);
}

TEST(Simulator, ThroughputMatchesOfferedLoadBelowSaturation) {
  SimConfig cfg = quick();
  cfg.injection_rate = 0.2;
  cfg.total_messages = 4'000;
  cfg.warmup_messages = 800;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.throughput_flits_node_cycle, 0.2, 0.03);
}

TEST(Simulator, EnergyAccountedOnlyAfterWarmup) {
  // A longer warm-up must not inflate energy-per-message: the meter resets
  // at the measurement boundary.
  SimConfig a = quick();
  a.warmup_messages = 100;
  SimConfig b = quick();
  b.warmup_messages = 400;
  const SimResults ra = run_simulation(a);
  const SimResults rb = run_simulation(b);
  ASSERT_TRUE(ra.completed && rb.completed);
  EXPECT_NEAR(ra.energy_per_message_nj, rb.energy_per_message_nj,
              ra.energy_per_message_nj * 0.1);
}

TEST(Simulator, SummaryMentionsKeyMetrics) {
  const SimResults r = run_simulation(quick());
  const std::string s = r.summary();
  EXPECT_NE(s.find("latency="), std::string::npos);
  EXPECT_NE(s.find("energy="), std::string::npos);
  EXPECT_NE(s.find("completed"), std::string::npos);
}

TEST(Simulator, RouterDebugDumpShowsActiveState) {
  SimConfig cfg = quick();
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  Simulator sim(cfg);
  sim.network().inject_packet(0, 15, 4);
  // Step a few cycles so a wormhole is mid-flight, then dump.
  for (int i = 0; i < 8; ++i) sim.network().step();
  std::string all;
  for (NodeId n = 0; n < 16; ++n) {
    all += sim.network().router(n).debug_dump(sim.network().now());
  }
  EXPECT_NE(all.find("pkt"), std::string::npos);
  EXPECT_NE(all.find("ACTIVE"), std::string::npos);
}

TEST(EnergyReport, ListsOnlyChargedEvents) {
  power::EnergyMeter m;
  m.charge(power::EnergyEvent::kLinkTraversal, 10);
  m.charge(power::EnergyEvent::kEccCheck, 5);
  const std::string rep = power::energy_report(m);
  EXPECT_NE(rep.find("link"), std::string::npos);
  EXPECT_NE(rep.find("ecc_check"), std::string::npos);
  EXPECT_EQ(rep.find("crossbar"), std::string::npos);
}

TEST(EnergyReport, SharesSumToRoughlyHundredPercent) {
  power::EnergyMeter m;
  m.charge(power::EnergyEvent::kLinkTraversal, 3);
  m.charge(power::EnergyEvent::kBufferWrite, 7);
  m.charge(power::EnergyEvent::kCrossbarTraversal, 2);
  double total_pj = 0.0;
  for (int i = 0; i < power::kNumEnergyEvents; ++i) {
    total_pj += m.event_pj(static_cast<power::EnergyEvent>(i));
  }
  EXPECT_NEAR(total_pj, m.total_pj(), 1e-9);
}

TEST(EnergyReport, EventNamesAreUniqueAndNamed) {
  std::set<std::string> names;
  for (int i = 0; i < power::kNumEnergyEvents; ++i) {
    const std::string n = power::to_string(static_cast<power::EnergyEvent>(i));
    EXPECT_NE(n, "?");
    EXPECT_TRUE(names.insert(n).second) << n;
  }
}

}  // namespace
}  // namespace ftnoc

// Golden byte-identity tests: the fig05/fig06 preset sweeps at CI scale,
// pinned by an FNV-1a digest of the exact JSONL byte stream.
//
// These digests are the determinism contract for hot-path work on the
// router kernel (DESIGN.md "Active-list cycle kernel"): any change to the
// simulation — iteration order, RNG draw order, energy-charge order,
// floating-point accumulation order — shows up here as a digest mismatch,
// while a pure performance change keeps the bytes bit-for-bit identical.
// If a deliberate behaviour change moves the digests, re-pin them with:
//
//   build/tools/ftnoc_sweep --preset=fig05 --threads=1 --quiet
//     total_messages=600 warmup_messages=150 max_cycles=300000
//     mesh_width=4 mesh_height=4      (one command; fnv1a over lines
//                                      including each trailing newline)

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/presets.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (const unsigned char b : s) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

// Replicates the ftnoc_sweep invocation in the header comment exactly:
// default base config + scale overrides, preset axes, default engine
// seeding (base_seed 1, per-point derivation), one JSONL line + '\n' per
// point in point order.
std::uint64_t preset_digest(const std::string& preset, int threads = 2,
                            bool force_scan_kernel = false,
                            BufferPolicyKind buffer_policy =
                                BufferPolicyKind::kPrivateVc) {
  SimConfig base;
  base.total_messages = 600;
  base.warmup_messages = 150;
  base.max_cycles = 300'000;
  base.mesh_width = 4;
  base.mesh_height = 4;
  base.force_scan_kernel = force_scan_kernel;
  base.buffer_policy = buffer_policy;

  const auto points = sweep::preset_points(preset, base);
  EXPECT_FALSE(points.empty());

  sweep::SweepOptions opts;
  opts.num_threads = threads;  // Digest is thread-count-invariant by design.
  std::uint64_t h = kFnvOffset;
  for (const auto& pr : sweep::SweepEngine(opts).run(points)) {
    h = fnv1a(sweep::to_jsonl(pr) + "\n", h);
  }
  return h;
}

TEST(GoldenDigest, Fig05PresetByteIdentical) {
  const std::uint64_t h = preset_digest("fig05");
  EXPECT_EQ(h, 0x8d2e0d339df31f1dull)
      << "fig05 JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

TEST(GoldenDigest, Fig06PresetByteIdentical) {
  const std::uint64_t h = preset_digest("fig06");
  EXPECT_EQ(h, 0x601a10743b2187aeull)
      << "fig06 JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

TEST(GoldenDigest, Fig07PresetByteIdentical) {
  const std::uint64_t h = preset_digest("fig07");
  EXPECT_EQ(h, 0xec4738de9dcd17afull)
      << "fig07 JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

// The perf preset covers the five hot paths ftnoc_perf times (HBH, FEC,
// E2E, adaptive+recovery, 4-stage); pinning it keeps the perf baselines
// comparable across builds — a perf run whose digest moved is measuring a
// different simulation.
TEST(GoldenDigest, PerfPresetByteIdentical) {
  const std::uint64_t h = preset_digest("perf");
  EXPECT_EQ(h, 0x97fae896b7bbf52aull)
      << "perf JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

// The fault_degradation preset is the only family that exercises the
// permanent-fault machinery (dead links/routers, escalation, drain and
// re-home, fault-gated JSONL columns); without a pin, a regression there
// is invisible to the other four digests.
TEST(GoldenDigest, FaultDegradationPresetByteIdentical) {
  const std::uint64_t h = preset_digest("fault_degradation");
  EXPECT_EQ(h, 0x25ea38446e16903bull)
      << "fault_degradation JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

// The fault_storm preset is the only pinned family whose faults land
// *mid-run* (storm kills, drains, route-epoch re-homes and the
// non-minimal escape tier all fire inside the measurement window); the
// static fault_degradation pin above cannot see a byte-level regression
// in any of that machinery.
TEST(GoldenDigest, FaultStormPresetByteIdentical) {
  const std::uint64_t h = preset_digest("fault_storm");
  EXPECT_EQ(h, 0xefb6ac3800a9efafull)
      << "fault_storm JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

// Kernel/thread invariance: the event-queue kernel (DESIGN.md §4.10) and
// the reference full-scan kernel must produce the same bytes, and the
// sweep digest must not depend on how many worker threads ran the points.
// All four (kernel × threads) combinations are pinned to the SAME value —
// the fig05 digest above — so a divergence names the offending axis.
TEST(GoldenDigest, KernelAndThreadCountInvariant) {
  constexpr std::uint64_t kPinned = 0x8d2e0d339df31f1dull;
  struct Combo {
    int threads;
    bool force_scan;
    const char* what;
  };
  const Combo combos[] = {
      {1, false, "event kernel, 1 thread"},
      {1, true, "scan kernel, 1 thread"},
      {2, true, "scan kernel, 2 threads"},
      // {2, false} is Fig05PresetByteIdentical above.
  };
  for (const auto& c : combos) {
    const std::uint64_t h = preset_digest("fig05", c.threads, c.force_scan);
    EXPECT_EQ(h, kPinned)
        << c.what << " produced digest 0x" << std::hex << h
        << " — kernels/thread-counts are no longer byte-interchangeable";
  }
}

// Same invariance under damq: the event-queue kernel's wake rules must
// cover the shared-credit transitions too (a missed retick would stall or
// reorder a shared-credit send only in the event kernel, splitting the
// digests). The combos are compared to each other rather than to a pin —
// byte-stability of the damq/voq paths across builds is what the
// buffer_ablation pin below is for.
TEST(GoldenDigest, KernelAndThreadCountInvariantUnderDamq) {
  const std::uint64_t ref =
      preset_digest("fig05", 1, false, BufferPolicyKind::kDamq);
  struct Combo {
    int threads;
    bool force_scan;
    const char* what;
  };
  const Combo combos[] = {
      {1, true, "scan kernel, 1 thread"},
      {2, false, "event kernel, 2 threads"},
      {2, true, "scan kernel, 2 threads"},
  };
  for (const auto& c : combos) {
    const std::uint64_t h =
        preset_digest("fig05", c.threads, c.force_scan,
                      BufferPolicyKind::kDamq);
    EXPECT_EQ(h, ref)
        << c.what << " produced digest 0x" << std::hex << h
        << " under damq — kernels/thread-counts are no longer "
           "byte-interchangeable";
  }
}

// The large_mesh preset is the only pinned family that runs production
// fabrics: 16x16 mesh and torus (wrap-around channels under tornado
// traffic) and a 32x32 torus. Its scale knobs and mesh dimensions are
// pinned inside the preset, so the 4x4 base overrides below don't touch
// it — the digest covers byte streams no other pin can see (torus
// routing, diameter-30 paths, 1024-router construction). Pinned under
// BOTH kernels to the same value: at 256+ routers under moderate load
// most of the fabric is idle most cycles, exactly where the event
// kernel's wake rules can silently diverge from the scan kernel.
TEST(GoldenDigest, LargeMeshPresetByteIdenticalBothKernels) {
  constexpr std::uint64_t kPinned = 0x322374cf17a9ac04ull;
  const std::uint64_t event_h = preset_digest("large_mesh");
  EXPECT_EQ(event_h, kPinned)
      << "large_mesh JSONL digest moved (event kernel): 0x" << std::hex
      << event_h
      << " — the simulation is no longer byte-identical to the pinned run";
  const std::uint64_t scan_h =
      preset_digest("large_mesh", 2, /*force_scan_kernel=*/true);
  EXPECT_EQ(scan_h, kPinned)
      << "large_mesh JSONL digest moved (scan kernel): 0x" << std::hex
      << scan_h << " — the kernels are no longer byte-interchangeable on "
                   "production fabrics";
}

// The buffer_ablation preset is the only pinned family that runs the damq
// and voq routers; without it a byte-level regression in the shared-pool
// or VOQ paths is invisible to the other digests (which all run the
// default private_vc layout — that those digests did NOT move is the
// proof the subsystem left the default path untouched).
TEST(GoldenDigest, BufferAblationPresetByteIdentical) {
  const std::uint64_t h = preset_digest("buffer_ablation");
  EXPECT_EQ(h, 0x3cb870af55cd7b91ull)
      << "buffer_ablation JSONL digest moved: 0x" << std::hex << h
      << " — the simulation is no longer byte-identical to the pinned run";
}

// The workload_hotspot preset is the only pinned family that runs the
// workload/replay machinery end to end: text-workload expansion,
// timer-driven trace release, run-to-drain termination, dead-source
// drops and the per-link utilization columns (the one pinned stream
// where link_stats is ON — proving the accounting itself is
// deterministic, while the unchanged digests above prove that default
// runs don't carry the columns). Pinned under BOTH kernels: trace
// release is pure timer wake-up, the event kernel's hardest case.
TEST(GoldenDigest, WorkloadHotspotPresetByteIdenticalBothKernels) {
  constexpr std::uint64_t kPinned = 0x1b441584b6c33f91ull;
  const std::uint64_t event_h = preset_digest("workload_hotspot");
  EXPECT_EQ(event_h, kPinned)
      << "workload_hotspot JSONL digest moved (event kernel): 0x" << std::hex
      << event_h
      << " — the simulation is no longer byte-identical to the pinned run";
  const std::uint64_t scan_h =
      preset_digest("workload_hotspot", 2, /*force_scan_kernel=*/true);
  EXPECT_EQ(scan_h, kPinned)
      << "workload_hotspot JSONL digest moved (scan kernel): 0x" << std::hex
      << scan_h << " — the kernels are no longer byte-interchangeable on "
                   "workload replay";
}

}  // namespace
}  // namespace ftnoc

# Included by CTest after gtest discovery (see TEST_INCLUDE_FILES in
# CMakeLists.txt): the discovery include that ran just before this one
# left the golden-digest test names in ftnoc_slow_tests.
foreach(t IN LISTS ftnoc_slow_tests)
  set_tests_properties(${t} PROPERTIES LABELS "tier1;slow")
endforeach()

// Unit tests for the area/power model (Table 1 substitute) and the
// per-event energy meter.

#include <gtest/gtest.h>

#include "power/area_power_model.hpp"
#include "power/energy_model.hpp"

namespace ftnoc::power {
namespace {

TEST(AreaPowerModel, ReferenceConfigMatchesPaperTotals) {
  // 5 PCs, 4 VCs/PC, 90 nm, 1 V, 500 MHz — the paper's synthesized router.
  RouterParams ref;
  const Breakdown area = area_mm2(ref);
  const Breakdown power = power_mw(ref);
  EXPECT_NEAR(area.generic_total(), 0.374862, 1e-6);
  EXPECT_NEAR(power.generic_total(), 119.55, 1e-3);
  EXPECT_NEAR(area.ac_unit, 0.004474, 1e-6);
  EXPECT_NEAR(power.ac_unit, 2.02, 1e-3);
}

TEST(AreaPowerModel, Table1OverheadPercentages) {
  const AcOverheadReport r = ac_overhead(RouterParams{});
  EXPECT_NEAR(r.power_overhead_pct, 1.69, 0.02);
  EXPECT_NEAR(r.area_overhead_pct, 1.19, 0.02);
}

TEST(AreaPowerModel, BuffersDominateArea) {
  const Breakdown area = area_mm2(RouterParams{});
  EXPECT_GT(area.buffers, area.crossbar);
  EXPECT_GT(area.buffers, area.va + area.sa + area.rt);
}

TEST(AreaPowerModel, AreaScalesWithBufferDepth) {
  RouterParams deep;
  deep.buffer_depth = 8;
  const double base = area_mm2(RouterParams{}).buffers;
  EXPECT_NEAR(area_mm2(deep).buffers, base * 2.0, 1e-9);
}

TEST(AreaPowerModel, CrossbarScalesQuadraticallyWithPorts) {
  RouterParams small;
  small.ports = 4;
  const double c5 = area_mm2(RouterParams{}).crossbar;
  const double c4 = area_mm2(small).crossbar;
  EXPECT_NEAR(c4 / c5, 16.0 / 25.0, 1e-9);
}

TEST(AreaPowerModel, RtxBuffersCostSamePerBitAsTxBuffers) {
  RouterParams p;  // depth 4, rtx depth 3.
  const Breakdown area = area_mm2(p);
  EXPECT_NEAR(area.rtx_buffers / area.buffers, 3.0 / 4.0, 1e-9);
}

TEST(AreaPowerModel, NoRtxBuffersWhenDepthZero) {
  RouterParams p;
  p.rtx_depth = 0;
  EXPECT_DOUBLE_EQ(area_mm2(p).rtx_buffers, 0.0);
}

TEST(AreaPowerModel, AcOverheadStaysSmallAcrossConfigs) {
  // The paper's point: the AC is a tiny fraction of the router for any
  // reasonable configuration.
  for (int vcs : {2, 3, 4, 6}) {
    RouterParams p;
    p.vcs = vcs;
    const AcOverheadReport r = ac_overhead(p);
    EXPECT_LT(r.area_overhead_pct, 5.0) << "vcs=" << vcs;
    EXPECT_LT(r.power_overhead_pct, 5.0) << "vcs=" << vcs;
  }
}

TEST(EnergyMeter, AccumulatesChargedEvents) {
  EnergyMeter m;
  m.charge(EnergyEvent::kBufferWrite);
  m.charge(EnergyEvent::kLinkTraversal, 2);
  const EnergyTable t = default_energy_table();
  EXPECT_DOUBLE_EQ(m.total_pj(), t.get(EnergyEvent::kBufferWrite) +
                                     2 * t.get(EnergyEvent::kLinkTraversal));
  EXPECT_EQ(m.count(EnergyEvent::kLinkTraversal), 2u);
}

TEST(EnergyMeter, ResetZeroesEverything) {
  EnergyMeter m;
  m.charge(EnergyEvent::kCrossbarTraversal, 10);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_pj(), 0.0);
  EXPECT_EQ(m.count(EnergyEvent::kCrossbarTraversal), 0u);
}

TEST(EnergyTable, AllCoefficientsPositive) {
  const EnergyTable t = default_energy_table();
  for (int i = 0; i < kNumEnergyEvents; ++i) {
    EXPECT_GT(t.pj[i], 0.0) << "event " << i;
  }
}

TEST(EnergyTable, LinkDominatesPerFlitCosts) {
  // 90 nm global wires dominate per-flit-hop energy; the model keeps that
  // ordering so Figure 7's energy shape (hop-count driven) is preserved.
  const EnergyTable t = default_energy_table();
  EXPECT_GT(t.get(EnergyEvent::kLinkTraversal),
            t.get(EnergyEvent::kBufferWrite));
  EXPECT_GT(t.get(EnergyEvent::kLinkTraversal),
            t.get(EnergyEvent::kCrossbarTraversal));
}

}  // namespace
}  // namespace ftnoc::power

// Unit tests for flit construction and the synthetic traffic sources.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/traffic.hpp"

namespace ftnoc {
namespace {

TEST(Flit, MakeFlitEncodesPayload) {
  const Flit f = make_flit(FlitType::kHead, 7, 1, 2, 0, 100, 0xABCDULL);
  EXPECT_EQ(ecc::decode(f.codeword).data, 0xABCDULL);
  EXPECT_EQ(f.birth_cycle, 100u);
  EXPECT_TRUE(is_head(f.type));
  EXPECT_FALSE(is_tail(f.type));
}

TEST(Flit, HeadTailPredicates) {
  EXPECT_TRUE(is_head(FlitType::kHeadTail));
  EXPECT_TRUE(is_tail(FlitType::kHeadTail));
  EXPECT_TRUE(is_tail(FlitType::kTail));
  EXPECT_FALSE(is_head(FlitType::kBody));
  EXPECT_FALSE(is_tail(FlitType::kBody));
}

TEST(Flit, DescribeMentionsPacketAndEndpoints) {
  const Flit f = make_flit(FlitType::kTail, 9, 3, 5, 3, 0, 0);
  const std::string d = f.describe();
  EXPECT_NE(d.find("pkt=9"), std::string::npos);
  EXPECT_NE(d.find("3->5"), std::string::npos);
}

TEST(TrafficPacket, StructureOfFourFlitPacket) {
  const auto flits = TrafficSource::build_packet(1, 2, 3, 4, 50, nullptr);
  ASSERT_EQ(flits.size(), 4u);
  EXPECT_EQ(flits[0].type, FlitType::kHead);
  EXPECT_EQ(flits[1].type, FlitType::kBody);
  EXPECT_EQ(flits[2].type, FlitType::kBody);
  EXPECT_EQ(flits[3].type, FlitType::kTail);
  for (std::uint8_t i = 0; i < 4; ++i) {
    EXPECT_EQ(flits[i].seq, i);
    EXPECT_EQ(flits[i].src, 2);
    EXPECT_EQ(flits[i].dest, 3);
    EXPECT_EQ(flits[i].birth_cycle, 50u);
    EXPECT_EQ(ecc::decode(flits[i].codeword).status,
              ecc::DecodeStatus::kClean);
  }
}

TEST(TrafficPacket, SingleFlitPacketIsHeadTail) {
  const auto flits = TrafficSource::build_packet(1, 0, 1, 1, 0, nullptr);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].type, FlitType::kHeadTail);
}

TEST(Destinations, UniformRandomNeverSelf) {
  Topology t(8, 8, false);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const NodeId src = static_cast<NodeId>(i % 64);
    const NodeId d = pick_destination(t, TrafficPattern::kUniformRandom, src,
                                      rng);
    EXPECT_NE(d, src);
    EXPECT_LT(d, 64);
  }
}

TEST(Destinations, UniformRandomCoversAllNodes) {
  Topology t(4, 4, false);
  Rng rng(7);
  std::map<NodeId, int> hits;
  for (int i = 0; i < 8000; ++i) {
    ++hits[pick_destination(t, TrafficPattern::kUniformRandom, 0, rng)];
  }
  EXPECT_EQ(hits.size(), 15u);  // Everyone but the source.
}

TEST(Destinations, BitComplementIsDeterministicAndInvolutive) {
  Topology t(8, 8, false);
  Rng rng(1);
  for (NodeId src = 0; src < 64; ++src) {
    const NodeId d =
        pick_destination(t, TrafficPattern::kBitComplement, src, rng);
    EXPECT_EQ(d, static_cast<NodeId>(~src & 63));
    // Complement of the complement returns home (remapped if self — never
    // the case for a power-of-two network).
    EXPECT_EQ(pick_destination(t, TrafficPattern::kBitComplement, d, rng),
              src);
  }
}

TEST(Destinations, TornadoMatchesClosedForm) {
  Topology t(8, 8, false);
  Rng rng(1);
  // dx = ceil(8/2) - 1 = 3 in each dimension.
  const NodeId d = pick_destination(t, TrafficPattern::kTornado, 0, rng);
  EXPECT_EQ(t.coord_of(d).x, 3);
  EXPECT_EQ(t.coord_of(d).y, 3);
}

TEST(Destinations, TornadoNeverSelf) {
  Topology t(4, 4, false);
  Rng rng(1);
  for (NodeId src = 0; src < 16; ++src) {
    EXPECT_NE(pick_destination(t, TrafficPattern::kTornado, src, rng), src);
  }
}

TEST(TrafficSource, GenerationRateMatchesInjectionRate) {
  Topology t(4, 4, false);
  const double inj = 0.2;  // flits/node/cycle; packets = inj / 4.
  TrafficSource src(t, 0, TrafficPattern::kUniformRandom, inj, 4, Rng(3));
  PacketId pid = 1;
  int generated = 0;
  const int cycles = 200'000;
  for (int c = 0; c < cycles; ++c) {
    if (src.maybe_generate(static_cast<Cycle>(c), pid)) ++generated;
  }
  const double rate = static_cast<double>(generated) / cycles;
  EXPECT_NEAR(rate, inj / 4, 0.005);
}

TEST(TrafficSource, PacketIdsAdvance) {
  Topology t(4, 4, false);
  TrafficSource src(t, 0, TrafficPattern::kUniformRandom, 1.0, 4, Rng(3));
  PacketId pid = 10;
  Cycle now = 0;
  while (!src.maybe_generate(now, pid)) ++now;
  EXPECT_GT(pid, 10u);
}

}  // namespace
}  // namespace ftnoc

// Integration tests for the paper's §4.5 (retransmission-buffer soft
// errors / duplicate buffers) and §4.6 (handshake-line TMR) protections.

#include <gtest/gtest.h>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.15;
  cfg.warmup_messages = 200;
  cfg.total_messages = 2'000;
  cfg.max_cycles = 300'000;
  cfg.protection = LinkProtection::kHbh;
  return cfg;
}

// --- §4.5: retransmission-buffer soft errors --------------------------------

TEST(RtxBufferErrors, CorruptStoredCopyDestroysIntegrity) {
  // "A double (or more) error would yield an endless retransmission loop
  // since the original data itself is now corrupt" (§4.5). The replayed
  // corrupt copy is NACKed over and over; the loop only ends if yet
  // another link upset makes the word miscorrectable — integrity is lost
  // either way (wedged VC, or a corrupt message delivered).
  SimConfig cfg = base_config();
  cfg.faults.link_error_rate = 0.05;  // Frequent NACKs...
  cfg.faults.rtx_error_rate = 0.05;   // ...replaying corrupted copies.
  cfg.duplicate_rtx_buffers = false;
  cfg.max_cycles = 100'000;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(!r.completed || r.corrupted_delivered > 0);
}

TEST(RtxBufferErrors, DuplicateBuffersBreakTheLoop) {
  // The paper's fool-proof option: a duplicate retransmission buffer
  // recovers the corrupted copy.
  SimConfig cfg = base_config();
  cfg.faults.link_error_rate = 0.05;
  cfg.faults.rtx_error_rate = 0.05;
  cfg.duplicate_rtx_buffers = true;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_GT(r.rtx_errors_corrected, 0u);
  EXPECT_EQ(r.unprotected_errors, 0u);
}

TEST(RtxBufferErrors, LatentFaultsHarmlessWithoutReplays) {
  // Without link errors no NACK ever rolls a stored copy back, so the
  // latent corruption in the barrel never reaches the wires.
  SimConfig cfg = base_config();
  cfg.faults.rtx_error_rate = 0.5;
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

// --- §4.6: handshake-line faults + TMR ---------------------------------------

TEST(HandshakeErrors, TmrVotesAwayHandshakeUpsets) {
  SimConfig cfg = base_config();
  cfg.faults.handshake_error_rate = 0.01;
  cfg.tmr_handshaking = true;  // The paper's proposal (default).
  const SimResults r = run_simulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.handshake_errors_corrected, 0u);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_EQ(r.unprotected_errors, 0u);
}

TEST(HandshakeErrors, WithoutTmrCreditLeaksDisruptTheNetwork) {
  // Each lost credit permanently shrinks a VC's visible buffer; the
  // network degrades until it wedges (or, with lost NACKs under link
  // errors, delivers incomplete packets).
  SimConfig cfg = base_config();
  cfg.faults.handshake_error_rate = 0.05;
  cfg.tmr_handshaking = false;
  cfg.total_messages = 4'000;
  cfg.max_cycles = 150'000;
  const SimResults r = run_simulation(cfg);
  EXPECT_GT(r.unprotected_errors, 0u);
  // Enough credit pulses are lost that some VC's credit pool hits zero
  // permanently and traffic through it wedges.
  EXPECT_FALSE(r.completed);
}

TEST(HandshakeErrors, LostNackCorruptsOrWedges) {
  // §4.6 without TMR under link errors: an upset NACK line loses
  // retransmission requests (dropped flits never replayed -> incomplete
  // messages) while upset credit lines leak buffer slots (wedge). Either
  // way, clean completion is impossible.
  SimConfig cfg = base_config();
  cfg.faults.link_error_rate = 0.02;
  cfg.faults.multi_bit_fraction = 1.0;    // Every link error needs a NACK.
  cfg.faults.handshake_error_rate = 0.02;
  cfg.tmr_handshaking = false;
  cfg.max_cycles = 150'000;
  const SimResults r = run_simulation(cfg);
  EXPECT_GT(r.unprotected_errors, 0u);
  EXPECT_TRUE(!r.completed || r.corrupted_delivered > 0);
}

}  // namespace
}  // namespace ftnoc

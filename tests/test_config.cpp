// Unit tests for SimConfig validation and key=value overrides.

#include "common/config.hpp"

#include <gtest/gtest.h>

namespace ftnoc {
namespace {

TEST(Config, DefaultsAreValid) {
  SimConfig cfg;
  EXPECT_EQ(cfg.validate(), std::nullopt);
  EXPECT_EQ(cfg.num_nodes(), 64);
}

TEST(Config, RejectsTinyMesh) {
  SimConfig cfg;
  cfg.mesh_width = 1;
  cfg.mesh_height = 1;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(Config, RejectsShallowRetransmissionBuffer) {
  SimConfig cfg;
  cfg.retransmission_depth = 2;  // NACK loop needs 3.
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(Config, RejectsBadPipelineDepth) {
  SimConfig cfg;
  cfg.pipeline_stages = 5;
  EXPECT_TRUE(cfg.validate().has_value());
  cfg.pipeline_stages = 0;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(Config, RejectsOutOfRangeRates) {
  SimConfig cfg;
  cfg.faults.link_error_rate = 1.5;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(Config, RejectsWarmupNotBelowTotal) {
  SimConfig cfg;
  cfg.warmup_messages = cfg.total_messages;
  EXPECT_TRUE(cfg.validate().has_value());
}

TEST(Config, RejectsEq1BoundaryExactly) {
  // Eq. (1) with uniform nodes: recovery needs T + R > M * ceil(T / M).
  // At equality the flits absorbed during recovery exactly refill the
  // freed slots and the recovery pass livelocks, so validate() must
  // refuse equality, not just the strictly-smaller case.
  SimConfig cfg;
  cfg.deadlock.enable_recovery = true;
  cfg.packet_length = 7;         // M
  cfg.vc_buffer_depth = 4;       // T      -> bound = 7 * ceil(4/7) = 7
  cfg.retransmission_depth = 3;  // R      -> T + R = 7 == bound
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("Eq. (1)"), std::string::npos) << *err;
  // One more retransmission slot puts T + R strictly above the bound.
  cfg.retransmission_depth = 4;
  EXPECT_EQ(cfg.validate(), std::nullopt);
  // Without recovery the bound does not apply.
  cfg.retransmission_depth = 3;
  cfg.deadlock.enable_recovery = false;
  EXPECT_EQ(cfg.validate(), std::nullopt);
}

TEST(Config, OverrideParsesNumbers) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "mesh_width=4"), std::nullopt);
  EXPECT_EQ(apply_override(cfg, "injection_rate=0.25"), std::nullopt);
  EXPECT_EQ(apply_override(cfg, "link_error_rate=0.001"), std::nullopt);
  EXPECT_EQ(cfg.mesh_width, 4);
  EXPECT_DOUBLE_EQ(cfg.injection_rate, 0.25);
  EXPECT_DOUBLE_EQ(cfg.faults.link_error_rate, 0.001);
}

TEST(Config, OverrideParsesEnums) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "pattern=bc"), std::nullopt);
  EXPECT_EQ(cfg.pattern, TrafficPattern::kBitComplement);
  EXPECT_EQ(apply_override(cfg, "pattern=tn"), std::nullopt);
  EXPECT_EQ(cfg.pattern, TrafficPattern::kTornado);
  EXPECT_EQ(apply_override(cfg, "routing=adaptive"), std::nullopt);
  EXPECT_EQ(cfg.routing, RoutingAlgorithm::kMinimalAdaptive);
  EXPECT_EQ(apply_override(cfg, "protection=e2e"), std::nullopt);
  EXPECT_EQ(cfg.protection, LinkProtection::kE2e);
}

TEST(Config, OverrideParsesBooleans) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "deadlock_recovery=true"), std::nullopt);
  EXPECT_TRUE(cfg.deadlock.enable_recovery);
  EXPECT_EQ(apply_override(cfg, "enable_ac=off"), std::nullopt);
  EXPECT_FALSE(cfg.enable_ac);
}

TEST(Config, OverrideRejectsUnknownKey) {
  SimConfig cfg;
  EXPECT_TRUE(apply_override(cfg, "bogus=1").has_value());
}

TEST(Config, OverrideRejectsMalformedValue) {
  SimConfig cfg;
  EXPECT_TRUE(apply_override(cfg, "mesh_width=abc").has_value());
  EXPECT_TRUE(apply_override(cfg, "pattern=xyz").has_value());
  EXPECT_TRUE(apply_override(cfg, "no_equals_sign").has_value());
}

TEST(Config, ApplyOverridesStopsAtFirstError) {
  SimConfig cfg;
  const auto err =
      apply_overrides(cfg, {"mesh_width=4", "bogus=1", "mesh_height=4"});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(cfg.mesh_width, 4);
  EXPECT_EQ(cfg.mesh_height, 8);  // Not applied.
}

TEST(Config, EnumToString) {
  EXPECT_STREQ(to_string(RoutingAlgorithm::kXY), "xy");
  EXPECT_STREQ(to_string(LinkProtection::kHbh), "hbh");
  EXPECT_STREQ(to_string(TrafficPattern::kTornado), "tn");
  EXPECT_STREQ(to_string(BufferPolicyKind::kPrivateVc), "private_vc");
  EXPECT_STREQ(to_string(BufferPolicyKind::kDamq), "damq");
  EXPECT_STREQ(to_string(BufferPolicyKind::kVoq), "voq");
}

TEST(Config, OverrideParsesBufferPolicy) {
  SimConfig cfg;
  EXPECT_EQ(apply_override(cfg, "buffer_policy=damq"), std::nullopt);
  EXPECT_EQ(cfg.buffer_policy, BufferPolicyKind::kDamq);
  EXPECT_EQ(apply_override(cfg, "buffer_policy=voq"), std::nullopt);
  EXPECT_EQ(cfg.buffer_policy, BufferPolicyKind::kVoq);
  EXPECT_EQ(apply_override(cfg, "buffer_policy=private"), std::nullopt);
  EXPECT_EQ(cfg.buffer_policy, BufferPolicyKind::kPrivateVc);
  EXPECT_EQ(apply_override(cfg, "damq_reserve_slots=3"), std::nullopt);
  EXPECT_EQ(cfg.damq_reserve_slots, 3);
  EXPECT_TRUE(apply_override(cfg, "buffer_policy=shared").has_value());
}

TEST(Config, RejectsDamqReserveOutOfRange) {
  SimConfig cfg;
  cfg.buffer_policy = BufferPolicyKind::kDamq;
  cfg.damq_reserve_slots = 0;
  EXPECT_TRUE(cfg.validate().has_value());
  cfg.damq_reserve_slots = cfg.vc_buffer_depth + 1;
  EXPECT_TRUE(cfg.validate().has_value());
  cfg.damq_reserve_slots = cfg.vc_buffer_depth;  // reserve==depth is legal.
  EXPECT_EQ(cfg.validate(), std::nullopt);
  // Outside damq the knob is inert: an out-of-range value must not fail.
  cfg.buffer_policy = BufferPolicyKind::kPrivateVc;
  cfg.damq_reserve_slots = 0;
  EXPECT_EQ(cfg.validate(), std::nullopt);
}

TEST(Config, VoqRequiresXyRouting) {
  SimConfig cfg;
  cfg.buffer_policy = BufferPolicyKind::kVoq;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  EXPECT_TRUE(cfg.validate().has_value());
  cfg.routing = RoutingAlgorithm::kAdaptiveEscape;
  EXPECT_TRUE(cfg.validate().has_value());
  cfg.routing = RoutingAlgorithm::kXY;
  EXPECT_EQ(cfg.validate(), std::nullopt);
}

TEST(Config, DamqRelaxesEq1ViaEffectiveDepth) {
  // depth=2, rtx=3, packet_length=5: nominal T+R = 5 fails Eq. (1)
  // (bound 5), but damq's effective per-VC depth K + V*(depth-K) =
  // 1 + 4*1 = 5 lifts T+R to 8 > 5.
  SimConfig cfg;
  cfg.deadlock.enable_recovery = true;
  cfg.vc_buffer_depth = 2;
  cfg.retransmission_depth = 3;
  cfg.packet_length = 5;
  cfg.num_vcs = 4;
  ASSERT_TRUE(cfg.validate().has_value());
  cfg.buffer_policy = BufferPolicyKind::kDamq;
  cfg.damq_reserve_slots = 1;
  EXPECT_EQ(cfg.validate(), std::nullopt);
}

}  // namespace
}  // namespace ftnoc

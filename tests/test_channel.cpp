// Unit tests for the one-cycle wire channels.

#include "noc/channel.hpp"

#include <gtest/gtest.h>

namespace ftnoc {
namespace {

TEST(Channel, ValueAppearsAfterTick) {
  Channel<int> ch;
  ch.write(42);
  EXPECT_FALSE(ch.read().has_value());  // Not visible this cycle.
  ch.tick();
  const auto v = ch.read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(Channel, ReadConsumes) {
  Channel<int> ch;
  ch.write(1);
  ch.tick();
  EXPECT_TRUE(ch.read().has_value());
  EXPECT_FALSE(ch.read().has_value());
}

TEST(Channel, UnreadValueIsDroppedOnTick) {
  Channel<int> ch;
  ch.write(1);
  ch.tick();  // Value now current, never read.
  ch.tick();  // Wire doesn't hold state.
  EXPECT_FALSE(ch.read().has_value());
}

TEST(Channel, CanWriteReflectsPendingWrite) {
  Channel<int> ch;
  EXPECT_TRUE(ch.can_write());
  ch.write(1);
  EXPECT_FALSE(ch.can_write());
  ch.tick();
  EXPECT_TRUE(ch.can_write());
}

TEST(Channel, PeekDoesNotConsume) {
  Channel<int> ch;
  ch.write(7);
  ch.tick();
  EXPECT_TRUE(ch.peek().has_value());
  EXPECT_TRUE(ch.read().has_value());
}

TEST(ChannelDeath, DoubleWriteInOneCycleAborts) {
  Channel<int> ch;
  ch.write(1);
  EXPECT_DEATH(ch.write(2), "FTNOC_CHECK");
}

TEST(MultiChannel, CarriesSeveralValuesPerCycle) {
  MultiChannel<int> ch;
  ch.write(1);
  ch.write(2);
  ch.write(3);
  ch.tick();
  const auto v = ch.read();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(MultiChannel, ReadDrains) {
  MultiChannel<int> ch;
  ch.write(1);
  ch.tick();
  EXPECT_EQ(ch.read().size(), 1u);
  EXPECT_TRUE(ch.read().empty());
}

TEST(MultiChannel, CyclesAreIndependent) {
  MultiChannel<int> ch;
  ch.write(1);
  ch.tick();
  ch.write(2);  // Next cycle's value.
  EXPECT_EQ(ch.read().size(), 1u);
  ch.tick();
  const auto v = ch.read();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 2);
}

}  // namespace
}  // namespace ftnoc

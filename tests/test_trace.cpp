// Tests for trace-driven traffic: parsing, writing, synthesis and replay.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "noc/simulator.hpp"
#include "noc/trace.hpp"
#include "noc/traffic.hpp"

namespace ftnoc {
namespace {

TEST(TraceFormat, ParsesCanonicalText) {
  std::istringstream in(
      "# header comment\n"
      "0 0 3 4\n"
      "\n"
      "5 1 2 1   # inline comment\n"
      "5 2 1 4\n");
  std::string err;
  const auto recs = parse_trace(in, 16, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], (TraceRecord{0, 0, 3, 4}));
  EXPECT_EQ(recs[1], (TraceRecord{5, 1, 2, 1}));
  EXPECT_EQ(recs[2], (TraceRecord{5, 2, 1, 4}));
}

TEST(TraceFormat, RejectsMalformedInput) {
  std::string err;
  {
    std::istringstream in("3 0 1\n");  // Missing field.
    parse_trace(in, 16, &err);
    EXPECT_FALSE(err.empty());
  }
  {
    std::istringstream in("3 0 1 4 junk\n");
    parse_trace(in, 16, &err);
    EXPECT_FALSE(err.empty());
  }
  {
    std::istringstream in("5 0 1 4\n3 0 1 4\n");  // Unsorted.
    parse_trace(in, 16, &err);
    EXPECT_FALSE(err.empty());
  }
  {
    std::istringstream in("3 7 7 4\n");  // src == dest.
    parse_trace(in, 16, &err);
    EXPECT_FALSE(err.empty());
  }
  {
    std::istringstream in("3 99 1 4\n");  // Out of range.
    parse_trace(in, 16, &err);
    EXPECT_FALSE(err.empty());
  }
  {
    std::istringstream in("3 0 1 0\n");  // Zero length.
    parse_trace(in, 16, &err);
    EXPECT_FALSE(err.empty());
  }
}

TEST(TraceFormat, LengthTruncationCannotSmuggleZero) {
  // Regression: a length of exactly 2^32 used to truncate to 0 through
  // the int cast *after* passing the `< 1` check, producing a zero-length
  // packet the replay path asserts on. The field is now parsed as an
  // exact u64 and range-checked before any narrowing.
  std::istringstream in("3 0 1 4294967296\n");
  std::string err;
  EXPECT_TRUE(parse_trace(in, 16, &err).empty());
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("packet length must be in [1, 256]"), std::string::npos)
      << err;
  EXPECT_NE(err.find("4294967296"), std::string::npos) << err;
}

TEST(TraceFormat, ZeroLengthErrorIsExplicit) {
  std::istringstream in("3 0 1 0\n");
  std::string err;
  EXPECT_TRUE(parse_trace(in, 16, &err).empty());
  EXPECT_NE(err.find("packet length must be in [1, 256]"), std::string::npos)
      << err;
}

TEST(TraceFormat, HugeInjectCycleIsAnErrorNotASkip) {
  // Regression: a cycle past 2^64 made `istream >> uint64` extraction
  // fail and the whole line was silently skipped as if it were blank —
  // the trace "parsed" minus one record. It must be a hard error that
  // names the offending value.
  std::istringstream in("0 0 1 4\n99999999999999999999 0 1 4\n");
  std::string err;
  EXPECT_TRUE(parse_trace(in, 16, &err).empty());
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("inject_cycle overflows 64 bits"), std::string::npos)
      << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(TraceFormat, TrailingJunkErrorNamesTheToken) {
  std::istringstream in("3 0 1 4 junk\n");
  std::string err;
  EXPECT_TRUE(parse_trace(in, 16, &err).empty());
  EXPECT_NE(err.find("trailing junk: junk"), std::string::npos) << err;
}

TEST(TraceFormat, NonMonotonicErrorNamesBothCycles) {
  // A sorted-order violation should tell the user exactly which pair of
  // records is out of order, not just that "something" was unsorted.
  std::istringstream in("5 0 1 4\n3 0 1 4\n");
  std::string err;
  parse_trace(in, 16, &err);
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("non-monotonic"), std::string::npos) << err;
  EXPECT_NE(err.find("cycle 3"), std::string::npos) << err;
  EXPECT_NE(err.find("cycle 5"), std::string::npos) << err;
}

TEST(TraceFormat, WriteThenParseRoundTrips) {
  std::vector<TraceRecord> recs = {
      {0, 0, 3, 4}, {2, 5, 9, 1}, {2, 9, 5, 8}, {100, 15, 0, 4}};
  std::ostringstream out;
  write_trace(out, recs);
  std::istringstream in(out.str());
  std::string err;
  EXPECT_EQ(parse_trace(in, 16, &err), recs);
  EXPECT_TRUE(err.empty());
}

TEST(TraceSynthesis, MatchesRequestedRate) {
  Topology topo(4, 4, false);
  const auto recs = synthesize_trace(topo, TrafficPattern::kUniformRandom,
                                     0.2, 4, 50'000, Rng(3));
  // Expected packets: cycles * nodes * rate/len = 50000*16*0.05 = 40000.
  EXPECT_NEAR(static_cast<double>(recs.size()), 40'000.0, 1'500.0);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ASSERT_GE(recs[i].cycle, recs[i - 1].cycle);
    ASSERT_NE(recs[i].src, recs[i].dest);
  }
}

TEST(TraceSynthesis, MatchesLiveBernoulliSourcesExactly) {
  // Regression: synthesize_trace forked per-node RNG streams like the
  // live TrafficSources but never burned the per-flit payload draws
  // build_packet makes, so after the first generated packet every node's
  // stream drifted and the "same-seed" trace was a different schedule.
  // The pin: drive real TrafficSources (constructed exactly as the
  // Network builds its PEs — one fork per node, in node order) and
  // require record-for-record equality.
  Topology topo(4, 4, false);
  const double rate = 0.1;
  const int len = 4;
  const Cycle cycles = 5'000;

  Rng root(42);
  std::vector<TrafficSource> sources;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    sources.emplace_back(topo, n, TrafficPattern::kUniformRandom, rate, len,
                         root.fork());
  }
  std::vector<TraceRecord> live;
  PacketId pid = 0;
  for (Cycle c = 0; c < cycles; ++c) {
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (const auto flits = sources[n].maybe_generate(c, pid)) {
        live.push_back({c, n, flits->front().dest, len});
      }
    }
  }
  ASSERT_GT(live.size(), 100u) << "scenario generated almost no packets";

  const auto synth = synthesize_trace(topo, TrafficPattern::kUniformRandom,
                                      rate, len, cycles, Rng(42));
  EXPECT_EQ(synth, live);
}

TEST(TraceReplay, DeliversEveryTracedPacket) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;  // Pure trace-driven.
  cfg.warmup_messages = 0;
  cfg.total_messages = 60;
  cfg.max_cycles = 50'000;
  Simulator sim(cfg);

  std::vector<TraceRecord> trace;
  for (int i = 0; i < 60; ++i) {
    trace.push_back({static_cast<Cycle>(i * 3),
                     static_cast<NodeId>(i % 16),
                     static_cast<NodeId>((i * 5 + 3) % 16), 4});
    if (trace.back().src == trace.back().dest) trace.back().dest ^= 1;
  }
  sim.network().load_trace(trace);

  std::map<NodeId, int> per_dest;
  sim.network().set_delivery_listener(
      [&](NodeId d, const Flit&, Cycle) { ++per_dest[d]; });
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
  int total = 0;
  for (const auto& [d, n] : per_dest) total += n;
  EXPECT_EQ(total, 60);
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

TEST(TraceReplay, ReplayedSyntheticTraceMatchesLiveSourceStats) {
  // A trace synthesized at rate R, replayed on an otherwise idle network,
  // should land near the live Bernoulli sources' latency (the injection
  // paths differ slightly — trace packets queue at the PE — so allow a
  // modest band).
  SimConfig live;
  live.mesh_width = 4;
  live.mesh_height = 4;
  live.injection_rate = 0.1;
  live.warmup_messages = 300;
  live.total_messages = 3'000;
  live.max_cycles = 300'000;
  const SimResults rl = run_simulation(live);
  ASSERT_TRUE(rl.completed);

  SimConfig replay = live;
  replay.injection_rate = 0.0;
  Simulator sim(replay);
  sim.network().load_trace(synthesize_trace(
      sim.network().topology(), TrafficPattern::kUniformRandom, 0.1, 4,
      140'000, Rng(42)));
  const SimResults rr = sim.run();
  ASSERT_TRUE(rr.completed);
  EXPECT_NEAR(rr.avg_latency_cycles, rl.avg_latency_cycles,
              rl.avg_latency_cycles * 0.15);
}

TEST(TraceReplay, TraceOnTopOfSyntheticTraffic) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.05;
  cfg.warmup_messages = 0;
  cfg.total_messages = 500;
  cfg.max_cycles = 100'000;
  Simulator sim(cfg);
  sim.network().load_trace({{10, 0, 15, 4}, {20, 15, 0, 4}});
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
}

SimConfig dead_source_config(bool reference) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 2;
  cfg.max_cycles = 20'000;
  cfg.run_to_drain = true;
  cfg.routing = RoutingAlgorithm::kMinimalAdaptive;
  cfg.adaptive_faults = true;
  cfg.dead_routers.push_back(5);
  cfg.use_reference_router = reference;
  return cfg;
}

TEST(TraceReplay, DeadSourceRecordsAreCountedDrops) {
  // Regression: trace records whose source router is dead used to be
  // injected into a PE that is never stepped — the packets sat in the
  // injection queue forever and a run_to_drain replay looked "complete"
  // while silently losing them. They are now dropped at release time and
  // counted, so the ledger stays honest.
  for (const bool reference : {false, true}) {
    SimConfig cfg = dead_source_config(reference);
    Simulator sim(cfg);
    sim.network().load_trace({{0, 5, 6, 4},    // Source router 5 is dead.
                              {10, 0, 3, 4},   // Normal delivery.
                              {20, 5, 10, 4},  // Dead again.
                              {30, 1, 2, 4}});
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed) << (reference ? "reference" : "production");
    EXPECT_EQ(r.dead_source_drops, 2u)
        << (reference ? "reference" : "production");
    EXPECT_EQ(r.messages_ejected, 2u)
        << (reference ? "reference" : "production");
  }
}

TEST(TraceReplayDeath, RejectsPastCycles) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  Simulator sim(cfg);
  for (int i = 0; i < 10; ++i) sim.network().step();
  EXPECT_DEATH(sim.network().load_trace({{0, 0, 1, 4}}), "FTNOC_CHECK");
}

}  // namespace
}  // namespace ftnoc

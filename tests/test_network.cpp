// Unit-ish tests for Network wiring, the processing elements and the E2E
// edge machinery.

#include <gtest/gtest.h>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

SimConfig tiny() {
  SimConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.injection_rate = 0.0;
  cfg.warmup_messages = 0;
  cfg.total_messages = 1;
  cfg.max_cycles = 5'000;
  return cfg;
}

TEST(Network, SingleHopDelivery) {
  SimConfig cfg = tiny();
  Simulator sim(cfg);
  NodeId got_dest = kInvalidNode;
  Flit got_tail;
  sim.network().set_delivery_listener(
      [&](NodeId d, const Flit& tail, Cycle) {
        got_dest = d;
        got_tail = tail;
      });
  const PacketId pid = sim.network().inject_packet(0, 1, 4);
  const SimResults r = sim.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(got_dest, 1);
  EXPECT_EQ(got_tail.packet_id, pid);
  EXPECT_EQ(got_tail.src, 0);
  EXPECT_EQ(got_tail.hops, 1);
}

TEST(Network, HopCountMatchesManhattanDistance) {
  SimConfig cfg = tiny();
  cfg.mesh_width = 5;
  cfg.mesh_height = 5;
  Simulator sim(cfg);
  std::uint8_t hops = 0;
  sim.network().set_delivery_listener(
      [&](NodeId, const Flit& tail, Cycle) { hops = tail.hops; });
  sim.network().inject_packet(0, 24, 4);  // (0,0) -> (4,4).
  ASSERT_TRUE(sim.run().completed);
  EXPECT_EQ(hops, 8);
}

TEST(Network, InjectionStampSetOnDeliveredTail) {
  Simulator sim(tiny());
  Cycle inject = 0;
  Cycle eject = 0;
  sim.network().set_delivery_listener(
      [&](NodeId, const Flit& tail, Cycle now) {
        inject = tail.inject_cycle;
        eject = now;
      });
  sim.network().inject_packet(0, 3, 4);
  ASSERT_TRUE(sim.run().completed);
  EXPECT_GT(inject, 0u);
  EXPECT_GT(eject, inject);
}

TEST(Network, BufferFractionsStartAtZero) {
  Network net(tiny());
  EXPECT_DOUBLE_EQ(net.tx_buffer_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(net.rtx_buffer_fraction(), 0.0);
}

TEST(Network, PacketIdsAreUniqueAcrossSources) {
  Simulator sim(tiny());
  const PacketId a = sim.network().inject_packet(0, 1, 4);
  const PacketId b = sim.network().inject_packet(1, 2, 4);
  const PacketId c = sim.network().inject_packet(2, 3, 4);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Network, PeQueuesPacketsBeyondLaneCapacity) {
  // More packets than local VCs: the source queue holds them and drains.
  SimConfig cfg = tiny();
  cfg.total_messages = 12;
  Simulator sim(cfg);
  for (int i = 0; i < 12; ++i) sim.network().inject_packet(0, 3, 4);
  EXPECT_GE(sim.network().pe(0).pending_packets(), 9u);  // 3 lanes busy.
  const SimResults r = sim.run();
  EXPECT_TRUE(r.completed);
}

TEST(NetworkE2e, SourceBufferHeldUntilAck) {
  SimConfig cfg = tiny();
  cfg.protection = LinkProtection::kE2e;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  Simulator sim(cfg);
  sim.network().inject_packet(0, 15, 4);
  EXPECT_EQ(sim.network().pe(0).e2e_buffer_occupancy(), 1u);
  const SimResults r = sim.run();
  ASSERT_TRUE(r.completed);
  // The ACK (hop-delayed) must eventually clear the copy.
  for (int i = 0; i < 50; ++i) sim.network().step();
  EXPECT_EQ(sim.network().pe(0).e2e_buffer_occupancy(), 0u);
}

TEST(NetworkE2e, StaleNackIsIgnored) {
  // Defensive path: a NACK for an already-acknowledged packet is a no-op.
  SimConfig cfg = tiny();
  cfg.protection = LinkProtection::kE2e;
  Simulator sim(cfg);
  auto& pe = sim.network().pe(0);
  pe.e2e_nack(12345);  // Never held.
  EXPECT_EQ(pe.pending_packets(), 0u);
}

TEST(NetworkE2e, NackRequeuesCleanCopyAtFront) {
  SimConfig cfg = tiny();
  cfg.protection = LinkProtection::kE2e;
  Simulator sim(cfg);
  auto& pe = sim.network().pe(0);
  auto flits = TrafficSource::build_packet(77, 0, 3, 4, 5, nullptr);
  // Simulate a held copy whose wire version got corrupted.
  for (auto& f : flits) f.codeword.flip(3);
  pe.hold_for_e2e(flits);
  pe.e2e_nack(77);
  ASSERT_EQ(pe.pending_packets(), 1u);
  // The requeued copy is re-encoded clean from the payload oracle.
  // (Verified end-to-end by FaultIntegrationE2e.RetransmitsUntilClean.)
}

TEST(Network, RejectsInvalidConfig) {
  SimConfig cfg = tiny();
  cfg.num_vcs = 0;
  EXPECT_DEATH({ Network net(cfg); }, "invalid SimConfig");
}

}  // namespace
}  // namespace ftnoc

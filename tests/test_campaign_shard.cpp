// Tests for distributed campaign sharding (DESIGN.md §4.13): the
// --shard=i/N partition of the (point, replica) space, the byte-identity
// of merged shard journals with an unsharded run, crash-resume of a
// single shard, the merge tool's rejection paths, and the seed-packing
// gate that keeps legacy campaigns byte-identical while de-aliasing
// 32x32-scale grids.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/merge.hpp"
#include "common/rng.hpp"
#include "sweep/sweep.hpp"

namespace ftnoc {
namespace {

/// Small-but-real base point, mirroring tests/test_campaign.cpp.
SimConfig tiny_config() {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_vcs = 2;
  cfg.warmup_messages = 200;
  cfg.total_messages = 1'200;
  cfg.max_cycles = 200'000;
  return cfg;
}

/// A fig06-style grid at test scale: two traffic patterns x an error
/// rate, so shards cut across genuinely different points.
std::vector<sweep::SweepPoint> tiny_grid() {
  std::vector<sweep::SweepPoint> points;
  for (const TrafficPattern pat :
       {TrafficPattern::kUniformRandom, TrafficPattern::kBitComplement}) {
    sweep::SweepPoint pt;
    pt.label = std::string("pat=") + to_string(pat);
    pt.config = tiny_config();
    pt.config.injection_rate = 0.1;
    pt.config.protection = LinkProtection::kHbh;
    pt.config.faults.link_error_rate = 1e-3;
    pt.config.pattern = pat;
    points.push_back(std::move(pt));
  }
  return points;
}

struct CampaignOutput {
  std::vector<std::string> lines;  ///< Journal lines, in emission order.
  std::vector<std::string> aggs;   ///< Serialized aggregate records.
  int fresh = 0;                   ///< Replicas actually simulated.
};

CampaignOutput run_campaign(const std::vector<sweep::SweepPoint>& points,
                            const campaign::CampaignOptions& opts,
                            const campaign::Journal* resume = nullptr) {
  CampaignOutput out;
  campaign::CampaignEngine engine(opts);
  engine.run(
      points, resume,
      [&](const std::string& line) { out.lines.push_back(line); },
      [&](const campaign::PointAggregate& agg) {
        out.aggs.push_back(campaign::aggregate_line(agg, opts.campaign_seed));
      },
      [&](const campaign::PointAggregate&, int fresh) { out.fresh += fresh; });
  return out;
}

std::vector<std::uint64_t> point_hashes(
    const std::vector<sweep::SweepPoint>& points) {
  std::vector<std::uint64_t> hashes;
  for (const auto& pt : points) {
    hashes.push_back(campaign::config_hash(pt.config));
  }
  return hashes;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines, std::size_t count,
                 const char* torn_tail = nullptr) {
  std::ofstream f(path, std::ios::trunc);
  for (std::size_t i = 0; i < count; ++i) f << lines[i] << '\n';
  if (torn_tail != nullptr) f << torn_tail;  // No newline: a mid-write crash.
}

/// Quota-mode options shared by the sharding tests.
campaign::CampaignOptions quota_opts(int replicas) {
  campaign::CampaignOptions opts;
  opts.num_threads = 2;
  opts.campaign_seed = 7;
  opts.stop.max_replicas = replicas;
  opts.stop.min_replicas = replicas;
  return opts;
}

/// Runs every shard of an N-way split, writes each journal to disk, and
/// returns the paths (TempDir files named by `tag`).
std::vector<std::string> run_shards(
    const std::vector<sweep::SweepPoint>& points,
    const campaign::CampaignOptions& base, int count, const std::string& tag) {
  std::vector<std::string> paths;
  for (int i = 0; i < count; ++i) {
    campaign::CampaignOptions opts = base;
    opts.shard = {i, count};
    const auto out = run_campaign(points, opts);
    const std::string path = ::testing::TempDir() + tag + "_s" +
                             std::to_string(i) + "of" +
                             std::to_string(count) + ".jsonl";
    write_lines(path, out.lines, out.lines.size());
    paths.push_back(path);
  }
  return paths;
}

struct MergeOutput {
  std::vector<std::string> lines;
  std::vector<std::string> aggs;
  campaign::MergeStats stats;
  std::optional<std::string> error;
};

MergeOutput merge(const std::vector<sweep::SweepPoint>& points,
                  const campaign::CampaignOptions& opts,
                  const std::vector<std::string>& paths) {
  MergeOutput out;
  out.error = campaign::merge_journals(
      points, opts, paths,
      [&](const std::string& line) { out.lines.push_back(line); },
      [&](const campaign::PointAggregate& agg) {
        out.aggs.push_back(campaign::aggregate_line(agg, opts.campaign_seed));
      },
      &out.stats);
  return out;
}

// ---------------------------------------------------------------------------
// Tentpole: shard + merge reproduces the unsharded bytes for K in
// {1, 2, 3, 5} (1 = the degenerate single-shard split; 3 does not divide
// the 10-replica space evenly; 5 exceeds the per-point replica count, so
// some shards own less than one replica of some points).
// ---------------------------------------------------------------------------

TEST(CampaignShard, MergedShardsAreByteIdenticalToUnsharded) {
  const auto points = tiny_grid();
  const auto opts = quota_opts(5);
  const auto full = run_campaign(points, opts);
  // 2 points x 5 replicas + 2 aggregate records.
  ASSERT_EQ(full.lines.size(), 12u);
  ASSERT_EQ(full.aggs.size(), 2u);

  for (const int count : {1, 2, 3, 5}) {
    const auto paths =
        run_shards(points, opts, count, "shard_eq" + std::to_string(count));
    const auto merged = merge(points, opts, paths);
    ASSERT_FALSE(merged.error.has_value())
        << count << " shards: " << *merged.error;
    EXPECT_EQ(merged.lines, full.lines) << count << " shards";
    EXPECT_EQ(merged.aggs, full.aggs) << count << " shards";
    EXPECT_EQ(merged.stats.shard_journals, static_cast<std::size_t>(count));
    EXPECT_EQ(merged.stats.replicas, 10u);
    for (const auto& path : paths) std::remove(path.c_str());
  }
}

TEST(CampaignShard, ShardsSimulateDisjointSlicesOfTheWork) {
  const auto points = tiny_grid();
  const auto opts = quota_opts(4);
  int total_fresh = 0;
  for (int i = 0; i < 3; ++i) {
    campaign::CampaignOptions shard = opts;
    shard.shard = {i, 3};
    const auto out = run_campaign(points, shard);
    EXPECT_GT(out.fresh, 0) << "shard " << i << " owned no replicas";
    total_fresh += out.fresh;
    // Each shard still emits one partial aggregate per point it touched.
    EXPECT_EQ(out.aggs.size(), 2u);
  }
  EXPECT_EQ(total_fresh, 8);  // 2 points x 4 replicas, each owned once.
}

// ---------------------------------------------------------------------------
// Ownership partition property: for any split width N, every
// (point, replica) pair is owned by exactly one shard index.
// ---------------------------------------------------------------------------

TEST(CampaignShard, EveryPairOwnedByExactlyOneShard) {
  for (const int count : {1, 2, 3, 4, 5, 7, 8, 16, 33}) {
    for (const int max_replicas : {1, 3, 8}) {
      for (std::size_t point = 0; point < 40; ++point) {
        for (int replica = 0; replica < max_replicas; ++replica) {
          int owners = 0;
          for (int index = 0; index < count; ++index) {
            if (campaign::shard_owns({index, count}, point, replica,
                                     max_replicas)) {
              ++owners;
            }
          }
          EXPECT_EQ(owners, 1)
              << "(point " << point << ", replica " << replica << ") has "
              << owners << " owners under a " << count << "-way split with "
              << max_replicas << " replicas";
        }
      }
    }
  }
}

TEST(CampaignShard, InterleavedOwnershipBalancesBothAxes) {
  // With N <= max_replicas, the modular interleave gives every shard a
  // slice of EVERY point — no shard can end up owning (and serially
  // simulating) all replicas of the most expensive point.
  const int count = 4;
  const int max_replicas = 8;
  for (int index = 0; index < count; ++index) {
    for (std::size_t point = 0; point < 10; ++point) {
      int owned = 0;
      for (int replica = 0; replica < max_replicas; ++replica) {
        if (campaign::shard_owns({index, count}, point, replica,
                                 max_replicas)) {
          ++owned;
        }
      }
      EXPECT_EQ(owned, max_replicas / count)
          << "shard " << index << " point " << point;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-resume of a single shard: torn-tail truncation and byte-identical
// continuation compose with sharding, and the merged output still equals
// the unsharded run.
// ---------------------------------------------------------------------------

TEST(CampaignShard, CrashedShardResumesAndMergesByteIdentical) {
  const auto points = tiny_grid();
  const auto hashes = point_hashes(points);
  const auto opts = quota_opts(5);
  const auto full = run_campaign(points, opts);

  const auto paths = run_shards(points, opts, 3, "shard_crash");
  // Re-run shard 1 as if it crashed mid-wave: keep 2 of its journal
  // lines plus a torn half-line, then resume.
  campaign::CampaignOptions shard1 = opts;
  shard1.shard = {1, 3};
  const auto clean = run_campaign(points, shard1);
  ASSERT_GT(clean.lines.size(), 3u);
  write_lines(paths[1], clean.lines, 2, "{\"type\":\"replica\",\"campaign_se");

  const auto journal =
      campaign::Journal::load(paths[1], opts.campaign_seed, hashes);
  ASSERT_TRUE(journal.mismatch().empty()) << journal.mismatch();
  EXPECT_EQ(journal.valid_lines(), 2u);  // The torn tail was dropped.

  const auto resumed = run_campaign(points, shard1, &journal);
  // The resumed shard re-emits its full deterministic sequence...
  EXPECT_EQ(resumed.lines, clean.lines);
  // ...re-simulating only what the journal prefix did not hold.
  EXPECT_EQ(resumed.fresh,
            clean.fresh - static_cast<int>(journal.replica_count()));
  write_lines(paths[1], resumed.lines, resumed.lines.size());

  const auto merged = merge(points, opts, paths);
  ASSERT_FALSE(merged.error.has_value()) << *merged.error;
  EXPECT_EQ(merged.lines, full.lines);
  EXPECT_EQ(merged.aggs, full.aggs);
  for (const auto& path : paths) std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Merge rejection paths, with the exact diagnostics the CLI prints.
// ---------------------------------------------------------------------------

TEST(CampaignShard, MergeRejectsAdaptiveStopRules) {
  const auto points = tiny_grid();
  auto opts = quota_opts(4);
  opts.stop.ci_rel = 0.05;
  const auto merged = merge(points, opts, {"unused.jsonl"});
  ASSERT_TRUE(merged.error.has_value());
  EXPECT_EQ(*merged.error,
            "sharded campaigns run in quota mode; an adaptive stop rule "
            "(--ci-abs/--ci-rel) cannot be merged");
  EXPECT_TRUE(merged.lines.empty());  // Rejections emit nothing.
}

TEST(CampaignShard, MergeRejectsEmptyShardList) {
  const auto merged = merge(tiny_grid(), quota_opts(4), {});
  ASSERT_TRUE(merged.error.has_value());
  EXPECT_EQ(*merged.error, "no shard journals given");
}

TEST(CampaignShard, MergeRejectsMissingShardJournal) {
  const std::string missing = ::testing::TempDir() + "no_such_shard.jsonl";
  const auto merged = merge(tiny_grid(), quota_opts(4), {missing});
  ASSERT_TRUE(merged.error.has_value());
  EXPECT_EQ(*merged.error, "shard journal " + missing + ": no such file");
}

TEST(CampaignShard, MergeRejectsForeignCampaignJournal) {
  const auto points = tiny_grid();
  const auto opts = quota_opts(2);
  const auto paths = run_shards(points, opts, 1, "shard_foreign");

  // Same journal, different campaign seed: every line is foreign.
  auto other = opts;
  other.campaign_seed = 8;
  const auto merged = merge(points, other, paths);
  ASSERT_TRUE(merged.error.has_value());
  EXPECT_EQ(*merged.error,
            "shard journal " + paths[0] +
                ": journal line 1 belongs to a different campaign (seed or "
                "point range)");
  std::remove(paths[0].c_str());
}

TEST(CampaignShard, MergeRejectsOverlappingShards) {
  const auto points = tiny_grid();
  const auto opts = quota_opts(3);
  const auto paths = run_shards(points, opts, 3, "shard_overlap");
  // Shard 0 owns global index 0 = (point 0, replica 0); merging it twice
  // must flag that pair, not silently double-count it.
  std::vector<std::string> twice = {paths[0], paths[0], paths[1], paths[2]};
  const auto merged = merge(points, opts, twice);
  ASSERT_TRUE(merged.error.has_value());
  EXPECT_EQ(*merged.error,
            "shard journal " + paths[0] +
                " overlaps an earlier shard: point 0 replica 0 is journaled "
                "twice (same --shard index merged twice?)");
  for (const auto& path : paths) std::remove(path.c_str());
}

TEST(CampaignShard, MergeRejectsIncompleteShardSet) {
  const auto points = tiny_grid();
  const auto opts = quota_opts(5);
  const auto paths = run_shards(points, opts, 3, "shard_gap");
  // Drop shard 2. Its smallest owned pair is global index 2 =
  // (point 0, replica 2) — the first gap the coverage walk hits.
  const auto merged = merge(points, opts, {paths[0], paths[1]});
  ASSERT_TRUE(merged.error.has_value());
  EXPECT_EQ(*merged.error,
            "shard journals are incomplete: point 0 replica 2 is in no "
            "journal (missing shard, or a different --shard split?)");
  for (const auto& path : paths) std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Seed packing: the legacy linear index wraps mod 2^64 once
// point * 2^20 crosses it; the wide two-level derivation doesn't, and the
// gate picks legacy exactly for the campaigns whose bytes are already
// pinned.
// ---------------------------------------------------------------------------

TEST(CampaignSeeds, GateKeepsSmallCampaignsOnLegacyPacking) {
  using campaign::SeedPacking;
  constexpr std::uint64_t kStride = campaign::kReplicaStride;
  // Every shipped preset is a handful of points with replica caps far
  // below 2^20: all legacy, so existing journals and digests stay valid.
  EXPECT_EQ(campaign::seed_packing(2, 4), SeedPacking::kLegacy);
  EXPECT_EQ(campaign::seed_packing(15, 1024), SeedPacking::kLegacy);
  EXPECT_EQ(campaign::seed_packing(kStride, 16), SeedPacking::kLegacy);
  // Either axis outgrowing the stride flips the campaign to wide.
  EXPECT_EQ(campaign::seed_packing(kStride + 1, 16), SeedPacking::kWide);
  EXPECT_EQ(campaign::seed_packing(2, (1 << 20) + 1), SeedPacking::kWide);
}

TEST(CampaignSeeds, LegacyPackingMatchesHistoricalFormula) {
  // The legacy path must stay bit-for-bit the PR 2 formula — it is what
  // every existing journal's seeds were derived with.
  for (const std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
    for (const std::size_t point : {std::size_t{0}, std::size_t{3},
                                    std::size_t{1023}}) {
      for (const int replica : {0, 1, 63}) {
        EXPECT_EQ(
            campaign::replica_seed(seed, campaign::SeedPacking::kLegacy,
                                   point, replica),
            Rng::derive_seed(seed, point * campaign::kReplicaStride +
                                       static_cast<std::uint64_t>(replica)));
      }
    }
  }
}

TEST(CampaignSeeds, LegacyPackingAliasesAtScaleWideDoesNot) {
  using campaign::SeedPacking;
  const std::uint64_t seed = 1;
  // point * 2^20 wraps mod 2^64 at point = 2^44: the legacy index of
  // (2^44, r) collides with (0, r) exactly — silent cross-point seed
  // aliasing at 32x32-scale campaign sizes. (2^44 points is beyond any
  // realistic grid, but smaller wraps alias interior points the same
  // way; the gate routes every such campaign to the wide packing.)
  const std::size_t wrap = std::size_t{1} << 44;
  EXPECT_EQ(campaign::replica_seed(seed, SeedPacking::kLegacy, wrap, 3),
            campaign::replica_seed(seed, SeedPacking::kLegacy, 0, 3));
  EXPECT_NE(campaign::replica_seed(seed, SeedPacking::kWide, wrap, 3),
            campaign::replica_seed(seed, SeedPacking::kWide, 0, 3));
}

TEST(CampaignSeeds, WidePackingIsCollisionFreeAcrossSample) {
  // A (necessarily statistical) injectivity check: across a sample far
  // wider than the legacy stride budget allows — points beyond 2^20,
  // replica indices beyond 2^20 — every wide seed is distinct.
  std::set<std::uint64_t> seen;
  std::size_t pairs = 0;
  for (const std::size_t point :
       {std::size_t{0}, std::size_t{1}, std::size_t{1} << 20,
        (std::size_t{1} << 20) + 1, std::size_t{1} << 44}) {
    for (const int replica : {0, 1, 2, 1 << 20, (1 << 20) + 1}) {
      seen.insert(campaign::replica_seed(1, campaign::SeedPacking::kWide,
                                         point, replica));
      ++pairs;
    }
  }
  EXPECT_EQ(seen.size(), pairs);
}

TEST(CampaignShard, EngineRefusesShardedAdaptiveRuns) {
  campaign::CampaignOptions opts = quota_opts(4);
  opts.shard = {0, 2};
  opts.stop.ci_abs = 0.5;
  EXPECT_DEATH(campaign::CampaignEngine engine(opts), "FTNOC_CHECK");
}

}  // namespace
}  // namespace ftnoc

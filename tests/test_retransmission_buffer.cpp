// Unit tests for the barrel-shifter retransmission buffer (§3.1, Figure 3).

#include "core/retransmission_buffer.hpp"

#include <gtest/gtest.h>

namespace ftnoc {
namespace {

Flit flit(PacketId pid, std::uint8_t seq, FlitType t = FlitType::kBody) {
  return make_flit(t, pid, 0, 1, seq, 0, pid * 100 + seq);
}

TEST(RetransmissionBuffer, StartsEmpty) {
  RetransmissionBuffer b(3);
  EXPECT_EQ(b.occupancy(), 0);
  EXPECT_EQ(b.free_slots(), 3);
  EXPECT_FALSE(b.has_pending());
}

TEST(RetransmissionBuffer, RecordsTransmissions) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 10);
  b.record_transmission(flit(1, 1), 11);
  EXPECT_EQ(b.sent_count(), 2);
  EXPECT_EQ(b.occupancy(), 2);
}

TEST(RetransmissionBuffer, BarrelRetiresOldestWhenFull) {
  RetransmissionBuffer b(3);
  for (int i = 0; i < 5; ++i) {
    b.record_transmission(flit(1, static_cast<std::uint8_t>(i)),
                          static_cast<Cycle>(10 + i));
  }
  // Only the 3 most recent remain.
  EXPECT_EQ(b.sent_count(), 3);
}

TEST(RetransmissionBuffer, NackRollsBackAllSentInOrder) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 10);
  b.record_transmission(flit(1, 1), 11);
  b.record_transmission(flit(1, 2), 12);
  EXPECT_EQ(b.on_nack(), 3);
  EXPECT_EQ(b.pending_count(), 3);
  EXPECT_EQ(b.sent_count(), 0);
  // Replay order = original transmission order (oldest first, Figure 4).
  EXPECT_EQ(b.front_pending().seq, 0);
  EXPECT_TRUE(b.front_pending_credit_held());
}

TEST(RetransmissionBuffer, ReplayCycleMatchesFigure4) {
  // H1 errored; D2 D3 were in flight; the sender replays H1 D2 D3.
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0, FlitType::kHead), 0);
  b.record_transmission(flit(1, 1), 1);
  b.record_transmission(flit(1, 2), 2);
  ASSERT_EQ(b.on_nack(), 3);
  for (std::uint8_t seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE(b.has_pending());
    Flit f = b.front_pending();
    EXPECT_EQ(f.seq, seq);
    b.record_transmission(f, static_cast<Cycle>(3 + seq));  // Replay.
  }
  EXPECT_FALSE(b.has_pending());
  EXPECT_EQ(b.sent_count(), 3);
}

TEST(RetransmissionBuffer, SecondNackDuringReplayRollsBackAgain) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 0);
  b.record_transmission(flit(1, 1), 1);
  b.on_nack();
  Flit f = b.front_pending();
  b.record_transmission(f, 3);  // Replay flit 0.
  // The replay itself got hit: NACK again.
  EXPECT_EQ(b.on_nack(), 1);
  EXPECT_EQ(b.front_pending().seq, 0);
  EXPECT_EQ(b.pending_count(), 2);  // flit 0 (rolled back) + flit 1.
}

TEST(RetransmissionBuffer, RetireExpiredDropsOnlyOldFlits) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 10);
  b.record_transmission(flit(1, 1), 12);
  b.retire_expired(13);  // age(0)=3 — still NACKable; age(1)=1.
  EXPECT_EQ(b.sent_count(), 2);
  b.retire_expired(14);  // age(0)=4 > window: retire.
  EXPECT_EQ(b.sent_count(), 1);
  b.retire_expired(16);
  EXPECT_EQ(b.sent_count(), 0);
}

TEST(RetransmissionBuffer, StaleFlitsAreNeverReplayedAfterExpiry) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 0);
  b.retire_expired(100);
  // A (spurious) late NACK finds nothing to roll back.
  EXPECT_EQ(b.on_nack(), 0);
  EXPECT_FALSE(b.has_pending());
}

TEST(RetransmissionBuffer, AbsorbHoldsUnsentFlitsWithoutCredit) {
  RetransmissionBuffer b(3);
  b.absorb(flit(7, 0, FlitType::kHead));
  b.absorb(flit(7, 1));
  EXPECT_EQ(b.pending_count(), 2);
  EXPECT_FALSE(b.front_pending_credit_held());
  EXPECT_EQ(b.free_slots(), 1);
}

TEST(RetransmissionBuffer, AbsorbedFlitTransmissionConsumesPendingSlot) {
  RetransmissionBuffer b(3);
  b.absorb(flit(7, 0));
  Flit f = b.front_pending();
  b.record_transmission(f, 5);
  EXPECT_EQ(b.pending_count(), 0);
  EXPECT_EQ(b.sent_count(), 1);
}

TEST(RetransmissionBuffer, ContainsPacketScansBothRegions) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 0);
  b.absorb(flit(2, 0));
  EXPECT_TRUE(b.contains_packet(1));
  EXPECT_TRUE(b.contains_packet(2));
  EXPECT_FALSE(b.contains_packet(3));
}

TEST(RetransmissionBuffer, PendingContainsMatchesPacketAndSeq) {
  RetransmissionBuffer b(6);
  // A replay round in flight: seq 3's entry is still pending (its staged
  // copy has not flushed) when a second NACK rolls seqs 0-2 back in front
  // of it.
  b.record_transmission(flit(1, 0), 10);
  b.record_transmission(flit(1, 1), 11);
  b.record_transmission(flit(1, 2), 12);
  b.push_pending_back(flit(1, 3));
  EXPECT_EQ(b.on_nack(), 3);
  // The pending region is now {0, 1, 2, 3}: seq 3 is present but not at
  // the front, which is exactly what the staged-replay squash must see.
  EXPECT_EQ(b.front_pending().seq, 0);
  EXPECT_TRUE(b.pending_contains(1, 3));
  EXPECT_TRUE(b.pending_contains(1, 0));
  EXPECT_FALSE(b.pending_contains(1, 4));
  EXPECT_FALSE(b.pending_contains(2, 3));
}

TEST(RetransmissionBuffer, UtilizationTracksOccupancy) {
  RetransmissionBuffer b(3);
  b.tick_utilization();  // empty
  b.record_transmission(flit(1, 0), 0);
  b.tick_utilization();  // 1/3 occupied
  b.record_transmission(flit(1, 1), 1);
  b.record_transmission(flit(1, 2), 2);
  b.tick_utilization();  // 3/3 occupied
  EXPECT_NEAR(b.mean_utilization(), (0.0 + 1.0 / 3 + 1.0) / 3.0, 1e-12);
}

TEST(RetransmissionBuffer, ClearEmptiesEverything) {
  RetransmissionBuffer b(3);
  b.record_transmission(flit(1, 0), 0);
  b.absorb(flit(2, 0));
  b.clear();
  EXPECT_EQ(b.occupancy(), 0);
}

TEST(RetransmissionBufferDeath, PopPendingOnEmptyAborts) {
  RetransmissionBuffer b(3);
  EXPECT_DEATH(b.pop_pending(), "FTNOC_CHECK");
}

TEST(RetransmissionBufferDeath, AbsorbBeyondCapacityAborts) {
  RetransmissionBuffer b(3);
  b.absorb(flit(1, 0));
  b.absorb(flit(1, 1));
  b.absorb(flit(1, 2));
  EXPECT_DEATH(b.absorb(flit(1, 3)), "FTNOC_CHECK");
}

}  // namespace
}  // namespace ftnoc
